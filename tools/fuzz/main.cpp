// rcp-fuzz: coverage-guided schedule/Byzantine-strategy fuzzer CLI.
//
//   $ ./rcp-fuzz --protocol fig2 --n 7 --k 2 --seed 42 --budget 512
//         --emit-dir ../tests/data --json fuzz.json
//   $ ./rcp-fuzz --replay ../tests/data/fuzz_fig2_quorum-boundary_xxxx.plan
//   $ ./rcp-fuzz --nemesis plan.plan          # replay over live TCP mesh
//
// Modes:
//   (default)        run the coverage-guided search (src/fuzz/fuzzer.hpp)
//   --replay FILE    execute one plan, verify its embedded expect line
//   --nemesis FILE   replay the plan's fault scenario on a net::Cluster
//
// Options (fuzz mode):
//   --protocol fig1|fig2|majority   (default fig2)
//   --n N --k K                     (default n=7, k=2)
//   --seed S                        search seed (default 1)
//   --budget B                      total executions (default 256)
//   --threads T                     workers; never affects results
//   --batch B                       trials per batch (default 32)
//   --minimize | --no-minimize      shrink goldens (default on)
//   --minimize-attempts A           per-golden shrink budget (default 48)
//   --max-emit E                    golden plans to emit (default 4)
//   --emit-dir DIR                  write goldens as .plan files
//   --json FILE                     rcp-fuzz-v1 report (default: stdout)
//
// Options (--nemesis):
//   --loop-threads T --timeout-ms MS
//
// The JSON report contains no thread count and no wall-clock fields — CI
// diffs it across thread counts — so timing goes to stderr only.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "fuzz/executor.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/nemesis.hpp"
#include "fuzz/plan.hpp"

namespace {

using namespace rcp;

struct Options {
  fuzz::FuzzConfig fuzz;
  std::string emit_dir;
  std::string json_path;
  std::string replay_path;
  std::string nemesis_path;
  fuzz::NemesisConfig nemesis;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--protocol fig1|fig2|majority] [--n N] [--k K] [--seed S]\n"
         "       [--budget B] [--threads T] [--batch B]\n"
         "       [--minimize | --no-minimize] [--minimize-attempts A]\n"
         "       [--max-emit E] [--emit-dir DIR] [--json FILE]\n"
         "       | --replay FILE\n"
         "       | --nemesis FILE [--loop-threads T] [--timeout-ms MS]\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    auto next_u64 = [&](std::uint64_t& out) {
      const char* v = next();
      if (v == nullptr) return false;
      out = std::stoull(v);
      return true;
    };
    auto next_u32 = [&](std::uint32_t& out) {
      const char* v = next();
      if (v == nullptr) return false;
      out = static_cast<std::uint32_t>(std::stoul(v));
      return true;
    };
    if (flag == "--protocol") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      if (std::strcmp(v, "fig1") == 0) {
        opt.fuzz.protocol = adversary::ProtocolKind::fail_stop;
      } else if (std::strcmp(v, "fig2") == 0) {
        opt.fuzz.protocol = adversary::ProtocolKind::malicious;
      } else if (std::strcmp(v, "majority") == 0) {
        opt.fuzz.protocol = adversary::ProtocolKind::majority;
      } else {
        return std::nullopt;
      }
    } else if (flag == "--n") {
      if (!next_u32(opt.fuzz.params.n)) return std::nullopt;
    } else if (flag == "--k") {
      if (!next_u32(opt.fuzz.params.k)) return std::nullopt;
    } else if (flag == "--seed") {
      if (!next_u64(opt.fuzz.seed)) return std::nullopt;
    } else if (flag == "--budget") {
      if (!next_u64(opt.fuzz.budget)) return std::nullopt;
    } else if (flag == "--threads") {
      if (!next_u32(opt.fuzz.threads)) return std::nullopt;
    } else if (flag == "--batch") {
      if (!next_u32(opt.fuzz.batch)) return std::nullopt;
    } else if (flag == "--minimize") {
      opt.fuzz.minimize = true;
    } else if (flag == "--no-minimize") {
      opt.fuzz.minimize = false;
    } else if (flag == "--minimize-attempts") {
      if (!next_u32(opt.fuzz.minimize_attempts)) return std::nullopt;
    } else if (flag == "--max-emit") {
      if (!next_u32(opt.fuzz.max_emit)) return std::nullopt;
    } else if (flag == "--emit-dir") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.emit_dir = v;
    } else if (flag == "--json") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.json_path = v;
    } else if (flag == "--replay") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.replay_path = v;
    } else if (flag == "--nemesis") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.nemesis_path = v;
    } else if (flag == "--loop-threads") {
      if (!next_u32(opt.nemesis.loop_threads)) return std::nullopt;
    } else if (flag == "--timeout-ms") {
      if (!next_u32(opt.nemesis.timeout_ms)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return opt;
}

fuzz::SchedulePlan load_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read plan: " + path);
  }
  fuzz::SchedulePlan plan = fuzz::SchedulePlan::parse(in);
  plan.validate();
  return plan;
}

void print_exec(std::ostream& os, const fuzz::ExecResult& r) {
  os << "status   : " << fuzz::status_token(r.status)
     << "\nsteps    : " << r.steps << "\nmessages : " << r.messages_sent
     << "\nphases   : " << static_cast<unsigned>(r.max_phase)
     << "\nagreement: " << (r.agreement ? "holds" : "VIOLATED");
  if (r.agreed_value.has_value()) {
    os << " (value " << *r.agreed_value << ")";
  }
  os << "\nsignals  :";
  if (r.quorum_boundary) os << " quorum-boundary";
  if (r.near_boundary) os << " near-boundary";
  if (r.near_disagreement) os << " near-disagreement";
  if (r.dedup_overflow) os << " dedup-overflow";
  if (!r.quorum_boundary && !r.near_boundary && !r.near_disagreement &&
      !r.dedup_overflow) {
    os << " (none)";
  }
  os << "\n";
}

int replay_mode(const Options& opt) {
  const fuzz::SchedulePlan plan = load_plan(opt.replay_path);
  const fuzz::ExecResult r = fuzz::execute(plan);
  print_exec(std::cout, r);
  if (plan.expect.present) {
    const bool ok = fuzz::matches_expect(r, plan);
    std::cout << "golden   : " << (ok ? "MATCH" : "MISMATCH") << "\n";
    if (!ok) {
      return 1;
    }
  }
  return r.agreement ? 0 : 1;
}

int nemesis_mode(const Options& opt) {
  const fuzz::SchedulePlan plan = load_plan(opt.nemesis_path);
  const fuzz::NemesisResult r = fuzz::run_nemesis(plan, opt.nemesis);
  std::cout << "completed: " << (r.completed ? "yes" : "NO")
            << "\ndecided  : ";
  std::uint32_t decided = 0;
  std::uint32_t correct = 0;
  for (const net::NodeOutcome& node : r.cluster.nodes) {
    if (node.correct) {
      ++correct;
      decided += node.decision.has_value() ? 1 : 0;
    }
  }
  std::cout << decided << "/" << correct << " correct nodes"
            << "\ndigests  : " << (r.digests_match ? "MATCH" : "MISMATCH")
            << "\n";
  return r.completed && r.digests_match ? 0 : 1;
}

int fuzz_mode(const Options& opt) {
  const auto start = std::chrono::steady_clock::now();
  fuzz::Fuzzer fuzzer(opt.fuzz);
  const fuzz::FuzzOutcome outcome = fuzzer.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!opt.emit_dir.empty()) {
    for (const fuzz::EmittedPlan& e : outcome.emitted) {
      const std::string path = opt.emit_dir + "/" + e.file_name();
      std::ofstream out(path);
      if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return 2;
      }
      out << e.plan.serialize();
      std::cerr << "emitted  " << path << " (" << e.signal << ")\n";
    }
  }

  if (opt.json_path.empty()) {
    fuzz::write_report(std::cout, opt.fuzz, outcome);
  } else {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 2;
    }
    fuzz::write_report(out, opt.fuzz, outcome);
  }

  // Timing is stderr-only: the JSON must be byte-identical across thread
  // counts and machines.
  std::cerr << "executions " << outcome.stats.executions << "  corpus "
            << outcome.corpus.size() << "  coverage "
            << outcome.coverage.size() << "  emitted "
            << outcome.emitted.size() << "  wall " << seconds << "s\n";
  return outcome.stats.agreement_violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    return usage(argv[0]);
  }
  const Options& opt = *parsed;
  const int modes = (opt.replay_path.empty() ? 0 : 1) +
                    (opt.nemesis_path.empty() ? 0 : 1);
  if (modes > 1) {
    std::cerr << "--replay and --nemesis are mutually exclusive\n";
    return 2;
  }
  try {
    if (!opt.replay_path.empty()) {
      return replay_mode(opt);
    }
    if (!opt.nemesis_path.empty()) {
      return nemesis_mode(opt);
    }
    return fuzz_mode(opt);
  } catch (const std::exception& e) {
    std::cerr << "rcp-fuzz: " << e.what() << "\n";
    return 2;
  }
}
