#!/usr/bin/env python3
"""CI gate for benchmark throughput (docs/PERF.md, docs/SERVICE.md).

Compares fresh benchmark JSON against the matching section of
BENCH_BASELINE.json and fails when any tracked series drops below
``threshold`` (default 0.70, i.e. a >30% regression) of its baseline.

Three input formats are understood:

* ``--micro``: google-benchmark ``--benchmark_format=json`` output from
  bench_micro; entries are matched by benchmark name (``BM_EchoEngine*``
  and the ``BM_Bitops*`` kernel series) and compared on
  ``items_per_second`` (echoes/sec; words/sec for kernels), against the
  ``echo_path`` baseline section.
* ``--x4``: rcp-bench-v1 ``--json`` output from bench_x4_complexity;
  entries are matched by series ``label`` (``echo_path_n*``) and compared
  on ``trials_per_sec`` (echoes/sec), against ``echo_path``.
* ``--svc`` (repeatable): rcp-svc-v1 ``--json`` output from kv_loadgen;
  runs are matched by ``label`` (``sim_n7_batched``, ``net_n7_batched``
  etc.) and compared on ``ops_per_sec``. The document's ``mode`` field
  selects the baseline subsection — ``service.ops_per_sec`` for sim,
  ``service.net_ops_per_sec`` for net — so the simulated and the TCP-mesh
  loadgen runs gate independently. A run that did not converge
  (``ok: false``) fails outright.
* ``--net``: rcp-net-sweep-v1 ``--json`` output from net_cluster
  ``--sweep``; runs are matched by ``label`` (``fig1_n7_tpn``,
  ``fig1_n100_shared4`` etc.) and compared on ``msgs_per_sec``, against
  the ``net`` baseline section. A run that did not decide (``ok: false``)
  fails outright.

A baseline entry with no counterpart in the fresh output is an error —
renaming or dropping a benchmark must be an explicit baseline edit, never
a silently passing gate. Exit status: 0 clean, 1 regression or mismatch.
"""

import argparse
import json
import sys


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def micro_results(path):
    """Name -> items_per_second for the echo-path and bit-kernel
    benchmarks in bench_micro."""
    doc = load_json(path)
    return {
        b["name"]: float(b["items_per_second"])
        for b in doc.get("benchmarks", [])
        if b["name"].startswith(("BM_EchoEngine", "BM_Bitops"))
        and "items_per_second" in b
    }


def x4_results(path):
    """Label -> trials_per_sec for the labelled series in bench_x4."""
    doc = load_json(path)
    if doc.get("schema") != "rcp-bench-v1":
        raise SystemExit(f"{path}: expected schema rcp-bench-v1")
    return {
        s["label"]: float(s["trials_per_sec"])
        for s in doc.get("series", [])
        if "label" in s
    }


def svc_results(path, failures):
    """(mode, label -> ops_per_sec) for kv_loadgen runs; non-ok runs fail."""
    doc = load_json(path)
    if doc.get("schema") != "rcp-svc-v1":
        raise SystemExit(f"{path}: expected schema rcp-svc-v1")
    out = {}
    for run in doc.get("runs", []):
        if "label" not in run:
            continue
        if not run.get("ok", False):
            failures.append(
                f"kv_loadgen: {run['label']}: run did not converge (ok=false)"
            )
            continue
        out[run["label"]] = float(run["ops_per_sec"])
    return doc.get("mode", "sim"), out


def net_results(path, failures):
    """Label -> msgs_per_sec for the net_cluster sweep; non-ok runs fail."""
    doc = load_json(path)
    if doc.get("schema") != "rcp-net-sweep-v1":
        raise SystemExit(f"{path}: expected schema rcp-net-sweep-v1")
    out = {}
    for run in doc.get("runs", []):
        if "label" not in run:
            continue
        if not run.get("ok", False):
            failures.append(
                f"net_cluster: {run['label']}: run did not decide (ok=false)"
            )
            continue
        out[run["label"]] = float(run["msgs_per_sec"])
    return out


def check(kind, baseline, current, threshold, failures):
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{kind}: {name}: missing from fresh output")
            continue
        now = current[name]
        ratio = now / base if base > 0 else float("inf")
        status = "ok" if ratio >= threshold else "REGRESSION"
        print(
            f"{kind}: {name}: baseline {base:.3e}/s, "
            f"current {now:.3e}/s, ratio {ratio:.2f} [{status}]"
        )
        if ratio < threshold:
            failures.append(
                f"{kind}: {name}: {now:.3e}/s is {ratio:.2f}x baseline "
                f"{base:.3e}/s (gate {threshold:.2f}x)"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_BASELINE.json",
        help="baseline document holding the echo_path section",
    )
    parser.add_argument(
        "--micro", help="bench_micro --benchmark_format=json output"
    )
    parser.add_argument("--x4", help="bench_x4_complexity --json output")
    parser.add_argument(
        "--svc",
        action="append",
        default=[],
        help="kv_loadgen --json output (rcp-svc-v1); repeatable",
    )
    parser.add_argument(
        "--net",
        help="net_cluster --sweep --json output (rcp-net-sweep-v1)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.70,
        help="minimum current/baseline ratio (0.70 = fail on >30%% drop)",
    )
    args = parser.parse_args()
    if not args.micro and not args.x4 and not args.svc and not args.net:
        parser.error(
            "nothing to check: pass --micro, --x4, --svc and/or --net"
        )

    doc = load_json(args.baseline)
    failures = []
    if args.micro or args.x4:
        baseline = doc.get("echo_path")
        if baseline is None:
            raise SystemExit(f"{args.baseline}: no echo_path section")
        if args.micro:
            check(
                "bench_micro",
                baseline.get("bench_micro_items_per_second", {}),
                micro_results(args.micro),
                args.threshold,
                failures,
            )
        if args.x4:
            check(
                "x4_complexity",
                baseline.get("x4_complexity_trials_per_sec", {}),
                x4_results(args.x4),
                args.threshold,
                failures,
            )
    if args.svc:
        baseline = doc.get("service")
        if baseline is None:
            raise SystemExit(f"{args.baseline}: no service section")
        for path in args.svc:
            mode, results = svc_results(path, failures)
            key = "net_ops_per_sec" if mode == "net" else "ops_per_sec"
            section = baseline.get(key)
            if section is None:
                raise SystemExit(f"{args.baseline}: no service.{key} entries")
            check(
                f"kv_loadgen[{mode}]",
                section,
                results,
                args.threshold,
                failures,
            )

    if args.net:
        baseline = doc.get("net")
        if baseline is None:
            raise SystemExit(f"{args.baseline}: no net section")
        check(
            "net_cluster",
            baseline.get("msgs_per_sec", {}),
            net_results(args.net, failures),
            args.threshold,
            failures,
        )

    if failures:
        print(f"\n{len(failures)} throughput gate failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbenchmark throughput within gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
