#include "lint/model.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

namespace rcp::lint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// First non-space character of a line, or '\0'.
[[nodiscard]] char first_char(const std::string& line) {
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      return c;
    }
  }
  return '\0';
}

[[nodiscard]] bool ends_with_backslash(const std::string& line) {
  for (auto it = line.rbegin(); it != line.rend(); ++it) {
    if (std::isspace(static_cast<unsigned char>(*it)) == 0) {
      return *it == '\\';
    }
  }
  return false;
}

// Identifiers that are followed by '(' without naming a function we care
// about — casts, control flow, declaration noise. find_callee skips them.
[[nodiscard]] bool is_nonname_keyword(const std::string& s) {
  static const std::set<std::string> kSkip = {
      "if",         "while",     "for",       "switch",    "return",
      "catch",      "throw",     "sizeof",    "alignof",   "alignas",
      "decltype",   "noexcept",  "operator",  "static_cast",
      "const_cast", "dynamic_cast", "reinterpret_cast",    "typeid",
      "assert",     "defined",   "nodiscard", "deprecated", "noreturn",
      "maybe_unused",
  };
  return kSkip.count(s) != 0;
}

/// `t[open]` must be "("; returns the index of the matching ")" (or `end`).
[[nodiscard]] std::size_t match_paren(const std::vector<Tok>& t,
                                      std::size_t open, std::size_t end) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    if (t[i].text == "(") {
      ++depth;
    } else if (t[i].text == ")") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return end;
}

/// Joins the tokens of (open, close) into comma-separated argument
/// strings: RCP_REQUIRES(a, b) -> {"a", "b"}. Nested parens stay inside
/// one argument.
[[nodiscard]] std::vector<std::string> macro_args(const std::vector<Tok>& t,
                                                  std::size_t open,
                                                  std::size_t close) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& s = t[i].text;
    if (s == "(") {
      ++depth;
    } else if (s == ")") {
      --depth;
    } else if (s == "," && depth == 0) {
      if (!cur.empty()) {
        args.push_back(cur);
      }
      cur.clear();
      continue;
    }
    cur += s;
  }
  if (!cur.empty()) {
    args.push_back(cur);
  }
  return args;
}

/// Class-head name: the last identifier before the first base-clause ':'
/// (the fused "::" token never matches), skipping keywords — handles
/// `class RCP_CAPABILITY("mutex") Mutex`, `template <class T> struct X`,
/// and `class Foo final : public Bar`.
[[nodiscard]] std::string class_head_name(const std::vector<Tok>& t,
                                          std::size_t begin,
                                          std::size_t end) {
  static const std::set<std::string> kNotName = {
      "class",  "struct",    "union",  "final",   "template",
      "public", "protected", "private", "typename", "virtual",
  };
  std::string name;
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].text == ":") {
      break;
    }
    if (t[i].kind == Tok::Kind::ident && kNotName.count(t[i].text) == 0 &&
        !is_annotation_macro(t[i].text)) {
      name = t[i].text;
    }
  }
  return name;
}

/// Extracts annotations from one class-body member statement [begin, end).
void process_member(const std::vector<Tok>& t, std::size_t begin,
                    std::size_t end, ClassModel& cls) {
  bool method_annotated = false;
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind != Tok::Kind::ident) {
      continue;
    }
    const std::string& s = t[i].text;
    if ((s == "RCP_GUARDED_BY" || s == "RCP_PT_GUARDED_BY") && i + 1 < end &&
        t[i + 1].text == "(") {
      const std::size_t close = match_paren(t, i + 1, end);
      const std::vector<std::string> args = macro_args(t, i + 1, close);
      for (std::size_t j = i; j-- > begin;) {
        if (t[j].kind == Tok::Kind::ident) {
          if (!args.empty()) {
            cls.guarded[t[j].text] = args.front();
          }
          break;
        }
      }
    } else if (s == "Mutex" || s == "ThreadAffinity") {
      // A capability member: `runtime::Mutex mu_;`, `ThreadAffinity aff_;`.
      // Exact-token match, so MutexLock declarations never trip this.
      if (i + 1 < end && t[i + 1].kind == Tok::Kind::ident) {
        cls.capabilities.push_back(t[i + 1].text);
      }
    } else if (s == "RCP_REQUIRES" || s == "RCP_EXCLUDES" ||
               s == "RCP_ASSERT_CAPABILITY" ||
               s == "RCP_NO_THREAD_SAFETY_ANALYSIS") {
      method_annotated = true;
    }
  }
  if (!method_annotated) {
    return;
  }
  const std::size_t name_idx = find_callee(t, begin, end);
  if (name_idx == end) {
    return;  // annotation on something that is not a function declaration
  }
  MethodAnnotations& m = cls.methods[t[name_idx].text];
  m.name = t[name_idx].text;
  for (std::size_t i = name_idx; i < end; ++i) {
    if (t[i].kind != Tok::Kind::ident) {
      continue;
    }
    const std::string& s = t[i].text;
    if (s == "RCP_NO_THREAD_SAFETY_ANALYSIS") {
      m.no_analysis = true;
    } else if ((s == "RCP_REQUIRES" || s == "RCP_EXCLUDES" ||
                s == "RCP_ASSERT_CAPABILITY") &&
               i + 1 < end && t[i + 1].text == "(") {
      const std::size_t close = match_paren(t, i + 1, end);
      const std::vector<std::string> args = macro_args(t, i + 1, close);
      if (s == "RCP_REQUIRES") {
        m.requires_caps.insert(m.requires_caps.end(), args.begin(),
                               args.end());
      } else if (s == "RCP_EXCLUDES") {
        m.excludes_caps.insert(m.excludes_caps.end(), args.begin(),
                               args.end());
      } else if (!args.empty()) {
        m.asserts_cap = args.front();
      }
      i = close;
    }
  }
}

/// Flat scan for `validate(... FaultModel::<model> ...)` calls — the
/// protocol registration sites the resilience-bound rule cross-checks.
/// `validate()` calls without a FaultModel argument (fuzz plans) are not
/// registration sites and are skipped.
void extract_validates(const std::vector<Tok>& t, FileModel& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::Kind::ident || t[i].text != "validate" ||
        t[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = match_paren(t, i + 1, t.size());
    for (std::size_t j = i + 2; j + 2 < close; ++j) {
      if (t[j].text == "FaultModel" && t[j + 1].text == "::" &&
          t[j + 2].kind == Tok::Kind::ident) {
        out.validates.push_back(ValidateSite{t[i].line, t[j + 2].text});
        break;
      }
    }
    i = close;
  }
}

/// One pass over the token stream with an explicit scope stack. Class
/// bodies parse member statements; namespaces are transparent; everything
/// else (function bodies, enum bodies, brace initializers) is opaque.
void extract_classes(const std::vector<Tok>& t, FileModel& out) {
  enum class ScopeKind : std::uint8_t { transparent, cls, opaque };
  struct Scope {
    ScopeKind kind;
    std::size_t cls_idx;
  };
  std::vector<Scope> stack;
  std::size_t stmt = 0;
  const auto level = [&]() {
    return stack.empty() ? ScopeKind::transparent : stack.back().kind;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (level() == ScopeKind::opaque) {
      if (s == "{") {
        stack.push_back({ScopeKind::opaque, npos});
      } else if (s == "}") {
        stack.pop_back();
        stmt = i + 1;
      }
      continue;
    }
    if (s == ";") {
      if (level() == ScopeKind::cls) {
        process_member(t, stmt, i, out.classes[stack.back().cls_idx]);
      }
      stmt = i + 1;
    } else if (s == "{") {
      bool has_enum = false;
      bool has_class = false;
      bool has_ns = false;
      for (std::size_t j = stmt; j < i; ++j) {
        if (t[j].kind != Tok::Kind::ident) {
          continue;
        }
        if (t[j].text == "template" && j + 1 < i && t[j + 1].text == "<") {
          // `template <class T>`: the parameter-list `class` is not a
          // class head. Skip the angle brackets.
          int depth = 0;
          for (++j; j < i; ++j) {
            if (t[j].text == "<") {
              ++depth;
            } else if (t[j].text == ">" && --depth == 0) {
              break;
            }
          }
          continue;
        }
        if (t[j].text == "enum") {
          has_enum = true;
        } else if (t[j].text == "class" || t[j].text == "struct" ||
                   t[j].text == "union") {
          has_class = true;
        } else if (t[j].text == "namespace") {
          has_ns = true;
        }
      }
      if (has_ns) {
        stack.push_back({ScopeKind::transparent, npos});
      } else if (has_class && !has_enum) {
        const std::string name = class_head_name(t, stmt, i);
        if (!name.empty()) {
          ClassModel cls;
          cls.name = name;
          cls.line = t[stmt < i ? stmt : i].line;
          out.classes.push_back(std::move(cls));
          stack.push_back({ScopeKind::cls, out.classes.size() - 1});
        } else {
          stack.push_back({ScopeKind::opaque, npos});
        }
      } else {
        // An inline method body (annotations sit on the head we just
        // collected) or a brace initializer.
        if (level() == ScopeKind::cls) {
          process_member(t, stmt, i, out.classes[stack.back().cls_idx]);
        }
        stack.push_back({ScopeKind::opaque, npos});
      }
      stmt = i + 1;
    } else if (s == "}") {
      if (!stack.empty()) {
        stack.pop_back();
      }
      stmt = i + 1;
    }
  }
}

void merge_class(ClassModel& into, const ClassModel& from) {
  for (const auto& [member, cap] : from.guarded) {
    into.guarded.emplace(member, cap);
  }
  for (const std::string& cap : from.capabilities) {
    if (std::find(into.capabilities.begin(), into.capabilities.end(), cap) ==
        into.capabilities.end()) {
      into.capabilities.push_back(cap);
    }
  }
  for (const auto& [name, m] : from.methods) {
    auto [it, inserted] = into.methods.emplace(name, m);
    if (!inserted) {
      MethodAnnotations& dst = it->second;
      dst.no_analysis = dst.no_analysis || m.no_analysis;
      if (dst.asserts_cap.empty()) {
        dst.asserts_cap = m.asserts_cap;
      }
      for (const std::string& c : m.requires_caps) {
        if (std::find(dst.requires_caps.begin(), dst.requires_caps.end(),
                      c) == dst.requires_caps.end()) {
          dst.requires_caps.push_back(c);
        }
      }
      for (const std::string& c : m.excludes_caps) {
        if (std::find(dst.excludes_caps.begin(), dst.excludes_caps.end(),
                      c) == dst.excludes_caps.end()) {
          dst.excludes_caps.push_back(c);
        }
      }
    }
  }
}

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kPrime;
  }
  h ^= static_cast<unsigned char>('\n');
  h *= kPrime;
  return h;
}

}  // namespace

bool is_annotation_macro(const std::string& ident) {
  static const std::set<std::string> kMacros = {
      "RCP_CAPABILITY",        "RCP_SCOPED_CAPABILITY",
      "RCP_GUARDED_BY",        "RCP_PT_GUARDED_BY",
      "RCP_REQUIRES",          "RCP_EXCLUDES",
      "RCP_ACQUIRE",           "RCP_RELEASE",
      "RCP_TRY_ACQUIRE",       "RCP_ASSERT_CAPABILITY",
      "RCP_RETURN_CAPABILITY", "RCP_NO_THREAD_SAFETY_ANALYSIS",
  };
  return kMacros.count(ident) != 0;
}

std::size_t find_callee(const std::vector<Tok>& toks, std::size_t begin,
                        std::size_t end) {
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (toks[i].kind == Tok::Kind::ident && toks[i + 1].text == "(" &&
        !is_annotation_macro(toks[i].text) &&
        !is_nonname_keyword(toks[i].text)) {
      return i;
    }
  }
  return end;
}

std::vector<Tok> tokenize(const std::vector<std::string>& code) {
  std::vector<Tok> toks;
  bool in_directive = false;  // skip preprocessor lines (+ continuations)
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    if (in_directive || first_char(line) == '#') {
      in_directive = ends_with_backslash(line);
      continue;
    }
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      Tok tok;
      tok.line = li + 1;
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < line.size() && ident_char(line[j])) {
          ++j;
        }
        tok.kind = Tok::Kind::ident;
        tok.text = line.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (ident_char(line[j]) || line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        tok.kind = Tok::Kind::number;
        tok.text = line.substr(i, j - i);
        i = j;
      } else {
        tok.kind = Tok::Kind::punct;
        // Fuse the two-char tokens both passes care about; everything
        // else is a single character.
        if (i + 1 < line.size()) {
          const char d = line[i + 1];
          if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
              (c == '[' && d == '[') || (c == ']' && d == ']')) {
            tok.text = line.substr(i, 2);
            i += 2;
            toks.push_back(std::move(tok));
            continue;
          }
        }
        tok.text = std::string(1, c);
        ++i;
      }
      toks.push_back(std::move(tok));
    }
  }
  return toks;
}

std::uint64_t content_hash(const ScannedFile& f) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::string& line : f.code) {
    h = fnv1a(h, line);
  }
  for (const Include& inc : f.includes) {
    h = fnv1a(h, std::to_string(inc.line) + (inc.angled ? "<" : "\"") +
                     inc.target);
  }
  return h;
}

RepoModel build_model(const std::vector<ScannedFile>& scans,
                      const RepoModel* cache) {
  RepoModel m;
  m.files.resize(scans.size());
  for (std::size_t i = 0; i < scans.size(); ++i) {
    m.files[i].path = scans[i].path;
    m.files[i].hash = content_hash(scans[i]);
    m.index[scans[i].path] = i;
  }

  // Per-file extraction, reusing cache entries whose hash still matches.
  for (std::size_t i = 0; i < scans.size(); ++i) {
    FileModel& f = m.files[i];
    if (cache != nullptr) {
      const auto it = cache->index.find(f.path);
      if (it != cache->index.end() &&
          cache->files[it->second].hash == f.hash) {
        const FileModel& c = cache->files[it->second];
        f.includes = c.includes;
        f.classes = c.classes;
        f.validates = c.validates;
        f.from_cache = true;
        continue;
      }
    }
    f.includes = scans[i].includes;
    const std::vector<Tok> toks = tokenize(scans[i].code);
    extract_classes(toks, f);
    extract_validates(toks, f);
  }

  // Include edges: quoted targets resolved against the scanned set, the
  // way the build resolves them (include dirs src/ and tools/).
  for (FileModel& f : m.files) {
    for (const Include& inc : f.includes) {
      if (inc.angled) {
        continue;
      }
      for (const std::string& cand :
           {inc.target, "src/" + inc.target, "tools/" + inc.target,
            "tests/" + inc.target, "examples/" + inc.target}) {
        const auto it = m.index.find(cand);
        if (it != m.index.end()) {
          f.edges.push_back(it->second);
          break;
        }
      }
    }
    std::sort(f.edges.begin(), f.edges.end());
    f.edges.erase(std::unique(f.edges.begin(), f.edges.end()),
                  f.edges.end());
  }

  // Reachability (BFS per node; the graph is small). closure[i] excludes
  // i unless i sits on a cycle, which makes the SCC computation below a
  // two-line check: i and j are mutually reachable.
  const std::size_t n = m.files.size();
  m.closure.assign(n, {});
  m.included_by.assign(n, 0);
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t e : m.files[i].edges) {
      ++m.included_by[e];
    }
    std::vector<std::size_t> work(m.files[i].edges.begin(),
                                  m.files[i].edges.end());
    while (!work.empty()) {
      const std::size_t v = work.back();
      work.pop_back();
      if (reach[i][v]) {
        continue;
      }
      reach[i][v] = true;
      work.insert(work.end(), m.files[v].edges.begin(),
                  m.files[v].edges.end());
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (reach[i][j]) {
        m.closure[i].push_back(j);
      }
    }
  }

  // Cycles: strongly connected components of size >= 2 (and self-loops),
  // members sorted by path, components sorted by first member.
  std::vector<bool> assigned(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (assigned[i]) {
      continue;
    }
    std::vector<std::size_t> comp{i};
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!assigned[j] && reach[i][j] && reach[j][i]) {
        comp.push_back(j);
        assigned[j] = true;
      }
    }
    assigned[i] = true;
    if (comp.size() >= 2 || reach[i][i]) {
      std::sort(comp.begin(), comp.end(),
                [&](std::size_t a, std::size_t b) {
                  return m.files[a].path < m.files[b].path;
                });
      m.cycles.push_back(std::move(comp));
    }
  }
  std::sort(m.cycles.begin(), m.cycles.end(),
            [&](const std::vector<std::size_t>& a,
                const std::vector<std::size_t>& b) {
              return m.files[a.front()].path < m.files[b.front()].path;
            });

  // Repo-wide class index: a class annotated in its header is checked in
  // its .cpp through this merged view.
  for (const FileModel& f : m.files) {
    for (const ClassModel& cls : f.classes) {
      auto [it, inserted] = m.classes.emplace(cls.name, cls);
      if (!inserted) {
        merge_class(it->second, cls);
      }
    }
  }
  return m;
}

// ---- Cache serialization ------------------------------------------------
// Line-oriented text, one record per line, no field may contain a space:
//   rcp-lint-model-v1
//   F <hash> <path>
//   I <line> <angled> <target>      (belongs to the last F)
//   C <line> <name>                 (belongs to the last F)
//   G <member> <capability>         (belongs to the last C)
//   P <capability-member>           (belongs to the last C)
//   M <name> <no_analysis> <asserts|!> <req,..|!> <exc,..|!>
//   V <line> <model>                (belongs to the last F)

namespace {

[[nodiscard]] std::string join_list(const std::vector<std::string>& v) {
  if (v.empty()) {
    return "!";
  }
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) {
      out += ',';
    }
    out += s;
  }
  return out;
}

[[nodiscard]] std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  if (s == "!") {
    return out;
  }
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace

bool load_model_cache(const std::string& path, RepoModel& out) {
  out = RepoModel{};
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  if (!std::getline(in, line) || line != "rcp-lint-model-v1") {
    return false;
  }
  FileModel* file = nullptr;
  ClassModel* cls = nullptr;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) {
      continue;
    }
    if (tag == "F") {
      std::uint64_t hash = 0;
      std::string p;
      if (!(ls >> hash >> p)) {
        return false;
      }
      out.files.push_back(FileModel{});
      file = &out.files.back();
      file->path = p;
      file->hash = hash;
      out.index[p] = out.files.size() - 1;
      cls = nullptr;
    } else if (tag == "I" && file != nullptr) {
      Include inc;
      int angled = 0;
      if (!(ls >> inc.line >> angled >> inc.target)) {
        return false;
      }
      inc.angled = angled != 0;
      file->includes.push_back(inc);
    } else if (tag == "C" && file != nullptr) {
      ClassModel c;
      if (!(ls >> c.line >> c.name)) {
        return false;
      }
      file->classes.push_back(std::move(c));
      cls = &file->classes.back();
    } else if (tag == "G" && cls != nullptr) {
      std::string member;
      std::string cap;
      if (!(ls >> member >> cap)) {
        return false;
      }
      cls->guarded[member] = cap;
    } else if (tag == "P" && cls != nullptr) {
      std::string cap;
      if (!(ls >> cap)) {
        return false;
      }
      cls->capabilities.push_back(cap);
    } else if (tag == "M" && cls != nullptr) {
      MethodAnnotations ma;
      int na = 0;
      std::string asserts;
      std::string reqs;
      std::string excs;
      if (!(ls >> ma.name >> na >> asserts >> reqs >> excs)) {
        return false;
      }
      ma.no_analysis = na != 0;
      ma.asserts_cap = asserts == "!" ? "" : asserts;
      ma.requires_caps = split_list(reqs);
      ma.excludes_caps = split_list(excs);
      cls->methods[ma.name] = std::move(ma);
    } else if (tag == "V" && file != nullptr) {
      ValidateSite v;
      if (!(ls >> v.line >> v.model)) {
        return false;
      }
      file->validates.push_back(v);
    }
  }
  return true;
}

void save_model_cache(const std::string& path, const RepoModel& model) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return;  // an unwritable cache is a silent no-op, never an error
  }
  out << "rcp-lint-model-v1\n";
  for (const FileModel& f : model.files) {
    out << "F " << f.hash << " " << f.path << "\n";
    for (const Include& inc : f.includes) {
      out << "I " << inc.line << " " << (inc.angled ? 1 : 0) << " "
          << inc.target << "\n";
    }
    for (const ClassModel& cls : f.classes) {
      out << "C " << cls.line << " " << cls.name << "\n";
      for (const auto& [member, cap] : cls.guarded) {
        out << "G " << member << " " << cap << "\n";
      }
      for (const std::string& cap : cls.capabilities) {
        out << "P " << cap << "\n";
      }
      for (const auto& [name, ma] : cls.methods) {
        out << "M " << name << " " << (ma.no_analysis ? 1 : 0) << " "
            << (ma.asserts_cap.empty() ? "!" : ma.asserts_cap) << " "
            << join_list(ma.requires_caps) << " "
            << join_list(ma.excludes_caps) << "\n";
      }
    }
    for (const ValidateSite& v : f.validates) {
      out << "V " << v.line << " " << v.model << "\n";
    }
  }
}

std::string to_dot(const RepoModel& model) {
  std::vector<std::size_t> order(model.files.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return model.files[a].path < model.files[b].path;
  });
  std::string out = "digraph rcp_includes {\n  rankdir=LR;\n";
  for (const std::size_t i : order) {
    out += "  \"" + model.files[i].path + "\";\n";
  }
  for (const std::size_t i : order) {
    std::vector<std::string> targets;
    for (const std::size_t e : model.files[i].edges) {
      targets.push_back(model.files[e].path);
    }
    std::sort(targets.begin(), targets.end());
    for (const std::string& t : targets) {
      out += "  \"" + model.files[i].path + "\" -> \"" + t + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rcp::lint
