// rcp-lint rule engine: the machine-readable invariants from
// tools/lint_rules.toml applied to scanned translation units.
//
// Four rule classes guard the properties the paper's correctness argument
// leans on (docs/LINT.md maps each to the paper):
//
//   layer       — the include graph must follow
//                 common -> core/analysis -> {sim, extensions, baselines,
//                 adversary} -> runtime/net; protocol cores stay sans-io.
//   os-header   — OS/network/threading headers are banned outside the
//                 transport and runtime layers.
//   os-exclusive — headers one TU owns outright: <sys/epoll.h> belongs to
//                 the reactor implementation alone; everything else
//                 programs against the Reactor interface.
//   determinism — std::random_device, rand(), time(), system_clock and
//                 std::<random> engines are banned outside common/rng;
//                 every run must be a pure function of its seed. Its
//                 `determinism-strict` extension additionally bans the
//                 report-only clocks (steady_clock, <chrono>) in the
//                 strict paths (src/fuzz): a fuzz plan's execution must be
//                 a pure function of the plan bytes, timing included.
//   hot-alloc   — allocation and growth-capable container calls are banned
//                 in the files covered by the operator-new counting
//                 contract (sim step path, Payload, Mailbox).
//   threshold   — the paper's quorum predicates (> n/2, > (n+k)/2, 2k+1)
//                 must go through core/params.hpp accessors, never inline
//                 arithmetic.
//
// The v2 engine adds cross-file rules that run over the pass-1 RepoModel
// (lint/model.hpp) instead of one translation unit:
//
//   thread-safety    — flow-aware lock/affinity tracking against the
//                      RCP_* annotations (lint/thread_safety.hpp).
//   include-cycle    — the resolved include graph must be acyclic.
//   layer-closure    — layering holds transitively: a file may not reach a
//                      forbidden layer through intermediaries either.
//   unused-header    — a public header nobody includes is dead interface.
//   resilience-bound — every params.validate(FaultModel::X) registration
//                      site must be declared in [[protocol]] with the
//                      matching fault model, so the k <= (n-1)/2 vs
//                      k <= (n-1)/3 resilience claim of each protocol is
//                      auditable from the rules file alone.
//
// Plus two meta rules: unused-suppression (an `allow` that matched nothing)
// and bad-suppression (a marker without rule id or reason).
#pragma once

#include <cstddef>
#include <regex>
#include <string>
#include <vector>

#include "lint/scan.hpp"
#include "lint/toml.hpp"

namespace rcp::lint {

struct Diag {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string msg;
};

struct LayerCfg {
  std::string name;
  std::vector<std::string> paths;  ///< Repo-relative prefixes, e.g. "src/core/".
  std::vector<std::string> deps;   ///< Layer names this layer may include.
};

struct OsHeaderCfg {
  std::vector<std::string> banned;       ///< Exact names or "dir/*" prefixes.
  std::vector<std::string> allow_paths;  ///< File/dir prefixes exempted.
};

/// One header that exactly one implementation site may include; stricter
/// than os-header (an os_headers allow path does not help here).
struct OsExclusiveCfg {
  std::string header;              ///< Exact name, e.g. "sys/epoll.h".
  std::vector<std::string> allow;  ///< File/dir prefixes that own it.
};

struct DeterminismCfg {
  std::vector<std::string> tokens;       ///< Banned bare identifiers.
  std::vector<std::string> calls;        ///< Banned only when called: `x(`.
  std::vector<std::string> allow_paths;
  // `determinism-strict`: paths where even the report-only clocks are
  // banned (plan execution must be a pure function of the plan bytes).
  std::vector<std::string> strict_paths;
  std::vector<std::string> strict_tokens;
  std::vector<std::string> strict_headers;  ///< Banned #include targets.
};

struct AllocationCfg {
  std::vector<std::string> files;        ///< Covered file prefixes.
  std::vector<std::string> alloc_calls;  ///< malloc & friends (call position).
  std::vector<std::string> growth_calls; ///< Member calls that may grow.
  bool ban_new = true;                   ///< Also ban the `new` keyword.
};

struct ThresholdCfg {
  std::vector<std::string> paths;
  std::vector<std::string> exempt;
  std::vector<std::string> pattern_text;
  std::vector<std::regex> patterns;
};

struct RunCfg {
  std::vector<std::string> roots;       ///< Directories walked by default.
  std::vector<std::string> exclude;     ///< Prefixes skipped while walking.
  std::vector<std::string> extensions;  ///< e.g. ".hpp", ".cpp".
};

/// Paths whose function bodies run the annotation-driven lock tracker.
struct ThreadSafetyCfg {
  std::vector<std::string> paths;
};

struct IncludeGraphCfg {
  /// Prefixes whose .hpp files must be included by someone (unused-header).
  std::vector<std::string> public_paths;
  /// Headers exempt from unused-header (e.g. umbrella / entry headers).
  std::vector<std::string> unused_exempt;
};

/// One declared protocol registration: `file` must call
/// validate(FaultModel::`model`) and nothing else.
struct ProtocolCfg {
  std::string file;
  std::string model;  ///< "fail_stop" or "malicious".
};

struct ResilienceCfg {
  /// Prefixes where validate(FaultModel::X) sites must be declared.
  std::vector<std::string> paths;
  std::vector<ProtocolCfg> protocols;
};

struct Config {
  RunCfg run;
  std::vector<LayerCfg> layers;
  OsHeaderCfg os_headers;
  std::vector<OsExclusiveCfg> os_exclusive;
  DeterminismCfg determinism;
  AllocationCfg allocation;
  ThresholdCfg threshold;
  ThreadSafetyCfg thread_safety;
  IncludeGraphCfg include_graph;
  ResilienceCfg resilience;
};

/// Builds a Config from a parsed rules file; throws std::runtime_error on
/// missing sections, unknown layer names in deps, or unknown keys/tables
/// (a typoed key must never silently disable a rule).
[[nodiscard]] Config load_config(const TomlDoc& doc);

/// Runs every per-file rule class over one file. Returned diagnostics are
/// raw — suppressions have not been applied yet.
[[nodiscard]] std::vector<Diag> check_file(const ScannedFile& f,
                                           const Config& cfg);

struct RepoModel;  // lint/model.hpp

/// Runs the cross-file rules (include-cycle, layer-closure, unused-header,
/// resilience-bound) over the pass-1 model. Diagnostics are raw and may
/// target any scanned file; the caller routes them through that file's
/// suppressions.
[[nodiscard]] std::vector<Diag> check_repo(const RepoModel& model,
                                           const Config& cfg);

struct SuppressionOutcome {
  std::vector<Diag> remaining;  ///< Diagnostics that survived suppression.
  std::vector<Diag> meta;       ///< unused-/bad-suppression diagnostics.
  std::size_t honored = 0;      ///< Count of suppressions that matched.
};

/// Applies the file's lint `allow(...)` markers to `raw`: a marker
/// covers its own line, the following line when it stands alone, or the
/// whole file for allow-file. Unused and malformed markers become errors —
/// the suppression inventory must stay exact.
[[nodiscard]] SuppressionOutcome apply_suppressions(
    const ScannedFile& f, const std::vector<Diag>& raw);

}  // namespace rcp::lint
