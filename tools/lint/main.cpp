// rcp-lint entry point: walks the configured roots (or explicit paths),
// scans every translation unit, applies the rule classes from
// tools/lint_rules.toml and prints GCC-style diagnostics:
//
//   src/core/foo.cpp:12: error: ... [rule-id]
//
// Exit status: 0 clean, 1 violations found, 2 usage/config error. See
// docs/LINT.md for the rule catalogue and suppression syntax.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/scan.hpp"
#include "lint/toml.hpp"

namespace fs = std::filesystem;
using rcp::lint::Config;
using rcp::lint::Diag;
using rcp::lint::ScannedFile;

namespace {

struct Options {
  std::string root = ".";
  std::string rules;
  bool list_suppressions = false;
  std::vector<std::string> paths;  ///< Explicit files/dirs; empty = config roots.
};

int usage() {
  std::cerr << "usage: rcp-lint [--root DIR] [--rules FILE]"
            << " [--list-suppressions] [paths...]\n"
            << "  --root DIR            repository root (default: cwd)\n"
            << "  --rules FILE          rule set (default: ROOT/tools/lint_rules.toml)\n"
            << "  --list-suppressions   print every honored suppression\n"
            << "  paths                 files or directories to lint instead of\n"
            << "                        the configured roots (repo-relative or\n"
            << "                        absolute; explicit files skip excludes)\n";
  return 2;
}

/// Repo-relative, '/'-separated path for matching and diagnostics.
std::string rel_path(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

bool has_lint_extension(const fs::path& p, const Config& cfg) {
  const std::string ext = p.extension().string();
  return std::find(cfg.run.extensions.begin(), cfg.run.extensions.end(),
                   ext) != cfg.run.extensions.end();
}

bool excluded(const std::string& rel, const Config& cfg) {
  return std::any_of(cfg.run.exclude.begin(), cfg.run.exclude.end(),
                     [&](const std::string& prefix) {
                       return rel.compare(0, prefix.size(), prefix) == 0;
                     });
}

void collect_dir(const fs::path& dir, const fs::path& root, const Config& cfg,
                 std::vector<fs::path>& out) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file() || !has_lint_extension(entry.path(), cfg)) {
      continue;
    }
    if (excluded(rel_path(entry.path(), root), cfg)) {
      continue;
    }
    out.push_back(entry.path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      opt.rules = argv[++i];
    } else if (arg == "--list-suppressions") {
      opt.list_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rcp-lint: unknown option " << arg << "\n";
      return usage();
    } else {
      opt.paths.push_back(arg);
    }
  }

  try {
    const fs::path root = fs::canonical(opt.root);
    if (opt.rules.empty()) {
      opt.rules = (root / "tools" / "lint_rules.toml").string();
    }
    const Config cfg = rcp::lint::load_config(
        rcp::lint::parse_toml_file(opt.rules));

    std::vector<fs::path> files;
    if (opt.paths.empty()) {
      for (const std::string& r : cfg.run.roots) {
        const fs::path dir = root / r;
        if (fs::is_directory(dir)) {
          collect_dir(dir, root, cfg, files);
        }
      }
    } else {
      for (const std::string& p : opt.paths) {
        const fs::path path = fs::path(p).is_absolute() ? fs::path(p)
                                                        : root / p;
        if (fs::is_directory(path)) {
          collect_dir(path, root, cfg, files);
        } else if (fs::is_regular_file(path)) {
          files.push_back(path);  // explicit files bypass excludes
        } else {
          std::cerr << "rcp-lint: no such file: " << p << "\n";
          return 2;
        }
      }
    }
    std::sort(files.begin(), files.end());

    std::vector<Diag> errors;
    std::size_t markers = 0;
    std::size_t honored = 0;
    std::vector<std::string> suppression_notes;
    for (const fs::path& file : files) {
      const ScannedFile scanned =
          rcp::lint::scan_file(file.string(), rel_path(file, root));
      const auto outcome = rcp::lint::apply_suppressions(
          scanned, rcp::lint::check_file(scanned, cfg));
      errors.insert(errors.end(), outcome.remaining.begin(),
                    outcome.remaining.end());
      errors.insert(errors.end(), outcome.meta.begin(), outcome.meta.end());
      honored += outcome.honored;
      for (const auto& s : scanned.suppressions) {
        if (s.malformed) {
          continue;
        }
        ++markers;
        suppression_notes.push_back(scanned.path + ":" +
                                    std::to_string(s.line) +
                                    ": note: allow(" + s.rule + ") — " +
                                    s.reason);
      }
    }

    std::sort(errors.begin(), errors.end(), [](const Diag& a, const Diag& b) {
      return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
    });
    for (const Diag& d : errors) {
      std::cout << d.file << ":" << d.line << ": error: " << d.msg << " ["
                << d.rule << "]\n";
    }
    if (opt.list_suppressions) {
      for (const std::string& note : suppression_notes) {
        std::cout << note << "\n";
      }
    }
    std::cout << "rcp-lint: " << files.size() << " files, " << errors.size()
              << " error(s), " << markers << " suppression(s) ("
              << honored << " diagnostic(s) suppressed)\n";
    return errors.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "rcp-lint: " << e.what() << "\n";
    return 2;
  }
}
