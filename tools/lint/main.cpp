// rcp-lint entry point: the two-pass engine.
//
// Pass 1 scans every translation unit in the configured roots (or the
// explicit paths) and builds the repo-wide model — include graph, class
// and annotation index, protocol registration sites (lint/model.hpp).
// Pass 2 runs the per-file rule classes plus the cross-file rules
// (thread-safety, include-cycle, layer-closure, unused-header,
// resilience-bound) over that model and prints GCC-style diagnostics:
//
//   src/core/foo.cpp:12: error: ... [rule-id]
//
// Exit status: 0 clean, 1 violations found, 2 usage/config error. See
// docs/LINT.md for the rule catalogue and suppression syntax.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "lint/model.hpp"
#include "lint/rules.hpp"
#include "lint/scan.hpp"
#include "lint/thread_safety.hpp"
#include "lint/toml.hpp"

namespace fs = std::filesystem;
using rcp::lint::Config;
using rcp::lint::Diag;
using rcp::lint::RepoModel;
using rcp::lint::ScannedFile;

namespace {

struct Options {
  std::string root = ".";
  std::string rules;
  std::string model_cache;  ///< Pass-1 model cache file ("" = no cache).
  bool list_suppressions = false;
  bool graph_dot = false;   ///< Print the include graph as DOT and exit.
  long expect_min_files = -1;  ///< Fail (exit 2) if fewer files linted.
  std::vector<std::string> paths;  ///< Explicit files/dirs; empty = config roots.
};

int usage() {
  std::cerr << "usage: rcp-lint [--root DIR] [--rules FILE]"
            << " [--model-cache FILE] [--graph-dot]\n"
            << "                [--expect-min-files N] [--list-suppressions]"
            << " [paths...]\n"
            << "  --root DIR            repository root (default: cwd)\n"
            << "  --rules FILE          rule set (default: ROOT/tools/lint_rules.toml)\n"
            << "  --model-cache FILE    reuse/update the pass-1 model cache; entries\n"
            << "                        are keyed on content hashes, a stale cache\n"
            << "                        is rebuilt silently\n"
            << "  --graph-dot           print the resolved include graph as DOT\n"
            << "                        and exit (no rules run)\n"
            << "  --expect-min-files N  exit 2 if fewer than N files were linted\n"
            << "                        (guards CI against an accidentally\n"
            << "                        narrowed tree)\n"
            << "  --list-suppressions   print every honored suppression\n"
            << "  paths                 files or directories to lint instead of\n"
            << "                        the configured roots (repo-relative or\n"
            << "                        absolute; explicit files skip excludes)\n";
  return 2;
}

/// Repo-relative, '/'-separated path for matching and diagnostics.
std::string rel_path(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

bool has_lint_extension(const fs::path& p, const Config& cfg) {
  const std::string ext = p.extension().string();
  return std::find(cfg.run.extensions.begin(), cfg.run.extensions.end(),
                   ext) != cfg.run.extensions.end();
}

bool excluded(const std::string& rel, const Config& cfg) {
  return std::any_of(cfg.run.exclude.begin(), cfg.run.exclude.end(),
                     [&](const std::string& prefix) {
                       return rel.compare(0, prefix.size(), prefix) == 0;
                     });
}

void collect_dir(const fs::path& dir, const fs::path& root, const Config& cfg,
                 std::vector<fs::path>& out) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file() || !has_lint_extension(entry.path(), cfg)) {
      continue;
    }
    if (excluded(rel_path(entry.path(), root), cfg)) {
      continue;
    }
    out.push_back(entry.path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      opt.rules = argv[++i];
    } else if (arg == "--model-cache" && i + 1 < argc) {
      opt.model_cache = argv[++i];
    } else if (arg == "--expect-min-files" && i + 1 < argc) {
      try {
        opt.expect_min_files = std::stol(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "rcp-lint: --expect-min-files needs a number\n";
        return usage();
      }
    } else if (arg == "--graph-dot") {
      opt.graph_dot = true;
    } else if (arg == "--list-suppressions") {
      opt.list_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rcp-lint: unknown option " << arg << "\n";
      return usage();
    } else {
      opt.paths.push_back(arg);
    }
  }

  try {
    const fs::path root = fs::canonical(opt.root);
    if (opt.rules.empty()) {
      opt.rules = (root / "tools" / "lint_rules.toml").string();
    }
    const Config cfg = rcp::lint::load_config(
        rcp::lint::parse_toml_file(opt.rules));

    std::vector<fs::path> files;
    if (opt.paths.empty()) {
      for (const std::string& r : cfg.run.roots) {
        const fs::path dir = root / r;
        if (fs::is_directory(dir)) {
          collect_dir(dir, root, cfg, files);
        }
      }
    } else {
      for (const std::string& p : opt.paths) {
        const fs::path path = fs::path(p).is_absolute() ? fs::path(p)
                                                        : root / p;
        if (fs::is_directory(path)) {
          collect_dir(path, root, cfg, files);
        } else if (fs::is_regular_file(path)) {
          files.push_back(path);  // explicit files bypass excludes
        } else {
          std::cerr << "rcp-lint: no such file: " << p << "\n";
          return 2;
        }
      }
    }
    std::sort(files.begin(), files.end());

    // ---- Pass 1: scan everything, build the repo model ------------------
    std::vector<ScannedFile> scans;
    scans.reserve(files.size());
    for (const fs::path& file : files) {
      scans.push_back(
          rcp::lint::scan_file(file.string(), rel_path(file, root)));
    }
    RepoModel cache;
    const bool have_cache =
        !opt.model_cache.empty() &&
        rcp::lint::load_model_cache(opt.model_cache, cache);
    const RepoModel model =
        rcp::lint::build_model(scans, have_cache ? &cache : nullptr);
    if (!opt.model_cache.empty()) {
      rcp::lint::save_model_cache(opt.model_cache, model);
    }

    if (opt.graph_dot) {
      std::cout << rcp::lint::to_dot(model);
      return 0;
    }

    // ---- Pass 2: per-file rules + cross-file rules over the model -------
    // Cross-file diagnostics are routed through the suppressions of the
    // file they point at, exactly like per-file ones.
    std::map<std::string, std::vector<Diag>> raw_by_file;
    for (const ScannedFile& scanned : scans) {
      std::vector<Diag>& raw = raw_by_file[scanned.path];
      const std::vector<Diag> per_file = rcp::lint::check_file(scanned, cfg);
      raw.insert(raw.end(), per_file.begin(), per_file.end());
      const std::vector<Diag> tsa =
          rcp::lint::check_thread_safety(scanned, model, cfg);
      raw.insert(raw.end(), tsa.begin(), tsa.end());
    }
    // Cross-file rules judge repo-level invariants, so they only run when
    // the whole configured tree was scanned: a partial model would call
    // every header unused and every declared protocol missing.
    std::vector<Diag> unroutable;  // diags against unscanned paths
    if (opt.paths.empty()) {
      for (const Diag& d : rcp::lint::check_repo(model, cfg)) {
        const auto it = raw_by_file.find(d.file);
        if (it != raw_by_file.end()) {
          it->second.push_back(d);
        } else {
          unroutable.push_back(d);
        }
      }
    }

    std::vector<Diag> errors = std::move(unroutable);
    std::size_t markers = 0;
    std::size_t honored = 0;
    std::vector<std::string> suppression_notes;
    for (const ScannedFile& scanned : scans) {
      const auto outcome = rcp::lint::apply_suppressions(
          scanned, raw_by_file[scanned.path]);
      errors.insert(errors.end(), outcome.remaining.begin(),
                    outcome.remaining.end());
      errors.insert(errors.end(), outcome.meta.begin(), outcome.meta.end());
      honored += outcome.honored;
      for (const auto& s : scanned.suppressions) {
        if (s.malformed) {
          continue;
        }
        ++markers;
        suppression_notes.push_back(scanned.path + ":" +
                                    std::to_string(s.line) +
                                    ": note: allow(" + s.rule + ") — " +
                                    s.reason);
      }
    }

    std::sort(errors.begin(), errors.end(), [](const Diag& a, const Diag& b) {
      return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
    });
    for (const Diag& d : errors) {
      std::cout << d.file << ":" << d.line << ": error: " << d.msg << " ["
                << d.rule << "]\n";
    }
    if (opt.list_suppressions) {
      for (const std::string& note : suppression_notes) {
        std::cout << note << "\n";
      }
    }
    std::cout << "rcp-lint: " << files.size() << " files, " << errors.size()
              << " error(s), " << markers << " suppression(s) ("
              << honored << " diagnostic(s) suppressed)\n";
    if (opt.expect_min_files >= 0 &&
        files.size() < static_cast<std::size_t>(opt.expect_min_files)) {
      std::cerr << "rcp-lint: expected at least " << opt.expect_min_files
                << " files, linted " << files.size()
                << " — the tree walk is narrower than CI assumes\n";
      return 2;
    }
    return errors.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "rcp-lint: " << e.what() << "\n";
    return 2;
  }
}
