// Pass 1 of the rcp-lint two-pass engine: the repo-wide model.
//
// Where scan.hpp sees one translation unit at a time, the RepoModel sees
// all of them at once:
//
//   * the resolved include graph (quoted includes rooted at src/ or
//     tools/, matched against the scanned file set), its strongly
//     connected components (cycles) and its transitive closure;
//   * a per-class annotation index built from the common/annotations.hpp
//     markers: which members are RCP_GUARDED_BY which capability, which
//     capability members exist (Mutex, ThreadAffinity), and which methods
//     carry RCP_REQUIRES / RCP_EXCLUDES / RCP_ASSERT_CAPABILITY /
//     RCP_NO_THREAD_SAFETY_ANALYSIS;
//   * every `validate(FaultModel::X)` protocol-registration site, for the
//     resilience-bound cross-check.
//
// Pass 2 (rules.cpp check_repo + thread_safety.cpp) runs flow-aware rules
// over this model; the model itself never emits diagnostics.
//
// The model is cacheable: save()/load() serialize the per-file extraction
// keyed on an FNV-1a hash of the file's blanked code, so an unchanged
// file's annotation parse is skipped on the next run (the CI lint job
// persists the cache across builds).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lint/scan.hpp"

namespace rcp::lint {

// ---- Token stream ------------------------------------------------------
// Both the annotation parser (pass 1) and the thread-safety checker
// (pass 2) work on the same trivial token stream over blanked code:
// identifiers, numbers and punctuation (with ::, ->, [[ and ]] fused),
// each carrying its 1-based source line.

struct Tok {
  enum class Kind : std::uint8_t { ident, number, punct };
  Kind kind = Kind::punct;
  std::string text;
  std::size_t line = 0;
};

[[nodiscard]] std::vector<Tok> tokenize(const std::vector<std::string>& code);

/// True for the RCP_* thread-safety annotation macros — token positions
/// that look like calls but never name a function.
[[nodiscard]] bool is_annotation_macro(const std::string& ident);

/// Index of the first identifier in [begin, end) that is directly followed
/// by '(' and is a plausible function name (annotation macros, casts,
/// control keywords and friends are skipped); returns `end` if none. This
/// is how both passes find "the function this statement declares/calls":
/// a member brace-init like `tick_ RCP_GUARDED_BY(m){}` has no such
/// identifier, so it is never mistaken for a method.
[[nodiscard]] std::size_t find_callee(const std::vector<Tok>& toks,
                                      std::size_t begin, std::size_t end);

// ---- Per-class annotation inventory ------------------------------------

struct MethodAnnotations {
  std::string name;
  std::vector<std::string> requires_caps;  ///< RCP_REQUIRES(...)
  std::vector<std::string> excludes_caps;  ///< RCP_EXCLUDES(...)
  std::string asserts_cap;                 ///< RCP_ASSERT_CAPABILITY(x)
  bool no_analysis = false;                ///< RCP_NO_THREAD_SAFETY_ANALYSIS
};

struct ClassModel {
  std::string name;
  std::size_t line = 0;  ///< line of the class head
  /// member -> capability it is guarded by (RCP_GUARDED_BY).
  std::map<std::string, std::string> guarded;
  /// Capability members: declared Mutex or ThreadAffinity.
  std::vector<std::string> capabilities;
  /// Annotated methods by name (unannotated methods are absent).
  std::map<std::string, MethodAnnotations> methods;
};

/// One `validate(FaultModel::X)` registration site.
struct ValidateSite {
  std::size_t line = 0;
  std::string model;  ///< "fail_stop" / "malicious" as written
};

struct FileModel {
  std::string path;
  std::uint64_t hash = 0;  ///< FNV-1a over the blanked code
  std::vector<Include> includes;
  std::vector<ClassModel> classes;
  std::vector<ValidateSite> validates;
  /// Resolved include edges: indices into RepoModel::files, sorted.
  std::vector<std::size_t> edges;
  bool from_cache = false;  ///< extraction reused from the model cache
};

struct RepoModel {
  std::vector<FileModel> files;            ///< parallel to the scan set
  std::map<std::string, std::size_t> index;  ///< path -> files index
  /// classes merged across files by name (a class annotated in its header
  /// is checked in its .cpp): name -> merged model.
  std::map<std::string, ClassModel> classes;
  /// Strongly connected components with >= 2 files (include cycles),
  /// each sorted by path; the list itself sorted by first member.
  std::vector<std::vector<std::size_t>> cycles;
  /// closure[i] = every file reachable from i via resolved includes
  /// (excluding i itself unless i is on a cycle), sorted.
  std::vector<std::vector<std::size_t>> closure;
  /// For unused-header detection: number of scanned files including i.
  std::vector<std::size_t> included_by;

  [[nodiscard]] std::uint64_t hash_of(const std::string& path) const {
    const auto it = index.find(path);
    return it == index.end() ? 0 : files[it->second].hash;
  }
};

/// FNV-1a over the blanked code lines *and* the include list (include
/// targets are string literals, which blanking erases from `code`), so the
/// cache key changes exactly when the model-relevant content changes.
[[nodiscard]] std::uint64_t content_hash(const ScannedFile& f);

/// Builds the model for `scans`. When `cache` is non-null, files whose
/// hash matches a cache entry reuse the cached extraction (the include
/// graph is always re-resolved — it depends on the file *set*).
[[nodiscard]] RepoModel build_model(const std::vector<ScannedFile>& scans,
                                    const RepoModel* cache);

/// Cache round-trip: a versioned text format ("rcp-lint-model-v1").
/// load_model_cache returns an empty model (and false) on a missing,
/// unreadable or version-mismatched file — a stale cache is never an
/// error, just a full rebuild.
bool load_model_cache(const std::string& path, RepoModel& out);
void save_model_cache(const std::string& path, const RepoModel& model);

/// Deterministic DOT rendering of the resolved include graph (sorted
/// nodes and edges), for docs and the --graph-dot golden test.
[[nodiscard]] std::string to_dot(const RepoModel& model);

}  // namespace rcp::lint
