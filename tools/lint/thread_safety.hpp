// Pass-2 thread-safety rule: a flow-aware lock tracker over function
// bodies, driven by the RCP_* annotations collected into the RepoModel.
//
// This is rcp-lint's portable rendition of clang's -Wthread-safety: the
// same annotations feed both, clang does the deep interprocedural version
// on the clang CI job, and this rule keeps the invariant enforced on every
// toolchain the tests run on. The tracker is lexical and intra-procedural
// on purpose (see docs/LINT.md): it knows
//
//   * scoped lockers (runtime::MutexLock, std::lock_guard, std::scoped_lock,
//     std::unique_lock) including manual lock()/unlock() on the variable,
//   * direct capability operations (mu_.lock(), mu_.unlock(),
//     aff_.assert_held() which grants until scope end),
//   * same-class method calls checked against their RCP_REQUIRES /
//     RCP_EXCLUDES / RCP_ASSERT_CAPABILITY annotations (cross-file: the
//     class may be annotated in its header and defined in its .cpp),
//   * bare accesses to RCP_GUARDED_BY members.
//
// Constructors and destructors are NOT exempt (stricter than clang): the
// thread that constructs or destroys an object must still be stated — by
// asserting the affinity or taking the lock.
#pragma once

#include <vector>

#include "lint/model.hpp"
#include "lint/rules.hpp"

namespace rcp::lint {

/// Checks every function body in `f` whose owning class is known to the
/// model. Files outside cfg.thread_safety.paths return no diagnostics.
[[nodiscard]] std::vector<Diag> check_thread_safety(const ScannedFile& f,
                                                    const RepoModel& model,
                                                    const Config& cfg);

}  // namespace rcp::lint
