// Minimal TOML-subset reader for tools/lint_rules.toml.
//
// rcp-lint deliberately has zero dependencies beyond the C++ standard
// library (no clang/LLVM, no TOML library), so it reads the small subset of
// TOML the rule file actually uses: `[table]` headers, `[[table]]`
// array-of-table headers, `key = value` pairs where a value is a basic
// string ("..." with \\ \" \n \t escapes), a literal string ('...', no
// escapes — used for regexes), a boolean, or a (possibly multi-line) array
// of strings. Anything outside that subset is a hard error: the rule file
// is part of the build contract and must not half-parse.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rcp::lint {

/// One `key = value` value: a string, a bool, or an array of strings.
struct TomlValue {
  enum class Kind { string, boolean, array };
  Kind kind = Kind::string;
  std::string str;
  bool boolean = false;
  std::vector<std::string> array;
};

/// One table ([name] or one element of [[name]]).
using TomlTable = std::map<std::string, TomlValue>;

/// Parsed document: table name -> occurrences ([name] yields one, [[name]]
/// one per header). Top-level keys live under the "" table.
using TomlDoc = std::map<std::string, std::vector<TomlTable>>;

/// Parses `path`; throws std::runtime_error with file:line context on any
/// syntax the subset does not cover.
[[nodiscard]] TomlDoc parse_toml_file(const std::string& path);

}  // namespace rcp::lint
