#include "lint/scan.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rcp::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Splits a file into lines, normalizing \r\n.
std::vector<std::string> read_lines(const std::string& abs_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + abs_path);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    lines.push_back(line);
  }
  return lines;
}

/// Lexer state carried across lines.
struct LexState {
  enum class Mode { code, block_comment, string, raw_string } mode = Mode::code;
  char quote = '"';          ///< Terminator for Mode::string ('"' or '\'').
  std::string raw_delim;     ///< )delim" terminator for raw strings.
};

/// Blanks comments and literals out of one line, appending comment text to
/// `comment_out`; returns the blanked code. Multi-line constructs carry
/// over through `st`.
std::string blank_line(const std::string& line, LexState& st,
                       std::string& comment_out) {
  std::string code;
  code.reserve(line.size());
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    const char c = line[i];
    switch (st.mode) {
      case LexState::Mode::block_comment: {
        if (c == '*' && i + 1 < n && line[i + 1] == '/') {
          st.mode = LexState::Mode::code;
          code.append("  ");
          i += 2;
        } else {
          comment_out.push_back(c);
          code.push_back(' ');
          ++i;
        }
        break;
      }
      case LexState::Mode::string: {
        if (c == '\\' && i + 1 < n) {
          code.append("  ");
          i += 2;
        } else {
          if (c == st.quote) {
            st.mode = LexState::Mode::code;
          }
          code.push_back(' ');
          ++i;
        }
        break;
      }
      case LexState::Mode::raw_string: {
        const std::string end = ")" + st.raw_delim + "\"";
        const std::size_t pos = line.find(end, i);
        if (pos == std::string::npos) {
          code.append(n - i, ' ');
          i = n;
        } else {
          code.append(pos + end.size() - i, ' ');
          i = pos + end.size();
          st.mode = LexState::Mode::code;
        }
        break;
      }
      case LexState::Mode::code: {
        if (c == '/' && i + 1 < n && line[i + 1] == '/') {
          comment_out.append(line.substr(i + 2));
          code.append(n - i, ' ');
          i = n;
        } else if (c == '/' && i + 1 < n && line[i + 1] == '*') {
          st.mode = LexState::Mode::block_comment;
          code.append("  ");
          i += 2;
        } else if (c == '"' || c == '\'') {
          // Digit separator (1'000'000): a quote sandwiched between
          // identifier characters is not a literal delimiter.
          if (c == '\'' && i > 0 && is_ident(line[i - 1]) && i + 1 < n &&
              is_ident(line[i + 1])) {
            code.push_back(' ');
            ++i;
            break;
          }
          // Raw string: R"delim( ... — the R may carry encoding prefixes.
          if (c == '"' && i > 0 && line[i - 1] == 'R' &&
              (i < 2 || !is_ident(line[i - 2]))) {
            const std::size_t open = line.find('(', i + 1);
            if (open != std::string::npos) {
              st.raw_delim = line.substr(i + 1, open - i - 1);
              st.mode = LexState::Mode::raw_string;
              code.append(open - i + 1, ' ');
              i = open + 1;
              break;
            }
          }
          st.mode = LexState::Mode::string;
          st.quote = c;
          code.push_back(' ');
          ++i;
        } else {
          code.push_back(c);
          ++i;
        }
        break;
      }
    }
  }
  // An unterminated // comment never spans lines; plain strings only span
  // via a trailing backslash, which the repo does not use — reset to be
  // line-robust (block comments and raw strings do legitimately span).
  if (st.mode == LexState::Mode::string) {
    st.mode = LexState::Mode::code;
  }
  return code;
}

/// Parses a lint suppression marker out of one line's comment text, if any.
void parse_suppression(const std::string& comment, std::size_t line_no,
                       bool standalone, std::vector<Suppression>& out) {
  const std::size_t at = comment.find("rcp-lint:");
  if (at == std::string::npos) {
    return;
  }
  Suppression s;
  s.line = line_no;
  s.standalone = standalone;
  std::size_t i = at + std::string("rcp-lint:").size();
  while (i < comment.size() && comment[i] == ' ') {
    ++i;
  }
  std::string keyword;
  while (i < comment.size() && (is_ident(comment[i]) || comment[i] == '-')) {
    keyword.push_back(comment[i]);
    ++i;
  }
  if (keyword == "allow-file") {
    s.whole_file = true;
  } else if (keyword != "allow") {
    s.malformed = true;
    out.push_back(std::move(s));
    return;
  }
  if (i >= comment.size() || comment[i] != '(') {
    s.malformed = true;
    out.push_back(std::move(s));
    return;
  }
  ++i;
  while (i < comment.size() && comment[i] != ')') {
    s.rule.push_back(comment[i]);
    ++i;
  }
  if (i >= comment.size() || s.rule.empty()) {
    s.malformed = true;
    out.push_back(std::move(s));
    return;
  }
  ++i;  // ')'
  while (i < comment.size() && comment[i] == ' ') {
    ++i;
  }
  s.reason = comment.substr(i);
  while (!s.reason.empty() && s.reason.back() == ' ') {
    s.reason.pop_back();
  }
  if (s.reason.empty()) {
    s.malformed = true;  // a suppression must say why
  }
  out.push_back(std::move(s));
}

bool blank_code(const std::string& code) {
  for (const char c : code) {
    if (c != ' ' && c != '\t') {
      return false;
    }
  }
  return true;
}

}  // namespace

ScannedFile scan_file(const std::string& abs_path,
                      const std::string& rel_path) {
  ScannedFile f;
  f.path = rel_path;
  const std::vector<std::string> lines = read_lines(abs_path);
  LexState st;
  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    std::string comment;
    std::string code = blank_line(lines[idx], st, comment);
    const std::size_t line_no = idx + 1;
    parse_suppression(comment, line_no, blank_code(code), f.suppressions);

    // #include extraction (only meaningful on code lines).
    std::size_t i = 0;
    while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) {
      ++i;
    }
    if (i < code.size() && code[i] == '#') {
      ++i;
      while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) {
        ++i;
      }
      if (code.compare(i, 7, "include") == 0) {
        // The blanked line has spaces where the "..." target was; recover
        // the target from the raw line instead.
        const std::string& raw = lines[idx];
        const std::size_t lt = raw.find_first_of("<\"", i + 7);
        if (lt != std::string::npos) {
          const char close_ch = raw[lt] == '<' ? '>' : '"';
          const std::size_t gt = raw.find(close_ch, lt + 1);
          if (gt != std::string::npos) {
            f.includes.push_back(Include{
                line_no, raw.substr(lt + 1, gt - lt - 1), raw[lt] == '<'});
          }
        }
      }
    }
    f.code.push_back(std::move(code));
  }
  return f;
}

bool line_has_token(const std::string& code, const std::string& token,
                    bool as_call, bool member_only) {
  std::size_t from = 0;
  while (true) {
    const std::size_t at = code.find(token, from);
    if (at == std::string::npos) {
      return false;
    }
    from = at + 1;
    // Identifier boundaries.
    if (at > 0 && is_ident(code[at - 1])) {
      continue;
    }
    const std::size_t end = at + token.size();
    if (end < code.size() && is_ident(code[end])) {
      continue;
    }
    // Member access prefix: `.token` / `->token`.
    const bool member =
        (at > 0 && code[at - 1] == '.') ||
        (at > 1 && code[at - 2] == '-' && code[at - 1] == '>');
    if (member != member_only) {
      continue;
    }
    if (as_call) {
      std::size_t j = end;
      while (j < code.size() && code[j] == ' ') {
        ++j;
      }
      if (j >= code.size() || code[j] != '(') {
        continue;
      }
    }
    return true;
  }
}

}  // namespace rcp::lint
