#include "lint/toml.hpp"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rcp::lint {

namespace {

[[noreturn]] void fail(const std::string& path, std::size_t line,
                       const std::string& what) {
  std::ostringstream os;
  os << path << ":" << line << ": toml: " << what;
  throw std::runtime_error(os.str());
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
    ++i;
  }
}

/// True if the rest of `s` from `i` is blank or a comment.
bool at_line_end(const std::string& s, std::size_t i) {
  skip_ws(s, i);
  return i >= s.size() || s[i] == '#';
}

std::string parse_string(const std::string& path, std::size_t line_no,
                         const std::string& s, std::size_t& i) {
  const char quote = s[i];
  ++i;
  std::string out;
  while (i < s.size()) {
    const char c = s[i];
    if (c == quote) {
      ++i;
      return out;
    }
    if (quote == '"' && c == '\\') {
      if (i + 1 >= s.size()) {
        fail(path, line_no, "dangling escape in string");
      }
      const char esc = s[i + 1];
      switch (esc) {
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        default: fail(path, line_no, "unsupported escape in string");
      }
      i += 2;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  fail(path, line_no, "unterminated string");
}

}  // namespace

TomlDoc parse_toml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open rules file: " + path);
  }
  TomlDoc doc;
  TomlTable* current = &doc[""].emplace_back();
  // Duplicate [table] headers are hard errors (silent merging hid typos
  // and shadowed earlier keys); so is redeclaring a plain [table] as an
  // [[array-of-tables]] or vice versa.
  std::set<std::string> plain_tables;
  std::set<std::string> array_tables;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    skip_ws(line, i);
    if (i >= line.size() || line[i] == '#') {
      continue;
    }
    if (line[i] == '[') {
      const bool array_of_tables = i + 1 < line.size() && line[i + 1] == '[';
      const std::size_t open = i + (array_of_tables ? 2 : 1);
      const std::string closer = array_of_tables ? "]]" : "]";
      const std::size_t close = line.find(closer, open);
      if (close == std::string::npos ||
          !at_line_end(line, close + closer.size())) {
        fail(path, line_no, "malformed table header");
      }
      std::string name = line.substr(open, close - open);
      if (name.empty()) {
        fail(path, line_no, "empty table name");
      }
      auto& tables = doc[name];
      if (array_of_tables) {
        if (plain_tables.count(name) != 0) {
          fail(path, line_no,
               "table [" + name + "] redeclared as array of tables [[" +
                   name + "]]");
        }
        array_tables.insert(name);
      } else {
        if (array_tables.count(name) != 0) {
          fail(path, line_no, "array of tables [[" + name +
                                  "]] redeclared as plain table [" + name +
                                  "]");
        }
        if (!plain_tables.insert(name).second) {
          fail(path, line_no, "duplicate table [" + name + "]");
        }
      }
      tables.emplace_back();
      current = &tables.back();
      continue;
    }
    // key = value
    const std::size_t key_start = i;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) != 0 ||
            line[i] == '_' || line[i] == '-')) {
      ++i;
    }
    const std::string key = line.substr(key_start, i - key_start);
    skip_ws(line, i);
    if (key.empty() || i >= line.size() || line[i] != '=') {
      fail(path, line_no, "expected `key = value`");
    }
    ++i;
    skip_ws(line, i);
    if (i >= line.size()) {
      fail(path, line_no, "missing value");
    }
    TomlValue value;
    if (line[i] == '"' || line[i] == '\'') {
      value.kind = TomlValue::Kind::string;
      value.str = parse_string(path, line_no, line, i);
    } else if (line[i] == '[') {
      value.kind = TomlValue::Kind::array;
      ++i;
      bool done = false;
      bool expect_sep = false;  // after an element: only `,` or `]`
      while (!done) {
        skip_ws(line, i);
        if (at_line_end(line, i)) {
          // Multi-line array: keep consuming lines until the closing `]`.
          if (!std::getline(in, line)) {
            fail(path, line_no, "unterminated array");
          }
          ++line_no;
          i = 0;
          continue;
        }
        if (line[i] == ']') {
          ++i;
          done = true;
        } else if (line[i] == ',') {
          if (!expect_sep) {
            fail(path, line_no, "unexpected `,` in array");
          }
          expect_sep = false;
          ++i;
        } else if (line[i] == '"' || line[i] == '\'') {
          if (expect_sep) {
            fail(path, line_no, "missing `,` between array elements");
          }
          value.array.push_back(parse_string(path, line_no, line, i));
          expect_sep = true;
        } else {
          fail(path, line_no, "arrays may contain only strings");
        }
      }
    } else if (line.compare(i, 4, "true") == 0) {
      value.kind = TomlValue::Kind::boolean;
      value.boolean = true;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      value.kind = TomlValue::Kind::boolean;
      value.boolean = false;
      i += 5;
    } else {
      fail(path, line_no, "unsupported value type");
    }
    if (!at_line_end(line, i)) {
      fail(path, line_no, "trailing characters after value");
    }
    if (current->count(key) != 0) {
      fail(path, line_no, "duplicate key: " + key);
    }
    (*current)[key] = std::move(value);
  }
  return doc;
}

}  // namespace rcp::lint
