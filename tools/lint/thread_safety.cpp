#include "lint/thread_safety.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace rcp::lint {

namespace {

[[nodiscard]] bool starts_with(const std::string& s,
                               const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

[[nodiscard]] bool is_locker_type(const std::string& s) {
  return s == "MutexLock" || s == "lock_guard" || s == "scoped_lock" ||
         s == "unique_lock";
}

/// Flow tracker for one function body. Lexical scoping: a `{` pushes, a
/// `}` pops and releases whatever that scope acquired through scoped
/// lockers or capability asserts. Manual mu_.lock()/mu_.unlock() is not
/// scope-bound — it toggles the count directly.
class BodyChecker {
 public:
  BodyChecker(const std::vector<Tok>& t, const ClassModel& cls,
              const std::string& path, std::vector<Diag>& out)
      : t_(t), cls_(cls), path_(path), out_(out) {
    for (const std::string& cap : cls_.capabilities) {
      caps_.insert(cap);
    }
  }

  void run(std::size_t open, std::size_t close,
           const MethodAnnotations* ann) {
    if (ann != nullptr) {
      for (const std::string& cap : ann->requires_caps) {
        ++held_[cap];
      }
      if (!ann->asserts_cap.empty() && ann->asserts_cap != "this") {
        ++held_[ann->asserts_cap];
      }
    }
    scopes_.emplace_back();
    for (std::size_t i = open + 1; i < close; ++i) {
      const Tok& tok = t_[i];
      if (tok.text == "{") {
        scopes_.emplace_back();
        continue;
      }
      if (tok.text == "}") {
        pop_scope();
        continue;
      }
      if (tok.kind != Tok::Kind::ident) {
        continue;
      }
      // Scoped locker declaration: [const] [ns::]MutexLock/lock_guard/...
      // [<...>] var ( caps... )
      if (is_locker_type(tok.text)) {
        i = declare_locker(i, close);
        continue;
      }
      // Object patterns: X.lock() / X->unlock() / X.assert_held().
      if (i + 1 < close &&
          (t_[i + 1].text == "." || t_[i + 1].text == "->") &&
          tok.text != "this") {
        handle_object(i, close);
        continue;
      }
      // Unqualified (or this->) uses. Skip `obj.member` / `ns::member`:
      // another object's state is that object's business (clang does the
      // deep cross-object analysis).
      const bool member_of_other =
          i > open + 1 &&
          ((t_[i - 1].text == "." &&
            !(i > open + 2 && t_[i - 2].text == "this")) ||
           (t_[i - 1].text == "->" &&
            !(i > open + 2 && t_[i - 2].text == "this")) ||
           t_[i - 1].text == "::");
      if (member_of_other) {
        continue;
      }
      check_guarded_use(tok);
      if (i + 1 < close && t_[i + 1].text == "(" &&
          !is_annotation_macro(tok.text)) {
        check_method_call(tok);
      }
    }
  }

 private:
  struct Locker {
    std::vector<std::string> caps;
    bool engaged = true;
  };

  struct ScopeEntry {
    std::vector<std::string> asserted;  ///< caps granted until scope exit
    std::vector<std::string> lockers;   ///< locker vars declared here
  };

  void pop_scope() {
    if (scopes_.empty()) {
      return;
    }
    for (const std::string& cap : scopes_.back().asserted) {
      --held_[cap];
    }
    for (const std::string& var : scopes_.back().lockers) {
      const auto it = lockers_.find(var);
      if (it != lockers_.end()) {
        if (it->second.engaged) {
          for (const std::string& cap : it->second.caps) {
            --held_[cap];
          }
        }
        lockers_.erase(it);
      }
    }
    scopes_.pop_back();
  }

  [[nodiscard]] bool is_held(const std::string& cap) const {
    const auto it = held_.find(cap);
    return it != held_.end() && it->second > 0;
  }

  [[nodiscard]] std::size_t match_paren(std::size_t open,
                                        std::size_t end) const {
    int depth = 0;
    for (std::size_t i = open; i < end; ++i) {
      if (t_[i].text == "(" || t_[i].text == "{") {
        ++depth;
      } else if (t_[i].text == ")" || t_[i].text == "}") {
        if (--depth == 0) {
          return i;
        }
      }
    }
    return end;
  }

  /// `i` sits on a locker type token; returns the index to resume after.
  std::size_t declare_locker(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    if (j < end && t_[j].text == "<") {  // skip template arguments
      int depth = 0;
      for (; j < end; ++j) {
        if (t_[j].text == "<") {
          ++depth;
        } else if (t_[j].text == ">") {
          if (--depth == 0) {
            ++j;
            break;
          }
        }
      }
    }
    if (j >= end || t_[j].kind != Tok::Kind::ident) {
      return i;  // not a declaration (e.g. a cast or mention)
    }
    const std::string var = t_[j].text;
    ++j;
    if (j >= end || (t_[j].text != "(" && t_[j].text != "{")) {
      return i;
    }
    const std::size_t close = match_paren(j, end);
    Locker locker;
    std::string cur;
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      const std::string& s = t_[k].text;
      if (s == "(" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "}") {
        --depth;
      } else if (s == "," && depth == 0) {
        if (!cur.empty()) {
          locker.caps.push_back(cur);
        }
        cur.clear();
        continue;
      }
      cur += s;
    }
    if (!cur.empty()) {
      locker.caps.push_back(cur);
    }
    // std::defer_lock / adopt_lock tags are not capabilities.
    const auto is_tag = [](const std::string& s) {
      return s.find("defer_lock") != std::string::npos ||
             s.find("adopt_lock") != std::string::npos ||
             s.find("try_to_lock") != std::string::npos;
    };
    locker.engaged = std::none_of(locker.caps.begin(), locker.caps.end(),
                                  is_tag);
    locker.caps.erase(
        std::remove_if(locker.caps.begin(), locker.caps.end(), is_tag),
        locker.caps.end());
    if (locker.engaged) {
      for (const std::string& cap : locker.caps) {
        ++held_[cap];
      }
    }
    if (!scopes_.empty()) {
      scopes_.back().lockers.push_back(var);
    }
    lockers_[var] = std::move(locker);
    return close;
  }

  /// `i` sits on an identifier followed by `.` or `->`.
  void handle_object(std::size_t i, std::size_t end) {
    const std::string& obj = t_[i].text;
    const bool is_call = i + 3 < end && t_[i + 2].kind == Tok::Kind::ident &&
                         t_[i + 3].text == "(";
    const std::string method = is_call ? t_[i + 2].text : "";
    const auto locker = lockers_.find(obj);
    if (locker != lockers_.end()) {
      if (method == "lock" && !locker->second.engaged) {
        locker->second.engaged = true;
        for (const std::string& cap : locker->second.caps) {
          ++held_[cap];
        }
      } else if (method == "unlock" && locker->second.engaged) {
        locker->second.engaged = false;
        for (const std::string& cap : locker->second.caps) {
          --held_[cap];
        }
      }
      return;
    }
    if (caps_.count(obj) != 0) {
      if (method == "lock") {
        ++held_[obj];
      } else if (method == "unlock") {
        --held_[obj];
      } else if (method == "assert_held") {
        ++held_[obj];
        if (!scopes_.empty()) {
          scopes_.back().asserted.push_back(obj);
        }
      }
      return;
    }
    // Accessing a member of a guarded object uses the object itself.
    check_guarded_use(t_[i]);
  }

  void check_guarded_use(const Tok& tok) {
    const auto it = cls_.guarded.find(tok.text);
    if (it == cls_.guarded.end() || is_held(it->second)) {
      return;
    }
    out_.push_back(Diag{
        path_, tok.line, "thread-safety",
        "`" + tok.text + "` is guarded by `" + it->second +
            "` which is not held here; lock it, assert the thread role, "
            "or annotate the access (common/annotations.hpp)"});
  }

  void check_method_call(const Tok& tok) {
    const auto it = cls_.methods.find(tok.text);
    if (it == cls_.methods.end()) {
      return;
    }
    const MethodAnnotations& m = it->second;
    for (const std::string& cap : m.requires_caps) {
      if (!is_held(cap)) {
        out_.push_back(Diag{
            path_, tok.line, "thread-safety",
            "call to `" + tok.text + "()` requires capability `" + cap +
                "` which is not held here"});
      }
    }
    for (const std::string& cap : m.excludes_caps) {
      if (is_held(cap)) {
        out_.push_back(Diag{
            path_, tok.line, "thread-safety",
            "call to `" + tok.text + "()` excludes capability `" + cap +
                "` which is held here (self-deadlock)"});
      }
    }
    if (!m.asserts_cap.empty() && m.asserts_cap != "this") {
      ++held_[m.asserts_cap];
      if (!scopes_.empty()) {
        scopes_.back().asserted.push_back(m.asserts_cap);
      }
    }
  }

  const std::vector<Tok>& t_;
  const ClassModel& cls_;
  const std::string& path_;
  std::vector<Diag>& out_;
  std::set<std::string> caps_;
  std::map<std::string, int> held_;
  std::map<std::string, Locker> lockers_;
  std::vector<ScopeEntry> scopes_;
};

/// Finds the matching `}` for the `{` at `open` in the raw token stream.
[[nodiscard]] std::size_t match_brace(const std::vector<Tok>& t,
                                      std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "{") {
      ++depth;
    } else if (t[i].text == "}") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return t.size();
}

}  // namespace

std::vector<Diag> check_thread_safety(const ScannedFile& f,
                                      const RepoModel& model,
                                      const Config& cfg) {
  std::vector<Diag> out;
  if (std::none_of(cfg.thread_safety.paths.begin(),
                   cfg.thread_safety.paths.end(),
                   [&](const std::string& p) {
                     return starts_with(f.path, p);
                   })) {
    return out;
  }
  const std::vector<Tok> t = tokenize(f.code);

  // The same scope walk as the model's class extraction, but here a `{`
  // that closes a function head hands the body to the BodyChecker.
  enum class ScopeKind : std::uint8_t { transparent, cls, opaque };
  struct Scope {
    ScopeKind kind;
    std::string cls_name;
  };
  std::vector<Scope> stack;
  std::size_t stmt = 0;
  const auto level = [&]() {
    return stack.empty() ? ScopeKind::transparent : stack.back().kind;
  };
  const auto enclosing_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == ScopeKind::cls) {
        return it->cls_name;
      }
    }
    return "";
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (level() == ScopeKind::opaque) {
      if (s == "{") {
        stack.push_back({ScopeKind::opaque, ""});
      } else if (s == "}") {
        stack.pop_back();
        stmt = i + 1;
      }
      continue;
    }
    if (s == ";") {
      stmt = i + 1;
    } else if (s == "{") {
      bool has_enum = false;
      bool has_class = false;
      bool has_ns = false;
      bool in_bases = false;  // past the base-clause ':' of a class head
      std::string last_ident;
      static const std::set<std::string> kHeadKeywords = {
          "class",  "struct",    "union",   "final",    "template",
          "public", "protected", "private", "typename", "virtual",
          "enum",   "namespace",
      };
      for (std::size_t j = stmt; j < i; ++j) {
        if (t[j].text == ":") {
          in_bases = true;
        }
        if (t[j].kind != Tok::Kind::ident) {
          continue;
        }
        if (t[j].text == "template" && j + 1 < i && t[j + 1].text == "<") {
          int depth = 0;  // `template <class T>` is not a class head
          for (++j; j < i; ++j) {
            if (t[j].text == "<") {
              ++depth;
            } else if (t[j].text == ">" && --depth == 0) {
              break;
            }
          }
          continue;
        }
        if (t[j].text == "enum") {
          has_enum = true;
        } else if (t[j].text == "class" || t[j].text == "struct" ||
                   t[j].text == "union") {
          has_class = true;
        } else if (t[j].text == "namespace") {
          has_ns = true;
        }
        if (!in_bases && kHeadKeywords.count(t[j].text) == 0 &&
            !is_annotation_macro(t[j].text)) {
          last_ident = t[j].text;
        }
      }
      if (has_ns) {
        stack.push_back({ScopeKind::transparent, ""});
        stmt = i + 1;
        continue;
      }
      if (has_class && !has_enum) {
        stack.push_back({ScopeKind::cls, last_ident});
        stmt = i + 1;
        continue;
      }
      // Candidate function body: who owns it?
      const std::size_t callee = find_callee(t, stmt, i);
      std::string owner;
      if (callee != i) {
        if (callee >= stmt + 2 && t[callee - 1].text == "::" &&
            t[callee - 2].kind == Tok::Kind::ident) {
          owner = t[callee - 2].text;  // Cls::method(...)
        } else if (callee >= stmt + 3 && t[callee - 1].text == "~" &&
                   t[callee - 2].text == "::" &&
                   t[callee - 3].kind == Tok::Kind::ident) {
          owner = t[callee - 3].text;  // Cls::~Cls(...)
        } else {
          owner = enclosing_class();
        }
      }
      const auto cls_it =
          owner.empty() ? model.classes.end() : model.classes.find(owner);
      if (callee == i || cls_it == model.classes.end()) {
        // Free function / unknown class: nothing annotated to check.
        stack.push_back({ScopeKind::opaque, ""});
        stmt = i + 1;
        continue;
      }
      const ClassModel& cls = cls_it->second;
      const auto method_it = cls.methods.find(t[callee].text);
      const MethodAnnotations* ann =
          method_it == cls.methods.end() ? nullptr : &method_it->second;
      const std::size_t close = match_brace(t, i);
      if (ann == nullptr || !ann->no_analysis) {
        BodyChecker(t, cls, f.path, out).run(i, close, ann);
      }
      i = close;
      stmt = i + 1;
    } else if (s == "}") {
      if (!stack.empty()) {
        stack.pop_back();
      }
      stmt = i + 1;
    }
  }
  return out;
}

}  // namespace rcp::lint
