// Translation-unit scanner for rcp-lint.
//
// rcp-lint needs exactly three views of a C++ source file, all line-exact so
// diagnostics carry real line numbers:
//
//   * `code`      — the file with comments, string literals and character
//                   literals blanked out (newlines preserved), so token and
//                   regex rules never fire on prose or payload bytes;
//   * `includes`  — every #include directive with its target and whether it
//                   used angle brackets;
//   * `suppressions` — every lint `allow(rule-id) reason` marker comment.
//
// This is a hand-rolled lexer, not a compiler frontend, on purpose: the
// invariants being checked are lexical (banned headers, banned identifiers,
// banned call spellings), a full parse buys nothing, and avoiding a
// clang/LLVM dev dependency keeps the lint gate runnable everywhere the
// tests run. The lexer does understand the hard lexical cases: escape
// sequences, raw strings R"delim(...)delim", digit separators (1'000'000),
// and line continuations inside // comments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rcp::lint {

struct Include {
  std::size_t line = 0;     ///< 1-based line of the directive.
  std::string target;       ///< Header path as written, without delimiters.
  bool angled = false;      ///< <...> (true) vs "..." (false).
};

struct Suppression {
  std::size_t line = 0;     ///< 1-based line the comment sits on.
  std::string rule;         ///< Rule id inside allow(...).
  std::string reason;       ///< Free text after the closing parenthesis.
  bool standalone = false;  ///< Comment is alone on its line (covers the
                            ///< next line as well as its own).
  bool whole_file = false;  ///< allow-file(...): covers the whole file.
  bool malformed = false;   ///< Marker present but unparsable / no reason.
};

struct ScannedFile {
  std::string path;                    ///< Repo-relative, '/'-separated.
  std::vector<std::string> code;       ///< Blanked code, one entry per line.
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;
};

/// Scans the file at `abs_path`, reporting it under `rel_path` in
/// diagnostics. Throws std::runtime_error if the file cannot be read.
[[nodiscard]] ScannedFile scan_file(const std::string& abs_path,
                                    const std::string& rel_path);

/// True if `code` contains identifier `token` at an identifier boundary at
/// some position; `as_call` additionally requires a following `(`, and
/// `member_only` requires a preceding `.` or `->`. Member access (`.`/`->`)
/// before the token is *excluded* unless member_only is set, so `x.time()`
/// does not trip the `time` rule while `std::time(` and bare `time(` do.
[[nodiscard]] bool line_has_token(const std::string& code,
                                  const std::string& token, bool as_call,
                                  bool member_only);

}  // namespace rcp::lint
