#include "lint/rules.hpp"

#include <algorithm>
#include <initializer_list>
#include <set>
#include <stdexcept>

#include "lint/model.hpp"

namespace rcp::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool matches_any_prefix(const std::string& path,
                        const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) { return starts_with(path, p); });
}

/// "sys/*" matches any header under sys/; otherwise exact match.
bool header_matches(const std::string& target, const std::string& pattern) {
  if (pattern.size() >= 2 && pattern.compare(pattern.size() - 2, 2, "/*") == 0) {
    return starts_with(target, pattern.substr(0, pattern.size() - 1));
  }
  return target == pattern;
}

std::vector<std::string> get_array(const TomlTable& t, const std::string& key) {
  const auto it = t.find(key);
  if (it == t.end()) {
    return {};
  }
  if (it->second.kind == TomlValue::Kind::string) {
    return {it->second.str};
  }
  if (it->second.kind != TomlValue::Kind::array) {
    throw std::runtime_error("rules: key `" + key + "` must be an array");
  }
  return it->second.array;
}

const TomlTable* get_table(const TomlDoc& doc, const std::string& name) {
  const auto it = doc.find(name);
  return it == doc.end() || it->second.empty() ? nullptr : &it->second.front();
}

/// A typoed key must never silently disable a rule: every key in a section
/// has to be one the engine actually reads.
void require_keys(const TomlTable& t, const std::string& section,
                  std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : t) {
    if (std::none_of(allowed.begin(), allowed.end(),
                     [&](const char* a) { return key == a; })) {
      throw std::runtime_error("rules: unknown key `" + key + "` in [" +
                               section + "]");
    }
  }
}

/// Lines occupied by #include directives: token rules skip them so that
/// `#include <new>` or `#include <ctime>` never trips a token ban (include
/// hygiene belongs to the layer/os-header rules).
std::vector<bool> include_lines(const ScannedFile& f) {
  std::vector<bool> is_include(f.code.size() + 1, false);
  for (const Include& inc : f.includes) {
    if (inc.line < is_include.size()) {
      is_include[inc.line] = true;
    }
  }
  return is_include;
}

/// Index of the layer owning `path`, or npos.
std::size_t layer_of(const std::string& path,
                     const std::vector<LayerCfg>& layers) {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (matches_any_prefix(path, layers[i].paths)) {
      return i;
    }
  }
  return std::string::npos;
}

void check_layering(const ScannedFile& f, const Config& cfg,
                    std::vector<Diag>& out) {
  const std::size_t self = layer_of(f.path, cfg.layers);
  if (self == std::string::npos) {
    return;  // tests/bench/examples: unconstrained edges
  }
  const LayerCfg& layer = cfg.layers[self];
  for (const Include& inc : f.includes) {
    if (inc.angled) {
      continue;  // system headers are the os-header rule's business
    }
    // Quoted includes in layered code are rooted at src/.
    const std::size_t target = layer_of("src/" + inc.target, cfg.layers);
    if (target == std::string::npos) {
      out.push_back(Diag{f.path, inc.line, "layer",
                         "include \"" + inc.target +
                             "\" does not resolve to a repo layer; layered "
                             "code may only include layer headers"});
      continue;
    }
    if (target == self) {
      continue;
    }
    const std::string& dep = cfg.layers[target].name;
    if (std::find(layer.deps.begin(), layer.deps.end(), dep) ==
        layer.deps.end()) {
      out.push_back(Diag{f.path, inc.line, "layer",
                         "layer `" + layer.name + "` may not include \"" +
                             inc.target + "\" from layer `" + dep + "`"});
    }
  }
}

void check_os_headers(const ScannedFile& f, const Config& cfg,
                      std::vector<Diag>& out) {
  if (matches_any_prefix(f.path, cfg.os_headers.allow_paths)) {
    return;
  }
  for (const Include& inc : f.includes) {
    for (const std::string& pattern : cfg.os_headers.banned) {
      if (header_matches(inc.target, pattern)) {
        out.push_back(Diag{f.path, inc.line, "os-header",
                           "OS/concurrency header <" + inc.target +
                               "> is banned outside the net/runtime layers "
                               "(sans-io cores, see docs/LINT.md)"});
        break;
      }
    }
  }
}

void check_os_exclusive(const ScannedFile& f, const Config& cfg,
                        std::vector<Diag>& out) {
  for (const OsExclusiveCfg& rule : cfg.os_exclusive) {
    if (matches_any_prefix(f.path, rule.allow)) {
      continue;
    }
    for (const Include& inc : f.includes) {
      if (inc.target == rule.header) {
        std::string owners;
        for (const std::string& a : rule.allow) {
          owners += owners.empty() ? a : ", " + a;
        }
        out.push_back(Diag{f.path, inc.line, "os-exclusive",
                           "header <" + rule.header + "> is exclusive to " +
                               owners +
                               "; program against the backend-hiding "
                               "interface instead (docs/LINT.md)"});
      }
    }
  }
}

void check_determinism(const ScannedFile& f, const Config& cfg,
                       std::vector<Diag>& out) {
  if (matches_any_prefix(f.path, cfg.determinism.allow_paths)) {
    return;
  }
  const std::vector<bool> skip = include_lines(f);
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (skip[i + 1]) {
      continue;
    }
    for (const std::string& token : cfg.determinism.tokens) {
      if (line_has_token(f.code[i], token, /*as_call=*/false,
                         /*member_only=*/false)) {
        out.push_back(Diag{f.path, i + 1, "determinism",
                           "non-deterministic construct `" + token +
                               "`; all randomness must flow from the seeded "
                               "rcp::Rng (common/rng.hpp)"});
      }
    }
    for (const std::string& call : cfg.determinism.calls) {
      if (line_has_token(f.code[i], call, /*as_call=*/true,
                         /*member_only=*/false)) {
        out.push_back(Diag{f.path, i + 1, "determinism",
                           "call to `" + call +
                               "()` breaks seed-determinism; derive values "
                               "from the trial seed instead"});
      }
    }
  }
  // determinism-strict: in the strict paths even the report-only clocks
  // are out — a fuzz plan's execution is a pure function of the plan
  // bytes, so nothing in the subsystem may observe time at all.
  if (!matches_any_prefix(f.path, cfg.determinism.strict_paths)) {
    return;
  }
  for (const Include& inc : f.includes) {
    for (const std::string& header : cfg.determinism.strict_headers) {
      if (inc.target == header) {
        out.push_back(Diag{f.path, inc.line, "determinism-strict",
                           "header <" + header +
                               "> is banned in seed-deterministic paths; "
                               "plan execution must be a pure function of "
                               "the plan bytes (docs/FUZZ.md)"});
      }
    }
  }
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (skip[i + 1]) {
      continue;
    }
    for (const std::string& token : cfg.determinism.strict_tokens) {
      if (line_has_token(f.code[i], token, /*as_call=*/false,
                         /*member_only=*/false)) {
        out.push_back(Diag{f.path, i + 1, "determinism-strict",
                           "`" + token +
                               "` in a seed-deterministic path; even "
                               "report-only clocks are banned here "
                               "(docs/FUZZ.md)"});
      }
    }
  }
}

void check_allocation(const ScannedFile& f, const Config& cfg,
                      std::vector<Diag>& out) {
  if (!matches_any_prefix(f.path, cfg.allocation.files)) {
    return;
  }
  const std::vector<bool> skip = include_lines(f);
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (skip[i + 1]) {
      continue;
    }
    const std::string& code = f.code[i];
    if (cfg.allocation.ban_new &&
        line_has_token(code, "new", /*as_call=*/false, /*member_only=*/false)) {
      out.push_back(Diag{f.path, i + 1, "hot-alloc",
                         "`new` in an allocation-contract file (the sim hot "
                         "path must stay allocation-free, docs/PERF.md)"});
    }
    // alloc_calls are matched as bare tokens (not call position) so that
    // template spellings like make_unique<T>(...) are caught too.
    for (const std::string& call : cfg.allocation.alloc_calls) {
      if (line_has_token(code, call, /*as_call=*/false, /*member_only=*/false)) {
        out.push_back(Diag{f.path, i + 1, "hot-alloc",
                           "allocator call `" + call +
                               "()` in an allocation-contract file"});
      }
    }
    for (const std::string& call : cfg.allocation.growth_calls) {
      if (line_has_token(code, call, /*as_call=*/true, /*member_only=*/true)) {
        out.push_back(Diag{f.path, i + 1, "hot-alloc",
                           "growth-capable container call `." + call +
                               "()` in an allocation-contract file"});
      }
    }
  }
}

void check_threshold(const ScannedFile& f, const Config& cfg,
                     std::vector<Diag>& out) {
  if (!matches_any_prefix(f.path, cfg.threshold.paths) ||
      matches_any_prefix(f.path, cfg.threshold.exempt)) {
    return;
  }
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (std::size_t p = 0; p < cfg.threshold.patterns.size(); ++p) {
      if (std::regex_search(f.code[i], cfg.threshold.patterns[p])) {
        out.push_back(
            Diag{f.path, i + 1, "threshold",
                 "inline quorum arithmetic matching /" +
                     cfg.threshold.pattern_text[p] +
                     "/; the paper's threshold predicates live in "
                     "core/params.hpp (ConsensusParams accessors)"});
        break;  // one threshold diagnostic per line is enough
      }
    }
  }
}

}  // namespace

Config load_config(const TomlDoc& doc) {
  Config cfg;
  // Unknown sections and stray top-level keys are hard errors, for the
  // same reason unknown keys are: a typo must not silently turn a rule off.
  static const std::set<std::string> kSections = {
      "",           "run",         "layer",         "os_headers",
      "os_exclusive", "determinism", "allocation",  "threshold",
      "thread_safety", "include_graph", "resilience", "protocol",
  };
  for (const auto& [name, tables] : doc) {
    if (kSections.count(name) == 0) {
      throw std::runtime_error("rules: unknown section [" + name + "]");
    }
  }
  if (const TomlTable* root = get_table(doc, "")) {
    if (!root->empty()) {
      throw std::runtime_error("rules: top-level key `" +
                               root->begin()->first +
                               "` outside any section");
    }
  }
  if (const TomlTable* run = get_table(doc, "run")) {
    require_keys(*run, "run", {"roots", "exclude", "extensions"});
    cfg.run.roots = get_array(*run, "roots");
    cfg.run.exclude = get_array(*run, "exclude");
    cfg.run.extensions = get_array(*run, "extensions");
  }
  if (cfg.run.extensions.empty()) {
    cfg.run.extensions = {".hpp", ".cpp", ".h"};
  }
  const auto layer_it = doc.find("layer");
  if (layer_it == doc.end()) {
    throw std::runtime_error("rules: at least one [[layer]] is required");
  }
  for (const TomlTable& t : layer_it->second) {
    LayerCfg layer;
    require_keys(t, "layer", {"name", "paths", "deps"});
    const auto name = t.find("name");
    if (name == t.end() || name->second.kind != TomlValue::Kind::string) {
      throw std::runtime_error("rules: [[layer]] needs a string `name`");
    }
    layer.name = name->second.str;
    layer.paths = get_array(t, "paths");
    layer.deps = get_array(t, "deps");
    cfg.layers.push_back(std::move(layer));
  }
  for (const LayerCfg& layer : cfg.layers) {
    for (const std::string& dep : layer.deps) {
      if (std::none_of(cfg.layers.begin(), cfg.layers.end(),
                       [&](const LayerCfg& l) { return l.name == dep; })) {
        throw std::runtime_error("rules: layer `" + layer.name +
                                 "` depends on unknown layer `" + dep + "`");
      }
    }
  }
  if (const TomlTable* t = get_table(doc, "os_headers")) {
    require_keys(*t, "os_headers", {"banned", "allow_paths"});
    cfg.os_headers.banned = get_array(*t, "banned");
    cfg.os_headers.allow_paths = get_array(*t, "allow_paths");
  }
  const auto excl_it = doc.find("os_exclusive");
  if (excl_it != doc.end()) {
    for (const TomlTable& t : excl_it->second) {
      OsExclusiveCfg rule;
      require_keys(t, "os_exclusive", {"header", "allow"});
      const auto header = t.find("header");
      if (header == t.end() ||
          header->second.kind != TomlValue::Kind::string) {
        throw std::runtime_error(
            "rules: [[os_exclusive]] needs a string `header`");
      }
      rule.header = header->second.str;
      rule.allow = get_array(t, "allow");
      cfg.os_exclusive.push_back(std::move(rule));
    }
  }
  if (const TomlTable* t = get_table(doc, "determinism")) {
    require_keys(*t, "determinism",
                 {"banned_tokens", "banned_calls", "allow_paths",
                  "strict_paths", "strict_tokens", "strict_headers"});
    cfg.determinism.tokens = get_array(*t, "banned_tokens");
    cfg.determinism.calls = get_array(*t, "banned_calls");
    cfg.determinism.allow_paths = get_array(*t, "allow_paths");
    cfg.determinism.strict_paths = get_array(*t, "strict_paths");
    cfg.determinism.strict_tokens = get_array(*t, "strict_tokens");
    cfg.determinism.strict_headers = get_array(*t, "strict_headers");
  }
  if (const TomlTable* t = get_table(doc, "allocation")) {
    require_keys(*t, "allocation",
                 {"files", "alloc_calls", "growth_calls", "ban_new"});
    cfg.allocation.files = get_array(*t, "files");
    cfg.allocation.alloc_calls = get_array(*t, "alloc_calls");
    cfg.allocation.growth_calls = get_array(*t, "growth_calls");
    const auto ban = t->find("ban_new");
    cfg.allocation.ban_new =
        ban == t->end() || ban->second.kind != TomlValue::Kind::boolean ||
        ban->second.boolean;
  }
  if (const TomlTable* t = get_table(doc, "threshold")) {
    require_keys(*t, "threshold", {"paths", "exempt", "patterns"});
    cfg.threshold.paths = get_array(*t, "paths");
    cfg.threshold.exempt = get_array(*t, "exempt");
    cfg.threshold.pattern_text = get_array(*t, "patterns");
    for (const std::string& pattern : cfg.threshold.pattern_text) {
      try {
        cfg.threshold.patterns.emplace_back(pattern);
      } catch (const std::regex_error&) {
        throw std::runtime_error("rules: bad threshold regex: " + pattern);
      }
    }
  }
  if (const TomlTable* t = get_table(doc, "thread_safety")) {
    require_keys(*t, "thread_safety", {"paths"});
    cfg.thread_safety.paths = get_array(*t, "paths");
  }
  if (const TomlTable* t = get_table(doc, "include_graph")) {
    require_keys(*t, "include_graph", {"public_paths", "unused_exempt"});
    cfg.include_graph.public_paths = get_array(*t, "public_paths");
    cfg.include_graph.unused_exempt = get_array(*t, "unused_exempt");
  }
  if (const TomlTable* t = get_table(doc, "resilience")) {
    require_keys(*t, "resilience", {"paths"});
    cfg.resilience.paths = get_array(*t, "paths");
  }
  const auto proto_it = doc.find("protocol");
  if (proto_it != doc.end()) {
    for (const TomlTable& t : proto_it->second) {
      require_keys(t, "protocol", {"file", "model"});
      ProtocolCfg p;
      const auto file = t.find("file");
      const auto model = t.find("model");
      if (file == t.end() ||
          file->second.kind != TomlValue::Kind::string ||
          model == t.end() ||
          model->second.kind != TomlValue::Kind::string) {
        throw std::runtime_error(
            "rules: [[protocol]] needs string `file` and `model`");
      }
      p.file = file->second.str;
      p.model = model->second.str;
      if (p.model != "fail_stop" && p.model != "malicious") {
        throw std::runtime_error("rules: [[protocol]] model must be "
                                 "`fail_stop` or `malicious`, got `" +
                                 p.model + "`");
      }
      cfg.resilience.protocols.push_back(std::move(p));
    }
  }
  return cfg;
}

std::vector<Diag> check_file(const ScannedFile& f, const Config& cfg) {
  std::vector<Diag> out;
  check_layering(f, cfg, out);
  check_os_headers(f, cfg, out);
  check_os_exclusive(f, cfg, out);
  check_determinism(f, cfg, out);
  check_allocation(f, cfg, out);
  check_threshold(f, cfg, out);
  return out;
}

namespace {

[[nodiscard]] bool ends_with(const std::string& s, const std::string& tail) {
  return s.size() >= tail.size() &&
         s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

/// Line of the include in `f` that resolves to `target_path`, matched by
/// path suffix (include targets are written without the src/tools root).
[[nodiscard]] std::size_t include_line_for(const FileModel& f,
                                           const std::string& target_path) {
  for (const Include& inc : f.includes) {
    if (!inc.angled && (target_path == inc.target ||
                        ends_with(target_path, "/" + inc.target))) {
      return inc.line;
    }
  }
  return 1;
}

}  // namespace

std::vector<Diag> check_repo(const RepoModel& model, const Config& cfg) {
  std::vector<Diag> out;

  // include-cycle: one diagnostic per strongly connected component,
  // reported at the first member's offending include.
  for (const std::vector<std::size_t>& comp : model.cycles) {
    const FileModel& first = model.files[comp.front()];
    std::string chain;
    for (const std::size_t idx : comp) {
      chain += model.files[idx].path + " -> ";
    }
    chain += first.path;
    std::size_t line = 1;
    for (std::size_t k = 1; k < comp.size(); ++k) {
      const std::size_t l =
          include_line_for(first, model.files[comp[k]].path);
      if (l != 1) {
        line = l;
        break;
      }
    }
    out.push_back(Diag{first.path, line, "include-cycle",
                       "include cycle: " + chain +
                           "; break it with a forward declaration or by "
                           "moving the shared piece down a layer"});
  }

  // layer-closure: layering must hold transitively. Direct violations are
  // the per-file `layer` rule's business; this rule reports a file that
  // reaches a forbidden layer only through intermediaries. One diagnostic
  // per (file, offending layer).
  std::vector<std::set<std::string>> allowed(cfg.layers.size());
  for (std::size_t li = 0; li < cfg.layers.size(); ++li) {
    std::vector<std::string> work{cfg.layers[li].name};
    while (!work.empty()) {
      const std::string name = work.back();
      work.pop_back();
      if (!allowed[li].insert(name).second) {
        continue;
      }
      for (const LayerCfg& l : cfg.layers) {
        if (l.name == name) {
          work.insert(work.end(), l.deps.begin(), l.deps.end());
        }
      }
    }
  }
  for (std::size_t i = 0; i < model.files.size(); ++i) {
    const std::size_t self = layer_of(model.files[i].path, cfg.layers);
    if (self == std::string::npos) {
      continue;
    }
    const std::set<std::size_t> direct(model.files[i].edges.begin(),
                                       model.files[i].edges.end());
    std::set<std::string> reported;
    for (const std::size_t j : model.closure[i]) {
      if (direct.count(j) != 0) {
        continue;
      }
      const std::size_t target = layer_of(model.files[j].path, cfg.layers);
      if (target == std::string::npos || target == self ||
          allowed[self].count(cfg.layers[target].name) != 0) {
        continue;
      }
      if (!reported.insert(cfg.layers[target].name).second) {
        continue;
      }
      // Blame the direct include whose subtree reaches the offender.
      std::size_t via = std::string::npos;
      for (const std::size_t e : model.files[i].edges) {
        if (e == j || std::binary_search(model.closure[e].begin(),
                                         model.closure[e].end(), j)) {
          via = e;
          break;
        }
      }
      const std::size_t line =
          via == std::string::npos
              ? 1
              : include_line_for(model.files[i], model.files[via].path);
      out.push_back(Diag{
          model.files[i].path, line, "layer-closure",
          "layer `" + cfg.layers[self].name + "` transitively reaches " +
              model.files[j].path + " in layer `" +
              cfg.layers[target].name +
              "`; the layering contract holds for the whole include "
              "closure, not just direct edges"});
    }
  }

  // unused-header: a public header no scanned file includes.
  for (std::size_t i = 0; i < model.files.size(); ++i) {
    const std::string& path = model.files[i].path;
    if (model.included_by[i] != 0 || !ends_with(path, ".hpp") ||
        !matches_any_prefix(path, cfg.include_graph.public_paths) ||
        matches_any_prefix(path, cfg.include_graph.unused_exempt)) {
      continue;
    }
    out.push_back(Diag{path, 1, "unused-header",
                       "public header is included by no scanned file; "
                       "dead interface surface (delete it or add it to "
                       "unused_exempt with a reason)"});
  }

  // resilience-bound: declared protocols vs validate(FaultModel::X) sites.
  for (const ProtocolCfg& p : cfg.resilience.protocols) {
    const auto it = model.index.find(p.file);
    if (it == model.index.end()) {
      out.push_back(Diag{p.file, 1, "resilience-bound",
                         "[[protocol]] declares this file but it was not "
                         "scanned; fix the path in tools/lint_rules.toml"});
      continue;
    }
    const FileModel& f = model.files[it->second];
    if (f.validates.empty()) {
      out.push_back(Diag{
          p.file, 1, "resilience-bound",
          "declared as a `" + p.model +
              "` protocol but contains no validate(FaultModel::...) "
              "registration; every protocol must state its fault model "
              "at its registration site"});
      continue;
    }
    for (const ValidateSite& v : f.validates) {
      if (v.model != p.model) {
        out.push_back(Diag{
            p.file, v.line, "resilience-bound",
            "registers FaultModel::" + v.model + " but [[protocol]] "
                "declares `" + p.model + "`; the declared resilience "
                "bound (k <= (n-1)/2 fail-stop, k <= (n-1)/3 malicious) "
                "would not match what validate() enforces"});
      }
    }
  }
  for (const FileModel& f : model.files) {
    if (!matches_any_prefix(f.path, cfg.resilience.paths)) {
      continue;
    }
    const bool declared =
        std::any_of(cfg.resilience.protocols.begin(),
                    cfg.resilience.protocols.end(),
                    [&](const ProtocolCfg& p) { return p.file == f.path; });
    if (declared) {
      continue;
    }
    for (const ValidateSite& v : f.validates) {
      out.push_back(Diag{
          f.path, v.line, "resilience-bound",
          "validate(FaultModel::" + v.model + ") registration site has "
              "no [[protocol]] declaration in the rules file; declare "
              "file and model so the resilience bound stays auditable"});
    }
  }
  return out;
}

SuppressionOutcome apply_suppressions(const ScannedFile& f,
                                      const std::vector<Diag>& raw) {
  SuppressionOutcome result;
  std::vector<bool> used(f.suppressions.size(), false);
  for (std::size_t i = 0; i < f.suppressions.size(); ++i) {
    if (f.suppressions[i].malformed) {
      result.meta.push_back(
          Diag{f.path, f.suppressions[i].line, "bad-suppression",
               "malformed marker; expected `// rcp-lint: allow(rule-id) "
               "reason` with a non-empty reason"});
      used[i] = true;  // don't double-report as unused
    }
  }
  for (const Diag& d : raw) {
    bool suppressed = false;
    for (std::size_t i = 0; i < f.suppressions.size(); ++i) {
      const Suppression& s = f.suppressions[i];
      if (s.malformed || s.rule != d.rule) {
        continue;
      }
      const bool covers = s.whole_file || s.line == d.line ||
                          (s.standalone && s.line + 1 == d.line);
      if (covers) {
        used[i] = true;
        suppressed = true;
      }
    }
    if (suppressed) {
      ++result.honored;
    } else {
      result.remaining.push_back(d);
    }
  }
  for (std::size_t i = 0; i < f.suppressions.size(); ++i) {
    if (!used[i]) {
      result.meta.push_back(
          Diag{f.path, f.suppressions[i].line, "unused-suppression",
               "suppression for `" + f.suppressions[i].rule +
                   "` matched no diagnostic; delete it"});
    }
  }
  return result;
}

}  // namespace rcp::lint
