#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::sim {
namespace {

Envelope env(std::uint64_t seq) {
  return Envelope{.sender = 0, .receiver = 1, .payload = {}, .sent_at_step = 0,
                  .seq = seq};
}

TEST(Mailbox, StartsEmpty) {
  Mailbox box;
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, PushGrowsInArrivalOrder) {
  Mailbox box;
  box.push(env(10));
  box.push(env(20));
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.contents()[0].seq, 10u);
  EXPECT_EQ(box.contents()[1].seq, 20u);
}

TEST(Mailbox, TakeRemovesChosenMessage) {
  Mailbox box;
  box.push(env(1));
  box.push(env(2));
  box.push(env(3));
  const Envelope taken = box.take(1);
  EXPECT_EQ(taken.seq, 2u);
  EXPECT_EQ(box.size(), 2u);
  // The other two are still present (order unspecified for take()).
  std::uint64_t seen = box.contents()[0].seq + box.contents()[1].seq;
  EXPECT_EQ(seen, 4u);
}

TEST(Mailbox, TakeFrontPreservingKeepsOrder) {
  Mailbox box;
  box.push(env(1));
  box.push(env(2));
  box.push(env(3));
  const Envelope taken = box.take_front_preserving(0);
  EXPECT_EQ(taken.seq, 1u);
  EXPECT_EQ(box.contents()[0].seq, 2u);
  EXPECT_EQ(box.contents()[1].seq, 3u);
}

TEST(Mailbox, TakeOutOfRangeThrows) {
  Mailbox box;
  box.push(env(1));
  EXPECT_THROW((void)box.take(1), PreconditionError);
  EXPECT_THROW((void)box.take_front_preserving(5), PreconditionError);
}

TEST(Mailbox, ClearEmpties) {
  Mailbox box;
  box.push(env(1));
  box.clear();
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, TakeLastElement) {
  Mailbox box;
  box.push(env(9));
  const Envelope taken = box.take(0);
  EXPECT_EQ(taken.seq, 9u);
  EXPECT_TRUE(box.empty());
}

}  // namespace
}  // namespace rcp::sim
