#include "sim/lockstep.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::sim {
namespace {

/// Broadcasts its id each round; decides 1 after hearing `need` senders.
class CountingProcess final : public LockstepProcess {
 public:
  explicit CountingProcess(std::size_t need) : need_(need) {}

  Bytes broadcast_for_round(std::uint32_t round) override {
    ++broadcasts_;
    return Bytes{static_cast<std::byte>(round)};
  }

  void receive_round(
      std::uint32_t /*round*/,
      const std::vector<std::pair<ProcessId, Bytes>>& messages) override {
    last_senders_.clear();
    for (const auto& [sender, payload] : messages) {
      static_cast<void>(payload);
      last_senders_.push_back(sender);
    }
    if (messages.size() >= need_ && !decision_.has_value()) {
      decision_ = Value::one;
    }
  }

  [[nodiscard]] std::optional<Value> decision() const override {
    return decision_;
  }

  std::size_t broadcasts_ = 0;
  std::vector<ProcessId> last_senders_;

 private:
  std::size_t need_;
  std::optional<Value> decision_;
};

TEST(Lockstep, AllAliveSeeEveryone) {
  std::vector<std::unique_ptr<LockstepProcess>> procs;
  std::vector<CountingProcess*> raw;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<CountingProcess>(4);
    raw.push_back(p.get());
    procs.push_back(std::move(p));
  }
  LockstepSimulation sim(std::move(procs), std::vector<bool>(4, false));
  sim.run_round();
  for (auto* p : raw) {
    EXPECT_EQ(p->last_senders_, (std::vector<ProcessId>{0, 1, 2, 3}));
  }
  EXPECT_TRUE(sim.all_live_decided());
  EXPECT_TRUE(sim.agreement_holds());
}

TEST(Lockstep, DeadNeverBroadcastNorReceive) {
  std::vector<std::unique_ptr<LockstepProcess>> procs;
  std::vector<CountingProcess*> raw;
  for (int i = 0; i < 3; ++i) {
    auto p = std::make_unique<CountingProcess>(99);
    raw.push_back(p.get());
    procs.push_back(std::move(p));
  }
  LockstepSimulation sim(std::move(procs), {false, true, false});
  sim.run_round();
  EXPECT_EQ(raw[0]->last_senders_, (std::vector<ProcessId>{0, 2}));
  EXPECT_EQ(raw[1]->broadcasts_, 0u);
  EXPECT_TRUE(raw[1]->last_senders_.empty());
  EXPECT_TRUE(sim.dead(1));
  EXPECT_FALSE(sim.dead(0));
}

TEST(Lockstep, RunUntilDecidedStopsEarly) {
  std::vector<std::unique_ptr<LockstepProcess>> procs;
  for (int i = 0; i < 2; ++i) {
    procs.push_back(std::make_unique<CountingProcess>(2));
  }
  LockstepSimulation sim(std::move(procs), std::vector<bool>(2, false));
  const auto rounds = sim.run_until_decided(100);
  EXPECT_EQ(rounds, 1u);
  EXPECT_EQ(sim.rounds_run(), 1u);
  EXPECT_EQ(sim.decision_of(0), Value::one);
}

TEST(Lockstep, RunUntilDecidedRespectsCap) {
  std::vector<std::unique_ptr<LockstepProcess>> procs;
  procs.push_back(std::make_unique<CountingProcess>(5));  // never satisfied
  LockstepSimulation sim(std::move(procs), std::vector<bool>(1, false));
  const auto rounds = sim.run_until_decided(7);
  EXPECT_EQ(rounds, 7u);
  EXPECT_FALSE(sim.all_live_decided());
}

TEST(Lockstep, ConstructionValidation) {
  std::vector<std::unique_ptr<LockstepProcess>> none;
  EXPECT_THROW(LockstepSimulation(std::move(none), {}), PreconditionError);
  std::vector<std::unique_ptr<LockstepProcess>> one;
  one.push_back(std::make_unique<CountingProcess>(1));
  EXPECT_THROW(LockstepSimulation(std::move(one), std::vector<bool>(2, false)),
               PreconditionError);
}

}  // namespace
}  // namespace rcp::sim
