#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adversary/scenario.hpp"
#include "common/error.hpp"
#include "sim/simulation.hpp"
#include "support/probe_process.hpp"

namespace rcp {
namespace {

using adversary::ProtocolKind;
using adversary::Scenario;

struct Fingerprint {
  std::vector<std::optional<Value>> decisions;
  std::uint64_t steps = 0;
  std::uint64_t messages = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(sim::Simulation& s, std::uint64_t steps) {
  Fingerprint f;
  f.steps = steps;
  f.messages = s.metrics().messages_sent;
  for (ProcessId p = 0; p < s.n(); ++p) {
    f.decisions.push_back(s.decision_of(p));
  }
  return f;
}

Scenario base_scenario(std::uint64_t seed) {
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = adversary::alternating_inputs(7);
  s.byzantine_ids = {2, 5};
  s.byzantine_kind = adversary::ByzantineKind::equivocator;
  s.seed = seed;
  return s;
}

TEST(Replay, RecordedRunReplaysExactly) {
  // Record a full adversarial consensus run...
  auto rec = sim::make_recording_policies();
  auto original = adversary::build(base_scenario(13), std::move(rec.delivery),
                                   std::move(rec.scheduler));
  const auto result1 = original->run();
  ASSERT_EQ(result1.status, sim::RunStatus::all_decided);
  const Fingerprint f1 = fingerprint(*original, result1.steps);
  ASSERT_EQ(rec.schedule->size(), result1.steps);

  // ...then replay it with a different master seed: the schedule, not the
  // RNG, must drive the execution.
  auto replay = sim::make_replay_policies(*rec.schedule);
  Scenario s2 = base_scenario(13);
  s2.seed = 999;  // different delivery/scheduler randomness (unused)
  auto replayed = adversary::build(s2, std::move(replay.delivery),
                                   std::move(replay.scheduler));
  const auto result2 = replayed->run();
  EXPECT_EQ(result2.status, sim::RunStatus::all_decided);
  EXPECT_EQ(fingerprint(*replayed, result2.steps), f1);
}

TEST(Replay, ReplayOfBenignRunMatchesStepByStep) {
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {5, 2};
  s.inputs = adversary::alternating_inputs(5);
  s.seed = 3;

  auto rec = sim::make_recording_policies();
  auto original =
      adversary::build(s, std::move(rec.delivery), std::move(rec.scheduler));
  (void)original->run();

  auto replay = sim::make_replay_policies(*rec.schedule);
  auto replayed =
      adversary::build(s, std::move(replay.delivery), std::move(replay.scheduler));
  std::uint64_t steps = 0;
  while (!replay.cursor->exhausted() && replayed->step()) {
    ++steps;
  }
  EXPECT_EQ(steps, rec.schedule->size());
  EXPECT_TRUE(replayed->all_correct_decided());
  EXPECT_TRUE(replayed->agreement_holds());
}

TEST(Replay, ScheduleSaveLoadRoundTrip) {
  sim::Schedule schedule;
  schedule.append_actor(3);
  schedule.set_last_choice(42);
  schedule.append_actor(1);
  schedule.set_last_choice(std::nullopt);
  schedule.append_actor(0);
  schedule.set_last_choice(7);

  std::stringstream buf;
  schedule.save(buf);
  const sim::Schedule loaded = sim::Schedule::load(buf);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.steps()[0].actor, 3u);
  EXPECT_EQ(loaded.steps()[0].seq, 42u);
  EXPECT_EQ(loaded.steps()[1].actor, 1u);
  EXPECT_EQ(loaded.steps()[1].seq, std::nullopt);
  EXPECT_EQ(loaded.steps()[2].seq, 7u);
}

TEST(Replay, SavedScheduleReplaysAfterReload) {
  auto rec = sim::make_recording_policies();
  auto original = adversary::build(base_scenario(21), std::move(rec.delivery),
                                   std::move(rec.scheduler));
  const auto result1 = original->run();
  const Fingerprint f1 = fingerprint(*original, result1.steps);

  std::stringstream buf;
  rec.schedule->save(buf);
  auto replay = sim::make_replay_policies(sim::Schedule::load(buf));
  auto replayed = adversary::build(base_scenario(21), std::move(replay.delivery),
                                   std::move(replay.scheduler));
  const auto result2 = replayed->run();
  EXPECT_EQ(fingerprint(*replayed, result2.steps), f1);
}

TEST(Replay, DivergenceDetected) {
  // Replaying a schedule against a *different* system must trip the
  // divergence invariants rather than silently producing garbage.
  auto rec = sim::make_recording_policies();
  auto original = adversary::build(base_scenario(5), std::move(rec.delivery),
                                   std::move(rec.scheduler));
  (void)original->run();

  Scenario other = base_scenario(5);
  other.inputs = std::vector<Value>(7, Value::one);  // different messages
  auto replay = sim::make_replay_policies(*rec.schedule);
  auto replayed = adversary::build(other, std::move(replay.delivery),
                                   std::move(replay.scheduler));
  // Either a recorded message is missing from a mailbox (InvariantError) or
  // the shorter divergent run exhausts the schedule (PreconditionError);
  // both derive from rcp::Error.
  EXPECT_THROW(
      {
        while (replayed->step()) {
        }
      },
      Error);
}

TEST(Replay, CursorExhaustionThrows) {
  sim::Schedule schedule;  // empty
  auto replay = sim::make_replay_policies(schedule);
  test::ProbeFleet fleet(2);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(1, test::tiny_payload());
  };
  sim::Simulation s(sim::SimConfig{.n = 2, .seed = 1},
                    std::move(fleet.processes), std::move(replay.delivery),
                    std::move(replay.scheduler));
  s.start();
  EXPECT_THROW((void)s.step(), PreconditionError);
}

TEST(Replay, RecordingPreservesInnerPolicyBehaviour) {
  // Recording around FIFO must still deliver in FIFO order.
  auto rec = sim::make_recording_policies(sim::make_fifo_delivery(),
                                          sim::make_round_robin_scheduler());
  EXPECT_TRUE(rec.delivery->order_preserving());
}

}  // namespace
}  // namespace rcp
