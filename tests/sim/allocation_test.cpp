// The allocation contract of the simulation hot path (docs/PERF.md): once a
// simulation is warm, stepping it performs zero heap allocations for
// protocol messages that fit Payload's inline capacity.
//
// Two instruments: Payload::heap_allocation_count() counts payload heap
// spills specifically, and a test-binary-wide operator new override counts
// every allocation, which pins down the whole step path (mailboxes,
// eligible set, envelopes) — not just payloads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "common/payload.hpp"
#include "core/failstop.hpp"
#include "core/messages.hpp"
#include "sim/simulation.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rcp {
namespace {

/// Keeps every mailbox at depth one by re-sending each delivered message to
/// itself: after a handful of warm-up steps all containers are at their
/// steady capacity, so further steps must not allocate at all.
class SelfRefillProcess final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    ctx.send(ctx.self(),
             core::MajorityMsg{.phase = 0, .value = Value::zero}.encode());
  }
  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    ctx.send(ctx.self(), env.payload);
  }
};

TEST(Allocation, SteadyStateStepIsAllocationFree) {
  constexpr std::uint32_t kN = 31;
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(std::make_unique<SelfRefillProcess>());
  }
  sim::Simulation s(sim::SimConfig{.n = kN, .seed = 11}, std::move(procs));
  s.start();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(s.step());
  }
  const std::uint64_t before = g_allocations.load();
  const std::uint64_t payload_before = Payload::heap_allocation_count();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(s.step());
  }
#ifdef NDEBUG
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "warm step() path must not touch the heap";
#else
  // Debug builds run the O(n) incremental-state cross-check each step,
  // which itself allocates scratch vectors; the total-allocation contract
  // is enforced in release builds (the tier-1 configuration).
  (void)before;
#endif
  EXPECT_EQ(Payload::heap_allocation_count() - payload_before, 0u)
      << "inline-sized payloads must never spill";
}

TEST(Allocation, FailStopConsensusNeverSpillsPayloads) {
  // Whole-protocol check from a cold start: every FailStopMsg fits the
  // inline capacity, so an entire consensus run allocates zero payload
  // heap blocks — encode, send, broadcast fan-out and delivery included.
  constexpr std::uint32_t kN = 9;
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(core::FailStopConsensus::make(
        {kN, 4}, p % 2 == 0 ? Value::zero : Value::one));
  }
  sim::Simulation s(sim::SimConfig{.n = kN, .seed = 12}, std::move(procs));
  const std::uint64_t before = Payload::heap_allocation_count();
  const auto r = s.run();
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_EQ(Payload::heap_allocation_count() - before, 0u)
      << "protocol messages must stay inline";
}

TEST(Allocation, OversizedPayloadStillSpillsAndCounts) {
  const std::uint64_t before = Payload::heap_allocation_count();
  const Payload big(Payload::kInlineCapacity + 1);
  EXPECT_TRUE(big.on_heap());
  EXPECT_EQ(Payload::heap_allocation_count() - before, 1u);
}

}  // namespace
}  // namespace rcp
