#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "support/probe_process.hpp"

namespace rcp {
namespace {

using test::ProbeFleet;
using test::tiny_payload;

sim::SimConfig cfg(std::uint32_t n, std::uint64_t seed = 1,
                   std::uint64_t max_steps = 10'000) {
  return sim::SimConfig{.n = n, .seed = seed, .max_steps = max_steps};
}

TEST(Simulation, RejectsBadConstruction) {
  ProbeFleet fleet(2);
  EXPECT_THROW(sim::Simulation(cfg(3), std::move(fleet.processes)),
               PreconditionError);
  std::vector<std::unique_ptr<sim::Process>> empty;
  EXPECT_THROW(sim::Simulation(cfg(0), std::move(empty)), PreconditionError);
}

TEST(Simulation, StartDeliversSendsToMailboxes) {
  ProbeFleet fleet(2);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(1, test::tiny_payload());
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.start();
  EXPECT_EQ(s.mailbox_size(1), 1u);
  EXPECT_EQ(s.mailbox_size(0), 0u);
  EXPECT_EQ(s.metrics().messages_sent, 1u);
}

TEST(Simulation, BroadcastIncludesSelf) {
  ProbeFleet fleet(3);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.broadcast(test::tiny_payload());
  };
  sim::Simulation s(cfg(3), std::move(fleet.processes));
  s.start();
  EXPECT_EQ(s.mailbox_size(0), 1u);
  EXPECT_EQ(s.mailbox_size(1), 1u);
  EXPECT_EQ(s.mailbox_size(2), 1u);
}

TEST(Simulation, StepDeliversExactlyOneMessage) {
  ProbeFleet fleet(2);
  auto* receiver = fleet.probes[1];
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(1, test::tiny_payload(1));
    ctx.send(1, test::tiny_payload(2));
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.start();
  EXPECT_TRUE(s.step());
  EXPECT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(s.mailbox_size(1), 1u);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(receiver->received.size(), 2u);
  EXPECT_FALSE(s.step()) << "no messages left, system quiescent";
}

TEST(Simulation, EnvelopeCarriesAuthenticSender) {
  ProbeFleet fleet(2);
  auto* receiver = fleet.probes[1];
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(1, test::tiny_payload());
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.start();
  ASSERT_TRUE(s.step());
  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0].sender, 0u);
  EXPECT_EQ(receiver->received[0].receiver, 1u);
}

TEST(Simulation, DecideIsOneShotSameValueOk) {
  ProbeFleet fleet(2);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::one);
    ctx.decide(Value::one);  // same value: harmless
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  EXPECT_NO_THROW(s.start());
  EXPECT_EQ(s.decision_of(0), Value::one);
}

TEST(Simulation, DecideConflictThrows) {
  ProbeFleet fleet(1);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::one);
    ctx.decide(Value::zero);
  };
  sim::Simulation s(cfg(1), std::move(fleet.processes));
  EXPECT_THROW(s.start(), InvariantError);
}

TEST(Simulation, CrashedProcessTakesNoSteps) {
  ProbeFleet fleet(2);
  auto* victim = fleet.probes[1];
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(1, test::tiny_payload());
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.start();
  s.crash(1);
  EXPECT_FALSE(s.alive(1));
  EXPECT_TRUE(s.is_faulty(1));
  EXPECT_FALSE(s.step()) << "only the dead process has messages";
  EXPECT_TRUE(victim->received.empty());
}

TEST(Simulation, InitiallyDeadSkipsStart) {
  ProbeFleet fleet(2);
  bool started = false;
  fleet.probes[0]->start_fn = [&](sim::Context&) { started = true; };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.schedule_crash_at_step(0, 0);
  s.start();
  EXPECT_FALSE(started);
  EXPECT_FALSE(s.alive(0));
}

TEST(Simulation, StepCrashTriggersAtThreshold) {
  ProbeFleet fleet(2);
  // Processes ping-pong forever.
  for (auto* p : fleet.probes) {
    p->start_fn = [](sim::Context& ctx) {
      ctx.send(1 - ctx.self(), test::tiny_payload());
    };
    p->message_fn = [](sim::Context& ctx, const sim::Envelope&) {
      ctx.send(1 - ctx.self(), test::tiny_payload());
    };
  }
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.schedule_crash_at_step(0, 5);
  s.start();
  for (int i = 0; i < 20 && s.step(); ++i) {
  }
  EXPECT_FALSE(s.alive(0));
  EXPECT_TRUE(s.alive(1));
}

TEST(Simulation, PhaseCrashTriggersWhenPhaseReached) {
  ProbeFleet fleet(2);
  auto* p0 = fleet.probes[0];
  p0->start_fn = [](sim::Context& ctx) {
    ctx.send(0, test::tiny_payload());
  };
  p0->message_fn = [p0](sim::Context& ctx, const sim::Envelope&) {
    p0->reported_phase += 1;
    ctx.send(0, test::tiny_payload());
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.schedule_crash_at_phase(0, 3);
  s.start();
  while (s.step()) {
  }
  EXPECT_FALSE(s.alive(0));
  EXPECT_EQ(p0->reported_phase, 3u);
}

TEST(Simulation, RunReportsQuiescence) {
  ProbeFleet fleet(2);
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::quiescent);
  EXPECT_EQ(result.steps, 0u);
}

TEST(Simulation, RunReportsStepLimit) {
  ProbeFleet fleet(1);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(0, test::tiny_payload());
  };
  fleet.probes[0]->message_fn = [](sim::Context& ctx, const sim::Envelope&) {
    ctx.send(0, test::tiny_payload());
  };
  sim::Simulation s(cfg(1, 1, 25), std::move(fleet.processes));
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::step_limit);
  EXPECT_EQ(result.steps, 25u);
}

TEST(Simulation, RunStopsWhenAllCorrectDecided) {
  ProbeFleet fleet(2);
  for (auto* p : fleet.probes) {
    p->start_fn = [](sim::Context& ctx) { ctx.decide(Value::zero); };
  }
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(s.all_correct_decided());
}

TEST(Simulation, FaultyProcessesDoNotBlockTermination) {
  ProbeFleet fleet(2);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::one);
  };
  // Process 1 never decides but is marked faulty.
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.mark_faulty(1);
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
}

TEST(Simulation, AgreementObservers) {
  ProbeFleet fleet(3);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::one);
  };
  fleet.probes[1]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::zero);
  };
  sim::Simulation s(cfg(3), std::move(fleet.processes));
  s.start();
  EXPECT_FALSE(s.agreement_holds());
  EXPECT_FALSE(s.agreed_value().has_value());
}

TEST(Simulation, AgreedValueWithPartialDecisions) {
  ProbeFleet fleet(3);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::one);
  };
  sim::Simulation s(cfg(3), std::move(fleet.processes));
  s.start();
  EXPECT_TRUE(s.agreement_holds());
  EXPECT_EQ(s.agreed_value(), Value::one);
  EXPECT_FALSE(s.all_correct_decided());
}

TEST(Simulation, FaultyDecisionsIgnoredByAgreement) {
  ProbeFleet fleet(2);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::one);
  };
  fleet.probes[1]->start_fn = [](sim::Context& ctx) {
    ctx.decide(Value::zero);
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.mark_faulty(1);
  s.start();
  EXPECT_TRUE(s.agreement_holds());
  EXPECT_EQ(s.agreed_value(), Value::one);
}

TEST(Simulation, CorrectIdsExcludeFaultyAndCrashed) {
  ProbeFleet fleet(4);
  sim::Simulation s(cfg(4), std::move(fleet.processes));
  s.mark_faulty(1);
  s.crash(2);
  EXPECT_EQ(s.correct_ids(), (std::vector<ProcessId>{0, 3}));
}

TEST(Simulation, MetricsCountTraffic) {
  ProbeFleet fleet(2);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.broadcast(test::tiny_payload());
  };
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.start();
  while (s.step()) {
  }
  EXPECT_EQ(s.metrics().messages_sent, 2u);
  EXPECT_EQ(s.metrics().messages_delivered, 2u);
  EXPECT_EQ(s.metrics().steps, 2u);
}

TEST(Simulation, TraceRecordsLifecycle) {
  ProbeFleet fleet(2);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(1, test::tiny_payload());
    ctx.decide(Value::one);
  };
  sim::RecordingTrace trace;
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.set_trace(&trace);
  s.crash(1);
  s.start();
  while (s.step()) {
  }
  EXPECT_EQ(trace.count(sim::EventKind::crash), 1u);
  EXPECT_EQ(trace.count(sim::EventKind::send), 1u);
  EXPECT_EQ(trace.count(sim::EventKind::decide), 1u);
  EXPECT_EQ(trace.count(sim::EventKind::start), 1u);  // p1 crashed before start
}

TEST(Simulation, SameSeedSameExecution) {
  // Compares the full (acting process, peer) event sequence, which pins the
  // exact schedule, not just aggregate counters.
  auto run_once = [](std::uint64_t seed) {
    ProbeFleet fleet(3);
    for (auto* p : fleet.probes) {
      p->start_fn = [](sim::Context& ctx) { ctx.broadcast(test::tiny_payload()); };
      p->message_fn = [](sim::Context& ctx, const sim::Envelope& env) {
        if (ctx.step() < 50 && env.sender != ctx.self()) {
          ctx.send(env.sender, test::tiny_payload());
        }
      };
    }
    sim::RecordingTrace trace;
    sim::Simulation s(cfg(3, seed, 1000), std::move(fleet.processes));
    s.set_trace(&trace);
    (void)s.run();
    std::vector<std::pair<ProcessId, ProcessId>> schedule;
    for (const auto& e : trace.events()) {
      schedule.emplace_back(e.process, e.peer);
    }
    return schedule;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

TEST(Simulation, ProcessRngStreamsDifferByProcess) {
  ProbeFleet fleet(2);
  std::uint64_t draws[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    fleet.probes[i]->start_fn = [&draws, i](sim::Context& ctx) {
      draws[i] = ctx.rng().next();
    };
  }
  sim::Simulation s(cfg(2), std::move(fleet.processes));
  s.start();
  EXPECT_NE(draws[0], draws[1]);
}

TEST(Simulation, PhiProbabilityProducesNullSteps) {
  ProbeFleet fleet(1);
  fleet.probes[0]->start_fn = [](sim::Context& ctx) {
    ctx.send(0, test::tiny_payload());
  };
  auto* probe = fleet.probes[0];
  sim::Simulation s(cfg(1, 3, 1000), std::move(fleet.processes),
                    sim::make_uniform_delivery(0.9));
  s.start();
  for (int i = 0; i < 100 && s.step(); ++i) {
  }
  EXPECT_GT(probe->null_count, 0);
  EXPECT_GT(s.metrics().phi_steps, 0u);
}

}  // namespace
}  // namespace rcp
