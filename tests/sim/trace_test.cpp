#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rcp::sim {
namespace {

Event ev(EventKind kind, std::uint64_t step) {
  return Event{.kind = kind, .step = step, .process = 0, .peer = 1,
               .payload_size = 4, .decision = std::nullopt};
}

TEST(RecordingTrace, RecordsInOrder) {
  RecordingTrace trace;
  trace.record(ev(EventKind::start, 0));
  trace.record(ev(EventKind::send, 1));
  trace.record(ev(EventKind::deliver, 2));
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].kind, EventKind::start);
  EXPECT_EQ(trace.events()[2].kind, EventKind::deliver);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(RecordingTrace, CountsByKind) {
  RecordingTrace trace;
  trace.record(ev(EventKind::send, 0));
  trace.record(ev(EventKind::send, 1));
  trace.record(ev(EventKind::phi, 2));
  EXPECT_EQ(trace.count(EventKind::send), 2u);
  EXPECT_EQ(trace.count(EventKind::phi), 1u);
  EXPECT_EQ(trace.count(EventKind::crash), 0u);
}

TEST(RecordingTrace, RingOverwriteKeepsRecent) {
  RecordingTrace trace(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.record(ev(EventKind::send, i));
  }
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  // Steps 2, 3, 4 survive in some rotation.
  std::uint64_t sum = 0;
  for (const auto& e : trace.events()) {
    sum += e.step;
  }
  EXPECT_EQ(sum, 2u + 3u + 4u);
}

TEST(RecordingTrace, DumpIsHumanReadable) {
  RecordingTrace trace;
  Event d = ev(EventKind::decide, 7);
  d.decision = Value::one;
  trace.record(ev(EventKind::deliver, 3));
  trace.record(d);
  std::ostringstream os;
  trace.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("deliver"), std::string::npos);
  EXPECT_NE(out.find("decide"), std::string::npos);
  EXPECT_NE(out.find("value 1"), std::string::npos);
}

TEST(EventKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(EventKind::start), "start");
  EXPECT_STREQ(to_string(EventKind::deliver), "deliver");
  EXPECT_STREQ(to_string(EventKind::phi), "phi");
  EXPECT_STREQ(to_string(EventKind::send), "send");
  EXPECT_STREQ(to_string(EventKind::decide), "decide");
  EXPECT_STREQ(to_string(EventKind::crash), "crash");
}

}  // namespace
}  // namespace rcp::sim
