// Pinned-seed trace-digest regression: proves the optimized simulator
// (SBO payloads, shared broadcast fan-out, incremental eligible set, O(1)
// termination counter) reproduces pre-change executions byte for byte.
//
// The golden digests below were recorded on the vector-payload, full-rescan
// simulator immediately before the optimization landed: an FNV-1a hash over
// every trace event (kind, step, actor, peer, payload size, decision) plus a
// final-state hash (decisions, liveness, mailbox depths, metrics). Any
// change to the `ready` ordering, the RNG draw sequence, message contents
// or delivery choices shifts at least one event and changes the digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "adversary/scenario.hpp"
#include "core/reliable_broadcast.hpp"
#include "sim/replay.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace rcp {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

struct Digest {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kFnvPrime;
    }
  }
};

class DigestTrace final : public sim::TraceSink {
 public:
  void record(const sim::Event& e) override {
    d.mix(static_cast<std::uint64_t>(e.kind));
    d.mix(e.step);
    d.mix(e.process);
    d.mix(e.peer);
    d.mix(e.payload_size);
    d.mix(e.decision.has_value() ? static_cast<std::uint64_t>(*e.decision)
                                 : 2);
  }
  Digest d;
};

std::uint64_t state_digest(const sim::Simulation& s) {
  Digest d;
  for (ProcessId p = 0; p < s.n(); ++p) {
    const auto dec = s.decision_of(p);
    d.mix(dec.has_value() ? static_cast<std::uint64_t>(*dec) : 2);
    d.mix(s.alive(p) ? 1 : 0);
    d.mix(s.is_faulty(p) ? 1 : 0);
    d.mix(s.mailbox_size(p));
  }
  d.mix(s.metrics().steps);
  d.mix(s.metrics().messages_sent);
  d.mix(s.metrics().messages_delivered);
  d.mix(s.metrics().phi_steps);
  d.mix(s.metrics().max_phase);
  return d.h;
}

// The scenarios themselves live in the adversary::builtin_scenarios()
// registry (shared with `scenario_runner --list-scenarios`); this suite
// pins their digests, so registry edits and golden updates move together.
const adversary::Scenario& builtin(const char* name) {
  for (const auto& named : adversary::builtin_scenarios()) {
    if (std::string_view(named.name) == name) {
      return named.scenario;
    }
  }
  throw std::runtime_error(std::string("unknown builtin scenario: ") + name);
}

// X1-style: the reliable-broadcast extension under a two-faced sender that
// tells half the processes zero and the other half one — the adversarial
// case its echo/ready quorums exist to survive.
class TwoFacedRbSender final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (ProcessId q = 0; q < ctx.n(); ++q) {
      const Value v = q < ctx.n() / 2 ? Value::zero : Value::one;
      ctx.send(q,
               core::RbMsg{.kind = core::RbMsg::Kind::initial, .value = v}
                   .encode());
    }
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

struct Golden {
  std::uint64_t steps;
  std::uint64_t trace;
  std::uint64_t state;
};

// Recorded on the pre-optimization simulator (see header comment).
constexpr Golden kFailstopN5{97, 0x4612feeefc6f7626ULL, 0x0307b24b26968b01ULL};
constexpr Golden kMaliciousN7{1348, 0x4526402af5e52c45ULL,
                              0x3820edbb99e8b69fULL};
constexpr Golden kMajorityN9{459, 0xc5757074bc474400ULL,
                             0x46bb46eeabd45b2aULL};
// Recorded on the node-based (std::set/std::map) echo bookkeeping
// immediately before the flat quorum accounting landed.
constexpr Golden kBabblerN10{5162, 0x583cbad49c8d4f6eULL,
                             0x32a97f831908e2eaULL};
constexpr Golden kBalancerN10{213411, 0x888049c9919c79bfULL,
                              0x871a0bf61983dfeeULL};
constexpr Golden kRbTwoFacedN7{49, 0x4438d68238290cdfULL,
                               0x2ceec70555e9a8b0ULL};
constexpr Golden kRbCorrectN10{193, 0xe39dc74831fce474ULL,
                               0x7d4924d048affcb0ULL};

void expect_golden(const adversary::Scenario& scenario, const Golden& g) {
  auto sim = adversary::build(scenario);
  DigestTrace trace;
  sim->set_trace(&trace);
  const auto r = sim->run();
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_EQ(r.steps, g.steps);
  EXPECT_EQ(trace.d.h, g.trace);
  EXPECT_EQ(state_digest(*sim), g.state);
}

TEST(TraceDigest, FailStopN5MatchesPreChangeRun) {
  expect_golden(builtin("failstop_n5"), kFailstopN5);
}

TEST(TraceDigest, MaliciousN7MatchesPreChangeRun) {
  expect_golden(builtin("malicious_n7_equivocator"), kMaliciousN7);
}

TEST(TraceDigest, MajorityN9MatchesPreChangeRun) {
  expect_golden(builtin("majority_n9"), kMajorityN9);
}

TEST(TraceDigest, BabblerN10MatchesPreFlatQuorumRun) {
  expect_golden(builtin("babbler_n10"), kBabblerN10);
}

TEST(TraceDigest, BalancerN10MatchesPreFlatQuorumRun) {
  expect_golden(builtin("balancer_n10"), kBalancerN10);
}

TEST(TraceDigest, ReliableBroadcastTwoFacedSenderMatchesPreFlatQuorumRun) {
  constexpr std::uint32_t kN = 7;
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < kN; ++p) {
    if (p == 0) {
      procs.push_back(std::make_unique<TwoFacedRbSender>());
    } else {
      procs.push_back(core::ReliableBroadcast::make({kN, 2}, p, 0));
    }
  }
  sim::Simulation sim(sim::SimConfig{.n = kN, .seed = 9001,
                                     .max_steps = 500000},
                      std::move(procs));
  sim.mark_faulty(0);
  DigestTrace trace;
  sim.set_trace(&trace);
  const auto r = sim.run();
  // The split quorums cannot deliver; the run goes quiescent, and its full
  // message trace (all the echo/ready traffic) must be byte-identical.
  EXPECT_EQ(r.status, sim::RunStatus::quiescent);
  EXPECT_EQ(r.steps, kRbTwoFacedN7.steps);
  EXPECT_EQ(trace.d.h, kRbTwoFacedN7.trace);
  EXPECT_EQ(state_digest(sim), kRbTwoFacedN7.state);
}

TEST(TraceDigest, ReliableBroadcastCorrectSenderMatchesPreFlatQuorumRun) {
  constexpr std::uint32_t kN = 10;
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < kN; ++p) {
    procs.push_back(
        core::ReliableBroadcast::make({kN, 3}, p, /*sender=*/9, Value::one));
  }
  sim::Simulation sim(sim::SimConfig{.n = kN, .seed = 4242,
                                     .max_steps = 500000},
                      std::move(procs));
  DigestTrace trace;
  sim.set_trace(&trace);
  const auto r = sim.run();
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_EQ(r.steps, kRbCorrectN10.steps);
  EXPECT_EQ(trace.d.h, kRbCorrectN10.trace);
  EXPECT_EQ(state_digest(sim), kRbCorrectN10.state);
}

// A schedule captured on the pre-change simulator (every actor choice and
// delivered seq of the failstop_n5 run) must replay on the optimized
// simulator without divergence and land on the identical digests.
TEST(TraceDigest, PreChangeRecordedScheduleReplaysByteIdentically) {
  std::ifstream in(std::string(RCP_TEST_DATA_DIR) +
                   "/pre_change_failstop_n5.schedule");
  ASSERT_TRUE(in.good()) << "missing checked-in schedule";
  auto replay = sim::make_replay_policies(sim::Schedule::load(in));
  auto sim = adversary::build(builtin("failstop_n5"), std::move(replay.delivery),
                              std::move(replay.scheduler));
  DigestTrace trace;
  sim->set_trace(&trace);
  const auto r = sim->run();
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_EQ(r.steps, kFailstopN5.steps);
  EXPECT_EQ(trace.d.h, kFailstopN5.trace);
  EXPECT_EQ(state_digest(*sim), kFailstopN5.state);
}

}  // namespace
}  // namespace rcp
