#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.hpp"

namespace rcp::sim {
namespace {

TEST(RandomScheduler, PicksOnlyEligible) {
  RandomScheduler s;
  Rng rng(1);
  const std::vector<ProcessId> eligible{2, 5, 9};
  for (int i = 0; i < 100; ++i) {
    const ProcessId p = s.pick(eligible, rng);
    EXPECT_TRUE(p == 2 || p == 5 || p == 9);
  }
}

TEST(RandomScheduler, CoversAllEligible) {
  RandomScheduler s;
  Rng rng(2);
  const std::vector<ProcessId> eligible{0, 1, 2, 3};
  std::set<ProcessId> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(s.pick(eligible, rng));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RandomScheduler, EmptyEligibleThrows) {
  RandomScheduler s;
  Rng rng(3);
  EXPECT_THROW((void)s.pick({}, rng), PreconditionError);
}

TEST(RoundRobinScheduler, CyclesInOrder) {
  RoundRobinScheduler s;
  Rng rng(4);
  const std::vector<ProcessId> eligible{1, 3, 5};
  EXPECT_EQ(s.pick(eligible, rng), 1u);
  EXPECT_EQ(s.pick(eligible, rng), 3u);
  EXPECT_EQ(s.pick(eligible, rng), 5u);
  EXPECT_EQ(s.pick(eligible, rng), 1u);
}

TEST(RoundRobinScheduler, SkipsNewlyIneligible) {
  RoundRobinScheduler s;
  Rng rng(5);
  EXPECT_EQ(s.pick(std::vector<ProcessId>{0, 1, 2}, rng), 0u);
  // 1 dropped out; next eligible after 0 is 2.
  EXPECT_EQ(s.pick(std::vector<ProcessId>{0, 2}, rng), 2u);
  EXPECT_EQ(s.pick(std::vector<ProcessId>{0, 2}, rng), 0u);
}

TEST(RoundRobinScheduler, WrapsWhenPastEnd) {
  RoundRobinScheduler s;
  Rng rng(6);
  EXPECT_EQ(s.pick(std::vector<ProcessId>{5}, rng), 5u);
  // Everything eligible is below the last pick: wrap to front.
  EXPECT_EQ(s.pick(std::vector<ProcessId>{1, 2}, rng), 1u);
}

TEST(SchedulerFactories, Work) {
  Rng rng(7);
  const std::vector<ProcessId> eligible{4};
  EXPECT_EQ(make_random_scheduler()->pick(eligible, rng), 4u);
  EXPECT_EQ(make_round_robin_scheduler()->pick(eligible, rng), 4u);
}

}  // namespace
}  // namespace rcp::sim
