#include "sim/delivery.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace rcp::sim {
namespace {

Mailbox box_with(std::initializer_list<std::uint64_t> seqs) {
  Mailbox box;
  for (const auto s : seqs) {
    box.push(Envelope{.sender = static_cast<ProcessId>(s % 3),
                      .receiver = 0,
                      .payload = {},
                      .sent_at_step = 0,
                      .seq = s});
  }
  return box;
}

TEST(UniformDelivery, EmptyMailboxYieldsPhi) {
  UniformDelivery d;
  Mailbox box;
  Rng rng(1);
  EXPECT_EQ(d.pick(0, box, 0, rng), std::nullopt);
}

TEST(UniformDelivery, EventuallyPicksEveryIndex) {
  UniformDelivery d;
  Mailbox box = box_with({1, 2, 3, 4});
  Rng rng(2);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto pick = d.pick(0, box, 0, rng);
    ASSERT_TRUE(pick.has_value());
    ASSERT_LT(*pick, box.size());
    seen.insert(*pick);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(UniformDelivery, PhiProbabilityRespected) {
  UniformDelivery d(0.5);
  Mailbox box = box_with({1});
  Rng rng(3);
  int phis = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!d.pick(0, box, 0, rng).has_value()) {
      ++phis;
    }
  }
  EXPECT_GT(phis, 400);
  EXPECT_LT(phis, 600);
}

TEST(UniformDelivery, RejectsBadPhiProbability) {
  EXPECT_THROW(UniformDelivery(-0.1), PreconditionError);
  EXPECT_THROW(UniformDelivery(1.0), PreconditionError);
}

TEST(FifoDelivery, PicksOldestBySeq) {
  FifoDelivery d;
  Mailbox box = box_with({30, 10, 20});
  Rng rng(4);
  const auto pick = d.pick(0, box, 0, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(box.contents()[*pick].seq, 10u);
  EXPECT_TRUE(d.order_preserving());
}

TEST(LifoDelivery, PicksNewestBySeq) {
  LifoDelivery d;
  Mailbox box = box_with({30, 10, 20});
  Rng rng(5);
  const auto pick = d.pick(0, box, 0, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(box.contents()[*pick].seq, 30u);
}

TEST(DeliveryFactories, ProduceWorkingPolicies) {
  Mailbox box = box_with({7});
  Rng rng(6);
  EXPECT_TRUE(make_uniform_delivery()->pick(0, box, 0, rng).has_value());
  EXPECT_TRUE(make_fifo_delivery()->pick(0, box, 0, rng).has_value());
  EXPECT_TRUE(make_lifo_delivery()->pick(0, box, 0, rng).has_value());
}

}  // namespace
}  // namespace rcp::sim
