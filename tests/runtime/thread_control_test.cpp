#include "runtime/thread_control.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rcp::runtime {
namespace {

TEST(ThreadControl, StartsIdle) {
  ThreadControl control;
  EXPECT_EQ(control.total(), 0u);
  EXPECT_EQ(control.completed(), 0u);
  EXPECT_FALSE(control.cancelled());
  EXPECT_DOUBLE_EQ(control.fraction_complete(), 0.0);
}

TEST(ThreadControl, TracksProgress) {
  ThreadControl control;
  control.begin(10);
  EXPECT_EQ(control.total(), 10u);
  control.note_completed();
  control.note_completed(4);
  EXPECT_EQ(control.completed(), 5u);
  EXPECT_DOUBLE_EQ(control.fraction_complete(), 0.5);
  control.note_completed(5);
  EXPECT_DOUBLE_EQ(control.fraction_complete(), 1.0);
}

TEST(ThreadControl, BeginResetsPreviousRun) {
  ThreadControl control;
  control.begin(4);
  control.note_completed(4);
  control.request_cancel();
  control.begin(8);
  EXPECT_EQ(control.total(), 8u);
  EXPECT_EQ(control.completed(), 0u);
  EXPECT_FALSE(control.cancelled());
}

TEST(ThreadControl, CancelIsStickyWithinRun) {
  ThreadControl control;
  control.begin(4);
  EXPECT_FALSE(control.cancelled());
  control.request_cancel();
  EXPECT_TRUE(control.cancelled());
  EXPECT_TRUE(control.cancelled());
}

TEST(ThreadControl, ConcurrentCompletionsAllCounted) {
  ThreadControl control;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  control.begin(kThreads * kPerThread);
  std::vector<std::jthread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&control] {
      for (int i = 0; i < kPerThread; ++i) {
        control.note_completed();
      }
    });
  }
  workers.clear();  // join
  EXPECT_EQ(control.completed(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace rcp::runtime
