// The acceptance contract of the parallel runtime: for a fixed
// (scenario, runs, base_seed), ParallelSeries/run_scenario_series at T
// threads produces bit-identical aggregates to the serial path, for every
// protocol family the harnesses measure (fail-stop, malicious, Ben-Or).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/crash_plan.hpp"
#include "adversary/scenario.hpp"
#include "baselines/benor.hpp"
#include "common/stats.hpp"
#include "runtime/parallel_series.hpp"
#include "runtime/scenario_series.hpp"
#include "sim/simulation.hpp"

namespace rcp::runtime {
namespace {

// Bitwise comparison of the statistical fields (wall_seconds is timing,
// not statistics, and is explicitly outside the determinism contract).
void expect_identical(const SeriesResult& a, const SeriesResult& b,
                      const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.agreed, b.agreed);
  EXPECT_EQ(a.decided_one, b.decided_one);
  for (const auto& [sa, sb] : {std::pair{&a.phases, &b.phases},
                               std::pair{&a.steps, &b.steps},
                               std::pair{&a.messages, &b.messages}}) {
    EXPECT_EQ(sa->count(), sb->count());
    EXPECT_EQ(sa->mean(), sb->mean());
    EXPECT_EQ(sa->variance(), sb->variance());
    EXPECT_EQ(sa->min(), sb->min());
    EXPECT_EQ(sa->max(), sb->max());
  }
}

SeriesResult run_at(const adversary::Scenario& scenario, std::uint32_t runs,
                    std::uint64_t base_seed, std::uint32_t threads) {
  return run_scenario_series(scenario, runs, base_seed, {},
                             SeriesConfig{.threads = threads});
}

TEST(RuntimeDeterminism, FailStopSeries) {
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::fail_stop;
  s.params = {7, 3};
  s.inputs = adversary::alternating_inputs(7);
  s.crashes = adversary::CrashPlan::staggered(2);
  const SeriesResult serial = run_at(s, 48, 21, 1);
  EXPECT_EQ(serial.runs, 48u);
  EXPECT_GT(serial.decided, 0u);
  expect_identical(serial, run_at(s, 48, 21, 2), "2 threads");
  expect_identical(serial, run_at(s, 48, 21, 8), "8 threads");
}

TEST(RuntimeDeterminism, MaliciousSeries) {
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = adversary::alternating_inputs(7);
  s.byzantine_kind = adversary::ByzantineKind::equivocator;
  s.byzantine_ids = {0, 3};
  s.max_steps = 4'000'000;
  const SeriesResult serial = run_at(s, 32, 5, 1);
  EXPECT_EQ(serial.runs, 32u);
  EXPECT_GT(serial.decided, 0u);
  expect_identical(serial, run_at(s, 32, 5, 2), "2 threads");
  expect_identical(serial, run_at(s, 32, 5, 8), "8 threads");
}

// Ben-Or is not an adversary::Scenario protocol; it exercises the generic
// ParallelSeries path the way bench_e6 does.
struct BenOrTally {
  RunningStats rounds;
  std::uint32_t decided = 0;
  std::uint32_t runs = 0;

  void merge(const BenOrTally& other) {
    rounds.merge(other.rounds);
    decided += other.decided;
    runs += other.runs;
  }
};

BenOrTally run_benor(std::uint32_t threads) {
  constexpr std::uint32_t kN = 6;
  constexpr std::uint32_t kK = 2;
  return run_trials<BenOrTally>(
      24, 9,
      [](BenOrTally& acc, std::uint64_t, std::uint64_t seed) {
        std::vector<std::unique_ptr<sim::Process>> procs;
        for (ProcessId p = 0; p < kN; ++p) {
          procs.push_back(baselines::BenOrConsensus::make(
              {kN, kK}, baselines::BenOrVariant::crash,
              p % 2 == 0 ? Value::zero : Value::one));
        }
        sim::Simulation s(
            sim::SimConfig{.n = kN, .seed = seed, .max_steps = 4'000'000},
            std::move(procs));
        const sim::RunResult result = s.run();
        ++acc.runs;
        if (result.status == sim::RunStatus::all_decided) {
          ++acc.decided;
          acc.rounds.add(static_cast<double>(s.metrics().max_phase));
        }
      },
      SeriesConfig{.threads = threads});
}

TEST(RuntimeDeterminism, BenOrSeries) {
  const BenOrTally serial = run_benor(1);
  EXPECT_EQ(serial.runs, 24u);
  EXPECT_GT(serial.decided, 0u);
  for (const std::uint32_t threads : {2u, 8u}) {
    const BenOrTally parallel = run_benor(threads);
    SCOPED_TRACE(threads);
    EXPECT_EQ(parallel.runs, serial.runs);
    EXPECT_EQ(parallel.decided, serial.decided);
    EXPECT_EQ(parallel.rounds.count(), serial.rounds.count());
    EXPECT_EQ(parallel.rounds.mean(), serial.rounds.mean());
    EXPECT_EQ(parallel.rounds.variance(), serial.rounds.variance());
    EXPECT_EQ(parallel.rounds.min(), serial.rounds.min());
    EXPECT_EQ(parallel.rounds.max(), serial.rounds.max());
  }
}

// Delivery-policy factories are invoked per trial on worker threads; the
// aggregate must still be schedule-independent.
TEST(RuntimeDeterminism, DeliveryFactorySeries) {
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = adversary::alternating_inputs(7);
  const DeliveryFactory factory = [] { return sim::make_fifo_delivery(); };
  const SeriesResult serial =
      run_scenario_series(s, 24, 3, factory, SeriesConfig{.threads = 1});
  const SeriesResult parallel =
      run_scenario_series(s, 24, 3, factory, SeriesConfig{.threads = 4});
  expect_identical(serial, parallel, "fifo factory, 4 threads");
}

}  // namespace
}  // namespace rcp::runtime
