#include "runtime/parallel_series.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "runtime/seeding.hpp"

namespace rcp::runtime {
namespace {

struct Tally {
  double sum = 0.0;            // order-sensitive: catches merge-order drift
  std::uint64_t xor_seeds = 0; // order-insensitive: catches coverage gaps
  std::uint64_t count = 0;

  void merge(const Tally& other) {
    sum += other.sum;
    xor_seeds ^= other.xor_seeds;
    count += other.count;
  }
};

Tally run(std::uint32_t threads, std::uint64_t trials,
          std::uint64_t base_seed, ThreadControl* control = nullptr) {
  return run_trials<Tally>(
      trials, base_seed,
      [](Tally& acc, std::uint64_t trial, std::uint64_t seed) {
        acc.sum += static_cast<double>(seed % 1'000'003) /
                   static_cast<double>(trial + 1);
        acc.xor_seeds ^= seed;
        ++acc.count;
      },
      SeriesConfig{.threads = threads}, control);
}

TEST(ParallelSeries, CoversEveryTrialWithDerivedSeed) {
  const Tally t = run(4, 1'000, 99);
  EXPECT_EQ(t.count, 1'000u);
  std::uint64_t expect_xor = 0;
  for (std::uint64_t r = 0; r < 1'000; ++r) {
    expect_xor ^= trial_seed(99, r);
  }
  EXPECT_EQ(t.xor_seeds, expect_xor);
}

TEST(ParallelSeries, BitIdenticalAcrossThreadCounts) {
  const Tally serial = run(1, 1'234, 7);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const Tally parallel = run(threads, 1'234, 7);
    EXPECT_EQ(parallel.count, serial.count) << threads << " threads";
    EXPECT_EQ(parallel.xor_seeds, serial.xor_seeds) << threads << " threads";
    // Bitwise double equality — the merge order is part of the contract.
    EXPECT_EQ(parallel.sum, serial.sum) << threads << " threads";
  }
}

TEST(ParallelSeries, ZeroTrials) {
  const Tally t = run(4, 0, 1);
  EXPECT_EQ(t.count, 0u);
  EXPECT_EQ(t.sum, 0.0);
}

TEST(ParallelSeries, SingleShardRunsInline) {
  // Fewer trials than one shard: identical result at any thread count.
  const Tally a = run(1, 5, 3);
  const Tally b = run(8, 5, 3);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.sum, b.sum);
}

TEST(ParallelSeries, SerialCancellationIsExact) {
  ThreadControl control;
  const Tally t = run_trials<Tally>(
      10'000, 1,
      [&control](Tally& acc, std::uint64_t trial, std::uint64_t) {
        ++acc.count;
        if (trial == 10) {
          control.request_cancel();
        }
      },
      SeriesConfig{.threads = 1}, &control);
  // Trial 10 completes (cancel is checked at trial boundaries), then stop.
  EXPECT_EQ(t.count, 11u);
  EXPECT_EQ(control.completed(), 11u);
}

TEST(ParallelSeries, ParallelCancellationStopsEarly) {
  ThreadControl control;
  const Tally t = run_trials<Tally>(
      100'000, 1,
      [&control](Tally& acc, std::uint64_t trial, std::uint64_t) {
        ++acc.count;
        if (trial == 50) {
          control.request_cancel();
        }
      },
      SeriesConfig{.threads = 4}, &control);
  EXPECT_GT(t.count, 0u);
  EXPECT_LT(t.count, 100'000u);
  EXPECT_EQ(control.completed(), t.count);
}

TEST(ParallelSeries, ControlAccountsEveryTrial) {
  ThreadControl control;
  const Tally t = run(4, 777, 5, &control);
  EXPECT_EQ(t.count, 777u);
  EXPECT_EQ(control.total(), 777u);
  EXPECT_EQ(control.completed(), 777u);
  EXPECT_DOUBLE_EQ(control.fraction_complete(), 1.0);
}

TEST(ParallelSeries, ThreadsClampToShardCount) {
  // 100 trials / shard 32 = 4 shards but 16 threads requested; must not
  // hang or double-run shards.
  const Tally t = run(16, 100, 11);
  EXPECT_EQ(t.count, 100u);
}

}  // namespace
}  // namespace rcp::runtime
