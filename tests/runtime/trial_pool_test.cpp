#include "runtime/trial_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace rcp::runtime {
namespace {

TEST(TrialPool, RunsEveryJobExactlyOnce) {
  TrialPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::uint64_t kJobs = 1'000;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.for_each(kJobs, [&](std::uint64_t job, std::uint32_t) {
    hits[job].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t j = 0; j < kJobs; ++j) {
    EXPECT_EQ(hits[j].load(), 1) << "job " << j;
  }
}

TEST(TrialPool, WorkerIndicesStayInRange) {
  TrialPool pool(3);
  std::atomic<bool> in_range{true};
  pool.for_each(200, [&](std::uint64_t, std::uint32_t worker) {
    if (worker >= 3) {
      in_range.store(false);
    }
  });
  EXPECT_TRUE(in_range.load());
}

TEST(TrialPool, ReusableAcrossBatches) {
  TrialPool pool(2);
  std::atomic<std::uint64_t> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.for_each(100, [&](std::uint64_t, std::uint32_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(count.load(), 500u);
}

TEST(TrialPool, EmptyBatchCompletes) {
  TrialPool pool(2);
  bool ran = false;
  pool.for_each(0, [&](std::uint64_t, std::uint32_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TrialPool, HonoursPreCancelledControl) {
  TrialPool pool(4);
  ThreadControl control;
  control.begin(1'000);
  control.request_cancel();
  std::atomic<std::uint64_t> count{0};
  pool.for_each(
      1'000,
      [&](std::uint64_t, std::uint32_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      },
      &control);
  EXPECT_EQ(count.load(), 0u);
}

TEST(TrialPool, CancellationStopsRemainingJobs) {
  TrialPool pool(2);
  ThreadControl control;
  control.begin(100'000);
  std::atomic<std::uint64_t> count{0};
  pool.for_each(
      100'000,
      [&](std::uint64_t, std::uint32_t) {
        if (count.fetch_add(1, std::memory_order_relaxed) == 10) {
          control.request_cancel();
        }
      },
      &control);
  EXPECT_LT(count.load(), 100'000u);
}

TEST(TrialPool, JobExceptionPropagatesAndPoolSurvives) {
  TrialPool pool(3);
  EXPECT_THROW(pool.for_each(50,
                             [](std::uint64_t job, std::uint32_t) {
                               if (job == 7) {
                                 throw std::runtime_error("trial failed");
                               }
                             }),
               std::runtime_error);
  // The pool must still accept work after a failed batch.
  std::atomic<std::uint64_t> count{0};
  pool.for_each(20, [&](std::uint64_t, std::uint32_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 20u);
}

TEST(TrialPool, MoreThreadsThanJobs) {
  TrialPool pool(8);
  std::set<std::uint64_t> seen;
  std::mutex mutex;
  pool.for_each(3, [&](std::uint64_t job, std::uint32_t) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(job);
  });
  EXPECT_EQ(seen, (std::set<std::uint64_t>{0, 1, 2}));
}

}  // namespace
}  // namespace rcp::runtime
