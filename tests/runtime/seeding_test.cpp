#include "runtime/seeding.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rcp::runtime {
namespace {

TEST(TrialSeed, Deterministic) {
  EXPECT_EQ(trial_seed(1, 0), trial_seed(1, 0));
  EXPECT_EQ(trial_seed(42, 999), trial_seed(42, 999));
}

TEST(TrialSeed, DistinctAcrossTrials) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 10'000; ++t) {
    seen.insert(trial_seed(1, t));
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

// The harnesses root adjacent series at base seeds 1, 2, 3, ...; their
// trial-seed windows must not overlap the way `base_seed + r` would.
TEST(TrialSeed, AdjacentSeriesDoNotCollide) {
  std::set<std::uint64_t> seen;
  constexpr std::uint64_t kBases = 8;
  constexpr std::uint64_t kTrials = 2'000;
  for (std::uint64_t base = 1; base <= kBases; ++base) {
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      seen.insert(trial_seed(base, t));
    }
  }
  EXPECT_EQ(seen.size(), kBases * kTrials);
}

TEST(TrialSeed, NotTheAdditiveScheme) {
  for (std::uint64_t t = 0; t < 64; ++t) {
    EXPECT_NE(trial_seed(1, t), 1 + t);
  }
  // Seed (base, t+1) differs from (base+1, t): the additive scheme would
  // make consecutive series re-run each other's trials shifted by one.
  for (std::uint64_t t = 0; t < 64; ++t) {
    EXPECT_NE(trial_seed(1, t + 1), trial_seed(2, t));
  }
}

TEST(TrialSeed, ZeroBaseIsUsable) {
  EXPECT_NE(trial_seed(0, 0), 0u);
  EXPECT_NE(trial_seed(0, 0), trial_seed(0, 1));
}

}  // namespace
}  // namespace rcp::runtime
