// Randomized configuration sweep: a catch-all property test that draws
// whole scenarios at random — protocol, system size, resilience, inputs,
// Byzantine strategy and placement, crash schedule, delivery policy — and
// asserts the two properties that must never fail inside the bounds:
// agreement always, termination under fair delivery.
#include <gtest/gtest.h>

#include "adversary/delivery.hpp"
#include "adversary/scenario.hpp"
#include "common/rng.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ByzantineKind;
using adversary::ProtocolKind;
using adversary::Scenario;

std::unique_ptr<sim::DeliveryPolicy> random_fair_delivery(Rng& rng,
                                                          std::uint32_t n) {
  switch (rng.below(4)) {
    case 0:
      return sim::make_uniform_delivery();
    case 1:
      return sim::make_uniform_delivery(0.1 + 0.3 * rng.uniform01());
    case 2:
      return sim::make_fifo_delivery();
    default: {
      std::vector<ProcessId> slow;
      for (const auto p : rng.sample_without_replacement(n, 1 + rng.below(2))) {
        slow.push_back(p);
      }
      // epsilon-fair starvation: a strict starve (slow_probability = 0)
      // can livelock requeue-based protocols when n - k forces them to
      // hear a starved sender.
      return std::make_unique<adversary::StarveSendersDelivery>(n, slow, 0.05);
    }
  }
}

TEST(RandomizedSweep, SafetyAndLivenessAcrossRandomScenarios) {
  Rng rng(0xB0C4'1983);
  for (int trial = 0; trial < 60; ++trial) {
    Scenario s;
    const std::uint32_t pick = static_cast<std::uint32_t>(rng.below(3));
    s.protocol = pick == 0   ? ProtocolKind::fail_stop
                 : pick == 1 ? ProtocolKind::malicious
                             : ProtocolKind::majority;
    const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.below(9));
    const core::FaultModel model = s.protocol == ProtocolKind::fail_stop
                                       ? core::FaultModel::fail_stop
                                       : core::FaultModel::malicious;
    const std::uint32_t k_max = core::max_resilience(model, n);
    const std::uint32_t k = static_cast<std::uint32_t>(rng.below(k_max + 1));
    s.params = {n, k};
    s.inputs = adversary::random_inputs(n, rng);
    s.seed = rng.next();
    s.max_steps = 8'000'000;

    std::string description = std::string(to_string(s.protocol)) +
                              " n=" + std::to_string(n) +
                              " k=" + std::to_string(k);
    if (k > 0) {
      if (s.protocol == ProtocolKind::malicious && rng.bernoulli(0.5)) {
        // Byzantine faults (balancer only in the paper's k <= n/5 regime).
        const ByzantineKind kinds[] = {ByzantineKind::silent,
                                       ByzantineKind::equivocator,
                                       ByzantineKind::babbler};
        s.byzantine_kind = kinds[rng.below(3)];
        const std::uint32_t byz = 1 + static_cast<std::uint32_t>(rng.below(k));
        for (const auto b : rng.sample_without_replacement(n, byz)) {
          s.byzantine_ids.push_back(b);
        }
        description += std::string(" byz=") + to_string(s.byzantine_kind);
      } else if (rng.bernoulli(0.7)) {
        const std::uint32_t crashes =
            1 + static_cast<std::uint32_t>(rng.below(k));
        s.crashes = rng.bernoulli(0.5)
                        ? adversary::CrashPlan::random(n, crashes, 2'000, rng)
                        : adversary::CrashPlan::random_phase_boundaries(
                              n, crashes, 5, rng);
        description += " crashes=" + std::to_string(crashes);
      }
    }

    const auto out =
        test::run_scenario(s, random_fair_delivery(rng, n));
    EXPECT_EQ(out.status, sim::RunStatus::all_decided)
        << "trial " << trial << ": " << description;
    EXPECT_TRUE(out.agreement) << "trial " << trial << ": " << description;
  }
}

}  // namespace
}  // namespace rcp
