// Fast-path claims of Sections 2.3 and 3.3 (experiment E5):
//  - fail-stop: unanimous inputs decide "within two steps" [phases]; more
//    than (n+k)/2 common inputs decide that value "in just three phases";
//  - malicious: unanimous decides "within two phases"; > (n+k)/2 common
//    correct inputs decide that value "in just two phases";
//  - k < n/5: once a correct process decides, all others decide within one
//    more phase.
#include <gtest/gtest.h>

#include "adversary/scenario.hpp"
#include "core/malicious.hpp"
#include "sim/simulation.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ProtocolKind;
using adversary::Scenario;
using test::run_scenario;

TEST(FastPath, FailStopUnanimousPhaseBudget) {
  for (const Value v : kBothValues) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      Scenario s;
      s.protocol = ProtocolKind::fail_stop;
      s.params = {9, 4};
      s.inputs = std::vector<Value>(9, v);
      s.seed = seed;
      const auto out = run_scenario(s);
      ASSERT_EQ(out.status, sim::RunStatus::all_decided);
      EXPECT_EQ(out.value, v);
      // Unanimity -> witnesses in phase 1 -> decision at the phase-2
      // boundary; the deciding processes emit (t, t+1) catch-up messages so
      // the trailing phase counter stays <= 4.
      EXPECT_LE(out.max_phase, 4u) << "seed " << seed;
    }
  }
}

TEST(FastPath, FailStopStrongMajorityThreePhases) {
  // > (n+k)/2 = 5.5 common inputs with n = 9, k = 2.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario s;
    s.protocol = ProtocolKind::fail_stop;
    s.params = {9, 2};
    s.inputs = adversary::inputs_with_ones(9, 6);
    s.seed = seed;
    const auto out = run_scenario(s);
    ASSERT_EQ(out.status, sim::RunStatus::all_decided);
    EXPECT_EQ(out.value, Value::one);
    EXPECT_LE(out.max_phase, 4u) << "seed " << seed;
  }
}

TEST(FastPath, MaliciousUnanimousTwoPhases) {
  for (const Value v : kBothValues) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      Scenario s;
      s.protocol = ProtocolKind::malicious;
      s.params = {10, 3};
      s.inputs = std::vector<Value>(10, v);
      s.seed = seed;
      const auto out = run_scenario(s);
      ASSERT_EQ(out.status, sim::RunStatus::all_decided);
      EXPECT_EQ(out.value, v);
      EXPECT_LE(out.max_phase, 3u) << "seed " << seed;
    }
  }
}

TEST(FastPath, MaliciousStrongMajorityDecidesThatValue) {
  // "If more than (n+k)/2 correct processes start with the same input
  // value, every process decides that value in just two phases."
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {10, 2};
    s.inputs = adversary::inputs_with_ones(10, 8);  // 8 > (10+2)/2 = 6
    s.seed = seed;
    const auto out = run_scenario(s);
    ASSERT_EQ(out.status, sim::RunStatus::all_decided);
    EXPECT_EQ(out.value, Value::one);
    EXPECT_LE(out.max_phase, 3u) << "seed " << seed;
  }
}

TEST(FastPath, SmallKOnePhaseSpreadAfterFirstDecision) {
  // "if k < n/5, once a correct process decides, all the other processes
  // also decide within one phase." Run to the first decision, record the
  // decider's phase, then run to completion and compare phases.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {11, 2};  // k = 2 < 11/5
    s.inputs = adversary::inputs_with_ones(11, 6);
    s.seed = seed;
    auto simulation = adversary::build(s);
    simulation->start();
    std::optional<Phase> first_decision_phase;
    while (!simulation->all_correct_decided()) {
      if (!simulation->step()) {
        break;
      }
      if (!first_decision_phase.has_value()) {
        for (ProcessId p = 0; p < 11; ++p) {
          if (simulation->decision_of(p).has_value()) {
            first_decision_phase = simulation->phase_of(p);
            break;
          }
        }
      }
    }
    ASSERT_TRUE(simulation->all_correct_decided()) << "seed " << seed;
    ASSERT_TRUE(first_decision_phase.has_value());
    for (ProcessId p = 0; p < 11; ++p) {
      // Everyone decided; nobody needed more than one phase beyond the
      // first decider (compare decision phases via the per-process phase
      // counters captured at completion — a process stops advancing its
      // phase promptly once it decides in this protocol's fast regime).
      EXPECT_LE(simulation->phase_of(p), *first_decision_phase + 2)
          << "p" << p << " seed " << seed;
    }
  }
}

TEST(FastPath, BivalenceBothOutcomesReachableAcrossSeeds) {
  // With a perfectly balanced start the protocol must be able to reach
  // both decisions (bivalence); check both appear across seeds.
  bool saw_zero = false;
  bool saw_one = false;
  for (std::uint64_t seed = 1; seed <= 40 && !(saw_zero && saw_one); ++seed) {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {8, 2};
    s.inputs = adversary::alternating_inputs(8);
    s.seed = seed;
    const auto out = run_scenario(s);
    ASSERT_EQ(out.status, sim::RunStatus::all_decided);
    ASSERT_TRUE(out.value.has_value());
    saw_zero |= *out.value == Value::zero;
    saw_one |= *out.value == Value::one;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_one);
}

}  // namespace
}  // namespace rcp
