// Cross-cutting sweep: every core protocol against every delivery ordering
// and scheduler. The paper's protocols assume nothing about ordering, so
// agreement and termination must hold under FIFO, LIFO, newest-half-biased
// and sender-starving deliveries alike.
#include <gtest/gtest.h>

#include "adversary/delivery.hpp"
#include "adversary/scenario.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ProtocolKind;
using adversary::Scenario;

enum class DeliveryKind : std::uint8_t {
  uniform,
  uniform_phi,
  fifo,
  lifo,
  newest_half,
  starve_two,
};

const char* name_of(DeliveryKind kind) {
  switch (kind) {
    case DeliveryKind::uniform:
      return "uniform";
    case DeliveryKind::uniform_phi:
      return "uniformPhi";
    case DeliveryKind::fifo:
      return "fifo";
    case DeliveryKind::lifo:
      return "lifo";
    case DeliveryKind::newest_half:
      return "newestHalf";
    case DeliveryKind::starve_two:
      return "starveTwo";
  }
  return "?";
}

std::unique_ptr<sim::DeliveryPolicy> make_delivery(DeliveryKind kind,
                                                   std::uint32_t n) {
  switch (kind) {
    case DeliveryKind::uniform:
      return sim::make_uniform_delivery();
    case DeliveryKind::uniform_phi:
      return sim::make_uniform_delivery(0.2);
    case DeliveryKind::fifo:
      return sim::make_fifo_delivery();
    case DeliveryKind::lifo:
      return sim::make_lifo_delivery();
    case DeliveryKind::newest_half:
      return std::make_unique<adversary::NewestHalfDelivery>();
    case DeliveryKind::starve_two:
      return std::make_unique<adversary::StarveSendersDelivery>(
          n, std::vector<ProcessId>{0, 1});
  }
  return nullptr;
}

struct SweepCase {
  ProtocolKind protocol;
  DeliveryKind delivery;
  bool round_robin;
  std::uint64_t seed;
};

/// LIFO and newest-half delivery are *unfair*: an old message's chance of
/// being the one received is zero while newer traffic keeps arriving, which
/// violates the paper's probabilistic assumption ("every possible view has
/// some fixed probability of being the one seen"). The protocols owe such
/// schedules safety but not convergence — and indeed they can livelock
/// (e.g. LIFO permanently starves a process's phase-0 echoes).
bool is_fair(DeliveryKind kind) {
  return kind != DeliveryKind::lifo && kind != DeliveryKind::newest_half;
}

class DeliverySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DeliverySweep, FairDeliveriesTerminateAllDeliveriesAgree) {
  const SweepCase c = GetParam();
  const std::uint32_t n = 9;
  const std::uint32_t k = c.protocol == ProtocolKind::fail_stop ? 4 : 2;
  Scenario s;
  s.protocol = c.protocol;
  s.params = {n, k};
  s.inputs = adversary::alternating_inputs(n);
  s.seed = c.seed;
  s.max_steps = is_fair(c.delivery) ? 4'000'000 : 300'000;
  auto scheduler = c.round_robin ? sim::make_round_robin_scheduler()
                                 : sim::make_random_scheduler();
  const auto out = test::run_scenario(s, make_delivery(c.delivery, n),
                                      std::move(scheduler));
  if (is_fair(c.delivery)) {
    EXPECT_EQ(out.status, sim::RunStatus::all_decided)
        << to_string(c.protocol) << " / " << name_of(c.delivery)
        << (c.round_robin ? " / roundrobin" : " / random") << " seed "
        << c.seed;
  }
  // Safety is unconditional: whoever decided, decided alike.
  EXPECT_TRUE(out.agreement)
      << to_string(c.protocol) << " / " << name_of(c.delivery)
      << (c.round_robin ? " / roundrobin" : " / random") << " seed " << c.seed;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto protocol :
       {ProtocolKind::fail_stop, ProtocolKind::malicious,
        ProtocolKind::majority}) {
    for (const auto delivery :
         {DeliveryKind::uniform, DeliveryKind::uniform_phi, DeliveryKind::fifo,
          DeliveryKind::lifo, DeliveryKind::newest_half,
          DeliveryKind::starve_two}) {
      for (const bool rr : {false, true}) {
        for (std::uint64_t seed = 1; seed <= 2; ++seed) {
          cases.push_back({protocol, delivery, rr, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, DeliverySweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& pinfo) {
                           const SweepCase& c = pinfo.param;
                           std::string name;
                           switch (c.protocol) {
                             case ProtocolKind::fail_stop:
                               name = "fig1";
                               break;
                             case ProtocolKind::malicious:
                               name = "fig2";
                               break;
                             case ProtocolKind::majority:
                               name = "maj";
                               break;
                           }
                           name += '_';
                           name += name_of(c.delivery);
                           name += c.round_robin ? "_rr" : "_rand";
                           name += "_s";
                           name += std::to_string(c.seed);
                           return name;
                         });

}  // namespace
}  // namespace rcp
