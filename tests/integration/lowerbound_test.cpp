// Tightness of the resilience bounds (Theorems 1 and 3): witness executions
// showing what goes wrong beyond floor((n-1)/2) / floor((n-1)/3).
//
// An impossibility theorem cannot be "tested" directly; what we exhibit is
// that protocols instantiated beyond the bound lose one of the three
// defining properties under a legal schedule:
//   - Figure 1 at k = n/2 under a partition (legal under asynchrony —
//     every cross-half message is merely "slow"): its witness thresholds
//     (cardinality > n/2) become unreachable inside a half, so nobody ever
//     decides: *convergence* fails (the protocol trades liveness for
//     safety).
//   - The naive quorum-vote ablation (no witness machinery) at the same
//     k = n/2 under the same partition: both halves decide their own
//     unanimous input: *consistency* fails — which is exactly why Figure 1
//     carries the witness machinery.
//   - the naive ablation and the echo-less majority variant against one
//     equivocator: quorums complete with contradictory Byzantine votes and
//     the system splits: consistency fails; echoes (Figure 2) are the fix.
//   - Figure 2 at k > floor((n-1)/3) under a partition: acceptance quorums
//     unreachable: convergence fails, consistency holds vacuously.
#include <gtest/gtest.h>

#include "adversary/byzantine.hpp"
#include "adversary/delivery.hpp"
#include "adversary/scenario.hpp"
#include "baselines/naive_quorum.hpp"
#include "core/majority.hpp"
#include "sim/simulation.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::PartitionDelivery;
using adversary::ProtocolKind;
using adversary::Scenario;

TEST(LowerBound, Figure1BeyondBoundLosesConvergenceNotConsistency) {
  // n = 8, k = 4 = ceil(n/2) > floor((n-1)/2) = 3. Each half of 4 is a
  // full n-k quorum, but a witness needs cardinality > n/2 = 4, which a
  // 4-process half can never produce: safety holds, liveness dies.
  const std::uint32_t n = 8;
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {n, n / 2};
  s.unchecked = true;
  s.inputs = std::vector<Value>(n, Value::zero);
  for (ProcessId p = n / 2; p < n; ++p) {
    s.inputs[p] = Value::one;
  }
  s.max_steps = 100'000;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    s.seed = seed;
    auto simulation =
        adversary::build(s, PartitionDelivery::split_at(n, n / 2));
    const auto result = simulation->run();
    EXPECT_NE(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    for (ProcessId p = 0; p < n; ++p) {
      EXPECT_FALSE(simulation->decision_of(p).has_value())
          << "p" << p << " seed " << seed;
    }
    EXPECT_TRUE(simulation->agreement_holds());
  }
}

TEST(LowerBound, NaiveQuorumVoteSplitsUnderPartition) {
  // The ablation without witness machinery: both halves reach unanimous
  // quorums of their own and decide opposite values — the Theorem 1
  // disagreement scenario, realized.
  const std::uint32_t n = 8;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      procs.push_back(baselines::NaiveQuorumVote::make(
          {n, n / 2}, p < n / 2 ? Value::zero : Value::one));
    }
    sim::Simulation simulation(
        sim::SimConfig{.n = n, .seed = seed, .max_steps = 100'000},
        std::move(procs), PartitionDelivery::split_at(n, n / 2));
    (void)simulation.run();
    for (ProcessId p = 0; p < n; ++p) {
      ASSERT_TRUE(simulation.decision_of(p).has_value())
          << "p" << p << " seed " << seed;
    }
    EXPECT_FALSE(simulation.agreement_holds()) << "seed " << seed;
    EXPECT_EQ(simulation.decision_of(0), Value::zero);
    EXPECT_EQ(simulation.decision_of(n - 1), Value::one);
  }
}

TEST(LowerBound, Figure1AtBoundSafeUnderSamePartition) {
  // Control experiment: at k = floor((n-1)/2) = 3 the same partition
  // cannot even form quorums inside one half (each half has 4 < n - k = 5
  // processes), so consistency trivially survives and the run stalls until
  // the network heals.
  const std::uint32_t n = 8;
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {n, 3};
  s.inputs = std::vector<Value>(n, Value::zero);
  for (ProcessId p = n / 2; p < n; ++p) {
    s.inputs[p] = Value::one;
  }
  s.max_steps = 100'000;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    s.seed = seed;
    auto simulation =
        adversary::build(s, PartitionDelivery::split_at(n, n / 2));
    const auto result = simulation->run();
    EXPECT_NE(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(simulation->agreement_holds()) << "seed " << seed;
  }
}

TEST(LowerBound, Figure1AtBoundDecidesOncePartitionHeals) {
  // Asynchrony means "slow", not "lost": heal the partition and the run
  // must complete with agreement.
  const std::uint32_t n = 8;
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {n, 3};
  s.inputs = adversary::alternating_inputs(n);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    s.seed = seed;
    auto simulation = adversary::build(
        s, PartitionDelivery::split_at(n, n / 2, /*heal_at_step=*/5'000));
    const auto result = simulation->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(simulation->agreement_holds()) << "seed " << seed;
  }
}

TEST(LowerBound, NaiveQuorumSplitByOneEquivocator) {
  // Theorem 3 scenario, realized against the eager ablation: n = 3, one
  // equivocator (> floor((n-1)/3) = 0 faults). Process 0 (input 0) can only
  // ever decide 0 (the equivocator always feeds it 0); process 2 can decide
  // 1 whenever its 2-quorum happens to be {own 1, equivocator 1}. Across
  // seeds, disagreement must occur.
  int splits = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    procs.push_back(
        baselines::NaiveQuorumVote::make({3, 1}, Value::zero));
    procs.push_back(std::make_unique<adversary::SplitVoiceByzantine>(
        core::ConsensusParams{3, 1}, /*split=*/1));
    procs.push_back(baselines::NaiveQuorumVote::make({3, 1}, Value::one));
    sim::Simulation s(
        sim::SimConfig{.n = 3, .seed = seed, .max_steps = 200'000},
        std::move(procs));
    s.mark_faulty(1);
    (void)s.run();
    ASSERT_TRUE(s.decision_of(0).has_value()) << "seed " << seed;
    EXPECT_EQ(s.decision_of(0), Value::zero) << "seed " << seed;
    if (s.decision_of(2).has_value() && !s.agreement_holds()) {
      ++splits;
    }
  }
  EXPECT_GT(splits, 0) << "one equivocator should split the naive protocol";
}

TEST(LowerBound, MajorityVariantUnsafeUnderEquivocation) {
  // The Section 4.1 variant drops Figure 2's echo machinery, and the paper
  // analyses it only for fail-stop faults. This test documents why: an
  // equivocator contributes *different* values to different processes'
  // quorums in the same phase, which the echo consistency claim ("no two
  // correct processes accept different values from the same process")
  // exists to prevent. At n = 4, k = 1 some schedules split the system.
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    procs.push_back(core::MajorityConsensus::make({4, 1}, Value::zero));
    procs.push_back(std::make_unique<adversary::SplitVoiceByzantine>(
        core::ConsensusParams{4, 1}, /*split=*/2));
    procs.push_back(core::MajorityConsensus::make({4, 1}, Value::zero));
    procs.push_back(core::MajorityConsensus::make({4, 1}, Value::one));
    sim::Simulation s(
        sim::SimConfig{.n = 4, .seed = seed, .max_steps = 1'000'000},
        std::move(procs));
    s.mark_faulty(1);
    (void)s.run();
    if (!s.agreement_holds()) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0)
      << "equivocation should break the echo-less variant on some schedule";
}

TEST(LowerBound, Figure2SafeUnderEquivocationAtLegalK) {
  // Control: the full Figure 2 protocol (with echoes) under an equivocator
  // at the same n = 4, k = 1 never violates agreement — the echo quorums
  // are exactly what the previous test shows to be necessary.
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {4, 1};
  s.inputs = {Value::zero, Value::zero, Value::zero, Value::one};
  s.byzantine_ids = {1};
  s.byzantine_kind = adversary::ByzantineKind::equivocator;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s.seed = seed;
    const auto out = test::run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(out.agreement) << "seed " << seed;
  }
}

TEST(LowerBound, MaliciousProtocolBeyondBoundLosesConvergence) {
  // Figure 2 at n = 9, k = 3 > floor((n-1)/3) = 2, partitioned into
  // 5 + 4: the echo-acceptance threshold floor((9+3)/2)+1 = 7 exceeds
  // either side, so nothing is ever accepted and nobody decides —
  // convergence fails while consistency holds vacuously.
  const std::uint32_t n = 9;
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {n, 3};
  s.unchecked = true;
  s.inputs = adversary::alternating_inputs(n);
  s.max_steps = 100'000;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    s.seed = seed;
    auto simulation = adversary::build(s, PartitionDelivery::split_at(n, 5));
    const auto result = simulation->run();
    EXPECT_NE(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    for (ProcessId p = 0; p < n; ++p) {
      EXPECT_FALSE(simulation->decision_of(p).has_value())
          << "p" << p << " seed " << seed;
    }
    EXPECT_TRUE(simulation->agreement_holds());
  }
}

}  // namespace
}  // namespace rcp
