// Convergence property (the paper's probability-1 termination): the
// distribution of phases-to-decision has a light tail. The proofs show
// P[not decided within t phases] decays geometrically (each window of
// phases has a fixed success probability theta); we check the empirical
// quantiles stay within small multiples of the median.
#include <gtest/gtest.h>

#include "adversary/scenario.hpp"
#include "common/stats.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ProtocolKind;
using adversary::Scenario;

Histogram phase_histogram(ProtocolKind protocol, std::uint32_t n,
                          std::uint32_t k, std::uint32_t runs) {
  Histogram h;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    Scenario s;
    s.protocol = protocol;
    s.params = {n, k};
    s.inputs = adversary::alternating_inputs(n);
    s.seed = seed;
    const auto out = test::run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    h.add(out.max_phase);
  }
  return h;
}

TEST(Convergence, FailStopPhaseTailIsLight) {
  const Histogram h = phase_histogram(ProtocolKind::fail_stop, 9, 4, 300);
  const auto median = h.quantile(0.5);
  const auto p99 = h.quantile(0.99);
  EXPECT_LE(p99, 3 * median + 3)
      << "median=" << median << " p99=" << p99;
  EXPECT_LE(h.max_value(), 6 * median + 6);
}

TEST(Convergence, MaliciousPhaseTailIsLight) {
  const Histogram h = phase_histogram(ProtocolKind::malicious, 7, 2, 300);
  const auto median = h.quantile(0.5);
  EXPECT_LE(h.quantile(0.99), 3 * median + 3);
}

TEST(Convergence, MajorityVariantPhaseTailIsLight) {
  const Histogram h = phase_histogram(ProtocolKind::majority, 10, 3, 300);
  const auto median = h.quantile(0.5);
  EXPECT_LE(h.quantile(0.95), 3 * median + 3);
  // Geometric-style decay: the second half of the tail is thinner than the
  // first. Compare mass above 2*median vs mass above median.
  std::uint64_t above_m = 0;
  std::uint64_t above_2m = 0;
  for (const auto& [phase, count] : h.buckets()) {
    if (phase > median) {
      above_m += count;
    }
    if (phase > 2 * median) {
      above_2m += count;
    }
  }
  EXPECT_LT(above_2m * 2, above_m + 1)
      << "tail not decaying: >" << median << ": " << above_m << ", >"
      << 2 * median << ": " << above_2m;
}

TEST(Convergence, StepCountsScalePolynomially) {
  // Steps to completion should grow roughly with n^2 (everyone talks to
  // everyone each phase), definitely not exponentially. Compare n and 2n.
  RunningStats small;
  RunningStats large;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario s;
    s.protocol = ProtocolKind::fail_stop;
    s.params = {8, 3};
    s.inputs = adversary::alternating_inputs(8);
    s.seed = seed;
    small.add(static_cast<double>(test::run_scenario(s).steps));
    Scenario s2;
    s2.protocol = ProtocolKind::fail_stop;
    s2.params = {16, 7};
    s2.inputs = adversary::alternating_inputs(16);
    s2.seed = seed;
    large.add(static_cast<double>(test::run_scenario(s2).steps));
  }
  EXPECT_LT(large.mean(), 16.0 * small.mean())
      << "steps blew up superpolynomially: " << small.mean() << " -> "
      << large.mean();
}

}  // namespace
}  // namespace rcp
