#include "adversary/delivery.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::adversary {
namespace {

sim::Mailbox box_from(std::initializer_list<ProcessId> senders) {
  sim::Mailbox box;
  std::uint64_t seq = 0;
  for (const ProcessId s : senders) {
    box.push(sim::Envelope{.sender = s, .receiver = 0, .payload = {},
                           .sent_at_step = 0, .seq = seq++});
  }
  return box;
}

TEST(PartitionDelivery, OnlyIntraGroupDelivered) {
  // Groups: {0, 1} and {2, 3}. Receiver 0 is in group 0.
  PartitionDelivery d({0, 0, 1, 1});
  sim::Mailbox box = box_from({1, 2, 3});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto pick = d.pick(0, box, 0, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(box.contents()[*pick].sender, 1u);
  }
}

TEST(PartitionDelivery, OnlyCrossGroupBufferedYieldsPhi) {
  PartitionDelivery d({0, 0, 1, 1});
  sim::Mailbox box = box_from({2, 3});
  Rng rng(2);
  EXPECT_EQ(d.pick(0, box, 0, rng), std::nullopt);
}

TEST(PartitionDelivery, HealReleasesEverything) {
  PartitionDelivery d({0, 0, 1, 1}, /*heal_at_step=*/100);
  sim::Mailbox box = box_from({2, 3});
  Rng rng(3);
  EXPECT_EQ(d.pick(0, box, 99, rng), std::nullopt);
  EXPECT_TRUE(d.pick(0, box, 100, rng).has_value());
}

TEST(PartitionDelivery, SplitAtFactory) {
  auto d = PartitionDelivery::split_at(4, 2);
  sim::Mailbox box = box_from({3});
  Rng rng(4);
  // Receiver 0 (group 0) cannot hear sender 3 (group 1).
  EXPECT_EQ(d->pick(0, box, 0, rng), std::nullopt);
  // Receiver 3 (group 1) can.
  EXPECT_TRUE(d->pick(3, box, 0, rng).has_value());
}

TEST(PartitionDelivery, Validation) {
  EXPECT_THROW(PartitionDelivery({}), PreconditionError);
  EXPECT_THROW((void)PartitionDelivery::split_at(4, 5), PreconditionError);
  PartitionDelivery d({0, 1});
  sim::Mailbox box = box_from({0});
  Rng rng(5);
  EXPECT_THROW((void)d.pick(7, box, 0, rng), PreconditionError);
}

TEST(StarveSenders, FastPreferred) {
  StarveSendersDelivery d(4, {2});
  sim::Mailbox box = box_from({1, 2, 3});
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const auto pick = d.pick(0, box, 0, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_NE(box.contents()[*pick].sender, 2u);
  }
}

TEST(StarveSenders, SlowDeliveredWhenAlone) {
  StarveSendersDelivery d(4, {2});
  sim::Mailbox box = box_from({2, 2});
  Rng rng(7);
  const auto pick = d.pick(0, box, 0, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(box.contents()[*pick].sender, 2u);
}

TEST(StarveSenders, Validation) {
  EXPECT_THROW(StarveSendersDelivery(3, {3}), PreconditionError);
  EXPECT_THROW(StarveSendersDelivery(3, {0}, 1.0), PreconditionError);
  EXPECT_THROW(StarveSendersDelivery(3, {0}, -0.1), PreconditionError);
}

TEST(StarveSenders, EpsilonFairnessDeliversSlowOccasionally) {
  StarveSendersDelivery d(4, {2}, /*slow_probability=*/0.2);
  sim::Mailbox box = box_from({1, 2, 3});
  Rng rng(11);
  int slow_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto pick = d.pick(0, box, 0, rng);
    ASSERT_TRUE(pick.has_value());
    if (box.contents()[*pick].sender == 2) {
      ++slow_hits;
    }
  }
  // ~20% of draws are uniform over all 3 messages: expect ~2000*0.2/3 = 133.
  EXPECT_GT(slow_hits, 60);
  EXPECT_LT(slow_hits, 260);
}

TEST(NewestHalf, PrefersRecentSeqs) {
  NewestHalfDelivery d;
  sim::Mailbox box = box_from({0, 1, 2, 3});  // seqs 0..3
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const auto pick = d.pick(0, box, 0, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_GE(box.contents()[*pick].seq, 2u);
  }
}

TEST(NewestHalf, EmptyYieldsPhi) {
  NewestHalfDelivery d;
  sim::Mailbox box;
  Rng rng(9);
  EXPECT_EQ(d.pick(0, box, 0, rng), std::nullopt);
}

}  // namespace
}  // namespace rcp::adversary
