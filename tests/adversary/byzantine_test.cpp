// Byzantine strategy behaviour, observed through traces and through the
// protocols they attack.
#include "adversary/byzantine.hpp"

#include <gtest/gtest.h>

#include "adversary/scenario.hpp"
#include "core/messages.hpp"
#include "sim/simulation.hpp"
#include "support/probe_process.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ByzantineKind;
using adversary::Scenario;
using core::EchoProtocolMsg;

TEST(Byzantine, FactoryCoversAllKinds) {
  for (const auto kind :
       {ByzantineKind::silent, ByzantineKind::equivocator,
        ByzantineKind::balancer, ByzantineKind::babbler}) {
    EXPECT_NE(adversary::make_byzantine(kind, {7, 2}), nullptr);
  }
}

TEST(Byzantine, KindNames) {
  EXPECT_STREQ(to_string(ByzantineKind::silent), "silent");
  EXPECT_STREQ(to_string(ByzantineKind::equivocator), "equivocator");
  EXPECT_STREQ(to_string(ByzantineKind::balancer), "balancer");
  EXPECT_STREQ(to_string(ByzantineKind::babbler), "babbler");
}

TEST(Byzantine, SilentSendsNothing) {
  test::ProbeFleet fleet(1);
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::make_unique<adversary::SilentByzantine>());
  procs.push_back(std::move(fleet.processes[0]));
  sim::Simulation s(sim::SimConfig{.n = 2, .seed = 1}, std::move(procs));
  s.start();
  EXPECT_EQ(s.metrics().messages_sent, 0u);
}

// Captures everything the Byzantine process under test sends to us.
struct ByzantineHarness {
  std::unique_ptr<sim::Simulation> simulation;
  test::ProbeProcess* observer = nullptr;

  /// Slot 0 is the Byzantine process; slot 1 observes; slot 1's start_fn
  /// sends `stimulus` to the Byzantine process.
  ByzantineHarness(std::unique_ptr<sim::Process> byz, Bytes stimulus) {
    auto probe = std::make_unique<test::ProbeProcess>();
    observer = probe.get();
    probe->start_fn = [payload = std::move(stimulus)](sim::Context& ctx) {
      ctx.send(0, payload);
    };
    std::vector<std::unique_ptr<sim::Process>> procs;
    procs.push_back(std::move(byz));
    procs.push_back(std::move(probe));
    simulation = std::make_unique<sim::Simulation>(
        sim::SimConfig{.n = 2, .seed = 9, .max_steps = 10'000},
        std::move(procs));
    simulation->mark_faulty(0);
  }
};

TEST(Byzantine, EquivocatorSendsDifferentValuesToHalves) {
  // n = 2: id 0 (the equivocator itself) is in the low half, id 1 high.
  ByzantineHarness h(
      std::make_unique<adversary::EquivocatorByzantine>(
          core::ConsensusParams{2, 0}),
      EchoProtocolMsg{.is_echo = false, .from = 1, .value = Value::zero,
                      .phase = 0}
          .encode());
  h.simulation->start();
  while (h.simulation->step()) {
  }
  // The observer (id 1, high half) got the equivocator's phase-0 initial
  // with value one, plus a two-faced echo of our own initial flipped to one.
  bool saw_initial_one = false;
  bool saw_flipped_echo = false;
  for (const auto& env : h.observer->received) {
    const auto msg = EchoProtocolMsg::decode(env.payload);
    if (!msg.is_echo && msg.from == 0 && msg.value == Value::one) {
      saw_initial_one = true;
    }
    if (msg.is_echo && msg.from == 1 && msg.value == Value::one) {
      saw_flipped_echo = true;
    }
  }
  EXPECT_TRUE(saw_initial_one);
  EXPECT_TRUE(saw_flipped_echo);
}

TEST(Byzantine, BalancerVotesAgainstObservedMajority) {
  ByzantineHarness h(
      std::make_unique<adversary::BalancerByzantine>(
          core::ConsensusParams{2, 0}),
      EchoProtocolMsg{.is_echo = false, .from = 1, .value = Value::one,
                      .phase = 0}
          .encode());
  h.simulation->start();
  while (h.simulation->step()) {
  }
  // Phase 0 vote is 1 (nothing observed yet). After observing our 1 in
  // phase 0, a phase-1 stimulus would draw a 0 vote; simulate by feeding a
  // phase-1 initial and stepping again. We check at least the phase-0 vote
  // and the honest echo of our initial arrived.
  bool saw_vote = false;
  bool saw_honest_echo = false;
  for (const auto& env : h.observer->received) {
    const auto msg = EchoProtocolMsg::decode(env.payload);
    if (!msg.is_echo && msg.from == 0 && msg.phase == 0) {
      saw_vote = true;
    }
    if (msg.is_echo && msg.from == 1 && msg.value == Value::one) {
      saw_honest_echo = true;
    }
  }
  EXPECT_TRUE(saw_vote);
  EXPECT_TRUE(saw_honest_echo);
}

TEST(Byzantine, BabblerEmitsDecodableAndGarbageTraffic) {
  ByzantineHarness h(
      std::make_unique<adversary::BabblerByzantine>(
          core::ConsensusParams{2, 0}),
      EchoProtocolMsg{.is_echo = false, .from = 1, .value = Value::zero,
                      .phase = 0}
          .encode());
  h.simulation->start();
  while (h.simulation->step()) {
  }
  EXPECT_FALSE(h.observer->received.empty());
  std::size_t decodable = 0;
  std::size_t garbage = 0;
  for (const auto& env : h.observer->received) {
    try {
      (void)EchoProtocolMsg::decode(env.payload);
      ++decodable;
    } catch (const DecodeError&) {
      ++garbage;
    }
  }
  EXPECT_GT(decodable, 0u);
  static_cast<void>(garbage);  // garbage is probabilistic; presence optional
}

TEST(Byzantine, SplitVoiceSendsZeroLowOneHigh) {
  test::ProbeFleet fleet(2);
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::move(fleet.processes[0]));  // id 0: observer low
  procs.push_back(std::make_unique<adversary::SplitVoiceByzantine>(
      core::ConsensusParams{3, 1}, /*split=*/1));
  procs.push_back(std::move(fleet.processes[1]));  // id 2: observer high
  sim::Simulation s(sim::SimConfig{.n = 3, .seed = 2}, std::move(procs));
  s.mark_faulty(1);
  s.start();
  while (s.step()) {
  }
  ASSERT_FALSE(fleet.probes[0]->received.empty());
  ASSERT_FALSE(fleet.probes[1]->received.empty());
  EXPECT_EQ(core::MajorityMsg::decode(fleet.probes[0]->received[0].payload).value,
            Value::zero);
  EXPECT_EQ(core::MajorityMsg::decode(fleet.probes[1]->received[0].payload).value,
            Value::one);
}

TEST(Byzantine, ForgedInitialsAreImpotent) {
  // A babbler forges echoes and garbage; the malicious protocol's engine
  // must never accept a forged origin's value without a real quorum. We
  // assert system-level consistency under a lone babbler at k = 1, n = 4.
  Scenario s;
  s.protocol = adversary::ProtocolKind::malicious;
  s.params = {4, 1};
  s.inputs = adversary::alternating_inputs(4);
  s.byzantine_ids = {3};
  s.byzantine_kind = ByzantineKind::babbler;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    s.seed = seed;
    const auto out = test::run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(out.agreement) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rcp
