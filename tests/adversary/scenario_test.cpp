#include "adversary/scenario.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::adversary {
namespace {

Scenario base() {
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = alternating_inputs(7);
  s.seed = 3;
  return s;
}

TEST(Scenario, BuildMarksByzantineSlotsFaulty) {
  Scenario s = base();
  s.byzantine_ids = {1, 4};
  auto sim = build(s);
  EXPECT_TRUE(sim->is_faulty(1));
  EXPECT_TRUE(sim->is_faulty(4));
  EXPECT_FALSE(sim->is_faulty(0));
  EXPECT_EQ(sim->correct_ids().size(), 5u);
}

TEST(Scenario, BuildValidatesInputs) {
  Scenario s = base();
  s.inputs.pop_back();
  EXPECT_THROW((void)build(s), PreconditionError);
  s = base();
  s.byzantine_ids = {7};
  EXPECT_THROW((void)build(s), PreconditionError);
}

TEST(Scenario, BuildValidatesResilienceUnlessUnchecked) {
  Scenario s = base();
  s.params = {7, 3};  // beyond floor((7-1)/3)
  EXPECT_THROW((void)build(s), PreconditionError);
  s.unchecked = true;
  EXPECT_NO_THROW((void)build(s));
}

TEST(Scenario, CrashPlanApplied) {
  Scenario s = base();
  s.protocol = ProtocolKind::fail_stop;
  s.params = {7, 3};
  s.crashes.add_step_crash(2, 0);
  auto sim = build(s);
  sim->start();
  EXPECT_FALSE(sim->alive(2));
}

TEST(Scenario, AllProtocolKindsBuildAndRun) {
  for (const auto kind :
       {ProtocolKind::fail_stop, ProtocolKind::malicious,
        ProtocolKind::majority}) {
    Scenario s = base();
    s.protocol = kind;
    s.params = {7, kind == ProtocolKind::fail_stop ? 3u : 2u};
    auto sim = build(s);
    const auto result = sim->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << to_string(kind);
    EXPECT_TRUE(sim->agreement_holds());
  }
}

TEST(InputPatterns, Shapes) {
  EXPECT_THROW((void)inputs_with_ones(3, 4), PreconditionError);
  const auto ones = inputs_with_ones(5, 2);
  EXPECT_EQ(ones, (std::vector<Value>{Value::one, Value::one, Value::zero,
                                      Value::zero, Value::zero}));
  const auto alt = alternating_inputs(4);
  EXPECT_EQ(alt, (std::vector<Value>{Value::zero, Value::one, Value::zero,
                                     Value::one}));
  Rng rng(5);
  const auto rnd = random_inputs(50, rng);
  EXPECT_EQ(rnd.size(), 50u);
  int count_ones = 0;
  for (const Value v : rnd) {
    count_ones += v == Value::one ? 1 : 0;
  }
  EXPECT_GT(count_ones, 10);
  EXPECT_LT(count_ones, 40);
}

TEST(Scenario, ProtocolKindNames) {
  EXPECT_STREQ(to_string(ProtocolKind::fail_stop), "fail-stop (Fig 1)");
  EXPECT_STREQ(to_string(ProtocolKind::malicious), "malicious (Fig 2)");
  EXPECT_STREQ(to_string(ProtocolKind::majority), "majority variant (S4.1)");
}

}  // namespace
}  // namespace rcp::adversary
