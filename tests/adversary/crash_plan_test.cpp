#include "adversary/crash_plan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "support/probe_process.hpp"

namespace rcp::adversary {
namespace {

TEST(CrashPlan, ManualConstruction) {
  CrashPlan plan;
  plan.add_step_crash(1, 10);
  plan.add_phase_crash(2, 3);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_FALSE(plan.events()[0].by_phase);
  EXPECT_EQ(plan.events()[0].victim, 1u);
  EXPECT_EQ(plan.events()[0].at_step, 10u);
  EXPECT_TRUE(plan.events()[1].by_phase);
  EXPECT_EQ(plan.events()[1].at_phase, 3u);
}

TEST(CrashPlan, RandomVictimsDistinctAndInRange) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const CrashPlan plan = CrashPlan::random(10, 4, 100, rng);
    EXPECT_EQ(plan.size(), 4u);
    std::set<ProcessId> victims;
    for (const auto& e : plan.events()) {
      EXPECT_LT(e.victim, 10u);
      EXPECT_LE(e.at_step, 100u);
      victims.insert(e.victim);
    }
    EXPECT_EQ(victims.size(), 4u);
  }
}

TEST(CrashPlan, RandomPhaseBoundariesWithinRange) {
  Rng rng(2);
  const CrashPlan plan = CrashPlan::random_phase_boundaries(8, 3, 5, rng);
  EXPECT_EQ(plan.size(), 3u);
  for (const auto& e : plan.events()) {
    EXPECT_TRUE(e.by_phase);
    EXPECT_LE(e.at_phase, 5u);
  }
}

TEST(CrashPlan, InitiallyDeadAllAtStepZero) {
  Rng rng(3);
  const CrashPlan plan = CrashPlan::initially_dead(6, 2, rng);
  for (const auto& e : plan.events()) {
    EXPECT_FALSE(e.by_phase);
    EXPECT_EQ(e.at_step, 0u);
  }
}

TEST(CrashPlan, StaggeredOneDeathPerPhase) {
  const CrashPlan plan = CrashPlan::staggered(3);
  ASSERT_EQ(plan.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.events()[i].victim, i);
    EXPECT_EQ(plan.events()[i].at_phase, i + 1);
  }
}

TEST(CrashPlan, TooManyVictimsThrows) {
  Rng rng(4);
  EXPECT_THROW((void)CrashPlan::random(3, 4, 10, rng), PreconditionError);
  EXPECT_THROW((void)CrashPlan::initially_dead(3, 4, rng), PreconditionError);
}

TEST(CrashPlan, ApplyRegistersWithSimulation) {
  CrashPlan plan;
  plan.add_step_crash(0, 0);
  test::ProbeFleet fleet(2);
  sim::Simulation s(sim::SimConfig{.n = 2, .seed = 1},
                    std::move(fleet.processes));
  plan.apply(s);
  s.start();
  EXPECT_FALSE(s.alive(0));
  EXPECT_TRUE(s.alive(1));
}

}  // namespace
}  // namespace rcp::adversary
