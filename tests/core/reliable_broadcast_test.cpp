// Reliable broadcast (extension module): validity, consistency and
// totality, including against a two-faced (equivocating) sender.
#include "core/reliable_broadcast.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace rcp {
namespace {

/// A Byzantine sender that tells ids < n/2 "0" and the rest "1".
class TwoFacedSender final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (ProcessId q = 0; q < ctx.n(); ++q) {
      const Value v = q < ctx.n() / 2 ? Value::zero : Value::one;
      ctx.send(q, core::RbMsg{.kind = core::RbMsg::Kind::initial, .value = v}
                      .encode());
    }
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

struct RbRun {
  std::unique_ptr<sim::Simulation> simulation;
  std::vector<core::ReliableBroadcast*> correct;
};

RbRun make_rb_run(std::uint32_t n, std::uint32_t k, ProcessId sender,
                  Value value, bool byzantine_sender, std::uint64_t seed) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<core::ReliableBroadcast*> correct;
  for (ProcessId p = 0; p < n; ++p) {
    if (byzantine_sender && p == sender) {
      procs.push_back(std::make_unique<TwoFacedSender>());
      continue;
    }
    auto rb = core::ReliableBroadcast::make({n, k}, p, sender, value);
    correct.push_back(rb.get());
    procs.push_back(std::move(rb));
  }
  auto simulation = std::make_unique<sim::Simulation>(
      sim::SimConfig{.n = n, .seed = seed, .max_steps = 200'000},
      std::move(procs));
  if (byzantine_sender) {
    simulation->mark_faulty(sender);
  }
  return RbRun{std::move(simulation), std::move(correct)};
}

TEST(ReliableBroadcast, FactoryValidates) {
  EXPECT_NO_THROW(core::ReliableBroadcast::make({7, 2}, 0, 0, Value::one));
  EXPECT_THROW(core::ReliableBroadcast::make({7, 3}, 0, 0, Value::one),
               PreconditionError);
  EXPECT_THROW(core::ReliableBroadcast::make({7, 2}, 7, 0, Value::one),
               PreconditionError);
}

TEST(ReliableBroadcast, CorrectSenderEveryoneDelivers) {
  for (const Value v : kBothValues) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto run = make_rb_run(7, 2, /*sender=*/3, v, false, seed);
      const auto result = run.simulation->run();
      EXPECT_EQ(result.status, sim::RunStatus::all_decided);
      for (auto* rb : run.correct) {
        EXPECT_EQ(rb->delivered(), v);
      }
    }
  }
}

TEST(ReliableBroadcast, SilentSenderNobodyDelivers) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<core::ReliableBroadcast*> correct;
  const std::uint32_t n = 7;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == 0) {
      procs.push_back(std::make_unique<adversary::SilentByzantine>());
      continue;
    }
    auto rb = core::ReliableBroadcast::make({n, 2}, p, /*sender=*/0);
    correct.push_back(rb.get());
    procs.push_back(std::move(rb));
  }
  sim::Simulation s(sim::SimConfig{.n = n, .seed = 4}, std::move(procs));
  s.mark_faulty(0);
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::quiescent);
  for (auto* rb : correct) {
    EXPECT_FALSE(rb->delivered().has_value());
  }
}

TEST(ReliableBroadcast, TwoFacedSenderCannotSplitDeliveries) {
  // Consistency + totality: across many schedules, either no correct
  // process delivers, or all deliver the same value.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto run = make_rb_run(7, 2, /*sender=*/0, Value::zero, true, seed);
    (void)run.simulation->run();
    std::optional<Value> delivered;
    std::size_t delivered_count = 0;
    for (auto* rb : run.correct) {
      if (rb->delivered().has_value()) {
        ++delivered_count;
        if (delivered.has_value()) {
          EXPECT_EQ(*delivered, *rb->delivered())
              << "two correct processes delivered different values, seed "
              << seed;
        }
        delivered = rb->delivered();
      }
    }
    EXPECT_TRUE(delivered_count == 0 || delivered_count == run.correct.size())
        << "totality violated at seed " << seed << ": " << delivered_count
        << " of " << run.correct.size();
  }
}

TEST(ReliableBroadcast, SmallestByzantineConfiguration) {
  // n = 4, k = 1: the minimum where the bounds bite.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto run = make_rb_run(4, 1, /*sender=*/0, Value::zero, true, seed);
    (void)run.simulation->run();
    std::optional<Value> delivered;
    for (auto* rb : run.correct) {
      if (rb->delivered().has_value()) {
        if (delivered.has_value()) {
          EXPECT_EQ(*delivered, *rb->delivered()) << "seed " << seed;
        }
        delivered = rb->delivered();
      }
    }
  }
}

TEST(ReliableBroadcast, ReadyAmplificationDelivers) {
  // Even if a receiver misses the echo quorum (its echoes are starved), the
  // 2k+1 READY rule pulls it across via amplification. We simulate by
  // running normally — amplification paths are exercised by the random
  // schedule — and assert every correct process delivered.
  auto run = make_rb_run(10, 3, /*sender=*/9, Value::one, false, 77);
  const auto result = run.simulation->run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
  for (auto* rb : run.correct) {
    EXPECT_EQ(rb->delivered(), Value::one);
    EXPECT_TRUE(rb->sent_ready());
  }
}

TEST(RbMsg, RoundTripAndRejection) {
  for (const auto kind : {core::RbMsg::Kind::initial, core::RbMsg::Kind::echo,
                          core::RbMsg::Kind::ready}) {
    const core::RbMsg msg{.kind = kind, .value = Value::one};
    const core::RbMsg back = core::RbMsg::decode(msg.encode());
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.value, Value::one);
  }
  EXPECT_THROW((void)core::RbMsg::decode(Bytes{std::byte{0x01}}), DecodeError);
  Bytes bad = core::RbMsg{.kind = core::RbMsg::Kind::echo, .value = Value::one}
                  .encode();
  bad.back() = std::byte{7};
  EXPECT_THROW((void)core::RbMsg::decode(bad), DecodeError);
}

}  // namespace
}  // namespace rcp
