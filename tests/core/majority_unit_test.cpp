// Message-level unit tests of the Section 4.1 majority variant.
#include <gtest/gtest.h>

#include "core/majority.hpp"
#include "core/messages.hpp"
#include "support/fake_context.hpp"

namespace rcp::core {
namespace {

using test::FakeContext;

// n = 7, k = 2: quorum 5, decide count > 4.5 i.e. 5 of 5.
constexpr ConsensusParams kParams{7, 2};

Bytes msg(Phase t, Value v) {
  return MajorityMsg{.phase = t, .value = v}.encode();
}

TEST(MajorityUnit, StartBroadcastsValue) {
  FakeContext ctx(0, 7);
  auto p = MajorityConsensus::make(kParams, Value::one);
  p->on_start(ctx);
  ASSERT_EQ(ctx.sent.size(), 7u);
  const auto m = MajorityMsg::decode(ctx.sent[0].payload);
  EXPECT_EQ(m.phase, 0u);
  EXPECT_EQ(m.value, Value::one);
}

TEST(MajorityUnit, AdoptsQuorumMajority) {
  FakeContext ctx(0, 7);
  auto p = MajorityConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  for (ProcessId s = 1; s <= 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::one)));
  }
  for (ProcessId s = 4; s <= 5; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::zero)));
  }
  EXPECT_EQ(p->phase(), 1u);
  EXPECT_EQ(p->value(), Value::one);  // 3 vs 2
  EXPECT_FALSE(p->decision().has_value());
}

TEST(MajorityUnit, DecidesOnSupermajority) {
  FakeContext ctx(0, 7);
  auto p = MajorityConsensus::make(kParams, Value::one);
  p->on_start(ctx);
  for (ProcessId s = 1; s <= 5; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::one)));
  }
  EXPECT_EQ(p->decision(), Value::one);
  EXPECT_EQ(ctx.decision, Value::one);
  // Keeps participating: phase 1 broadcast went out after deciding.
  EXPECT_EQ(p->phase(), 1u);
  bool phase1_broadcast = false;
  for (const auto& s : ctx.sent) {
    if (MajorityMsg::decode(s.payload).phase == 1) {
      phase1_broadcast = true;
    }
  }
  EXPECT_TRUE(phase1_broadcast);
}

TEST(MajorityUnit, TieGoesToZero) {
  FakeContext ctx(0, 8);
  auto p = MajorityConsensus::make({8, 2}, Value::one);  // quorum 6
  p->on_start(ctx);
  for (ProcessId s = 1; s <= 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::one)));
  }
  for (ProcessId s = 4; s <= 6; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::zero)));
  }
  EXPECT_EQ(p->value(), Value::zero);
}

TEST(MajorityUnit, FutureRequeuedStaleDropped) {
  FakeContext ctx(0, 7);
  auto p = MajorityConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  const Bytes future = msg(3, Value::one);
  p->on_message(ctx, FakeContext::envelope(1, 0, future));
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].to, 0u);
  EXPECT_EQ(ctx.sent[0].payload, future);
  // Complete phase 0, then feed a stale phase-0 message.
  (void)ctx.take_sent();
  for (ProcessId s = 1; s <= 5; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::zero)));
  }
  ASSERT_EQ(p->phase(), 1u);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(6, 0, msg(0, Value::one)));
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(MajorityUnit, GarbageIgnored) {
  FakeContext ctx(0, 7);
  auto p = MajorityConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(1, 0, Bytes{std::byte{0x42}}));
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_EQ(p->phase(), 0u);
}

TEST(MajorityUnit, DecisionIsSticky) {
  // After deciding 1, later phases cannot re-decide 0 (one-shot).
  FakeContext ctx(0, 7);
  auto p = MajorityConsensus::make(kParams, Value::one);
  p->on_start(ctx);
  for (ProcessId s = 1; s <= 5; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::one)));
  }
  ASSERT_EQ(p->decision(), Value::one);
  // Feed a unanimous-0 phase 1 (can't happen with <= k faults, but the
  // one-shot decision must hold regardless).
  for (ProcessId s = 1; s <= 5; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(1, Value::zero)));
  }
  EXPECT_EQ(p->decision(), Value::one);
  EXPECT_EQ(p->value(), Value::zero);  // working value follows the majority
  EXPECT_EQ(ctx.decide_calls, 1);
}

}  // namespace
}  // namespace rcp::core
