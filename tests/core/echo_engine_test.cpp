#include "core/echo_engine.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace rcp::core {
namespace {

// n = 7, k = 2: echo acceptance threshold = floor((7+2)/2) + 1 = 5.
constexpr ConsensusParams kParams{7, 2};

EchoProtocolMsg initial(ProcessId from, Value v, Phase t) {
  return EchoProtocolMsg{.is_echo = false, .from = from, .value = v, .phase = t};
}

EchoProtocolMsg echo(ProcessId origin, Value v, Phase t) {
  return EchoProtocolMsg{.is_echo = true, .from = origin, .value = v, .phase = t};
}

TEST(EchoEngine, FreshInitialProducesEcho) {
  EchoEngine e(kParams);
  const auto out = e.handle(/*sender=*/3, initial(3, Value::one, 0), 0);
  ASSERT_TRUE(out.echo_to_broadcast.has_value());
  EXPECT_TRUE(out.echo_to_broadcast->is_echo);
  EXPECT_EQ(out.echo_to_broadcast->from, 3u);
  EXPECT_EQ(out.echo_to_broadcast->value, Value::one);
  EXPECT_EQ(out.echo_to_broadcast->phase, 0u);
  EXPECT_FALSE(out.accepted.has_value());
}

TEST(EchoEngine, ForgedInitialDropped) {
  EchoEngine e(kParams);
  // Sender 4 claims to be process 3: authenticated identities reject it.
  const auto out = e.handle(/*sender=*/4, initial(3, Value::one, 0), 0);
  EXPECT_FALSE(out.echo_to_broadcast.has_value());
  EXPECT_FALSE(out.accepted.has_value());
}

TEST(EchoEngine, DuplicateInitialEchoedOnce) {
  EchoEngine e(kParams);
  EXPECT_TRUE(e.handle(3, initial(3, Value::one, 0), 0)
                  .echo_to_broadcast.has_value());
  EXPECT_FALSE(e.handle(3, initial(3, Value::one, 0), 0)
                   .echo_to_broadcast.has_value());
  // Same origin, later phase: fresh again.
  EXPECT_TRUE(e.handle(3, initial(3, Value::zero, 1), 0)
                  .echo_to_broadcast.has_value());
}

TEST(EchoEngine, DuplicateInitialWithDifferentValueStillDropped) {
  EchoEngine e(kParams);
  (void)e.handle(3, initial(3, Value::one, 0), 0);
  // An equivocating origin cannot get a second echo for the same phase.
  EXPECT_FALSE(e.handle(3, initial(3, Value::zero, 0), 0)
                   .echo_to_broadcast.has_value());
}

TEST(EchoEngine, AcceptanceAtExactThresholdOnce) {
  EchoEngine e(kParams);
  for (ProcessId echoer = 0; echoer < 4; ++echoer) {
    const auto out = e.handle(echoer, echo(6, Value::one, 0), 0);
    EXPECT_FALSE(out.accepted.has_value()) << "echo " << echoer;
  }
  const auto fifth = e.handle(4, echo(6, Value::one, 0), 0);
  ASSERT_TRUE(fifth.accepted.has_value());
  EXPECT_EQ(fifth.accepted->origin, 6u);
  EXPECT_EQ(fifth.accepted->value, Value::one);
  // A sixth echo does not re-accept.
  EXPECT_FALSE(e.handle(5, echo(6, Value::one, 0), 0).accepted.has_value());
  EXPECT_EQ(e.echo_count(6, Value::one), 6u);
}

TEST(EchoEngine, EchoDedupPerEchoerOriginPhase) {
  EchoEngine e(kParams);
  (void)e.handle(0, echo(6, Value::one, 0), 0);
  // Same echoer repeating (even with a different value!) is ignored.
  (void)e.handle(0, echo(6, Value::one, 0), 0);
  (void)e.handle(0, echo(6, Value::zero, 0), 0);
  EXPECT_EQ(e.echo_count(6, Value::one), 1u);
  EXPECT_EQ(e.echo_count(6, Value::zero), 0u);
  // Different origin from the same echoer is independent.
  (void)e.handle(0, echo(5, Value::one, 0), 0);
  EXPECT_EQ(e.echo_count(5, Value::one), 1u);
}

TEST(EchoEngine, AtMostOneValueAcceptedPerOrigin) {
  // 7 echoers split 4/3 between the values: neither reaches threshold 5,
  // so nothing is accepted — acceptance for both values would need 10 > 7
  // echoers.
  EchoEngine e(kParams);
  for (ProcessId echoer = 0; echoer < 4; ++echoer) {
    EXPECT_FALSE(e.handle(echoer, echo(6, Value::one, 0), 0)
                     .accepted.has_value());
  }
  for (ProcessId echoer = 4; echoer < 7; ++echoer) {
    EXPECT_FALSE(e.handle(echoer, echo(6, Value::zero, 0), 0)
                     .accepted.has_value());
  }
}

TEST(EchoEngine, StaleEchoDropped) {
  EchoEngine e(kParams);
  const auto out = e.handle(0, echo(6, Value::one, 0), /*current_phase=*/2);
  EXPECT_FALSE(out.accepted.has_value());
  // It was consumed (deduped) but never counted.
  EXPECT_EQ(e.echo_count(6, Value::one), 0u);
  EXPECT_EQ(e.deferred_count(), 0u);
}

TEST(EchoEngine, FutureEchoDeferredAndReplayed) {
  EchoEngine e(kParams);
  // Five echoers for phase 1 while we are still in phase 0.
  for (ProcessId echoer = 0; echoer < 5; ++echoer) {
    const auto out = e.handle(echoer, echo(6, Value::one, 1), 0);
    EXPECT_FALSE(out.accepted.has_value());
  }
  EXPECT_EQ(e.deferred_count(), 5u);
  const auto accepts = e.advance(1);
  ASSERT_EQ(accepts.size(), 1u);
  EXPECT_EQ(accepts[0].origin, 6u);
  EXPECT_EQ(accepts[0].value, Value::one);
  EXPECT_EQ(e.deferred_count(), 0u);
}

TEST(EchoEngine, AdvanceClearsCurrentTallies) {
  EchoEngine e(kParams);
  (void)e.handle(0, echo(6, Value::one, 0), 0);
  EXPECT_EQ(e.echo_count(6, Value::one), 1u);
  (void)e.advance(1);
  EXPECT_EQ(e.echo_count(6, Value::one), 0u);
}

TEST(EchoEngine, AdvanceSkipsOverDeferredPhases) {
  EchoEngine e(kParams);
  for (ProcessId echoer = 0; echoer < 5; ++echoer) {
    (void)e.handle(echoer, echo(2, Value::zero, 1), 0);
  }
  // Jumping straight to phase 2 drops the phase-1 deferrals as stale.
  const auto accepts = e.advance(2);
  EXPECT_TRUE(accepts.empty());
  EXPECT_EQ(e.deferred_count(), 0u);
}

TEST(EchoEngine, DeferredFarFutureKept) {
  EchoEngine e(kParams);
  (void)e.handle(0, echo(2, Value::zero, 5), 0);
  (void)e.advance(1);
  EXPECT_EQ(e.deferred_count(), 1u);
  (void)e.advance(5);
  EXPECT_EQ(e.deferred_count(), 0u);  // replayed (below threshold, no accept)
}

TEST(EchoEngine, DeferredEchoDedupSurvivesReplay) {
  EchoEngine e(kParams);
  // Echoer 0 echoes for phase 1 twice; only one copy must count.
  (void)e.handle(0, echo(6, Value::one, 1), 0);
  (void)e.handle(0, echo(6, Value::one, 1), 0);
  (void)e.advance(1);
  EXPECT_EQ(e.echo_count(6, Value::one), 1u);
}

TEST(EchoEngine, StaleEchoesDoNotGrowDedupMemory) {
  EchoEngine e(kParams);
  // Spam 100 distinct-looking stale echoes: none may be recorded.
  for (int i = 0; i < 100; ++i) {
    (void)e.handle(static_cast<ProcessId>(i % 7),
                   echo(static_cast<ProcessId>(i % 5),
                        i % 2 == 0 ? Value::zero : Value::one, 0),
                   /*current_phase=*/5);
  }
  EXPECT_EQ(e.echo_dedup_size(), 0u);
}

TEST(EchoEngine, AdvanceReclaimsPastPhaseDedup) {
  EchoEngine e(kParams);
  for (ProcessId echoer = 0; echoer < 4; ++echoer) {
    (void)e.handle(echoer, echo(6, Value::one, 0), 0);
  }
  EXPECT_EQ(e.echo_dedup_size(), 4u);
  (void)e.advance(1);
  EXPECT_EQ(e.echo_dedup_size(), 0u);
}

TEST(EchoEngine, DedupForCurrentAndFuturePhasesSurvivesAdvance) {
  EchoEngine e(kParams);
  (void)e.handle(0, echo(6, Value::one, 1), 0);  // future: deferred + deduped
  (void)e.handle(1, echo(6, Value::one, 2), 0);  // further future
  EXPECT_EQ(e.echo_dedup_size(), 2u);
  (void)e.advance(1);
  EXPECT_EQ(e.echo_dedup_size(), 2u);  // phase-1 and phase-2 entries remain
  (void)e.advance(2);
  EXPECT_EQ(e.echo_dedup_size(), 1u);
}

TEST(EchoEngine, DedupStateBoundedAcrossLongMultiPhaseRun) {
  // Satellite of the flat-quorum rewrite: over a long run with full echo
  // traffic every phase, advance() must keep reclaiming past-phase dedup
  // state — the live entry count never exceeds one phase's worth of
  // traffic, and the retained memory stops growing once warm.
  constexpr ConsensusParams kP{7, 2};
  EchoEngine e(kP);
  const std::size_t per_phase =
      static_cast<std::size_t>(kP.n) * kP.n;  // one echo per (echoer, origin)
  std::size_t warm_memory = 0;
  for (Phase t = 0; t < 1000; ++t) {
    for (ProcessId origin = 0; origin < kP.n; ++origin) {
      for (ProcessId echoer = 0; echoer < kP.n; ++echoer) {
        (void)e.handle(echoer, echo(origin, Value::one, t), t);
      }
    }
    EXPECT_LE(e.echo_dedup_size(), per_phase) << "phase " << t;
    (void)e.advance(t + 1);
    EXPECT_EQ(e.echo_dedup_size(), 0u) << "phase " << t;
    if (t == 10) {
      warm_memory = e.memory_bytes();
    }
    if (t > 10) {
      EXPECT_EQ(e.memory_bytes(), warm_memory)
          << "flat tables must not grow after warm-up (phase " << t << ")";
    }
  }
}

TEST(EchoEngine, DeferredEchoesReplayInOriginalArrivalOrder) {
  // Two origins' quorums complete in a deliberately interleaved arrival
  // order: origin 2's fifth echo arrives before origin 1's fifth, so the
  // replay at advance() must accept origin 2 first — replay follows
  // arrival order, not origin order.
  constexpr ConsensusParams kP{7, 2};  // threshold 5
  EchoEngine e(kP);
  for (ProcessId echoer = 0; echoer < 4; ++echoer) {
    (void)e.handle(echoer, echo(1, Value::one, 1), 0);  // origin 1: 4 echoes
  }
  for (ProcessId echoer = 0; echoer < 5; ++echoer) {
    (void)e.handle(echoer, echo(2, Value::zero, 1), 0);  // origin 2: quorum
  }
  (void)e.handle(4, echo(1, Value::one, 1), 0);  // origin 1 completes last
  EXPECT_EQ(e.deferred_count(), 10u);
  const auto accepts = e.advance(1);
  ASSERT_EQ(accepts.size(), 2u);
  EXPECT_EQ(accepts[0].origin, 2u);
  EXPECT_EQ(accepts[0].value, Value::zero);
  EXPECT_EQ(accepts[1].origin, 1u);
  EXPECT_EQ(accepts[1].value, Value::one);
}

TEST(EchoEngine, FarFutureDeferralsReplayInArrivalOrderAfterPhaseJump) {
  // Same property across the phase-window boundary: phase 100 is far
  // outside the dedup bitset window at recording time, so these entries
  // ride the overflow ledger and migrate into the window as the engine
  // advances — order and dedup must both survive the trip.
  constexpr ConsensusParams kP{7, 2};
  EchoEngine e(kP);
  constexpr Phase kFar = 100;
  for (ProcessId echoer = 0; echoer < 5; ++echoer) {
    (void)e.handle(echoer, echo(6, Value::one, kFar), 0);
    (void)e.handle(echoer, echo(6, Value::one, kFar), 0);  // duplicate
  }
  for (ProcessId echoer = 0; echoer < 5; ++echoer) {
    (void)e.handle(echoer, echo(5, Value::zero, kFar), 0);
  }
  EXPECT_EQ(e.deferred_count(), 10u);
  EXPECT_EQ(e.echo_dedup_size(), 10u);
  // Walk through intermediate phases; deferred and dedup state must ride
  // along untouched.
  for (Phase t = 1; t < kFar; t += 7) {
    EXPECT_TRUE(e.advance(t).empty());
    EXPECT_EQ(e.deferred_count(), 10u);
    EXPECT_EQ(e.echo_dedup_size(), 10u);
  }
  const auto accepts = e.advance(kFar);
  ASSERT_EQ(accepts.size(), 2u);
  EXPECT_EQ(accepts[0].origin, 6u);  // quorum completed first in arrival order
  EXPECT_EQ(accepts[1].origin, 5u);
  EXPECT_EQ(e.deferred_count(), 0u);
  // The duplicates never counted: exactly the quorum, nothing more.
  EXPECT_EQ(e.echo_count(6, Value::one), 5u);
}

TEST(EchoEngine, FuzzNeverAcceptsTwoValuesForOneOriginPhase) {
  // Property: across arbitrary (including adversarial) echo traffic, an
  // origin's state is accepted at most once per phase, and never for both
  // values — the heart of the Theorem 4 consistency argument.
  Rng rng(20240707);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.below(10));
    const std::uint32_t k = static_cast<std::uint32_t>(rng.below((n - 1) / 3 + 1));
    EchoEngine engine({n, k});
    Phase current = 0;
    std::set<std::pair<ProcessId, Phase>> accepted_keys;
    for (int event = 0; event < 400; ++event) {
      if (rng.bernoulli(0.05)) {
        ++current;
        for (const auto& accept : engine.advance(current)) {
          const auto key = std::make_pair(accept.origin, current);
          EXPECT_TRUE(accepted_keys.emplace(key).second)
              << "origin " << accept.origin << " accepted twice in phase "
              << current;
        }
        continue;
      }
      const auto sender = static_cast<ProcessId>(rng.below(n));
      const auto origin = static_cast<ProcessId>(rng.below(n));
      const Phase phase = current + rng.below(3);
      const Value value = rng.bernoulli(0.5) ? Value::one : Value::zero;
      const bool is_echo = rng.bernoulli(0.8);
      const auto out = engine.handle(
          sender,
          EchoProtocolMsg{.is_echo = is_echo,
                          .from = is_echo ? origin : sender,
                          .value = value,
                          .phase = phase},
          current);
      if (out.accepted.has_value()) {
        const auto key = std::make_pair(out.accepted->origin, current);
        EXPECT_TRUE(accepted_keys.emplace(key).second)
            << "origin " << out.accepted->origin << " accepted twice in phase "
            << current;
      }
    }
  }
}

TEST(EchoEngine, FuzzAcceptanceRequiresQuorumOfDistinctEchoers) {
  // With fewer distinct echoers than the threshold, nothing is ever
  // accepted no matter how the traffic is shuffled or repeated.
  Rng rng(99);
  const ConsensusParams params{10, 3};  // threshold 7
  for (int trial = 0; trial < 100; ++trial) {
    EchoEngine engine(params);
    for (int event = 0; event < 300; ++event) {
      const auto sender = static_cast<ProcessId>(rng.below(6));  // only 6
      const Value value = rng.bernoulli(0.5) ? Value::one : Value::zero;
      const auto out = engine.handle(
          sender,
          EchoProtocolMsg{
              .is_echo = true, .from = 2, .value = value, .phase = 0},
          0);
      EXPECT_FALSE(out.accepted.has_value());
    }
  }
}

}  // namespace
}  // namespace rcp::core
