// The word-parallel kernel layer (core/bitops.hpp): every dispatched span
// entry point must agree bit for bit with the portable scalar reference
// kernels — on every span length, crossing both the small-span inline
// threshold (kInlineWords) and the SIMD block width — and the AVX2 backend
// (when compiled in and selected) is validated against scalar on
// randomized buffers. This equivalence is what lets RCP_ENABLE_AVX2=ON/OFF
// share one set of trace-digest goldens.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/bitops.hpp"

namespace rcp::core::bitops {
namespace {

/// Span lengths covering: empty, sub-word, the inline/dispatch threshold
/// and its neighbours, the AVX2 block width (4 words) and its remainders,
/// and bulk sizes with every tail length.
const std::vector<std::size_t> kSpanLengths = {0,  1,  2,  3,  4,  5,   7,
                                               8,  9,  11, 12, 15, 16,  17,
                                               31, 64, 65, 66, 67, 100, 257};

std::vector<std::uint64_t> random_words(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) {
    w = rng.next();
  }
  return words;
}

TEST(Bitops, PopcountMatchesBitByBitCount) {
  for (const std::size_t len : kSpanLengths) {
    const auto words = random_words(len, 0x1001 + len);
    std::size_t expected = 0;
    for (const std::uint64_t w : words) {
      for (std::size_t b = 0; b < 64; ++b) {
        expected += (w >> b) & 1;
      }
    }
    EXPECT_EQ(popcount_words(std::span<const std::uint64_t>(words)), expected)
        << "len=" << len;
  }
}

TEST(Bitops, FillThenPopcount) {
  for (const std::size_t len : kSpanLengths) {
    std::vector<std::uint64_t> words(len, 0xdeadbeefULL);
    fill_words(std::span<std::uint64_t>(words), ~0ULL);
    EXPECT_EQ(popcount_words(std::span<const std::uint64_t>(words)), len * 64);
    fill_words(std::span<std::uint64_t>(words), 0);
    EXPECT_EQ(popcount_words(std::span<const std::uint64_t>(words)), 0u);
  }
}

TEST(Bitops, CopyRoundTrip) {
  for (const std::size_t len : kSpanLengths) {
    const auto src = random_words(len, 0x2002 + len);
    std::vector<std::uint64_t> dst(len, 0x5555555555555555ULL);
    copy_words(std::span<std::uint64_t>(dst),
               std::span<const std::uint64_t>(src));
    EXPECT_EQ(dst, src) << "len=" << len;
  }
}

TEST(Bitops, OrAccumulates) {
  for (const std::size_t len : kSpanLengths) {
    const auto a = random_words(len, 0x3003 + len);
    const auto b = random_words(len, 0x4004 + len);
    std::vector<std::uint64_t> dst = a;
    or_words(std::span<std::uint64_t>(dst), std::span<const std::uint64_t>(b));
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(dst[i], a[i] | b[i]) << "len=" << len << " word=" << i;
    }
  }
}

TEST(Bitops, ForEachSetBitEnumeratesAscending) {
  for (const std::size_t len : kSpanLengths) {
    const auto words = random_words(len, 0x5005 + len);
    std::vector<std::size_t> seen;
    for_each_set_bit(std::span<const std::uint64_t>(words),
                     [&seen](std::size_t bit) { seen.push_back(bit); });
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < len; ++i) {
      for (std::size_t b = 0; b < 64; ++b) {
        if ((words[i] >> b) & 1) {
          expected.push_back(i * 64 + b);
        }
      }
    }
    EXPECT_EQ(seen, expected) << "len=" << len;
  }
}

TEST(Bitops, BackendNameIsStable) {
  const Backend backend = active_backend();
  EXPECT_TRUE(backend == Backend::scalar || backend == Backend::avx2);
  EXPECT_STREQ(backend_name(Backend::scalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::avx2), "avx2");
}

TEST(Bitops, AlignedVectorStartsOnCacheLine) {
  AlignedVector<std::uint32_t> lanes(1000, 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lanes.data()) % kCacheLineBytes,
            0u);
  AlignedVector<std::uint64_t> words(100, 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words.data()) % kCacheLineBytes,
            0u);
}

TEST(Bitops, PaddedToCacheLineRoundsUpToWholeLines) {
  EXPECT_EQ(padded_to_cache_line<std::uint32_t>(1), 16u);
  EXPECT_EQ(padded_to_cache_line<std::uint32_t>(16), 16u);
  EXPECT_EQ(padded_to_cache_line<std::uint32_t>(17), 32u);
  EXPECT_EQ(padded_to_cache_line<std::uint32_t>(301), 304u);
  EXPECT_EQ(padded_to_cache_line<std::uint64_t>(9), 16u);
}

// ---------------------------------------------------------------------------
// Scalar-vs-AVX2 equivalence: runs only when the dispatch table actually
// resolved to the AVX2 backend; otherwise (compiled out via
// RCP_ENABLE_AVX2=OFF, or an x86 host without AVX2) the suite skips
// cleanly — the dispatched entry points *are* the scalar kernels then, and
// the tests above already cover them.

class BitopsAvx2Equivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    if (active_backend() != Backend::avx2) {
      GTEST_SKIP() << "AVX2 backend compiled out or unsupported on this CPU";
    }
  }
};

TEST_F(BitopsAvx2Equivalence, PopcountMatchesScalar) {
  for (const std::size_t len : kSpanLengths) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto words = random_words(len, seed * 0x9e3779b9ULL + len);
      EXPECT_EQ(popcount_words(std::span<const std::uint64_t>(words)),
                scalar::popcount_words(words.data(), words.size()))
          << "len=" << len << " seed=" << seed;
    }
  }
}

TEST_F(BitopsAvx2Equivalence, FillMatchesScalar) {
  for (const std::size_t len : kSpanLengths) {
    std::vector<std::uint64_t> via_dispatch(len, 0);
    std::vector<std::uint64_t> via_scalar(len, 0);
    const std::uint64_t pattern = 0xa5a5a5a5a5a5a5a5ULL;
    fill_words(std::span<std::uint64_t>(via_dispatch), pattern);
    scalar::fill_words(via_scalar.data(), via_scalar.size(), pattern);
    EXPECT_EQ(via_dispatch, via_scalar) << "len=" << len;
  }
}

TEST_F(BitopsAvx2Equivalence, CopyMatchesScalar) {
  for (const std::size_t len : kSpanLengths) {
    const auto src = random_words(len, 0x6006 + len);
    std::vector<std::uint64_t> via_dispatch(len, 0);
    std::vector<std::uint64_t> via_scalar(len, 0);
    copy_words(std::span<std::uint64_t>(via_dispatch),
               std::span<const std::uint64_t>(src));
    scalar::copy_words(via_scalar.data(), src.data(), src.size());
    EXPECT_EQ(via_dispatch, via_scalar) << "len=" << len;
  }
}

TEST_F(BitopsAvx2Equivalence, OrMatchesScalar) {
  for (const std::size_t len : kSpanLengths) {
    const auto base = random_words(len, 0x7007 + len);
    const auto mask = random_words(len, 0x8008 + len);
    std::vector<std::uint64_t> via_dispatch = base;
    std::vector<std::uint64_t> via_scalar = base;
    or_words(std::span<std::uint64_t>(via_dispatch),
             std::span<const std::uint64_t>(mask));
    scalar::or_words(via_scalar.data(), mask.data(), mask.size());
    EXPECT_EQ(via_dispatch, via_scalar) << "len=" << len;
  }
}

}  // namespace
}  // namespace rcp::core::bitops
