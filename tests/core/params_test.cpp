#include "core/params.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::core {
namespace {

TEST(Params, MaxResilienceFormulas) {
  // floor((n-1)/2) for fail-stop, floor((n-1)/3) for malicious.
  EXPECT_EQ(max_resilience(FaultModel::fail_stop, 1), 0u);
  EXPECT_EQ(max_resilience(FaultModel::fail_stop, 2), 0u);
  EXPECT_EQ(max_resilience(FaultModel::fail_stop, 3), 1u);
  EXPECT_EQ(max_resilience(FaultModel::fail_stop, 7), 3u);
  EXPECT_EQ(max_resilience(FaultModel::fail_stop, 8), 3u);
  EXPECT_EQ(max_resilience(FaultModel::fail_stop, 9), 4u);

  EXPECT_EQ(max_resilience(FaultModel::malicious, 3), 0u);
  EXPECT_EQ(max_resilience(FaultModel::malicious, 4), 1u);
  EXPECT_EQ(max_resilience(FaultModel::malicious, 6), 1u);
  EXPECT_EQ(max_resilience(FaultModel::malicious, 7), 2u);
  EXPECT_EQ(max_resilience(FaultModel::malicious, 10), 3u);
}

TEST(Params, ValidateAcceptsBound) {
  for (std::uint32_t n = 1; n <= 30; ++n) {
    for (const auto model : {FaultModel::fail_stop, FaultModel::malicious}) {
      const std::uint32_t bound = max_resilience(model, n);
      EXPECT_NO_THROW((ConsensusParams{n, bound}.validate(model)));
      EXPECT_THROW((ConsensusParams{n, bound + 1}.validate(model)),
                   PreconditionError);
    }
  }
}

TEST(Params, ValidateRejectsEmptySystem) {
  EXPECT_THROW((ConsensusParams{0, 0}.validate(FaultModel::fail_stop)),
               PreconditionError);
}

TEST(Params, WaitQuorum) {
  EXPECT_EQ((ConsensusParams{7, 3}.wait_quorum()), 4u);
  EXPECT_EQ((ConsensusParams{10, 3}.wait_quorum()), 7u);
}

TEST(Params, WitnessCardinalityIsStrictMajority) {
  const ConsensusParams p{7, 3};
  // > n/2 = 3.5 means >= 4.
  EXPECT_FALSE(p.is_witness_cardinality(3));
  EXPECT_TRUE(p.is_witness_cardinality(4));
  const ConsensusParams even{8, 3};
  // > 4 means >= 5.
  EXPECT_FALSE(even.is_witness_cardinality(4));
  EXPECT_TRUE(even.is_witness_cardinality(5));
}

TEST(Params, WitnessesDecideAboveK) {
  const ConsensusParams p{9, 4};
  EXPECT_FALSE(p.witnesses_decide(4));
  EXPECT_TRUE(p.witnesses_decide(5));
}

TEST(Params, EchoAcceptanceThresholdIsSmallestStrictMajorityOfNPlusK) {
  // n + k odd: > (n+k)/2 real means >= (n+k+1)/2.
  const ConsensusParams odd{7, 2};  // n+k = 9 -> threshold 5
  EXPECT_EQ(odd.echo_acceptance_threshold(), 5u);
  // n + k even: > (n+k)/2 means >= (n+k)/2 + 1.
  const ConsensusParams even{8, 2};  // n+k = 10 -> threshold 6
  EXPECT_EQ(even.echo_acceptance_threshold(), 6u);
}

TEST(Params, EchoThresholdMatchesStrictComparison) {
  for (std::uint32_t n = 4; n <= 40; ++n) {
    for (std::uint32_t k = 0; k <= (n - 1) / 3; ++k) {
      const ConsensusParams p{n, k};
      const std::uint32_t t = p.echo_acceptance_threshold();
      // t is the smallest count with 2*count > n+k.
      EXPECT_GT(2 * t, n + k);
      EXPECT_LE(2 * (t - 1), n + k);
    }
  }
}

TEST(Params, AcceptedCountDecides) {
  const ConsensusParams p{7, 2};  // decide when 2*count > 9, i.e. count >= 5
  EXPECT_FALSE(p.accepted_count_decides(4));
  EXPECT_TRUE(p.accepted_count_decides(5));
}

TEST(Params, FaultModelNames) {
  EXPECT_STREQ(to_string(FaultModel::fail_stop), "fail-stop");
  EXPECT_STREQ(to_string(FaultModel::malicious), "malicious");
}

}  // namespace
}  // namespace rcp::core
