// The allocation contract of the Byzantine echo path (docs/PERF.md "Quorum
// accounting"): once warm, EchoEngine::handle()/advance() and a
// ReliableBroadcast message perform zero heap allocations, and a running
// MaliciousConsensus simulation steps allocation-free. The covered source
// files are listed under [allocation] in tools/lint_rules.toml, so any new
// allocation fails the build (rcp-lint) *and* this counter.
//
// The binary-wide operator new override counts every allocation; each test
// snapshots before/after deltas. (Same instrument as
// tests/sim/allocation_test.cpp, which lives in a different test binary.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "adversary/scenario.hpp"
#include "common/payload.hpp"
#include "core/echo_engine.hpp"
#include "core/malicious.hpp"
#include "core/messages.hpp"
#include "core/reliable_broadcast.hpp"
#include "sim/simulation.hpp"
#include "support/fake_context.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rcp {
namespace {

core::EchoProtocolMsg initial(ProcessId from, Value v, Phase t) {
  return core::EchoProtocolMsg{
      .is_echo = false, .from = from, .value = v, .phase = t};
}

core::EchoProtocolMsg echo(ProcessId origin, Value v, Phase t) {
  return core::EchoProtocolMsg{
      .is_echo = true, .from = origin, .value = v, .phase = t};
}

/// One full phase of traffic: every origin's initial, a full echo matrix
/// (current phase), plus one deferred echo per origin for the next phase,
/// then the phase advance with its replay.
void drive_phase(core::EchoEngine& e, std::uint32_t n, Phase t) {
  for (ProcessId origin = 0; origin < n; ++origin) {
    (void)e.handle(origin, initial(origin, Value::one, t), t);
    for (ProcessId echoer = 0; echoer < n; ++echoer) {
      (void)e.handle(echoer, echo(origin, Value::one, t), t);
      (void)e.handle(echoer, echo(origin, Value::zero, t + 1), t);  // deferred
    }
  }
  (void)e.advance(t + 1);
}

TEST(EchoAllocation, EchoEngineSteadyStateIsAllocationFree) {
  constexpr std::uint32_t kN = 31;
  core::EchoEngine e(core::ConsensusParams{kN, 10});
  Phase t = 0;
  for (; t < 4; ++t) {
    drive_phase(e, kN, t);  // warm: rings and replay buffer reach capacity
  }
  const std::uint64_t before = g_allocations.load();
  for (; t < 40; ++t) {
    drive_phase(e, kN, t);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "warm handle()/advance() must not touch the heap";
}

TEST(EchoAllocation, ReliableBroadcastMessageHandlingIsAllocationFree) {
  constexpr std::uint32_t kN = 31;
  constexpr std::uint32_t kK = 3;
  test::FakeContext ctx(/*self=*/1, kN);
  auto rb = core::ReliableBroadcast::make({kN, kK}, 1, /*sender=*/0);
  // The test harness's outbox is the only allocating container in the loop;
  // give it its capacity up front so the measured path is pure protocol.
  ctx.sent.reserve(8 * kN);
  const std::uint64_t before = g_allocations.load();
  // Full happy path: initial -> echo quorum -> ready amplification ->
  // delivery. Every insert lands in a flat ProcessSet; every payload fits
  // the inline Bytes capacity.
  rb->on_message(ctx, test::FakeContext::envelope(
                          0, 1,
                          core::RbMsg{.kind = core::RbMsg::Kind::initial,
                                      .value = Value::one}
                              .encode()));
  for (ProcessId p = 0; p < kN; ++p) {
    rb->on_message(ctx, test::FakeContext::envelope(
                            p, 1,
                            core::RbMsg{.kind = core::RbMsg::Kind::echo,
                                        .value = Value::one}
                                .encode()));
    rb->on_message(ctx, test::FakeContext::envelope(
                            p, 1,
                            core::RbMsg{.kind = core::RbMsg::Kind::ready,
                                        .value = Value::one}
                                .encode()));
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "reliable-broadcast message handling must not touch the heap";
  EXPECT_EQ(rb->delivered(), Value::one);
}

TEST(EchoAllocation, MaliciousConsensusRunAllocatesOnlyCapacityGrowth) {
  // Whole-protocol check on the trace-digest golden scenario: every
  // delivered message runs the full echo path (decode, EchoEngine::handle,
  // broadcast fan-out), so per-message allocation anywhere in it would cost
  // thousands of allocations over the run. The only heap traffic allowed
  // is container capacity growth toward the run's high-water marks — a
  // small constant — and protocol payloads must never spill out of the
  // inline Bytes capacity.
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = adversary::alternating_inputs(7);
  s.byzantine_ids = {6};
  s.byzantine_kind = adversary::ByzantineKind::equivocator;
  s.seed = 2026;
  s.max_steps = 500000;
  auto sim = adversary::build(s);
  sim->start();
  const std::uint64_t before = g_allocations.load();
  const std::uint64_t payload_before = Payload::heap_allocation_count();
  const auto r = sim->run();
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_GT(sim->metrics().messages_delivered, 1000u);
  EXPECT_EQ(Payload::heap_allocation_count() - payload_before, 0u)
      << "protocol messages must stay inline";
#ifdef NDEBUG
  // Measured: 47 capacity-growth allocations for 1348 delivered messages.
  // The bound leaves headroom for stdlib growth-policy differences while
  // still catching any per-message allocation (which would add 1000+).
  EXPECT_LE(g_allocations.load() - before, 200u)
      << "echo path must not allocate per message";
#else
  // Debug builds run the simulator's O(n) incremental-state cross-check
  // each step, which allocates scratch; the contract is enforced in
  // release builds (the tier-1 configuration).
  (void)before;
#endif
}

}  // namespace
}  // namespace rcp
