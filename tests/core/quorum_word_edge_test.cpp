// Word-boundary edges of the quorum primitives: n one below, at, and one
// above the 64-bit word boundaries (one-word and eight-word sets). Every
// bulk operation in core/quorum.hpp now runs on the word-parallel kernels,
// so these sizes are exactly where a words-per-row or tail-handling bug
// would land. Also pins the layout guards: BitRows::copy_rows_from rejects
// mismatched geometry outright, and ProcessSet::add rejects
// out-of-capacity ids in debug builds.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "core/quorum.hpp"

namespace rcp::core {
namespace {

/// One below, at, and above the one-word and eight-word bit boundaries.
const std::vector<std::uint32_t> kBoundaryN = {63, 64, 65, 511, 512, 513};

TEST(QuorumWordEdge, ProcessSetRoundTripAtWordBoundaries) {
  for (const std::uint32_t n : kBoundaryN) {
    ProcessSet s(n);
    for (ProcessId id = 0; id < n; ++id) {
      EXPECT_FALSE(s.contains(id)) << "n=" << n << " id=" << id;
      EXPECT_TRUE(s.add(id)) << "n=" << n << " id=" << id;
      EXPECT_FALSE(s.add(id)) << "n=" << n << " id=" << id;  // duplicate
      EXPECT_TRUE(s.contains(id)) << "n=" << n << " id=" << id;
      EXPECT_EQ(s.size(), id + 1) << "n=" << n;
    }
    s.clear();
    EXPECT_EQ(s.size(), 0u) << "n=" << n;
    for (ProcessId id = 0; id < n; ++id) {
      EXPECT_FALSE(s.contains(id)) << "n=" << n << " id=" << id;
    }
    // Reusable after the kernel-backed clear.
    EXPECT_TRUE(s.add(n - 1)) << "n=" << n;
    EXPECT_EQ(s.size(), 1u) << "n=" << n;
  }
}

TEST(QuorumWordEdge, ProcessSetMergeUnionsAndRecounts) {
  for (const std::uint32_t n : kBoundaryN) {
    ProcessSet even(n);
    ProcessSet odd(n);
    for (ProcessId id = 0; id < n; ++id) {
      (void)(id % 2 == 0 ? even.add(id) : odd.add(id));
    }
    // Overlap: the last id in both, so the union is not just a sum.
    (void)even.add(n - 1);
    (void)odd.add(n - 1);
    even.merge(odd);
    EXPECT_EQ(even.size(), n) << "n=" << n;
    for (ProcessId id = 0; id < n; ++id) {
      EXPECT_TRUE(even.contains(id)) << "n=" << n << " id=" << id;
    }
  }
}

TEST(QuorumWordEdge, ProcessSetForEachEnumeratesMembersAscending) {
  for (const std::uint32_t n : kBoundaryN) {
    ProcessSet s(n);
    std::vector<ProcessId> expected;
    for (ProcessId id = 0; id < n; id += 7) {
      (void)s.add(id);
      expected.push_back(id);
    }
    std::vector<ProcessId> seen;
    s.for_each([&seen](ProcessId id) { seen.push_back(id); });
    EXPECT_EQ(seen, expected) << "n=" << n;
  }
}

TEST(QuorumWordEdge, BitRowsRoundTripAtWordBoundaries) {
  for (const std::uint32_t n : kBoundaryN) {
    BitRows rows(3, n);
    EXPECT_EQ(rows.words_per_row(), (n + 63) / 64) << "n=" << n;
    // Fill row 1 completely; rows 0 and 2 stay empty.
    for (std::uint32_t bit = 0; bit < n; ++bit) {
      EXPECT_TRUE(rows.test_and_set(1, bit)) << "n=" << n << " bit=" << bit;
      EXPECT_FALSE(rows.test_and_set(1, bit)) << "n=" << n << " bit=" << bit;
    }
    EXPECT_EQ(rows.popcount_all(), n) << "n=" << n;
    EXPECT_EQ(rows.popcount_rows(0, 1), 0u) << "n=" << n;
    EXPECT_EQ(rows.popcount_rows(1, 1), n) << "n=" << n;
    EXPECT_EQ(rows.popcount_rows(2, 1), 0u) << "n=" << n;
    // Neighbour isolation: the row fill must not bleed across the row
    // boundary words.
    EXPECT_FALSE(rows.test(0, n - 1)) << "n=" << n;
    EXPECT_FALSE(rows.test(2, 0)) << "n=" << n;
    // clear_rows reclaims exactly row 1.
    (void)rows.test_and_set(0, 0);
    (void)rows.test_and_set(2, n - 1);
    rows.clear_rows(1, 1);
    EXPECT_EQ(rows.popcount_rows(1, 1), 0u) << "n=" << n;
    EXPECT_TRUE(rows.test(0, 0)) << "n=" << n;
    EXPECT_TRUE(rows.test(2, n - 1)) << "n=" << n;
  }
}

TEST(QuorumWordEdge, BitRowsCopyRoundTripsAcrossGrowth) {
  for (const std::uint32_t n : kBoundaryN) {
    BitRows src(2, n);
    (void)src.test_and_set(0, 0);
    (void)src.test_and_set(0, n - 1);
    (void)src.test_and_set(1, n / 2);
    BitRows bigger(4, n);
    bigger.copy_rows_from(src, 2);
    EXPECT_TRUE(bigger.test(0, 0)) << "n=" << n;
    EXPECT_TRUE(bigger.test(0, n - 1)) << "n=" << n;
    EXPECT_TRUE(bigger.test(1, n / 2)) << "n=" << n;
    EXPECT_EQ(bigger.popcount_all(), 3u) << "n=" << n;
    EXPECT_EQ(bigger.popcount_rows(2, 2), 0u) << "n=" << n;
  }
}

TEST(QuorumWordEdge, BitRowsRowWordsExposesSingleRow) {
  BitRows rows(3, 65);  // two words per row
  (void)rows.test_and_set(1, 64);
  const auto row = rows.row_words(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 0u);
  EXPECT_EQ(row[1], 1u);
}

TEST(QuorumWordEdge, CopyRowsFromRejectsMismatchedGeometry) {
  // 64 vs 65 bits: one word per row vs two — the exact layout mismatch the
  // guard exists to catch (it would scramble every row boundary).
  BitRows narrow(4, 64);
  BitRows wide(4, 65);
  EXPECT_THROW(wide.copy_rows_from(narrow, 4), PreconditionError);
  EXPECT_THROW(narrow.copy_rows_from(wide, 4), PreconditionError);
  // Same geometry, but more rows than either matrix holds.
  BitRows small(2, 64);
  BitRows big(8, 64);
  EXPECT_THROW(big.copy_rows_from(small, 4), PreconditionError);
  EXPECT_THROW(small.copy_rows_from(big, 4), PreconditionError);
  // In-bounds copies still pass.
  big.copy_rows_from(small, 2);
  small.copy_rows_from(big, 2);
}

#ifndef NDEBUG
TEST(QuorumWordEdge, ProcessSetAddGuardsCapacityInDebugBuilds) {
  ProcessSet s(64);  // exactly one word
  EXPECT_TRUE(s.add(63));
  EXPECT_THROW((void)s.add(64), PreconditionError);
  EXPECT_THROW((void)s.add(1000), PreconditionError);
  EXPECT_EQ(s.size(), 1u);
}
#endif

}  // namespace
}  // namespace rcp::core
