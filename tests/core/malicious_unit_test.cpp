// Message-level unit tests of Figure 2 through a fake context.
#include <gtest/gtest.h>

#include "core/malicious.hpp"
#include "core/messages.hpp"
#include "support/fake_context.hpp"

namespace rcp::core {
namespace {

using test::FakeContext;

// n = 4, k = 1: echo threshold floor(5/2)+1 = 3, quorum 3, decide count > 2.5
// i.e. >= 3 of the 3 accepted.
constexpr ConsensusParams kParams{4, 1};

Bytes initial(ProcessId from, Value v, Phase t) {
  return EchoProtocolMsg{.is_echo = false, .from = from, .value = v, .phase = t}
      .encode();
}

Bytes echo(ProcessId origin, Value v, Phase t) {
  return EchoProtocolMsg{.is_echo = true, .from = origin, .value = v, .phase = t}
      .encode();
}

/// Feeds enough echoes to make (origin, v, t) accepted at the process.
void accept(MaliciousConsensus& p, FakeContext& ctx, ProcessId origin, Value v,
            Phase t) {
  for (ProcessId echoer = 0; echoer < 3; ++echoer) {
    p.on_message(ctx, FakeContext::envelope(echoer, 0, echo(origin, v, t)));
  }
}

TEST(MaliciousUnit, StartBroadcastsInitial) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::one);
  p->on_start(ctx);
  ASSERT_EQ(ctx.sent.size(), 4u);
  const auto m = EchoProtocolMsg::decode(ctx.sent[0].payload);
  EXPECT_FALSE(m.is_echo);
  EXPECT_EQ(m.from, 0u);
  EXPECT_EQ(m.value, Value::one);
  EXPECT_EQ(m.phase, 0u);
}

TEST(MaliciousUnit, EchoesEveryFreshInitial) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(2, 0, initial(2, Value::one, 0)));
  ASSERT_EQ(ctx.sent.size(), 4u);  // echo broadcast
  const auto m = EchoProtocolMsg::decode(ctx.sent[0].payload);
  EXPECT_TRUE(m.is_echo);
  EXPECT_EQ(m.from, 2u);
  EXPECT_EQ(m.value, Value::one);
  // Duplicate initial: no second echo.
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(2, 0, initial(2, Value::one, 0)));
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(MaliciousUnit, ForgedInitialNotEchoed) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  // Sender 3 impersonating process 2.
  p->on_message(ctx, FakeContext::envelope(3, 0, initial(2, Value::one, 0)));
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(MaliciousUnit, PhaseCompletesAfterQuorumOfAcceptances) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  accept(*p, ctx, 1, Value::one, 0);
  accept(*p, ctx, 2, Value::one, 0);
  EXPECT_EQ(p->phase(), 0u);
  (void)ctx.take_sent();
  accept(*p, ctx, 3, Value::one, 0);
  // 3 = n - k acceptances: phase ends, value adopts the majority (1), and
  // with all 3 accepted carrying 1 (> (n+k)/2 = 2.5) the process decides.
  EXPECT_EQ(p->phase(), 1u);
  EXPECT_EQ(p->value(), Value::one);
  EXPECT_EQ(p->decision(), Value::one);
  EXPECT_EQ(ctx.decision, Value::one);
  // And it keeps participating: a fresh initial for phase 1 went out.
  bool saw_initial = false;
  for (const auto& s : ctx.sent) {
    const auto m = EchoProtocolMsg::decode(s.payload);
    if (!m.is_echo && m.phase == 1) {
      saw_initial = true;
      EXPECT_EQ(m.value, Value::one);
    }
  }
  EXPECT_TRUE(saw_initial);
}

TEST(MaliciousUnit, MixedAcceptancesAdoptMajorityWithoutDeciding) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  accept(*p, ctx, 1, Value::one, 0);
  accept(*p, ctx, 2, Value::one, 0);
  accept(*p, ctx, 3, Value::zero, 0);
  EXPECT_EQ(p->phase(), 1u);
  EXPECT_EQ(p->value(), Value::one);  // 2 vs 1
  EXPECT_FALSE(p->decision().has_value());
}

TEST(MaliciousUnit, DeferredEchoesReplayOnPhaseChange) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  // Echoes for phase 1 arrive early: deferred, not counted.
  for (ProcessId echoer = 0; echoer < 3; ++echoer) {
    p->on_message(ctx, FakeContext::envelope(echoer, 0, echo(1, Value::one, 1)));
    p->on_message(ctx, FakeContext::envelope(echoer, 0, echo(2, Value::one, 1)));
    p->on_message(ctx, FakeContext::envelope(echoer, 0, echo(3, Value::one, 1)));
  }
  EXPECT_EQ(p->phase(), 0u);
  EXPECT_EQ(p->accepted_counts().total(), 0u);
  // Now complete phase 0; the replay immediately completes phase 1 too.
  accept(*p, ctx, 1, Value::zero, 0);
  accept(*p, ctx, 2, Value::zero, 0);
  accept(*p, ctx, 3, Value::zero, 0);
  EXPECT_EQ(p->phase(), 2u);
  EXPECT_EQ(p->value(), Value::one);  // phase-1 accepts were all 1
}

TEST(MaliciousUnit, EchoFromEachEchoerCountedOnce) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  // The same echoer repeating never completes the quorum of 3.
  for (int i = 0; i < 10; ++i) {
    p->on_message(ctx, FakeContext::envelope(1, 0, echo(2, Value::one, 0)));
  }
  EXPECT_EQ(p->accepted_counts().total(), 0u);
  EXPECT_EQ(p->engine().echo_count(2, Value::one), 1u);
}

TEST(MaliciousUnit, GarbageIgnored) {
  FakeContext ctx(0, 4);
  auto p = MaliciousConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(1, 0, Bytes{std::byte{0x00}}));
  p->on_message(ctx, FakeContext::envelope(1, 0, Bytes{}));
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_EQ(p->phase(), 0u);
}

}  // namespace
}  // namespace rcp::core
