// Section 4.1 majority variant: property sweeps in the fail-stop model.
#include "core/majority.hpp"

#include <gtest/gtest.h>

#include "adversary/crash_plan.hpp"
#include "adversary/scenario.hpp"
#include "common/error.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ProtocolKind;
using adversary::Scenario;
using test::run_scenario;

TEST(Majority, FactoryValidatesResilience) {
  // The variant inherits the malicious bound floor((n-1)/3) (Section 4.1).
  EXPECT_NO_THROW(core::MajorityConsensus::make({10, 3}, Value::zero));
  EXPECT_THROW(core::MajorityConsensus::make({10, 4}, Value::zero),
               PreconditionError);
  EXPECT_NO_THROW(core::MajorityConsensus::make_unchecked({10, 4}, Value::zero));
}

TEST(Majority, UnanimousDecidesImmediately) {
  for (const Value v : kBothValues) {
    Scenario s;
    s.protocol = ProtocolKind::majority;
    s.params = {10, 3};
    s.inputs = std::vector<Value>(10, v);
    s.seed = 2;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided);
    EXPECT_EQ(out.value, v);
    EXPECT_LE(out.max_phase, 2u);
  }
}

TEST(Majority, StrongMajorityDecidesThatValue) {
  Scenario s;
  s.protocol = ProtocolKind::majority;
  s.params = {10, 3};
  // (n+k)/2 = 6.5: 7 ones guarantee every (n-k)-view carries > 6 ones?
  // Not every view, but each process adopts the majority of its 7-message
  // sample; with 7/10 ones the 1-side wins every sample of 7 (at least
  // 7-3=4 ones > 3 zeros), so phase 1 is unanimous.
  s.inputs = adversary::inputs_with_ones(10, 7);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s.seed = seed;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_EQ(out.value, Value::one) << "seed " << seed;
  }
}

struct MajorityParam {
  std::uint32_t n;
  std::uint32_t k;
  std::uint32_t crash_count;
  std::uint64_t seed;
};

class MajoritySweep : public ::testing::TestWithParam<MajorityParam> {};

TEST_P(MajoritySweep, AgreementAndTermination) {
  const MajorityParam p = GetParam();
  Rng rng(p.seed * 31 + p.n);
  Scenario s;
  s.protocol = ProtocolKind::majority;
  s.params = {p.n, p.k};
  s.inputs = adversary::alternating_inputs(p.n);
  if (p.crash_count > 0) {
    s.crashes =
        adversary::CrashPlan::random(p.n, p.crash_count, /*max_step=*/200, rng);
  }
  s.seed = p.seed;
  const auto out = run_scenario(s);
  EXPECT_EQ(out.status, sim::RunStatus::all_decided)
      << "n=" << p.n << " k=" << p.k << " crashes=" << p.crash_count
      << " seed=" << p.seed;
  EXPECT_TRUE(out.agreement);
}

std::vector<MajorityParam> majority_params() {
  std::vector<MajorityParam> params;
  const std::pair<std::uint32_t, std::uint32_t> sizes[] = {
      {4, 1}, {7, 2}, {10, 3}, {16, 5}};
  for (const auto& [n, k] : sizes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      params.push_back({n, k, 0, seed});
      params.push_back({n, k, k, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Grid, MajoritySweep,
                         ::testing::ValuesIn(majority_params()),
                         [](const auto& pinfo) {
                           const MajorityParam& p = pinfo.param;
                           std::string name = "n";
                           name += std::to_string(p.n);
                           name += 'k';
                           name += std::to_string(p.k);
                           name += 'c';
                           name += std::to_string(p.crash_count);
                           name += 's';
                           name += std::to_string(p.seed);
                           return name;
                         });

}  // namespace
}  // namespace rcp
