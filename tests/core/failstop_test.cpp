// Figure 1 (fail-stop consensus): unit behaviour plus property sweeps over
// system sizes, seeds, input patterns and crash schedules. The paper's
// Theorem 2 properties under test: consistency (agreement), convergence
// (termination), deadlock-freedom, and bivalence/validity (unanimous input
// decides that input).
#include "core/failstop.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "adversary/crash_plan.hpp"
#include "adversary/scenario.hpp"
#include "common/error.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ProtocolKind;
using adversary::Scenario;
using test::run_scenario;

TEST(FailStop, FactoryValidatesResilience) {
  EXPECT_NO_THROW(core::FailStopConsensus::make({7, 3}, Value::zero));
  EXPECT_THROW(core::FailStopConsensus::make({7, 4}, Value::zero),
               PreconditionError);
  EXPECT_NO_THROW(core::FailStopConsensus::make_unchecked({7, 4}, Value::zero));
  EXPECT_THROW(core::FailStopConsensus::make_unchecked({3, 3}, Value::zero),
               PreconditionError)
      << "even unchecked needs one correct process";
}

TEST(FailStop, InitialStateMatchesFigure1) {
  auto p = core::FailStopConsensus::make({7, 3}, Value::one);
  EXPECT_EQ(p->value(), Value::one);
  EXPECT_EQ(p->cardinality(), 1u);
  EXPECT_EQ(p->phase(), 0u);
  EXPECT_FALSE(p->decision().has_value());
  EXPECT_FALSE(p->halted());
}

TEST(FailStop, UnanimousInputsDecideThatValue) {
  for (const Value v : kBothValues) {
    Scenario s;
    s.protocol = ProtocolKind::fail_stop;
    s.params = {7, 3};
    s.inputs = std::vector<Value>(7, v);
    s.seed = 11;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided);
    EXPECT_TRUE(out.agreement);
    EXPECT_EQ(out.value, v) << "bivalence/validity: unanimous " << v;
  }
}

TEST(FailStop, StrongMajorityInputDecidesThatValue) {
  // Paper: "If more than (n+k)/2 processes start with the same input value,
  // every correct process decides that value in just three phases."
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {9, 2};  // (n+k)/2 = 5.5, so 6 ones force a 1-decision
  s.inputs = adversary::inputs_with_ones(9, 6);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s.seed = seed;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided);
    EXPECT_EQ(out.value, Value::one) << "seed " << seed;
    EXPECT_LE(out.max_phase, 4u) << "seed " << seed;
  }
}

TEST(FailStop, ZeroResilienceStillWorks) {
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {4, 0};
  s.inputs = adversary::alternating_inputs(4);
  s.seed = 5;
  const auto out = run_scenario(s);
  EXPECT_EQ(out.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(out.agreement);
}

TEST(FailStop, SingleProcessDecidesImmediately) {
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {1, 0};
  s.inputs = {Value::one};
  s.seed = 1;
  const auto out = run_scenario(s);
  EXPECT_EQ(out.status, sim::RunStatus::all_decided);
  EXPECT_EQ(out.value, Value::one);
}

TEST(FailStop, SurvivesStaggeredPhaseCrashes) {
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {9, 4};
  s.inputs = adversary::alternating_inputs(9);
  s.crashes = adversary::CrashPlan::staggered(4);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s.seed = seed;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(out.agreement) << "seed " << seed;
  }
}

TEST(FailStop, SurvivesInitiallyDeadFaults) {
  Rng rng(99);
  Scenario s;
  s.protocol = ProtocolKind::fail_stop;
  s.params = {7, 3};
  s.inputs = adversary::alternating_inputs(7);
  s.crashes = adversary::CrashPlan::initially_dead(7, 3, rng);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s.seed = seed;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(out.agreement) << "seed " << seed;
  }
}

// ---- Property sweep -----------------------------------------------------

struct SweepParam {
  std::uint32_t n;
  std::uint32_t k;
  std::uint32_t crash_count;
  std::uint64_t seed;
};

class FailStopSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FailStopSweep, AgreementTerminationValidity) {
  const SweepParam p = GetParam();
  Rng rng(p.seed * 7919 + p.n);
  for (const std::uint32_t ones : {0u, p.n / 2, p.n}) {
    Scenario s;
    s.protocol = ProtocolKind::fail_stop;
    s.params = {p.n, p.k};
    s.inputs = adversary::inputs_with_ones(p.n, ones);
    s.seed = p.seed;
    if (p.crash_count > 0) {
      s.crashes = adversary::CrashPlan::random_phase_boundaries(
          p.n, p.crash_count, /*max_phase=*/4, rng);
    }
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided)
        << "n=" << p.n << " k=" << p.k << " ones=" << ones
        << " crashes=" << p.crash_count << " seed=" << p.seed;
    EXPECT_TRUE(out.agreement);
    ASSERT_TRUE(out.value.has_value());
    if (ones == 0) {
      EXPECT_EQ(out.value, Value::zero);
    }
    if (ones == p.n) {
      EXPECT_EQ(out.value, Value::one);
    }
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  const std::pair<std::uint32_t, std::uint32_t> sizes[] = {
      {3, 1}, {4, 1}, {5, 2}, {7, 3}, {8, 3}, {9, 4}, {12, 5}};
  for (const auto& [n, k] : sizes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      params.push_back({n, k, 0, seed});
      params.push_back({n, k, k, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Grid, FailStopSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& pinfo) {
                           const SweepParam& p = pinfo.param;
                           std::string name = "n";
                           name += std::to_string(p.n);
                           name += 'k';
                           name += std::to_string(p.k);
                           name += 'c';
                           name += std::to_string(p.crash_count);
                           name += 's';
                           name += std::to_string(p.seed);
                           return name;
                         });

}  // namespace
}  // namespace rcp
