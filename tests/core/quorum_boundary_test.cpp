// Boundary proofs for the flat quorum accounting (core/quorum.hpp and its
// EchoEngine embedding): acceptance fires at exactly floor((n+k)/2) + 1
// distinct echoers — never one earlier — for both parities of n + k, and a
// duplicate echoer can never advance a tally. These pin the threshold
// semantics the bitset rewrite must reproduce bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/echo_engine.hpp"
#include "core/params.hpp"
#include "core/quorum.hpp"

namespace rcp::core {
namespace {

EchoProtocolMsg echo(ProcessId origin, Value v, Phase t) {
  return EchoProtocolMsg{.is_echo = true, .from = origin, .value = v, .phase = t};
}

// ---------------------------------------------------------------------------
// ProcessSet / BitRows primitives.

TEST(ProcessSet, AddContainsSizeClear) {
  ProcessSet s(130);  // spans three 64-bit words
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.add(0));
  EXPECT_TRUE(s.add(63));
  EXPECT_TRUE(s.add(64));
  EXPECT_TRUE(s.add(129));
  EXPECT_FALSE(s.add(64));  // duplicate
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(129));
  EXPECT_FALSE(s.contains(128));
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.add(0));  // reusable after clear
}

TEST(BitRows, RowsAreIndependentAndClearable) {
  BitRows m(6, 70);  // two words per row
  EXPECT_TRUE(m.test_and_set(2, 69));
  EXPECT_FALSE(m.test_and_set(2, 69));
  EXPECT_TRUE(m.test_and_set(3, 69));  // same bit, different row
  EXPECT_TRUE(m.test(2, 69));
  EXPECT_FALSE(m.test(2, 68));
  EXPECT_EQ(m.popcount_all(), 2u);
  m.clear_rows(2, 1);
  EXPECT_FALSE(m.test(2, 69));
  EXPECT_TRUE(m.test(3, 69));
  EXPECT_EQ(m.popcount_all(), 1u);
}

// ---------------------------------------------------------------------------
// Acceptance threshold exactness through the engine.

/// Feeds distinct echoers for one (origin, value) and asserts acceptance
/// fires exactly when the count reaches floor((n+k)/2) + 1.
void expect_exact_threshold(ConsensusParams params) {
  const std::uint32_t threshold = params.echo_acceptance_threshold();
  ASSERT_LE(threshold, params.n) << "scenario needs enough correct echoers";
  EchoEngine e(params);
  const ProcessId origin = params.n - 1;
  for (std::uint32_t echoer = 0; echoer + 1 < threshold; ++echoer) {
    const auto out = e.handle(echoer, echo(origin, Value::one, 0), 0);
    EXPECT_FALSE(out.accepted.has_value())
        << "accepted at " << echoer + 1 << " echoes, threshold " << threshold
        << " (n=" << params.n << ", k=" << params.k << ")";
  }
  const auto out = e.handle(threshold - 1, echo(origin, Value::one, 0), 0);
  ASSERT_TRUE(out.accepted.has_value())
      << "no acceptance at the exact threshold " << threshold << " (n="
      << params.n << ", k=" << params.k << ")";
  EXPECT_EQ(out.accepted->origin, origin);
  EXPECT_EQ(out.accepted->value, Value::one);
  EXPECT_EQ(e.echo_count(origin, Value::one), threshold);
}

TEST(QuorumBoundary, AcceptanceAtExactThresholdOddSum) {
  // n + k odd: floor((7+2)/2) + 1 = 5; "more than 4.5 echoes" means 5.
  expect_exact_threshold(ConsensusParams{7, 2});
  // n + k = 13, threshold 7.
  expect_exact_threshold(ConsensusParams{10, 3});
}

TEST(QuorumBoundary, AcceptanceAtExactThresholdEvenSum) {
  // n + k even: floor((10+2)/2) + 1 = 7; "more than 6" means 7 exactly.
  expect_exact_threshold(ConsensusParams{10, 2});
  // n + k = 8 with k = 1: threshold 5.
  expect_exact_threshold(ConsensusParams{7, 1});
}

TEST(QuorumBoundary, ThresholdExactAcrossParamSweep) {
  for (std::uint32_t n = 4; n <= 64; ++n) {
    for (std::uint32_t k = 0; k <= max_resilience(FaultModel::malicious, n);
         ++k) {
      expect_exact_threshold(ConsensusParams{n, k});
    }
  }
}

TEST(QuorumBoundary, DuplicateEchoNeverAdvancesTally) {
  // One echoer short of the quorum, then the same echoer repeating — with
  // the same value, the other value, and a replay after deferral — must
  // never produce the acceptance.
  constexpr ConsensusParams kParams{7, 2};  // threshold 5
  EchoEngine e(kParams);
  for (ProcessId echoer = 0; echoer < 4; ++echoer) {
    EXPECT_FALSE(e.handle(echoer, echo(3, Value::one, 0), 0)
                     .accepted.has_value());
  }
  for (int repeat = 0; repeat < 10; ++repeat) {
    EXPECT_FALSE(e.handle(0, echo(3, Value::one, 0), 0).accepted.has_value());
    EXPECT_FALSE(e.handle(0, echo(3, Value::zero, 0), 0).accepted.has_value());
  }
  EXPECT_EQ(e.echo_count(3, Value::one), 4u);
  EXPECT_EQ(e.echo_count(3, Value::zero), 0u);
  // A genuinely new echoer still completes the quorum.
  EXPECT_TRUE(e.handle(4, echo(3, Value::one, 0), 0).accepted.has_value());
}

TEST(QuorumBoundary, DuplicateDeferredEchoNeverAdvancesFuturePhase) {
  constexpr ConsensusParams kParams{7, 2};
  EchoEngine e(kParams);
  // Echoers 0..3 defer for phase 1; echoer 0 spams duplicates.
  for (ProcessId echoer = 0; echoer < 4; ++echoer) {
    (void)e.handle(echoer, echo(3, Value::one, 1), 0);
  }
  for (int repeat = 0; repeat < 10; ++repeat) {
    (void)e.handle(0, echo(3, Value::one, 1), 0);
  }
  EXPECT_EQ(e.deferred_count(), 4u);
  const auto accepts = e.advance(1);
  EXPECT_TRUE(accepts.empty());
  EXPECT_EQ(e.echo_count(3, Value::one), 4u);
}

TEST(QuorumBoundary, ThresholdMatchesParamsHelperNotOneLess) {
  // Direct cross-check against the ConsensusParams arithmetic: for a range
  // of parities the engine's firing point equals the helper exactly.
  const ConsensusParams cases[] = {{4, 1}, {5, 1}, {6, 1}, {7, 2},
                                   {9, 2}, {10, 2}, {10, 3}, {13, 4}};
  for (const ConsensusParams p : cases) {
    EchoEngine e(p);
    const std::uint32_t threshold = p.echo_acceptance_threshold();
    std::uint32_t fired_at = 0;
    for (std::uint32_t echoer = 0; echoer < p.n; ++echoer) {
      if (e.handle(echoer, echo(0, Value::zero, 0), 0).accepted.has_value()) {
        fired_at = echoer + 1;
        break;
      }
    }
    EXPECT_EQ(fired_at, threshold)
        << "n=" << p.n << " k=" << p.k;
    EXPECT_EQ((p.n + p.k) / 2 + 1, threshold)
        << "helper must be floor((n+k)/2)+1";
  }
}

}  // namespace
}  // namespace rcp::core
