// Figure 2 (malicious consensus): unit behaviour and property sweeps under
// every implemented Byzantine strategy. Theorem 4 properties under test:
// consistency, convergence, deadlock-freedom, and validity on unanimous
// correct inputs.
#include "core/malicious.hpp"

#include <gtest/gtest.h>

#include "adversary/scenario.hpp"
#include <algorithm>

#include "common/error.hpp"
#include "support/run_helpers.hpp"

namespace rcp {
namespace {

using adversary::ByzantineKind;
using adversary::ProtocolKind;
using adversary::Scenario;
using test::run_scenario;

TEST(Malicious, FactoryValidatesResilience) {
  EXPECT_NO_THROW(core::MaliciousConsensus::make({7, 2}, Value::zero));
  EXPECT_THROW(core::MaliciousConsensus::make({7, 3}, Value::zero),
               PreconditionError);
  EXPECT_NO_THROW(core::MaliciousConsensus::make_unchecked({7, 3}, Value::zero));
}

TEST(Malicious, AllCorrectUnanimousDecidesFast) {
  // Paper: "If all the processes start with the same input value, within
  // two phases all the correct processes decide that value."
  for (const Value v : kBothValues) {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {7, 2};
    s.inputs = std::vector<Value>(7, v);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      s.seed = seed;
      const auto out = run_scenario(s);
      EXPECT_EQ(out.status, sim::RunStatus::all_decided);
      EXPECT_EQ(out.value, v);
      EXPECT_LE(out.max_phase, 3u) << "seed " << seed;
    }
  }
}

TEST(Malicious, SilentByzantineUnanimousCorrectKeepsValidity) {
  // With only silent faults, every accepted message comes from a correct
  // process, so unanimous correct inputs must win.
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = std::vector<Value>(7, Value::one);
  s.byzantine_ids = {0, 6};
  s.byzantine_kind = ByzantineKind::silent;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s.seed = seed;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_EQ(out.value, Value::one) << "seed " << seed;
  }
}

TEST(Malicious, ZeroFaultToleranceConfiguration) {
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {4, 0};
  s.inputs = adversary::alternating_inputs(4);
  s.seed = 3;
  const auto out = run_scenario(s);
  EXPECT_EQ(out.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(out.agreement);
}

TEST(Malicious, GarbagePayloadsAreHarmless) {
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = adversary::alternating_inputs(7);
  s.byzantine_ids = {2, 5};
  s.byzantine_kind = ByzantineKind::babbler;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s.seed = seed;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(out.agreement) << "seed " << seed;
  }
}

// ---- Property sweep over sizes and Byzantine strategies -----------------

struct MaliciousParam {
  std::uint32_t n;
  std::uint32_t k;
  ByzantineKind kind;
  std::uint64_t seed;
};

class MaliciousSweep : public ::testing::TestWithParam<MaliciousParam> {};

TEST_P(MaliciousSweep, AgreementAndTermination) {
  const MaliciousParam p = GetParam();
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {p.n, p.k};
  s.inputs = adversary::alternating_inputs(p.n);
  s.byzantine_kind = p.kind;
  s.max_steps = 8'000'000;
  // Spread the Byzantine slots across the id space.
  for (std::uint32_t b = 0; b < p.k; ++b) {
    s.byzantine_ids.push_back(static_cast<ProcessId>(b * p.n / p.k));
  }
  s.seed = p.seed;
  const auto out = run_scenario(s);
  EXPECT_EQ(out.status, sim::RunStatus::all_decided)
      << "n=" << p.n << " k=" << p.k << " kind=" << to_string(p.kind)
      << " seed=" << p.seed;
  EXPECT_TRUE(out.agreement);
  EXPECT_TRUE(out.value.has_value());
}

std::vector<MaliciousParam> malicious_params() {
  std::vector<MaliciousParam> params;
  const std::pair<std::uint32_t, std::uint32_t> sizes[] = {
      {4, 1}, {7, 2}, {10, 3}, {13, 4}};
  const ByzantineKind kinds[] = {ByzantineKind::silent,
                                 ByzantineKind::equivocator,
                                 ByzantineKind::balancer,
                                 ByzantineKind::babbler};
  for (const auto& [n, k] : sizes) {
    for (const auto kind : kinds) {
      // The balancing attack at maximal k makes convergence astronomically
      // slow (a decision needs unanimity among the n-k accepted messages,
      // which costs on the order of C(n, k) phases). The paper itself
      // calls the maximal-k Figure 2 protocol "very inefficient" and
      // restricts its Section 4.2 analysis to k <= n/5 — we test the
      // balancer in that regime and the other strategies at full k.
      const std::uint32_t k_used =
          kind == ByzantineKind::balancer ? std::max(1u, n / 5) : k;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        params.push_back({n, k_used, kind, seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Grid, MaliciousSweep,
                         ::testing::ValuesIn(malicious_params()),
                         [](const auto& pinfo) {
                           const MaliciousParam& p = pinfo.param;
                           std::string name = "n";
                           name += std::to_string(p.n);
                           name += 'k';
                           name += std::to_string(p.k);
                           name += '_';
                           name += to_string(p.kind);
                           name += "_s";
                           name += std::to_string(p.seed);
                           return name;
                         });

// Crash faults are a special case of malicious faults: the protocol must
// also withstand plain fail-stop behaviour.
TEST(Malicious, ToleratesCrashFaults) {
  Scenario s;
  s.protocol = ProtocolKind::malicious;
  s.params = {10, 3};
  s.inputs = adversary::alternating_inputs(10);
  s.crashes.add_phase_crash(0, 1);
  s.crashes.add_phase_crash(1, 2);
  s.crashes.add_step_crash(2, 100);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    s.seed = seed;
    const auto out = run_scenario(s);
    EXPECT_EQ(out.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(out.agreement) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rcp
