#include "core/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rcp::core {
namespace {

TEST(Messages, FailStopRoundTrip) {
  const FailStopMsg msg{.phase = 42, .value = Value::one, .cardinality = 17};
  const FailStopMsg back = FailStopMsg::decode(msg.encode());
  EXPECT_EQ(back.phase, 42u);
  EXPECT_EQ(back.value, Value::one);
  EXPECT_EQ(back.cardinality, 17u);
}

TEST(Messages, EchoProtocolRoundTripBothKinds) {
  for (const bool is_echo : {false, true}) {
    const EchoProtocolMsg msg{
        .is_echo = is_echo, .from = 9, .value = Value::zero, .phase = 1000};
    const EchoProtocolMsg back = EchoProtocolMsg::decode(msg.encode());
    EXPECT_EQ(back.is_echo, is_echo);
    EXPECT_EQ(back.from, 9u);
    EXPECT_EQ(back.value, Value::zero);
    EXPECT_EQ(back.phase, 1000u);
  }
}

TEST(Messages, MajorityRoundTrip) {
  const MajorityMsg msg{.phase = 3, .value = Value::one};
  const MajorityMsg back = MajorityMsg::decode(msg.encode());
  EXPECT_EQ(back.phase, 3u);
  EXPECT_EQ(back.value, Value::one);
}

TEST(Messages, PeekTagIdentifiesTypes) {
  EXPECT_EQ(peek_tag(FailStopMsg{}.encode()), MsgTag::fail_stop);
  EXPECT_EQ(peek_tag(EchoProtocolMsg{.is_echo = false}.encode()),
            MsgTag::initial);
  EXPECT_EQ(peek_tag(EchoProtocolMsg{.is_echo = true}.encode()), MsgTag::echo);
  EXPECT_EQ(peek_tag(MajorityMsg{}.encode()), MsgTag::majority);
}

TEST(Messages, PeekTagRejectsGarbage) {
  EXPECT_THROW((void)peek_tag(Bytes{}), DecodeError);
  EXPECT_THROW((void)peek_tag(Bytes{std::byte{0x7f}}), DecodeError);
}

TEST(Messages, CrossTypeDecodeRejected) {
  const Bytes fail_stop = FailStopMsg{}.encode();
  EXPECT_THROW((void)EchoProtocolMsg::decode(fail_stop), DecodeError);
  EXPECT_THROW((void)MajorityMsg::decode(fail_stop), DecodeError);
  const Bytes echo = EchoProtocolMsg{.is_echo = true}.encode();
  EXPECT_THROW((void)FailStopMsg::decode(echo), DecodeError);
}

TEST(Messages, TruncationRejected) {
  Bytes buf = FailStopMsg{.phase = 1, .value = Value::one, .cardinality = 2}
                  .encode();
  buf.pop_back();
  EXPECT_THROW((void)FailStopMsg::decode(buf), DecodeError);
}

TEST(Messages, TrailingBytesRejected) {
  Bytes buf = MajorityMsg{.phase = 1, .value = Value::one}.encode();
  buf.push_back(std::byte{0});
  EXPECT_THROW((void)MajorityMsg::decode(buf), DecodeError);
}

TEST(Messages, OutOfRangeValueRejected) {
  Bytes buf = MajorityMsg{.phase = 1, .value = Value::one}.encode();
  buf.back() = std::byte{2};  // value field is the final byte
  EXPECT_THROW((void)MajorityMsg::decode(buf), DecodeError);
}

TEST(Messages, DecodersNeverCrashOnRandomBytes) {
  Rng rng(123);
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(rng.below(20));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.below(256));
    }
    // Every decoder must either succeed or throw DecodeError — nothing else.
    try {
      (void)FailStopMsg::decode(junk);
    } catch (const DecodeError&) {
    }
    try {
      (void)EchoProtocolMsg::decode(junk);
    } catch (const DecodeError&) {
    }
    try {
      (void)MajorityMsg::decode(junk);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

TEST(Messages, PhaseExtremes) {
  const Phase huge = ~0ULL;
  const FailStopMsg msg{.phase = huge, .value = Value::zero, .cardinality = 0};
  EXPECT_EQ(FailStopMsg::decode(msg.encode()).phase, huge);
}

}  // namespace
}  // namespace rcp::core
