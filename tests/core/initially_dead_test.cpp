// Section 5: the weak-bivalence protocol for initially-dead processes.
#include "core/initially_dead.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "sim/lockstep.hpp"

namespace rcp::core {
namespace {

std::vector<std::vector<bool>> grid(std::initializer_list<std::string> rows) {
  std::vector<std::vector<bool>> adj;
  for (const auto& row : rows) {
    std::vector<bool> r;
    for (const char c : row) {
      r.push_back(c == '1');
    }
    adj.push_back(std::move(r));
  }
  return adj;
}

TEST(TransitiveClosure, ReflexiveByConstruction) {
  const auto closure = transitive_closure(grid({"00", "00"}));
  EXPECT_TRUE(closure[0][0]);
  EXPECT_TRUE(closure[1][1]);
  EXPECT_FALSE(closure[0][1]);
}

TEST(TransitiveClosure, ChainsCompose) {
  // 0 -> 1 -> 2 implies 0 -> 2.
  const auto closure = transitive_closure(grid({"010", "001", "000"}));
  EXPECT_TRUE(closure[0][2]);
  EXPECT_FALSE(closure[2][0]);
}

TEST(TransitiveClosure, CycleIsStronglyConnected) {
  const auto closure = transitive_closure(grid({"010", "001", "100"}));
  EXPECT_TRUE(closure_strongly_connected(closure));
}

TEST(TransitiveClosure, DisconnectedVertexBreaksStrongConnectivity) {
  const auto closure = transitive_closure(grid({"010", "100", "000"}));
  EXPECT_FALSE(closure_strongly_connected(closure));
}

TEST(TransitiveClosure, RejectsNonSquare) {
  EXPECT_THROW((void)transitive_closure(grid({"01", "0"})), PreconditionError);
}

TEST(BivalentFunction, MajorityTiesToOne) {
  using IDC = InitiallyDeadConsensus;
  EXPECT_EQ(IDC::bivalent_function({Value::zero}), Value::zero);
  EXPECT_EQ(IDC::bivalent_function({Value::one}), Value::one);
  EXPECT_EQ(IDC::bivalent_function({Value::zero, Value::one}), Value::one);
  EXPECT_EQ(IDC::bivalent_function(
                {Value::zero, Value::zero, Value::one}),
            Value::zero);
}

sim::LockstepSimulation make_run(const std::vector<Value>& inputs,
                                 const std::vector<bool>& dead) {
  const auto n = static_cast<std::uint32_t>(inputs.size());
  std::vector<std::unique_ptr<sim::LockstepProcess>> procs;
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<InitiallyDeadConsensus>(n, p, inputs[p]));
  }
  return sim::LockstepSimulation(std::move(procs), dead);
}

TEST(InitiallyDead, AllAliveDecidesBivalentFunction) {
  // 3 ones of 5: bivalent function (majority, ties -> 1) gives 1.
  auto sim = make_run({Value::one, Value::one, Value::one, Value::zero,
                       Value::zero},
                      std::vector<bool>(5, false));
  const auto rounds = sim.run_until_decided(10);
  EXPECT_EQ(rounds, 2u);
  EXPECT_TRUE(sim.agreement_holds());
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(sim.decision_of(p), Value::one);
  }
}

TEST(InitiallyDead, AllAliveCanDecideZeroToo) {
  // Weak bivalence demands both outcomes be reachable in all-correct runs.
  auto sim = make_run({Value::zero, Value::zero, Value::zero, Value::one,
                       Value::one},
                      std::vector<bool>(5, false));
  (void)sim.run_until_decided(10);
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(sim.decision_of(p), Value::zero);
  }
}

TEST(InitiallyDead, OneDeadForcesZero) {
  // Even with every living input 1, a single initially-dead process fixes
  // the decision at 0 — the paper's weak-bivalence trade.
  std::vector<bool> dead(5, false);
  dead[2] = true;
  auto sim = make_run(std::vector<Value>(5, Value::one), dead);
  (void)sim.run_until_decided(10);
  EXPECT_TRUE(sim.agreement_holds());
  for (ProcessId p = 0; p < 5; ++p) {
    if (!dead[p]) {
      EXPECT_EQ(sim.decision_of(p), Value::zero);
    }
  }
}

TEST(InitiallyDead, ToleratesAllButOneDead) {
  std::vector<bool> dead(6, true);
  dead[3] = false;
  auto sim = make_run(std::vector<Value>(6, Value::one), dead);
  const auto rounds = sim.run_until_decided(10);
  EXPECT_EQ(rounds, 2u);
  EXPECT_EQ(sim.decision_of(3), Value::zero);
}

TEST(InitiallyDead, EveryDeathCountDecidesZeroConsistently) {
  for (std::uint32_t deaths = 1; deaths <= 6; ++deaths) {
    std::vector<bool> dead(7, false);
    for (std::uint32_t d = 0; d < deaths; ++d) {
      dead[d] = true;
    }
    auto sim = make_run(std::vector<Value>(7, Value::one), dead);
    (void)sim.run_until_decided(10);
    EXPECT_TRUE(sim.agreement_holds()) << deaths << " dead";
    EXPECT_TRUE(sim.all_live_decided()) << deaths << " dead";
    for (ProcessId p = 0; p < 7; ++p) {
      if (!dead[p]) {
        EXPECT_EQ(sim.decision_of(p), Value::zero) << deaths << " dead";
      }
    }
  }
}

TEST(InitiallyDead, ConstructionValidation) {
  EXPECT_THROW(InitiallyDeadConsensus(3, 3, Value::zero), PreconditionError);
  EXPECT_THROW(InitiallyDeadConsensus(0, 0, Value::zero), PreconditionError);
}

}  // namespace
}  // namespace rcp::core
