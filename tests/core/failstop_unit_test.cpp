// Message-level unit tests of Figure 1, driven through a fake context —
// each test checks one line of the pseudocode.
#include <gtest/gtest.h>

#include "core/failstop.hpp"
#include "core/messages.hpp"
#include "support/fake_context.hpp"

namespace rcp::core {
namespace {

using test::FakeContext;

// n = 4, k = 1: wait quorum 3, witness cardinality > 2, decide > 1 witness.
constexpr ConsensusParams kParams{4, 1};

Bytes msg(Phase t, Value v, std::uint32_t cardinality) {
  return FailStopMsg{.phase = t, .value = v, .cardinality = cardinality}
      .encode();
}

TEST(FailStopUnit, StartBroadcastsInitialState) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::one);
  p->on_start(ctx);
  ASSERT_EQ(ctx.sent.size(), 4u);  // to all q, 1 <= q <= n, self included
  for (ProcessId q = 0; q < 4; ++q) {
    EXPECT_EQ(ctx.sent[q].to, q);
    const auto m = FailStopMsg::decode(ctx.sent[q].payload);
    EXPECT_EQ(m.phase, 0u);
    EXPECT_EQ(m.value, Value::one);
    EXPECT_EQ(m.cardinality, 1u);
  }
}

TEST(FailStopUnit, PhaseEndsAtExactlyQuorum) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(0, Value::zero, 1)));
  p->on_message(ctx, FakeContext::envelope(2, 0, msg(0, Value::zero, 1)));
  EXPECT_EQ(p->phase(), 0u);
  EXPECT_TRUE(ctx.sent.empty());
  p->on_message(ctx, FakeContext::envelope(3, 0, msg(0, Value::zero, 1)));
  EXPECT_EQ(p->phase(), 1u);
  // New phase broadcast with updated cardinality = |message set| = 3.
  ASSERT_EQ(ctx.sent.size(), 4u);
  const auto m = FailStopMsg::decode(ctx.sent[0].payload);
  EXPECT_EQ(m.phase, 1u);
  EXPECT_EQ(m.cardinality, 3u);
}

TEST(FailStopUnit, MajorityRuleWithoutWitnesses) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(0, Value::one, 1)));
  p->on_message(ctx, FakeContext::envelope(2, 0, msg(0, Value::one, 2)));
  p->on_message(ctx, FakeContext::envelope(3, 0, msg(0, Value::zero, 1)));
  EXPECT_EQ(p->value(), Value::one);     // 2 ones vs 1 zero
  EXPECT_EQ(p->cardinality(), 2u);       // |{messages with value 1}|
  EXPECT_FALSE(p->decision().has_value());
}

TEST(FailStopUnit, TieGoesToZero) {
  // message_count(1) > message_count(0) is required for 1; ties pick 0.
  FakeContext ctx(0, 5);
  auto p = FailStopConsensus::make({5, 1}, Value::one);  // quorum 4
  p->on_start(ctx);
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(0, Value::one, 1)));
  p->on_message(ctx, FakeContext::envelope(2, 0, msg(0, Value::one, 1)));
  p->on_message(ctx, FakeContext::envelope(3, 0, msg(0, Value::zero, 1)));
  p->on_message(ctx, FakeContext::envelope(4, 0, msg(0, Value::zero, 1)));
  EXPECT_EQ(p->value(), Value::zero);
}

TEST(FailStopUnit, WitnessOverridesMajority) {
  // One witness for 0 (cardinality 3 > n/2 = 2) beats a 2:1 majority of 1s.
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(0, Value::one, 1)));
  p->on_message(ctx, FakeContext::envelope(2, 0, msg(0, Value::one, 1)));
  p->on_message(ctx, FakeContext::envelope(3, 0, msg(0, Value::zero, 3)));
  EXPECT_EQ(p->value(), Value::zero);
  EXPECT_EQ(p->cardinality(), 1u);  // |{messages with value 0}|
}

TEST(FailStopUnit, DecisionOnMoreThanKWitnesses) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  // Two witnesses for 1 (> k = 1) among the quorum.
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(0, Value::one, 3)));
  p->on_message(ctx, FakeContext::envelope(2, 0, msg(0, Value::one, 3)));
  p->on_message(ctx, FakeContext::envelope(3, 0, msg(0, Value::zero, 1)));
  EXPECT_EQ(p->decision(), Value::one);
  EXPECT_EQ(ctx.decision, Value::one);
  EXPECT_TRUE(p->halted());
  // Final sends: (phaseno, v, n-k) and (phaseno+1, v, n-k) to everyone.
  ASSERT_EQ(ctx.sent.size(), 8u);
  const auto first = FailStopMsg::decode(ctx.sent[0].payload);
  const auto second = FailStopMsg::decode(ctx.sent[4].payload);
  EXPECT_EQ(first.phase, 1u);
  EXPECT_EQ(second.phase, 2u);
  EXPECT_EQ(first.value, Value::one);
  EXPECT_EQ(first.cardinality, 3u);  // n - k
  EXPECT_EQ(second.cardinality, 3u);
}

TEST(FailStopUnit, HaltedProcessIgnoresEverything) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(0, Value::one, 3)));
  p->on_message(ctx, FakeContext::envelope(2, 0, msg(0, Value::one, 3)));
  p->on_message(ctx, FakeContext::envelope(3, 0, msg(0, Value::zero, 1)));
  ASSERT_TRUE(p->halted());
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(1, Value::one, 3)));
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(FailStopUnit, FutureMessageRequeuedToSelf) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  const Bytes future = msg(5, Value::one, 1);
  p->on_message(ctx, FakeContext::envelope(1, 0, future));
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].to, 0u);  // self
  EXPECT_EQ(ctx.sent[0].payload, future);
}

TEST(FailStopUnit, StaleMessageDropped) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  // Complete phase 0.
  for (ProcessId s = 1; s <= 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, msg(0, Value::zero, 1)));
  }
  ASSERT_EQ(p->phase(), 1u);
  (void)ctx.take_sent();
  // A late phase-0 message: no case matches; nothing happens.
  p->on_message(ctx, FakeContext::envelope(1, 0, msg(0, Value::one, 1)));
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_EQ(p->phase(), 1u);
}

TEST(FailStopUnit, GarbagePayloadIgnored) {
  FakeContext ctx(0, 4);
  auto p = FailStopConsensus::make(kParams, Value::zero);
  p->on_start(ctx);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(1, 0, Bytes{std::byte{0xee}}));
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_EQ(p->phase(), 0u);
}

}  // namespace
}  // namespace rcp::core
