// Reactor backends: registration, token round-trip, readiness dispatch,
// mask handling (level-triggered), edge semantics (epoll), and removal.
// Pipes stand in for sockets — readiness plumbing is fd-agnostic.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace rcp::net {
namespace {

struct Pipe {
  Fd rd;
  Fd wr;
};

Pipe make_pipe() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(fds), 0);
  for (const int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  return Pipe{Fd(fds[0]), Fd(fds[1])};
}

void write_byte(const Fd& fd) {
  const char byte = 'x';
  ASSERT_EQ(::write(fd.get(), &byte, 1), 1);
}

void drain(const Fd& fd) {
  char buf[64];
  while (::read(fd.get(), buf, sizeof(buf)) > 0) {
  }
}

/// The event carrying `token` from the last wait, or nullptr. Dispatch is
/// by token on both backends (the epoll backend cannot report the fd:
/// epoll_data is a union and the token occupies it).
const ReactorEvent* find_event(const Reactor& r, std::uint64_t token) {
  for (const ReactorEvent& ev : r.events()) {
    if (ev.token == token) {
      return &ev;
    }
  }
  return nullptr;
}

std::vector<Reactor::Backend> available_backends() {
  std::vector<Reactor::Backend> backends{Reactor::Backend::poll};
  if (Reactor::epoll_available()) {
    backends.push_back(Reactor::Backend::epoll);
  }
  return backends;
}

class ReactorBackendTest
    : public ::testing::TestWithParam<Reactor::Backend> {};

std::string backend_name(
    const ::testing::TestParamInfo<Reactor::Backend>& param_info) {
  return param_info.param == Reactor::Backend::poll ? "poll" : "epoll";
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackendTest,
                         ::testing::ValuesIn(available_backends()),
                         backend_name);

TEST_P(ReactorBackendTest, EmptyWaitTimesOut) {
  const auto r = Reactor::make(GetParam());
  EXPECT_EQ(r->wait(0), 0);
  EXPECT_TRUE(r->events().empty());
}

TEST_P(ReactorBackendTest, ReadableFdReportsReadWithItsToken) {
  const auto r = Reactor::make(GetParam());
  const Pipe p = make_pipe();
  r->add(p.rd.get(), Reactor::kRead, 0xABCD0001u);
  EXPECT_EQ(r->wait(0), 0) << "empty pipe must not be readable";
  write_byte(p.wr);
  ASSERT_GE(r->wait(1000), 1);
  const ReactorEvent* ev = find_event(*r, 0xABCD0001u);
  ASSERT_NE(ev, nullptr);
  EXPECT_TRUE(ev->mask & Reactor::kRead);
  r->remove(p.rd.get());
}

TEST_P(ReactorBackendTest, WritableFdReportsWrite) {
  const auto r = Reactor::make(GetParam());
  const Pipe p = make_pipe();
  r->add(p.wr.get(), Reactor::kWrite, 7);
  ASSERT_GE(r->wait(1000), 1);
  const ReactorEvent* ev = find_event(*r, 7);
  ASSERT_NE(ev, nullptr);
  EXPECT_TRUE(ev->mask & Reactor::kWrite);
  r->remove(p.wr.get());
}

TEST_P(ReactorBackendTest, ModifyRetokensLiveRegistration) {
  const auto r = Reactor::make(GetParam());
  const Pipe p = make_pipe();
  r->add(p.rd.get(), Reactor::kRead, 1);
  r->modify(p.rd.get(), Reactor::kRead, 2);
  write_byte(p.wr);
  ASSERT_GE(r->wait(1000), 1);
  EXPECT_EQ(find_event(*r, 1), nullptr) << "stale token must not dispatch";
  const ReactorEvent* ev = find_event(*r, 2);
  ASSERT_NE(ev, nullptr);
  EXPECT_TRUE(ev->mask & Reactor::kRead);
  r->remove(p.rd.get());
}

TEST_P(ReactorBackendTest, RemovedFdNeverReportsAgain) {
  const auto r = Reactor::make(GetParam());
  const Pipe p = make_pipe();
  r->add(p.rd.get(), Reactor::kRead, 9);
  write_byte(p.wr);
  r->remove(p.rd.get());
  EXPECT_EQ(r->wait(0), 0);
  EXPECT_EQ(find_event(*r, 9), nullptr);
}

TEST_P(ReactorBackendTest, TwoFdsDispatchIndependently) {
  const auto r = Reactor::make(GetParam());
  const Pipe a = make_pipe();
  const Pipe b = make_pipe();
  r->add(a.rd.get(), Reactor::kRead, 100);
  r->add(b.rd.get(), Reactor::kRead, 200);
  write_byte(b.wr);
  ASSERT_GE(r->wait(1000), 1);
  EXPECT_EQ(find_event(*r, 100), nullptr) << "idle fd must not dispatch";
  const ReactorEvent* ev = find_event(*r, 200);
  ASSERT_NE(ev, nullptr);
  EXPECT_TRUE(ev->mask & Reactor::kRead);
  r->remove(a.rd.get());
  r->remove(b.rd.get());
}

TEST(PollReactor, IsLevelTriggeredAndHonoursMask) {
  const auto r = Reactor::make(Reactor::Backend::poll);
  EXPECT_FALSE(r->edge_triggered());
  EXPECT_EQ(r->name(), "poll");
  const Pipe p = make_pipe();
  write_byte(p.wr);
  // Mask 0: registered but interested in nothing — no event even though
  // the pipe is readable.
  r->add(p.rd.get(), 0, 5);
  EXPECT_EQ(r->wait(0), 0);
  // Level-triggered: once interested, the same undrained byte reports on
  // every wait until consumed.
  r->modify(p.rd.get(), Reactor::kRead, 5);
  EXPECT_GE(r->wait(0), 1);
  EXPECT_GE(r->wait(0), 1);
  drain(p.rd);
  EXPECT_EQ(r->wait(0), 0);
  r->remove(p.rd.get());
}

TEST(EpollReactor, IsEdgeTriggeredAndReportsOncePerEdge) {
  if (!Reactor::epoll_available()) {
    GTEST_SKIP() << "no epoll on this platform";
  }
  const auto r = Reactor::make(Reactor::Backend::epoll);
  EXPECT_TRUE(r->edge_triggered());
  EXPECT_EQ(r->name(), "epoll");
  const Pipe p = make_pipe();
  r->add(p.rd.get(), Reactor::kRead, 3);
  write_byte(p.wr);
  ASSERT_GE(r->wait(1000), 1);
  // Edge-triggered: the byte is still buffered but no new edge occurred,
  // so the fd must not report again — the loop's sticky flags carry the
  // obligation to finish draining.
  EXPECT_EQ(r->wait(0), 0);
  write_byte(p.wr);  // a fresh edge
  EXPECT_GE(r->wait(1000), 1);
  r->remove(p.rd.get());
}

TEST(Reactor, AutomaticPrefersEpollWhereAvailable) {
  const auto r = Reactor::make(Reactor::Backend::automatic);
  ASSERT_NE(r, nullptr);
  if (Reactor::epoll_available()) {
    EXPECT_EQ(r->name(), "epoll");
  } else {
    EXPECT_EQ(r->name(), "poll");
  }
}

}  // namespace
}  // namespace rcp::net
