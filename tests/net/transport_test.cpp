// Transport reliability: PeerLink's reliable-stream bookkeeping, the
// fault injector's determinism, and a live two-node socket exchange that
// must deliver exactly once, in order, through injected disconnects and
// drops.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/process.hpp"
#include "net/cluster.hpp"
#include "net/fault.hpp"
#include "net/peer.hpp"

namespace rcp::net {
namespace {

constexpr std::size_t kNoBound = 1 << 20;

Bytes two_bytes(std::uint32_t i) {
  Bytes b;
  b.push_back(static_cast<std::byte>(i & 0xff));
  b.push_back(static_cast<std::byte>((i >> 8) & 0xff));
  return b;
}

// ---- PeerLink bookkeeping ----------------------------------------------

TEST(PeerLink, EnqueueAssignsContiguousSeqs) {
  PeerLink link;
  link.init(1, {}, false);
  const auto now = Clock::now();
  ASSERT_TRUE(link.enqueue(two_bytes(0), now, kNoBound));
  ASSERT_TRUE(link.enqueue(two_bytes(1), now, kNoBound));
  EXPECT_EQ(link.queue_depth(), 2u);
  EXPECT_EQ(link.next_unsent().seq, 1u);
  link.advance_unsent();
  EXPECT_EQ(link.next_unsent().seq, 2u);
}

TEST(PeerLink, CumulativeAckReleasesPrefix) {
  PeerLink link;
  link.init(1, {}, false);
  const auto now = Clock::now();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(link.enqueue(two_bytes(i), now, kNoBound));
    link.advance_unsent();
  }
  EXPECT_TRUE(link.in_flight());
  link.on_ack(3);
  EXPECT_EQ(link.queue_depth(), 2u);
  EXPECT_TRUE(link.in_flight());
  link.on_ack(5);
  EXPECT_EQ(link.queue_depth(), 0u);
  EXPECT_FALSE(link.in_flight());
}

TEST(PeerLink, RewindRetransmitsUnackedFrames) {
  PeerLink link;
  link.init(1, {}, false);
  const auto now = Clock::now();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(link.enqueue(two_bytes(i), now, kNoBound));
    link.advance_unsent();
  }
  link.on_ack(1);  // frames 2..4 still unacked
  link.rewind_unsent();
  EXPECT_EQ(link.counters.retransmits, 3u);
  EXPECT_FALSE(link.in_flight());
  EXPECT_TRUE(link.transmittable(Clock::now()));
  EXPECT_EQ(link.next_unsent().seq, 2u);
}

TEST(PeerLink, BoundedQueueDropsNewestAtBound) {
  PeerLink link;
  link.init(1, {}, false);
  const auto now = Clock::now();
  ASSERT_TRUE(link.enqueue(two_bytes(0), now, 2));
  ASSERT_TRUE(link.enqueue(two_bytes(1), now, 2));
  EXPECT_FALSE(link.enqueue(two_bytes(2), now, 2));
  EXPECT_EQ(link.counters.overflow_drops, 1u);
  // The rejected message consumed no seq and the queue is untouched: the
  // stream the receiver sees stays contiguous.
  EXPECT_EQ(link.queue_depth(), 2u);
  link.on_ack(2);  // peer recovers and drains
  ASSERT_TRUE(link.enqueue(two_bytes(3), now, 2));
  EXPECT_EQ(link.next_unsent().seq, 3u);
}

TEST(PeerLink, InboundClassifiesDupDeliverGap) {
  PeerLink link;
  link.init(1, {}, false);
  EXPECT_EQ(link.classify_and_advance(1), 0);   // deliver
  EXPECT_EQ(link.classify_and_advance(1), -1);  // duplicate
  EXPECT_EQ(link.classify_and_advance(3), 1);   // gap (2 missing)
  EXPECT_EQ(link.classify_and_advance(2), 0);   // the retransmit arrives
  EXPECT_EQ(link.delivered_seq(), 2u);
  EXPECT_EQ(link.counters.dup_frames, 1u);
  EXPECT_EQ(link.counters.gap_frames, 1u);
}

TEST(PeerLink, DelayedFramesAreNotTransmittableEarly) {
  PeerLink link;
  link.init(1, {}, false);
  const auto now = Clock::now();
  const auto later = now + std::chrono::hours(1);
  ASSERT_TRUE(link.enqueue(two_bytes(0), later, kNoBound));
  EXPECT_FALSE(link.transmittable(now));
  EXPECT_EQ(link.next_eligible_at(), later);
  EXPECT_TRUE(link.transmittable(later));
}

// ---- FaultInjector ------------------------------------------------------

TEST(FaultInjector, DeterministicPerSeed) {
  FaultPlan plan;
  plan.link.drop_probability = 0.5;
  plan.link.delay_min_ms = 1;
  plan.link.delay_max_ms = 9;
  FaultInjector a(plan, 42);
  FaultInjector b(plan, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.should_drop(), b.should_drop());
    EXPECT_EQ(a.delay_ms(), b.delay_ms());
  }
}

TEST(FaultInjector, ZeroRatesAreSilent) {
  FaultInjector inj(FaultPlan{}, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.should_drop());
    EXPECT_EQ(inj.delay_ms(), 0u);
  }
}

TEST(FaultInjector, DelayStaysWithinBounds) {
  FaultPlan plan;
  plan.link.delay_min_ms = 3;
  plan.link.delay_max_ms = 7;
  FaultInjector inj(plan, 9);
  for (int i = 0; i < 500; ++i) {
    const auto d = inj.delay_ms();
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 7u);
  }
}

TEST(FaultInjector, DisconnectEventsFireOnce) {
  FaultPlan plan;
  plan.disconnects.push_back({.peer = 2, .after_delivered = 10});
  plan.disconnects.push_back({.peer = 4, .after_delivered = 10});
  plan.disconnects.push_back({.peer = 5, .after_delivered = 50});
  FaultInjector inj(plan, 1);
  EXPECT_TRUE(inj.due_disconnects(9).empty());
  const auto first = inj.due_disconnects(10);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_TRUE(inj.due_disconnects(10).empty());  // fired, never again
  const auto second = inj.due_disconnects(60);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 5u);
  EXPECT_TRUE(inj.due_disconnects(1000).empty());
}

// ---- Live two-node exchange --------------------------------------------

constexpr std::uint32_t kStreamLen = 200;

/// Sends kStreamLen numbered payloads to node 1, then decides.
class StreamSender final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (std::uint32_t i = 0; i < kStreamLen; ++i) {
      ctx.send(1, two_bytes(i));
    }
    ctx.decide(Value::one);
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

/// Verifies the numbered stream arrives exactly once, in order, from the
/// authenticated sender; decides when complete.
class StreamReceiver final : public sim::Process {
 public:
  void on_start(sim::Context&) override {}
  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    if (env.sender != 0 || env.payload.size() != 2) {
      ++violations;
      return;
    }
    const auto i = static_cast<std::uint32_t>(env.payload[0]) |
                   (static_cast<std::uint32_t>(env.payload[1]) << 8);
    if (i != received) {
      ++violations;  // out of order, duplicated, or lost-then-skipped
    }
    ++received;
    if (received == kStreamLen) {
      ctx.decide(Value::one);
    }
  }

  std::uint32_t received = 0;
  std::uint32_t violations = 0;
};

Cluster::ProcessFactory stream_factory() {
  return [](ProcessId id) -> std::unique_ptr<sim::Process> {
    if (id == 0) {
      return std::make_unique<StreamSender>();
    }
    return std::make_unique<StreamReceiver>();
  };
}

TEST(Transport, StreamSurvivesInjectedDisconnects) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 7;
  cfg.timeout_ms = 20000;
  // The receiver force-closes the link mid-stream, twice; reconnect +
  // go-back-N must hand the process an unbroken exactly-once stream.
  cfg.disconnects.push_back({1, {.peer = 0, .after_delivered = 40}});
  cfg.disconnects.push_back({1, {.peer = 0, .after_delivered = 120}});
  Cluster cluster(cfg, stream_factory());
  const ClusterResult result = cluster.run();
  ASSERT_TRUE(result.success())
      << "timed_out=" << result.timed_out
      << " node0_err=" << result.nodes[0].error
      << " node1_err=" << result.nodes[1].error;

  const auto& receiver =
      static_cast<const StreamReceiver&>(cluster.node(1).process());
  EXPECT_EQ(receiver.received, kStreamLen);
  EXPECT_EQ(receiver.violations, 0u);
  EXPECT_GE(result.total_reconnects, 1u);
}

TEST(Transport, StreamSurvivesDropInjection) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 11;
  cfg.timeout_ms = 20000;
  // Recovery of a burst-with-holes proceeds one go-back-N round per lost
  // prefix frame; a short RTO keeps the ~40 expected rounds fast.
  cfg.limits.retransmit_timeout_ms = 10;
  cfg.link_faults.drop_probability = 0.2;
  Cluster cluster(cfg, stream_factory());
  const ClusterResult result = cluster.run();
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;

  const auto& receiver =
      static_cast<const StreamReceiver&>(cluster.node(1).process());
  EXPECT_EQ(receiver.received, kStreamLen);
  EXPECT_EQ(receiver.violations, 0u);
  // With p=0.2 over 200 frames, drops are certain; every one of them must
  // have been recovered by a retransmission.
  const auto& sender_stats = cluster.node(0).stats();
  std::uint64_t drops = 0;
  std::uint64_t retransmits = 0;
  for (const PeerCounters& pc : sender_stats.peers) {
    drops += pc.drops_injected;
    retransmits += pc.retransmits;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GE(retransmits, drops);
}

// ---- Partial writes under tiny socket buffers ---------------------------

constexpr std::uint32_t kBigLen = 150;
constexpr std::size_t kBigPayload = 2048;

Bytes big_payload(std::uint32_t i) {
  Bytes b;
  b.resize(kBigPayload);
  b[0] = static_cast<std::byte>(i & 0xff);
  b[1] = static_cast<std::byte>((i >> 8) & 0xff);
  for (std::size_t j = 2; j < kBigPayload; ++j) {
    b[j] = static_cast<std::byte>((i + j) & 0xff);
  }
  return b;
}

/// Sends kBigLen payloads, each larger than the socket send buffer.
class BigStreamSender final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (std::uint32_t i = 0; i < kBigLen; ++i) {
      ctx.send(1, big_payload(i));
    }
    ctx.decide(Value::one);
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

/// Verifies order, exactly-once delivery, and byte-for-byte content.
class BigStreamReceiver final : public sim::Process {
 public:
  void on_start(sim::Context&) override {}
  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    if (env.sender != 0 || env.payload != big_payload(received)) {
      ++violations;
    }
    ++received;
    if (received == kBigLen) {
      ctx.decide(Value::one);
    }
  }

  std::uint32_t received = 0;
  std::uint32_t violations = 0;
};

// Frames larger than SO_SNDBUF force every writev to return short: the
// remainder must spill into the link's write buffer and resume on the
// next writability edge, without tearing or reordering frames — including
// across forced reconnects, where go-back-N replays from the last ack.
TEST(Transport, FramesSurviveShortWritesAndReconnects) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 13;
  cfg.timeout_ms = 20000;
  // A send buffer below one frame forces every sendmsg of a multi-frame
  // plan to return short (the kernel rounds the size up, but far below the
  // ~64 KiB a full WritevPlan gathers). The receive buffer stays at its
  // default: shrinking it too stalls on kernel TCP flow control (delayed
  // ACKs against a tiny window), which is not the path under test.
  cfg.limits.so_sndbuf = 2048;
  cfg.disconnects.push_back({1, {.peer = 0, .after_delivered = 30}});
  cfg.disconnects.push_back({1, {.peer = 0, .after_delivered = 90}});
  Cluster cluster(cfg, [](ProcessId id) -> std::unique_ptr<sim::Process> {
    if (id == 0) {
      return std::make_unique<BigStreamSender>();
    }
    return std::make_unique<BigStreamReceiver>();
  });
  const ClusterResult result = cluster.run();
  ASSERT_TRUE(result.success())
      << "timed_out=" << result.timed_out
      << " node0_err=" << result.nodes[0].error
      << " node1_err=" << result.nodes[1].error;

  const auto& receiver =
      static_cast<const BigStreamReceiver&>(cluster.node(1).process());
  EXPECT_EQ(receiver.received, kBigLen);
  EXPECT_EQ(receiver.violations, 0u);
  EXPECT_GE(result.total_reconnects, 1u);
}

TEST(Transport, DelayInjectionStillDeliversAll) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 3;
  cfg.timeout_ms = 20000;
  cfg.link_faults.delay_min_ms = 0;
  cfg.link_faults.delay_max_ms = 3;
  Cluster cluster(cfg, stream_factory());
  const ClusterResult result = cluster.run();
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  const auto& receiver =
      static_cast<const StreamReceiver&>(cluster.node(1).process());
  EXPECT_EQ(receiver.received, kStreamLen);
  EXPECT_EQ(receiver.violations, 0u);
}

}  // namespace
}  // namespace rcp::net
