// Frame codec: round-trips for every frame type and every core wire
// message, defensive rejection of malformed streams, and reassembly
// across arbitrary read fragmentation.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "baselines/benor.hpp"
#include "common/error.hpp"
#include "core/messages.hpp"
#include "net/frame.hpp"

namespace rcp::net {
namespace {

Bytes payload_of(std::initializer_list<int> values) {
  Bytes out;
  for (const int v : values) {
    out.push_back(static_cast<std::byte>(v));
  }
  return out;
}

std::optional<Frame> decode_one(const std::vector<std::byte>& wire) {
  FrameDecoder decoder;
  decoder.feed(wire);
  return decoder.next();
}

TEST(FrameCodec, HelloRoundTrip) {
  std::vector<std::byte> wire;
  append_hello(wire, /*node_id=*/4, /*n=*/7);
  const auto frame = decode_one(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::hello);
  EXPECT_EQ(frame->node_id, 4u);
  EXPECT_EQ(frame->n, 7u);
}

TEST(FrameCodec, DataRoundTripPreservesSeqAndPayload) {
  std::vector<std::byte> wire;
  const Bytes payload = payload_of({1, 2, 3, 250});
  append_data(wire, /*seq=*/0xdeadbeefcafeULL, payload);
  const auto frame = decode_one(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::data);
  EXPECT_EQ(frame->seq, 0xdeadbeefcafeULL);
  ASSERT_EQ(frame->payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         frame->payload.begin()));
}

TEST(FrameCodec, EmptyPayloadDataFrame) {
  std::vector<std::byte> wire;
  append_data(wire, 1, Bytes{});
  const auto frame = decode_one(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), 0u);
}

TEST(FrameCodec, AckRoundTrip) {
  std::vector<std::byte> wire;
  append_ack(wire, 991);
  const auto frame = decode_one(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::ack);
  EXPECT_EQ(frame->seq, 991u);
}

// Every typed message the protocols put on the wire survives the
// data-frame round trip bit-exactly: the transport may never corrupt or
// reinterpret protocol payloads.
TEST(FrameCodec, AllCoreMessageTypesRoundTrip) {
  std::vector<Bytes> payloads;
  payloads.push_back(
      core::FailStopMsg{.phase = 3, .value = Value::one, .cardinality = 4}
          .encode());
  payloads.push_back(core::EchoProtocolMsg{.is_echo = false,
                                           .from = 2,
                                           .value = Value::zero,
                                           .phase = 7}
                         .encode());
  payloads.push_back(core::EchoProtocolMsg{.is_echo = true,
                                           .from = 6,
                                           .value = Value::one,
                                           .phase = 9}
                         .encode());
  payloads.push_back(core::MajorityMsg{.phase = 11, .value = Value::one}
                         .encode());
  payloads.push_back(baselines::BenOrConsensus::encode_wire(
      {.stage = 1, .round = 5, .val = 2}));

  std::vector<std::byte> wire;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    append_data(wire, i + 1, payloads[i]);
  }

  FrameDecoder decoder;
  decoder.feed(wire);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(frame->seq, i + 1);
    ASSERT_EQ(frame->payload.size(), payloads[i].size());
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           frame->payload.begin()));
  }
  EXPECT_FALSE(decoder.next().has_value());

  // And the protocol decoders accept the transported bytes.
  FrameDecoder decoder2;
  decoder2.feed(wire);
  const auto f0 = decoder2.next();
  const auto msg = core::FailStopMsg::decode(f0->payload);
  EXPECT_EQ(msg.phase, 3u);
  EXPECT_EQ(msg.value, Value::one);
  EXPECT_EQ(msg.cardinality, 4u);
}

TEST(FrameCodec, TruncatedFrameYieldsNothingUntilCompleted) {
  std::vector<std::byte> wire;
  append_data(wire, 42, payload_of({9, 8, 7}));

  FrameDecoder decoder;
  // Feed all but the last byte: no frame yet, no throw.
  decoder.feed({wire.data(), wire.size() - 1});
  EXPECT_FALSE(decoder.next().has_value());
  // The final byte completes it.
  decoder.feed({wire.data() + wire.size() - 1, 1});
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 42u);
}

TEST(FrameCodec, PartialReadsAcrossBufferBoundaries) {
  // Many frames, fed one byte at a time: reassembly must be independent
  // of read fragmentation.
  std::vector<std::byte> wire;
  constexpr int kFrames = 50;
  for (int i = 1; i <= kFrames; ++i) {
    append_data(wire, static_cast<std::uint64_t>(i),
                payload_of({i & 0xff, (i * 7) & 0xff}));
  }
  FrameDecoder decoder;
  int decoded = 0;
  for (const std::byte b : wire) {
    decoder.feed({&b, 1});
    while (const auto frame = decoder.next()) {
      ++decoded;
      EXPECT_EQ(frame->seq, static_cast<std::uint64_t>(decoded));
    }
  }
  EXPECT_EQ(decoded, kFrames);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodec, OversizedLengthPrefixIsRejected) {
  std::vector<std::byte> wire;
  const std::uint32_t huge = kMaxFrameBody + 1;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<std::byte>((huge >> (8 * i)) & 0xff));
  }
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), DecodeError);
}

TEST(FrameCodec, ZeroLengthBodyIsRejected) {
  FrameDecoder decoder;
  const std::byte zeros[4] = {};
  decoder.feed(zeros);
  EXPECT_THROW((void)decoder.next(), DecodeError);
}

TEST(FrameCodec, UnknownFrameTypeIsRejected) {
  std::vector<std::byte> wire;
  wire.push_back(std::byte{1});  // body length 1
  wire.push_back(std::byte{0});
  wire.push_back(std::byte{0});
  wire.push_back(std::byte{0});
  wire.push_back(std::byte{99});  // no such type
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), DecodeError);
}

TEST(FrameCodec, HelloWithWrongMagicIsRejected) {
  std::vector<std::byte> wire;
  append_hello(wire, 1, 3);
  wire[5] = std::byte{0x00};  // corrupt the magic
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), DecodeError);
}

TEST(FrameCodec, HelloWithWrongVersionIsRejected) {
  std::vector<std::byte> wire;
  append_hello(wire, 1, 3);
  wire[9] = std::byte{0xee};  // corrupt the version byte
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), DecodeError);
}

TEST(FrameCodec, TruncatedHelloBodyIsRejected) {
  // A hello frame whose length claims fewer bytes than the layout needs.
  std::vector<std::byte> wire;
  append_hello(wire, 1, 3);
  wire[0] = std::byte{5};  // shrink the body length below kHelloBody
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), DecodeError);
}

TEST(FrameCodec, MixedStreamInterleavesTypes) {
  std::vector<std::byte> wire;
  append_hello(wire, 2, 5);
  append_data(wire, 1, payload_of({1}));
  append_ack(wire, 1);
  append_data(wire, 2, payload_of({2}));

  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_EQ(decoder.next()->type, FrameType::hello);
  EXPECT_EQ(decoder.next()->type, FrameType::data);
  EXPECT_EQ(decoder.next()->type, FrameType::ack);
  const auto last = decoder.next();
  EXPECT_EQ(last->type, FrameType::data);
  EXPECT_EQ(last->seq, 2u);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameCodec, LargestAllowedPayloadRoundTrips) {
  const Bytes big(kMaxFrameBody - 9, std::byte{0xab});  // body = 9 + payload
  std::vector<std::byte> wire;
  append_data(wire, 7, big);
  const auto frame = decode_one(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), big.size());
}

TEST(FrameCodec, BufferCompactionKeepsStreamIntact) {
  // Force the decoder through its compaction path (pos_ >= 4096) and
  // verify the stream stays aligned.
  FrameDecoder decoder;
  const Bytes payload(512, std::byte{0x5a});
  std::uint64_t next_seq = 1;
  std::uint64_t seen = 0;
  for (int round = 0; round < 40; ++round) {
    std::vector<std::byte> wire;
    append_data(wire, next_seq++, payload);
    decoder.feed(wire);
    while (const auto frame = decoder.next()) {
      ++seen;
      EXPECT_EQ(frame->seq, seen);
    }
  }
  EXPECT_EQ(seen, 40u);
}

}  // namespace
}  // namespace rcp::net
