// The adaptive retransmit timeout (RFC 6298 shape): SRTT/RTTVAR seeding
// and convergence, Karn's exclusion of retransmitted frames, exponential
// backoff, and the receiver-side spurious-retransmit classification.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>

#include "net/peer.hpp"

namespace rcp::net {
namespace {

using std::chrono::milliseconds;

constexpr std::size_t kNoBound = 1 << 20;

// Clock::time_point{} means "no measurement" to on_ack, so anchor the
// synthetic timeline an hour past the epoch.
Clock::time_point base() {
  return Clock::time_point{} + std::chrono::hours(1);
}

Bytes one_byte(std::uint32_t i) {
  Bytes b;
  b.push_back(static_cast<std::byte>(i & 0xff));
  return b;
}

PeerLink adaptive_link() {
  PeerLink link;
  link.init(1, {}, false);
  link.configure_rto(/*adaptive=*/true, /*initial_ms=*/100, /*min_ms=*/20,
                     /*max_ms=*/2000);
  return link;
}

/// Enqueues one frame at `at`, transmits it, and acks it `rtt` later.
void pump_sample(PeerLink& link, std::uint32_t i, Clock::time_point at,
                 milliseconds rtt) {
  ASSERT_TRUE(link.enqueue(one_byte(i), at, kNoBound, at));
  link.advance_unsent();
  link.on_ack(/*acked=*/i, at + rtt);
}

TEST(AdaptiveRto, InitialTimeoutAppliesUntilTheFirstSample) {
  PeerLink link = adaptive_link();
  EXPECT_FALSE(link.has_rtt_sample());
  EXPECT_EQ(link.rto_ms(), 100u);
}

TEST(AdaptiveRto, FirstSampleSeedsSrttAndRttvar) {
  PeerLink link = adaptive_link();
  pump_sample(link, 1, base(), milliseconds(40));
  ASSERT_TRUE(link.has_rtt_sample());
  // RFC 6298 seeding: srtt = S, rttvar = S/2, rto = srtt + 4*rttvar.
  EXPECT_NEAR(link.srtt_ms(), 40.0, 0.5);
  EXPECT_NEAR(link.rttvar_ms(), 20.0, 0.5);
  EXPECT_EQ(link.rto_ms(), 120u);
}

TEST(AdaptiveRto, SteadySamplesConvergeAndClampToTheFloor) {
  PeerLink link = adaptive_link();
  Clock::time_point at = base();
  for (std::uint32_t i = 1; i <= 64; ++i) {
    pump_sample(link, i, at, milliseconds(2));
    at += milliseconds(10);
  }
  // srtt -> 2ms, rttvar -> 0, so srtt + max(1, 4*rttvar) ~ 3ms clamps to
  // the 20ms floor — the RTO never chases a fast link below the minimum.
  EXPECT_NEAR(link.srtt_ms(), 2.0, 0.5);
  EXPECT_EQ(link.rto_ms(), 20u);
}

TEST(AdaptiveRto, SlowSamplesClampToTheCeiling) {
  PeerLink link = adaptive_link();
  pump_sample(link, 1, base(), milliseconds(10'000));
  EXPECT_EQ(link.rto_ms(), 2000u);
}

TEST(AdaptiveRto, FixedModeIgnoresSamples) {
  PeerLink link;
  link.init(1, {}, false);
  link.configure_rto(/*adaptive=*/false, 100, 20, 2000);
  pump_sample(link, 1, base(), milliseconds(3));
  EXPECT_EQ(link.rto_ms(), 100u);
}

TEST(AdaptiveRto, KarnExcludesRetransmittedFrames) {
  PeerLink link = adaptive_link();
  const Clock::time_point at = base();
  ASSERT_TRUE(link.enqueue(one_byte(1), at, kNoBound, at));
  ASSERT_TRUE(link.enqueue(one_byte(2), at, kNoBound, at));
  link.advance_unsent();
  link.advance_unsent();
  // Both frames go back for retransmission; their eventual acks are
  // ambiguous (old or new transmission?) and must not feed the estimator.
  link.rewind_unsent();
  EXPECT_EQ(link.counters.retransmits, 2u);
  link.on_ack(2, at + milliseconds(500));
  EXPECT_FALSE(link.has_rtt_sample());
  EXPECT_EQ(link.rto_ms(), 100u);
  // The next fresh frame samples normally again.
  pump_sample(link, 3, at + milliseconds(600), milliseconds(40));
  EXPECT_TRUE(link.has_rtt_sample());
}

TEST(AdaptiveRto, BackoffDoublesUpToTheCap) {
  PeerLink link = adaptive_link();
  pump_sample(link, 1, base(), milliseconds(40));
  ASSERT_EQ(link.rto_ms(), 120u);
  link.backoff_rto();
  EXPECT_EQ(link.rto_ms(), 240u);
  link.backoff_rto();
  EXPECT_EQ(link.rto_ms(), 480u);
  for (int i = 0; i < 8; ++i) {
    link.backoff_rto();
  }
  EXPECT_EQ(link.rto_ms(), 2000u);
  // A fresh sample re-derives the RTO from srtt/rttvar.
  pump_sample(link, 2, base() + milliseconds(100), milliseconds(40));
  EXPECT_LT(link.rto_ms(), 2000u);
}

TEST(AdaptiveRto, BackoffBeforeAnySampleIsANoOp) {
  PeerLink link = adaptive_link();
  link.backoff_rto();
  EXPECT_EQ(link.rto_ms(), 100u);
}

// ---- Receiver-side spurious-retransmit classification ------------------

TEST(SpuriousRetransmits, DuplicateWithoutLossContextIsSpurious) {
  PeerLink link = adaptive_link();
  EXPECT_EQ(link.classify_and_advance(1), 0);
  EXPECT_EQ(link.classify_and_advance(2), 0);
  // No gap was ever observed and no reconnect happened: the sender's
  // timer simply fired while our ack was in flight.
  EXPECT_EQ(link.classify_and_advance(1), -1);
  EXPECT_EQ(link.counters.dup_frames, 1u);
  EXPECT_EQ(link.counters.spurious_retransmits, 1u);
}

TEST(SpuriousRetransmits, DuplicatesDuringGapRecoveryAreNecessary) {
  PeerLink link = adaptive_link();
  EXPECT_EQ(link.classify_and_advance(1), 0);
  // Frame 2 was lost; 3 arrives ahead of stream.
  EXPECT_EQ(link.classify_and_advance(3), 1);
  // The rewind replays 1 before filling the gap — not spurious.
  EXPECT_EQ(link.classify_and_advance(1), -1);
  EXPECT_EQ(link.counters.spurious_retransmits, 0u);
  // In-order delivery resumes and closes the loss episode.
  EXPECT_EQ(link.classify_and_advance(2), 0);
  EXPECT_EQ(link.classify_and_advance(3), 0);
  // A later duplicate with no fresh gap is spurious again.
  EXPECT_EQ(link.classify_and_advance(3), -1);
  EXPECT_EQ(link.counters.spurious_retransmits, 1u);
}

TEST(SpuriousRetransmits, ReconnectRewindDuplicatesAreExpected) {
  PeerLink link = adaptive_link();
  EXPECT_EQ(link.classify_and_advance(1), 0);
  EXPECT_EQ(link.classify_and_advance(2), 0);
  // After a reconnect the sender must rewind to its first unacked frame;
  // replayed seqs are the protocol working as designed.
  link.expect_rewind_dups();
  EXPECT_EQ(link.classify_and_advance(1), -1);
  EXPECT_EQ(link.classify_and_advance(2), -1);
  EXPECT_EQ(link.counters.spurious_retransmits, 0u);
  // The first in-order delivery ends the grace window.
  EXPECT_EQ(link.classify_and_advance(3), 0);
  EXPECT_EQ(link.classify_and_advance(3), -1);
  EXPECT_EQ(link.counters.spurious_retransmits, 1u);
}

}  // namespace
}  // namespace rcp::net
