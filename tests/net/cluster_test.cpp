// Acceptance: the loopback cluster reaches unanimous decision for the
// paper's protocols under injected faults, and the net runtime agrees
// with the simulator on the checkable properties (all correct processes
// decide, agreement, validity).
#include <gtest/gtest.h>

#include <memory>

#include "adversary/byzantine.hpp"
#include "adversary/scenario.hpp"
#include "core/failstop.hpp"
#include "core/malicious.hpp"
#include "core/params.hpp"
#include "net/cluster.hpp"
#include "support/run_helpers.hpp"

namespace rcp::net {
namespace {

ClusterResult run_fig1(std::uint32_t ones, std::uint64_t seed,
                       bool inject_disconnects,
                       std::uint32_t loop_threads = 0,
                       Reactor::Backend backend = Reactor::Backend::automatic) {
  const core::ConsensusParams params{5, 2};
  const auto inputs = adversary::inputs_with_ones(params.n, ones);
  ClusterConfig cfg;
  cfg.n = params.n;
  cfg.seed = seed;
  cfg.timeout_ms = 20000;
  cfg.loop_threads = loop_threads;
  cfg.backend = backend;
  cfg.crashes.push_back({4, 1});  // one fail-stop crash entering phase 1
  if (inject_disconnects) {
    // Cut node 0 off from every live peer early: it cannot assemble
    // another n-k quorum until the links reconnect, so a decision
    // certifies that the disconnect/reconnect path really ran.
    cfg.disconnects.push_back({0, {.peer = 1, .after_delivered = 4}});
    cfg.disconnects.push_back({0, {.peer = 2, .after_delivered = 4}});
    cfg.disconnects.push_back({0, {.peer = 3, .after_delivered = 4}});
  }
  Cluster cluster(cfg, [&](ProcessId id) -> std::unique_ptr<sim::Process> {
    return core::FailStopConsensus::make(params, inputs[id]);
  });
  return cluster.run();
}

ClusterResult run_fig2(std::uint32_t ones, std::uint64_t seed,
                       bool inject_disconnects,
                       std::uint32_t loop_threads = 0,
                       Reactor::Backend backend = Reactor::Backend::automatic) {
  const core::ConsensusParams params{7, 2};
  const auto inputs = adversary::inputs_with_ones(params.n, ones);
  ClusterConfig cfg;
  cfg.n = params.n;
  cfg.seed = seed;
  cfg.timeout_ms = 20000;
  cfg.loop_threads = loop_threads;
  cfg.backend = backend;
  cfg.arbitrary_faulty.push_back(3);  // one silent Byzantine (k = 2 bound)
  if (inject_disconnects) {
    // Cut node 1 off from every correct peer: it cannot accept another
    // n-k messages until the links reconnect, so its decision certifies
    // the disconnect/reconnect path really ran.
    for (const ProcessId peer : {0u, 2u, 4u, 5u, 6u}) {
      cfg.disconnects.push_back({1, {.peer = peer, .after_delivered = 10}});
    }
  }
  Cluster cluster(cfg, [&](ProcessId id) -> std::unique_ptr<sim::Process> {
    if (id == 3) {
      return std::make_unique<adversary::SilentByzantine>();
    }
    return core::MaliciousConsensus::make(params, inputs[id]);
  });
  return cluster.run();
}

TEST(NetCluster, Fig1DecidesWithCrashAndDisconnects) {
  const ClusterResult result = run_fig1(/*ones=*/2, /*seed=*/1,
                                        /*inject_disconnects=*/true);
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_TRUE(result.agreement);
  ASSERT_TRUE(result.value.has_value());
  // The injected disconnects actually happened and were healed.
  EXPECT_GE(result.total_reconnects, 1u);
  // The crashed node is reported as such and is exempt from agreement.
  EXPECT_TRUE(result.nodes[4].crashed);
}

TEST(NetCluster, Fig2DecidesWithSilentByzantineAndDisconnects) {
  const ClusterResult result = run_fig2(/*ones=*/3, /*seed=*/1,
                                        /*inject_disconnects=*/true);
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_TRUE(result.agreement);
  ASSERT_TRUE(result.value.has_value());
  EXPECT_GE(result.total_reconnects, 1u);
  EXPECT_FALSE(result.nodes[3].decision.has_value());  // silent node
}

// Validity: when every correct process proposes v, both the simulator and
// the net runtime must decide exactly v — the decided values match.
TEST(NetCluster, SimNetEquivalenceFig1UnanimousInputs) {
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::fail_stop;
  s.params = {5, 2};
  s.inputs = adversary::inputs_with_ones(5, 5);
  s.seed = 1;
  s.crashes.add_phase_crash(4, 1);
  const auto sim_out = test::run_scenario(s);
  ASSERT_EQ(sim_out.status, sim::RunStatus::all_decided);
  ASSERT_TRUE(sim_out.agreement);
  ASSERT_TRUE(sim_out.value.has_value());
  EXPECT_EQ(*sim_out.value, Value::one);

  const ClusterResult net_out = run_fig1(/*ones=*/5, /*seed=*/1,
                                         /*inject_disconnects=*/true);
  ASSERT_TRUE(net_out.success()) << "timed_out=" << net_out.timed_out;
  ASSERT_TRUE(net_out.value.has_value());
  EXPECT_EQ(*net_out.value, *sim_out.value);
}

TEST(NetCluster, SimNetEquivalenceFig2UnanimousInputs) {
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = adversary::inputs_with_ones(7, 7);
  s.seed = 1;
  s.byzantine_kind = adversary::ByzantineKind::silent;
  s.byzantine_ids = {3};
  const auto sim_out = test::run_scenario(s);
  ASSERT_EQ(sim_out.status, sim::RunStatus::all_decided);
  ASSERT_TRUE(sim_out.agreement);
  ASSERT_TRUE(sim_out.value.has_value());
  EXPECT_EQ(*sim_out.value, Value::one);

  const ClusterResult net_out = run_fig2(/*ones=*/7, /*seed=*/1,
                                         /*inject_disconnects=*/true);
  ASSERT_TRUE(net_out.success()) << "timed_out=" << net_out.timed_out;
  ASSERT_TRUE(net_out.value.has_value());
  EXPECT_EQ(*net_out.value, *sim_out.value);
}

// Mixed inputs: the decided value is free (asynchrony picks it), but both
// runtimes must uphold decision + agreement, and the value must be one of
// the proposed values.
TEST(NetCluster, SimNetEquivalenceMixedInputsPropertiesHold) {
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::malicious;
  s.params = {7, 2};
  s.inputs = adversary::inputs_with_ones(7, 3);
  s.seed = 5;
  s.byzantine_kind = adversary::ByzantineKind::silent;
  s.byzantine_ids = {3};
  const auto sim_out = test::run_scenario(s);
  EXPECT_EQ(sim_out.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(sim_out.agreement);

  const ClusterResult net_out = run_fig2(/*ones=*/3, /*seed=*/5,
                                         /*inject_disconnects=*/false);
  ASSERT_TRUE(net_out.success()) << "timed_out=" << net_out.timed_out;
  ASSERT_TRUE(net_out.value.has_value());
  // Both 0s and 1s were proposed, so any binary value is valid; the
  // meaningful check is that every correct node converged on one of them.
  EXPECT_TRUE(*net_out.value == Value::zero || *net_out.value == Value::one);
}

// ---- Shared-loop mode ---------------------------------------------------
// One reactor thread driving several nodes must be behaviorally identical
// to thread-per-node: the same fault scenarios decide with the same
// checkable properties, on both readiness backends.

TEST(NetClusterSharedLoop, Fig1DecidesOnPollBackend) {
  const ClusterResult result =
      run_fig1(/*ones=*/2, /*seed=*/1, /*inject_disconnects=*/true,
               /*loop_threads=*/2, Reactor::Backend::poll);
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_TRUE(result.agreement);
  EXPECT_GE(result.total_reconnects, 1u);
  EXPECT_TRUE(result.nodes[4].crashed);
}

TEST(NetClusterSharedLoop, Fig1DecidesOnEpollBackend) {
  if (!Reactor::epoll_available()) {
    GTEST_SKIP() << "no epoll on this platform";
  }
  const ClusterResult result =
      run_fig1(/*ones=*/2, /*seed=*/1, /*inject_disconnects=*/true,
               /*loop_threads=*/2, Reactor::Backend::epoll);
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_TRUE(result.agreement);
  EXPECT_GE(result.total_reconnects, 1u);
  EXPECT_TRUE(result.nodes[4].crashed);
}

TEST(NetClusterSharedLoop, Fig2DecidesOnPollBackend) {
  const ClusterResult result =
      run_fig2(/*ones=*/3, /*seed=*/1, /*inject_disconnects=*/true,
               /*loop_threads=*/3, Reactor::Backend::poll);
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_TRUE(result.agreement);
  EXPECT_FALSE(result.nodes[3].decision.has_value());
}

TEST(NetClusterSharedLoop, Fig2DecidesOnEpollBackend) {
  if (!Reactor::epoll_available()) {
    GTEST_SKIP() << "no epoll on this platform";
  }
  const ClusterResult result =
      run_fig2(/*ones=*/3, /*seed=*/1, /*inject_disconnects=*/true,
               /*loop_threads=*/3, Reactor::Backend::epoll);
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_TRUE(result.agreement);
  EXPECT_FALSE(result.nodes[3].decision.has_value());
}

// A single-thread loop drives the whole cluster: the strictest test of the
// runtime's fairness — any node starving another would deadlock consensus.
TEST(NetClusterSharedLoop, SingleLoopThreadDrivesWholeCluster) {
  const ClusterResult result =
      run_fig2(/*ones=*/7, /*seed=*/2, /*inject_disconnects=*/false,
               /*loop_threads=*/1);
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, Value::one);  // validity under unanimous inputs
}

// n=100 smoke: a full mesh (~10k sockets) multiplexed onto 4 loop threads.
// The generous timeout absorbs sanitizer slowdowns; uncontended runs
// converge in about a second.
TEST(NetClusterSharedLoop, HundredNodesConvergeOnFourLoopThreads) {
  const core::ConsensusParams params{100, 33};
  const auto inputs = adversary::inputs_with_ones(params.n, params.n);
  ClusterConfig cfg;
  cfg.n = params.n;
  cfg.seed = 1;
  cfg.timeout_ms = 240000;
  cfg.loop_threads = 4;
  Cluster cluster(cfg, [&](ProcessId id) -> std::unique_ptr<sim::Process> {
    return core::FailStopConsensus::make(params, inputs[id]);
  });
  const ClusterResult result = cluster.run();
  ASSERT_TRUE(result.success()) << "timed_out=" << result.timed_out;
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_TRUE(result.agreement);
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, Value::one);
}

// The same cluster config is rerunnable: ephemeral ports mean back-to-back
// runs (and parallel ctest invocations) never collide.
TEST(NetCluster, BackToBackRunsDoNotCollide) {
  for (int round = 0; round < 2; ++round) {
    const ClusterResult result =
        run_fig1(/*ones=*/2, /*seed=*/static_cast<std::uint64_t>(round + 1),
                 /*inject_disconnects=*/false);
    ASSERT_TRUE(result.success())
        << "round " << round << " timed_out=" << result.timed_out;
  }
}

}  // namespace
}  // namespace rcp::net
