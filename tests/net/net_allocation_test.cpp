// The allocation contract of the net send path (docs/PERF.md "Network
// runtime"): once a link's ring is warm, the steady-state send cycle —
// enqueue, WritevPlan::build, commit, cumulative-ack release with latency
// recording — performs zero heap allocations. Frames are gathered in place
// from the ring (header bytes precomputed at enqueue), so there is no
// per-send serialization, and protocol-sized payloads stay in the inline
// Bytes capacity.
//
// The binary-wide operator new override counts every allocation; each test
// snapshots before/after deltas. (Same instrument as
// tests/core/echo_allocation_test.cpp, which lives in a different test
// binary.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/payload.hpp"
#include "net/peer.hpp"
#include "net/stats.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rcp::net {
namespace {

constexpr std::size_t kNoBound = 1 << 20;
constexpr std::uint32_t kBatch = 16;

Bytes small_payload(std::uint32_t i) {
  Bytes b;
  b.push_back(static_cast<std::byte>(i & 0xff));
  b.push_back(static_cast<std::byte>((i >> 8) & 0xff));
  return b;
}

/// One steady-state round: a batch of enqueues, drain the queue through
/// build/commit with `written` bytes granted per sendmsg, then the
/// cumulative ack that releases the batch and records its latency.
void drive_round(PeerLink& link, WritevPlan& plan, LatencyHistogram& hist,
                 std::uint64_t& acked, bool partial_writes) {
  const auto now = Clock::now();
  for (std::uint32_t i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(link.enqueue(small_payload(i), now, kNoBound, now));
  }
  while (true) {
    plan.build(link, now, /*include_frames=*/true, [] { return false; });
    if (plan.empty()) {
      break;
    }
    // A partial write commits a prefix and spills the torn frame's
    // remainder into write_buf; the next build resumes from that tail.
    const std::size_t written = partial_writes
                                    ? (plan.total_bytes() + 1) / 2
                                    : plan.total_bytes();
    (void)plan.commit(link, written);
  }
  acked += kBatch;
  link.on_ack(acked, now, &hist);
  EXPECT_EQ(link.queue_depth(), 0u);
}

TEST(NetAllocation, SendPathSteadyStateIsAllocationFree) {
  PeerLink link;
  link.init(1, {}, false);
  WritevPlan plan;
  LatencyHistogram hist;
  std::uint64_t acked = 0;
  for (int round = 0; round < 4; ++round) {
    drive_round(link, plan, hist, acked, /*partial_writes=*/false);
  }
  const std::uint64_t before = g_allocations.load();
  const std::uint64_t payload_before = Payload::heap_allocation_count();
  for (int round = 0; round < 100; ++round) {
    drive_round(link, plan, hist, acked, /*partial_writes=*/false);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "warm enqueue/build/commit/ack must not touch the heap";
  EXPECT_EQ(Payload::heap_allocation_count() - payload_before, 0u)
      << "protocol-sized payloads must stay inline";
  EXPECT_EQ(hist.count(), acked);
}

TEST(NetAllocation, PartialWriteSpillSteadyStateIsAllocationFree) {
  PeerLink link;
  link.init(1, {}, false);
  WritevPlan plan;
  LatencyHistogram hist;
  std::uint64_t acked = 0;
  // Warm rounds grow the ring and give write_buf its spill capacity.
  for (int round = 0; round < 4; ++round) {
    drive_round(link, plan, hist, acked, /*partial_writes=*/true);
  }
  const std::uint64_t before = g_allocations.load();
  for (int round = 0; round < 100; ++round) {
    drive_round(link, plan, hist, acked, /*partial_writes=*/true);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "short-write spill and resume must not touch the heap";
}

TEST(NetAllocation, RetransmitRewindIsAllocationFree) {
  PeerLink link;
  link.init(1, {}, false);
  WritevPlan plan;
  LatencyHistogram hist;
  std::uint64_t acked = 0;
  for (int round = 0; round < 4; ++round) {
    drive_round(link, plan, hist, acked, /*partial_writes=*/false);
  }
  const auto now = Clock::now();
  for (std::uint32_t i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(link.enqueue(small_payload(i), now, kNoBound, now));
  }
  const std::uint64_t before = g_allocations.load();
  // Go-back-N: send the window, rewind as a timeout would, resend, ack.
  for (int round = 0; round < 50; ++round) {
    plan.build(link, now, /*include_frames=*/true, [] { return false; });
    (void)plan.commit(link, plan.total_bytes());
    link.rewind_unsent();
  }
  plan.build(link, now, /*include_frames=*/true, [] { return false; });
  (void)plan.commit(link, plan.total_bytes());
  acked += kBatch;
  link.on_ack(acked, now, &hist);
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "rewind and retransmission must not touch the heap";
  EXPECT_EQ(link.queue_depth(), 0u);
}

}  // namespace
}  // namespace rcp::net
