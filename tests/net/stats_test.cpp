// LatencyHistogram edge cases: empty and single-sample quantiles, the
// saturating top bucket, and merging histograms with disjoint ranges.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "net/stats.hpp"

namespace rcp::net {
namespace {

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ms(), 0.0);
  EXPECT_EQ(h.quantile_ms(0.0), 0.0);
  EXPECT_EQ(h.quantile_ms(0.5), 0.0);
  EXPECT_EQ(h.quantile_ms(1.0), 0.0);
}

TEST(LatencyHistogram, SingleSampleLandsInItsBucket) {
  LatencyHistogram h;
  h.record(1'500'000);  // 1.5ms -> bucket [2^20, 2^21) ns
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 1.5);
  // Every quantile interpolates inside the one occupied bucket, so the
  // answer is bounded by the bucket edges (~1.05ms .. ~2.10ms).
  for (const double q : {0.01, 0.50, 0.99, 1.0}) {
    const double ms = h.quantile_ms(q);
    EXPECT_GE(ms, (1u << 20) / 1e6) << q;
    EXPECT_LE(ms, (1u << 21) / 1e6) << q;
  }
}

TEST(LatencyHistogram, ZeroSampleUsesTheBottomBucket) {
  LatencyHistogram h;
  h.record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 0.0);
  // Bucket 0 spans [1, 2) ns after interpolation — effectively zero ms.
  EXPECT_LE(h.quantile_ms(0.5), 2.0 / 1e6);
}

TEST(LatencyHistogram, TopBucketSaturatesInsteadOfOverflowing) {
  LatencyHistogram h;
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 1u);
  // The sample lands in bucket 63; the bucket ceiling saturates at the
  // uint64 range instead of shifting past it.
  const double ms = h.quantile_ms(0.99);
  EXPECT_GE(ms, static_cast<double>(std::uint64_t{1} << 63) / 1e6);
  EXPECT_LE(ms,
            static_cast<double>(std::numeric_limits<std::uint64_t>::max()) /
                1e6);
}

TEST(LatencyHistogram, MergeOfDisjointRangesKeepsBothTails) {
  LatencyHistogram fast;
  LatencyHistogram slow;
  for (int i = 0; i < 99; ++i) {
    fast.record(1'000);  // 1us
  }
  slow.record(1'000'000'000);  // 1s

  LatencyHistogram merged;
  merged.merge(fast);
  merged.merge(slow);
  EXPECT_EQ(merged.count(), 100u);
  // The mean mixes both populations exactly.
  EXPECT_NEAR(merged.mean_ms(), (99.0 * 1e3 + 1e9) / 100.0 / 1e6, 1e-9);
  // p50 stays with the fast majority; p999 reaches the slow outlier.
  EXPECT_LT(merged.quantile_ms(0.50), 1.0);
  EXPECT_GE(merged.quantile_ms(0.999), 512.0);
}

TEST(LatencyHistogram, MergeIntoEmptyEqualsTheSource) {
  LatencyHistogram src;
  src.record(42'000);
  src.record(99'000);
  LatencyHistogram dst;
  dst.merge(src);
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_DOUBLE_EQ(dst.mean_ms(), src.mean_ms());
  EXPECT_DOUBLE_EQ(dst.quantile_ms(0.5), src.quantile_ms(0.5));
}

}  // namespace
}  // namespace rcp::net
