// Tape semantics: the cursor's explicit-then-fallback contract and the
// fixed decode rules both policy halves apply (part of the plan format —
// changing them invalidates every checked-in .plan golden).
#include "fuzz/tape.hpp"

#include <gtest/gtest.h>

#include "common/envelope.hpp"
#include "sim/mailbox.hpp"

namespace rcp::fuzz {
namespace {

TEST(TapeCursor, ServesExplicitTapeThenFallbackStream) {
  TapeCursor cursor({11, 22, 33}, /*fallback_seed=*/99);
  EXPECT_EQ(cursor.next(), 11u);
  EXPECT_EQ(cursor.next(), 22u);
  EXPECT_EQ(cursor.next(), 33u);
  EXPECT_EQ(cursor.consumed(), 3u);
  EXPECT_EQ(cursor.fallback_draws(), 0u);

  // Fallback values are the SplitMix64 stream from the seed, truncated.
  std::uint64_t state = 99;
  const auto expected0 = static_cast<std::uint32_t>(splitmix64(state));
  const auto expected1 = static_cast<std::uint32_t>(splitmix64(state));
  EXPECT_EQ(cursor.next(), expected0);
  EXPECT_EQ(cursor.next(), expected1);
  EXPECT_EQ(cursor.fallback_draws(), 2u);
  EXPECT_EQ(cursor.consumed(), 3u);
}

TEST(TapeCursor, EmptyTapeIsPureFallback) {
  TapeCursor cursor({}, 7);
  std::uint64_t state = 7;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cursor.next(), static_cast<std::uint32_t>(splitmix64(state)));
  }
  EXPECT_EQ(cursor.consumed(), 0u);
  EXPECT_EQ(cursor.fallback_draws(), 8u);
}

TEST(TapeScheduler, PicksEligibleByModulo) {
  auto cursor = std::make_shared<TapeCursor>(
      std::vector<std::uint32_t>{0, 1, 5, 7}, 0);
  TapeScheduler scheduler(cursor);
  Rng rng(1);  // unused by the policy
  const ProcessId eligible[] = {2, 4, 9};
  EXPECT_EQ(scheduler.pick(eligible, rng), 2);  // 0 % 3 -> 2
  EXPECT_EQ(scheduler.pick(eligible, rng), 4);  // 1 % 3 -> 4
  EXPECT_EQ(scheduler.pick(eligible, rng), 9);  // 5 % 3 -> 9
  EXPECT_EQ(scheduler.pick(eligible, rng), 4);  // 7 % 3 -> 4
}

TEST(TapeDelivery, DecodesPhiFromLowByteAndIndexFromHighBits) {
  // phi_weight 16: low byte < 16 means phi (arbitrarily delayed delivery);
  // otherwise the mailbox index is (v >> 8) % size.
  auto cursor = std::make_shared<TapeCursor>(
      std::vector<std::uint32_t>{
          15,                   // low byte 15 < 16 -> phi
          16 | (5U << 8),       // low byte 16 -> index 5 % 3 = 2
          255 | (1U << 8),      // low byte 255 -> index 1
      },
      0);
  TapeDelivery delivery(cursor, /*phi_weight=*/16);
  Rng rng(1);
  sim::Mailbox box;
  for (std::uint64_t s = 0; s < 3; ++s) {
    box.push(Envelope{
        .sender = 0, .receiver = 1, .payload = {}, .sent_at_step = 0,
        .seq = s});
  }
  EXPECT_EQ(delivery.pick(1, box, 0, rng), std::nullopt);
  EXPECT_EQ(delivery.pick(1, box, 0, rng), std::optional<std::size_t>(2));
  EXPECT_EQ(delivery.pick(1, box, 0, rng), std::optional<std::size_t>(1));
}

TEST(TapeDelivery, ZeroPhiWeightNeverDelays) {
  auto cursor = std::make_shared<TapeCursor>(
      std::vector<std::uint32_t>{0, 1, 2, 3}, 0);
  TapeDelivery delivery(cursor, /*phi_weight=*/0);
  Rng rng(1);
  sim::Mailbox box;
  box.push(Envelope{
      .sender = 0, .receiver = 1, .payload = {}, .sent_at_step = 0,
      .seq = 0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(delivery.pick(1, box, 0, rng), std::optional<std::size_t>(0));
  }
}

TEST(TapePolicies, ShareOneCursor) {
  TapePolicies policies = make_tape_policies({1, 2, 3}, 4, 16);
  Rng rng(1);
  const ProcessId eligible[] = {0, 1};
  (void)policies.scheduler->pick(eligible, rng);  // consumes tape[0]
  sim::Mailbox box;
  box.push(Envelope{
      .sender = 0, .receiver = 1, .payload = {}, .sent_at_step = 0,
      .seq = 0});
  (void)policies.delivery->pick(1, box, 0, rng);  // consumes tape[1]
  EXPECT_EQ(policies.cursor->consumed(), 2u);
}

}  // namespace
}  // namespace rcp::fuzz
