// execute(): pure-function-of-plan-bytes semantics and the coverage
// signals the corpus rewards.
#include "fuzz/executor.hpp"

#include <gtest/gtest.h>

#include "fuzz/plan.hpp"

namespace rcp::fuzz {
namespace {

SchedulePlan basic_plan(adversary::ProtocolKind protocol, std::uint32_t n,
                        std::uint32_t k) {
  SchedulePlan p;
  p.spec.protocol = protocol;
  p.spec.params = {n, k};
  for (std::uint32_t i = 0; i < n; ++i) {
    p.spec.inputs.push_back(i % 2 == 0 ? Value::zero : Value::one);
  }
  p.spec.seed = 42;
  p.tape_seed = 1234;
  return p;
}

TEST(Executor, FaultFreeMaliciousRunDecidesWithAgreement) {
  const SchedulePlan p = basic_plan(adversary::ProtocolKind::malicious, 7, 2);
  const ExecResult r = execute(p);
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(r.agreement);
  ASSERT_TRUE(r.agreed_value.has_value());
  EXPECT_GT(r.steps, 0u);
  EXPECT_GT(r.messages_sent, 0u);
  // Deciding means some probe saw an echo tally on the quorum edge.
  EXPECT_TRUE(r.quorum_boundary);
  EXPECT_NE(r.coverage_key, 0u);
}

TEST(Executor, FaultFreeFailStopRunDecides) {
  const SchedulePlan p = basic_plan(adversary::ProtocolKind::fail_stop, 5, 1);
  const ExecResult r = execute(p);
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(r.agreement);
}

TEST(Executor, ExecutionIsAPureFunctionOfThePlan) {
  const SchedulePlan p = basic_plan(adversary::ProtocolKind::malicious, 7, 2);
  const ExecResult a = execute(p);
  const ExecResult b = execute(p);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.state_digest, b.state_digest);
  EXPECT_EQ(a.coverage_key, b.coverage_key);
}

TEST(Executor, TapeSeedChangesTheSchedule) {
  const SchedulePlan p = basic_plan(adversary::ProtocolKind::malicious, 7, 2);
  SchedulePlan q = p;
  q.tape_seed ^= 0x5555;
  EXPECT_NE(execute(p).trace_digest, execute(q).trace_digest);
}

TEST(Executor, ExplicitTapePrefixChangesTheSchedule) {
  const SchedulePlan p = basic_plan(adversary::ProtocolKind::malicious, 7, 2);
  SchedulePlan q = p;
  // A long alternating prefix steers scheduling away from the fallback run.
  for (std::uint32_t i = 0; i < 64; ++i) {
    q.tape.push_back(i * 7919U);
  }
  EXPECT_NE(execute(p).trace_digest, execute(q).trace_digest);
}

TEST(Executor, StepLimitIsClassified) {
  SchedulePlan p = basic_plan(adversary::ProtocolKind::malicious, 7, 2);
  p.spec.max_steps = 8;  // far too few to decide
  const ExecResult r = execute(p);
  EXPECT_EQ(r.status, sim::RunStatus::step_limit);
  EXPECT_LE(r.steps, 8u);
}

TEST(Executor, MatchesExpectIsVacuousWithoutAnExpectLine) {
  const SchedulePlan p = basic_plan(adversary::ProtocolKind::malicious, 7, 2);
  EXPECT_TRUE(matches_expect(execute(p), p));
}

TEST(Executor, MatchesExpectComparesAllFourFields) {
  SchedulePlan p = basic_plan(adversary::ProtocolKind::malicious, 7, 2);
  const ExecResult r = execute(p);
  p.expect.present = true;
  p.expect.status = r.status;
  p.expect.steps = r.steps;
  p.expect.trace_digest = r.trace_digest;
  p.expect.state_digest = r.state_digest;
  EXPECT_TRUE(matches_expect(r, p));
  p.expect.state_digest ^= 1;
  EXPECT_FALSE(matches_expect(r, p));
}

}  // namespace
}  // namespace rcp::fuzz
