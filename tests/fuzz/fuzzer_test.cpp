// The fuzzing loop's headline guarantee: bit-reproducible at any thread
// count — identical corpus/coverage digests and a byte-identical
// rcp-fuzz-v1 report — plus golden emission that replays.
#include "fuzz/fuzzer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fuzz/executor.hpp"

namespace rcp::fuzz {
namespace {

FuzzConfig small_config(std::uint32_t threads) {
  FuzzConfig cfg;
  cfg.protocol = adversary::ProtocolKind::malicious;
  cfg.params = {7, 2};
  cfg.seed = 42;
  cfg.budget = 96;
  cfg.batch = 16;
  cfg.threads = threads;
  cfg.minimize = true;
  cfg.minimize_attempts = 16;
  cfg.max_emit = 4;
  return cfg;
}

TEST(Fuzzer, BitReproducibleAcrossThreadCounts) {
  const FuzzOutcome one = Fuzzer(small_config(1)).run();
  const FuzzOutcome eight = Fuzzer(small_config(8)).run();

  EXPECT_EQ(one.stats.executions, eight.stats.executions);
  EXPECT_EQ(one.corpus.size(), eight.corpus.size());
  EXPECT_EQ(one.corpus.digest(), eight.corpus.digest());
  EXPECT_EQ(one.coverage.size(), eight.coverage.size());
  EXPECT_EQ(one.coverage.digest(), eight.coverage.digest());

  // The rcp-fuzz-v1 report has no thread/time fields: byte-identical.
  std::ostringstream a;
  std::ostringstream b;
  write_report(a, small_config(1), one);
  write_report(b, small_config(8), eight);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Fuzzer, DifferentSeedsExploreDifferently) {
  FuzzConfig other = small_config(4);
  other.seed = 43;
  const FuzzOutcome a = Fuzzer(small_config(4)).run();
  const FuzzOutcome b = Fuzzer(other).run();
  EXPECT_NE(a.corpus.digest(), b.corpus.digest());
}

TEST(Fuzzer, RunsAtLeastTheBudgetInWholeBatches) {
  const FuzzOutcome out = Fuzzer(small_config(2)).run();
  EXPECT_GE(out.stats.executions, 96u);
  EXPECT_EQ(out.stats.executions,
            out.stats.decided + out.stats.quiescent + out.stats.step_limit);
}

TEST(Fuzzer, EmitsMinimizedGoldensThatReplay) {
  const FuzzOutcome out = Fuzzer(small_config(4)).run();
  ASSERT_FALSE(out.emitted.empty());
  for (const EmittedPlan& e : out.emitted) {
    ASSERT_TRUE(e.plan.expect.present) << e.signal;
    const ExecResult r = execute(e.plan);
    EXPECT_TRUE(matches_expect(r, e.plan)) << e.signal;
    // Round-trip through the text format preserves the golden.
    const SchedulePlan reparsed =
        SchedulePlan::parse_string(e.plan.serialize());
    EXPECT_TRUE(matches_expect(execute(reparsed), reparsed)) << e.signal;
    // The file name embeds protocol, signal class and content hash.
    EXPECT_NE(e.file_name().find("fuzz_fig2_" + e.signal), std::string::npos)
        << e.file_name();
  }
}

TEST(Fuzzer, FindsTheQuorumBoundary) {
  // The acceptance bar for the subsystem: a small budget already surfaces
  // and emits a quorum-boundary schedule (or a rarer, higher-priority one).
  const FuzzOutcome out = Fuzzer(small_config(4)).run();
  EXPECT_GT(out.stats.quorum_boundary, 0u);
  bool emitted_boundary_class = false;
  for (const EmittedPlan& e : out.emitted) {
    emitted_boundary_class =
        emitted_boundary_class || e.result.quorum_boundary;
  }
  EXPECT_TRUE(emitted_boundary_class);
}

TEST(Fuzzer, FailStopConfigurationRuns) {
  FuzzConfig cfg = small_config(2);
  cfg.protocol = adversary::ProtocolKind::fail_stop;
  cfg.params = {5, 2};
  cfg.budget = 48;
  const FuzzOutcome out = Fuzzer(cfg).run();
  EXPECT_GE(out.stats.executions, 48u);
  EXPECT_EQ(out.stats.agreement_violations, 0u);
}

}  // namespace
}  // namespace rcp::fuzz
