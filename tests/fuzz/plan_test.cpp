// SchedulePlan: canonical serialization round-trip, structural validation,
// and parser diagnostics (the rcp-plan-v1 grammar is the golden-scenario
// format; see docs/FUZZ.md).
#include "fuzz/plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rcp::fuzz {
namespace {

/// A plan exercising every serialized section at once.
SchedulePlan rich_plan() {
  SchedulePlan p;
  p.spec.protocol = adversary::ProtocolKind::malicious;
  p.spec.params = {7, 2};
  p.spec.inputs = {Value::zero, Value::one, Value::one, Value::zero,
                   Value::one,  Value::zero, Value::one};
  p.spec.byzantine_ids = {1, 4};
  p.spec.byzantine_kind = adversary::ByzantineKind::scripted;
  p.spec.moves = {{Value::zero, Value::one, 100, 2},
                  {Value::one, Value::zero, 200, 0}};
  p.spec.crashes.push_back(
      {.victim = 3, .by_phase = false, .at_step = 120, .at_phase = 0});
  p.spec.crashes.push_back(
      {.victim = 5, .by_phase = true, .at_step = 0, .at_phase = 2});
  p.spec.seed = 0xdeadbeefULL;
  p.spec.max_steps = 40'000;
  p.spec.phi_weight = 32;
  p.spec.net_drop_permille = 50;
  p.spec.net_delay_max_ms = 7;
  p.spec.net_disconnects = 2;
  p.tape_seed = 0x1234'5678'9abc'def0ULL;
  for (std::uint32_t i = 0; i < 40; ++i) {
    p.tape.push_back(i * 2654435761U);
  }
  p.expect.present = true;
  p.expect.status = sim::RunStatus::all_decided;
  p.expect.steps = 777;
  p.expect.trace_digest = 0x0123456789abcdefULL;
  p.expect.state_digest = 0xfedcba9876543210ULL;
  return p;
}

TEST(Plan, SerializeParseRoundTripsByteIdentically) {
  const SchedulePlan p = rich_plan();
  const std::string text = p.serialize();
  const SchedulePlan q = SchedulePlan::parse_string(text);
  EXPECT_EQ(q.serialize(), text);

  EXPECT_EQ(q.spec.protocol, p.spec.protocol);
  EXPECT_EQ(q.spec.params.n, p.spec.params.n);
  EXPECT_EQ(q.spec.params.k, p.spec.params.k);
  EXPECT_EQ(q.spec.inputs, p.spec.inputs);
  EXPECT_EQ(q.spec.byzantine_ids, p.spec.byzantine_ids);
  EXPECT_EQ(q.spec.byzantine_kind, p.spec.byzantine_kind);
  ASSERT_EQ(q.spec.moves.size(), p.spec.moves.size());
  EXPECT_EQ(q.spec.moves[0].split256, 100);
  EXPECT_EQ(q.spec.moves[1].echo_mode, 0);
  ASSERT_EQ(q.spec.crashes.size(), 2u);
  EXPECT_FALSE(q.spec.crashes[0].by_phase);
  EXPECT_EQ(q.spec.crashes[0].victim, 3);
  EXPECT_TRUE(q.spec.crashes[1].by_phase);
  EXPECT_EQ(q.spec.seed, p.spec.seed);
  EXPECT_EQ(q.spec.phi_weight, p.spec.phi_weight);
  EXPECT_EQ(q.spec.net_drop_permille, 50u);
  EXPECT_EQ(q.tape_seed, p.tape_seed);
  EXPECT_EQ(q.tape, p.tape);
  EXPECT_TRUE(q.expect.present);
  EXPECT_EQ(q.expect.steps, 777u);
  EXPECT_EQ(q.expect.trace_digest, p.expect.trace_digest);
  EXPECT_EQ(q.expect.state_digest, p.expect.state_digest);
}

TEST(Plan, MinimalPlanRoundTrips) {
  SchedulePlan p;
  p.spec.protocol = adversary::ProtocolKind::fail_stop;
  p.spec.params = {3, 1};
  p.spec.inputs = {Value::one, Value::zero, Value::one};
  const std::string text = p.serialize();
  const SchedulePlan q = SchedulePlan::parse_string(text);
  EXPECT_EQ(q.serialize(), text);
  EXPECT_FALSE(q.expect.present);
  EXPECT_TRUE(q.tape.empty());
}

TEST(Plan, ContentHashTracksBytes) {
  SchedulePlan p = rich_plan();
  const std::uint64_t h = p.content_hash();
  EXPECT_EQ(h, rich_plan().content_hash());
  p.tape_seed ^= 1;
  EXPECT_NE(p.content_hash(), h);
}

TEST(Plan, ParseRejectsMalformedInput) {
  // Missing the version header entirely.
  EXPECT_THROW((void)SchedulePlan::parse_string("protocol fig2\nend\n"),
               std::runtime_error);
  // Unknown directive.
  EXPECT_THROW((void)SchedulePlan::parse_string(
                   "rcp-plan-v1\nprotocol fig2\nn 3\nk 0\ninputs 010\n"
                   "bogus-key 1\nend\n"),
               std::runtime_error);
  // Truncated file: no `end` terminator.
  EXPECT_THROW((void)SchedulePlan::parse_string(
                   "rcp-plan-v1\nprotocol fig2\nn 3\nk 0\ninputs 010\n"),
               std::runtime_error);
  // Inputs bitstring disagreeing with n.
  EXPECT_THROW((void)SchedulePlan::parse_string(
                   "rcp-plan-v1\nprotocol fig2\nn 4\nk 0\ninputs 010\nend\n"),
               std::runtime_error);
}

TEST(Plan, ParseReportsLineNumbers) {
  try {
    (void)SchedulePlan::parse_string(
        "rcp-plan-v1\nprotocol fig2\nn 3\nk 0\ninputs 010\nwat\nend\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // Messages carry file-style positions: "rcp-plan-v1:6: unknown key ...".
    EXPECT_NE(std::string(e.what()).find(":6:"), std::string::npos)
        << e.what();
  }
}

TEST(Plan, ParseAcceptsCommentsAndBlankLines) {
  const SchedulePlan q = SchedulePlan::parse_string(
      "# golden scenario\nrcp-plan-v1\n\nprotocol fig1\nn 3\nk 1\n"
      "# three processes\ninputs 101\nend\n");
  EXPECT_EQ(q.spec.protocol, adversary::ProtocolKind::fail_stop);
  EXPECT_EQ(q.spec.params.k, 1u);
}

TEST(Plan, ValidateEnforcesResilienceAndShape) {
  SchedulePlan p = rich_plan();
  EXPECT_NO_THROW(p.validate());

  // k above the malicious-model resilience bound for n=7 is rejected.
  SchedulePlan bad_k = rich_plan();
  bad_k.spec.params.k = 3;
  EXPECT_THROW(bad_k.validate(), std::runtime_error);

  // Byzantine cast larger than k.
  SchedulePlan bad_cast = rich_plan();
  bad_cast.spec.byzantine_ids = {0, 1, 2};
  EXPECT_THROW(bad_cast.validate(), std::runtime_error);

  // Cast ids must be strictly increasing (canonical form).
  SchedulePlan unsorted = rich_plan();
  unsorted.spec.byzantine_ids = {4, 1};
  EXPECT_THROW(unsorted.validate(), std::runtime_error);

  // Input vector must have exactly n entries.
  SchedulePlan bad_inputs = rich_plan();
  bad_inputs.spec.inputs.pop_back();
  EXPECT_THROW(bad_inputs.validate(), std::runtime_error);

  // phi weight is capped (200/256) so tapes cannot starve delivery forever.
  SchedulePlan bad_phi = rich_plan();
  bad_phi.spec.phi_weight = 255;
  EXPECT_THROW(bad_phi.validate(), std::runtime_error);
}

TEST(Plan, TokensAreStable) {
  EXPECT_STREQ(protocol_token(adversary::ProtocolKind::fail_stop), "fig1");
  EXPECT_STREQ(protocol_token(adversary::ProtocolKind::malicious), "fig2");
  EXPECT_STREQ(protocol_token(adversary::ProtocolKind::majority), "majority");
  EXPECT_STREQ(status_token(sim::RunStatus::all_decided), "decided");
  EXPECT_STREQ(status_token(sim::RunStatus::quiescent), "quiescent");
  EXPECT_STREQ(status_token(sim::RunStatus::step_limit), "step-limit");
}

}  // namespace
}  // namespace rcp::fuzz
