// Golden-scenario round-trip: every file checked into tests/data/ parses,
// replays, and re-serializes byte-identically.
//
//   *.plan     — rcp-plan-v1 scenarios (fuzzer-emitted or hand-written);
//                plans with an `expect` line are executed and must match.
//   *.schedule — recorded sim::Schedule files replayed by the trace-digest
//                suite; load() then save() must reproduce the bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/executor.hpp"
#include "fuzz/plan.hpp"
#include "sim/replay.hpp"

namespace rcp::fuzz {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<fs::path> data_files(const std::string& extension) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(RCP_TEST_DATA_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(GoldenData, DirectoryHoldsFuzzerEmittedPlans) {
  const auto plans = data_files(".plan");
  ASSERT_FALSE(plans.empty());
  // The fuzzer found and minimized a quorum-boundary schedule; it ships as
  // a replayable golden.
  bool quorum_boundary_golden = false;
  for (const fs::path& p : plans) {
    quorum_boundary_golden =
        quorum_boundary_golden ||
        p.filename().string().find("quorum-boundary") != std::string::npos;
  }
  EXPECT_TRUE(quorum_boundary_golden);
}

TEST(GoldenData, EveryPlanRoundTripsByteIdentically) {
  for (const fs::path& path : data_files(".plan")) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    SchedulePlan plan;
    ASSERT_NO_THROW(plan = SchedulePlan::parse_string(text));
    ASSERT_NO_THROW(plan.validate());
    EXPECT_EQ(plan.serialize(), text);
  }
}

TEST(GoldenData, EveryPlanReplaysToItsEmbeddedExpectation) {
  for (const fs::path& path : data_files(".plan")) {
    SCOPED_TRACE(path.filename().string());
    const SchedulePlan plan = SchedulePlan::parse_string(slurp(path));
    const ExecResult r = execute(plan);
    EXPECT_TRUE(matches_expect(r, plan))
        << "status=" << status_token(r.status) << " steps=" << r.steps
        << " trace=" << r.trace_digest << " state=" << r.state_digest;
    EXPECT_TRUE(r.agreement);
  }
}

TEST(GoldenData, EveryScheduleRoundTripsByteIdentically) {
  const auto schedules = data_files(".schedule");
  ASSERT_FALSE(schedules.empty());
  for (const fs::path& path : schedules) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    const sim::Schedule schedule = sim::Schedule::load(in);
    EXPECT_GT(schedule.size(), 0u);
    std::ostringstream out;
    schedule.save(out);
    EXPECT_EQ(out.str(), slurp(path));
  }
}

}  // namespace
}  // namespace rcp::fuzz
