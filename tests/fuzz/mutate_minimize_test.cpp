// seed_corpus()/mutate() stay inside the validation envelope by
// construction; minimize() is a deterministic shrinker.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fuzz/executor.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/plan.hpp"

namespace rcp::fuzz {
namespace {

TEST(Mutate, SeedCorpusIsValidAndDiverse) {
  const auto seeds =
      seed_corpus(adversary::ProtocolKind::malicious, {7, 2}, 99);
  ASSERT_GE(seeds.size(), 4u);
  for (const SchedulePlan& p : seeds) {
    EXPECT_NO_THROW(p.validate()) << p.serialize();
  }
  // The baseline entry is fault-free; at least one entry fields Byzantines.
  EXPECT_TRUE(seeds.front().spec.byzantine_ids.empty());
  bool any_byz = false;
  for (const SchedulePlan& p : seeds) {
    any_byz = any_byz || !p.spec.byzantine_ids.empty();
  }
  EXPECT_TRUE(any_byz);
}

TEST(Mutate, FailStopSeedCorpusFieldsNoByzantines) {
  const auto seeds =
      seed_corpus(adversary::ProtocolKind::fail_stop, {5, 2}, 7);
  for (const SchedulePlan& p : seeds) {
    EXPECT_NO_THROW(p.validate());
    EXPECT_TRUE(p.spec.byzantine_ids.empty());
  }
}

TEST(Mutate, IsDeterministicInTheRngSeed) {
  const auto seeds =
      seed_corpus(adversary::ProtocolKind::malicious, {7, 2}, 99);
  Rng a(12345);
  Rng b(12345);
  EXPECT_EQ(mutate(seeds[0], a).serialize(), mutate(seeds[0], b).serialize());
}

TEST(Mutate, LongChainsStayValid) {
  const auto seeds =
      seed_corpus(adversary::ProtocolKind::malicious, {7, 2}, 99);
  Rng rng(2026);
  SchedulePlan current = seeds.front();
  for (int i = 0; i < 300; ++i) {
    current = mutate(current, rng);
    ASSERT_NO_THROW(current.validate()) << "after " << i + 1 << " mutations:\n"
                                        << current.serialize();
    EXPECT_FALSE(current.expect.present);  // mutation invalidates goldens
  }
}

TEST(Mutate, SmallSystemChainsStayValid) {
  // n=2, k=0 exercises every clamp (no Byzantine room, one crash slot).
  const auto seeds =
      seed_corpus(adversary::ProtocolKind::fail_stop, {2, 0}, 5);
  Rng rng(31337);
  SchedulePlan current = seeds.front();
  for (int i = 0; i < 200; ++i) {
    current = mutate(current, rng);
    ASSERT_NO_THROW(current.validate()) << current.serialize();
  }
}

TEST(Minimize, DropsTheTapeWhenTheFallbackSuffices) {
  SchedulePlan p;
  p.spec.protocol = adversary::ProtocolKind::malicious;
  p.spec.params = {7, 2};
  for (std::uint32_t i = 0; i < 7; ++i) {
    p.spec.inputs.push_back(i % 2 == 0 ? Value::zero : Value::one);
  }
  p.tape_seed = 77;
  for (std::uint32_t i = 0; i < 256; ++i) {
    p.tape.push_back(i * 2654435761U);
  }
  const auto decided = [](const ExecResult& r) {
    return r.status == sim::RunStatus::all_decided;
  };
  ASSERT_TRUE(decided(execute(p)));

  MinimizeStats stats;
  const SchedulePlan small = minimize(p, decided, 64, &stats);
  EXPECT_TRUE(decided(execute(small)));
  // The fallback stream alone decides, so the whole tape goes.
  EXPECT_TRUE(small.tape.empty());
  EXPECT_LT(small.spec.max_steps, p.spec.max_steps);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(Minimize, IsDeterministic) {
  SchedulePlan p;
  p.spec.protocol = adversary::ProtocolKind::malicious;
  p.spec.params = {7, 2};
  for (std::uint32_t i = 0; i < 7; ++i) {
    p.spec.inputs.push_back(Value::one);
  }
  p.tape_seed = 3;
  for (std::uint32_t i = 0; i < 100; ++i) {
    p.tape.push_back(i);
  }
  const auto keep = [](const ExecResult& r) { return r.agreement; };
  EXPECT_EQ(minimize(p, keep, 48).serialize(),
            minimize(p, keep, 48).serialize());
}

TEST(Minimize, KeepsCrashEventsThePredicateNeeds) {
  // Predicate: some process never decides (the crash victim). Minimization
  // must not drop the crash that causes it.
  SchedulePlan p;
  p.spec.protocol = adversary::ProtocolKind::fail_stop;
  p.spec.params = {5, 1};
  for (std::uint32_t i = 0; i < 5; ++i) {
    p.spec.inputs.push_back(Value::one);
  }
  p.spec.crashes.push_back(
      {.victim = 0, .by_phase = false, .at_step = 0, .at_phase = 0});
  p.tape_seed = 11;
  const auto victim_dead = [](const ExecResult& r) {
    return r.status == sim::RunStatus::all_decided;
  };
  // Correct processes still decide around the dead one (k=1 tolerates it).
  ASSERT_TRUE(victim_dead(execute(p)));
  const SchedulePlan small = minimize(p, victim_dead, 48);
  EXPECT_TRUE(victim_dead(execute(small)));
}

}  // namespace
}  // namespace rcp::fuzz
