// Net-level nemesis: the plan -> ClusterConfig mapping is deterministic,
// and a checked-in fault plan replays against a live net::Cluster with all
// correct nodes deciding the same value (the paper's properties over TCP).
#include "fuzz/nemesis.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/plan.hpp"

namespace rcp::fuzz {
namespace {

SchedulePlan fault_plan() {
  SchedulePlan p;
  p.spec.protocol = adversary::ProtocolKind::malicious;
  p.spec.params = {5, 1};
  p.spec.inputs = {Value::one, Value::zero, Value::one, Value::zero,
                   Value::one};
  p.spec.byzantine_ids = {2};
  p.spec.byzantine_kind = adversary::ByzantineKind::equivocator;
  p.spec.crashes.push_back(
      {.victim = 4, .by_phase = true, .at_step = 0, .at_phase = 3});
  p.spec.crashes.push_back(
      {.victim = 1, .by_phase = false, .at_step = 500, .at_phase = 0});
  p.spec.seed = 9;
  p.spec.net_drop_permille = 40;
  p.spec.net_delay_max_ms = 3;
  p.spec.net_disconnects = 2;
  p.tape_seed = 0xabcdef;
  return p;
}

TEST(Nemesis, PlanMapsDeterministicallyToClusterConfig) {
  const SchedulePlan p = fault_plan();
  const net::ClusterConfig a = nemesis_cluster_config(p, {});
  const net::ClusterConfig b = nemesis_cluster_config(p, {});

  EXPECT_EQ(a.n, 5u);
  EXPECT_EQ(a.seed, 9u);
  EXPECT_DOUBLE_EQ(a.link_faults.drop_probability, 0.040);
  EXPECT_EQ(a.link_faults.delay_max_ms, 3u);
  ASSERT_EQ(a.disconnects.size(), 2u);
  // The disconnect stream is a pure function of the tape seed.
  for (std::size_t i = 0; i < a.disconnects.size(); ++i) {
    EXPECT_EQ(a.disconnects[i].first, b.disconnects[i].first);
    EXPECT_EQ(a.disconnects[i].second.peer, b.disconnects[i].second.peer);
    EXPECT_EQ(a.disconnects[i].second.after_delivered,
              b.disconnects[i].second.after_delivered);
    EXPECT_NE(a.disconnects[i].first, a.disconnects[i].second.peer);
    EXPECT_LT(a.disconnects[i].first, 5u);
  }
  // Only phase crashes map to the transport (no global step over TCP).
  ASSERT_EQ(a.crashes.size(), 1u);
  EXPECT_EQ(a.crashes[0].first, 4);
  EXPECT_EQ(a.crashes[0].second, 3u);
  ASSERT_EQ(a.arbitrary_faulty.size(), 1u);
  EXPECT_EQ(a.arbitrary_faulty[0], 2);
}

TEST(Nemesis, CheckedInFaultPlanSurvivesTheLiveCluster) {
  // The CI nemesis gate: replay the golden fault plan over real sockets —
  // drops, delays, disconnects, a Byzantine node — and every correct node
  // must decide the same value (decision digests MATCH).
  const std::filesystem::path path =
      std::filesystem::path(RCP_TEST_DATA_DIR) / "nemesis_fig2_faults.plan";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  SchedulePlan plan = SchedulePlan::parse(in);
  plan.validate();
  EXPECT_GT(plan.spec.net_drop_permille, 0u);
  EXPECT_GT(plan.spec.net_disconnects, 0u);

  NemesisConfig cfg;
  cfg.loop_threads = 3;  // shared reactor loops: the cheap CI shape
  cfg.timeout_ms = 60'000;
  const NemesisResult r = run_nemesis(plan, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.digests_match) << "decision digest 0x" << std::hex
                               << r.decision_digest;
  EXPECT_TRUE(r.cluster.all_correct_decided);
  EXPECT_TRUE(r.cluster.agreement);
}

TEST(Nemesis, SyntheticFaultPlanAgreesEndToEnd) {
  const NemesisResult r = run_nemesis(fault_plan(), {});
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.digests_match);
}

}  // namespace
}  // namespace rcp::fuzz
