// End-to-end service equivalence in the deterministic simulator: every
// correct replica applies the same ops in the same per-stream order — the
// state digests match — across fault-free runs, the adversary zoo
// (equivocator, babbler), batched vs unbatched operation, and tight
// origination windows. This is the service-level restatement of the
// paper's agreement property: the consensus layer (Bracha broadcast per
// write) forces one outcome per instance, the FIFO barrier forces one
// order per stream.
#include <gtest/gtest.h>

#include <algorithm>

#include "service/sim_service.hpp"

namespace rcp::service {
namespace {

SimServiceConfig base_config() {
  SimServiceConfig cfg;
  cfg.params = core::ConsensusParams{7, 2};
  cfg.shards = 2;
  cfg.total_ops = 600;
  cfg.window = 16;
  cfg.seed = 11;
  return cfg;
}

void expect_converged(const SimServiceResult& r) {
  EXPECT_EQ(r.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(r.correct_streams_equal);
  ASSERT_FALSE(r.digests.empty());
  EXPECT_GE(r.ops_applied_min, r.ops);
}

TEST(KvServiceSim, FaultFreeRunConverges) {
  const SimServiceResult r = run_sim_service(base_config());
  expect_converged(r);
  // No faults: the full digests (not just correct streams) must agree too.
  for (const std::uint64_t d : r.digests) {
    EXPECT_EQ(d, r.digests.front());
  }
  EXPECT_EQ(r.decode_errors, 0u);
}

TEST(KvServiceSim, SingleShardAndTightWindowConverge) {
  SimServiceConfig cfg = base_config();
  cfg.shards = 1;
  cfg.window = 1;  // fully serial origination: the FIFO barrier edge case
  cfg.total_ops = 120;
  expect_converged(run_sim_service(cfg));
}

TEST(KvServiceSim, ManyShardsConverge) {
  SimServiceConfig cfg = base_config();
  cfg.shards = 8;
  expect_converged(run_sim_service(cfg));
}

TEST(KvServiceSim, EquivocatorCannotSplitReplicaState) {
  SimServiceConfig cfg = base_config();
  cfg.byzantine = 2;  // the full resilience budget, k = 2
  cfg.adversary = KvAdversaryKind::equivocator;
  const SimServiceResult r = run_sim_service(cfg);
  expect_converged(r);
}

TEST(KvServiceSim, BabblerCannotCorruptOrWedge) {
  SimServiceConfig cfg = base_config();
  cfg.byzantine = 2;
  cfg.adversary = KvAdversaryKind::babbler;
  const SimServiceResult r = run_sim_service(cfg);
  expect_converged(r);
  // The babbler's garbage must be visibly rejected, not silently absorbed:
  // malformed frames surface as decode errors, in-range-but-bogus protocol
  // traffic as engine drops.
  EXPECT_GT(r.decode_errors + r.engine_drops, 0u);
}

TEST(KvServiceSim, LaneJammersCannotStallVictimStreams) {
  // Both Byzantine seats pre-poison every correct origin's upcoming
  // instances with garbage echo/ready values — the lane-exhaustion
  // attack: fill the engine's first-come value lanes before the real
  // value arrives. The per-sender vote gate caps each jammer at one echo
  // lane and one ready lane per instance, so every victim stream still
  // completes and the replicas agree.
  SimServiceConfig cfg = base_config();
  cfg.byzantine = 2;
  cfg.adversary = KvAdversaryKind::lane_jammer;
  const SimServiceResult r = run_sim_service(cfg);
  expect_converged(r);
  // The jam must be visibly absorbed, not silently tallied: the burned
  // votes surface as engine drops (sender duplicates).
  EXPECT_GT(r.engine_drops, 0u);
}

TEST(KvServiceSim, SilentByzantineSeatsConverge) {
  SimServiceConfig cfg = base_config();
  cfg.byzantine = 2;
  cfg.adversary = KvAdversaryKind::none;  // crash-like: seats never speak
  expect_converged(run_sim_service(cfg));
}

TEST(KvServiceSim, BatchedAndUnbatchedReachTheSameState) {
  SimServiceConfig batched = base_config();
  SimServiceConfig unbatched = base_config();
  unbatched.batching = false;
  const SimServiceResult rb = run_sim_service(batched);
  const SimServiceResult ru = run_sim_service(unbatched);
  expect_converged(rb);
  expect_converged(ru);
  // Identical workload, identical final state...
  EXPECT_EQ(rb.correct_digests.front(), ru.correct_digests.front());
  // ...but batching coalesces transport messages measurably.
  EXPECT_GT(rb.batches, 0u);
  EXPECT_EQ(ru.batches, 0u);
  EXPECT_LT(rb.messages_delivered, ru.messages_delivered / 2)
      << "batching must cut delivered frames by well over half";
}

TEST(KvServiceSim, AdversaryRunsPreserveCorrectStreamPrefixes) {
  // With keep_log on, check the stronger per-stream statement behind the
  // digest: every correct replica's log of every correct stream is
  // identical (same seqs, same ops, same order).
  SimServiceConfig cfg = base_config();
  cfg.byzantine = 2;
  cfg.adversary = KvAdversaryKind::equivocator;
  cfg.keep_log = true;
  cfg.total_ops = 300;

  // Re-run the sim keeping replica state: run_sim_service tears down its
  // replicas, so compare through the digests it already extracted plus a
  // second deterministic run — determinism makes the two runs one.
  const SimServiceResult a = run_sim_service(cfg);
  const SimServiceResult b = run_sim_service(cfg);
  expect_converged(a);
  ASSERT_EQ(a.correct_digests.size(), b.correct_digests.size());
  EXPECT_EQ(a.correct_digests, b.correct_digests)
      << "same seed, same config: the service must be deterministic";
  EXPECT_EQ(a.steps, b.steps);
}

TEST(KvServiceSim, DeterministicAcrossRepeatsVariesAcrossSeeds) {
  SimServiceConfig cfg = base_config();
  cfg.total_ops = 200;
  const SimServiceResult r1 = run_sim_service(cfg);
  const SimServiceResult r2 = run_sim_service(cfg);
  EXPECT_EQ(r1.correct_digests.front(), r2.correct_digests.front());
  cfg.seed = 99;
  const SimServiceResult r3 = run_sim_service(cfg);
  // A different seed reshuffles delivery; the digest covers apply order of
  // the same keyspace, so states still agree per-replica but the schedule
  // differs.
  expect_converged(r3);
  EXPECT_NE(r1.steps, r3.steps);
}

}  // namespace
}  // namespace rcp::service
