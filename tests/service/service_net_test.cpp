// The KV service over the real TCP mesh (net::Cluster): the same KvReplica
// object the simulator drives, now pulled by the idle tick and framed over
// sockets — with drop/delay fault injection exercising the transport's
// retransmission under service load, and a batched-vs-unbatched frame
// count comparison on real PeerCounters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/cluster.hpp"
#include "service/replica.hpp"
#include "service/sim_service.hpp"
#include "service/workload.hpp"

namespace rcp::service {
namespace {

constexpr core::ConsensusParams kParams{5, 1};
constexpr std::uint32_t kShards = 2;

struct NetRun {
  net::ClusterResult result;
  std::vector<std::uint64_t> digests;      ///< correct_stream_digest per node
  std::uint64_t frames = 0;                ///< data frames across all links
  std::uint64_t decode_errors = 0;
  std::uint64_t ops = 0;
};

NetRun run_cluster(std::uint64_t ops, bool batching, double drop,
                   std::uint32_t delay_max_ms, std::uint64_t seed) {
  const Workload workload =
      build_workload(kParams, 0, kShards, ops, seed);

  net::ClusterConfig cc;
  cc.n = kParams.n;
  cc.seed = seed;
  cc.timeout_ms = 60000;
  cc.limits.idle_tick_ms = 1;
  cc.link_faults.drop_probability = drop;
  if (delay_max_ms > 0) {
    cc.link_faults.delay_min_ms = 0;
    cc.link_faults.delay_max_ms = delay_max_ms;
  }

  net::Cluster cluster(cc, [&](ProcessId id) {
    ReplicaConfig rc;
    rc.params = kParams;
    rc.shards = kShards;
    rc.batching = batching;
    rc.window = 8;
    rc.expected_per_origin = workload.expected_per_origin;
    return std::make_unique<KvReplica>(
        rc, std::make_shared<VectorOpSource>(workload.scripts[id]));
  });

  NetRun run;
  run.ops = workload.total_ops;
  run.result = cluster.run();
  for (ProcessId p = 0; p < kParams.n; ++p) {
    auto& replica = dynamic_cast<KvReplica&>(cluster.node(p).process());
    run.digests.push_back(
        correct_stream_digest(replica, kParams.n, kShards));
    run.decode_errors += replica.counters().decode_errors;
  }
  for (const net::NodeOutcome& node : run.result.nodes) {
    for (const net::PeerCounters& pc : node.stats.peers) {
      run.frames += pc.msgs_out;
    }
  }
  return run;
}

void expect_replicated(const NetRun& run) {
  EXPECT_TRUE(run.result.all_correct_decided)
      << (run.result.timed_out ? "timed out" : "incomplete");
  for (const net::NodeOutcome& node : run.result.nodes) {
    EXPECT_TRUE(node.error.empty()) << "node " << node.id << ": "
                                    << node.error;
  }
  ASSERT_FALSE(run.digests.empty());
  for (const std::uint64_t d : run.digests) {
    EXPECT_EQ(d, run.digests.front());
  }
  EXPECT_EQ(run.decode_errors, 0u) << "correct peers never emit garbage";
}

TEST(KvServiceNet, CleanLinksReplicateAndConverge) {
  expect_replicated(run_cluster(400, true, 0.0, 0, 21));
}

TEST(KvServiceNet, SurvivesInjectedDrops) {
  // 2% of transmissions dropped at the fault injector: go-back-N
  // retransmission must still carry every instance to delivery.
  expect_replicated(run_cluster(200, true, 0.02, 0, 22));
}

TEST(KvServiceNet, SurvivesInjectedDelays) {
  // Per-frame random delays reorder traffic across links (the paper's
  // arbitrary-transmission-delay model, for real).
  expect_replicated(run_cluster(200, true, 0.0, 3, 23));
}

TEST(KvServiceNet, SurvivesDropsUnbatched) {
  expect_replicated(run_cluster(150, false, 0.02, 0, 24));
}

TEST(KvServiceNet, BatchingReducesTransportFrames) {
  const NetRun batched = run_cluster(300, true, 0.0, 0, 25);
  const NetRun unbatched = run_cluster(300, false, 0.0, 0, 25);
  expect_replicated(batched);
  expect_replicated(unbatched);
  // Same workload, same final state across modes...
  EXPECT_EQ(batched.digests.front(), unbatched.digests.front());
  // ...and the measured frame counts show the coalescing.
  EXPECT_LT(batched.frames, unbatched.frames / 2)
      << "batching must cut real transport frames by well over half ("
      << batched.frames << " vs " << unbatched.frames << ")";
}

}  // namespace
}  // namespace rcp::service
