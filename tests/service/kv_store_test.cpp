// KvStore: the replicated state machine under the service. The properties
// the equivalence proofs lean on: digests are a pure function of the
// per-stream apply sequences, order-sensitive within a stream, and streams
// namespace their keys (no cross-stream interference).
#include "service/kv_store.hpp"

#include <gtest/gtest.h>

namespace rcp::service {
namespace {

TEST(KvStore, AppliesAndReadsBack) {
  KvStore kv(2);
  kv.apply(0, 0, KvOp{.key = 7, .value = 100});
  kv.apply(1, 0, KvOp{.key = 9, .value = 200});
  kv.apply(0, 1, KvOp{.key = 7, .value = 300});  // overwrite
  EXPECT_EQ(kv.get(0, 7), 300u);
  EXPECT_EQ(kv.get(1, 9), 200u);
  EXPECT_FALSE(kv.get(0, 9).has_value());
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.applied(), 3u);
  EXPECT_EQ(kv.stream_applied(0), 2u);
  EXPECT_EQ(kv.stream_applied(1), 1u);
}

TEST(KvStore, StreamsNamespaceKeys) {
  KvStore kv(2);
  kv.apply(0, 0, KvOp{.key = 5, .value = 1});
  kv.apply(1, 0, KvOp{.key = 5, .value = 2});
  EXPECT_EQ(kv.get(0, 5), 1u);
  EXPECT_EQ(kv.get(1, 5), 2u);
  EXPECT_EQ(kv.size(), 2u);
}

TEST(KvStore, DigestIsOrderSensitiveWithinStream) {
  KvStore a(1);
  a.apply(0, 0, KvOp{.key = 1, .value = 10});
  a.apply(0, 1, KvOp{.key = 2, .value = 20});
  KvStore b(1);
  b.apply(0, 0, KvOp{.key = 2, .value = 20});
  b.apply(0, 1, KvOp{.key = 1, .value = 10});
  // Same final table, different apply order: the chain must differ.
  EXPECT_EQ(a.get(0, 1), b.get(0, 1));
  EXPECT_EQ(a.get(0, 2), b.get(0, 2));
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.stream_chain(0), b.stream_chain(0));
}

TEST(KvStore, DigestMatchesForIdenticalSequences) {
  KvStore a(3);
  KvStore b(3);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const KvOp op{.key = static_cast<std::uint32_t>(seq % 17),
                  .value = static_cast<std::uint32_t>(seq * 31)};
    a.apply(static_cast<std::uint32_t>(seq % 3), seq / 3, op);
    b.apply(static_cast<std::uint32_t>(seq % 3), seq / 3, op);
  }
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(KvStore, GrowsPastInitialTable) {
  KvStore kv(1);
  constexpr std::uint32_t kKeys = 10000;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    kv.apply(0, i, KvOp{.key = i, .value = i ^ 0xabcdu});
  }
  EXPECT_EQ(kv.size(), kKeys);
  for (std::uint32_t i = 0; i < kKeys; i += 997) {
    EXPECT_EQ(kv.get(0, i), i ^ 0xabcdu);
  }
}

TEST(KvStore, KeepLogRetainsPerStreamSequences) {
  KvStore kv(2, /*keep_log=*/true);
  kv.apply(0, 0, KvOp{.key = 1, .value = 2});
  kv.apply(1, 0, KvOp{.key = 3, .value = 4});
  kv.apply(0, 1, KvOp{.key = 5, .value = 6});
  ASSERT_EQ(kv.stream_log(0).size(), 2u);
  EXPECT_EQ(kv.stream_log(0)[0].first, 0u);
  EXPECT_EQ(kv.stream_log(0)[0].second, pack_op(KvOp{.key = 1, .value = 2}));
  EXPECT_EQ(kv.stream_log(0)[1].first, 1u);
  ASSERT_EQ(kv.stream_log(1).size(), 1u);
}

TEST(KvStore, PackOpRoundTrips) {
  const KvOp op{.key = 0xdeadbeefu, .value = 0xcafef00du};
  const KvOp back = unpack_op(pack_op(op));
  EXPECT_EQ(back.key, op.key);
  EXPECT_EQ(back.value, op.value);
}

}  // namespace
}  // namespace rcp::service
