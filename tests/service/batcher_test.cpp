// RbxBatcher: one frame per peer per flush. Driven against a FakeContext
// so the tests see exactly the payloads a transport would carry.
#include "service/batcher.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "extensions/rb_engine.hpp"
#include "support/fake_context.hpp"

namespace rcp::service {
namespace {

using ext::RbxBatch;
using ext::RbxMsg;

constexpr std::uint32_t kN = 4;

RbxMsg echo(ProcessId origin, std::uint64_t tag, std::uint64_t v) {
  return RbxMsg{
      .kind = RbxMsg::Kind::echo, .origin = origin, .tag = tag, .value = v};
}

std::vector<RbxMsg> decode_payload(const Bytes& payload) {
  std::vector<RbxMsg> out;
  if (RbxBatch::is_batch(payload)) {
    RbxBatch::decode_into(payload, out, ext::kRbValueAny);
  } else {
    out.push_back(RbxMsg::decode(payload, ext::kRbValueAny));
  }
  return out;
}

TEST(RbxBatcher, CoalescesOneFramePerPeerPerFlush) {
  test::FakeContext ctx(0, kN);
  RbxBatcher b(kN);
  for (std::uint64_t tag = 0; tag < 5; ++tag) {
    b.queue_broadcast(ctx, echo(1, tag, tag));
  }
  EXPECT_TRUE(ctx.sent.empty()) << "nothing leaves before flush";
  b.flush(ctx);
  // One frame per process (broadcast includes self), 5 messages in each.
  EXPECT_EQ(ctx.sent.size(), kN);
  for (ProcessId p = 0; p < kN; ++p) {
    EXPECT_EQ(ctx.sent_to(p), 1u);
  }
  for (const auto& s : ctx.take_sent()) {
    const auto msgs = decode_payload(s.payload);
    ASSERT_EQ(msgs.size(), 5u);
    EXPECT_EQ(msgs[0].tag, 0u);
    EXPECT_EQ(msgs[4].tag, 4u);
  }
  // One batch emission (the transport fans it out), five messages inside.
  EXPECT_EQ(b.stats().batches, 1u);
  EXPECT_EQ(b.stats().batched_msgs, 5u);
  EXPECT_EQ(b.stats().unbatched_msgs, 0u);
}

TEST(RbxBatcher, SingleMessageLaneGoesOutUnframed) {
  test::FakeContext ctx(0, kN);
  RbxBatcher b(kN);
  b.queue_send(ctx, 2, echo(1, 9, 1));
  b.flush(ctx);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].to, 2u);
  EXPECT_FALSE(RbxBatch::is_batch(ctx.sent[0].payload))
      << "a lane of one skips the batch header";
  EXPECT_EQ(b.stats().batches, 0u);
  EXPECT_EQ(b.stats().unbatched_msgs, 1u);
}

TEST(RbxBatcher, MixesBroadcastAndDirectedLanes) {
  test::FakeContext ctx(0, kN);
  RbxBatcher b(kN);
  b.queue_broadcast(ctx, echo(0, 1, 0));
  b.queue_broadcast(ctx, echo(0, 2, 0));
  b.queue_send(ctx, 3, echo(1, 7, 1));
  b.flush(ctx);
  // Peer 3 gets the two broadcast messages plus its directed one.
  EXPECT_EQ(ctx.sent_to(3), 2u);  // one broadcast frame + one directed frame
  std::size_t to_3 = 0;
  for (const auto& s : ctx.sent) {
    if (s.to == 3) {
      to_3 += decode_payload(s.payload).size();
    }
  }
  EXPECT_EQ(to_3, 3u);
  // Other peers get exactly the broadcast pair in one frame.
  EXPECT_EQ(ctx.sent_to(1), 1u);
}

TEST(RbxBatcher, FlushOnEmptyLanesSendsNothing) {
  test::FakeContext ctx(0, kN);
  RbxBatcher b(kN);
  b.flush(ctx);
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(RbxBatcher, DisabledSendsImmediately) {
  test::FakeContext ctx(0, kN);
  RbxBatcher b(kN, /*enabled=*/false);
  b.queue_broadcast(ctx, echo(1, 0, 1));
  EXPECT_EQ(ctx.sent.size(), kN) << "disabled batcher must not defer";
  b.queue_send(ctx, 1, echo(1, 1, 1));
  EXPECT_EQ(ctx.sent.size(), kN + 1);
  for (const auto& s : ctx.sent) {
    EXPECT_FALSE(RbxBatch::is_batch(s.payload));
  }
  b.flush(ctx);  // no-op
  EXPECT_EQ(ctx.sent.size(), kN + 1);
  // One broadcast + one send, each counted once regardless of fan-out.
  EXPECT_EQ(b.stats().unbatched_msgs, 2u);
  EXPECT_EQ(b.stats().batches, 0u);
}

TEST(RbxBatcher, AutoFlushesFullLaneAtMaxBatch) {
  test::FakeContext ctx(0, kN);
  RbxBatcher b(kN, true, /*max_batch=*/3);
  for (std::uint64_t tag = 0; tag < 7; ++tag) {
    b.queue_send(ctx, 1, echo(0, tag, 0));
  }
  // Two full lanes of 3 went out on their own; one message remains queued.
  EXPECT_EQ(ctx.sent.size(), 2u);
  b.flush(ctx);
  ASSERT_EQ(ctx.sent.size(), 3u);
  std::size_t total = 0;
  for (const auto& s : ctx.sent) {
    total += decode_payload(s.payload).size();
  }
  EXPECT_EQ(total, 7u);
}

TEST(RbxBatcher, PayloadsRoundTripThroughWireDecode) {
  // End-to-end shape check: what the batcher emits is exactly what a
  // receiving replica's decode path accepts.
  test::FakeContext ctx(0, kN);
  RbxBatcher b(kN);
  const RbxMsg m1 = echo(2, (std::uint64_t{5} << 48) | 1, 0x1234567890ULL);
  const RbxMsg m2 = RbxMsg{.kind = RbxMsg::Kind::ready,
                           .origin = 3,
                           .tag = 42,
                           .value = ext::kRbValueBottom};
  b.queue_send(ctx, 1, m1);
  b.queue_send(ctx, 1, m2);
  b.flush(ctx);
  ASSERT_EQ(ctx.sent.size(), 1u);
  const auto msgs = decode_payload(ctx.sent[0].payload);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].tag, m1.tag);
  EXPECT_EQ(msgs[0].value, m1.value);
  EXPECT_EQ(msgs[1].kind, RbxMsg::Kind::ready);
  EXPECT_EQ(msgs[1].value, ext::kRbValueBottom);
}

}  // namespace
}  // namespace rcp::service
