#include "extensions/rb_engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::ext {
namespace {

// n = 7, k = 2: echo threshold 5, ready amplify 3, deliver 5.
constexpr core::ConsensusParams kParams{7, 2};

RbxMsg initial(ProcessId origin, std::uint64_t tag, RbValue v) {
  return RbxMsg{.kind = RbxMsg::Kind::initial, .origin = origin, .tag = tag,
                .value = v};
}

RbxMsg echo(ProcessId origin, std::uint64_t tag, RbValue v) {
  return RbxMsg{.kind = RbxMsg::Kind::echo, .origin = origin, .tag = tag,
                .value = v};
}

RbxMsg ready(ProcessId origin, std::uint64_t tag, RbValue v) {
  return RbxMsg{.kind = RbxMsg::Kind::ready, .origin = origin, .tag = tag,
                .value = v};
}

TEST(RbxMsg, RoundTrip) {
  const RbxMsg msg = ready(3, 77, kRbValueBottom);
  const RbxMsg back = RbxMsg::decode(msg.encode());
  EXPECT_EQ(back.kind, RbxMsg::Kind::ready);
  EXPECT_EQ(back.origin, 3u);
  EXPECT_EQ(back.tag, 77u);
  EXPECT_EQ(back.value, kRbValueBottom);
}

TEST(RbxMsg, RejectsBadValue) {
  Bytes buf = initial(0, 0, 0).encode();
  buf.back() = std::byte{kMaxRbValue + 1};
  EXPECT_THROW((void)RbxMsg::decode(buf), DecodeError);
  EXPECT_THROW((void)RbxMsg::decode(Bytes{std::byte{9}}), DecodeError);
}

TEST(RbEngine, InitialFromOriginProducesEcho) {
  RbEngine e(kParams);
  const auto out = e.handle(4, initial(4, 9, kRbValueOne));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::echo);
  EXPECT_EQ(out.to_broadcast[0].origin, 4u);
  EXPECT_EQ(out.to_broadcast[0].tag, 9u);
  EXPECT_EQ(out.to_broadcast[0].value, kRbValueOne);
}

TEST(RbEngine, ForgedInitialIgnored) {
  RbEngine e(kParams);
  const auto out = e.handle(5, initial(4, 9, kRbValueOne));
  EXPECT_TRUE(out.to_broadcast.empty());
}

TEST(RbEngine, SecondInitialIgnoredEvenWithNewValue) {
  RbEngine e(kParams);
  (void)e.handle(4, initial(4, 9, kRbValueOne));
  const auto out = e.handle(4, initial(4, 9, kRbValueZero));
  EXPECT_TRUE(out.to_broadcast.empty());
}

TEST(RbEngine, EchoQuorumTriggersSingleReady) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 1, kRbValueOne)).to_broadcast.empty());
  }
  const auto out = e.handle(4, echo(6, 1, kRbValueOne));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::ready);
  // Further echoes do not repeat the READY.
  EXPECT_TRUE(e.handle(5, echo(6, 1, kRbValueOne)).to_broadcast.empty());
}

TEST(RbEngine, EchoDedupPerSender) {
  RbEngine e(kParams);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(e.handle(0, echo(6, 1, kRbValueOne)).to_broadcast.empty());
  }
  EXPECT_FALSE(e.delivered(6, 1).has_value());
}

TEST(RbEngine, ReadyAmplificationAtKPlusOne) {
  RbEngine e(kParams);
  (void)e.handle(0, ready(6, 2, kRbValueZero));
  (void)e.handle(1, ready(6, 2, kRbValueZero));
  const auto out = e.handle(2, ready(6, 2, kRbValueZero));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::ready);
}

TEST(RbEngine, DeliveryAtTwoKPlusOne) {
  RbEngine e(kParams);
  std::optional<RbEngine::Delivery> delivered;
  for (ProcessId p = 0; p < 5; ++p) {
    auto out = e.handle(p, ready(6, 3, kRbValueOne));
    if (out.delivered.has_value()) {
      delivered = out.delivered;
    }
  }
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->origin, 6u);
  EXPECT_EQ(delivered->tag, 3u);
  EXPECT_EQ(delivered->value, kRbValueOne);
  EXPECT_EQ(e.delivered(6, 3), kRbValueOne);
  // Delivery is one-shot.
  EXPECT_FALSE(e.handle(5, ready(6, 3, kRbValueOne)).delivered.has_value());
}

TEST(RbEngine, InstancesAreIndependent) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 5; ++p) {
    (void)e.handle(p, ready(6, 3, kRbValueOne));
  }
  EXPECT_TRUE(e.delivered(6, 3).has_value());
  EXPECT_FALSE(e.delivered(6, 4).has_value());
  EXPECT_FALSE(e.delivered(5, 3).has_value());
  EXPECT_EQ(e.instance_count(), 1u);
}

TEST(RbEngine, SplitEchoesBlockReady) {
  // 7 echoers split 4/3 cannot reach the threshold 5 for either value.
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 0, kRbValueZero)).to_broadcast.empty());
  }
  for (ProcessId p = 4; p < 7; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 0, kRbValueOne)).to_broadcast.empty());
  }
}

TEST(RbEngine, BottomValueFlowsThrough) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 5; ++p) {
    (void)e.handle(p, ready(2, 5, kRbValueBottom));
  }
  EXPECT_EQ(e.delivered(2, 5), kRbValueBottom);
}

TEST(RbEngine, DropsOriginOutsideProcessSpace) {
  // A Byzantine frame can claim any origin; one at or past n must be
  // counted and dropped before it can occupy a slot.
  RbEngine e(kParams);
  EXPECT_TRUE(e.handle(0, echo(7, 1, kRbValueOne)).to_broadcast.empty());
  EXPECT_TRUE(e.handle(0, echo(9999, 1, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.instance_count(), 0u);
  EXPECT_EQ(e.stats().dropped_origin_range, 2u);
}

TEST(RbEngine, DropsValueAboveEngineBound) {
  RbEngine e(kParams);  // default bound: kMaxRbValue
  EXPECT_TRUE(
      e.handle(0, echo(6, 1, kMaxRbValue + 1)).to_broadcast.empty());
  EXPECT_EQ(e.stats().dropped_value_range, 1u);
  EXPECT_EQ(e.instance_count(), 0u);
}

TEST(RbEngine, WideValuesDeliverUnderRelaxedBound) {
  // The KV service packs (key, value) into the full 64-bit word.
  RbEngine e(kParams, 0, kRbValueAny);
  const RbValue word = 0xfeedface'12345678ULL;
  std::optional<RbEngine::Delivery> delivered;
  for (ProcessId p = 0; p < 5; ++p) {
    auto out = e.handle(p, ready(6, 3, word));
    if (out.delivered.has_value()) {
      delivered = out.delivered;
    }
  }
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->value, word);
}

TEST(RbEngine, RetireFreesSlotAndDropsStragglers) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 5; ++p) {
    (void)e.handle(p, ready(6, 3, kRbValueOne));
  }
  EXPECT_EQ(e.instance_count(), 1u);
  e.retire_through(6, 3);
  EXPECT_EQ(e.instance_count(), 0u);
  // A late READY for the retired tag must not resurrect the instance.
  EXPECT_TRUE(e.handle(5, ready(6, 3, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.instance_count(), 0u);
  EXPECT_EQ(e.stats().dropped_retired, 1u);
  // The cursor is per-origin: tags below it drop, the next tag is live.
  EXPECT_TRUE(e.handle(0, echo(6, 2, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.stats().dropped_retired, 2u);
  (void)e.handle(0, echo(6, 4, kRbValueOne));
  EXPECT_EQ(e.instance_count(), 1u);
  // ... and other origins are unaffected.
  (void)e.handle(0, echo(5, 3, kRbValueOne));
  EXPECT_EQ(e.instance_count(), 2u);
}

TEST(RbEngine, RetireCursorIsMonotone) {
  RbEngine e(kParams);
  e.retire_through(6, 10);
  e.retire_through(6, 4);  // out-of-order retire must not move it back
  EXPECT_TRUE(e.handle(0, echo(6, 9, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.stats().dropped_retired, 1u);
}

TEST(RbEngine, ValueLaneOverflowIsCountedNotFatal) {
  // An equivocator spraying >4 distinct values per instance exhausts the
  // first-come lanes; the overflowing values drop, the first ones still
  // tally, and correct traffic proceeds.
  RbEngine e(kParams, 0, kRbValueAny);
  for (RbValue v = 0; v < 4; ++v) {
    (void)e.handle(0, echo(6, 1, 100 + v));
  }
  EXPECT_EQ(e.stats().dropped_slot_overflow, 0u);
  (void)e.handle(0, echo(6, 1, 999));
  EXPECT_EQ(e.stats().dropped_slot_overflow, 1u);
  // The first lane still reaches its quorum: senders 1..3 bring value 100
  // to four echoes, sender 4's echo is the fifth and triggers the READY.
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 1, 100)).to_broadcast.empty());
  }
  const auto out = e.handle(4, echo(6, 1, 100));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::ready);
  EXPECT_EQ(out.to_broadcast[0].value, 100u);
}

TEST(RbEngine, GrowsPastInitialCapacityAndKeepsState) {
  // Open far more concurrent instances than the initial pool and finish
  // them all afterwards: the doubling rehash must preserve every tally.
  RbEngine e(kParams, 8);
  const std::uint32_t total = 4 * e.capacity();
  for (std::uint64_t tag = 0; tag < total; ++tag) {
    for (ProcessId p = 0; p < 4; ++p) {  // one short of the ready quorum
      (void)e.handle(p, ready(6, tag, kRbValueOne));
    }
  }
  EXPECT_EQ(e.instance_count(), total);
  EXPECT_GE(e.stats().grows, 1u);
  for (std::uint64_t tag = 0; tag < total; ++tag) {
    const auto out = e.handle(4, ready(6, tag, kRbValueOne));
    ASSERT_TRUE(out.delivered.has_value()) << "tag " << tag;
    EXPECT_EQ(out.delivered->tag, tag);
  }
}

TEST(RbEngine, SlotReuseAfterRetireDoesNotLeakTallies) {
  RbEngine e(kParams);
  // Two echoes toward (6, 1), then retire it; the slot returns to the
  // free list and must come back blank for the next instance.
  (void)e.handle(0, echo(6, 1, kRbValueOne));
  (void)e.handle(1, echo(6, 1, kRbValueOne));
  e.retire_through(6, 1);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(5, 9, kRbValueOne)).to_broadcast.empty());
  }
  const auto out = e.handle(4, echo(5, 9, kRbValueOne));
  ASSERT_EQ(out.to_broadcast.size(), 1u);  // exactly at the echo threshold
}

}  // namespace
}  // namespace rcp::ext
