#include "extensions/rb_engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::ext {
namespace {

// n = 7, k = 2: echo threshold 5, ready amplify 3, deliver 5.
constexpr core::ConsensusParams kParams{7, 2};

RbxMsg initial(ProcessId origin, std::uint64_t tag, RbValue v) {
  return RbxMsg{.kind = RbxMsg::Kind::initial, .origin = origin, .tag = tag,
                .value = v};
}

RbxMsg echo(ProcessId origin, std::uint64_t tag, RbValue v) {
  return RbxMsg{.kind = RbxMsg::Kind::echo, .origin = origin, .tag = tag,
                .value = v};
}

RbxMsg ready(ProcessId origin, std::uint64_t tag, RbValue v) {
  return RbxMsg{.kind = RbxMsg::Kind::ready, .origin = origin, .tag = tag,
                .value = v};
}

TEST(RbxMsg, RoundTrip) {
  const RbxMsg msg = ready(3, 77, kRbValueBottom);
  const RbxMsg back = RbxMsg::decode(msg.encode());
  EXPECT_EQ(back.kind, RbxMsg::Kind::ready);
  EXPECT_EQ(back.origin, 3u);
  EXPECT_EQ(back.tag, 77u);
  EXPECT_EQ(back.value, kRbValueBottom);
}

TEST(RbxMsg, RejectsBadValue) {
  Bytes buf = initial(0, 0, 0).encode();
  buf.back() = std::byte{kMaxRbValue + 1};
  EXPECT_THROW((void)RbxMsg::decode(buf), DecodeError);
  EXPECT_THROW((void)RbxMsg::decode(Bytes{std::byte{9}}), DecodeError);
}

TEST(RbEngine, InitialFromOriginProducesEcho) {
  RbEngine e(kParams);
  const auto out = e.handle(4, initial(4, 9, kRbValueOne));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::echo);
  EXPECT_EQ(out.to_broadcast[0].origin, 4u);
  EXPECT_EQ(out.to_broadcast[0].tag, 9u);
  EXPECT_EQ(out.to_broadcast[0].value, kRbValueOne);
}

TEST(RbEngine, ForgedInitialIgnored) {
  RbEngine e(kParams);
  const auto out = e.handle(5, initial(4, 9, kRbValueOne));
  EXPECT_TRUE(out.to_broadcast.empty());
}

TEST(RbEngine, SecondInitialIgnoredEvenWithNewValue) {
  RbEngine e(kParams);
  (void)e.handle(4, initial(4, 9, kRbValueOne));
  const auto out = e.handle(4, initial(4, 9, kRbValueZero));
  EXPECT_TRUE(out.to_broadcast.empty());
}

TEST(RbEngine, EchoQuorumTriggersSingleReady) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 1, kRbValueOne)).to_broadcast.empty());
  }
  const auto out = e.handle(4, echo(6, 1, kRbValueOne));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::ready);
  // Further echoes do not repeat the READY.
  EXPECT_TRUE(e.handle(5, echo(6, 1, kRbValueOne)).to_broadcast.empty());
}

TEST(RbEngine, EchoDedupPerSender) {
  RbEngine e(kParams);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(e.handle(0, echo(6, 1, kRbValueOne)).to_broadcast.empty());
  }
  EXPECT_FALSE(e.delivered(6, 1).has_value());
}

TEST(RbEngine, ReadyAmplificationAtKPlusOne) {
  RbEngine e(kParams);
  (void)e.handle(0, ready(6, 2, kRbValueZero));
  (void)e.handle(1, ready(6, 2, kRbValueZero));
  const auto out = e.handle(2, ready(6, 2, kRbValueZero));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::ready);
}

TEST(RbEngine, DeliveryAtTwoKPlusOne) {
  RbEngine e(kParams);
  std::optional<RbEngine::Delivery> delivered;
  for (ProcessId p = 0; p < 5; ++p) {
    auto out = e.handle(p, ready(6, 3, kRbValueOne));
    if (out.delivered.has_value()) {
      delivered = out.delivered;
    }
  }
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->origin, 6u);
  EXPECT_EQ(delivered->tag, 3u);
  EXPECT_EQ(delivered->value, kRbValueOne);
  EXPECT_EQ(e.delivered(6, 3), kRbValueOne);
  // Delivery is one-shot.
  EXPECT_FALSE(e.handle(5, ready(6, 3, kRbValueOne)).delivered.has_value());
}

TEST(RbEngine, InstancesAreIndependent) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 5; ++p) {
    (void)e.handle(p, ready(6, 3, kRbValueOne));
  }
  EXPECT_TRUE(e.delivered(6, 3).has_value());
  EXPECT_FALSE(e.delivered(6, 4).has_value());
  EXPECT_FALSE(e.delivered(5, 3).has_value());
  EXPECT_EQ(e.instance_count(), 1u);
}

TEST(RbEngine, SplitEchoesBlockReady) {
  // 7 echoers split 4/3 cannot reach the threshold 5 for either value.
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 0, kRbValueZero)).to_broadcast.empty());
  }
  for (ProcessId p = 4; p < 7; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 0, kRbValueOne)).to_broadcast.empty());
  }
}

TEST(RbEngine, BottomValueFlowsThrough) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 5; ++p) {
    (void)e.handle(p, ready(2, 5, kRbValueBottom));
  }
  EXPECT_EQ(e.delivered(2, 5), kRbValueBottom);
}

TEST(RbEngine, DropsOriginOutsideProcessSpace) {
  // A Byzantine frame can claim any origin; one at or past n must be
  // counted and dropped before it can occupy a slot.
  RbEngine e(kParams);
  EXPECT_TRUE(e.handle(0, echo(7, 1, kRbValueOne)).to_broadcast.empty());
  EXPECT_TRUE(e.handle(0, echo(9999, 1, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.instance_count(), 0u);
  EXPECT_EQ(e.stats().dropped_origin_range, 2u);
}

TEST(RbEngine, DropsValueAboveEngineBound) {
  RbEngine e(kParams);  // default bound: kMaxRbValue
  EXPECT_TRUE(
      e.handle(0, echo(6, 1, kMaxRbValue + 1)).to_broadcast.empty());
  EXPECT_EQ(e.stats().dropped_value_range, 1u);
  EXPECT_EQ(e.instance_count(), 0u);
}

TEST(RbEngine, WideValuesDeliverUnderRelaxedBound) {
  // The KV service packs (key, value) into the full 64-bit word.
  RbEngine e(kParams, 0, kRbValueAny);
  const RbValue word = 0xfeedface'12345678ULL;
  std::optional<RbEngine::Delivery> delivered;
  for (ProcessId p = 0; p < 5; ++p) {
    auto out = e.handle(p, ready(6, 3, word));
    if (out.delivered.has_value()) {
      delivered = out.delivered;
    }
  }
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->value, word);
}

TEST(RbEngine, RetireFreesSlotAndDropsStragglers) {
  RbEngine e(kParams);
  for (ProcessId p = 0; p < 5; ++p) {
    (void)e.handle(p, ready(6, 3, kRbValueOne));
  }
  EXPECT_EQ(e.instance_count(), 1u);
  e.retire_through(6, 3);
  EXPECT_EQ(e.instance_count(), 0u);
  // A late READY for the retired tag must not resurrect the instance.
  EXPECT_TRUE(e.handle(5, ready(6, 3, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.instance_count(), 0u);
  EXPECT_EQ(e.stats().dropped_retired, 1u);
  // The cursor is per-origin: tags below it drop, the next tag is live.
  EXPECT_TRUE(e.handle(0, echo(6, 2, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.stats().dropped_retired, 2u);
  (void)e.handle(0, echo(6, 4, kRbValueOne));
  EXPECT_EQ(e.instance_count(), 1u);
  // ... and other origins are unaffected.
  (void)e.handle(0, echo(5, 3, kRbValueOne));
  EXPECT_EQ(e.instance_count(), 2u);
}

TEST(RbEngine, RetireCursorIsMonotone) {
  RbEngine e(kParams);
  e.retire_through(6, 10);
  e.retire_through(6, 4);  // out-of-order retire must not move it back
  EXPECT_TRUE(e.handle(0, echo(6, 9, kRbValueOne)).to_broadcast.empty());
  EXPECT_EQ(e.stats().dropped_retired, 1u);
}

TEST(RbEngine, EquivocatingSenderGetsOneCountedEcho) {
  // A single Byzantine peer spraying distinct values cannot claim one
  // lane per value: only its first echo counts, the rest drop as sender
  // duplicates and no further lane fills.
  RbEngine e(kParams, 0, kRbValueAny);
  for (RbValue v = 0; v < 10; ++v) {
    EXPECT_TRUE(e.handle(0, echo(6, 1, 100 + v)).to_broadcast.empty());
  }
  EXPECT_EQ(e.stats().dropped_sender_dup, 9u);
  EXPECT_EQ(e.stats().dropped_slot_overflow, 0u);
  // The real value still has a lane and reaches its quorum from the other
  // senders: 1..5 bring it to five echoes, the fifth triggers the READY.
  for (ProcessId p = 1; p < 5; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 1, 777)).to_broadcast.empty());
  }
  const auto out = e.handle(5, echo(6, 1, 777));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::ready);
  EXPECT_EQ(out.to_broadcast[0].value, 777u);
}

TEST(RbEngine, ReadySenderCountsOnce) {
  RbEngine e(kParams, 0, kRbValueAny);
  // Sender 0 readies garbage first; its later ready for the real value is
  // a sender duplicate and must not count toward delivery.
  (void)e.handle(0, ready(6, 1, 500));
  (void)e.handle(0, ready(6, 1, 900));
  EXPECT_EQ(e.stats().dropped_sender_dup, 1u);
  for (ProcessId p = 1; p < 5; ++p) {
    EXPECT_FALSE(e.handle(p, ready(6, 1, 900)).delivered.has_value());
  }
  // The fifth *distinct* counted ready delivers.
  EXPECT_TRUE(e.handle(5, ready(6, 1, 900)).delivered.has_value());
}

TEST(RbEngine, FaultBudgetOfLaneJammersCannotBlockDelivery) {
  // k = 2 jammers each burn one echo lane and one ready lane with garbage
  // before any real traffic; lanes are k + 2 per kind, so the real value
  // always finds one and the instance still delivers (validity).
  RbEngine e(kParams, 0, kRbValueAny);
  EXPECT_EQ(e.lane_count(), 4u);
  for (ProcessId byz = 5; byz < 7; ++byz) {
    EXPECT_TRUE(e.handle(byz, echo(6, 1, 0xAA00u + byz)).to_broadcast.empty());
    EXPECT_TRUE(e.handle(byz, ready(6, 1, 0xBB00u + byz)).to_broadcast.empty());
  }
  EXPECT_EQ(e.stats().dropped_slot_overflow, 0u);
  const RbValue real = 42;
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 1, real)).to_broadcast.empty());
  }
  ASSERT_EQ(e.handle(4, echo(6, 1, real)).to_broadcast.size(), 1u);
  std::optional<RbEngine::Delivery> delivered;
  for (ProcessId p = 0; p < 5; ++p) {
    auto out = e.handle(p, ready(6, 1, real));
    if (out.delivered.has_value()) {
      delivered = out.delivered;
    }
  }
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->value, real);
}

TEST(RbEngine, LaneOverflowBeyondFaultBudgetIsCountedNotFatal) {
  // Five distinct senders bringing five distinct values exceed the
  // k + 2 = 4 lanes — outside the fault budget; the overflowing value
  // drops and is counted, earlier lanes still tally.
  RbEngine e(kParams, 0, kRbValueAny);
  for (ProcessId p = 0; p < 4; ++p) {
    (void)e.handle(p, echo(6, 1, 100 + p));
  }
  EXPECT_EQ(e.stats().dropped_slot_overflow, 0u);
  (void)e.handle(4, echo(6, 1, 999));
  EXPECT_EQ(e.stats().dropped_slot_overflow, 1u);
}

TEST(RbEngine, PerOriginLiveCapStopsPhantomFloods) {
  // One Byzantine sender sprays fresh future tags for a correct origin;
  // with the cap armed, allocation stops at the cap instead of doubling
  // the pool forever.
  RbEngine e(kParams, /*capacity_hint=*/64, kRbValueAny,
             /*max_live_per_origin=*/8);
  for (std::uint64_t t = 0; t < 1000; ++t) {
    (void)e.handle(0, echo(6, t, 1));
  }
  EXPECT_EQ(e.instance_count(), 8u);
  EXPECT_EQ(e.stats().dropped_origin_flood, 992u);
  EXPECT_EQ(e.stats().grows, 0u);
  // In-cap instances still work, and retiring one frees room under the cap.
  for (ProcessId p = 0; p < 5; ++p) {
    (void)e.handle(p, ready(6, 3, 7));
  }
  EXPECT_EQ(e.delivered(6, 3), RbValue{7});
  e.retire_through(6, 3);
  (void)e.handle(0, echo(6, 500, 1));
  EXPECT_EQ(e.instance_count(), 8u);
  EXPECT_EQ(e.stats().dropped_origin_flood, 992u);
}

TEST(RbEngine, AnchoredInitialEvictsPhantomsAtCap) {
  // Phantom spray fills the origin's cap; the origin's own initial for a
  // fresh tag must still get a slot — it evicts an undelivered phantom
  // rather than being refused, so a flood can never wall a correct origin
  // out of its own seq space.
  RbEngine e(kParams, /*capacity_hint=*/64, kRbValueAny,
             /*max_live_per_origin=*/8);
  for (std::uint64_t t = 100; t < 200; ++t) {
    (void)e.handle(0, echo(6, t, 1));
  }
  EXPECT_EQ(e.instance_count(), 8u);
  const auto out = e.handle(6, initial(6, 5, 42));
  ASSERT_EQ(out.to_broadcast.size(), 1u);
  EXPECT_EQ(out.to_broadcast[0].kind, RbxMsg::Kind::echo);
  EXPECT_EQ(e.stats().evicted_unanchored, 1u);
  EXPECT_EQ(e.instance_count(), 8u);
  std::optional<RbEngine::Delivery> delivered;
  for (ProcessId p = 0; p < 5; ++p) {
    auto r = e.handle(p, ready(6, 5, 42));
    if (r.delivered.has_value()) {
      delivered = r.delivered;
    }
  }
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->value, 42u);
}

TEST(RbEngine, ForgedInitialNeitherAnchorsNorEvicts) {
  // A Byzantine peer forging initials for someone else's stream gets the
  // same treatment as any echo spray: phantom-candidate slots under the
  // sub-cap, never an eviction.
  RbEngine e(kParams, /*capacity_hint=*/64, kRbValueAny,
             /*max_live_per_origin=*/8);
  for (std::uint64_t t = 0; t < 8; ++t) {
    (void)e.handle(0, echo(6, t, 1));
  }
  const auto out = e.handle(5, initial(6, 5000, 1));
  EXPECT_TRUE(out.to_broadcast.empty());
  EXPECT_EQ(e.stats().dropped_origin_flood, 1u);
  EXPECT_EQ(e.stats().evicted_unanchored, 0u);
}

TEST(RbEngine, InitialPromotesEarlyEchoInstance) {
  // Echoes racing ahead of the origin's initial create an unanchored
  // instance; the initial promotes it in place (tallies intact), freeing
  // unanchored budget for further early traffic.
  RbEngine e(kParams, /*capacity_hint=*/64, kRbValueAny,
             /*max_live_per_origin=*/32);  // unanchored sub-cap: 8
  for (std::uint64_t t = 0; t < 8; ++t) {
    (void)e.handle(0, echo(6, t, 1));
  }
  (void)e.handle(0, echo(6, 8, 1));
  EXPECT_EQ(e.stats().dropped_origin_flood, 1u);  // sub-cap full
  ASSERT_EQ(e.handle(6, initial(6, 3, 1)).to_broadcast.size(), 1u);
  // Tag 3 is anchored now; the freed unanchored budget admits a new tag...
  (void)e.handle(0, echo(6, 900, 1));
  EXPECT_EQ(e.instance_count(), 9u);
  EXPECT_EQ(e.stats().dropped_origin_flood, 1u);
  // ...and the promoted instance kept its earlier echo tally: sender 0's
  // echo for tag 3 still counts, so four more echoes reach the quorum.
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(6, 3, 1)).to_broadcast.empty());
  }
  ASSERT_EQ(e.handle(4, echo(6, 3, 1)).to_broadcast.size(), 1u);
}

TEST(RbEngine, RejectsNBeyondTallyWidth) {
  // echo/ready tallies are 16-bit; an n that could overflow them must be
  // rejected at construction, not corrupt quorums at runtime.
  EXPECT_THROW(RbEngine(core::ConsensusParams{70000, 2}), PreconditionError);
}

TEST(RbEngine, GrowsPastInitialCapacityAndKeepsState) {
  // Open far more concurrent instances than the initial pool and finish
  // them all afterwards: the doubling rehash must preserve every tally.
  RbEngine e(kParams, 8);
  const std::uint32_t total = 4 * e.capacity();
  for (std::uint64_t tag = 0; tag < total; ++tag) {
    for (ProcessId p = 0; p < 4; ++p) {  // one short of the ready quorum
      (void)e.handle(p, ready(6, tag, kRbValueOne));
    }
  }
  EXPECT_EQ(e.instance_count(), total);
  EXPECT_GE(e.stats().grows, 1u);
  for (std::uint64_t tag = 0; tag < total; ++tag) {
    const auto out = e.handle(4, ready(6, tag, kRbValueOne));
    ASSERT_TRUE(out.delivered.has_value()) << "tag " << tag;
    EXPECT_EQ(out.delivered->tag, tag);
  }
}

TEST(RbEngine, SlotReuseAfterRetireDoesNotLeakTallies) {
  RbEngine e(kParams);
  // Two echoes toward (6, 1), then retire it; the slot returns to the
  // free list and must come back blank for the next instance.
  (void)e.handle(0, echo(6, 1, kRbValueOne));
  (void)e.handle(1, echo(6, 1, kRbValueOne));
  e.retire_through(6, 1);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(e.handle(p, echo(5, 9, kRbValueOne)).to_broadcast.empty());
  }
  const auto out = e.handle(4, echo(5, 9, kRbValueOne));
  ASSERT_EQ(out.to_broadcast.size(), 1u);  // exactly at the echo threshold
}

}  // namespace
}  // namespace rcp::ext
