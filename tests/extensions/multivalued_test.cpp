// Multivalued consensus: agreement on arbitrary byte strings, including
// against equivocating proposers.
#include "extensions/multivalued.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace rcp {
namespace {

using ext::MultiValuedConsensus;
using ext::ProposalRb;

Bytes bytes_of(const std::string& s) {
  Bytes b;
  for (const char c : s) {
    b.push_back(static_cast<std::byte>(c));
  }
  return b;
}

std::string string_of(const Bytes& b) {
  std::string s;
  for (const auto byte : b) {
    s += static_cast<char>(byte);
  }
  return s;
}

/// A Byzantine proposer that tells each half of the system a different
/// proposal (reliable broadcast must prevent both from winning).
class TwoFacedProposer final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (ProcessId q = 0; q < ctx.n(); ++q) {
      const auto body =
          q < ctx.n() / 2 ? bytes_of("evil-left") : bytes_of("evil-right");
      ctx.send(q, ProposalRb::encode_initial(ctx.self(), body));
    }
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

struct MvRun {
  std::unique_ptr<sim::Simulation> simulation;
  std::vector<MultiValuedConsensus*> correct;
};

template <typename MakeByz>
MvRun make_mv(std::uint32_t n, std::uint32_t k, std::uint32_t byz,
              std::uint64_t seed, MakeByz&& make_byz) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<MultiValuedConsensus*> correct;
  for (ProcessId p = 0; p < n; ++p) {
    if (p < byz) {
      procs.push_back(make_byz());
      continue;
    }
    auto m = MultiValuedConsensus::make(
        {n, k}, bytes_of("proposal-" + std::to_string(p)));
    correct.push_back(m.get());
    procs.push_back(std::move(m));
  }
  auto s = std::make_unique<sim::Simulation>(
      sim::SimConfig{.n = n, .seed = seed, .max_steps = 8'000'000},
      std::move(procs));
  for (ProcessId p = 0; p < byz; ++p) {
    s->mark_faulty(p);
  }
  return MvRun{std::move(s), std::move(correct)};
}

void expect_common_decision(const MvRun& run, std::uint64_t seed) {
  std::optional<Bytes> first;
  for (auto* m : run.correct) {
    const auto d = m->decided_proposal();
    ASSERT_TRUE(d.has_value()) << "seed " << seed;
    if (first.has_value()) {
      EXPECT_EQ(string_of(*first), string_of(*d)) << "seed " << seed;
    }
    first = d;
  }
}

TEST(MultiValued, FactoryValidates) {
  EXPECT_NO_THROW(MultiValuedConsensus::make({7, 2}, bytes_of("x")));
  EXPECT_THROW(MultiValuedConsensus::make({7, 3}, bytes_of("x")),
               PreconditionError);
  EXPECT_THROW(MultiValuedConsensus::make({7, 2}, Bytes(70'000)),
               PreconditionError);
}

TEST(MultiValued, FaultFreeAgreesOnSomeProposal) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto run = make_mv(7, 2, 0, seed, [] {
      return std::unique_ptr<sim::Process>();
    });
    const auto result = run.simulation->run();
    ASSERT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    expect_common_decision(run, seed);
    // Validity: the decided bytes are some process's actual proposal.
    const auto d = string_of(*run.correct[0]->decided_proposal());
    EXPECT_EQ(d.rfind("proposal-", 0), 0u) << d;
  }
}

TEST(MultiValued, SilentByzantineSlotsAreSweptOver) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto run = make_mv(7, 2, 2, seed, [] {
      return std::make_unique<adversary::SilentByzantine>();
    });
    const auto result = run.simulation->run();
    ASSERT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    expect_common_decision(run, seed);
    // The winner must be a correct origin (silent ones never deliver).
    ASSERT_TRUE(run.correct[0]->winning_origin().has_value());
    EXPECT_GE(*run.correct[0]->winning_origin(), 2u);
  }
}

TEST(MultiValued, TwoFacedProposerCannotSplitTheValue) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto run = make_mv(7, 2, 1, seed, [] {
      return std::make_unique<TwoFacedProposer>();
    });
    const auto result = run.simulation->run();
    ASSERT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    expect_common_decision(run, seed);
    // If the Byzantine slot somehow won, every correct process must hold
    // the SAME version of its proposal (RB consistency); they can never
    // split between evil-left and evil-right.
  }
}

TEST(MultiValued, MinimalByzantineConfiguration) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto run = make_mv(4, 1, 1, seed, [] {
      return std::make_unique<adversary::SilentByzantine>();
    });
    const auto result = run.simulation->run();
    ASSERT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    expect_common_decision(run, seed);
  }
}

TEST(MultiValued, LargeProposalsSurvive) {
  Bytes big(8 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i * 31 % 251);
  }
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<MultiValuedConsensus*> raw;
  for (ProcessId p = 0; p < 4; ++p) {
    auto m = MultiValuedConsensus::make({4, 1}, big);
    raw.push_back(m.get());
    procs.push_back(std::move(m));
  }
  sim::Simulation s(sim::SimConfig{.n = 4, .seed = 3, .max_steps = 4'000'000},
                    std::move(procs));
  const auto result = s.run();
  ASSERT_EQ(result.status, sim::RunStatus::all_decided);
  for (auto* m : raw) {
    ASSERT_TRUE(m->decided_proposal().has_value());
    EXPECT_EQ(*m->decided_proposal(), big);
  }
}

TEST(ProposalRbUnit, ForgedInitialIgnored) {
  ProposalRb rb({7, 2});
  const auto out = rb.handle(3, ProposalRb::encode_initial(2, bytes_of("x")));
  EXPECT_TRUE(out.to_broadcast.empty());
  EXPECT_FALSE(out.delivered.has_value());
}

TEST(ProposalRbUnit, GarbageThrowsDecodeError) {
  ProposalRb rb({7, 2});
  EXPECT_THROW((void)rb.handle(0, Bytes{std::byte{50}}), DecodeError);
  // Length field longer than the actual body.
  Bytes bad = ProposalRb::encode_initial(0, bytes_of("abc"));
  bad.pop_back();
  EXPECT_THROW((void)rb.handle(0, bad), DecodeError);
}

TEST(ProposalRbUnit, EchoOncePerEchoerEvenAcrossVersions) {
  ProposalRb rb({7, 2});
  // Echoer 0 echoes two different versions for origin 6: only the first
  // counts, so neither version can ever profit from double voting.
  Bytes e1 = ProposalRb::encode_initial(6, bytes_of("v1"));
  e1[0] = std::byte{51};  // rewrite tag: initial -> echo
  Bytes e2 = ProposalRb::encode_initial(6, bytes_of("v2"));
  e2[0] = std::byte{51};
  (void)rb.handle(0, e1);
  (void)rb.handle(0, e2);
  // Four more echoers for v1 reach the threshold of 5 and emit READY.
  bool ready_seen = false;
  for (ProcessId p = 1; p <= 4; ++p) {
    const auto out = rb.handle(p, e1);
    ready_seen |= !out.to_broadcast.empty();
  }
  EXPECT_TRUE(ready_seen);
}

}  // namespace
}  // namespace rcp
