// Bracha 1987 agreement at full k <= floor((n-1)/3): property sweeps and
// targeted attacks on the validation machinery.
#include "extensions/bracha87.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace rcp {
namespace {

using ext::Bracha87;
using ext::RbxMsg;

/// Byzantine strategy against Bracha-87: broadcasts *unjustifiable*
/// decision proposals ((w, D) payloads = 2 + w) for the value opposite to
/// whatever it observes, plus plain votes for it, in every round it sees.
/// Validation must quarantine the proposals forever.
class FalseProposer final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    // Round 0 step 1: a legitimate-looking vote for 1.
    ctx.broadcast(RbxMsg{.kind = RbxMsg::Kind::initial,
                         .origin = ctx.self(),
                         .tag = 0,
                         .value = ext::kRbValueOne}
                      .encode());
  }

  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    RbxMsg msg;
    try {
      msg = RbxMsg::decode(env.payload);
    } catch (const DecodeError&) {
      return;
    }
    if (msg.kind != RbxMsg::Kind::initial || msg.origin == ctx.self()) {
      return;
    }
    const std::uint64_t round = msg.tag / 3;
    while (frontier_ <= round) {
      // Unjustified decision proposal for 1 in this round's step 3...
      ctx.broadcast(RbxMsg{.kind = RbxMsg::Kind::initial,
                           .origin = ctx.self(),
                           .tag = 3 * frontier_ + 2,
                           .value = ext::kRbValueOne + 2}
                        .encode());
      // ...plus votes for 1 in steps 1 and 2.
      for (const std::uint64_t t : {3 * frontier_, 3 * frontier_ + 1}) {
        ctx.broadcast(RbxMsg{.kind = RbxMsg::Kind::initial,
                             .origin = ctx.self(),
                             .tag = t,
                             .value = ext::kRbValueOne}
                          .encode());
      }
      ++frontier_;
    }
  }

 private:
  std::uint64_t frontier_ = 0;
};

struct B87Run {
  std::unique_ptr<sim::Simulation> simulation;
  std::vector<Bracha87*> correct;
};

template <typename MakeByz>
B87Run make_run(std::uint32_t n, std::uint32_t k, std::uint32_t byz_count,
                std::uint64_t seed, MakeByz&& make_byz) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<Bracha87*> correct;
  for (ProcessId p = 0; p < n; ++p) {
    if (p < byz_count) {
      procs.push_back(make_byz());
    } else {
      auto b = Bracha87::make({n, k}, p % 2 == 0 ? Value::zero : Value::one);
      correct.push_back(b.get());
      procs.push_back(std::move(b));
    }
  }
  auto s = std::make_unique<sim::Simulation>(
      sim::SimConfig{.n = n, .seed = seed, .max_steps = 8'000'000},
      std::move(procs));
  for (ProcessId p = 0; p < byz_count; ++p) {
    s->mark_faulty(p);
  }
  return B87Run{std::move(s), std::move(correct)};
}

TEST(Bracha87, FactoryValidatesFullMaliciousBound) {
  EXPECT_NO_THROW(Bracha87::make({7, 2}, Value::one));
  EXPECT_NO_THROW(Bracha87::make({4, 1}, Value::one));
  EXPECT_THROW(Bracha87::make({7, 3}, Value::one), PreconditionError);
}

TEST(Bracha87, FaultFreeSweep) {
  for (const std::uint32_t n : {4u, 7u, 10u}) {
    const std::uint32_t k = (n - 1) / 3;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto run = make_run(n, k, 0, seed, [] {
        return std::unique_ptr<sim::Process>();  // unused
      });
      const auto result = run.simulation->run();
      EXPECT_EQ(result.status, sim::RunStatus::all_decided)
          << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(run.simulation->agreement_holds());
    }
  }
}

TEST(Bracha87, UnanimousDecidesThatValueInOneRound) {
  for (const Value v : kBothValues) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < 7; ++p) {
      procs.push_back(Bracha87::make({7, 2}, v));
    }
    sim::Simulation s(sim::SimConfig{.n = 7, .seed = 5, .max_steps = 2'000'000},
                      std::move(procs));
    const auto result = s.run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided);
    EXPECT_EQ(s.agreed_value(), v);
    EXPECT_LE(s.metrics().max_phase, 1u);
  }
}

TEST(Bracha87, SilentFaultsAtFullResilience) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto run = make_run(7, 2, 2, seed, [] {
      return std::make_unique<adversary::SilentByzantine>();
    });
    const auto result = run.simulation->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(run.simulation->agreement_holds()) << "seed " << seed;
  }
}

TEST(Bracha87, FalseProposalsAreQuarantinedForever) {
  // All correct processes hold 0; the false proposer pushes unjustifiable
  // (1, D) proposals. Validity requires > n/2 step-2 votes for 1, which
  // can never exist, so every correct process must decide 0 and the bogus
  // proposals must still be sitting in pending_validation.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    std::vector<Bracha87*> correct;
    procs.push_back(std::make_unique<FalseProposer>());
    for (ProcessId p = 1; p < 7; ++p) {
      auto b = Bracha87::make({7, 2}, Value::zero);
      correct.push_back(b.get());
      procs.push_back(std::move(b));
    }
    sim::Simulation s(
        sim::SimConfig{.n = 7, .seed = seed, .max_steps = 8'000'000},
        std::move(procs));
    s.mark_faulty(0);
    const auto result = s.run();
    ASSERT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    for (auto* b : correct) {
      EXPECT_EQ(b->decision(), Value::zero) << "seed " << seed;
      EXPECT_GT(b->pending_validation(), 0u)
          << "the unjustifiable proposal should never validate";
    }
  }
}

TEST(Bracha87, ForgerFleetAtFullResilience) {
  // The generic RB forger (forged initials + bogus readies) from the
  // RB-Ben-Or suite, now at the optimal k = floor((n-1)/3) that plain
  // Ben-Or cannot reach.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto run = make_run(10, 3, 3, seed, [] {
      return std::make_unique<adversary::SilentByzantine>();
    });
    const auto result = run.simulation->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(run.simulation->agreement_holds()) << "seed " << seed;
  }
}

TEST(Bracha87, MixedInputsAgreeAcrossSeeds) {
  bool saw_zero = false;
  bool saw_one = false;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto run = make_run(7, 2, 0, seed, [] {
      return std::unique_ptr<sim::Process>();
    });
    const auto result = run.simulation->run();
    ASSERT_EQ(result.status, sim::RunStatus::all_decided);
    ASSERT_TRUE(run.simulation->agreement_holds());
    const auto v = run.simulation->agreed_value();
    ASSERT_TRUE(v.has_value());
    saw_zero |= *v == Value::zero;
    saw_one |= *v == Value::one;
  }
  EXPECT_TRUE(saw_zero || saw_one);
}

}  // namespace
}  // namespace rcp
