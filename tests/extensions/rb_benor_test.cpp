// RB-hardened Ben-Or: property sweeps, including against an equivocating
// adversary that plain point-to-point Ben-Or has no defence mechanism for.
#include "extensions/rb_benor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace rcp {
namespace {

using ext::RbBenOr;

/// A Byzantine process that opens each round's report instance with value 0
/// towards everyone but also floods forged ready messages trying to push a
/// bogus delivery; reliable broadcast must shrug all of it off.
class RbxForger final : public sim::Process {
 public:
  explicit RbxForger(std::uint32_t n) : n_(n) {}

  void on_start(sim::Context& ctx) override {
    // Legitimate-looking initial for round 0.
    ctx.broadcast(ext::RbxMsg{.kind = ext::RbxMsg::Kind::initial,
                              .origin = ctx.self(),
                              .tag = 0,
                              .value = ext::kRbValueZero}
                      .encode());
  }

  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    ext::RbxMsg msg;
    try {
      msg = ext::RbxMsg::decode(env.payload);
    } catch (const DecodeError&) {
      return;
    }
    if (forged_ > 200) {
      return;  // bounded flood
    }
    ++forged_;
    // Forge an initial on behalf of the sender with the flipped value and
    // spray contradictory readies.
    ctx.broadcast(ext::RbxMsg{.kind = ext::RbxMsg::Kind::initial,
                              .origin = env.sender,
                              .tag = msg.tag,
                              .value = static_cast<ext::RbValue>(
                                  msg.value <= 1 ? 1 - msg.value : 0)}
                      .encode());
    ctx.broadcast(ext::RbxMsg{.kind = ext::RbxMsg::Kind::ready,
                              .origin = msg.origin,
                              .tag = msg.tag,
                              .value = ext::kRbValueBottom}
                      .encode());
  }

 private:
  std::uint32_t n_;
  int forged_ = 0;
};

std::unique_ptr<sim::Simulation> make_rb_benor(
    std::uint32_t n, std::uint32_t k, std::uint32_t byzantine,
    std::uint64_t seed, bool forger) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < n; ++p) {
    if (p < byzantine) {
      if (forger) {
        procs.push_back(std::make_unique<RbxForger>(n));
      } else {
        procs.push_back(std::make_unique<adversary::SilentByzantine>());
      }
    } else {
      procs.push_back(RbBenOr::make(
          {n, k}, p % 2 == 0 ? Value::zero : Value::one));
    }
  }
  auto s = std::make_unique<sim::Simulation>(
      sim::SimConfig{.n = n, .seed = seed, .max_steps = 6'000'000},
      std::move(procs));
  for (ProcessId p = 0; p < byzantine; ++p) {
    s->mark_faulty(p);
  }
  return s;
}

TEST(RbBenOr, FactoryValidatesBound) {
  EXPECT_NO_THROW(RbBenOr::make({11, 2}, Value::one));
  EXPECT_THROW(RbBenOr::make({11, 3}, Value::one), PreconditionError);
}

TEST(RbBenOr, FaultFreeSweep) {
  for (const std::uint32_t n : {6u, 11u}) {
    const std::uint32_t k = (n - 1) / 5;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto s = make_rb_benor(n, k, 0, seed, false);
      const auto result = s->run();
      EXPECT_EQ(result.status, sim::RunStatus::all_decided)
          << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(s->agreement_holds());
    }
  }
}

TEST(RbBenOr, UnanimousDecidesThatValueFast) {
  for (const Value v : kBothValues) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < 6; ++p) {
      procs.push_back(RbBenOr::make({6, 1}, v));
    }
    sim::Simulation s(sim::SimConfig{.n = 6, .seed = 3}, std::move(procs));
    const auto result = s.run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided);
    EXPECT_EQ(s.agreed_value(), v);
    EXPECT_LE(s.metrics().max_phase, 2u);
  }
}

TEST(RbBenOr, SilentByzantineSweep) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto s = make_rb_benor(11, 2, 2, seed, false);
    const auto result = s->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(s->agreement_holds());
  }
}

TEST(RbBenOr, ForgerCannotBreakSafety) {
  // The forger fabricates initials on behalf of correct processes and
  // floods bogus readies; the engine's origin authentication and quorum
  // thresholds must hold safety AND liveness.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto s = make_rb_benor(11, 2, 2, seed, true);
    const auto result = s->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(s->agreement_holds()) << "seed " << seed;
  }
}

TEST(RbBenOr, EquivocationNeutralizedByRb) {
  // An equivocating origin (different initials to different processes is
  // impossible through broadcast, but forged initial + split echoes are
  // not): the key property is that no two correct processes ever act on
  // different values from the same origin in the same round. We assert
  // the observable consequence: agreement across many seeds.
  for (std::uint64_t seed = 20; seed <= 40; ++seed) {
    auto s = make_rb_benor(11, 2, 2, seed, true);
    (void)s->run();
    EXPECT_TRUE(s->agreement_holds()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rcp
