// RbxBatch framing (docs/SERVICE.md "Batching"): the cross-instance frame
// that coalesces every engine message of one atomic step into one payload
// per peer. The decoder is a Byzantine surface — every malformed shape a
// babbler can emit must throw DecodeError, never desync or over-read.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "extensions/rb_engine.hpp"

namespace rcp::ext {
namespace {

RbxMsg msg(RbxMsg::Kind kind, ProcessId origin, std::uint64_t tag,
           RbValue v) {
  return RbxMsg{.kind = kind, .origin = origin, .tag = tag, .value = v};
}

std::vector<RbxMsg> decode_all(const Bytes& frame,
                               RbValue max_value = kMaxRbValue) {
  std::vector<RbxMsg> out;
  RbxBatch::decode_into(frame, out, max_value);
  return out;
}

/// encode() takes a span; bridge the test's braced lists.
Bytes enc(std::initializer_list<RbxMsg> msgs) {
  const std::vector<RbxMsg> v(msgs);
  return RbxBatch::encode(v);
}

TEST(RbxBatch, RoundTripsMixedKindsAndWideValues) {
  const std::vector<RbxMsg> in = {
      msg(RbxMsg::Kind::initial, 0, 0, 0),
      msg(RbxMsg::Kind::echo, 6, (std::uint64_t{3} << 48) | 41,
          0xdeadbeefcafeULL),
      msg(RbxMsg::Kind::ready, 2, ~std::uint64_t{0} >> 1,
          ~std::uint64_t{0} - 1),
  };
  const Bytes frame = RbxBatch::encode(in);
  EXPECT_TRUE(RbxBatch::is_batch(frame));

  const std::vector<RbxMsg> out = decode_all(frame, kRbValueAny);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].kind, in[i].kind);
    EXPECT_EQ(out[i].origin, in[i].origin);
    EXPECT_EQ(out[i].tag, in[i].tag);
    EXPECT_EQ(out[i].value, in[i].value);
  }
}

TEST(RbxBatch, SingleMessageBatchRoundTrips) {
  const Bytes frame =
      enc({msg(RbxMsg::Kind::echo, 1, 7, kRbValueOne)});
  const std::vector<RbxMsg> out = decode_all(frame);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].origin, 1u);
}

TEST(RbxBatch, SingleMessagesAreNotBatches) {
  EXPECT_FALSE(
      RbxBatch::is_batch(msg(RbxMsg::Kind::echo, 1, 7, 1).encode()));
  EXPECT_FALSE(RbxBatch::is_batch(Bytes{}));
}

TEST(RbxBatch, RejectsTruncatedFrame) {
  Bytes frame = enc({msg(RbxMsg::Kind::echo, 1, 7, 1),
                     msg(RbxMsg::Kind::ready, 2, 8, 0)});
  frame.pop_back();
  std::vector<RbxMsg> out;
  EXPECT_THROW(RbxBatch::decode_into(frame, out, kMaxRbValue), DecodeError);
}

TEST(RbxBatch, RejectsCountBodyMismatch) {
  // Header claims two messages but carries one: a count/len mismatch must
  // throw, both when the body is short and when it trails extra bytes.
  Bytes frame = enc({msg(RbxMsg::Kind::echo, 1, 7, 1)});
  frame[1] = std::byte{2};  // count is little-endian at offset 1
  std::vector<RbxMsg> out;
  EXPECT_THROW(RbxBatch::decode_into(frame, out, kMaxRbValue), DecodeError);

  Bytes trailing = enc({msg(RbxMsg::Kind::echo, 1, 7, 1)});
  trailing.push_back(std::byte{0});
  EXPECT_THROW(RbxBatch::decode_into(trailing, out, kMaxRbValue),
               DecodeError);
}

TEST(RbxBatch, RejectsZeroAndOversizedCounts) {
  std::vector<RbxMsg> out;
  // count = 0: a batch must carry at least one message.
  Bytes empty = enc({msg(RbxMsg::Kind::echo, 1, 7, 1)});
  empty[1] = std::byte{0};
  empty[2] = std::byte{0};
  empty[3] = std::byte{0};
  empty[4] = std::byte{0};
  empty.resize(5);
  EXPECT_THROW(RbxBatch::decode_into(empty, out, kMaxRbValue), DecodeError);

  // count > kMaxMessages: reject on the header alone — a forged count must
  // not size any buffer.
  Bytes huge(5, std::byte{0});
  huge[0] = std::byte{RbxBatch::kTagByte};
  huge[1] = std::byte{0xff};
  huge[2] = std::byte{0xff};
  huge[3] = std::byte{0xff};
  huge[4] = std::byte{0xff};
  EXPECT_THROW(RbxBatch::decode_into(huge, out, kMaxRbValue), DecodeError);
}

TEST(RbxBatch, RejectsOutOfRangeEntryKind) {
  Bytes frame = enc({msg(RbxMsg::Kind::echo, 1, 7, 1)});
  frame[5] = std::byte{3};  // first entry's kind byte: only 0..2 are legal
  std::vector<RbxMsg> out;
  EXPECT_THROW(RbxBatch::decode_into(frame, out, kMaxRbValue), DecodeError);
}

TEST(RbxBatch, RejectsOutOfRangeEntryValue) {
  const Bytes frame = enc({msg(RbxMsg::Kind::echo, 1, 7, kMaxRbValue + 1)});
  std::vector<RbxMsg> out;
  EXPECT_THROW(RbxBatch::decode_into(frame, out, kMaxRbValue), DecodeError);
  // The same frame is legal under a wider value bound (the KV service).
  EXPECT_EQ(decode_all(frame, kRbValueAny).size(), 1u);
}

TEST(RbxBatch, DecodeIntoAppendsNothingOnFailure) {
  // The replica reuses one scratch vector across frames; a throw midway
  // must not leave phantom messages for the next decode to feed.
  Bytes frame = enc({msg(RbxMsg::Kind::echo, 1, 7, 1),
                     msg(RbxMsg::Kind::ready, 2, 8, 0)});
  frame[5 + 21] = std::byte{7};  // corrupt the second entry's kind
  std::vector<RbxMsg> out;
  EXPECT_THROW(RbxBatch::decode_into(frame, out, kMaxRbValue), DecodeError);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace rcp::ext
