// Allocation contract of the multiplexed engine (docs/SERVICE.md,
// docs/PERF.md): once the slot pool is warm, RbEngine::handle() and
// retire_through() are allocation-free — the KV service's per-message hot
// path — and RbxBatch::decode_into() into a warmed scratch vector is too.
// The engine sources are listed under [allocation] in tools/lint_rules.toml,
// so a new allocation fails the build (rcp-lint) *and* this counter.
//
// The binary-wide operator new override counts every allocation (same
// instrument as tests/core/echo_allocation_test.cpp, different binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "extensions/rb_engine.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rcp::ext {
namespace {

constexpr core::ConsensusParams kParams{7, 2};

/// One full instance lifecycle: initial, echo quorum, ready quorum,
/// delivery, retire. The steady-state traffic of one KV write.
void drive_instance(RbEngine& e, ProcessId origin, std::uint64_t tag) {
  (void)e.handle(origin, RbxMsg{.kind = RbxMsg::Kind::initial,
                                .origin = origin,
                                .tag = tag,
                                .value = tag & 0xff});
  for (ProcessId p = 0; p < kParams.n; ++p) {
    (void)e.handle(p, RbxMsg{.kind = RbxMsg::Kind::echo,
                             .origin = origin,
                             .tag = tag,
                             .value = tag & 0xff});
  }
  bool delivered = false;
  for (ProcessId p = 0; p < kParams.n; ++p) {
    const auto out = e.handle(p, RbxMsg{.kind = RbxMsg::Kind::ready,
                                        .origin = origin,
                                        .tag = tag,
                                        .value = tag & 0xff});
    delivered = delivered || out.delivered.has_value();
  }
  ASSERT_TRUE(delivered);
  e.retire_through(origin, tag);
}

TEST(RbEngineAllocation, SteadyStateDispatchIsAllocationFree) {
  RbEngine e(kParams, /*capacity_hint=*/64, kRbValueAny);
  // Warm: every origin cycles a few instances; the pool never needs to
  // grow past the hint because retire keeps live_count bounded.
  std::uint64_t tag = 0;
  for (; tag < 16; ++tag) {
    for (ProcessId origin = 0; origin < kParams.n; ++origin) {
      drive_instance(e, origin, tag);
    }
  }
  const std::uint64_t before = g_allocations.load();
  for (; tag < 200; ++tag) {
    for (ProcessId origin = 0; origin < kParams.n; ++origin) {
      drive_instance(e, origin, tag);
    }
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "warm handle()/retire_through() must not touch the heap";
  EXPECT_EQ(e.stats().grows, 0u);
}

TEST(RbEngineAllocation, BatchDecodeIntoWarmScratchIsAllocationFree) {
  std::vector<RbxMsg> msgs;
  for (std::uint32_t i = 0; i < 32; ++i) {
    msgs.push_back(RbxMsg{.kind = RbxMsg::Kind::echo,
                          .origin = i % kParams.n,
                          .tag = i,
                          .value = i});
  }
  const Bytes frame = RbxBatch::encode(msgs);
  std::vector<RbxMsg> scratch;
  scratch.reserve(msgs.size());  // the replica's reusable scratch, warmed
  const std::uint64_t before = g_allocations.load();
  for (int round = 0; round < 100; ++round) {
    scratch.clear();
    RbxBatch::decode_into(frame, scratch, kRbValueAny);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "decoding into warmed scratch must not touch the heap";
  EXPECT_EQ(scratch.size(), msgs.size());
}

}  // namespace
}  // namespace rcp::ext
