// Unit tests for the rcp_lint_core library: the TOML-subset reader's
// hard-error edge cases (duplicate tables, malformed arrays, unknown
// keys/sections) and the pass-1 annotation parser's corner cases
// (multi-line declarations, macro-heavy members, cache round-trips).
// The end-to-end binary tests live in lint_tool_test.cpp; these link the
// library directly so a parser regression fails with a precise message
// instead of a diff of whole-tree lint output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/model.hpp"
#include "lint/rules.hpp"
#include "lint/scan.hpp"
#include "lint/toml.hpp"

namespace {

namespace fs = std::filesystem;
using rcp::lint::build_model;
using rcp::lint::Config;
using rcp::lint::content_hash;
using rcp::lint::load_config;
using rcp::lint::parse_toml_file;
using rcp::lint::RepoModel;
using rcp::lint::ScannedFile;

/// Writes `text` to a temp file and returns its path; removed in dtor.
class TempRules {
 public:
  explicit TempRules(const std::string& text)
      : path_((fs::temp_directory_path() /
               ("rcp_lint_core_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".toml"))
                  .string()) {
    std::ofstream out(path_);
    out << text;
  }
  ~TempRules() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Parses (and optionally loads) `text`, returning the exception message
/// or "" when no exception was thrown.
std::string parse_error(const std::string& text, bool load = false) {
  const TempRules rules(text);
  try {
    const auto doc = parse_toml_file(rules.path());
    if (load) {
      (void)load_config(doc);
    }
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

/// A minimal valid rule file; tests append the section under test.
const char* kMinimalRules =
    "[run]\n"
    "roots = [\"src\"]\n"
    "[[layer]]\n"
    "name = \"core\"\n"
    "paths = [\"src/\"]\n"
    "deps = []\n";

ScannedFile make_scan(const std::string& path,
                      std::vector<std::string> code) {
  ScannedFile f;
  f.path = path;
  f.code = std::move(code);
  return f;
}

// ---- TOML hard errors --------------------------------------------------

TEST(LintToml, DuplicateTableIsHardError) {
  const std::string msg = parse_error("[run]\nroots = [\"src\"]\n[run]\n");
  EXPECT_NE(msg.find("duplicate table [run]"), std::string::npos) << msg;
}

TEST(LintToml, PlainTableRedeclaredAsArrayIsHardError) {
  const std::string msg = parse_error("[layer]\n[[layer]]\n");
  EXPECT_NE(msg.find("redeclared as array of tables"), std::string::npos)
      << msg;
}

TEST(LintToml, ArrayTableRedeclaredAsPlainIsHardError) {
  const std::string msg = parse_error("[[layer]]\n[layer]\n");
  EXPECT_NE(msg.find("redeclared as plain table"), std::string::npos) << msg;
}

TEST(LintToml, MissingCommaBetweenArrayElementsIsHardError) {
  const std::string msg = parse_error("[run]\nroots = [\"a\" \"b\"]\n");
  EXPECT_NE(msg.find("missing `,` between array elements"),
            std::string::npos)
      << msg;
}

TEST(LintToml, LeadingCommaInArrayIsHardError) {
  const std::string msg = parse_error("[run]\nroots = [, \"a\"]\n");
  EXPECT_NE(msg.find("unexpected `,` in array"), std::string::npos) << msg;
}

TEST(LintToml, DuplicateKeyIsHardError) {
  const std::string msg =
      parse_error("[run]\nroots = [\"a\"]\nroots = [\"b\"]\n");
  EXPECT_NE(msg.find("duplicate key: roots"), std::string::npos) << msg;
}

// ---- Config-level hard errors (a typo must not disable a rule) ---------

TEST(LintConfig, UnknownKeyInSectionIsHardError) {
  const std::string msg = parse_error(
      std::string(kMinimalRules) + "[thread_safety]\npathz = [\"src/\"]\n",
      /*load=*/true);
  EXPECT_NE(msg.find("unknown key `pathz` in [thread_safety]"),
            std::string::npos)
      << msg;
}

TEST(LintConfig, UnknownSectionIsHardError) {
  const std::string msg = parse_error(
      std::string(kMinimalRules) + "[thread_safty]\npaths = [\"src/\"]\n",
      /*load=*/true);
  EXPECT_NE(msg.find("unknown section [thread_safty]"), std::string::npos)
      << msg;
}

TEST(LintConfig, TopLevelKeyIsHardError) {
  const std::string msg =
      parse_error("stray = \"x\"\n" + std::string(kMinimalRules),
                  /*load=*/true);
  EXPECT_NE(msg.find("top-level key"), std::string::npos) << msg;
}

TEST(LintConfig, BadProtocolModelIsHardError) {
  const std::string msg = parse_error(
      std::string(kMinimalRules) +
          "[[protocol]]\nfile = \"src/x.cpp\"\nmodel = \"byzantine\"\n",
      /*load=*/true);
  EXPECT_NE(msg.find("[[protocol]] model must be"), std::string::npos)
      << msg;
}

// ---- Annotation parser corner cases ------------------------------------

TEST(LintModel, MultiLineDeclarationAnnotationsParsed) {
  // The declaration spans four physical lines; the capability list inside
  // RCP_REQUIRES spans two. The token stream sees one statement.
  const RepoModel model = build_model(
      {make_scan("src/w.hpp",
                 {
                     "class Worker {",
                     "  void step()",
                     "      RCP_REQUIRES(mu_,",
                     "                   role_);",
                     "  void on_loop() RCP_ASSERT_CAPABILITY(role_);",
                     "  rcp::runtime::Mutex mu_;",
                     "  rcp::ThreadAffinity role_;",
                     "};",
                 })},
      nullptr);
  const auto it = model.classes.find("Worker");
  ASSERT_NE(it, model.classes.end());
  const auto& cls = it->second;
  ASSERT_EQ(cls.methods.count("step"), 1u);
  EXPECT_EQ(cls.methods.at("step").requires_caps,
            (std::vector<std::string>{"mu_", "role_"}));
  ASSERT_EQ(cls.methods.count("on_loop"), 1u);
  EXPECT_EQ(cls.methods.at("on_loop").asserts_cap, "role_");
  EXPECT_EQ(cls.capabilities,
            (std::vector<std::string>{"mu_", "role_"}));
}

TEST(LintModel, BraceInitMemberIsNotMistakenForMethod) {
  // `tick_ RCP_GUARDED_BY(m){0}` looks like `name(...)` followed by a
  // body; the parser must file it as a guarded member, not a method.
  const RepoModel model = build_model(
      {make_scan("src/v.hpp",
                 {
                     "class Volatile {",
                     "  rcp::runtime::Mutex m;",
                     "  int tick_ RCP_GUARDED_BY(m){0};",
                     "  int plain_{1};",
                     "};",
                 })},
      nullptr);
  const auto it = model.classes.find("Volatile");
  ASSERT_NE(it, model.classes.end());
  const auto& cls = it->second;
  ASSERT_EQ(cls.guarded.count("tick_"), 1u);
  EXPECT_EQ(cls.guarded.at("tick_"), "m");
  EXPECT_EQ(cls.guarded.count("plain_"), 0u);
  EXPECT_TRUE(cls.methods.empty());
}

TEST(LintModel, HeaderAndCppMergeIntoOneClass) {
  const RepoModel model = build_model(
      {make_scan("src/s.hpp",
                 {
                     "class Split {",
                     "  void bump() RCP_REQUIRES(mu_);",
                     "  rcp::runtime::Mutex mu_;",
                     "};",
                 }),
       make_scan("src/s.cpp",
                 {
                     "void Split::bump() { }",
                 })},
      nullptr);
  const auto it = model.classes.find("Split");
  ASSERT_NE(it, model.classes.end());
  EXPECT_EQ(it->second.methods.at("bump").requires_caps,
            (std::vector<std::string>{"mu_"}));
}

TEST(LintModel, ContentHashTracksIncludeTargets) {
  // Include targets are string literals, which the scanner blanks out of
  // `code` — the hash must still change when only a target changes.
  ScannedFile a = make_scan("src/a.cpp", {"", ""});
  ScannedFile b = make_scan("src/a.cpp", {"", ""});
  a.includes.push_back({1, "core/one.hpp", false});
  b.includes.push_back({1, "core/two.hpp", false});
  EXPECT_NE(content_hash(a), content_hash(b));
  EXPECT_EQ(content_hash(a), content_hash(a));
}

TEST(LintModel, CacheRoundTripReplaysExtraction) {
  const std::vector<ScannedFile> scans = {
      make_scan("src/w.hpp",
                {
                    "class Cached {",
                    "  void go() RCP_REQUIRES(mu_);",
                    "  rcp::runtime::Mutex mu_;",
                    "};",
                })};
  const RepoModel first = build_model(scans, nullptr);
  const std::string cache_path =
      (fs::temp_directory_path() / "rcp_lint_core_cache_test.txt").string();
  rcp::lint::save_model_cache(cache_path, first);

  RepoModel cache;
  ASSERT_TRUE(rcp::lint::load_model_cache(cache_path, cache));
  const RepoModel second = build_model(scans, &cache);
  std::remove(cache_path.c_str());

  ASSERT_EQ(second.files.size(), 1u);
  EXPECT_TRUE(second.files[0].from_cache);
  EXPECT_FALSE(first.files[0].from_cache);
  const auto it = second.classes.find("Cached");
  ASSERT_NE(it, second.classes.end());
  EXPECT_EQ(it->second.methods.at("go").requires_caps,
            (std::vector<std::string>{"mu_"}));
}

TEST(LintModel, StaleCacheIsSilentlyIgnored) {
  const std::string cache_path =
      (fs::temp_directory_path() / "rcp_lint_core_stale_cache.txt").string();
  {
    std::ofstream out(cache_path);
    out << "some-other-format-v9\n";
  }
  RepoModel cache;
  EXPECT_FALSE(rcp::lint::load_model_cache(cache_path, cache));
  std::remove(cache_path.c_str());
  EXPECT_FALSE(rcp::lint::load_model_cache("/nonexistent/model.cache",
                                           cache));
}

TEST(LintModel, TokenizerFusesCompoundPunctuation) {
  const auto toks = rcp::lint::tokenize({"a::b->c [[nodiscard]]"});
  std::vector<std::string> texts;
  texts.reserve(toks.size());
  for (const auto& t : toks) {
    texts.push_back(t.text);
  }
  EXPECT_EQ(texts, (std::vector<std::string>{"a", "::", "b", "->", "c",
                                             "[[", "nodiscard", "]]"}));
}

}  // namespace
