// Fixture: thread-safety violations — a guarded member touched without
// its mutex, a REQUIRES call without the capability, an EXCLUDES call
// made while holding it.
#include "common/annotations.hpp"
#include "runtime/sync.hpp"

namespace fixture {

class Counter {
 public:
  void unlocked_increment() { value_ += 1; }
  void missing_requires() { locked_bump(); }
  void deadlock_prone() {
    rcp::runtime::MutexLock lock(mu_);
    blocking_refresh();
  }

 private:
  void locked_bump() RCP_REQUIRES(mu_) { value_ += 1; }
  void blocking_refresh() RCP_EXCLUDES(mu_) {}
  rcp::runtime::Mutex mu_;
  int value_ RCP_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
