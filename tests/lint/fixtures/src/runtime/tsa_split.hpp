// Fixture: the annotations live on the declarations here; the matching
// .cpp definitions are checked against them through the cross-file class
// model (pass 1 merges ClassModels by name).
#pragma once

#include "common/annotations.hpp"
#include "runtime/sync.hpp"

namespace fixture {

class SplitCounter {
 public:
  void increment();

 private:
  void locked_bump() RCP_REQUIRES(mu_);
  rcp::runtime::Mutex mu_;
  int value_ RCP_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
