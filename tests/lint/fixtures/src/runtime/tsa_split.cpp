// Fixture: the definition forgets the lock the header demands — both
// diagnostics come from annotations declared in tsa_split.hpp.
#include "runtime/tsa_split.hpp"

namespace fixture {

void SplitCounter::increment() {
  value_ += 1;
  locked_bump();
}

}  // namespace fixture
