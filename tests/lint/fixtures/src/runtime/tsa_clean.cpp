// Fixture: correct lock discipline — scoped lockers (MutexLock,
// std::lock_guard), manual lock()/unlock(), unlock/relock through the
// scoped locker, a ThreadAffinity assert, and an RCP_NO_THREAD_SAFETY_ANALYSIS
// observer. Zero diagnostics.
#include <mutex>

#include "common/annotations.hpp"
#include "runtime/sync.hpp"

namespace fixture {

class CleanCounter {
 public:
  void scoped_increment() {
    rcp::runtime::MutexLock lock(mu_);
    value_ += 1;
    locked_bump();
  }
  void guard_increment() {
    std::lock_guard<std::mutex> guard(mu_);
    value_ += 1;
  }
  void manual_increment() {
    mu_.lock();
    value_ += 1;
    mu_.unlock();
  }
  void relock() {
    rcp::runtime::MutexLock lock(mu_);
    value_ += 1;
    lock.unlock();
    plain_ = 0;
    lock.lock();
    value_ += 1;
  }
  void asserted_write() {
    role_.assert_held();
    owned_ += 1;
  }
  [[nodiscard]] int racy_peek() const RCP_NO_THREAD_SAFETY_ANALYSIS {
    return value_;
  }

 private:
  void locked_bump() RCP_REQUIRES(mu_) { value_ += 1; }
  rcp::runtime::Mutex mu_;
  rcp::ThreadAffinity role_;
  int value_ RCP_GUARDED_BY(mu_) = 0;
  int owned_ RCP_GUARDED_BY(role_) = 0;
  int plain_ = 0;
};

}  // namespace fixture
