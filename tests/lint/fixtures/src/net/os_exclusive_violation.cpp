// Fixture: sits inside the os_headers allow path (src/net/), so plain
// OS includes pass — but <sys/epoll.h> is [[os_exclusive]] to
// src/net/reactor.cpp, so line 5 must still be flagged.
#include <poll.h>
#include <sys/epoll.h>

int fixture_os_exclusive() { return 0; }
