// Fixture: the `determinism-strict` extension. src/fuzz/ is a strict path:
// the report-only clocks tolerated elsewhere are banned here outright.
#include <chrono>

long long fixture_strict_clock() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

// `unsteady_clock_name` shares a suffix, not the token — stays clean.
int unsteady_clock_name = 0;
