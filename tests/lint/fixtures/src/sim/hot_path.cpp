// Fixture: allocation in a file covered by the hot-path contract. Expected:
//   line 8:  [hot-alloc] new
//   line 9:  [hot-alloc] malloc
//   line 10: [hot-alloc] .push_back()
//   line 11: [hot-alloc] ->resize()
//   line 12: [hot-alloc] make_unique
void hot_path(std::vector<int>& v, std::vector<int>* p) {
  int* leak = new int(7);
  void* raw = malloc(8);
  v.push_back(1);
  p->resize(32);
  auto owned = std::make_unique<int>(9);
  // Not flagged: declaration position (no member access), free function.
  push_back(v);
  resize(*p);
}
