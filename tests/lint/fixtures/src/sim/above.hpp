// Fixture: a sim-layer header that core code must not reach, directly
// or transitively.
#pragma once

namespace fixture {
inline int above_marker() { return 1; }
}  // namespace fixture
