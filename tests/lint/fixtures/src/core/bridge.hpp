// Fixture: this header's own include reaches up-layer — a direct `layer`
// violation here, and a `layer-closure` violation at whoever includes it.
#pragma once
#include "sim/above.hpp"

namespace fixture {
inline int bridge_marker() { return above_marker(); }
}  // namespace fixture
