// Fixture: inline quorum arithmetic in protocol code. Expected:
//   line 6: [threshold] n / 2
//   line 7: [threshold] (n + k) / 2
//   line 8: [threshold] 2 * k
bool threshold_violation(unsigned count, unsigned n, unsigned k) {
  const bool witness = count > n / 2;
  const unsigned echo_accept = (n + k) / 2 + 1;
  const unsigned ready = 2 * k + 1;
  // Not flagged: len / 2 is not a quorum shape for these patterns.
  const unsigned half_len = (count + 2) / 2;
  return witness && count >= echo_accept && count >= ready && half_len > 0;
}
