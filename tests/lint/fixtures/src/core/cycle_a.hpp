// Fixture: half of an include cycle — core/cycle_a.hpp and
// core/cycle_b.hpp include each other (include-cycle).
#pragma once
#include "core/cycle_b.hpp"

namespace fixture {
struct CycleA {};
}  // namespace fixture
