// Fixture: a core-layer file reaching up the layer graph. Expected:
//   line 5: [layer]  (core -> runtime edge)
//   line 6: [layer]  (core -> protocols edge)
//   line 7: [layer]  (unknown include target)
#include "net/socket.hpp"
#include "sim/hot_path.hpp"
#include "vendored/mystery.hpp"

#include "common/ok.hpp"

int core_layer_violation() { return 0; }
