// Fixture: every violation carries a justified suppression marker; rcp-lint
// must report zero errors and count the suppressions as honored. Exercises
// all three marker shapes: same-line, standalone-above, and whole-file.
// rcp-lint: allow-file(os-header) fixture demonstrates whole-file markers
#include <thread>
#include <mutex>

bool suppressed(unsigned count, unsigned n, std::vector<int>& v) {
  // rcp-lint: allow(threshold) fixture: standalone marker covers next line
  const bool witness = count > n / 2;
  int x = rand();  // rcp-lint: allow(determinism) fixture: same-line marker
  return witness && (x >= 0) && !v.empty();
}
