// Fixture: <immintrin.h> is [[os_exclusive]] to src/core/bitops_avx2.cpp —
// raw SIMD intrinsics anywhere else (even inside src/core/) bypass the
// dispatched bitops kernels, so line 4 must be flagged.
#include <immintrin.h>

int fixture_simd_exclusive() { return 0; }
