// Fixture: rules.toml declares this protocol fail_stop (k <= (n-1)/2) but
// the code registers under the malicious model — the declared resilience
// bound is wrong for what actually runs (resilience-bound).
#include "core/params.hpp"

namespace fixture {

void register_drifted(rcp::core::ConsensusParams params) {
  params.validate(rcp::core::FaultModel::malicious);
}

}  // namespace fixture
