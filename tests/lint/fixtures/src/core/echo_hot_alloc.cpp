// Fixture: allocation on the Byzantine echo path. The real tree lists
// src/core/echo_engine.cpp, reliable_broadcast.cpp and malicious.cpp under
// [allocation] (tools/lint_rules.toml); this mirrors that coverage with one
// violation per growth-call class the echo rewrite banned. Expected:
//   line 10: [hot-alloc] .reserve()
//   line 11: [hot-alloc] ->insert()
//   line 12: [hot-alloc] new
// The suppressed emplace on line 14 is a suppression, not an error.
void echo_hot_alloc(std::vector<int>& tally, std::vector<int>* deferred) {
  tally.reserve(64);
  deferred->insert(deferred->begin(), 1);
  int* slot = new int(3);
  // rcp-lint: allow(hot-alloc) fixture: dedup table sized once at startup
  tally.emplace(tally.begin(), 5);
}
