// Fixture: the other half of the include cycle with core/cycle_a.hpp.
#pragma once
#include "core/cycle_a.hpp"

namespace fixture {
struct CycleB {};
}  // namespace fixture
