// Fixture: public header that no scanned file includes (unused-header).
#pragma once

namespace fixture {
inline int orphan_answer() { return 42; }
}  // namespace fixture
