// Fixture: OS/threading headers in a core-layer file. Expected:
//   line 5: [os-header] <thread>
//   line 6: [os-header] <sys/socket.h>
//   line 7: [os-header] <poll.h>
#include <thread>
#include <sys/socket.h>
#include <poll.h>

#include <vector>  // allowed: not an OS header

int core_os_header_violation() { return 0; }
