// Fixture: suppression hygiene. Expected:
//   line 6: [unused-suppression] (nothing on or below that line violates)
//   line 8: [bad-suppression]    (marker with no reason)
int unused_suppression() {
  // rcp-lint: allow(determinism) nothing non-deterministic follows
  int fine = 1;
  // rcp-lint: allow(threshold)
  return fine;
}
