// Fixture: the [[protocol]] declaration in rules.toml says malicious and
// the registration site validates malicious — clean (resilience-bound).
#include "core/params.hpp"

namespace fixture {

void register_good(rcp::core::ConsensusParams params) {
  params.validate(rcp::core::FaultModel::malicious);
}

}  // namespace fixture
