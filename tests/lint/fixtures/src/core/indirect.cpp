// Fixture: every direct include is legal, but the transitive closure
// reaches src/sim/ through core/bridge.hpp — flagged by `layer-closure`
// (the direct hop inside bridge.hpp is the plain `layer` rule's job).
#include "core/bridge.hpp"

namespace fixture {
int indirect_marker() { return bridge_marker(); }
}  // namespace fixture
