// Fixture: a registration site with no matching [[protocol]] declaration
// in rules.toml — every fault-model commitment must be declared so the
// resilience bounds stay auditable (resilience-bound).
#include "core/params.hpp"

namespace fixture {

void register_unlisted(rcp::core::ConsensusParams params) {
  params.validate(rcp::core::FaultModel::fail_stop);
}

}  // namespace fixture
