// Fixture: a file with no violations at all — including tricky lexical
// shapes the scanner must not misread.
#include "common/ok.hpp"

/* block comment mentioning rand() and <thread> — not code */
int clean(int n) {
  const char* words = "rand() malloc(1) new int n / 2";  // in a string
  const char* raw = R"(time(nullptr) and system_clock)";
  const int separated = 1'000'000;  // digit separator, not a char literal
  return n + separated + (words != nullptr) + (raw != nullptr);
}
