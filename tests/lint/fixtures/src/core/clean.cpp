// Fixture: a file with no violations at all — including tricky lexical
// shapes the scanner must not misread.
#include <chrono>

#include "common/ok.hpp"

/* block comment mentioning rand() and <thread> — not code */
int clean(int n) {
  const char* words = "rand() malloc(1) new int n / 2";  // in a string
  const char* raw = R"(time(nullptr) and system_clock)";
  const int separated = 1'000'000;  // digit separator, not a char literal
  // <chrono> and steady_clock are determinism-strict-banned only under the
  // strict paths (src/fuzz/); real usage here must stay clean.
  const auto tick = std::chrono::steady_clock::now().time_since_epoch();
  return n + separated + (words != nullptr) + (raw != nullptr) +
         static_cast<int>(tick.count() != 0);
}
