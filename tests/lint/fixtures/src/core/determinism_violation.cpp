// Fixture: non-deterministic constructs. Expected:
//   line 7:  [determinism] random_device
//   line 8:  [determinism] mt19937
//   line 9:  [determinism] rand()
//   line 10: [determinism] time()
//   line 11: [determinism] system_clock
int determinism_violation(std::random_device& rd) {
  std::mt19937 engine(12345);
  int x = rand();
  long t = time(nullptr);
  auto now = std::chrono::system_clock::now();
  // Not flagged: "rand() inside a string literal" and rand in this comment.
  const char* s = "rand() time() random_device";
  int strand_count = my_strand(x);  // identifier boundary: no `rand` match
  return static_cast<int>(t) + static_cast<int>(now.time_since_epoch().count())
         + (s != nullptr) + strand_count;
}
