// End-to-end tests for tools/rcp-lint against the golden fixture tree in
// tests/lint/fixtures/. Each fixture file violates exactly one rule class;
// the tests assert the exact `file:line: error: ... [rule-id]` diagnostics,
// the suppression semantics, and the process exit codes.
//
// The binary path and fixture root arrive via compile definitions
// (RCP_LINT_BIN, RCP_LINT_FIXTURES) so the test works from any build dir.
#include <gtest/gtest.h>

// rcp-lint: allow(os-header) test harness inspects subprocess exit status
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
  std::vector<std::string> lines;
};

/// Runs rcp-lint with the fixture root/rules plus `extra_args`, capturing
/// combined stdout+stderr and the exit status.
LintRun run_lint(const std::string& extra_args) {
  const std::string cmd = std::string(RCP_LINT_BIN) + " --root " +
                          RCP_LINT_FIXTURES + " --rules " + RCP_LINT_FIXTURES +
                          "/rules.toml " + extra_args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return run;
  }
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  run.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status)
                                                     : -1;
  std::istringstream in(run.output);
  for (std::string line; std::getline(in, line);) {
    run.lines.push_back(line);
  }
  return run;
}

/// True when some output line starts with `prefix` and ends with `[rule]`.
bool has_diag(const LintRun& run, const std::string& prefix,
              const std::string& rule) {
  const std::string tag = "[" + rule + "]";
  for (const std::string& line : run.lines) {
    if (line.rfind(prefix, 0) == 0 && line.size() >= tag.size() &&
        line.compare(line.size() - tag.size(), tag.size(), tag) == 0) {
      return true;
    }
  }
  return false;
}

int count_rule(const LintRun& run, const std::string& rule) {
  const std::string tag = "[" + rule + "]";
  int n = 0;
  for (const std::string& line : run.lines) {
    if (line.size() >= tag.size() &&
        line.compare(line.size() - tag.size(), tag.size(), tag) == 0) {
      ++n;
    }
  }
  return n;
}

TEST(LintTool, LayerViolationsReportExactLines) {
  const LintRun run = run_lint("src/core/layer_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_TRUE(has_diag(run, "src/core/layer_violation.cpp:5: error:", "layer"))
      << run.output;
  EXPECT_TRUE(has_diag(run, "src/core/layer_violation.cpp:6: error:", "layer"))
      << run.output;
  EXPECT_TRUE(has_diag(run, "src/core/layer_violation.cpp:7: error:", "layer"))
      << run.output;
  EXPECT_EQ(count_rule(run, "layer"), 3) << run.output;
}

TEST(LintTool, OsHeadersBannedOutsideNetRuntime) {
  const LintRun run = run_lint("src/core/os_header_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (int line : {5, 6, 7}) {
    EXPECT_TRUE(has_diag(run,
                         "src/core/os_header_violation.cpp:" +
                             std::to_string(line) + ": error:",
                         "os-header"))
        << run.output;
  }
  EXPECT_EQ(count_rule(run, "os-header"), 3) << run.output;
}

TEST(LintTool, ExclusiveHeaderFlaggedEvenInsideOsAllowPath) {
  const LintRun run = run_lint("src/net/os_exclusive_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // <poll.h> on line 4 passes (src/net/ is an os_headers allow path);
  // only the [[os_exclusive]] <sys/epoll.h> include is an error.
  EXPECT_TRUE(has_diag(run, "src/net/os_exclusive_violation.cpp:5: error:",
                       "os-exclusive"))
      << run.output;
  EXPECT_EQ(count_rule(run, "os-exclusive"), 1) << run.output;
  EXPECT_EQ(count_rule(run, "os-header"), 0) << run.output;
}

TEST(LintTool, SimdHeaderConfinedToKernelTu) {
  const LintRun run = run_lint("src/core/simd_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // <immintrin.h> is [[os_exclusive]] to src/core/bitops_avx2.cpp: raw
  // SIMD intrinsics anywhere else — including elsewhere in src/core/ —
  // must go through the dispatched bitops kernels instead.
  EXPECT_TRUE(has_diag(run, "src/core/simd_violation.cpp:4: error:",
                       "os-exclusive"))
      << run.output;
  EXPECT_EQ(count_rule(run, "os-exclusive"), 1) << run.output;
}

TEST(LintTool, DeterminismBansTokensAndCalls) {
  const LintRun run = run_lint("src/core/determinism_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (int line : {7, 8, 9, 10, 11}) {
    EXPECT_TRUE(has_diag(run,
                         "src/core/determinism_violation.cpp:" +
                             std::to_string(line) + ": error:",
                         "determinism"))
        << run.output;
  }
  // Strings, comments, and `my_strand` (identifier boundary) stay clean.
  EXPECT_EQ(count_rule(run, "determinism"), 5) << run.output;
}

TEST(LintTool, DeterminismStrictBansClocksInFuzzPaths) {
  const LintRun run =
      run_lint("src/fuzz/determinism_strict_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Line 3: the <chrono> include; line 6: the steady_clock token.
  EXPECT_TRUE(has_diag(run,
                       "src/fuzz/determinism_strict_violation.cpp:3: error:",
                       "determinism-strict"))
      << run.output;
  EXPECT_TRUE(has_diag(run,
                       "src/fuzz/determinism_strict_violation.cpp:6: error:",
                       "determinism-strict"))
      << run.output;
  // `unsteady_clock_name` (identifier boundary) stays clean, and the base
  // determinism rule — which allows steady_clock — reports nothing.
  EXPECT_EQ(count_rule(run, "determinism-strict"), 2) << run.output;
  EXPECT_EQ(count_rule(run, "determinism"), 0) << run.output;
}

TEST(LintTool, DeterminismStrictOnlyAppliesToStrictPaths) {
  // steady_clock in a non-strict path is legal (it feeds timing reports):
  // the clean core fixture plus the rest of the tree report no
  // determinism-strict hits outside src/fuzz/.
  const LintRun run = run_lint("src/core/clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(count_rule(run, "determinism-strict"), 0) << run.output;
}

TEST(LintTool, HotPathAllocationContract) {
  const LintRun run = run_lint("src/sim/hot_path.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (int line : {8, 9, 10, 11, 12}) {
    EXPECT_TRUE(has_diag(run,
                         "src/sim/hot_path.cpp:" + std::to_string(line) +
                             ": error:",
                         "hot-alloc"))
        << run.output;
  }
  // Free functions named push_back/resize (no member access) are not hits.
  EXPECT_EQ(count_rule(run, "hot-alloc"), 5) << run.output;
}

TEST(LintTool, EchoPathAllocationFixtureMirrorsRealCoverage) {
  // Mirrors the real tree's [allocation] coverage of the Byzantine echo
  // path (src/core/echo_engine.cpp and friends): one violation per
  // growth-call class banned by the flat quorum accounting, plus one
  // honoured suppression.
  const LintRun run = run_lint("src/core/echo_hot_alloc.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (int line : {10, 11, 12}) {
    EXPECT_TRUE(has_diag(run,
                         "src/core/echo_hot_alloc.cpp:" +
                             std::to_string(line) + ": error:",
                         "hot-alloc"))
        << run.output;
  }
  EXPECT_EQ(count_rule(run, "hot-alloc"), 3) << run.output;
  EXPECT_NE(run.output.find("rcp-lint: 1 files, 3 error(s), 1 suppression(s) "
                            "(1 diagnostic(s) suppressed)"),
            std::string::npos)
      << run.output;
}

TEST(LintTool, ThresholdLiteralsFlagged) {
  const LintRun run = run_lint("src/core/threshold_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (int line : {6, 7, 8}) {
    EXPECT_TRUE(has_diag(run,
                         "src/core/threshold_violation.cpp:" +
                             std::to_string(line) + ": error:",
                         "threshold"))
        << run.output;
  }
  // `(count + 2) / 2` on line 10 is not a quorum shape.
  EXPECT_EQ(count_rule(run, "threshold"), 3) << run.output;
}

TEST(LintTool, SuppressionsSilenceDiagnosticsAndAreCounted) {
  const LintRun run = run_lint("src/core/suppressed.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  // 3 markers; the whole-file os-header marker covers two includes, so 4
  // diagnostics are suppressed in total.
  EXPECT_NE(run.output.find("rcp-lint: 1 files, 0 error(s), 3 suppression(s) "
                            "(4 diagnostic(s) suppressed)"),
            std::string::npos)
      << run.output;
}

TEST(LintTool, ListSuppressionsPrintsReasons) {
  const LintRun run = run_lint("--list-suppressions src/core/suppressed.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("src/core/suppressed.cpp:9: note: "
                            "allow(threshold) — fixture: standalone marker "
                            "covers next line"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/suppressed.cpp:11: note: "
                            "allow(determinism) — fixture: same-line marker"),
            std::string::npos)
      << run.output;
}

TEST(LintTool, UnusedAndMalformedSuppressionsAreErrors) {
  const LintRun run = run_lint("src/core/unused_suppression.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_TRUE(has_diag(run, "src/core/unused_suppression.cpp:5: error:",
                       "unused-suppression"))
      << run.output;
  EXPECT_TRUE(has_diag(run, "src/core/unused_suppression.cpp:7: error:",
                       "bad-suppression"))
      << run.output;
}

TEST(LintTool, CleanFileExitsZero) {
  const LintRun run = run_lint("src/core/clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("rcp-lint: 1 files, 0 error(s), 0 suppression(s) "
                            "(0 diagnostic(s) suppressed)"),
            std::string::npos)
      << run.output;
}

TEST(LintTool, ThreadSafetyViolationsReportExactLines) {
  const LintRun run = run_lint("src/runtime/tsa_violation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // 11: guarded member without the mutex; 12: REQUIRES call without it;
  // 15: EXCLUDES call made while a scoped locker holds it.
  for (int line : {11, 12, 15}) {
    EXPECT_TRUE(has_diag(run,
                         "src/runtime/tsa_violation.cpp:" +
                             std::to_string(line) + ": error:",
                         "thread-safety"))
        << run.output;
  }
  EXPECT_EQ(count_rule(run, "thread-safety"), 3) << run.output;
}

TEST(LintTool, ThreadSafetyCleanDisciplineExitsZero) {
  // Scoped lockers, manual lock/unlock, unlock-then-relock, an asserted
  // ThreadAffinity, and a NO_THREAD_SAFETY_ANALYSIS observer: no diags.
  const LintRun run = run_lint("src/runtime/tsa_clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(count_rule(run, "thread-safety"), 0) << run.output;
}

TEST(LintTool, ThreadSafetyMergesAnnotationsAcrossFiles) {
  // The annotations live in tsa_split.hpp; the violations are in the
  // out-of-line definitions in tsa_split.cpp. Only the merged class model
  // can catch them.
  const LintRun run =
      run_lint("src/runtime/tsa_split.hpp src/runtime/tsa_split.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_TRUE(has_diag(run, "src/runtime/tsa_split.cpp:8: error:",
                       "thread-safety"))
      << run.output;
  EXPECT_TRUE(has_diag(run, "src/runtime/tsa_split.cpp:9: error:",
                       "thread-safety"))
      << run.output;
  EXPECT_EQ(count_rule(run, "thread-safety"), 2) << run.output;
}

TEST(LintTool, IncludeCycleReportedOnceWithFullChain) {
  const LintRun run = run_lint("");
  EXPECT_TRUE(has_diag(run, "src/core/cycle_a.hpp:4: error:",
                       "include-cycle"))
      << run.output;
  // One diagnostic per cycle, not one per member file.
  EXPECT_EQ(count_rule(run, "include-cycle"), 1) << run.output;
  EXPECT_NE(run.output.find("src/core/cycle_a.hpp -> src/core/cycle_b.hpp "
                            "-> src/core/cycle_a.hpp"),
            std::string::npos)
      << run.output;
}

TEST(LintTool, LayerClosureDistinctFromDirectLayerRule) {
  const LintRun run = run_lint("");
  // bridge.hpp's direct hop into src/sim/ is the plain layer rule...
  EXPECT_TRUE(has_diag(run, "src/core/bridge.hpp:4: error:", "layer"))
      << run.output;
  // ...while indirect.cpp only reaches it transitively.
  EXPECT_TRUE(has_diag(run, "src/core/indirect.cpp:4: error:",
                       "layer-closure"))
      << run.output;
  EXPECT_EQ(count_rule(run, "layer-closure"), 1) << run.output;
  // The closure rule never double-reports direct edges.
  EXPECT_FALSE(has_diag(run, "src/core/indirect.cpp:4: error:", "layer"))
      << run.output;
}

TEST(LintTool, UnusedPublicHeaderFlagged) {
  const LintRun run = run_lint("");
  EXPECT_TRUE(has_diag(run, "src/core/orphan.hpp:1: error:", "unused-header"))
      << run.output;
  // Every other header is reachable (cycle pair include each other,
  // bridge/above/tsa_split are included) so exactly one hit.
  EXPECT_EQ(count_rule(run, "unused-header"), 1) << run.output;
}

TEST(LintTool, ResilienceBoundCrossChecksDeclaredFaultModels) {
  const LintRun run = run_lint("");
  // proto_drift.cpp: declared fail_stop, registers malicious.
  EXPECT_TRUE(has_diag(run, "src/core/proto_drift.cpp:9: error:",
                       "resilience-bound"))
      << run.output;
  // proto_undeclared.cpp: a registration site missing its declaration.
  EXPECT_TRUE(has_diag(run, "src/core/proto_undeclared.cpp:9: error:",
                       "resilience-bound"))
      << run.output;
  // proto_good.cpp matches its declaration and stays silent.
  EXPECT_EQ(count_rule(run, "resilience-bound"), 2) << run.output;
}

TEST(LintTool, CrossFileRulesSkippedOnPartialRuns) {
  // With an explicit path list the model is partial, so repo-level rules
  // (unused-header, include-cycle, resilience-bound, layer-closure) must
  // stay quiet rather than flag everything outside the slice.
  const LintRun run = run_lint("src/core/orphan.hpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(count_rule(run, "unused-header"), 0) << run.output;
  EXPECT_EQ(count_rule(run, "include-cycle"), 0) << run.output;
  EXPECT_EQ(count_rule(run, "resilience-bound"), 0) << run.output;
}

TEST(LintTool, GraphDotMatchesGoldenFixture) {
  const LintRun run = run_lint("--graph-dot");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  std::ifstream golden(std::string(RCP_LINT_FIXTURES) + "/graph.golden.dot");
  ASSERT_TRUE(golden.is_open());
  std::ostringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(run.output, want.str());
}

TEST(LintTool, ExpectMinFilesGuardsAgainstNarrowedTree) {
  const LintRun run = run_lint("--expect-min-files 1000");
  EXPECT_EQ(run.exit_code, 2) << run.output;
  EXPECT_NE(run.output.find("expected at least 1000 files"),
            std::string::npos)
      << run.output;
}

TEST(LintTool, ModelCacheRoundTripIsStable) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "rcp_lint_test_model.cache")
          .string();
  std::filesystem::remove(cache);
  const LintRun cold = run_lint("--model-cache " + cache);
  ASSERT_TRUE(std::filesystem::exists(cache));
  const LintRun warm = run_lint("--model-cache " + cache);
  // Identical diagnostics whether the model is rebuilt or replayed.
  EXPECT_EQ(cold.output, warm.output);
  EXPECT_EQ(cold.exit_code, warm.exit_code);
  std::filesystem::remove(cache);
}

TEST(LintTool, WholeFixtureTreeSummary) {
  const LintRun run = run_lint("");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(count_rule(run, "layer"), 4) << run.output;
  EXPECT_EQ(count_rule(run, "layer-closure"), 1) << run.output;
  EXPECT_EQ(count_rule(run, "include-cycle"), 1) << run.output;
  EXPECT_EQ(count_rule(run, "unused-header"), 1) << run.output;
  EXPECT_EQ(count_rule(run, "thread-safety"), 5) << run.output;
  EXPECT_EQ(count_rule(run, "resilience-bound"), 2) << run.output;
  EXPECT_EQ(count_rule(run, "os-header"), 3) << run.output;
  EXPECT_EQ(count_rule(run, "os-exclusive"), 2) << run.output;
  EXPECT_EQ(count_rule(run, "determinism"), 5) << run.output;
  EXPECT_EQ(count_rule(run, "determinism-strict"), 2) << run.output;
  EXPECT_EQ(count_rule(run, "hot-alloc"), 8) << run.output;
  EXPECT_EQ(count_rule(run, "threshold"), 3) << run.output;
  EXPECT_EQ(count_rule(run, "unused-suppression"), 1) << run.output;
  EXPECT_EQ(count_rule(run, "bad-suppression"), 1) << run.output;
  EXPECT_NE(run.output.find("rcp-lint: 25 files, 39 error(s), 5 suppression(s) "
                            "(5 diagnostic(s) suppressed)"),
            std::string::npos)
      << run.output;
}

TEST(LintTool, MissingRulesFileIsUsageError) {
  const std::string cmd = std::string(RCP_LINT_BIN) + " --root " +
                          RCP_LINT_FIXTURES +
                          " --rules /nonexistent/rules.toml 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::array<char, 4096> buf{};
  std::string out;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  ASSERT_TRUE(status >= 0 && WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2) << out;
}

}  // namespace
