#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace rcp {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("x").cell(std::uint64_t{5});
  t.row().cell("longer-name").cell(3.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2);
  t.row().cell(std::int64_t{-3}).cell(4.5, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n-3,4.5\n");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("x");
  t.row().cell("y");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("oops"), PreconditionError);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), PreconditionError);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table t({}), PreconditionError);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace rcp
