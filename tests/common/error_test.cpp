#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rcp {
namespace {

TEST(Error, ExpectMacroThrowsWithContext) {
  try {
    RCP_EXPECT(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, ExpectPassesQuietly) {
  EXPECT_NO_THROW(RCP_EXPECT(true, "fine"));
}

TEST(Error, InvariantMacroThrowsInvariantError) {
  EXPECT_THROW(RCP_INVARIANT(false, "broken"), InvariantError);
  EXPECT_NO_THROW(RCP_INVARIANT(true, "fine"));
}

TEST(Error, HierarchyIsCatchable) {
  try {
    RCP_INVARIANT(false, "x");
  } catch (const Error& e) {
    SUCCEED() << e.what();
    return;
  }
  FAIL() << "InvariantError should derive from rcp::Error";
}

TEST(Error, DecodeErrorIsAnError) {
  try {
    throw DecodeError("bad bytes");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "bad bytes");
  }
}

}  // namespace
}  // namespace rcp
