#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace rcp {
namespace {

TEST(Bytes, RoundTripAllWidths) {
  ByteWriter w;
  w.u8(0xab).u32(0xdeadbeef).u64(0x0123456789abcdefULL);
  const Bytes buf = std::move(w).take();
  EXPECT_EQ(buf.size(), 13u);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const Bytes buf = std::move(w).take();
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[1]), 0x03);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[2]), 0x02);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[3]), 0x01);
}

TEST(Bytes, ExtremeValues) {
  ByteWriter w;
  w.u8(0).u8(255).u64(0).u64(std::numeric_limits<std::uint64_t>::max());
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 255u);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u8(1).u8(2);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  (void)r.u8();
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(Bytes, EmptyReadThrows) {
  const Bytes empty;
  ByteReader r(empty);
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(Bytes, TrailingBytesDetected) {
  ByteWriter w;
  w.u32(5);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Bytes, RemainingTracksConsumption) {
  ByteWriter w;
  w.u64(1).u32(2);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 12u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace rcp
