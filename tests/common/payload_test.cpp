// Payload (SBO + copy-on-write byte buffer): inline/heap boundary, copy and
// move semantics, aliasing rules, and the decode-error contract carried over
// from the vector-based representation.
#include "common/payload.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace rcp {
namespace {

Payload filled(std::size_t count) {
  Payload p;
  for (std::size_t i = 0; i < count; ++i) {
    p.push_back(static_cast<std::byte>(i & 0xff));
  }
  return p;
}

bool matches_fill(const Payload& p, std::size_t count) {
  if (p.size() != count) {
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (p[i] != static_cast<std::byte>(i & 0xff)) {
      return false;
    }
  }
  return true;
}

TEST(Payload, DefaultIsEmptyInline) {
  const Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_FALSE(p.on_heap());
  EXPECT_EQ(p.capacity(), Payload::kInlineCapacity);
}

TEST(Payload, StaysInlineAtExactCapacity) {
  const Payload p = filled(Payload::kInlineCapacity);
  EXPECT_FALSE(p.on_heap());
  EXPECT_TRUE(matches_fill(p, Payload::kInlineCapacity));
}

TEST(Payload, SpillsToHeapAtCapacityPlusOne) {
  const Payload p = filled(Payload::kInlineCapacity + 1);
  EXPECT_TRUE(p.on_heap());
  EXPECT_TRUE(matches_fill(p, Payload::kInlineCapacity + 1));
}

TEST(Payload, InlineCapacityCoversEveryProtocolMessage) {
  // The largest wire message is the multivalued slot wrapper (9 bytes)
  // around a 14-byte binary-protocol message; 24 covers it with headroom.
  EXPECT_GE(Payload::kInlineCapacity, 24u);
}

TEST(Payload, CountConstructorZeroFills) {
  const Payload p(70'000);
  EXPECT_EQ(p.size(), 70'000u);
  EXPECT_TRUE(p.on_heap());
  EXPECT_EQ(p[0], std::byte{0});
  EXPECT_EQ(p[69'999], std::byte{0});
}

TEST(Payload, InitializerListConstruction) {
  const Payload p{std::byte{1}, std::byte{2}, std::byte{3}};
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], std::byte{2});
}

TEST(Payload, EqualityComparesContents) {
  EXPECT_EQ(filled(10), filled(10));
  EXPECT_EQ(filled(40), filled(40));
  EXPECT_NE(filled(10), filled(11));
  Payload a = filled(10);
  Payload b = filled(10);
  b.back() = std::byte{0xee};
  EXPECT_NE(a, b);
}

TEST(Payload, InlineCopyIsIndependent) {
  Payload a = filled(8);
  Payload b = a;
  b[0] = std::byte{0xff};
  EXPECT_EQ(a[0], std::byte{0});
  EXPECT_EQ(b[0], std::byte{0xff});
}

TEST(Payload, HeapCopySharesUntilWritten) {
  Payload a = filled(100);
  Payload b = a;
  EXPECT_TRUE(a.shared());
  EXPECT_TRUE(b.shared());
  // Const access does not detach.
  EXPECT_EQ(std::as_const(b)[5], std::as_const(a)[5]);
  EXPECT_TRUE(a.shared());
  // A write detaches exactly the written copy.
  b[0] = std::byte{0xff};
  EXPECT_FALSE(b.shared());
  EXPECT_FALSE(a.shared());
  EXPECT_EQ(a[0], std::byte{0});
  EXPECT_EQ(b[0], std::byte{0xff});
  EXPECT_TRUE(matches_fill(a, 100));
}

TEST(Payload, ShrinkOfSharedCopyDoesNotCorruptPeer) {
  Payload a = filled(100);
  Payload b = a;
  b.pop_back();
  b.resize(30);
  EXPECT_TRUE(matches_fill(a, 100));
  // Regrowing after a shared shrink must not scribble over the peer.
  b.resize(100, std::byte{0xaa});
  EXPECT_TRUE(matches_fill(a, 100));
  EXPECT_EQ(b[50], std::byte{0xaa});
}

TEST(Payload, MoveStealsStorageAndEmptiesSource) {
  Payload a = filled(100);
  const std::uint64_t allocs = Payload::heap_allocation_count();
  Payload b = std::move(a);
  Payload c;
  c = std::move(b);
  EXPECT_EQ(Payload::heap_allocation_count(), allocs);  // moves never allocate
  EXPECT_TRUE(matches_fill(c, 100));
  EXPECT_FALSE(c.shared());
}

TEST(Payload, CopyAssignReleasesOldStorage) {
  Payload a = filled(100);
  Payload b = filled(200);
  b = a;
  EXPECT_TRUE(matches_fill(b, 100));
  Payload& alias = a;
  a = alias;  // self-assignment is a no-op
  EXPECT_TRUE(matches_fill(a, 100));
}

TEST(Payload, InlineCopyDoesNotAllocate) {
  const Payload a = filled(Payload::kInlineCapacity);
  const std::uint64_t allocs = Payload::heap_allocation_count();
  const Payload b = a;
  const Payload c = b;
  EXPECT_EQ(Payload::heap_allocation_count(), allocs);
  EXPECT_EQ(c, a);
}

TEST(Payload, HeapCopyIsRefcountNotAllocation) {
  const Payload a = filled(1000);
  const std::uint64_t allocs = Payload::heap_allocation_count();
  const Payload b = a;
  const Payload c = a;
  EXPECT_EQ(Payload::heap_allocation_count(), allocs);
  EXPECT_EQ(c, b);
}

TEST(Payload, AssignAndInsertAppend) {
  const Payload src = filled(40);
  Payload dst;
  dst.assign(src.begin() + 10, src.end());
  EXPECT_EQ(dst.size(), 30u);
  EXPECT_EQ(dst[0], std::byte{10});
  Payload out = filled(4);
  out.insert(out.end(), src.begin(), src.begin() + 2);
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(out[4], std::byte{0});
  EXPECT_EQ(out[5], std::byte{1});
}

TEST(Payload, PopBackAcrossHeapBoundaryKeepsContents) {
  Payload p = filled(Payload::kInlineCapacity + 2);
  p.pop_back();
  p.pop_back();
  p.pop_back();
  EXPECT_TRUE(matches_fill(p, Payload::kInlineCapacity - 1));
}

TEST(Payload, ReserveKeepsContents) {
  Payload p = filled(10);
  p.reserve(500);
  EXPECT_GE(p.capacity(), 500u);
  EXPECT_TRUE(matches_fill(p, 10));
}

// ---- DecodeError semantics through ByteReader -----------------------------

TEST(PayloadDecode, TruncatedPayloadThrows) {
  ByteWriter w1;
  const Bytes buf = std::move(w1.u8(7)).take();  // 1 byte, reader wants 4
  ByteReader r(buf);
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(PayloadDecode, TrailingBytesThrow) {
  ByteWriter w2;
  const Bytes buf = std::move(w2.u32(5).u8(1)).take();
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(PayloadDecode, RoundTripThroughWriterAndReader) {
  ByteWriter w3;
  const Bytes buf = std::move(w3.u8(0xab).u32(0xdeadbeef).u64(1ull << 60)).take();
  EXPECT_EQ(buf.size(), 13u);
  EXPECT_FALSE(buf.on_heap());
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xabu);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 1ull << 60);
  r.expect_done();
}

}  // namespace
}  // namespace rcp
