#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace rcp {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(r.next());
  }
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(r.below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(11);
  std::array<int, 7> counts{};
  for (int i = 0; i < 7000; ++i) {
    counts[r.below(7)]++;
  }
  for (const int c : counts) {
    EXPECT_GT(c, 700);  // expected 1000 each; crude uniformity check
    EXPECT_LT(c, 1300);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdges) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += r.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng parent1(5);
  Rng parent2(5);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1.next(), child2.next());
  }
  // Child diverges from a fresh parent continuation.
  Rng parent3(5);
  (void)parent3.next();
  Rng child3 = Rng(5).split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child3.next() == parent3.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  r.shuffle(std::span<int>(shuffled));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng r(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[i] = i;
  }
  std::vector<int> orig = v;
  r.shuffle(std::span<int>(v));
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleWithoutReplacementBasics) {
  Rng r(37);
  const auto picked = r.sample_without_replacement(10, 4);
  EXPECT_EQ(picked.size(), 4u);
  std::set<std::uint32_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 4u);
  for (const auto item : picked) {
    EXPECT_LT(item, 10u);
  }
  // Selection sampling emits items in increasing order.
  EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
}

TEST(Rng, SampleFullUniverse) {
  Rng r(41);
  const auto picked = r.sample_without_replacement(5, 5);
  EXPECT_EQ(picked, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleEmpty) {
  Rng r(43);
  EXPECT_TRUE(r.sample_without_replacement(5, 0).empty());
  EXPECT_TRUE(r.sample_without_replacement(0, 0).empty());
}

TEST(Rng, SampleIsUniform) {
  Rng r(47);
  std::array<int, 5> hits{};
  for (int trial = 0; trial < 5000; ++trial) {
    for (const auto item : r.sample_without_replacement(5, 2)) {
      hits[item]++;
    }
  }
  // Each item appears in a 2-of-5 sample with probability 2/5 = 2000/5000.
  for (const int h : hits) {
    EXPECT_GT(h, 1800);
    EXPECT_LT(h, 2200);
  }
}

TEST(Rng, SplitMix64IsDeterministic) {
  std::uint64_t s1 = 99;
  std::uint64_t s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace rcp
