#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace rcp {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, CountsAndMean) {
  Histogram h;
  h.add(1);
  h.add(2, 3);
  h.add(10);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_of(2), 3u);
  EXPECT_EQ(h.count_of(7), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 6.0 + 10.0) / 5.0);
  EXPECT_EQ(h.max_value(), 10u);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h.add(v);
  }
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_EQ(h.quantile(0.99), 99u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_EQ(h.quantile(0.0), 1u);  // ceil(0) -> first bucket
}

TEST(Histogram, QuantilePreconditions) {
  Histogram h;
  EXPECT_THROW((void)h.quantile(0.5), PreconditionError);
  h.add(1);
  EXPECT_THROW((void)h.quantile(-0.1), PreconditionError);
  EXPECT_THROW((void)h.quantile(1.1), PreconditionError);
}

TEST(QuantileFn, Interpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(QuantileFn, UnsortedInput) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
}

TEST(QuantileFn, Preconditions) {
  const std::vector<double> empty;
  EXPECT_THROW((void)quantile(empty, 0.5), PreconditionError);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)quantile(one, 2.0), PreconditionError);
}

}  // namespace
}  // namespace rcp
