#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace rcp {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, MergeBothEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeOneSidedIsExactCopy) {
  RunningStats src;
  for (const double x : {1.0, 4.0, 9.0, 16.0}) {
    src.add(x);
  }
  RunningStats dst;
  dst.merge(src);
  // Merging into an empty accumulator must be bit-exact, not merely close:
  // the parallel runtime relies on it for single-shard series.
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_EQ(dst.mean(), src.mean());
  EXPECT_EQ(dst.variance(), src.variance());
  EXPECT_EQ(dst.min(), src.min());
  EXPECT_EQ(dst.max(), src.max());
}

TEST(RunningStats, MergeAssociativity) {
  // (a + b) + c and a + (b + c) agree to numerical precision (Chan et al.
  // pairwise update), with disjoint value ranges per block.
  RunningStats a;
  RunningStats b;
  RunningStats c;
  RunningStats all;
  for (int i = 0; i < 30; ++i) {
    const double xa = 1.0 + 0.1 * i;
    const double xb = 100.0 - 0.3 * i;
    const double xc = -50.0 + 2.0 * i;
    a.add(xa);
    b.add(xb);
    c.add(xc);
    all.add(xa);
    all.add(xb);
    all.add(xc);
  }
  RunningStats left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  RunningStats bc = b;     // a + (b + c)
  bc.merge(c);
  RunningStats right = a;
  right.merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
  // Both orders agree with straight sequential accumulation.
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergePropagatesMinMaxAcrossBlocks) {
  RunningStats lo;
  lo.add(-5.0);
  lo.add(-2.0);
  RunningStats hi;
  hi.add(7.0);
  hi.add(3.0);
  lo.merge(hi);
  EXPECT_DOUBLE_EQ(lo.min(), -5.0);
  EXPECT_DOUBLE_EQ(lo.max(), 7.0);
  EXPECT_EQ(lo.count(), 4u);
}

TEST(Histogram, CountsAndMean) {
  Histogram h;
  h.add(1);
  h.add(2, 3);
  h.add(10);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_of(2), 3u);
  EXPECT_EQ(h.count_of(7), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 6.0 + 10.0) / 5.0);
  EXPECT_EQ(h.max_value(), 10u);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h.add(v);
  }
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_EQ(h.quantile(0.99), 99u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_EQ(h.quantile(0.0), 1u);  // ceil(0) -> first bucket
}

TEST(Histogram, QuantilePreconditions) {
  Histogram h;
  EXPECT_THROW((void)h.quantile(0.5), PreconditionError);
  h.add(1);
  EXPECT_THROW((void)h.quantile(-0.1), PreconditionError);
  EXPECT_THROW((void)h.quantile(1.1), PreconditionError);
}

TEST(QuantileFn, Interpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(QuantileFn, UnsortedInput) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
}

TEST(QuantileFn, Preconditions) {
  const std::vector<double> empty;
  EXPECT_THROW((void)quantile(empty, 0.5), PreconditionError);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)quantile(one, 2.0), PreconditionError);
}

}  // namespace
}  // namespace rcp
