// Section 4.1 chain: structure, the paper's w_i law, and the headline
// "expected number of phases is less than 7".
#include "analysis/failstop_chain.hpp"

#include <gtest/gtest.h>

#include "analysis/collapsed_chain.hpp"
#include "analysis/distributions.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace rcp::analysis {
namespace {

TEST(FailStopChain, RequiresDivisibleBySix) {
  EXPECT_THROW(FailStopChain(5), PreconditionError);
  EXPECT_THROW(FailStopChain(10), PreconditionError);
  EXPECT_NO_THROW(FailStopChain(6));
  EXPECT_NO_THROW(FailStopChain(12));
}

TEST(FailStopChain, AbsorbingRegionsMatchPaper) {
  const FailStopChain c(12);  // n/3 = 4, 2n/3 = 8
  for (unsigned i = 0; i <= 12; ++i) {
    const bool expected = i <= 3 || i >= 9;
    EXPECT_EQ(c.is_absorbing_state(i), expected) << "state " << i;
    EXPECT_EQ(c.chain().is_absorbing(i), expected) << "state " << i;
  }
}

TEST(FailStopChain, WExtremes) {
  const FailStopChain c(12);
  // With no 1s in the population, no sample can have a 1-majority.
  EXPECT_DOUBLE_EQ(c.w(0), 0.0);
  // All 1s: every sample is all 1s.
  EXPECT_DOUBLE_EQ(c.w(12), 1.0);
}

TEST(FailStopChain, WMonotoneInState) {
  const FailStopChain c(30);
  for (unsigned i = 0; i < 30; ++i) {
    EXPECT_LE(c.w(i), c.w(i + 1) + 1e-12) << "state " << i;
  }
}

TEST(FailStopChain, WMatchesDirectHypergeometric) {
  const FailStopChain c(18);  // sample 12, threshold > 6
  for (unsigned i = 0; i <= 18; ++i) {
    EXPECT_NEAR(c.w(i), hypergeometric_tail_greater(18, i, 12, 6), 1e-12);
  }
}

TEST(FailStopChain, TieBreakBiasesToZero) {
  // The majority rule sends exact ties to 0, so from the balanced state the
  // flip probability is strictly below 1/2.
  for (const unsigned n : {12u, 30u, 60u}) {
    const FailStopChain c(n);
    EXPECT_LT(c.w(n / 2), 0.5);
    EXPECT_GT(c.w(n / 2), 0.0);
  }
}

TEST(FailStopChain, ExpectedPhasesBelowPaperBound) {
  // The paper's headline: expected phases < 7 (via the collapsed chain with
  // l^2 = 1.5). The exact chain must respect the bound everywhere.
  for (const unsigned n : {6u, 12u, 30u, 60u, 120u}) {
    const FailStopChain c(n);
    EXPECT_LT(c.expected_phases_from_balanced(), 7.0) << "n=" << n;
    for (unsigned i = 0; i <= n; ++i) {
      EXPECT_LT(c.expected_phases_from(i), 7.0) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FailStopChain, SlowestStateSitsJustAboveBalance) {
  // The tie-to-0 majority rule biases the walk downward, so the slowest
  // transient state is not the balanced state itself but one slightly
  // above it (the downward drift must first carry it across the centre).
  const FailStopChain c(30);
  unsigned argmax = 0;
  double worst = 0.0;
  for (unsigned i = 0; i <= 30; ++i) {
    if (c.expected_phases_from(i) > worst) {
      worst = c.expected_phases_from(i);
      argmax = i;
    }
  }
  EXPECT_GT(argmax, 30u / 2 - 1);
  EXPECT_LE(argmax, 2 * 30u / 3);
  EXPECT_GE(worst, c.expected_phases_from_balanced());
}

TEST(FailStopChain, AbsorbingStatesHaveZeroTime) {
  const FailStopChain c(12);
  EXPECT_DOUBLE_EQ(c.expected_phases_from(0), 0.0);
  EXPECT_DOUBLE_EQ(c.expected_phases_from(12), 0.0);
  EXPECT_GT(c.expected_phases_from(6), 0.0);
}

TEST(FailStopChain, MonteCarloAgreesWithExact) {
  const FailStopChain c(12);
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(c.chain().simulate_hitting_time(6, rng)));
  }
  EXPECT_NEAR(stats.mean(), c.expected_phases_from_balanced(), 0.05);
}

TEST(FailStopChain, MajorityLikelyWins) {
  // The paper: "the consensus value is still likely to be equal to the
  // majority of the initial input values."
  const FailStopChain c(30);
  // From a clear 1-majority transient state, deciding 1 dominates.
  EXPECT_GT(c.probability_decide_one_from(19), 0.9);
  // Symmetric dominance for a 0-majority state.
  EXPECT_LT(c.probability_decide_one_from(11), 0.1);
  // Monotone in the starting count.
  for (unsigned i = 0; i < 30; ++i) {
    EXPECT_LE(c.probability_decide_one_from(i),
              c.probability_decide_one_from(i + 1) + 1e-9)
        << "state " << i;
  }
  // Absorbing endpoints are certain.
  EXPECT_DOUBLE_EQ(c.probability_decide_one_from(0), 0.0);
  EXPECT_DOUBLE_EQ(c.probability_decide_one_from(30), 1.0);
}

TEST(FailStopChain, TieBiasPullsBalancedStateBelowHalf) {
  // The tie-to-0 rule makes even the balanced state favour a 0-decision.
  for (const unsigned n : {12u, 30u, 60u}) {
    const FailStopChain c(n);
    EXPECT_LT(c.probability_decide_one_from(n / 2), 0.5) << "n=" << n;
  }
}

TEST(FailStopChain, StateOutOfRangeThrows) {
  const FailStopChain c(6);
  EXPECT_THROW((void)c.w(7), PreconditionError);
  EXPECT_THROW((void)c.expected_phases_from(7), PreconditionError);
  EXPECT_THROW((void)c.probability_decide_one_from(7), PreconditionError);
}

}  // namespace
}  // namespace rcp::analysis
