#include "analysis/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcp::analysis {
namespace {

TEST(Binomial, PmfSumsToOne) {
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (const unsigned n : {1u, 5u, 20u, 100u}) {
      double sum = 0.0;
      for (unsigned j = 0; j <= n; ++j) {
        sum += binomial_pmf(n, p, j);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " p=" << p;
    }
  }
}

TEST(Binomial, DegenerateEdges) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 9), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.5, 11), 0.0);
}

TEST(Binomial, KnownValues) {
  // Binomial(4, 0.5): pmf = 1/16, 4/16, 6/16, 4/16, 1/16.
  EXPECT_NEAR(binomial_pmf(4, 0.5, 0), 1.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 6.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 4), 1.0 / 16, 1e-12);
  // Binomial(3, 0.2) at 1: 3 * 0.2 * 0.64 = 0.384.
  EXPECT_NEAR(binomial_pmf(3, 0.2, 1), 0.384, 1e-12);
}

TEST(Binomial, MeanFromPmf) {
  const unsigned n = 30;
  const double p = 0.37;
  double mean = 0.0;
  for (unsigned j = 0; j <= n; ++j) {
    mean += j * binomial_pmf(n, p, j);
  }
  EXPECT_NEAR(mean, n * p, 1e-9);
}

TEST(Binomial, TailGeqComplementsPmf) {
  const unsigned n = 12;
  const double p = 0.4;
  for (unsigned j = 0; j <= n; ++j) {
    double expected = 0.0;
    for (unsigned i = j; i <= n; ++i) {
      expected += binomial_pmf(n, p, i);
    }
    EXPECT_NEAR(binomial_tail_geq(n, p, j), expected, 1e-12);
  }
  EXPECT_NEAR(binomial_tail_geq(n, p, 0), 1.0, 1e-12);
}

TEST(Hypergeometric, PmfSumsToOne) {
  const unsigned pop = 20;
  for (unsigned special = 0; special <= pop; special += 4) {
    for (unsigned sample = 1; sample <= pop; sample += 5) {
      double sum = 0.0;
      for (unsigned x = 0; x <= sample; ++x) {
        sum += hypergeometric_pmf(pop, special, sample, x);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9)
          << "special=" << special << " sample=" << sample;
    }
  }
}

TEST(Hypergeometric, KnownValue) {
  // Population 10, 4 special, sample 3: P[X = 2] = C(4,2)C(6,1)/C(10,3)
  // = 6*6/120 = 0.3.
  EXPECT_NEAR(hypergeometric_pmf(10, 4, 3, 2), 0.3, 1e-12);
}

TEST(Hypergeometric, SupportBounds) {
  // Sample 8 from population 10 with 4 special: at least 2 special items
  // must be drawn (only 6 non-special exist).
  EXPECT_DOUBLE_EQ(hypergeometric_pmf(10, 4, 8, 1), 0.0);
  EXPECT_GT(hypergeometric_pmf(10, 4, 8, 2), 0.0);
  EXPECT_DOUBLE_EQ(hypergeometric_pmf(10, 4, 8, 5), 0.0);
}

TEST(Hypergeometric, MeanAndVarianceFormulas) {
  // Paper eq. 4 and 5.
  const unsigned pop = 30, special = 12, sample = 10;
  EXPECT_NEAR(hypergeometric_mean(pop, special, sample),
              10.0 * 12.0 / 30.0, 1e-12);
  const double expected_var =
      10.0 * 12.0 * 18.0 * 20.0 / (30.0 * 30.0 * 29.0);
  EXPECT_NEAR(hypergeometric_variance(pop, special, sample), expected_var,
              1e-12);
  // Cross-check against moments of the pmf.
  double mean = 0.0, second = 0.0;
  for (unsigned x = 0; x <= sample; ++x) {
    const double p = hypergeometric_pmf(pop, special, sample, x);
    mean += x * p;
    second += static_cast<double>(x) * x * p;
  }
  EXPECT_NEAR(mean, hypergeometric_mean(pop, special, sample), 1e-9);
  EXPECT_NEAR(second - mean * mean,
              hypergeometric_variance(pop, special, sample), 1e-9);
}

TEST(Hypergeometric, TailGreaterStrict) {
  const unsigned pop = 12, special = 5, sample = 6;
  for (unsigned x = 0; x <= sample; ++x) {
    double expected = 0.0;
    for (unsigned i = x + 1; i <= sample; ++i) {
      expected += hypergeometric_pmf(pop, special, sample, i);
    }
    EXPECT_NEAR(hypergeometric_tail_greater(pop, special, sample, x), expected,
                1e-12);
  }
}

TEST(Hypergeometric, ChebyshevBoundFromPaper) {
  // The paper derives w_{n/2 - l*sqrt(n)/2 - 1} < 1/(2 l^2) via Chebyshev
  // (eq. 6-7); verify the exact tail respects the bound at l^2 = 1.5.
  for (const unsigned n : {36u, 144u, 576u}) {
    const double l = std::sqrt(1.5);
    const unsigned state =
        static_cast<unsigned>(n / 2.0 - l * std::sqrt(n) / 2.0 - 1.0);
    const double w = hypergeometric_tail_greater(n, state, 2 * n / 3, n / 3);
    EXPECT_LT(w, 1.0 / (2.0 * 1.5)) << "n=" << n;
  }
}

}  // namespace
}  // namespace rcp::analysis
