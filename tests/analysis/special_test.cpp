#include "analysis/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcp::analysis {
namespace {

TEST(LogBinomial, SmallExactValues) {
  EXPECT_NEAR(std::exp(log_binomial(5, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial(5, 1)), 5.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-11);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(20, 10)), 184756.0, 1e-6);
}

TEST(LogBinomial, Symmetry) {
  for (unsigned n = 1; n <= 40; ++n) {
    for (unsigned k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_binomial(n, k), log_binomial(n, n - k), 1e-9);
    }
  }
}

TEST(LogBinomial, OutOfRangeIsMinusInfinity) {
  EXPECT_EQ(log_binomial(3, 4), -std::numeric_limits<double>::infinity());
}

TEST(LogBinomial, PascalIdentity) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k).
  for (unsigned n = 2; n <= 30; ++n) {
    for (unsigned k = 1; k < n; ++k) {
      const double lhs = std::exp(log_binomial(n, k));
      const double rhs =
          std::exp(log_binomial(n - 1, k - 1)) + std::exp(log_binomial(n - 1, k));
      EXPECT_NEAR(lhs, rhs, 1e-6 * lhs);
    }
  }
}

TEST(NormalUpperTail, KnownValues) {
  EXPECT_NEAR(normal_upper_tail(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_upper_tail(1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(normal_upper_tail(2.0), 0.022750131948179207, 1e-12);
  // The paper's l = sqrt(1.5).
  EXPECT_NEAR(normal_upper_tail(1.224744871391589), 0.110335, 1e-5);
}

TEST(NormalUpperTail, Symmetry) {
  for (const double x : {0.1, 0.7, 1.3, 2.9}) {
    EXPECT_NEAR(normal_upper_tail(x) + normal_upper_tail(-x), 1.0, 1e-12);
  }
}

TEST(NormalCdf, ComplementOfUpperTail) {
  for (const double x : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    EXPECT_NEAR(normal_cdf(x) + normal_upper_tail(x), 1.0, 1e-12);
  }
}

TEST(NormalCdf, Monotone) {
  double prev = 0.0;
  for (double x = -4.0; x <= 4.0; x += 0.25) {
    const double c = normal_cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace rcp::analysis
