// The paper's collapsed chain R (eq. 11) and its absorption bound (eq. 13).
#include "analysis/collapsed_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/failstop_chain.hpp"
#include "analysis/special.hpp"
#include "common/error.hpp"

namespace rcp::analysis {
namespace {

constexpr double kL = CollapsedChain::kPaperL;

TEST(CollapsedChain, KPaperLIsSqrt15) {
  EXPECT_NEAR(kL * kL, 1.5, 1e-12);
}

TEST(CollapsedChain, RIsRowStochastic) {
  for (const unsigned n : {12u, 36u, 144u, 900u}) {
    const Matrix r = CollapsedChain::r_matrix(n, kL);
    for (std::size_t row = 0; row < 3; ++row) {
      EXPECT_NEAR(r.row_sum(row), 1.0, 1e-12) << "n=" << n << " row=" << row;
      for (std::size_t col = 0; col < 3; ++col) {
        EXPECT_GE(r.at(row, col), 0.0);
      }
    }
  }
}

TEST(CollapsedChain, RMatchesEquation11) {
  const unsigned n = 144;
  const Matrix r = CollapsedChain::r_matrix(n, kL);
  const double phi_l = normal_upper_tail(kL);
  const double g =
      normal_upper_tail((std::sqrt(144.0) + 3.0 * kL) / std::sqrt(8.0));
  EXPECT_NEAR(r.at(0, 0), 1.0 - 2.0 * phi_l, 1e-12);
  EXPECT_NEAR(r.at(0, 1), 2.0 * phi_l, 1e-12);
  EXPECT_DOUBLE_EQ(r.at(0, 2), 0.0);
  EXPECT_NEAR(r.at(1, 0), g, 1e-12);
  EXPECT_NEAR(r.at(1, 1), 0.5 - g, 1e-12);
  EXPECT_NEAR(r.at(1, 2), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(r.at(2, 2), 1.0);
}

TEST(CollapsedChain, ClosedFormEqualsFundamentalMatrix) {
  // Eq. 13 is derived from N = (I-Q)^{-1}; both computations must agree to
  // numerical precision.
  for (const unsigned n : {12u, 36u, 144u, 900u}) {
    EXPECT_NEAR(CollapsedChain::expected_absorption_closed_form(n, kL),
                CollapsedChain::expected_absorption_via_fundamental(n, kL),
                1e-9)
        << "n=" << n;
  }
}

TEST(CollapsedChain, PaperHeadlineBoundBelowSeven) {
  // "After substituting the value of l we get that the expected number of
  // phases is less than 7."
  EXPECT_LT(CollapsedChain::asymptotic_bound(kL), 7.0);
  for (const unsigned n : {36u, 144u, 900u, 90000u}) {
    EXPECT_LT(CollapsedChain::expected_absorption_closed_form(n, kL), 7.0)
        << "n=" << n;
  }
}

TEST(CollapsedChain, BoundConvergesToAsymptoticForLargeN) {
  const double asym = CollapsedChain::asymptotic_bound(kL);
  EXPECT_NEAR(CollapsedChain::expected_absorption_closed_form(9'000'000, kL),
              asym, 1e-9);
  // Finite n bounds exceed the asymptotic value (the Phi(g) term).
  EXPECT_GE(CollapsedChain::expected_absorption_closed_form(36, kL), asym);
}

TEST(CollapsedChain, BoundDominatesExactChain) {
  // The collapse was constructed to only increase expected absorption time,
  // so eq. 13 must upper-bound the exact chain's balanced-state time.
  for (const unsigned n : {12u, 36u, 60u, 120u}) {
    const FailStopChain exact(n);
    EXPECT_GE(CollapsedChain::expected_absorption_closed_form(n, kL),
              exact.expected_phases_from_balanced())
        << "n=" << n;
  }
}

TEST(CollapsedChain, ValidatesInputs) {
  EXPECT_THROW((void)CollapsedChain::r_matrix(36, -1.0), PreconditionError);
  EXPECT_THROW((void)CollapsedChain::r_matrix(36, 0.0), PreconditionError);
  // Any positive l keeps Phi(l) < 1/2, so the rows stay stochastic even for
  // tiny l.
  EXPECT_NO_THROW((void)CollapsedChain::r_matrix(36, 1e-9));
}

}  // namespace
}  // namespace rcp::analysis
