#include "analysis/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rcp::analysis {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.5);
  m.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_THROW((void)m.at(2, 0), PreconditionError);
  EXPECT_THROW((void)m.at(0, 3), PreconditionError);
  EXPECT_THROW(Matrix(0, 1), PreconditionError);
}

TEST(Matrix, IdentityMultiplication) {
  Matrix a(3, 3, 0.0);
  double v = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.at(i, j) = v++;
    }
  }
  const Matrix i3 = Matrix::identity(3);
  EXPECT_NEAR(a.multiply(i3).max_abs_diff(a), 0.0, 1e-15);
  EXPECT_NEAR(i3.multiply(a).max_abs_diff(a), 0.0, 1e-15);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW((void)a.multiply(b), PreconditionError);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3);
  a.at(0, 2) = 5.0;
  a.at(1, 0) = -1.0;
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), -1.0);
}

TEST(Matrix, RowSum) {
  Matrix a(2, 3, 1.5);
  EXPECT_DOUBLE_EQ(a.row_sum(0), 4.5);
  EXPECT_THROW((void)a.row_sum(2), PreconditionError);
}

TEST(Solve, KnownSystem) {
  // 2x + y = 5, x - y = 1  ->  x = 2, y = 1.
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = -1;
  const auto x = solve(a, {5.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Solve, NeedsPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve(a, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW((void)solve(a, {1.0, 2.0}), Error);
}

TEST(Solve, SizeMismatchThrows) {
  Matrix a(2, 2, 1.0);
  EXPECT_THROW((void)solve(a, {1.0}), PreconditionError);
  Matrix rect(2, 3, 1.0);
  EXPECT_THROW((void)solve(rect, {1.0, 2.0}), PreconditionError);
}

TEST(Inverse, RoundTrip) {
  Matrix a(3, 3);
  a.at(0, 0) = 4;
  a.at(0, 1) = 7;
  a.at(0, 2) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 6;
  a.at(1, 2) = 1;
  a.at(2, 0) = 2;
  a.at(2, 1) = 5;
  a.at(2, 2) = 3;
  const Matrix inv = inverse(a);
  EXPECT_NEAR(a.multiply(inv).max_abs_diff(Matrix::identity(3)), 0.0, 1e-10);
  EXPECT_NEAR(inv.multiply(a).max_abs_diff(Matrix::identity(3)), 0.0, 1e-10);
}

TEST(Matrix, MaxAbsDiffShapeMismatch) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW((void)a.max_abs_diff(b), PreconditionError);
}

}  // namespace
}  // namespace rcp::analysis
