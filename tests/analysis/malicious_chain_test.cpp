// Section 4.2 chain: the balancing attack against the malicious protocol,
// k <= n/5, k = l sqrt(n) / 2.
#include "analysis/malicious_chain.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rcp::analysis {
namespace {

TEST(MaliciousChain, Validation) {
  EXPECT_NO_THROW(MaliciousChain(36, 4));
  EXPECT_THROW(MaliciousChain(36, 3), PreconditionError);   // n-k odd
  EXPECT_THROW(MaliciousChain(36, 12), PreconditionError);  // 3k = n
  EXPECT_THROW(MaliciousChain(2, 0), PreconditionError);    // n too small
}

TEST(MaliciousChain, VisibleOnesBalancing) {
  const MaliciousChain c(36, 4);  // m = 32, balanced state 16
  // Below balance: all 4 malicious vote 1.
  EXPECT_EQ(c.visible_ones(10), 14u);
  // Above balance: they vote 0.
  EXPECT_EQ(c.visible_ones(20), 20u);
  // At balance: split, so the visible population is exactly n/2.
  EXPECT_EQ(c.visible_ones(16), 18u);
  EXPECT_EQ(c.visible_ones(16), 36u / 2);
}

TEST(MaliciousChain, AbsorbingRegionsMatchPaper) {
  const MaliciousChain c(36, 4);  // (n-3k)/2 = 12, (n+k)/2 = 20, m = 32
  for (unsigned s = 0; s <= 32; ++s) {
    const bool expected = s < 12 || s > 20;
    EXPECT_EQ(c.is_absorbing_state(s), expected) << "state " << s;
  }
}

TEST(MaliciousChain, WExtremesAndMonotonicityOutsideBalanceBand) {
  const MaliciousChain c(36, 4);
  EXPECT_LT(c.w(0), 1e-6);
  EXPECT_GT(c.w(32), 1.0 - 1e-6);
  // w is monotone in the visible population.
  for (unsigned s = 17; s < 32; ++s) {
    EXPECT_LE(c.w(s), c.w(s + 1) + 1e-12);
  }
}

TEST(MaliciousChain, BalancingFlattensTheCentre) {
  // Within k of the balanced state the malicious votes pin the visible
  // population near n/2, so w stays near the balanced value; outside the
  // band it drifts fast. Compare drift |w - w_balanced| just inside vs
  // well outside the band.
  const MaliciousChain c(100, 10);  // m = 90, balanced 45, band ±10
  const double w_bal = c.w(45);
  const double inside = std::abs(c.w(50) - w_bal);
  const double outside = std::abs(c.w(60) - w_bal);
  EXPECT_LT(inside, outside);
}

TEST(MaliciousChain, ExpectedPhasesUnderPaperBound) {
  // The paper bounds expected absorption by 1/(2 Phi(l)). The exact chain
  // (with the protocol's tie-to-0 bias, which only helps absorption) must
  // come in under it.
  struct Case {
    unsigned n, k;
  } cases[] = {{36, 4}, {64, 4}, {100, 10}, {144, 6}, {196, 14}};
  for (const auto& c : cases) {
    const MaliciousChain chain(c.n, c.k);
    const double bound = MaliciousChain::paper_bound(chain.effective_l());
    EXPECT_LT(chain.expected_phases_from_balanced(), bound)
        << "n=" << c.n << " k=" << c.k;
  }
}

TEST(MaliciousChain, ConstantInNForFixedL) {
  // k = l sqrt(n)/2 with l = 1: k = sqrt(n)/2. Expected phases should be
  // (asymptotically) independent of n — the paper's headline for Section
  // 4.2. Allow a small drift band.
  const MaliciousChain small(64, 4);    // l = 1
  const MaliciousChain medium(144, 6);  // l = 1
  const MaliciousChain large(256, 8);   // l = 1
  EXPECT_NEAR(small.effective_l(), 1.0, 1e-9);
  EXPECT_NEAR(medium.effective_l(), 1.0, 1e-9);
  EXPECT_NEAR(large.effective_l(), 1.0, 1e-9);
  const double e1 = small.expected_phases_from_balanced();
  const double e2 = medium.expected_phases_from_balanced();
  const double e3 = large.expected_phases_from_balanced();
  EXPECT_LT(std::max({e1, e2, e3}) / std::min({e1, e2, e3}), 1.5);
}

TEST(MaliciousChain, LargerLSlowerConvergence) {
  // More malicious power (larger l) means slower absorption.
  const MaliciousChain weak(100, 4);
  const MaliciousChain strong(100, 10);
  EXPECT_LT(weak.expected_phases_from_balanced(),
            strong.expected_phases_from_balanced());
}

TEST(MaliciousChain, MonteCarloAgreesWithExact) {
  const MaliciousChain c(64, 4);
  Rng rng(29);
  RunningStats stats;
  const unsigned balanced = (64 - 4) / 2;
  for (int i = 0; i < 20000; ++i) {
    stats.add(
        static_cast<double>(c.chain().simulate_hitting_time(balanced, rng)));
  }
  EXPECT_NEAR(stats.mean(), c.expected_phases_from_balanced(), 0.05);
}

TEST(MaliciousChain, Observers) {
  const MaliciousChain c(36, 4);
  EXPECT_EQ(c.n(), 36u);
  EXPECT_EQ(c.k(), 4u);
  EXPECT_EQ(c.correct(), 32u);
  EXPECT_THROW((void)c.w(33), PreconditionError);
  EXPECT_THROW((void)c.visible_ones(33), PreconditionError);
  EXPECT_THROW((void)c.expected_phases_from(33), PreconditionError);
}

}  // namespace
}  // namespace rcp::analysis
