#include "analysis/markov.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rcp::analysis {
namespace {

/// Two-state chain: stay with probability 1-p, absorb with p.
MarkovChain geometric(double p) {
  Matrix t(2, 2, 0.0);
  t.at(0, 0) = 1.0 - p;
  t.at(0, 1) = p;
  t.at(1, 1) = 1.0;
  return MarkovChain(std::move(t), {false, true});
}

TEST(Markov, GeometricHittingTime) {
  // Expected hitting time of a geometric(p) absorption is 1/p.
  for (const double p : {0.1, 0.25, 0.5, 0.9}) {
    const auto chain = geometric(p);
    const auto times = chain.expected_hitting_times();
    EXPECT_NEAR(times[0], 1.0 / p, 1e-9);
    EXPECT_DOUBLE_EQ(times[1], 0.0);
  }
}

TEST(Markov, GamblersRuinKnownValues) {
  // Symmetric random walk on {0..4} with absorbing ends: E[T from i] =
  // i * (4 - i).
  Matrix t(5, 5, 0.0);
  t.at(0, 0) = 1.0;
  t.at(4, 4) = 1.0;
  for (std::size_t i = 1; i <= 3; ++i) {
    t.at(i, i - 1) = 0.5;
    t.at(i, i + 1) = 0.5;
  }
  const MarkovChain chain(std::move(t), {true, false, false, false, true});
  const auto times = chain.expected_hitting_times();
  EXPECT_NEAR(times[1], 3.0, 1e-9);
  EXPECT_NEAR(times[2], 4.0, 1e-9);
  EXPECT_NEAR(times[3], 3.0, 1e-9);
}

TEST(Markov, FundamentalMatrixRowSumsEqualHittingTimes) {
  Matrix t(4, 4, 0.0);
  t.at(0, 1) = 0.7;
  t.at(0, 2) = 0.3;
  t.at(1, 0) = 0.2;
  t.at(1, 3) = 0.8;
  t.at(2, 2) = 0.5;
  t.at(2, 3) = 0.5;
  t.at(3, 3) = 1.0;
  const MarkovChain chain(std::move(t), {false, false, false, true});
  const auto times = chain.expected_hitting_times();
  const Matrix fundamental = chain.fundamental_matrix();
  const auto& transients = chain.transient_states();
  ASSERT_EQ(transients.size(), 3u);
  for (std::size_t i = 0; i < transients.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < transients.size(); ++j) {
      row += fundamental.at(i, j);
    }
    EXPECT_NEAR(row, times[transients[i]], 1e-9);
  }
}

TEST(Markov, GamblersRuinAbsorptionProbabilities) {
  // Symmetric walk on {0..4}: P[absorb at 4 | start i] = i/4.
  Matrix t(5, 5, 0.0);
  t.at(0, 0) = 1.0;
  t.at(4, 4) = 1.0;
  for (std::size_t i = 1; i <= 3; ++i) {
    t.at(i, i - 1) = 0.5;
    t.at(i, i + 1) = 0.5;
  }
  const MarkovChain chain(std::move(t), {true, false, false, false, true});
  const auto probs =
      chain.absorption_probabilities({false, false, false, false, true});
  EXPECT_DOUBLE_EQ(probs[0], 0.0);
  EXPECT_NEAR(probs[1], 0.25, 1e-9);
  EXPECT_NEAR(probs[2], 0.50, 1e-9);
  EXPECT_NEAR(probs[3], 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(probs[4], 1.0);
}

TEST(Markov, AbsorptionProbabilitiesOfComplementSumToOne) {
  Matrix t(4, 4, 0.0);
  t.at(0, 1) = 0.6;
  t.at(0, 3) = 0.4;
  t.at(1, 0) = 0.5;
  t.at(1, 2) = 0.5;
  t.at(2, 2) = 1.0;
  t.at(3, 3) = 1.0;
  const MarkovChain chain(std::move(t), {false, false, true, true});
  const auto to2 = chain.absorption_probabilities({false, false, true, false});
  const auto to3 = chain.absorption_probabilities({false, false, false, true});
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_NEAR(to2[s] + to3[s], 1.0, 1e-9) << "state " << s;
  }
}

TEST(Markov, AbsorptionProbabilitiesValidation) {
  const auto chain = geometric(0.5);
  // Mask wrong size.
  EXPECT_THROW((void)chain.absorption_probabilities({true}),
               PreconditionError);
  // Target must be a subset of the absorbing set.
  EXPECT_THROW((void)chain.absorption_probabilities({true, false}),
               PreconditionError);
}

TEST(Markov, MonteCarloMatchesExact) {
  const auto chain = geometric(0.2);
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(chain.simulate_hitting_time(0, rng)));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.15);
}

TEST(Markov, SimulationFromAbsorbingIsZero) {
  const auto chain = geometric(0.3);
  Rng rng(6);
  EXPECT_EQ(chain.simulate_hitting_time(1, rng), 0u);
}

TEST(Markov, SimulationRespectsStepCap) {
  // Absorbing state unreachable in practice: p = 0 chain would fail row
  // validation, so use a tiny p and a small cap.
  const auto chain = geometric(1e-12);
  Rng rng(7);
  EXPECT_EQ(chain.simulate_hitting_time(0, rng, 100), 100u);
}

TEST(Markov, ValidatesRowStochastic) {
  Matrix bad(2, 2, 0.0);
  bad.at(0, 0) = 0.5;  // row sums to 0.5
  bad.at(1, 1) = 1.0;
  EXPECT_THROW(MarkovChain(std::move(bad), {false, true}), PreconditionError);
}

TEST(Markov, ValidatesAbsorbingMask) {
  Matrix t(2, 2, 0.5);
  EXPECT_THROW(MarkovChain(t, {false, false, true}), PreconditionError);
  EXPECT_THROW(MarkovChain(t, {false, false}), PreconditionError)
      << "at least one absorbing state required";
}

TEST(Markov, AllAbsorbingChainHasZeroTimes) {
  Matrix t = Matrix::identity(3);
  const MarkovChain chain(std::move(t), {true, true, true});
  const auto times = chain.expected_hitting_times();
  for (const double e : times) {
    EXPECT_DOUBLE_EQ(e, 0.0);
  }
}

TEST(Markov, IsAbsorbingObserver) {
  const auto chain = geometric(0.5);
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
  EXPECT_THROW((void)chain.is_absorbing(2), PreconditionError);
  EXPECT_EQ(chain.transient_count(), 1u);
}

}  // namespace
}  // namespace rcp::analysis
