// End-to-end smoke tests: each protocol reaches agreement on a small system
// under the paper's probabilistic message system. Deeper property suites
// live in the per-module test files.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/failstop.hpp"
#include "core/majority.hpp"
#include "core/malicious.hpp"
#include "sim/simulation.hpp"

namespace rcp {
namespace {

template <typename Protocol>
sim::Simulation make_sim(std::uint32_t n, std::uint32_t k, std::uint64_t seed) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    const Value input = p % 2 == 0 ? Value::zero : Value::one;
    procs.push_back(Protocol::make(core::ConsensusParams{n, k}, input));
  }
  return sim::Simulation(sim::SimConfig{.n = n, .seed = seed},
                         std::move(procs));
}

TEST(Smoke, FailStopProtocolDecides) {
  auto s = make_sim<core::FailStopConsensus>(7, 3, /*seed=*/1);
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(s.agreement_holds());
  ASSERT_TRUE(s.agreed_value().has_value());
}

TEST(Smoke, MaliciousProtocolDecides) {
  auto s = make_sim<core::MaliciousConsensus>(7, 2, /*seed=*/2);
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(s.agreement_holds());
  ASSERT_TRUE(s.agreed_value().has_value());
}

TEST(Smoke, MajorityVariantDecides) {
  auto s = make_sim<core::MajorityConsensus>(10, 3, /*seed=*/3);
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(s.agreement_holds());
}

TEST(Smoke, FailStopWithCrashes) {
  auto s = make_sim<core::FailStopConsensus>(9, 4, /*seed=*/4);
  s.schedule_crash_at_step(0, 50);
  s.schedule_crash_at_step(1, 120);
  s.schedule_crash_at_phase(2, 2);
  const auto result = s.run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
  EXPECT_TRUE(s.agreement_holds());
}

}  // namespace
}  // namespace rcp
