// Message-level unit tests of the Ben-Or baseline through a fake context.
#include <gtest/gtest.h>

#include "baselines/benor.hpp"
#include "support/fake_context.hpp"

namespace rcp::baselines {
namespace {

using test::FakeContext;
using WireMsg = BenOrConsensus::WireMsg;

// n = 5, k = 2, crash variant: quorum 3, report majority > 2.5 (i.e. 3),
// decide threshold k+1 = 3, adopt threshold 1.
std::unique_ptr<BenOrConsensus> make(Value v) {
  return BenOrConsensus::make({5, 2}, BenOrVariant::crash, v);
}

Bytes report(Phase r, std::uint8_t v) {
  return BenOrConsensus::encode_wire(WireMsg{.stage = 0, .round = r, .val = v});
}

Bytes proposal(Phase r, std::uint8_t v) {
  return BenOrConsensus::encode_wire(WireMsg{.stage = 1, .round = r, .val = v});
}

TEST(BenOrUnit, WireRoundTrip) {
  const WireMsg msg{.stage = 1, .round = 9, .val = 2};
  const WireMsg back = BenOrConsensus::decode_wire(
      BenOrConsensus::encode_wire(msg));
  EXPECT_EQ(back.stage, 1);
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.val, 2);
  EXPECT_THROW((void)BenOrConsensus::decode_wire(Bytes{std::byte{5}}),
               DecodeError);
  // Reports cannot carry bottom.
  Bytes bad = report(0, 1);
  bad.back() = std::byte{2};
  EXPECT_THROW((void)BenOrConsensus::decode_wire(bad), DecodeError);
}

TEST(BenOrUnit, StartBroadcastsRoundZeroReport) {
  FakeContext ctx(0, 5);
  auto p = make(Value::one);
  p->on_start(ctx);
  ASSERT_EQ(ctx.sent.size(), 5u);
  const auto m = BenOrConsensus::decode_wire(ctx.sent[0].payload);
  EXPECT_EQ(m.stage, 0);
  EXPECT_EQ(m.round, 0u);
  EXPECT_EQ(m.val, 1);
}

TEST(BenOrUnit, UnanimousReportsProposeThatValue) {
  FakeContext ctx(0, 5);
  auto p = make(Value::one);
  p->on_start(ctx);
  (void)ctx.take_sent();
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, report(0, 1)));
  }
  ASSERT_EQ(ctx.sent.size(), 5u);
  const auto m = BenOrConsensus::decode_wire(ctx.sent[0].payload);
  EXPECT_EQ(m.stage, 1);
  EXPECT_EQ(m.val, 1);
}

TEST(BenOrUnit, SplitReportsProposeBottom) {
  FakeContext ctx(0, 5);
  auto p = make(Value::one);
  p->on_start(ctx);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(0, 0, report(0, 1)));
  p->on_message(ctx, FakeContext::envelope(1, 0, report(0, 1)));
  p->on_message(ctx, FakeContext::envelope(2, 0, report(0, 0)));
  // 2 of 3 is not > n/2 = 2.5: propose bottom.
  ASSERT_EQ(ctx.sent.size(), 5u);
  EXPECT_EQ(BenOrConsensus::decode_wire(ctx.sent[0].payload).val, 2);
}

TEST(BenOrUnit, DecideOnKPlusOneProposals) {
  FakeContext ctx(0, 5);
  auto p = make(Value::one);
  p->on_start(ctx);
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, report(0, 1)));
  }
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, proposal(0, 1)));
  }
  EXPECT_EQ(p->decision(), Value::one);
  EXPECT_EQ(ctx.decision, Value::one);
  EXPECT_EQ(p->phase(), 1u);  // continues into the next round
}

TEST(BenOrUnit, SingleProposalAdoptsWithoutDeciding) {
  FakeContext ctx(0, 5);
  auto p = make(Value::zero);
  p->on_start(ctx);
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, report(0, 0)));
  }
  p->on_message(ctx, FakeContext::envelope(0, 0, proposal(0, 1)));
  p->on_message(ctx, FakeContext::envelope(1, 0, proposal(0, 2)));
  p->on_message(ctx, FakeContext::envelope(2, 0, proposal(0, 2)));
  EXPECT_FALSE(p->decision().has_value());
  EXPECT_EQ(p->value(), Value::one);  // adopted the lone proposal
  EXPECT_EQ(p->coin_flips(), 0u);
}

TEST(BenOrUnit, AllBottomFlipsCoin) {
  FakeContext ctx(0, 5);
  auto p = make(Value::zero);
  p->on_start(ctx);
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, report(0, 0)));
  }
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, proposal(0, 2)));
  }
  EXPECT_EQ(p->coin_flips(), 1u);
  EXPECT_FALSE(p->decision().has_value());
  EXPECT_EQ(p->phase(), 1u);
}

TEST(BenOrUnit, DuplicateSenderMessagesIgnored) {
  FakeContext ctx(0, 5);
  auto p = make(Value::one);
  p->on_start(ctx);
  (void)ctx.take_sent();
  // Sender 1 repeating its report five times only counts once.
  for (int i = 0; i < 5; ++i) {
    p->on_message(ctx, FakeContext::envelope(1, 0, report(0, 1)));
  }
  EXPECT_TRUE(ctx.sent.empty());  // quorum of 3 distinct senders not reached
}

TEST(BenOrUnit, FutureRoundMessagesDeferredAndReplayed) {
  FakeContext ctx(0, 5);
  auto p = make(Value::one);
  p->on_start(ctx);
  // Round-1 reports arrive while we are still in round 0: parked.
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, report(1, 1)));
  }
  EXPECT_EQ(p->phase(), 0u);
  // Finish round 0 (unanimous 1 -> propose 1 -> decide).
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, report(0, 1)));
  }
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, proposal(0, 1)));
  }
  // The parked round-1 reports replayed: report stage of round 1 already
  // complete, so a round-1 proposal went out.
  EXPECT_EQ(p->phase(), 1u);
  bool proposed_round1 = false;
  for (const auto& s : ctx.sent) {
    const auto m = BenOrConsensus::decode_wire(s.payload);
    if (m.stage == 1 && m.round == 1) {
      proposed_round1 = true;
    }
  }
  EXPECT_TRUE(proposed_round1);
}

TEST(BenOrUnit, StaleRoundMessagesDropped) {
  FakeContext ctx(0, 5);
  auto p = make(Value::one);
  p->on_start(ctx);
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, report(0, 1)));
  }
  for (ProcessId s = 0; s < 3; ++s) {
    p->on_message(ctx, FakeContext::envelope(s, 0, proposal(0, 1)));
  }
  ASSERT_EQ(p->phase(), 1u);
  (void)ctx.take_sent();
  p->on_message(ctx, FakeContext::envelope(4, 0, report(0, 0)));
  EXPECT_TRUE(ctx.sent.empty());
}

}  // namespace
}  // namespace rcp::baselines
