// Ben-Or baseline: agreement/termination/validity sweeps for both variants.
#include "baselines/benor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace rcp {
namespace {

using baselines::BenOrConsensus;
using baselines::BenOrVariant;

std::unique_ptr<sim::Simulation> make_benor_sim(
    std::uint32_t n, std::uint32_t k, BenOrVariant variant,
    const std::vector<Value>& inputs, std::uint64_t seed,
    std::uint32_t silent_byzantine = 0) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (ProcessId p = 0; p < n; ++p) {
    if (p < silent_byzantine) {
      procs.push_back(std::make_unique<adversary::SilentByzantine>());
    } else {
      procs.push_back(BenOrConsensus::make({n, k}, variant, inputs[p]));
    }
  }
  auto s = std::make_unique<sim::Simulation>(
      sim::SimConfig{.n = n, .seed = seed, .max_steps = 3'000'000},
      std::move(procs));
  for (ProcessId p = 0; p < silent_byzantine; ++p) {
    s->mark_faulty(p);
  }
  return s;
}

TEST(BenOr, FactoryValidatesBounds) {
  EXPECT_NO_THROW(BenOrConsensus::make({9, 4}, BenOrVariant::crash, Value::one));
  EXPECT_THROW(BenOrConsensus::make({9, 5}, BenOrVariant::crash, Value::one),
               PreconditionError);
  EXPECT_NO_THROW(
      BenOrConsensus::make({11, 2}, BenOrVariant::byzantine, Value::one));
  EXPECT_THROW(
      BenOrConsensus::make({11, 3}, BenOrVariant::byzantine, Value::one),
      PreconditionError);
}

TEST(BenOr, UnanimousDecidesThatValueInOneRound) {
  for (const Value v : kBothValues) {
    std::vector<Value> inputs(7, v);
    auto s = make_benor_sim(7, 3, BenOrVariant::crash, inputs, 5);
    const auto result = s->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided);
    EXPECT_EQ(s->agreed_value(), v);
    EXPECT_LE(s->metrics().max_phase, 2u);
  }
}

TEST(BenOr, CrashVariantSweep) {
  const std::pair<std::uint32_t, std::uint32_t> sizes[] = {
      {3, 1}, {5, 2}, {7, 3}, {9, 4}};
  for (const auto& [n, k] : sizes) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      std::vector<Value> inputs(n);
      for (ProcessId p = 0; p < n; ++p) {
        inputs[p] = p % 2 == 0 ? Value::zero : Value::one;
      }
      auto s = make_benor_sim(n, k, BenOrVariant::crash, inputs, seed);
      const auto result = s->run();
      EXPECT_EQ(result.status, sim::RunStatus::all_decided)
          << "n=" << n << " k=" << k << " seed=" << seed;
      EXPECT_TRUE(s->agreement_holds());
    }
  }
}

TEST(BenOr, CrashVariantWithActualCrashes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<Value> inputs(9);
    for (ProcessId p = 0; p < 9; ++p) {
      inputs[p] = p % 2 == 0 ? Value::zero : Value::one;
    }
    auto s = make_benor_sim(9, 4, BenOrVariant::crash, inputs, seed);
    s->schedule_crash_at_phase(0, 1);
    s->schedule_crash_at_phase(1, 2);
    s->schedule_crash_at_step(2, 500);
    const auto result = s->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(s->agreement_holds()) << "seed " << seed;
  }
}

TEST(BenOr, ByzantineVariantWithSilentFaults) {
  // n = 11, k = 2 <= (n-1)/5.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<Value> inputs(11);
    for (ProcessId p = 0; p < 11; ++p) {
      inputs[p] = p % 2 == 0 ? Value::zero : Value::one;
    }
    auto s = make_benor_sim(11, 2, BenOrVariant::byzantine, inputs, seed,
                            /*silent_byzantine=*/2);
    const auto result = s->run();
    EXPECT_EQ(result.status, sim::RunStatus::all_decided) << "seed " << seed;
    EXPECT_TRUE(s->agreement_holds()) << "seed " << seed;
  }
}

TEST(BenOr, ValidityWithStrongMajority) {
  // All correct share 1 while a silent minority stalls: must decide 1.
  std::vector<Value> inputs(7, Value::one);
  auto s = make_benor_sim(7, 3, BenOrVariant::crash, inputs, 3,
                          /*silent_byzantine=*/0);
  s->schedule_crash_at_step(0, 0);  // one initially dead
  (void)s->run();
  EXPECT_EQ(s->agreed_value(), Value::one);
}

TEST(BenOr, CoinFlipsHappenOnBalancedInputs) {
  std::vector<Value> inputs(8);
  for (ProcessId p = 0; p < 8; ++p) {
    inputs[p] = p % 2 == 0 ? Value::zero : Value::one;
  }
  std::uint64_t total_flips = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    std::vector<BenOrConsensus*> raw;
    for (ProcessId p = 0; p < 8; ++p) {
      auto b = BenOrConsensus::make({8, 3}, BenOrVariant::crash, inputs[p]);
      raw.push_back(b.get());
      procs.push_back(std::move(b));
    }
    sim::Simulation s(sim::SimConfig{.n = 8, .seed = seed,
                                     .max_steps = 3'000'000},
                      std::move(procs));
    (void)s.run();
    for (auto* b : raw) {
      total_flips += b->coin_flips();
    }
  }
  EXPECT_GT(total_flips, 0u)
      << "balanced inputs should force at least one private coin flip";
}

TEST(BenOr, WireMessageDuplicatesIgnored) {
  // A duplicate report from the same sender in the same round/stage must
  // not double-count: feed one manually through a harness of 3 processes
  // where sender 0 is silent-but-replaying. We approximate by running the
  // byzantine variant with a babbler-free silent set and checking safety
  // held across seeds (duplicates are synthesized inside BenOr only via
  // Byzantine peers; the seen_ guard is unit-exercised by the sweep).
  std::vector<Value> inputs(6, Value::one);
  auto s = make_benor_sim(6, 1, BenOrVariant::byzantine, inputs, 8,
                          /*silent_byzantine=*/1);
  const auto result = s->run();
  EXPECT_EQ(result.status, sim::RunStatus::all_decided);
  EXPECT_EQ(s->agreed_value(), Value::one);
}

}  // namespace
}  // namespace rcp
