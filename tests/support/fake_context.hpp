// A stand-alone sim::Context for message-level protocol unit tests: drive
// a protocol object directly with crafted envelopes and inspect exactly
// what it sends and decides, without a Simulation in the loop.
#pragma once

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/process.hpp"
#include "common/rng.hpp"

namespace rcp::test {

class FakeContext final : public sim::Context {
 public:
  FakeContext(ProcessId self, std::uint32_t n, std::uint64_t rng_seed = 7)
      : self_(self), n_(n), rng_(rng_seed) {}

  struct Sent {
    ProcessId to;
    Bytes payload;
  };

  [[nodiscard]] ProcessId self() const noexcept override { return self_; }
  [[nodiscard]] std::uint32_t n() const noexcept override { return n_; }
  [[nodiscard]] std::uint64_t step() const noexcept override { return step_; }

  void send(ProcessId to, Bytes payload) override {
    sent.push_back(Sent{to, std::move(payload)});
  }

  void broadcast(const Bytes& payload) override {
    for (ProcessId q = 0; q < n_; ++q) {
      sent.push_back(Sent{q, payload});
    }
  }

  void decide(Value v) override {
    ++decide_calls;
    if (decision.has_value()) {
      RCP_INVARIANT(*decision == v, "conflicting decision in FakeContext");
      return;
    }
    decision = v;
  }

  [[nodiscard]] Rng& rng() noexcept override { return rng_; }

  /// Delivers `payload` from `sender` to the process under test.
  static sim::Envelope envelope(ProcessId sender, ProcessId receiver,
                                Bytes payload) {
    return sim::Envelope{.sender = sender,
                         .receiver = receiver,
                         .payload = std::move(payload),
                         .sent_at_step = 0,
                         .seq = 0};
  }

  /// Removes and returns everything sent so far.
  [[nodiscard]] std::vector<Sent> take_sent() {
    std::vector<Sent> out;
    out.swap(sent);
    return out;
  }

  /// Number of queued sends addressed to `to`.
  [[nodiscard]] std::size_t sent_to(ProcessId to) const {
    std::size_t count = 0;
    for (const auto& s : sent) {
      if (s.to == to) {
        ++count;
      }
    }
    return count;
  }

  std::vector<Sent> sent;
  std::optional<Value> decision;
  int decide_calls = 0;
  std::uint64_t step_ = 0;

 private:
  ProcessId self_;
  std::uint32_t n_;
  Rng rng_;
};

}  // namespace rcp::test
