// A scriptable process for white-box simulator tests.
#pragma once

#include <functional>
#include <vector>

#include "common/process.hpp"

namespace rcp::test {

class ProbeProcess final : public sim::Process {
 public:
  std::function<void(sim::Context&)> start_fn;
  std::function<void(sim::Context&, const sim::Envelope&)> message_fn;
  std::function<void(sim::Context&)> null_fn;
  Phase reported_phase = 0;
  std::vector<sim::Envelope> received;
  int null_count = 0;

  void on_start(sim::Context& ctx) override {
    if (start_fn) {
      start_fn(ctx);
    }
  }

  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    received.push_back(env);
    if (message_fn) {
      message_fn(ctx, env);
    }
  }

  void on_null(sim::Context& ctx) override {
    ++null_count;
    if (null_fn) {
      null_fn(ctx);
    }
  }

  [[nodiscard]] Phase phase() const noexcept override {
    return reported_phase;
  }
};

/// Builds a vector of n fresh probes and returns raw observation pointers.
struct ProbeFleet {
  std::vector<std::unique_ptr<sim::Process>> processes;
  std::vector<ProbeProcess*> probes;

  explicit ProbeFleet(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      auto p = std::make_unique<ProbeProcess>();
      probes.push_back(p.get());
      processes.push_back(std::move(p));
    }
  }
};

/// A tiny payload helper for tests that don't care about content.
[[nodiscard]] inline Bytes tiny_payload(std::uint8_t tag = 0xff) {
  return Bytes{static_cast<std::byte>(tag)};
}

}  // namespace rcp::test
