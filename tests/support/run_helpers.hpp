// Shared helpers for protocol property tests: build a scenario, run it,
// return a compact outcome.
#pragma once

#include <memory>
#include <optional>

#include "adversary/scenario.hpp"
#include "sim/simulation.hpp"

namespace rcp::test {

struct RunOutcome {
  sim::RunStatus status{};
  bool agreement = false;
  std::optional<Value> value;
  Phase max_phase = 0;
  std::uint64_t steps = 0;
};

inline RunOutcome run_scenario(
    const adversary::Scenario& scenario,
    std::unique_ptr<sim::DeliveryPolicy> delivery = nullptr,
    std::unique_ptr<sim::SchedulerPolicy> scheduler = nullptr) {
  auto simulation =
      adversary::build(scenario, std::move(delivery), std::move(scheduler));
  const sim::RunResult result = simulation->run();
  return RunOutcome{.status = result.status,
                    .agreement = simulation->agreement_holds(),
                    .value = simulation->agreed_value(),
                    .max_phase = simulation->metrics().max_phase,
                    .steps = result.steps};
}

}  // namespace rcp::test
