// Ben-Or's randomized consensus protocol [BenO83], the paper's point of
// comparison: "The protocols are similar to those given in this paper, but
// randomization is incorporated in the protocol itself. They have an
// exponential expected termination time in the fail-stop case, and, in the
// malicious case, they can overcome up to n/5 malicious processes."
//
// Each round has two exchanges:
//   1. Report:  broadcast (R, r, x); wait for n-k reports.
//   2. Propose: if more than n/2 (crash) or (n+k)/2 (byzantine) reports
//      carried the same v, broadcast (P, r, v), else (P, r, bottom);
//      wait for n-k proposals. Then:
//        - decide v on >= k+1 (crash) / >= 2k+1 (byzantine) proposals for v,
//        - else adopt v on >= 1 (crash) / >= k+1 (byzantine) proposals,
//        - else x := private coin flip.
//
// Resilience: k <= floor((n-1)/2) for the crash variant, k <= floor((n-1)/5)
// for the byzantine variant. Processes keep participating after deciding.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"

namespace rcp::baselines {

enum class BenOrVariant : std::uint8_t { crash, byzantine };

class BenOrConsensus final : public sim::Process {
 public:
  /// Decoded wire message (exposed for the codec unit tests).
  struct WireMsg {
    std::uint8_t stage = 0;  ///< 0 = report, 1 = propose
    Phase round = 0;
    std::uint8_t val = 0;    ///< 0, 1, or 2 (= bottom, propose stage only)
  };

  /// Wire codec (public so adversarial processes in tests/benches can
  /// speak the protocol). Throws DecodeError on malformed input.
  [[nodiscard]] static Bytes encode_wire(const WireMsg& msg);
  [[nodiscard]] static WireMsg decode_wire(const Bytes& payload);

  /// Validating factory; throws if k exceeds the variant's bound.
  [[nodiscard]] static std::unique_ptr<BenOrConsensus> make(
      core::ConsensusParams params, BenOrVariant variant, Value initial_value);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  /// Rounds, for fault injection and metrics (one "phase" = one round).
  [[nodiscard]] Phase phase() const noexcept override { return round_; }

  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] std::optional<Value> decision() const noexcept {
    return decision_;
  }
  /// Number of private coin flips performed so far (measurement hook).
  [[nodiscard]] std::uint64_t coin_flips() const noexcept {
    return coin_flips_;
  }

 private:
  BenOrConsensus(core::ConsensusParams params, BenOrVariant variant,
                 Value initial_value) noexcept;

  void begin_round(sim::Context& ctx);
  void handle_report(sim::Context& ctx, Value v);
  void handle_proposal(sim::Context& ctx, std::uint8_t proposal);

  [[nodiscard]] bool report_majority(std::uint32_t count) const noexcept;
  [[nodiscard]] std::uint32_t decide_threshold() const noexcept;
  [[nodiscard]] std::uint32_t adopt_threshold() const noexcept;

  core::ConsensusParams params_;
  BenOrVariant variant_;
  Value value_;
  Phase round_ = 0;
  bool in_propose_stage_ = false;
  ValueCounts report_count_;
  /// Proposal tallies: counts for value 0, value 1, and bottom.
  std::uint32_t proposal_count_[3] = {0, 0, 0};
  std::optional<Value> decision_;
  std::uint64_t coin_flips_ = 0;
  /// (sender, round, stage) already counted — Byzantine duplicate guard.
  std::set<std::tuple<ProcessId, Phase, std::uint8_t>> seen_;
  /// Messages from future rounds/stages, parked until we catch up.
  std::vector<WireMsg> deferred_;
};

}  // namespace rcp::baselines
