// A deliberately naive quorum-vote protocol — the ablation of Figure 1.
//
// Each phase: broadcast your value, wait for n-k messages, decide if the
// quorum was unanimous, else adopt the majority and repeat. No witness
// cardinalities, no witness-count decision rule.
//
// This is NOT a correct consensus protocol; it exists to demonstrate *why*
// Figure 1 needs its witness machinery. Beyond the resilience bound
// (k >= ceil(n/2)) a partition schedule makes two halves decide opposite
// values (the Theorem 1 scenario); and even within the bound, eager
// unanimous-quorum decisions can race ahead of processes whose views differ
// (see the lower-bound experiment E7 and bench_e7_lowerbound).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"

namespace rcp::baselines {

class NaiveQuorumVote final : public sim::Process {
 public:
  /// No resilience validation on purpose: the class exists to be run in
  /// regimes where no correct protocol exists.
  [[nodiscard]] static std::unique_ptr<NaiveQuorumVote> make(
      core::ConsensusParams params, Value initial_value);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return phaseno_; }

  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] std::optional<Value> decision() const noexcept {
    return decision_;
  }

 private:
  NaiveQuorumVote(core::ConsensusParams params, Value initial_value) noexcept;

  void begin_phase(sim::Context& ctx);

  core::ConsensusParams params_;
  Value value_;
  Phase phaseno_ = 0;
  ValueCounts message_count_;
  std::optional<Value> decision_;
};

}  // namespace rcp::baselines
