#include "baselines/naive_quorum.hpp"

#include "common/error.hpp"
#include "core/messages.hpp"

namespace rcp::baselines {

using core::MajorityMsg;

std::unique_ptr<NaiveQuorumVote> NaiveQuorumVote::make(
    core::ConsensusParams params, Value initial_value) {
  RCP_EXPECT(params.n >= 1 && params.k < params.n,
             "need at least one participating process");
  return std::unique_ptr<NaiveQuorumVote>(
      new NaiveQuorumVote(params, initial_value));
}

NaiveQuorumVote::NaiveQuorumVote(core::ConsensusParams params,
                                 Value initial_value) noexcept
    : params_(params), value_(initial_value) {}

void NaiveQuorumVote::on_start(sim::Context& ctx) {
  begin_phase(ctx);
}

void NaiveQuorumVote::begin_phase(sim::Context& ctx) {
  message_count_.reset();
  ctx.broadcast(MajorityMsg{.phase = phaseno_, .value = value_}.encode());
}

void NaiveQuorumVote::on_message(sim::Context& ctx, const sim::Envelope& env) {
  MajorityMsg msg;
  try {
    msg = MajorityMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (msg.phase > phaseno_) {
    ctx.send(ctx.self(), env.payload);  // requeue
    return;
  }
  if (msg.phase < phaseno_) {
    return;
  }
  message_count_[msg.value] += 1;
  if (message_count_.total() < params_.wait_quorum()) {
    return;
  }
  // Eager rule: a unanimous quorum decides immediately.
  for (const Value i : kBothValues) {
    if (message_count_[i] == params_.wait_quorum() && !decision_.has_value()) {
      decision_ = i;
      ctx.decide(i);
    }
  }
  value_ = message_count_.majority();
  phaseno_ += 1;
  begin_phase(ctx);
}

}  // namespace rcp::baselines
