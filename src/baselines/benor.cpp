#include "baselines/benor.hpp"

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace rcp::baselines {

namespace {

constexpr std::uint8_t kReportTag = 10;
constexpr std::uint8_t kProposeTag = 11;
constexpr std::uint8_t kBottom = 2;  ///< proposal "?" (no value)

using BenOrMsg = BenOrConsensus::WireMsg;

Bytes encode(const BenOrMsg& msg) {
  ByteWriter w(10);
  w.u8(msg.stage == 0 ? kReportTag : kProposeTag).u64(msg.round).u8(msg.val);
  return std::move(w).take();
}

BenOrMsg decode(const Bytes& payload) {
  ByteReader r(payload);
  const std::uint8_t tag = r.u8();
  BenOrMsg msg;
  if (tag == kReportTag) {
    msg.stage = 0;
  } else if (tag == kProposeTag) {
    msg.stage = 1;
  } else {
    throw DecodeError("not a Ben-Or message");
  }
  msg.round = r.u64();
  msg.val = r.u8();
  r.expect_done();
  const std::uint8_t limit = msg.stage == 0 ? 1 : kBottom;
  if (msg.val > limit) {
    throw DecodeError("Ben-Or value out of range");
  }
  return msg;
}

}  // namespace

Bytes BenOrConsensus::encode_wire(const WireMsg& msg) {
  return encode(msg);
}

BenOrConsensus::WireMsg BenOrConsensus::decode_wire(const Bytes& payload) {
  return decode(payload);
}

std::unique_ptr<BenOrConsensus> BenOrConsensus::make(
    core::ConsensusParams params, BenOrVariant variant, Value initial_value) {
  RCP_EXPECT(params.n >= 1, "need at least one process");
  const std::uint32_t bound = variant == BenOrVariant::crash
                                  ? (params.n - 1) / 2
                                  : (params.n - 1) / 5;
  RCP_EXPECT(params.k <= bound,
             "k = " + std::to_string(params.k) +
                 " exceeds the Ben-Or resilience bound " +
                 std::to_string(bound) + " for n = " + std::to_string(params.n));
  return std::unique_ptr<BenOrConsensus>(
      new BenOrConsensus(params, variant, initial_value));
}

BenOrConsensus::BenOrConsensus(core::ConsensusParams params,
                               BenOrVariant variant,
                               Value initial_value) noexcept
    : params_(params), variant_(variant), value_(initial_value) {}

bool BenOrConsensus::report_majority(std::uint32_t count) const noexcept {
  // Crash variant: strict majority of the whole system (> n/2); Byzantine
  // variant: > (n+k)/2. Both predicates live in ConsensusParams so the
  // paper's threshold arithmetic has exactly one home.
  if (variant_ == BenOrVariant::crash) {
    return params_.is_witness_cardinality(count);
  }
  return params_.accepted_count_decides(count);
}

std::uint32_t BenOrConsensus::decide_threshold() const noexcept {
  return variant_ == BenOrVariant::crash ? params_.k + 1 : 2 * params_.k + 1;
}

std::uint32_t BenOrConsensus::adopt_threshold() const noexcept {
  return variant_ == BenOrVariant::crash ? 1 : params_.k + 1;
}

void BenOrConsensus::on_start(sim::Context& ctx) {
  begin_round(ctx);
}

void BenOrConsensus::begin_round(sim::Context& ctx) {
  report_count_.reset();
  proposal_count_[0] = proposal_count_[1] = proposal_count_[2] = 0;
  in_propose_stage_ = false;
  ctx.broadcast(encode(BenOrMsg{.stage = 0,
                                .round = round_,
                                .val = static_cast<std::uint8_t>(value_)}));
}

void BenOrConsensus::on_message(sim::Context& ctx, const sim::Envelope& env) {
  BenOrMsg msg;
  try {
    msg = decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  // At most one message per (sender, round, stage) is ever counted; a
  // Byzantine process cannot inflate tallies by repetition.
  if (!seen_.emplace(env.sender, msg.round, msg.stage).second) {
    return;
  }
  if (msg.round < round_) {
    return;  // stale
  }
  const bool ready_now =
      msg.round == round_ && msg.stage == (in_propose_stage_ ? 1 : 0);
  if (!ready_now) {
    if (msg.round == round_ && msg.stage == 0 && in_propose_stage_) {
      return;  // report for a closed report stage; stale
    }
    // Ahead of us (future round, or proposal while we collect reports):
    // park it. An internal buffer replaces the paper-style self-requeue so
    // the sender's identity in seen_ bookkeeping stays authentic.
    deferred_.push_back(msg);
    return;
  }
  if (msg.stage == 0) {
    handle_report(ctx, value_from_int(msg.val));
  } else {
    handle_proposal(ctx, msg.val);
  }
  // A completed stage may unlock deferred messages (possibly cascading
  // through several stages/rounds).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < deferred_.size(); ++i) {
      const BenOrMsg& d = deferred_[i];
      if (d.round < round_ ||
          (d.round == round_ && d.stage == 0 && in_propose_stage_)) {
        deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;  // prune stale entries
      }
      if (d.round == round_ && d.stage == (in_propose_stage_ ? 1 : 0)) {
        const BenOrMsg live = d;
        deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
        if (live.stage == 0) {
          handle_report(ctx, value_from_int(live.val));
        } else {
          handle_proposal(ctx, live.val);
        }
        progress = true;
        break;
      }
    }
  }
}

void BenOrConsensus::handle_report(sim::Context& ctx, Value v) {
  report_count_[v] += 1;
  if (report_count_.total() < params_.wait_quorum()) {
    return;
  }
  // Report stage complete: propose the supermajority value if one exists.
  std::uint8_t proposal = kBottom;
  for (const Value i : kBothValues) {
    if (report_majority(report_count_[i])) {
      proposal = static_cast<std::uint8_t>(i);
    }
  }
  in_propose_stage_ = true;
  ctx.broadcast(
      encode(BenOrMsg{.stage = 1, .round = round_, .val = proposal}));
}

void BenOrConsensus::handle_proposal(sim::Context& ctx, std::uint8_t proposal) {
  proposal_count_[proposal] += 1;
  const std::uint32_t total =
      proposal_count_[0] + proposal_count_[1] + proposal_count_[2];
  if (total < params_.wait_quorum()) {
    return;
  }
  // Proposal stage complete: decide / adopt / flip.
  const std::uint32_t zeros = proposal_count_[0];
  const std::uint32_t ones = proposal_count_[1];
  const Value leader = ones > zeros ? Value::one : Value::zero;
  const std::uint32_t leader_count = ones > zeros ? ones : zeros;
  if (leader_count >= decide_threshold()) {
    value_ = leader;
    if (!decision_.has_value()) {
      decision_ = leader;
      ctx.decide(leader);
    }
  } else if (leader_count >= adopt_threshold()) {
    value_ = leader;
  } else {
    value_ = ctx.rng().bernoulli(0.5) ? Value::one : Value::zero;
    ++coin_flips_;
  }
  round_ += 1;
  begin_round(ctx);
}

}  // namespace rcp::baselines
