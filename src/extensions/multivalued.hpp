// Multivalued Byzantine consensus from the paper's binary protocol — the
// classic reduction, built entirely from pieces this repository already
// proves correct:
//
//   1. every process reliably broadcasts its (arbitrary-bytes) proposal —
//      a Bytes-payload Bracha broadcast, so per origin at most one version
//      is ever delivered anywhere, even from an equivocating proposer;
//   2. processes then sweep candidate slots s = 0, 1, 2, ... (slot s
//      belongs to origin s mod n) and run one instance of the Figure 2
//      binary protocol per slot, asking "has origin(s)'s proposal been
//      delivered here?";
//   3. the first slot to decide 1 wins: its origin's RB-delivered proposal
//      is the consensus value.
//
// Why it is safe and live for k <= floor((n-1)/3):
//   - all correct processes agree on every slot's binary outcome
//     (Theorem 4), hence on the first winning slot, hence (RB consistency)
//     on the winning bytes;
//   - a slot can only decide 1 if some correct process voted 1 (Figure 2
//     validity: with all correct inputs 0, at most k accepted 1-messages
//     can never exceed the (n+k)/2 decision threshold), and that process
//     had delivered the proposal, so by RB totality everyone does;
//   - if an entire pass of n slots decides 0, the sweep continues with
//     fresh instances; by then every correct proposal is delivered at
//     every correct process, so the next slot owned by a correct origin
//     starts with unanimous 1-inputs and must decide 1.
//
// A process signals completion through Context::decide(Value::one) (the
// binary decision slot is a completion marker in the simulator); the
// agreed bytes are exposed via decided_proposal().
//
// Earlier binary slot instances keep participating after their decision —
// exactly the Figure 2 never-exit discipline — so stragglers still in an
// earlier slot always find live quorums.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/process.hpp"
#include "common/types.hpp"
#include "core/malicious.hpp"
#include "core/params.hpp"

namespace rcp::ext {

/// Reliable broadcast of one arbitrary-bytes proposal per origin
/// (initial/echo/ready with the usual (n+k)/2, k+1, 2k+1 thresholds).
class ProposalRb {
 public:
  explicit ProposalRb(core::ConsensusParams params) noexcept
      : params_(params) {}

  struct Outcome {
    std::vector<Bytes> to_broadcast;  ///< encoded echo/ready transitions
    /// Set when this input completed a delivery: (origin, proposal).
    std::optional<std::pair<ProcessId, Bytes>> delivered;
  };

  /// The encoded initial message carrying our own proposal.
  [[nodiscard]] static Bytes encode_initial(ProcessId self,
                                            const Bytes& proposal);

  /// True if `payload` looks like a ProposalRb message (tag match).
  [[nodiscard]] static bool is_proposal_msg(const Bytes& payload);

  /// Feeds one raw payload from authenticated `sender`. Throws DecodeError
  /// on malformed input.
  [[nodiscard]] Outcome handle(ProcessId sender, const Bytes& payload);

  [[nodiscard]] std::optional<Bytes> delivered(ProcessId origin) const;
  [[nodiscard]] std::size_t delivered_count() const noexcept {
    return delivered_.size();
  }

 private:
  struct Instance {
    // Keyed by the raw bytes re-wrapped as std::string (GCC 12's
    // three-way-compare codegen for vector<std::byte> keys trips a
    // -Wstringop-overread false positive).
    std::map<std::string, std::set<ProcessId>> echo_from;
    std::map<std::string, std::set<ProcessId>> ready_from;
    std::set<ProcessId> echoers;   ///< one echo counted per echoer
    std::set<ProcessId> readiers;  ///< one ready counted per readier
    bool echoed = false;
    bool ready_sent = false;
  };

  core::ConsensusParams params_;
  std::map<ProcessId, Instance> instances_;
  std::map<ProcessId, Bytes> delivered_;
};

class MultiValuedConsensus final : public sim::Process {
 public:
  /// Validating factory: k <= floor((n-1)/3); proposal up to 64 KiB.
  [[nodiscard]] static std::unique_ptr<MultiValuedConsensus> make(
      core::ConsensusParams params, Bytes proposal);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  /// Reports the slot index being swept (for metrics/fault injection).
  [[nodiscard]] Phase phase() const noexcept override { return current_slot_; }

  [[nodiscard]] std::optional<Bytes> decided_proposal() const noexcept {
    return decided_proposal_;
  }
  [[nodiscard]] std::optional<ProcessId> winning_origin() const noexcept {
    return winning_origin_;
  }
  [[nodiscard]] std::size_t proposals_delivered() const noexcept {
    return rb_.delivered_count();
  }

 private:
  MultiValuedConsensus(core::ConsensusParams params, Bytes proposal) noexcept;

  class SlotContext;

  [[nodiscard]] ProcessId slot_origin(std::uint64_t slot) const noexcept {
    return static_cast<ProcessId>(slot % params_.n);
  }

  /// Creates and starts the binary instance for `current_slot_`.
  void open_current_slot(sim::Context& ctx);
  /// Reacts to slot decisions / proposal deliveries; may advance slots,
  /// replay deferred messages, or finalize.
  void reconcile(sim::Context& ctx);

  core::ConsensusParams params_;
  Bytes proposal_;
  ProposalRb rb_;
  /// One binary instance per opened slot; earlier ones stay alive.
  std::vector<std::unique_ptr<core::MaliciousConsensus>> slots_;
  std::uint64_t current_slot_ = 0;
  /// Messages for slots we have not opened yet.
  std::map<std::uint64_t, std::vector<sim::Envelope>> deferred_;
  /// Slot that decided 1, waiting for its proposal to be delivered.
  std::optional<std::uint64_t> winning_slot_;
  std::optional<ProcessId> winning_origin_;
  std::optional<Bytes> decided_proposal_;
};

}  // namespace rcp::ext
