// Multiplexed reliable broadcast: many concurrent Bracha-broadcast
// instances over one message stream.
//
// The single-shot core/reliable_broadcast.hpp demonstrates the primitive;
// real protocols (like the 1987 Bracha consensus built on top of it in
// extensions/bracha87.hpp) need one instance per (origin, tag) — e.g. per
// sender per round per sub-round — and the replicated KV service
// (src/service/) runs one instance per client write. The engine owns all
// per-instance state: echo/ready tallies with per-sender vote gating, the
// sent-echo/-ready flags, and delivery. For k <= floor((n-1)/3) each
// instance guarantees:
//   consistency — no two correct processes deliver different values for
//     the same (origin, tag);
//   totality    — if any correct process delivers, every correct process
//     eventually delivers;
//   validity    — a correct origin's broadcast is delivered by everyone.
//
// Byzantine input is bounded at every edge:
//  - One counted vote per sender per instance and per message kind: a
//    correct process sends exactly one echo and at most one ready per
//    instance, so any further echo/ready from the same sender is
//    equivocation and is dropped (dropped_sender_dup). This is what makes
//    the value lanes (below) exhaustion-proof: a sender can claim at most
//    one echo lane and one ready lane, ever.
//  - Echo and ready tallies keep separate first-come value-lane sets,
//    k + 2 lanes each. With at most k Byzantine senders, garbage values
//    occupy at most k lanes per set, so the real value always finds a
//    lane; overflow beyond that (only reachable outside the fault budget,
//    or on a Byzantine origin's own equivocated instance) is dropped and
//    counted (dropped_slot_overflow), never fatal.
//  - Optionally, at most `max_live_per_origin` live instances per origin,
//    enforced anchor-aware. An instance is *anchored* once the origin's
//    own initial has been seen (initials are identity-checked, so only
//    the origin can anchor its tags) or the instance was started locally;
//    instances created by echo/ready ahead of any initial are unanchored
//    — phantom candidates — and draw from a tighter sub-cap (a quarter of
//    the origin cap, at least 8). An arriving initial that finds the
//    origin at its cap evicts an undelivered unanchored instance to claim
//    the slot (evicted_unanchored), so phantom spray can bound memory but
//    can never lock a correct origin out of its own seq space. The trade:
//    votes that arrived before the initial can be lost to eviction under
//    active flood; Bracha's thresholds absorb up to k lost echoes, and
//    post-anchor traffic is never dropped, so an attacker buys at most
//    delay, never divergence.
//
// Storage is flat (docs/PERF.md "Quorum accounting"): instances live in a
// preallocated slot pool indexed by an open hash on (origin, tag), the
// per-sender vote gates are one core::BitRows bit per (slot, sender) and
// kind, and tallies are plain counters. Steady-state
// handle()/retire_through() is allocation-free — the pool only reallocates
// when the number of live instances outgrows capacity, which callers bound
// with retirement plus the per-origin cap. This file is under the
// [allocation] lint rule and the operator-new counting test in
// tests/extensions/.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/bitops.hpp"
#include "core/params.hpp"
#include "core/quorum.hpp"

namespace rcp::ext {

/// Broadcast payload: a full 64-bit word. The consensus protocols use a
/// small alphabet — binary values, Ben-Or's "?" proposal (bottom),
/// Bracha-87's decision proposals (2 + w) — while the KV service packs a
/// whole (key, value) write into the word. Semantics belong to the caller;
/// the engine only tallies equality. Each instance tallies at most
/// `RbEngine::lane_count()` (= k + 2) distinct values per message kind:
/// one counted vote per sender means at most k Byzantine-introduced
/// garbage values per kind, so a correct origin's real value always has a
/// lane.
using RbValue = std::uint64_t;
inline constexpr RbValue kRbValueZero = 0;
inline constexpr RbValue kRbValueOne = 1;
inline constexpr RbValue kRbValueBottom = 2;
/// Upper bound of the *consensus* alphabet — the default decode bound.
/// Callers moving arbitrary 64-bit payloads (the KV service) pass their own
/// bound to decode()/the engine constructor.
inline constexpr RbValue kMaxRbValue = 3;
/// "Any 64-bit word is a legal payload" bound for data-carrying streams.
inline constexpr RbValue kRbValueAny = ~static_cast<RbValue>(0);

[[nodiscard]] constexpr RbValue to_rb_value(Value v) noexcept {
  return static_cast<RbValue>(v);
}

/// Wire message of the multiplexed broadcast.
struct RbxMsg {
  enum class Kind : std::uint8_t { initial = 0, echo = 1, ready = 2 };
  Kind kind = Kind::initial;
  ProcessId origin = 0;  ///< whose broadcast this instance carries
  std::uint64_t tag = 0; ///< caller-defined instance id (round, shard|seq...)
  RbValue value = kRbValueZero;

  /// Encoded size: tag byte + origin + tag + value.
  static constexpr std::size_t kWireSize = 1 + 4 + 8 + 8;

  [[nodiscard]] Bytes encode() const;
  /// Decodes and validates one message. Rejects (DecodeError) short or
  /// over-long payloads, unknown kind bytes, and values above `max_value` —
  /// the wire is Byzantine input and is never trusted.
  [[nodiscard]] static RbxMsg decode(const Bytes& payload,
                                     RbValue max_value = kMaxRbValue);
};

/// Cross-instance frame coalescing: many RbxMsgs of *different* instances
/// packed into one payload, so one network frame carries the echo/ready
/// traffic of a whole flush interval. Wire layout:
///   [0x2B][count u32][count x (kind u8, origin u32, tag u64, value u64)]
struct RbxBatch {
  /// Distinct from the RbxMsg tag bytes (40..42) so both framings coexist
  /// on one stream.
  static constexpr std::uint8_t kTagByte = 43;
  /// Hard cap on messages per batch; with 21-byte entries this keeps every
  /// batch far below the transport's 1 MiB frame-body limit.
  static constexpr std::size_t kMaxMessages = 4096;

  /// True when `payload` starts with the batch tag byte (cheap dispatch
  /// test; decode_into still fully validates).
  [[nodiscard]] static bool is_batch(const Bytes& payload) noexcept;

  /// Packs `msgs` (1..kMaxMessages of them) into one payload.
  [[nodiscard]] static Bytes encode(std::span<const RbxMsg> msgs);

  /// Appends the decoded messages to `out`. Throws DecodeError on a bad
  /// tag byte, an empty/oversized count, a count that disagrees with the
  /// payload size, or any entry RbxMsg::decode would reject.
  static void decode_into(const Bytes& payload, std::vector<RbxMsg>& out,
                          RbValue max_value = kMaxRbValue);
};

/// Drop counters: Byzantine and stale traffic the engine absorbed without
/// state change. Observability only — never protocol input.
struct RbEngineStats {
  std::uint64_t handled = 0;               ///< messages fed to handle()
  std::uint64_t dropped_origin_range = 0;  ///< origin >= n (no such process)
  std::uint64_t dropped_value_range = 0;   ///< value above the engine bound
  std::uint64_t dropped_retired = 0;       ///< tag at/below a retire cursor
  std::uint64_t dropped_sender_dup = 0;    ///< second echo/ready of a sender
                                           ///< in one instance (equivocation
                                           ///< or duplicate)
  std::uint64_t dropped_slot_overflow = 0; ///< > lane_count() distinct values
  std::uint64_t dropped_origin_flood = 0;  ///< per-origin live-instance cap
  std::uint64_t evicted_unanchored = 0;    ///< phantom evicted for an initial
  std::uint64_t grows = 0;                 ///< instance-pool reallocations
};

class RbEngine {
 public:
  /// `capacity_hint` presizes the instance pool (rounded up to a power of
  /// two, minimum 64); the pool doubles when live instances outgrow it.
  /// `max_value` bounds accepted payload values (kRbValueAny = no bound).
  /// `max_live_per_origin` (0 = unbounded) caps the live instances any one
  /// origin's tags may occupy, anchor-aware (see the file comment): the
  /// bound against phantom-tag floods. Size it well above the origin's
  /// real origination window — it is a DoS backstop, not flow control;
  /// in-cap protocol traffic is never dropped. Requires 1 <= n <= 65535
  /// (tallies are 16-bit).
  explicit RbEngine(core::ConsensusParams params,
                    std::uint32_t capacity_hint = 0,
                    RbValue max_value = kMaxRbValue,
                    std::uint32_t max_live_per_origin = 0);

  struct Delivery {
    ProcessId origin = 0;
    std::uint64_t tag = 0;
    RbValue value = kRbValueZero;
  };

  /// Fixed-capacity list of the messages one handle() call can emit (at
  /// most an echo plus a ready) — keeps the hot path allocation-free while
  /// preserving the vector-ish surface protocol code iterates over.
  class MsgList {
   public:
    [[nodiscard]] const RbxMsg* begin() const noexcept { return msgs_.data(); }
    [[nodiscard]] const RbxMsg* end() const noexcept {
      return msgs_.data() + count_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] const RbxMsg& operator[](std::size_t i) const noexcept {
      return msgs_[i];
    }

   private:
    friend class RbEngine;
    void push(const RbxMsg& m) noexcept { msgs_[count_++] = m; }
    std::array<RbxMsg, 2> msgs_{};
    std::uint8_t count_ = 0;
  };

  struct Outcome {
    /// Messages this process must now broadcast (echo/ready transitions).
    MsgList to_broadcast;
    /// Set when this input completed a delivery.
    std::optional<Delivery> delivered;
  };

  /// Starts our own broadcast instance: returns the initial message to
  /// broadcast (the caller sends it; the engine treats our own initial like
  /// any other once it loops back).
  [[nodiscard]] RbxMsg start(ProcessId self, std::uint64_t tag, RbValue value);

  /// Feeds one decoded message received from authenticated `sender`
  /// (sender < n is the transport's identity guarantee).
  [[nodiscard]] Outcome handle(ProcessId sender, const RbxMsg& msg);

  /// The delivered value of a *live* instance (origin, tag), if any.
  /// Retired instances forget their delivery — long-running callers keep
  /// their own applied state, that is the point of retiring. The KV
  /// service's FIFO apply path re-queries this as its cursor advances, so
  /// an out-of-order delivery needs no caller-side buffer.
  [[nodiscard]] std::optional<RbValue> delivered(ProcessId origin,
                                                 std::uint64_t tag) const;

  /// Frees the instance (origin, tag) if live and drops all current and
  /// future traffic for tags <= `tag` of `origin`: the service calls this
  /// after applying a delivered op, so the live set stays bounded by the
  /// origination window and late echo/ready stragglers cannot resurrect an
  /// applied instance. Callers must retire tags of an origin in
  /// non-decreasing order (the service applies in seq order, so this is
  /// free).
  void retire_through(ProcessId origin, std::uint64_t tag);

  /// Count of live instances (observability / leak checks).
  [[nodiscard]] std::size_t instance_count() const noexcept {
    return live_count_;
  }

  /// Current instance-pool capacity (observability for growth tests).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Distinct values tallied per instance per message kind: k + 2.
  [[nodiscard]] std::uint32_t lane_count() const noexcept { return lanes_; }

  [[nodiscard]] const RbEngineStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Instance {
    ProcessId origin = 0;
    std::uint64_t tag = 0;
    /// First-come lanes in use per kind; lane l's values/tallies live at
    /// row slot * lanes_ + l of the flat lane arrays.
    std::uint16_t echo_lanes_used = 0;
    std::uint16_t ready_lanes_used = 0;
    bool echoed = false;
    bool has_ready_sent = false;
    bool has_delivered = false;
    bool live = false;
    /// True once the origin's own initial was seen (or started locally):
    /// the instance is real protocol work, not a phantom candidate.
    bool anchored = false;
    RbValue delivered_value = 0;
    /// Bucket chain link while live; free-list link while free.
    std::uint32_t next = kNil;
  };

  [[nodiscard]] static std::uint64_t mix_key(ProcessId origin,
                                             std::uint64_t tag) noexcept;
  [[nodiscard]] std::uint32_t find(ProcessId origin,
                                   std::uint64_t tag) const noexcept;
  /// Finds or allocates the slot for (origin, tag); grows the pool when
  /// the free list is empty. `anchored` marks creation by the origin's
  /// own initial (promotes an existing unanchored instance, and may evict
  /// one to stay in cap); kNil when the per-origin caps refuse the slot.
  [[nodiscard]] std::uint32_t obtain(ProcessId origin, std::uint64_t tag,
                                     bool anchored);
  /// Releases the first undelivered unanchored live instance of `origin`
  /// to make room for an anchored one; false when none exists.
  [[nodiscard]] bool evict_unanchored(ProcessId origin);
  /// Returns the tally lane for `value` among `lane_values` (the echo or
  /// ready lane set of `slot`), claiming a free lane on first sight; kNil
  /// when all lanes hold other values (overflow).
  [[nodiscard]] std::uint32_t lane_of(
      std::uint32_t slot, RbValue value,
      core::bitops::AlignedVector<RbValue>& lane_values,
      std::uint16_t& lanes_used);
  /// Unlinks `slot` from its bucket and pushes it on the free list.
  void release(std::uint32_t slot) noexcept;
  void grow();
  /// Appends the READY transition for `value` if not yet sent.
  void maybe_ready(std::uint32_t slot, RbValue value, Outcome& out);

  core::ConsensusParams params_;
  RbValue max_value_;
  std::uint32_t max_live_per_origin_ = 0;
  /// Sub-cap on unanchored (pre-initial) instances per origin.
  std::uint32_t max_unanchored_per_origin_ = 0;
  std::uint32_t lanes_ = 0;
  std::vector<Instance> slots_;
  /// Open hash: bucket_heads_[hash & mask] -> slot chain via Instance::next.
  std::vector<std::uint32_t> bucket_heads_;
  std::uint64_t bucket_mask_ = 0;
  std::uint32_t free_head_ = kNil;
  std::size_t live_count_ = 0;
  /// One counted vote per sender per instance per kind: row = slot,
  /// bit = sender. The gate that makes lanes exhaustion-proof.
  core::BitRows echo_voted_;
  core::BitRows ready_voted_;
  /// First-come value lanes and tallies, row = slot * lanes_ + lane, in
  /// struct-of-arrays form: each array is one flat cache-line-aligned lane
  /// (core/bitops.hpp allocator), so the echo path streams values and
  /// counts as separate contiguous arrays instead of interleaved records.
  core::bitops::AlignedVector<RbValue> echo_lane_value_;
  core::bitops::AlignedVector<RbValue> ready_lane_value_;
  core::bitops::AlignedVector<std::uint16_t> echo_count_;
  core::bitops::AlignedVector<std::uint16_t> ready_count_;
  /// retired_below_[origin] = smallest tag of `origin` still accepted.
  std::vector<std::uint64_t> retired_below_;
  /// Live instances per origin, against max_live_per_origin_.
  std::vector<std::uint32_t> live_per_origin_;
  /// Live unanchored instances per origin, against the sub-cap.
  std::vector<std::uint32_t> unanchored_per_origin_;
  RbEngineStats stats_;
};

}  // namespace rcp::ext
