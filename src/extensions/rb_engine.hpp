// Multiplexed reliable broadcast: many concurrent Bracha-broadcast
// instances over one message stream.
//
// The single-shot core/reliable_broadcast.hpp demonstrates the primitive;
// real protocols (like the 1987 Bracha consensus built on top of it in
// extensions/bracha87.hpp) need one instance per (origin, tag) — e.g. per
// sender per round per sub-round. The engine owns all per-instance state:
// echo/ready tallies with per-sender deduplication, the sent-echo/-ready
// flags, and delivery. For k <= floor((n-1)/3) each instance guarantees:
//   consistency — no two correct processes deliver different values for
//     the same (origin, tag);
//   totality    — if any correct process delivers, every correct process
//     eventually delivers;
//   validity    — a correct origin's broadcast is delivered by everyone.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/params.hpp"

namespace rcp::ext {

/// Broadcast payload: a small alphabet wide enough for binary consensus
/// values, Ben-Or's "?" proposals (bottom), and Bracha-87's decision
/// proposals (2 + w). Semantics belong to the protocol; the engine only
/// ranges over the alphabet.
using RbValue = std::uint8_t;
inline constexpr RbValue kRbValueZero = 0;
inline constexpr RbValue kRbValueOne = 1;
inline constexpr RbValue kRbValueBottom = 2;
inline constexpr RbValue kMaxRbValue = 3;

[[nodiscard]] constexpr RbValue to_rb_value(Value v) noexcept {
  return static_cast<RbValue>(v);
}

/// Wire message of the multiplexed broadcast.
struct RbxMsg {
  enum class Kind : std::uint8_t { initial = 0, echo = 1, ready = 2 };
  Kind kind = Kind::initial;
  ProcessId origin = 0;  ///< whose broadcast this instance carries
  std::uint64_t tag = 0; ///< caller-defined instance id (round, sub-round...)
  RbValue value = kRbValueZero;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static RbxMsg decode(const Bytes& payload);
};

class RbEngine {
 public:
  explicit RbEngine(core::ConsensusParams params) noexcept : params_(params) {}

  struct Delivery {
    ProcessId origin = 0;
    std::uint64_t tag = 0;
    RbValue value = kRbValueZero;
  };

  struct Outcome {
    /// Messages this process must now broadcast (echo/ready transitions).
    std::vector<RbxMsg> to_broadcast;
    /// Set when this input completed a delivery.
    std::optional<Delivery> delivered;
  };

  /// Starts our own broadcast instance: returns the initial message to
  /// broadcast (the caller sends it; the engine treats our own initial like
  /// any other once it loops back).
  [[nodiscard]] RbxMsg start(ProcessId self, std::uint64_t tag, RbValue value);

  /// Feeds one decoded message received from authenticated `sender`.
  [[nodiscard]] Outcome handle(ProcessId sender, const RbxMsg& msg);

  /// The delivered value of instance (origin, tag), if any.
  [[nodiscard]] std::optional<RbValue> delivered(ProcessId origin,
                                                 std::uint64_t tag) const;

  /// Count of instances with any state (observability / leak checks).
  [[nodiscard]] std::size_t instance_count() const noexcept {
    return instances_.size();
  }

 private:
  struct Instance {
    std::set<ProcessId> echo_from[kMaxRbValue + 1];
    std::set<ProcessId> ready_from[kMaxRbValue + 1];
    bool echoed = false;
    std::optional<RbValue> ready_sent;
    std::optional<RbValue> delivered;
  };

  using Key = std::pair<ProcessId, std::uint64_t>;

  /// Appends the READY transition for `value` if not yet sent.
  void maybe_ready(Instance& inst, ProcessId origin, std::uint64_t tag,
                   RbValue value, Outcome& out);

  core::ConsensusParams params_;
  std::map<Key, Instance> instances_;
};

}  // namespace rcp::ext
