// Multiplexed reliable broadcast: many concurrent Bracha-broadcast
// instances over one message stream.
//
// The single-shot core/reliable_broadcast.hpp demonstrates the primitive;
// real protocols (like the 1987 Bracha consensus built on top of it in
// extensions/bracha87.hpp) need one instance per (origin, tag) — e.g. per
// sender per round per sub-round — and the replicated KV service
// (src/service/) runs one instance per client write. The engine owns all
// per-instance state: echo/ready tallies with per-sender deduplication,
// the sent-echo/-ready flags, and delivery. For k <= floor((n-1)/3) each
// instance guarantees:
//   consistency — no two correct processes deliver different values for
//     the same (origin, tag);
//   totality    — if any correct process delivers, every correct process
//     eventually delivers;
//   validity    — a correct origin's broadcast is delivered by everyone.
//
// Storage is flat (docs/PERF.md "Quorum accounting"): instances live in a
// preallocated slot pool indexed by an open hash on (origin, tag), echo and
// ready dedup is a core::BitRows bit per (slot, value-lane, sender), and
// tallies are plain counters. Steady-state handle()/retire_through() is
// allocation-free — the pool only reallocates when the number of live
// instances outgrows capacity, which the service bounds with its
// origination window. This file is under the [allocation] lint rule and
// the operator-new counting test in tests/extensions/.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "core/quorum.hpp"

namespace rcp::ext {

/// Broadcast payload: a full 64-bit word. The consensus protocols use a
/// small alphabet — binary values, Ben-Or's "?" proposal (bottom),
/// Bracha-87's decision proposals (2 + w) — while the KV service packs a
/// whole (key, value) write into the word. Semantics belong to the caller;
/// the engine only tallies equality. Each instance tracks at most
/// `RbEngine::kValueSlots` distinct values: enough for every protocol
/// alphabet in the tree, and enough to deliver in the service (a correct
/// origin sends one value; Byzantine equivocation beyond the slots only
/// wastes the attacker's own instance).
using RbValue = std::uint64_t;
inline constexpr RbValue kRbValueZero = 0;
inline constexpr RbValue kRbValueOne = 1;
inline constexpr RbValue kRbValueBottom = 2;
/// Upper bound of the *consensus* alphabet — the default decode bound.
/// Callers moving arbitrary 64-bit payloads (the KV service) pass their own
/// bound to decode()/the engine constructor.
inline constexpr RbValue kMaxRbValue = 3;
/// "Any 64-bit word is a legal payload" bound for data-carrying streams.
inline constexpr RbValue kRbValueAny = ~static_cast<RbValue>(0);

[[nodiscard]] constexpr RbValue to_rb_value(Value v) noexcept {
  return static_cast<RbValue>(v);
}

/// Wire message of the multiplexed broadcast.
struct RbxMsg {
  enum class Kind : std::uint8_t { initial = 0, echo = 1, ready = 2 };
  Kind kind = Kind::initial;
  ProcessId origin = 0;  ///< whose broadcast this instance carries
  std::uint64_t tag = 0; ///< caller-defined instance id (round, shard|seq...)
  RbValue value = kRbValueZero;

  /// Encoded size: tag byte + origin + tag + value.
  static constexpr std::size_t kWireSize = 1 + 4 + 8 + 8;

  [[nodiscard]] Bytes encode() const;
  /// Decodes and validates one message. Rejects (DecodeError) short or
  /// over-long payloads, unknown kind bytes, and values above `max_value` —
  /// the wire is Byzantine input and is never trusted.
  [[nodiscard]] static RbxMsg decode(const Bytes& payload,
                                     RbValue max_value = kMaxRbValue);
};

/// Cross-instance frame coalescing: many RbxMsgs of *different* instances
/// packed into one payload, so one network frame carries the echo/ready
/// traffic of a whole flush interval. Wire layout:
///   [0x2B][count u32][count x (kind u8, origin u32, tag u64, value u64)]
struct RbxBatch {
  /// Distinct from the RbxMsg tag bytes (40..42) so both framings coexist
  /// on one stream.
  static constexpr std::uint8_t kTagByte = 43;
  /// Hard cap on messages per batch; with 21-byte entries this keeps every
  /// batch far below the transport's 1 MiB frame-body limit.
  static constexpr std::size_t kMaxMessages = 4096;

  /// True when `payload` starts with the batch tag byte (cheap dispatch
  /// test; decode_into still fully validates).
  [[nodiscard]] static bool is_batch(const Bytes& payload) noexcept;

  /// Packs `msgs` (1..kMaxMessages of them) into one payload.
  [[nodiscard]] static Bytes encode(std::span<const RbxMsg> msgs);

  /// Appends the decoded messages to `out`. Throws DecodeError on a bad
  /// tag byte, an empty/oversized count, a count that disagrees with the
  /// payload size, or any entry RbxMsg::decode would reject.
  static void decode_into(const Bytes& payload, std::vector<RbxMsg>& out,
                          RbValue max_value = kMaxRbValue);
};

/// Drop counters: Byzantine and stale traffic the engine absorbed without
/// state change. Observability only — never protocol input.
struct RbEngineStats {
  std::uint64_t handled = 0;               ///< messages fed to handle()
  std::uint64_t dropped_origin_range = 0;  ///< origin >= n (no such process)
  std::uint64_t dropped_value_range = 0;   ///< value above the engine bound
  std::uint64_t dropped_retired = 0;       ///< tag at/below a retire cursor
  std::uint64_t dropped_slot_overflow = 0; ///< > kValueSlots distinct values
  std::uint64_t grows = 0;                 ///< instance-pool reallocations
};

class RbEngine {
 public:
  /// Distinct values tallied per instance; see the RbValue note above.
  static constexpr std::uint32_t kValueSlots = 4;

  /// `capacity_hint` presizes the instance pool (rounded up to a power of
  /// two, minimum 64); the pool doubles when live instances outgrow it.
  /// `max_value` bounds accepted payload values (kRbValueAny = no bound).
  explicit RbEngine(core::ConsensusParams params,
                    std::uint32_t capacity_hint = 0,
                    RbValue max_value = kMaxRbValue);

  struct Delivery {
    ProcessId origin = 0;
    std::uint64_t tag = 0;
    RbValue value = kRbValueZero;
  };

  /// Fixed-capacity list of the messages one handle() call can emit (at
  /// most an echo plus a ready) — keeps the hot path allocation-free while
  /// preserving the vector-ish surface protocol code iterates over.
  class MsgList {
   public:
    [[nodiscard]] const RbxMsg* begin() const noexcept { return msgs_.data(); }
    [[nodiscard]] const RbxMsg* end() const noexcept {
      return msgs_.data() + count_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] const RbxMsg& operator[](std::size_t i) const noexcept {
      return msgs_[i];
    }

   private:
    friend class RbEngine;
    void push(const RbxMsg& m) noexcept { msgs_[count_++] = m; }
    std::array<RbxMsg, 2> msgs_{};
    std::uint8_t count_ = 0;
  };

  struct Outcome {
    /// Messages this process must now broadcast (echo/ready transitions).
    MsgList to_broadcast;
    /// Set when this input completed a delivery.
    std::optional<Delivery> delivered;
  };

  /// Starts our own broadcast instance: returns the initial message to
  /// broadcast (the caller sends it; the engine treats our own initial like
  /// any other once it loops back).
  [[nodiscard]] RbxMsg start(ProcessId self, std::uint64_t tag, RbValue value);

  /// Feeds one decoded message received from authenticated `sender`
  /// (sender < n is the transport's identity guarantee).
  [[nodiscard]] Outcome handle(ProcessId sender, const RbxMsg& msg);

  /// The delivered value of a *live* instance (origin, tag), if any.
  /// Retired instances forget their delivery — long-running callers keep
  /// their own applied state, that is the point of retiring.
  [[nodiscard]] std::optional<RbValue> delivered(ProcessId origin,
                                                 std::uint64_t tag) const;

  /// Frees the instance (origin, tag) if live and drops all current and
  /// future traffic for tags <= `tag` of `origin`: the service calls this
  /// after applying a delivered op, so the live set stays bounded by the
  /// origination window and late echo/ready stragglers cannot resurrect an
  /// applied instance. Callers must retire tags of an origin in
  /// non-decreasing order (the service applies in seq order, so this is
  /// free).
  void retire_through(ProcessId origin, std::uint64_t tag);

  /// Count of live instances (observability / leak checks).
  [[nodiscard]] std::size_t instance_count() const noexcept {
    return live_count_;
  }

  /// Current instance-pool capacity (observability for growth tests).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  [[nodiscard]] const RbEngineStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Instance {
    ProcessId origin = 0;
    std::uint64_t tag = 0;
    /// First-come value lanes; lane l's tallies live at row
    /// slot * kValueSlots + l of the bit matrices / count arrays.
    std::array<RbValue, kValueSlots> lane_value{};
    std::uint8_t lanes_used = 0;
    bool echoed = false;
    bool has_ready_sent = false;
    bool has_delivered = false;
    bool live = false;
    RbValue delivered_value = 0;
    /// Bucket chain link while live; free-list link while free.
    std::uint32_t next = kNil;
  };

  [[nodiscard]] static std::uint64_t mix_key(ProcessId origin,
                                             std::uint64_t tag) noexcept;
  [[nodiscard]] std::uint32_t find(ProcessId origin,
                                   std::uint64_t tag) const noexcept;
  /// Finds or allocates the slot for (origin, tag); grows the pool when the
  /// free list is empty.
  [[nodiscard]] std::uint32_t obtain(ProcessId origin, std::uint64_t tag);
  /// Returns the tally lane for `value` in `slot`, claiming a free lane on
  /// first sight; kNil when all lanes hold other values (overflow).
  [[nodiscard]] std::uint32_t lane_of(std::uint32_t slot, RbValue value);
  /// Unlinks `slot` from its bucket and pushes it on the free list.
  void release(std::uint32_t slot) noexcept;
  void grow();
  /// Appends the READY transition for `value` if not yet sent.
  void maybe_ready(std::uint32_t slot, RbValue value, Outcome& out);

  core::ConsensusParams params_;
  RbValue max_value_;
  std::vector<Instance> slots_;
  /// Open hash: bucket_heads_[hash & mask] -> slot chain via Instance::next.
  std::vector<std::uint32_t> bucket_heads_;
  std::uint64_t bucket_mask_ = 0;
  std::uint32_t free_head_ = kNil;
  std::size_t live_count_ = 0;
  /// Per-sender dedup and tallies, row = slot * kValueSlots + lane.
  core::BitRows echo_bits_;
  core::BitRows ready_bits_;
  std::vector<std::uint16_t> echo_count_;
  std::vector<std::uint16_t> ready_count_;
  /// retired_below_[origin] = smallest tag of `origin` still accepted.
  std::vector<std::uint64_t> retired_below_;
  RbEngineStats stats_;
};

}  // namespace rcp::ext
