#include "extensions/multivalued.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::ext {

namespace {

constexpr std::uint8_t kPropInitial = 50;
constexpr std::uint8_t kPropEcho = 51;
constexpr std::uint8_t kPropReady = 52;
constexpr std::uint8_t kSlotWrapped = 53;
constexpr std::size_t kMaxProposalBytes = 64 * 1024;

struct PropMsg {
  std::uint8_t kind = kPropInitial;
  ProcessId origin = 0;
  Bytes body;
};

Bytes encode_prop(const PropMsg& msg) {
  ByteWriter w(9 + msg.body.size());
  w.u8(msg.kind).u32(msg.origin).u32(static_cast<std::uint32_t>(msg.body.size()));
  Bytes out = std::move(w).take();
  out.insert(out.end(), msg.body.begin(), msg.body.end());
  return out;
}

PropMsg decode_prop(const Bytes& payload) {
  ByteReader r(payload);
  PropMsg msg;
  msg.kind = r.u8();
  if (msg.kind < kPropInitial || msg.kind > kPropReady) {
    throw DecodeError("not a proposal-broadcast message");
  }
  msg.origin = r.u32();
  const std::uint32_t len = r.u32();
  if (len > kMaxProposalBytes || len != r.remaining()) {
    throw DecodeError("bad proposal length");
  }
  msg.body.assign(payload.end() - len, payload.end());
  return msg;
}

Bytes wrap_slot(std::uint64_t slot, const Bytes& inner) {
  ByteWriter w(9 + inner.size());
  w.u8(kSlotWrapped).u64(slot);
  Bytes out = std::move(w).take();
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

std::string body_key(const Bytes& body) {
  return std::string(reinterpret_cast<const char*>(body.data()), body.size());
}

}  // namespace

// ---- ProposalRb ------------------------------------------------------------

Bytes ProposalRb::encode_initial(ProcessId self, const Bytes& proposal) {
  return encode_prop(
      PropMsg{.kind = kPropInitial, .origin = self, .body = proposal});
}

bool ProposalRb::is_proposal_msg(const Bytes& payload) {
  if (payload.empty()) {
    return false;
  }
  const auto tag = static_cast<std::uint8_t>(payload.front());
  return tag >= kPropInitial && tag <= kPropReady;
}

ProposalRb::Outcome ProposalRb::handle(ProcessId sender, const Bytes& payload) {
  Outcome out;
  const PropMsg msg = decode_prop(payload);
  Instance& inst = instances_[msg.origin];
  switch (msg.kind) {
    case kPropInitial: {
      if (sender != msg.origin || inst.echoed) {
        return out;  // forged origin, or already echoed the first version
      }
      inst.echoed = true;
      out.to_broadcast.push_back(encode_prop(
          PropMsg{.kind = kPropEcho, .origin = msg.origin, .body = msg.body}));
      return out;
    }
    case kPropEcho: {
      if (!inst.echoers.insert(sender).second) {
        return out;  // one echo per echoer per origin
      }
      auto& from = inst.echo_from[body_key(msg.body)];
      from.insert(sender);
      if (from.size() >= params_.echo_acceptance_threshold() &&
          !inst.ready_sent) {
        inst.ready_sent = true;
        out.to_broadcast.push_back(encode_prop(PropMsg{
            .kind = kPropReady, .origin = msg.origin, .body = msg.body}));
      }
      return out;
    }
    case kPropReady: {
      if (!inst.readiers.insert(sender).second) {
        return out;
      }
      auto& from = inst.ready_from[body_key(msg.body)];
      from.insert(sender);
      if (from.size() >= params_.k + 1 && !inst.ready_sent) {
        inst.ready_sent = true;
        out.to_broadcast.push_back(encode_prop(PropMsg{
            .kind = kPropReady, .origin = msg.origin, .body = msg.body}));
      }
      if (from.size() >= 2 * params_.k + 1 &&
          delivered_.find(msg.origin) == delivered_.end()) {
        delivered_.emplace(msg.origin, msg.body);
        out.delivered = std::make_pair(msg.origin, msg.body);
      }
      return out;
    }
    default:
      return out;
  }
}

std::optional<Bytes> ProposalRb::delivered(ProcessId origin) const {
  const auto it = delivered_.find(origin);
  if (it == delivered_.end()) {
    return std::nullopt;
  }
  return it->second;
}

// ---- MultiValuedConsensus ---------------------------------------------------

/// Context wrapper handed to a slot's binary instance: sends are wrapped
/// with the slot id, and the instance's binary decide() is swallowed (the
/// binary outcome is read back through MaliciousConsensus::decision(); only
/// the multivalued layer decides at the simulator level).
class MultiValuedConsensus::SlotContext final : public sim::Context {
 public:
  SlotContext(sim::Context& outer, std::uint64_t slot) noexcept
      : outer_(outer), slot_(slot) {}

  [[nodiscard]] ProcessId self() const noexcept override {
    return outer_.self();
  }
  [[nodiscard]] std::uint32_t n() const noexcept override {
    return outer_.n();
  }
  [[nodiscard]] std::uint64_t step() const noexcept override {
    return outer_.step();
  }

  void send(ProcessId to, Bytes payload) override {
    outer_.send(to, wrap_slot(slot_, payload));
  }

  void broadcast(const Bytes& payload) override {
    const Bytes wrapped = wrap_slot(slot_, payload);
    for (ProcessId q = 0; q < outer_.n(); ++q) {
      outer_.send(q, wrapped);
    }
  }

  void decide(Value /*v*/) override {
    // Intentionally swallowed; see class comment.
  }

  [[nodiscard]] Rng& rng() noexcept override { return outer_.rng(); }

 private:
  sim::Context& outer_;
  std::uint64_t slot_;
};

std::unique_ptr<MultiValuedConsensus> MultiValuedConsensus::make(
    core::ConsensusParams params, Bytes proposal) {
  params.validate(core::FaultModel::malicious);
  RCP_EXPECT(proposal.size() <= kMaxProposalBytes,
             "proposal exceeds 64 KiB");
  return std::unique_ptr<MultiValuedConsensus>(
      new MultiValuedConsensus(params, std::move(proposal)));
}

MultiValuedConsensus::MultiValuedConsensus(core::ConsensusParams params,
                                           Bytes proposal) noexcept
    : params_(params), proposal_(std::move(proposal)), rb_(params) {}

void MultiValuedConsensus::on_start(sim::Context& ctx) {
  ctx.broadcast(ProposalRb::encode_initial(ctx.self(), proposal_));
  open_current_slot(ctx);
  reconcile(ctx);
}

void MultiValuedConsensus::open_current_slot(sim::Context& ctx) {
  RCP_INVARIANT(slots_.size() == current_slot_, "slot opened out of order");
  const Value input =
      rb_.delivered(slot_origin(current_slot_)).has_value() ? Value::one
                                                            : Value::zero;
  slots_.push_back(core::MaliciousConsensus::make(params_, input));
  SlotContext sctx(ctx, current_slot_);
  slots_.back()->on_start(sctx);
  // Replay anything that arrived for this slot before we opened it.
  const auto it = deferred_.find(current_slot_);
  if (it != deferred_.end()) {
    const std::vector<sim::Envelope> backlog = std::move(it->second);
    deferred_.erase(it);
    for (const sim::Envelope& env : backlog) {
      slots_.back()->on_message(sctx, env);
    }
  }
}

void MultiValuedConsensus::reconcile(sim::Context& ctx) {
  for (;;) {
    if (decided_proposal_.has_value()) {
      return;
    }
    if (winning_slot_.has_value()) {
      // Waiting for the winner's proposal bytes (RB totality guarantees
      // they arrive: some correct process voted 1, so it delivered them).
      const auto bytes = rb_.delivered(*winning_origin_);
      if (!bytes.has_value()) {
        return;
      }
      decided_proposal_ = bytes;
      ctx.decide(Value::one);  // completion marker for the simulator
      return;
    }
    const auto decision = slots_[current_slot_]->decision();
    if (!decision.has_value()) {
      return;
    }
    if (*decision == Value::one) {
      winning_slot_ = current_slot_;
      winning_origin_ = slot_origin(current_slot_);
      continue;
    }
    current_slot_ += 1;
    open_current_slot(ctx);
  }
}

void MultiValuedConsensus::on_message(sim::Context& ctx,
                                      const sim::Envelope& env) {
  if (ProposalRb::is_proposal_msg(env.payload)) {
    ProposalRb::Outcome outcome;
    try {
      outcome = rb_.handle(env.sender, env.payload);
    } catch (const DecodeError&) {
      return;
    }
    for (const Bytes& reply : outcome.to_broadcast) {
      ctx.broadcast(reply);
    }
    if (outcome.delivered.has_value()) {
      reconcile(ctx);
    }
    return;
  }
  // Slot-wrapped binary-protocol traffic.
  if (env.payload.empty() ||
      static_cast<std::uint8_t>(env.payload.front()) != kSlotWrapped) {
    return;  // unknown tag; drop
  }
  std::uint64_t slot = 0;
  Bytes inner;
  try {
    ByteReader r(env.payload);
    (void)r.u8();
    slot = r.u64();
    inner.assign(env.payload.begin() + 9, env.payload.end());
  } catch (const DecodeError&) {
    return;
  }
  sim::Envelope unwrapped = env;
  unwrapped.payload = std::move(inner);
  if (slot >= slots_.size()) {
    deferred_[slot].push_back(std::move(unwrapped));
    return;
  }
  SlotContext sctx(ctx, slot);
  slots_[slot]->on_message(sctx, unwrapped);
  reconcile(ctx);
}

}  // namespace rcp::ext
