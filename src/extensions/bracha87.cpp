#include "extensions/bracha87.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::ext {

std::unique_ptr<Bracha87> Bracha87::make(core::ConsensusParams params,
                                         Value initial_value) {
  params.validate(core::FaultModel::malicious);
  return std::unique_ptr<Bracha87>(new Bracha87(params, initial_value));
}

Bracha87::Bracha87(core::ConsensusParams params, Value initial_value) noexcept
    : params_(params), value_(initial_value), engine_(params) {}

void Bracha87::on_start(sim::Context& ctx) {
  broadcast_step(ctx, 1, to_rb_value(value_));
}

void Bracha87::broadcast_step(sim::Context& ctx, int step, RbValue payload) {
  ctx.broadcast(engine_.start(ctx.self(), tag(round_, step), payload).encode());
}

Bracha87::Counts Bracha87::counts(std::uint64_t t) const {
  Counts c;
  const auto it = tags_.find(t);
  if (it == tags_.end()) {
    return c;
  }
  for (const auto& [origin, payload] : it->second.validated) {
    if (payload <= 1) {
      ++c.plain[payload];
    } else {
      ++c.proposal[payload - kProposal0];
    }
    ++c.total;
  }
  return c;
}

bool Bracha87::majority_reachable(const Counts& c, RbValue v) const {
  // Is v the tie-to-0 majority of some (n-k)-subset of the counted plain
  // messages? For v = 1 the subset needs a strict majority of 1s; for
  // v = 0 it needs at least half 0s (ties go to 0).
  const std::uint32_t quorum = params_.wait_quorum();
  if (c.plain[0] + c.plain[1] < quorum) {
    return false;  // cannot assemble a full subset yet
  }
  if (v == 1) {
    return c.plain[1] >= quorum / 2 + 1;
  }
  return c.plain[0] >= (quorum + 1) / 2;
}

bool Bracha87::is_valid(std::uint64_t t, RbValue payload) const {
  const Phase r = t / 3;
  const int step = static_cast<int>(t % 3) + 1;
  switch (step) {
    case 1: {
      if (payload > 1) {
        return false;
      }
      if (r == 0) {
        return true;  // initial inputs are unconstrained
      }
      const Counts prev = counts(tag(r - 1, 3));
      if (prev.total < params_.wait_quorum()) {
        return false;
      }
      // Adopt/decide case: more than k validated proposals for this value.
      if (prev.proposal[payload] > params_.k) {
        return true;
      }
      // Coin case: an (n-k)-subset with every proposal count <= k exists.
      const std::uint32_t excess0 =
          prev.proposal[0] > params_.k ? prev.proposal[0] - params_.k : 0;
      const std::uint32_t excess1 =
          prev.proposal[1] > params_.k ? prev.proposal[1] - params_.k : 0;
      return prev.total - excess0 - excess1 >= params_.wait_quorum();
    }
    case 2: {
      if (payload > 1) {
        return false;
      }
      return majority_reachable(counts(tag(r, 1)), payload);
    }
    case 3: {
      const Counts prev = counts(tag(r, 2));
      if (payload <= 1) {
        return majority_reachable(prev, payload);
      }
      // Decision proposal (w, D): w must hold a strict majority of the
      // whole system among the RB-consistent step-2 values.
      const RbValue w = payload - kProposal0;
      return 2ULL * prev.plain[w] > params_.n;
    }
    default:
      return false;
  }
}

bool Bracha87::revalidate() {
  bool moved_any = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [t, state] : tags_) {
      for (auto it = state.pending.begin(); it != state.pending.end();) {
        if (is_valid(t, it->second)) {
          state.validated.emplace(it->first, it->second);
          it = state.pending.erase(it);
          progress = true;
          moved_any = true;
        } else {
          ++it;
        }
      }
    }
  }
  return moved_any;
}

void Bracha87::try_advance(sim::Context& ctx) {
  for (;;) {
    const Counts c = counts(tag(round_, step_));
    if (c.total < params_.wait_quorum()) {
      return;
    }
    if (step_ == 1) {
      // v := majority of the validated step-1 values (ties to 0).
      value_ = c.plain[1] > c.plain[0] ? Value::one : Value::zero;
      step_ = 2;
      broadcast_step(ctx, 2, to_rb_value(value_));
    } else if (step_ == 2) {
      value_ = c.plain[1] > c.plain[0] ? Value::one : Value::zero;
      RbValue out = to_rb_value(value_);
      for (const RbValue w : {kRbValueZero, kRbValueOne}) {
        if (2ULL * c.plain[w] > params_.n) {
          value_ = value_from_int(w);
          out = kProposal0 + w;
        }
      }
      step_ = 3;
      broadcast_step(ctx, 3, out);
    } else {
      const RbValue leader =
          c.proposal[1] > c.proposal[0] ? kRbValueOne : kRbValueZero;
      const std::uint32_t votes = c.proposal[leader];
      if (votes > 2 * params_.k) {
        value_ = value_from_int(leader);
        if (!decision_.has_value()) {
          decision_ = value_;
          ctx.decide(value_);
        }
      } else if (votes > params_.k) {
        value_ = value_from_int(leader);
      } else {
        value_ = ctx.rng().bernoulli(0.5) ? Value::one : Value::zero;
        ++coin_flips_;
      }
      round_ += 1;
      step_ = 1;
      broadcast_step(ctx, 1, to_rb_value(value_));
    }
    // Entering a new (round, step) may immediately unlock deferred
    // validations whose justification step just filled in.
    (void)revalidate();
  }
}

void Bracha87::on_message(sim::Context& ctx, const sim::Envelope& env) {
  RbxMsg msg;
  try {
    msg = RbxMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  RbEngine::Outcome outcome = engine_.handle(env.sender, msg);
  for (const RbxMsg& reply : outcome.to_broadcast) {
    ctx.broadcast(reply.encode());
  }
  if (!outcome.delivered.has_value()) {
    return;
  }
  TagState& state = tags_[outcome.delivered->tag];
  state.pending.emplace(outcome.delivered->origin, outcome.delivered->value);
  (void)revalidate();
  try_advance(ctx);
}

std::size_t Bracha87::pending_validation() const {
  std::size_t total = 0;
  for (const auto& [t, state] : tags_) {
    total += state.pending.size();
  }
  return total;
}

}  // namespace rcp::ext
