#include "extensions/rb_benor.hpp"

#include <string>

#include "common/error.hpp"

namespace rcp::ext {

std::unique_ptr<RbBenOr> RbBenOr::make(core::ConsensusParams params,
                                       Value initial_value) {
  RCP_EXPECT(params.n >= 1, "need at least one process");
  const std::uint32_t bound = (params.n - 1) / 5;
  RCP_EXPECT(params.k <= bound,
             "k = " + std::to_string(params.k) +
                 " exceeds the RB-Ben-Or bound floor((n-1)/5) = " +
                 std::to_string(bound) + " for n = " + std::to_string(params.n));
  return std::unique_ptr<RbBenOr>(new RbBenOr(params, initial_value));
}

RbBenOr::RbBenOr(core::ConsensusParams params, Value initial_value) noexcept
    : params_(params), value_(initial_value), engine_(params) {}

void RbBenOr::broadcast_rbx(sim::Context& ctx, const RbxMsg& msg) {
  ctx.broadcast(msg.encode());
}

void RbBenOr::on_start(sim::Context& ctx) {
  broadcast_rbx(ctx, engine_.start(ctx.self(), report_tag(),
                                   to_rb_value(value_)));
}

void RbBenOr::on_message(sim::Context& ctx, const sim::Envelope& env) {
  RbxMsg msg;
  try {
    msg = RbxMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  RbEngine::Outcome outcome = engine_.handle(env.sender, msg);
  for (const RbxMsg& reply : outcome.to_broadcast) {
    broadcast_rbx(ctx, reply);
  }
  if (outcome.delivered.has_value()) {
    delivered_[outcome.delivered->tag][outcome.delivered->origin] =
        outcome.delivered->value;
    try_advance(ctx);
  }
}

void RbBenOr::try_advance(sim::Context& ctx) {
  for (;;) {
    const std::uint64_t tag = proposing_ ? propose_tag() : report_tag();
    const auto it = delivered_.find(tag);
    const std::size_t have = it == delivered_.end() ? 0 : it->second.size();
    if (have < params_.wait_quorum()) {
      return;
    }
    if (!proposing_) {
      // Report stage complete: propose the supermajority value, if any.
      std::uint32_t counts[2] = {0, 0};
      for (const auto& [origin, payload] : it->second) {
        if (payload <= kRbValueOne) {
          ++counts[payload];
        }
      }
      RbValue proposal = kRbValueBottom;
      for (const RbValue w : {kRbValueZero, kRbValueOne}) {
        if (2ULL * counts[w] > static_cast<std::uint64_t>(params_.n) +
                                   params_.k) {
          proposal = w;
        }
      }
      proposing_ = true;
      broadcast_rbx(ctx, engine_.start(ctx.self(), propose_tag(), proposal));
      continue;
    }
    // Proposal stage complete: decide / adopt / flip.
    std::uint32_t proposals[2] = {0, 0};
    for (const auto& [origin, payload] : it->second) {
      if (payload <= kRbValueOne) {
        ++proposals[payload];
      }
    }
    const RbValue leader =
        proposals[1] > proposals[0] ? kRbValueOne : kRbValueZero;
    const std::uint32_t leader_count = proposals[leader];
    if (leader_count >= 2 * params_.k + 1) {
      value_ = value_from_int(leader);
      if (!decision_.has_value()) {
        decision_ = value_;
        ctx.decide(value_);
      }
    } else if (leader_count >= params_.k + 1) {
      value_ = value_from_int(leader);
    } else {
      value_ = ctx.rng().bernoulli(0.5) ? Value::one : Value::zero;
      ++coin_flips_;
    }
    round_ += 1;
    proposing_ = false;
    broadcast_rbx(ctx, engine_.start(ctx.self(), report_tag(),
                                     to_rb_value(value_)));
  }
}

}  // namespace rcp::ext
