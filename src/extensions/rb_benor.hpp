// RB-hardened randomized Byzantine consensus: Ben-Or's round structure with
// every point-to-point broadcast replaced by a reliable-broadcast instance.
//
// This is the first step on the road from this paper's echo machinery to
// Bracha's 1987 asynchronous Byzantine agreement: reliable broadcast
// removes the adversary's equivocation power entirely — per (origin,
// round, stage) every correct process observes the *same* value. The full
// 1987 protocol additionally validates that received values are
// justifiable, which buys n > 3k resilience; without validation the
// protocol keeps Ben-Or's k <= floor((n-1)/5) bound (documented in
// DESIGN.md as future work).
//
// Round r:
//   report : RB(tag = 2r,   v). Await n-k deliveries (distinct origins);
//            if some value w has more than (n+k)/2 deliveries, the round's
//            proposal is w, else bottom.
//   propose: RB(tag = 2r+1, proposal). Await n-k deliveries;
//            decide w on >= 2k+1 proposals for w, adopt w on >= k+1,
//            else flip the private coin.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "extensions/rb_engine.hpp"

namespace rcp::ext {

class RbBenOr final : public sim::Process {
 public:
  /// Validating factory: throws unless k <= floor((n-1)/5).
  [[nodiscard]] static std::unique_ptr<RbBenOr> make(
      core::ConsensusParams params, Value initial_value);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return round_; }

  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] std::optional<Value> decision() const noexcept {
    return decision_;
  }
  [[nodiscard]] std::uint64_t coin_flips() const noexcept {
    return coin_flips_;
  }
  [[nodiscard]] const RbEngine& engine() const noexcept { return engine_; }

 private:
  RbBenOr(core::ConsensusParams params, Value initial_value) noexcept;

  [[nodiscard]] std::uint64_t report_tag() const noexcept { return 2 * round_; }
  [[nodiscard]] std::uint64_t propose_tag() const noexcept {
    return 2 * round_ + 1;
  }

  void broadcast_rbx(sim::Context& ctx, const RbxMsg& msg);
  /// Re-evaluates stage completion after any delivery; may cascade through
  /// several stages and rounds.
  void try_advance(sim::Context& ctx);

  core::ConsensusParams params_;
  Value value_;
  Phase round_ = 0;
  bool proposing_ = false;  ///< report stage done, waiting on proposals
  std::optional<Value> decision_;
  std::uint64_t coin_flips_ = 0;
  RbEngine engine_;
  /// All deliveries, keyed by instance tag -> origin -> payload. RB
  /// guarantees one payload per (origin, tag) across all correct processes.
  std::map<std::uint64_t, std::map<ProcessId, RbValue>> delivered_;
};

}  // namespace rcp::ext
