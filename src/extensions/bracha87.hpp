// Bracha's 1987 asynchronous Byzantine agreement — the paper's direct
// descendant — tolerating k <= floor((n-1)/3) malicious processes.
//
// Two mechanisms lift the 1983 Figure 2 design to optimal resilience:
//   1. every message travels by reliable broadcast (RbEngine), so per
//      (origin, round, step) all correct processes observe the same value;
//   2. every delivered message is *validated* before it is counted: a
//      value is accepted only once the receiver can itself justify it from
//      the previous step's validated messages. A Byzantine process can
//      still lie, but only by claiming a value some correct process could
//      legitimately have computed.
//
// Round r has three steps (tags 3r, 3r+1, 3r+2):
//   step 1: broadcast v. On n-k validated messages: v := majority.
//   step 2: broadcast v. On n-k validated: if some w holds a strict
//           majority of the *whole system* (count > n/2), broadcast the
//           decision proposal (w, D) in step 3, else broadcast v plain.
//   step 3: on n-k validated: let D(w) = validated proposals for w;
//           decide w if D(w) > 2k; adopt w if D(w) > k; else flip the
//           private coin. Continue into round r+1 (deciders keep going).
//
// Validation rules (all evaluated against the receiver's own validated
// sets, deferred until satisfied — validity is monotone, so a message
// that will ever be justifiable eventually is):
//   (r,1,v): r = 0 always; r >= 1 once the previous step 3 has n-k
//            validated messages and either D(v) > k (adopt/decide case) or
//            an (n-k)-subset with every D(w) <= k exists (coin case).
//   (r,2,v): v is the tie-to-0 majority of some (n-k)-subset of the
//            validated (r,1) messages.
//   (r,3,v) plain: same majority rule against validated (r,2);
//   (r,3,(w,D)): count of w among validated (r,2) exceeds n/2 — the
//            safety-critical rule: since (r,2) values are RB-consistent,
//            two different values can never both be validated as decision
//            proposals anywhere in the system.
//
// Safety sketch: a decision on w means > 2k validated (w,D), so > k
// correct proposers; every other correct process's n-k step-3 quorum
// misses at most k senders, hence sees D(w) > k and adopts w; no (w',D)
// can validate anywhere; the next round starts unanimous and stays so.
// Termination with probability 1 via the private coins.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "extensions/rb_engine.hpp"

namespace rcp::ext {

class Bracha87 final : public sim::Process {
 public:
  /// Validating factory: throws unless k <= floor((n-1)/3).
  [[nodiscard]] static std::unique_ptr<Bracha87> make(
      core::ConsensusParams params, Value initial_value);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return round_; }

  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] std::optional<Value> decision() const noexcept {
    return decision_;
  }
  [[nodiscard]] std::uint64_t coin_flips() const noexcept {
    return coin_flips_;
  }
  /// Messages delivered by reliable broadcast but not (yet) justifiable.
  [[nodiscard]] std::size_t pending_validation() const;

 private:
  Bracha87(core::ConsensusParams params, Value initial_value) noexcept;

  // Step-3 payload encoding: 0/1 plain, 2+w for the proposal (w, D).
  static constexpr RbValue kProposal0 = 2;
  static constexpr RbValue kProposal1 = 3;

  [[nodiscard]] std::uint64_t tag(Phase r, int step) const noexcept {
    return 3 * r + static_cast<std::uint64_t>(step - 1);
  }

  struct TagState {
    std::map<ProcessId, RbValue> pending;    ///< delivered, not yet valid
    std::map<ProcessId, RbValue> validated;  ///< delivered and justified
  };

  struct Counts {
    std::uint32_t plain[2] = {0, 0};     ///< payloads 0 and 1
    std::uint32_t proposal[2] = {0, 0};  ///< payloads 2+w (step 3 only)
    std::uint32_t total = 0;
  };

  [[nodiscard]] Counts counts(std::uint64_t t) const;

  /// Whether `payload` on `t` is currently justifiable.
  [[nodiscard]] bool is_valid(std::uint64_t t, RbValue payload) const;

  /// True if v is the tie-to-0 majority of some (n-k)-subset of a message
  /// multiset with the given per-value counts.
  [[nodiscard]] bool majority_reachable(const Counts& c, RbValue v) const;

  void broadcast_step(sim::Context& ctx, int step, RbValue payload);
  /// Moves pending messages whose justification now holds; returns true if
  /// anything moved.
  bool revalidate();
  /// Completes steps/rounds while quorums are met.
  void try_advance(sim::Context& ctx);

  core::ConsensusParams params_;
  Value value_;
  Phase round_ = 0;
  int step_ = 1;
  std::optional<Value> decision_;
  std::uint64_t coin_flips_ = 0;
  RbEngine engine_;
  std::map<std::uint64_t, TagState> tags_;
};

}  // namespace rcp::ext
