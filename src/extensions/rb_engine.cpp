#include "extensions/rb_engine.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/error.hpp"

namespace rcp::ext {

namespace {
constexpr std::uint8_t kRbxTagBase = 40;  // 40 initial, 41 echo, 42 ready
constexpr std::uint32_t kMinCapacity = 64;
constexpr std::size_t kBatchEntrySize = 1 + 4 + 8 + 8;

/// SplitMix64 finalizer: full-avalanche mix for the (origin, tag) hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

Bytes RbxMsg::encode() const {
  ByteWriter w(kWireSize);
  w.u8(static_cast<std::uint8_t>(kRbxTagBase + static_cast<std::uint8_t>(kind)))
      .u32(origin)
      .u64(tag)
      .u64(value);
  return std::move(w).take();
}

RbxMsg RbxMsg::decode(const Bytes& payload, RbValue max_value) {
  ByteReader r(payload);
  const std::uint8_t tag_byte = r.u8();
  if (tag_byte < kRbxTagBase || tag_byte > kRbxTagBase + 2) {
    throw DecodeError("not a multiplexed reliable-broadcast message");
  }
  RbxMsg msg;
  msg.kind = static_cast<RbxMsg::Kind>(tag_byte - kRbxTagBase);
  msg.origin = r.u32();
  msg.tag = r.u64();
  msg.value = r.u64();
  r.expect_done();
  if (msg.value > max_value) {
    throw DecodeError("payload field out of range");
  }
  return msg;
}

bool RbxBatch::is_batch(const Bytes& payload) noexcept {
  const auto s = payload.span();
  return !s.empty() && static_cast<std::uint8_t>(s[0]) == kTagByte;
}

Bytes RbxBatch::encode(std::span<const RbxMsg> msgs) {
  RCP_INVARIANT(!msgs.empty() && msgs.size() <= kMaxMessages,
                "RbxBatch::encode: 1..kMaxMessages messages");
  ByteWriter w(1 + 4 + msgs.size() * kBatchEntrySize);
  w.u8(kTagByte).u32(static_cast<std::uint32_t>(msgs.size()));
  for (const RbxMsg& m : msgs) {
    w.u8(static_cast<std::uint8_t>(m.kind)).u32(m.origin).u64(m.tag).u64(
        m.value);
  }
  return std::move(w).take();
}

void RbxBatch::decode_into(const Bytes& payload, std::vector<RbxMsg>& out,
                           RbValue max_value) {
  ByteReader r(payload);
  if (r.u8() != kTagByte) {
    throw DecodeError("not a reliable-broadcast batch");
  }
  const std::uint32_t count = r.u32();
  if (count == 0 || count > kMaxMessages) {
    throw DecodeError("batch count out of range");
  }
  if (r.remaining() != static_cast<std::size_t>(count) * kBatchEntrySize) {
    throw DecodeError("batch size disagrees with count");
  }
  // Transactional: a throw on any entry leaves `out` as it came in, so a
  // caller reusing one scratch vector never feeds phantom messages from a
  // half-decoded Byzantine frame.
  const std::size_t base = out.size();
  try {
    for (std::uint32_t i = 0; i < count; ++i) {
      RbxMsg msg;
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(RbxMsg::Kind::ready)) {
        throw DecodeError("batch entry kind out of range");
      }
      msg.kind = static_cast<RbxMsg::Kind>(kind);
      msg.origin = r.u32();
      msg.tag = r.u64();
      msg.value = r.u64();
      if (msg.value > max_value) {
        throw DecodeError("payload field out of range");
      }
      // rcp-lint: allow(hot-alloc) caller-owned scratch, amortized across batches
      out.push_back(msg);
    }
    r.expect_done();
  } catch (...) {
    // rcp-lint: allow(hot-alloc) shrink-only rollback, never allocates
    out.resize(base);
    throw;
  }
}

RbEngine::RbEngine(core::ConsensusParams params, std::uint32_t capacity_hint,
                   RbValue max_value)
    : params_(params), max_value_(max_value) {
  const std::uint32_t cap =
      std::bit_ceil(std::max(capacity_hint, kMinCapacity));
  slots_ = std::vector<Instance>(cap);
  bucket_heads_ = std::vector<std::uint32_t>(2ULL * cap, kNil);
  bucket_mask_ = 2ULL * cap - 1;
  echo_bits_ = core::BitRows(static_cast<std::size_t>(cap) * kValueSlots,
                             params_.n);
  ready_bits_ = core::BitRows(static_cast<std::size_t>(cap) * kValueSlots,
                              params_.n);
  echo_count_ =
      std::vector<std::uint16_t>(static_cast<std::size_t>(cap) * kValueSlots, 0);
  ready_count_ =
      std::vector<std::uint16_t>(static_cast<std::size_t>(cap) * kValueSlots, 0);
  retired_below_ = std::vector<std::uint64_t>(params_.n, 0);
  // Thread the whole pool onto the free list, lowest slot first.
  for (std::uint32_t i = cap; i-- > 0;) {
    slots_[i].next = free_head_;
    free_head_ = i;
  }
}

std::uint64_t RbEngine::mix_key(ProcessId origin, std::uint64_t tag) noexcept {
  return mix64(tag ^ (static_cast<std::uint64_t>(origin) * 0x9e3779b97f4a7c15ULL));
}

std::uint32_t RbEngine::find(ProcessId origin,
                             std::uint64_t tag) const noexcept {
  std::uint32_t slot = bucket_heads_[mix_key(origin, tag) & bucket_mask_];
  while (slot != kNil) {
    const Instance& inst = slots_[slot];
    if (inst.origin == origin && inst.tag == tag) {
      return slot;
    }
    slot = inst.next;
  }
  return kNil;
}

std::uint32_t RbEngine::obtain(ProcessId origin, std::uint64_t tag) {
  const std::uint32_t found = find(origin, tag);
  if (found != kNil) {
    return found;
  }
  if (free_head_ == kNil) {
    grow();
  }
  const std::uint32_t slot = free_head_;
  Instance& inst = slots_[slot];
  free_head_ = inst.next;
  inst = Instance{};
  inst.origin = origin;
  inst.tag = tag;
  inst.live = true;
  const std::size_t row0 = static_cast<std::size_t>(slot) * kValueSlots;
  echo_bits_.clear_rows(row0, kValueSlots);
  ready_bits_.clear_rows(row0, kValueSlots);
  std::fill_n(echo_count_.begin() + static_cast<std::ptrdiff_t>(row0),
              kValueSlots, std::uint16_t{0});
  std::fill_n(ready_count_.begin() + static_cast<std::ptrdiff_t>(row0),
              kValueSlots, std::uint16_t{0});
  const std::uint64_t bucket = mix_key(origin, tag) & bucket_mask_;
  inst.next = bucket_heads_[bucket];
  bucket_heads_[bucket] = slot;
  ++live_count_;
  return slot;
}

std::uint32_t RbEngine::lane_of(std::uint32_t slot, RbValue value) {
  Instance& inst = slots_[slot];
  for (std::uint32_t l = 0; l < inst.lanes_used; ++l) {
    if (inst.lane_value[l] == value) {
      return l;
    }
  }
  if (inst.lanes_used == kValueSlots) {
    return kNil;
  }
  const std::uint32_t l = inst.lanes_used++;
  inst.lane_value[l] = value;
  return l;
}

void RbEngine::release(std::uint32_t slot) noexcept {
  Instance& inst = slots_[slot];
  const std::uint64_t bucket = mix_key(inst.origin, inst.tag) & bucket_mask_;
  std::uint32_t* link = &bucket_heads_[bucket];
  while (*link != slot) {
    link = &slots_[*link].next;
  }
  *link = inst.next;
  inst.live = false;
  inst.next = free_head_;
  free_head_ = slot;
  --live_count_;
}

void RbEngine::grow() {
  const std::uint32_t old_cap = static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t new_cap = old_cap * 2;
  ++stats_.grows;
  std::vector<Instance> new_slots(new_cap);
  std::move(slots_.begin(), slots_.end(), new_slots.begin());
  slots_ = std::move(new_slots);
  core::BitRows new_echo(static_cast<std::size_t>(new_cap) * kValueSlots,
                         params_.n);
  new_echo.copy_rows_from(echo_bits_,
                          static_cast<std::size_t>(old_cap) * kValueSlots);
  echo_bits_ = std::move(new_echo);
  core::BitRows new_ready(static_cast<std::size_t>(new_cap) * kValueSlots,
                          params_.n);
  new_ready.copy_rows_from(ready_bits_,
                           static_cast<std::size_t>(old_cap) * kValueSlots);
  ready_bits_ = std::move(new_ready);
  std::vector<std::uint16_t> new_echo_counts(
      static_cast<std::size_t>(new_cap) * kValueSlots, 0);
  std::copy(echo_count_.begin(), echo_count_.end(), new_echo_counts.begin());
  echo_count_ = std::move(new_echo_counts);
  std::vector<std::uint16_t> new_ready_counts(
      static_cast<std::size_t>(new_cap) * kValueSlots, 0);
  std::copy(ready_count_.begin(), ready_count_.end(), new_ready_counts.begin());
  ready_count_ = std::move(new_ready_counts);
  // Rebuild the bucket chains and the free list over the doubled pool.
  bucket_heads_ = std::vector<std::uint32_t>(2ULL * new_cap, kNil);
  bucket_mask_ = 2ULL * new_cap - 1;
  free_head_ = kNil;
  for (std::uint32_t i = new_cap; i-- > 0;) {
    Instance& inst = slots_[i];
    if (inst.live) {
      const std::uint64_t bucket = mix_key(inst.origin, inst.tag) & bucket_mask_;
      inst.next = bucket_heads_[bucket];
      bucket_heads_[bucket] = i;
    } else {
      inst.next = free_head_;
      free_head_ = i;
    }
  }
}

RbxMsg RbEngine::start(ProcessId self, std::uint64_t tag, RbValue value) {
  return RbxMsg{
      .kind = RbxMsg::Kind::initial, .origin = self, .tag = tag, .value = value};
}

void RbEngine::maybe_ready(std::uint32_t slot, RbValue value, Outcome& out) {
  Instance& inst = slots_[slot];
  if (inst.has_ready_sent) {
    return;
  }
  inst.has_ready_sent = true;
  out.to_broadcast.push(RbxMsg{.kind = RbxMsg::Kind::ready,
                               .origin = inst.origin,
                               .tag = inst.tag,
                               .value = value});
}

RbEngine::Outcome RbEngine::handle(ProcessId sender, const RbxMsg& msg) {
  Outcome out;
  ++stats_.handled;
  // The wire is Byzantine input: decode() bounds the value for protocol
  // streams, but the engine re-checks under its own bound and rejects
  // origins outside the process space before they can occupy a slot.
  if (msg.origin >= params_.n) {
    ++stats_.dropped_origin_range;
    return out;
  }
  if (msg.value > max_value_) {
    ++stats_.dropped_value_range;
    return out;
  }
  if (msg.tag < retired_below_[msg.origin]) {
    ++stats_.dropped_retired;
    return out;
  }
  const std::uint32_t slot = obtain(msg.origin, msg.tag);
  Instance& inst = slots_[slot];
  switch (msg.kind) {
    case RbxMsg::Kind::initial: {
      // Authenticated identity: only the origin itself may open its
      // instance, and only its first initial is echoed.
      if (sender != msg.origin || inst.echoed) {
        return out;
      }
      inst.echoed = true;
      out.to_broadcast.push(RbxMsg{.kind = RbxMsg::Kind::echo,
                                   .origin = msg.origin,
                                   .tag = msg.tag,
                                   .value = msg.value});
      return out;
    }
    case RbxMsg::Kind::echo: {
      const std::uint32_t lane = lane_of(slot, msg.value);
      if (lane == kNil) {
        ++stats_.dropped_slot_overflow;
        return out;
      }
      const std::size_t row =
          static_cast<std::size_t>(slot) * kValueSlots + lane;
      if (!echo_bits_.test_and_set(row, sender)) {
        return out;
      }
      if (++echo_count_[row] >= params_.echo_acceptance_threshold()) {
        maybe_ready(slot, msg.value, out);
      }
      return out;
    }
    case RbxMsg::Kind::ready: {
      const std::uint32_t lane = lane_of(slot, msg.value);
      if (lane == kNil) {
        ++stats_.dropped_slot_overflow;
        return out;
      }
      const std::size_t row =
          static_cast<std::size_t>(slot) * kValueSlots + lane;
      if (!ready_bits_.test_and_set(row, sender)) {
        return out;
      }
      const std::uint16_t count = ++ready_count_[row];
      if (count >= params_.ready_amplification_threshold()) {
        maybe_ready(slot, msg.value, out);
      }
      if (count >= params_.ready_delivery_threshold() && !inst.has_delivered) {
        inst.has_delivered = true;
        inst.delivered_value = msg.value;
        out.delivered = Delivery{
            .origin = msg.origin, .tag = msg.tag, .value = msg.value};
      }
      return out;
    }
  }
  return out;
}

std::optional<RbValue> RbEngine::delivered(ProcessId origin,
                                           std::uint64_t tag) const {
  const std::uint32_t slot = find(origin, tag);
  if (slot == kNil || !slots_[slot].has_delivered) {
    return std::nullopt;
  }
  return slots_[slot].delivered_value;
}

void RbEngine::retire_through(ProcessId origin, std::uint64_t tag) {
  if (origin >= params_.n) {
    return;
  }
  const std::uint32_t slot = find(origin, tag);
  if (slot != kNil) {
    release(slot);
  }
  retired_below_[origin] = std::max(retired_below_[origin], tag + 1);
}

}  // namespace rcp::ext
