#include "extensions/rb_engine.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <utility>

#include "common/error.hpp"

namespace rcp::ext {

namespace {
constexpr std::uint8_t kRbxTagBase = 40;  // 40 initial, 41 echo, 42 ready
constexpr std::uint32_t kMinCapacity = 64;
constexpr std::size_t kBatchEntrySize = 1 + 4 + 8 + 8;

/// SplitMix64 finalizer: full-avalanche mix for the (origin, tag) hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

Bytes RbxMsg::encode() const {
  ByteWriter w(kWireSize);
  w.u8(static_cast<std::uint8_t>(kRbxTagBase + static_cast<std::uint8_t>(kind)))
      .u32(origin)
      .u64(tag)
      .u64(value);
  return std::move(w).take();
}

RbxMsg RbxMsg::decode(const Bytes& payload, RbValue max_value) {
  ByteReader r(payload);
  const std::uint8_t tag_byte = r.u8();
  if (tag_byte < kRbxTagBase || tag_byte > kRbxTagBase + 2) {
    throw DecodeError("not a multiplexed reliable-broadcast message");
  }
  RbxMsg msg;
  msg.kind = static_cast<RbxMsg::Kind>(tag_byte - kRbxTagBase);
  msg.origin = r.u32();
  msg.tag = r.u64();
  msg.value = r.u64();
  r.expect_done();
  if (msg.value > max_value) {
    throw DecodeError("payload field out of range");
  }
  return msg;
}

bool RbxBatch::is_batch(const Bytes& payload) noexcept {
  const auto s = payload.span();
  return !s.empty() && static_cast<std::uint8_t>(s[0]) == kTagByte;
}

Bytes RbxBatch::encode(std::span<const RbxMsg> msgs) {
  RCP_INVARIANT(!msgs.empty() && msgs.size() <= kMaxMessages,
                "RbxBatch::encode: 1..kMaxMessages messages");
  ByteWriter w(1 + 4 + msgs.size() * kBatchEntrySize);
  w.u8(kTagByte).u32(static_cast<std::uint32_t>(msgs.size()));
  for (const RbxMsg& m : msgs) {
    w.u8(static_cast<std::uint8_t>(m.kind)).u32(m.origin).u64(m.tag).u64(
        m.value);
  }
  return std::move(w).take();
}

void RbxBatch::decode_into(const Bytes& payload, std::vector<RbxMsg>& out,
                           RbValue max_value) {
  ByteReader r(payload);
  if (r.u8() != kTagByte) {
    throw DecodeError("not a reliable-broadcast batch");
  }
  const std::uint32_t count = r.u32();
  if (count == 0 || count > kMaxMessages) {
    throw DecodeError("batch count out of range");
  }
  if (r.remaining() != static_cast<std::size_t>(count) * kBatchEntrySize) {
    throw DecodeError("batch size disagrees with count");
  }
  // Transactional: a throw on any entry leaves `out` as it came in, so a
  // caller reusing one scratch vector never feeds phantom messages from a
  // half-decoded Byzantine frame.
  const std::size_t base = out.size();
  try {
    for (std::uint32_t i = 0; i < count; ++i) {
      RbxMsg msg;
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(RbxMsg::Kind::ready)) {
        throw DecodeError("batch entry kind out of range");
      }
      msg.kind = static_cast<RbxMsg::Kind>(kind);
      msg.origin = r.u32();
      msg.tag = r.u64();
      msg.value = r.u64();
      if (msg.value > max_value) {
        throw DecodeError("payload field out of range");
      }
      // rcp-lint: allow(hot-alloc) caller-owned scratch, amortized across batches
      out.push_back(msg);
    }
    r.expect_done();
  } catch (...) {
    // rcp-lint: allow(hot-alloc) shrink-only rollback, never allocates
    out.resize(base);
    throw;
  }
}

RbEngine::RbEngine(core::ConsensusParams params, std::uint32_t capacity_hint,
                   RbValue max_value, std::uint32_t max_live_per_origin)
    : params_(params),
      max_value_(max_value),
      max_live_per_origin_(max_live_per_origin),
      max_unanchored_per_origin_(
          max_live_per_origin == 0
              ? 0
              : std::max(max_live_per_origin / 4, 8u)),
      // A sender gets one counted vote per kind, so at most n distinct
      // values can ever appear; k + 2 covers the fault budget with slack.
      lanes_(std::max(std::min(params.k + 2, params.n), 2u)) {
  RCP_EXPECT(params_.n >= 1 && params_.n <= 0xffffu,
             "RbEngine: n must fit the 16-bit quorum tallies");
  const std::uint32_t cap =
      std::bit_ceil(std::max(capacity_hint, kMinCapacity));
  slots_ = std::vector<Instance>(cap);
  bucket_heads_ = std::vector<std::uint32_t>(2ULL * cap, kNil);
  bucket_mask_ = 2ULL * cap - 1;
  echo_voted_ = core::BitRows(cap, params_.n);
  ready_voted_ = core::BitRows(cap, params_.n);
  echo_lane_value_ = core::bitops::AlignedVector<RbValue>(
      static_cast<std::size_t>(cap) * lanes_, 0);
  ready_lane_value_ = core::bitops::AlignedVector<RbValue>(
      static_cast<std::size_t>(cap) * lanes_, 0);
  echo_count_ = core::bitops::AlignedVector<std::uint16_t>(
      static_cast<std::size_t>(cap) * lanes_, 0);
  ready_count_ = core::bitops::AlignedVector<std::uint16_t>(
      static_cast<std::size_t>(cap) * lanes_, 0);
  retired_below_ = std::vector<std::uint64_t>(params_.n, 0);
  live_per_origin_ = std::vector<std::uint32_t>(params_.n, 0);
  unanchored_per_origin_ = std::vector<std::uint32_t>(params_.n, 0);
  // Thread the whole pool onto the free list, lowest slot first.
  for (std::uint32_t i = cap; i-- > 0;) {
    slots_[i].next = free_head_;
    free_head_ = i;
  }
}

std::uint64_t RbEngine::mix_key(ProcessId origin, std::uint64_t tag) noexcept {
  return mix64(tag ^ (static_cast<std::uint64_t>(origin) * 0x9e3779b97f4a7c15ULL));
}

std::uint32_t RbEngine::find(ProcessId origin,
                             std::uint64_t tag) const noexcept {
  std::uint32_t slot = bucket_heads_[mix_key(origin, tag) & bucket_mask_];
  while (slot != kNil) {
    const Instance& inst = slots_[slot];
    if (inst.origin == origin && inst.tag == tag) {
      return slot;
    }
    slot = inst.next;
  }
  return kNil;
}

bool RbEngine::evict_unanchored(ProcessId origin) {
  if (unanchored_per_origin_[origin] == 0) {
    return false;
  }
  // Cold path: only reachable when an origin sits at its flood cap, i.e.
  // under active attack. A linear sweep keeps the hot path free of any
  // victim bookkeeping.
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    const Instance& inst = slots_[slot];
    if (inst.live && !inst.anchored && !inst.has_delivered &&
        inst.origin == origin) {
      ++stats_.evicted_unanchored;
      release(slot);
      return true;
    }
  }
  // Every unanchored instance has already delivered (the replica still
  // needs those values); nothing is safely evictable.
  return false;
}

std::uint32_t RbEngine::obtain(ProcessId origin, std::uint64_t tag,
                               bool anchored) {
  const std::uint32_t found = find(origin, tag);
  if (found != kNil) {
    Instance& inst = slots_[found];
    if (anchored && !inst.anchored) {
      inst.anchored = true;
      --unanchored_per_origin_[origin];
    }
    return found;
  }
  // First contact with this (origin, tag): the anchor-aware flood caps.
  // Unanchored creations (echo/ready ahead of any initial — phantom
  // candidates) draw from the tight sub-cap and the origin cap; anchored
  // creations (the origin's own initial) may evict an unanchored instance
  // rather than be refused, so phantoms can never wall off a correct
  // origin's seq space.
  if (max_live_per_origin_ != 0) {
    if (!anchored && unanchored_per_origin_[origin] >=
                         max_unanchored_per_origin_) {
      return kNil;
    }
    if (live_per_origin_[origin] >= max_live_per_origin_ &&
        (!anchored || !evict_unanchored(origin))) {
      return kNil;
    }
  }
  if (free_head_ == kNil) {
    grow();
  }
  const std::uint32_t slot = free_head_;
  Instance& inst = slots_[slot];
  free_head_ = inst.next;
  inst = Instance{};
  inst.origin = origin;
  inst.tag = tag;
  inst.live = true;
  inst.anchored = anchored;
  if (!anchored) {
    ++unanchored_per_origin_[origin];
  }
  const std::size_t row0 = static_cast<std::size_t>(slot) * lanes_;
  echo_voted_.clear_rows(slot, 1);
  ready_voted_.clear_rows(slot, 1);
  std::fill_n(echo_count_.begin() + static_cast<std::ptrdiff_t>(row0), lanes_,
              std::uint16_t{0});
  std::fill_n(ready_count_.begin() + static_cast<std::ptrdiff_t>(row0), lanes_,
              std::uint16_t{0});
  const std::uint64_t bucket = mix_key(origin, tag) & bucket_mask_;
  inst.next = bucket_heads_[bucket];
  bucket_heads_[bucket] = slot;
  ++live_count_;
  ++live_per_origin_[origin];
  return slot;
}

std::uint32_t RbEngine::lane_of(
    std::uint32_t slot, RbValue value,
    core::bitops::AlignedVector<RbValue>& lane_values,
    std::uint16_t& lanes_used) {
  const std::size_t row0 = static_cast<std::size_t>(slot) * lanes_;
  for (std::uint32_t l = 0; l < lanes_used; ++l) {
    if (lane_values[row0 + l] == value) {
      return l;
    }
  }
  if (lanes_used == lanes_) {
    return kNil;
  }
  const std::uint32_t l = lanes_used++;
  lane_values[row0 + l] = value;
  return l;
}

void RbEngine::release(std::uint32_t slot) noexcept {
  Instance& inst = slots_[slot];
  const std::uint64_t bucket = mix_key(inst.origin, inst.tag) & bucket_mask_;
  std::uint32_t* link = &bucket_heads_[bucket];
  while (*link != slot) {
    link = &slots_[*link].next;
  }
  *link = inst.next;
  inst.live = false;
  inst.next = free_head_;
  free_head_ = slot;
  --live_count_;
  --live_per_origin_[inst.origin];
  if (!inst.anchored) {
    --unanchored_per_origin_[inst.origin];
  }
}

void RbEngine::grow() {
  const std::uint32_t old_cap = static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t new_cap = old_cap * 2;
  ++stats_.grows;
  std::vector<Instance> new_slots(new_cap);
  std::move(slots_.begin(), slots_.end(), new_slots.begin());
  slots_ = std::move(new_slots);
  core::BitRows new_echo_voted(new_cap, params_.n);
  new_echo_voted.copy_rows_from(echo_voted_, old_cap);
  echo_voted_ = std::move(new_echo_voted);
  core::BitRows new_ready_voted(new_cap, params_.n);
  new_ready_voted.copy_rows_from(ready_voted_, old_cap);
  ready_voted_ = std::move(new_ready_voted);
  const auto grow_values =
      [new_cap, this](core::bitops::AlignedVector<RbValue>& v) {
        core::bitops::AlignedVector<RbValue> bigger(
            static_cast<std::size_t>(new_cap) * lanes_, 0);
        // RbValue is a 64-bit word, so the lane copy is a kernel copy.
        core::bitops::copy_words(
            std::span<std::uint64_t>(bigger.data(), v.size()),
            std::span<const std::uint64_t>(v.data(), v.size()));
        v = std::move(bigger);
      };
  grow_values(echo_lane_value_);
  grow_values(ready_lane_value_);
  const auto grow_counts =
      [new_cap, this](core::bitops::AlignedVector<std::uint16_t>& v) {
        core::bitops::AlignedVector<std::uint16_t> bigger(
            static_cast<std::size_t>(new_cap) * lanes_, 0);
        std::copy(v.begin(), v.end(), bigger.begin());
        v = std::move(bigger);
      };
  grow_counts(echo_count_);
  grow_counts(ready_count_);
  // Rebuild the bucket chains and the free list over the doubled pool.
  bucket_heads_ = std::vector<std::uint32_t>(2ULL * new_cap, kNil);
  bucket_mask_ = 2ULL * new_cap - 1;
  free_head_ = kNil;
  for (std::uint32_t i = new_cap; i-- > 0;) {
    Instance& inst = slots_[i];
    if (inst.live) {
      const std::uint64_t bucket = mix_key(inst.origin, inst.tag) & bucket_mask_;
      inst.next = bucket_heads_[bucket];
      bucket_heads_[bucket] = i;
    } else {
      inst.next = free_head_;
      free_head_ = i;
    }
  }
}

RbxMsg RbEngine::start(ProcessId self, std::uint64_t tag, RbValue value) {
  return RbxMsg{
      .kind = RbxMsg::Kind::initial, .origin = self, .tag = tag, .value = value};
}

void RbEngine::maybe_ready(std::uint32_t slot, RbValue value, Outcome& out) {
  Instance& inst = slots_[slot];
  if (inst.has_ready_sent) {
    return;
  }
  inst.has_ready_sent = true;
  out.to_broadcast.push(RbxMsg{.kind = RbxMsg::Kind::ready,
                               .origin = inst.origin,
                               .tag = inst.tag,
                               .value = value});
}

RbEngine::Outcome RbEngine::handle(ProcessId sender, const RbxMsg& msg) {
  Outcome out;
  ++stats_.handled;
  // The wire is Byzantine input: decode() bounds the value for protocol
  // streams, but the engine re-checks under its own bound and rejects
  // origins outside the process space before they can occupy a slot.
  if (msg.origin >= params_.n) {
    ++stats_.dropped_origin_range;
    return out;
  }
  if (msg.value > max_value_) {
    ++stats_.dropped_value_range;
    return out;
  }
  if (msg.tag < retired_below_[msg.origin]) {
    ++stats_.dropped_retired;
    return out;
  }
  // Only the origin's own initial anchors (identity-checked again below
  // before any state change; a forged initial allocates at most an
  // unanchored phantom-candidate slot, same as any echo).
  const bool anchors =
      msg.kind == RbxMsg::Kind::initial && sender == msg.origin;
  const std::uint32_t slot = obtain(msg.origin, msg.tag, anchors);
  if (slot == kNil) {
    ++stats_.dropped_origin_flood;
    return out;
  }
  Instance& inst = slots_[slot];
  switch (msg.kind) {
    case RbxMsg::Kind::initial: {
      // Authenticated identity: only the origin itself may open its
      // instance, and only its first initial is echoed.
      if (sender != msg.origin || inst.echoed) {
        return out;
      }
      inst.echoed = true;
      out.to_broadcast.push(RbxMsg{.kind = RbxMsg::Kind::echo,
                                   .origin = msg.origin,
                                   .tag = msg.tag,
                                   .value = msg.value});
      return out;
    }
    case RbxMsg::Kind::echo: {
      // One counted echo per sender per instance: a correct process sends
      // exactly one, so a second (same value or not) is Byzantine noise —
      // and a sender can therefore never claim more than one value lane.
      if (!echo_voted_.test_and_set(slot, sender)) {
        ++stats_.dropped_sender_dup;
        return out;
      }
      const std::uint32_t lane =
          lane_of(slot, msg.value, echo_lane_value_, inst.echo_lanes_used);
      if (lane == kNil) {
        ++stats_.dropped_slot_overflow;
        return out;
      }
      const std::size_t row = static_cast<std::size_t>(slot) * lanes_ + lane;
      if (++echo_count_[row] >= params_.echo_acceptance_threshold()) {
        maybe_ready(slot, msg.value, out);
      }
      return out;
    }
    case RbxMsg::Kind::ready: {
      if (!ready_voted_.test_and_set(slot, sender)) {
        ++stats_.dropped_sender_dup;
        return out;
      }
      const std::uint32_t lane =
          lane_of(slot, msg.value, ready_lane_value_, inst.ready_lanes_used);
      if (lane == kNil) {
        ++stats_.dropped_slot_overflow;
        return out;
      }
      const std::size_t row = static_cast<std::size_t>(slot) * lanes_ + lane;
      const std::uint16_t count = ++ready_count_[row];
      if (count >= params_.ready_amplification_threshold()) {
        maybe_ready(slot, msg.value, out);
      }
      if (count >= params_.ready_delivery_threshold() && !inst.has_delivered) {
        inst.has_delivered = true;
        inst.delivered_value = msg.value;
        out.delivered = Delivery{
            .origin = msg.origin, .tag = msg.tag, .value = msg.value};
      }
      return out;
    }
  }
  return out;
}

std::optional<RbValue> RbEngine::delivered(ProcessId origin,
                                           std::uint64_t tag) const {
  const std::uint32_t slot = find(origin, tag);
  if (slot == kNil || !slots_[slot].has_delivered) {
    return std::nullopt;
  }
  return slots_[slot].delivered_value;
}

void RbEngine::retire_through(ProcessId origin, std::uint64_t tag) {
  if (origin >= params_.n) {
    return;
  }
  const std::uint32_t slot = find(origin, tag);
  if (slot != kNil) {
    release(slot);
  }
  retired_below_[origin] = std::max(retired_below_[origin], tag + 1);
}

}  // namespace rcp::ext
