#include "extensions/rb_engine.hpp"

#include "common/error.hpp"

namespace rcp::ext {

namespace {
constexpr std::uint8_t kRbxTagBase = 40;  // 40 initial, 41 echo, 42 ready
}  // namespace

Bytes RbxMsg::encode() const {
  ByteWriter w(14);
  w.u8(static_cast<std::uint8_t>(kRbxTagBase + static_cast<std::uint8_t>(kind)))
      .u32(origin)
      .u64(tag)
      .u8(value);
  return std::move(w).take();
}

RbxMsg RbxMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  const std::uint8_t tag_byte = r.u8();
  if (tag_byte < kRbxTagBase || tag_byte > kRbxTagBase + 2) {
    throw DecodeError("not a multiplexed reliable-broadcast message");
  }
  RbxMsg msg;
  msg.kind = static_cast<RbxMsg::Kind>(tag_byte - kRbxTagBase);
  msg.origin = r.u32();
  msg.tag = r.u64();
  msg.value = r.u8();
  r.expect_done();
  if (msg.value > kMaxRbValue) {
    throw DecodeError("payload field out of range");
  }
  return msg;
}

RbxMsg RbEngine::start(ProcessId self, std::uint64_t tag, RbValue value) {
  return RbxMsg{
      .kind = RbxMsg::Kind::initial, .origin = self, .tag = tag, .value = value};
}

void RbEngine::maybe_ready(Instance& inst, ProcessId origin, std::uint64_t tag,
                           RbValue value, Outcome& out) {
  if (inst.ready_sent.has_value()) {
    return;
  }
  inst.ready_sent = value;
  out.to_broadcast.push_back(RbxMsg{
      .kind = RbxMsg::Kind::ready, .origin = origin, .tag = tag, .value = value});
}

RbEngine::Outcome RbEngine::handle(ProcessId sender, const RbxMsg& msg) {
  Outcome out;
  Instance& inst = instances_[Key{msg.origin, msg.tag}];
  switch (msg.kind) {
    case RbxMsg::Kind::initial: {
      // Authenticated identity: only the origin itself may open its
      // instance, and only its first initial is echoed.
      if (sender != msg.origin || inst.echoed) {
        return out;
      }
      inst.echoed = true;
      out.to_broadcast.push_back(RbxMsg{.kind = RbxMsg::Kind::echo,
                                        .origin = msg.origin,
                                        .tag = msg.tag,
                                        .value = msg.value});
      return out;
    }
    case RbxMsg::Kind::echo: {
      auto& from = inst.echo_from[msg.value];
      if (!from.insert(sender).second) {
        return out;
      }
      if (from.size() >= params_.echo_acceptance_threshold()) {
        maybe_ready(inst, msg.origin, msg.tag, msg.value, out);
      }
      return out;
    }
    case RbxMsg::Kind::ready: {
      auto& from = inst.ready_from[msg.value];
      if (!from.insert(sender).second) {
        return out;
      }
      if (from.size() >= params_.k + 1) {
        maybe_ready(inst, msg.origin, msg.tag, msg.value, out);
      }
      if (from.size() >= 2 * params_.k + 1 && !inst.delivered.has_value()) {
        inst.delivered = msg.value;
        out.delivered = Delivery{
            .origin = msg.origin, .tag = msg.tag, .value = msg.value};
      }
      return out;
    }
  }
  return out;
}

std::optional<RbValue> RbEngine::delivered(ProcessId origin,
                                           std::uint64_t tag) const {
  const auto it = instances_.find(Key{origin, tag});
  if (it == instances_.end()) {
    return std::nullopt;
  }
  return it->second.delivered;
}

}  // namespace rcp::ext
