// Dense row-major matrices and a pivoting linear solver, sized for the
// Markov-chain computations (hundreds of states).
#pragma once

#include <cstddef>
#include <vector>

namespace rcp::analysis {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t size);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;
  [[nodiscard]] Matrix transpose() const;

  /// Sum of one row's entries.
  [[nodiscard]] double row_sum(std::size_t r) const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting. Throws
/// Error if A is singular (pivot below 1e-12 after scaling).
[[nodiscard]] std::vector<double> solve(Matrix a, std::vector<double> b);

/// Inverse via repeated solves. Throws Error if singular.
[[nodiscard]] Matrix inverse(const Matrix& a);

}  // namespace rcp::analysis
