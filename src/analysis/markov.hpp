// Absorbing Markov chains: exact hitting times via the fundamental-matrix
// linear system, plus Monte-Carlo simulation for cross-validation.
//
// The paper computes expected absorption times as row sums of
// N = (I - Q)^{-1} ([Isaa76]); expected_hitting_times() solves the
// equivalent linear system (I - Q) E = 1 directly, which is both faster
// and better conditioned than forming the inverse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/matrix.hpp"
#include "common/rng.hpp"

namespace rcp::analysis {

class MarkovChain {
 public:
  /// `transition` must be square and row-stochastic; `absorbing[s]` marks
  /// the target set whose hitting time we study (states need not be
  /// literally absorbing under `transition`; the paper treats "decision
  /// inevitable" regions as absorbed).
  MarkovChain(Matrix transition, std::vector<bool> absorbing);

  [[nodiscard]] std::size_t state_count() const noexcept {
    return transition_.rows();
  }
  [[nodiscard]] const Matrix& transition() const noexcept {
    return transition_;
  }
  [[nodiscard]] bool is_absorbing(std::size_t state) const;
  [[nodiscard]] std::size_t transient_count() const noexcept {
    return transient_states_.size();
  }

  /// Expected number of steps to first reach the absorbing set, for every
  /// state (0 for absorbing states). Throws if some transient state cannot
  /// reach the absorbing set.
  [[nodiscard]] std::vector<double> expected_hitting_times() const;

  /// Probability of being absorbed inside `target` (a subset of the
  /// absorbing set, as a mask over all states), for every starting state.
  /// Absorbing states report 1 if they are in `target`, else 0. Used for
  /// the paper's remark that the consensus value is "likely to be equal to
  /// the majority of the initial input values".
  [[nodiscard]] std::vector<double> absorption_probabilities(
      const std::vector<bool>& target) const;

  /// The fundamental matrix N = (I - Q)^{-1} over the transient states
  /// (paper Section 4.1). Entry (i, j) is the expected number of visits to
  /// transient state j starting from transient state i.
  [[nodiscard]] Matrix fundamental_matrix() const;

  /// Transient-state indices in increasing state order (row/col order of
  /// fundamental_matrix()).
  [[nodiscard]] const std::vector<std::size_t>& transient_states()
      const noexcept {
    return transient_states_;
  }

  /// One random walk from `start` until absorption; returns the number of
  /// steps taken. `step_cap` guards against non-absorbing chains.
  [[nodiscard]] std::uint64_t simulate_hitting_time(
      std::size_t start, Rng& rng, std::uint64_t step_cap = 1'000'000) const;

 private:
  [[nodiscard]] Matrix q_matrix() const;

  Matrix transition_;
  std::vector<bool> absorbing_;
  std::vector<std::size_t> transient_states_;
};

}  // namespace rcp::analysis
