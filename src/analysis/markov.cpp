#include "analysis/markov.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rcp::analysis {

MarkovChain::MarkovChain(Matrix transition, std::vector<bool> absorbing)
    : transition_(std::move(transition)), absorbing_(std::move(absorbing)) {
  const std::size_t n = transition_.rows();
  RCP_EXPECT(transition_.cols() == n, "transition matrix must be square");
  RCP_EXPECT(absorbing_.size() == n, "absorbing mask size mismatch");
  for (std::size_t r = 0; r < n; ++r) {
    const double sum = transition_.row_sum(r);
    RCP_EXPECT(std::fabs(sum - 1.0) < 1e-9,
               "transition matrix row does not sum to 1");
  }
  bool any_absorbing = false;
  for (std::size_t s = 0; s < n; ++s) {
    if (absorbing_[s]) {
      any_absorbing = true;
    } else {
      transient_states_.push_back(s);
    }
  }
  RCP_EXPECT(any_absorbing, "chain needs at least one absorbing state");
}

bool MarkovChain::is_absorbing(std::size_t state) const {
  RCP_EXPECT(state < absorbing_.size(), "state out of range");
  return absorbing_[state];
}

Matrix MarkovChain::q_matrix() const {
  const std::size_t t = transient_states_.size();
  RCP_EXPECT(t > 0, "no transient states");
  Matrix q(t, t, 0.0);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      q.at(i, j) = transition_.at(transient_states_[i], transient_states_[j]);
    }
  }
  return q;
}

std::vector<double> MarkovChain::expected_hitting_times() const {
  std::vector<double> times(transition_.rows(), 0.0);
  if (transient_states_.empty()) {
    return times;
  }
  // (I - Q) E = 1  over transient states.
  const Matrix q = q_matrix();
  const std::size_t t = q.rows();
  Matrix a(t, t, 0.0);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      a.at(i, j) = (i == j ? 1.0 : 0.0) - q.at(i, j);
    }
  }
  const std::vector<double> e = solve(std::move(a), std::vector<double>(t, 1.0));
  for (std::size_t i = 0; i < t; ++i) {
    RCP_INVARIANT(e[i] >= 0.0 && std::isfinite(e[i]),
                  "non-finite expected hitting time");
    times[transient_states_[i]] = e[i];
  }
  return times;
}

std::vector<double> MarkovChain::absorption_probabilities(
    const std::vector<bool>& target) const {
  const std::size_t n = transition_.rows();
  RCP_EXPECT(target.size() == n, "target mask size mismatch");
  for (std::size_t s = 0; s < n; ++s) {
    RCP_EXPECT(!target[s] || absorbing_[s],
               "target must be a subset of the absorbing set");
  }
  std::vector<double> probs(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    if (target[s]) {
      probs[s] = 1.0;
    }
  }
  if (transient_states_.empty()) {
    return probs;
  }
  // (I - Q) h = r, where r_i is the one-step probability of jumping from
  // transient state i directly into the target set.
  const Matrix q = q_matrix();
  const std::size_t t = q.rows();
  Matrix a(t, t, 0.0);
  std::vector<double> r(t, 0.0);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      a.at(i, j) = (i == j ? 1.0 : 0.0) - q.at(i, j);
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (target[s]) {
        r[i] += transition_.at(transient_states_[i], s);
      }
    }
  }
  const std::vector<double> h = solve(std::move(a), std::move(r));
  for (std::size_t i = 0; i < t; ++i) {
    RCP_INVARIANT(h[i] > -1e-9 && h[i] < 1.0 + 1e-9,
                  "absorption probability outside [0, 1]");
    probs[transient_states_[i]] = std::min(1.0, std::max(0.0, h[i]));
  }
  return probs;
}

Matrix MarkovChain::fundamental_matrix() const {
  const Matrix q = q_matrix();
  const std::size_t t = q.rows();
  Matrix a(t, t, 0.0);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      a.at(i, j) = (i == j ? 1.0 : 0.0) - q.at(i, j);
    }
  }
  return inverse(a);
}

std::uint64_t MarkovChain::simulate_hitting_time(std::size_t start, Rng& rng,
                                                 std::uint64_t step_cap) const {
  RCP_EXPECT(start < transition_.rows(), "state out of range");
  std::size_t state = start;
  std::uint64_t steps = 0;
  while (!absorbing_[state] && steps < step_cap) {
    const double u = rng.uniform01();
    double acc = 0.0;
    std::size_t next = transition_.cols() - 1;
    for (std::size_t j = 0; j < transition_.cols(); ++j) {
      acc += transition_.at(state, j);
      if (u < acc) {
        next = j;
        break;
      }
    }
    state = next;
    ++steps;
  }
  return steps;
}

}  // namespace rcp::analysis
