// The Section 4.1 Markov chain: the majority-variant protocol with
// k = n/3 fail-stop processes (none of which actually fail — the paper's
// worst case for convergence).
//
// State i = number of processes holding value 1. One phase: every process
// receives a uniform sample of n-k = 2n/3 of the n per-phase messages and
// adopts the sample majority, so its probability of ending with value 1 is
//
//     w_i = P[ X > n/3 ],   X ~ Hypergeometric(n, i, 2n/3)      (paper eq. 1)
//
// and the next state is Binomial(n, w_i). Absorbing regions (decision
// inevitable): [0, n/3 - 1] and [2n/3 + 1, n].
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/markov.hpp"

namespace rcp::analysis {

class FailStopChain {
 public:
  /// Requires n divisible by 6 (so n/3, 2n/3 and the balanced state n/2
  /// are all integral) and n >= 6.
  explicit FailStopChain(unsigned n);

  [[nodiscard]] unsigned n() const noexcept { return n_; }

  /// The per-process flip probability w_i (paper eq. 1).
  [[nodiscard]] double w(unsigned i) const;

  [[nodiscard]] bool is_absorbing_state(unsigned i) const noexcept;

  [[nodiscard]] const MarkovChain& chain() const noexcept { return *chain_; }

  /// Exact expected number of phases to absorption from state `ones`.
  [[nodiscard]] double expected_phases_from(unsigned ones) const;

  /// From the balanced state n/2 — the quantity the paper bounds by 7.
  [[nodiscard]] double expected_phases_from_balanced() const;

  /// Probability that the run is absorbed in the high region [2n/3+1, n]
  /// (i.e. decides 1) starting from `ones` value-1 processes — the paper's
  /// "the consensus value is still likely to be equal to the majority of
  /// the initial input values".
  [[nodiscard]] double probability_decide_one_from(unsigned ones) const;

 private:
  unsigned n_;
  std::vector<double> w_;
  std::unique_ptr<MarkovChain> chain_;
  std::vector<double> hitting_times_;
  std::vector<double> decide_one_probs_;
};

}  // namespace rcp::analysis
