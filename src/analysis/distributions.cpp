#include "analysis/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/special.hpp"

namespace rcp::analysis {

double binomial_pmf(unsigned n, double p, unsigned j) noexcept {
  if (j > n) {
    return 0.0;
  }
  if (p <= 0.0) {
    return j == 0 ? 1.0 : 0.0;
  }
  if (p >= 1.0) {
    return j == n ? 1.0 : 0.0;
  }
  const double log_pmf = log_binomial(n, j) +
                         static_cast<double>(j) * std::log(p) +
                         static_cast<double>(n - j) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_tail_geq(unsigned n, double p, unsigned j) noexcept {
  double sum = 0.0;
  for (unsigned i = j; i <= n; ++i) {
    sum += binomial_pmf(n, p, i);
  }
  return std::min(sum, 1.0);
}

double hypergeometric_pmf(unsigned population, unsigned special,
                          unsigned sample, unsigned x) noexcept {
  if (special > population || sample > population) {
    return 0.0;
  }
  // Support: max(0, sample - (population - special)) <= x <= min(special, sample).
  const unsigned lo =
      sample > population - special ? sample - (population - special) : 0;
  const unsigned hi = std::min(special, sample);
  if (x < lo || x > hi) {
    return 0.0;
  }
  const double log_pmf = log_binomial(special, x) +
                         log_binomial(population - special, sample - x) -
                         log_binomial(population, sample);
  return std::exp(log_pmf);
}

double hypergeometric_tail_greater(unsigned population, unsigned special,
                                   unsigned sample, unsigned x) noexcept {
  const unsigned hi = std::min(special, sample);
  double sum = 0.0;
  for (unsigned i = x + 1; i <= hi; ++i) {
    sum += hypergeometric_pmf(population, special, sample, i);
  }
  return std::min(sum, 1.0);
}

double hypergeometric_mean(unsigned population, unsigned special,
                           unsigned sample) noexcept {
  if (population == 0) {
    return 0.0;
  }
  return static_cast<double>(sample) * static_cast<double>(special) /
         static_cast<double>(population);
}

double hypergeometric_variance(unsigned population, unsigned special,
                               unsigned sample) noexcept {
  if (population <= 1) {
    return 0.0;
  }
  const double N = population;
  const double b = special;
  const double r = sample;
  return r * b * (N - b) * (N - r) / (N * N * (N - 1.0));
}

}  // namespace rcp::analysis
