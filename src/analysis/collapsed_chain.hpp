// The paper's collapsed 3-state chain R (Section 4.1, eq. 11) and its
// expected absorption time (eq. 13).
//
// The full (n+1)-state chain is collapsed into C (within l*sqrt(n)/2 of the
// balanced state), BD (the remaining transient band on either side) and AE
// (the merged absorbing regions), with every identification chosen to
// *increase* the expected absorption time — so eq. 13 is a rigorous upper
// bound on the true chain's expected phases. With l^2 = 1.5 the paper
// concludes the expected number of phases is less than 7.
#pragma once

#include "analysis/matrix.hpp"

namespace rcp::analysis {

struct CollapsedChain {
  /// The paper's choice l^2 = 1.5 (below eq. 7).
  static constexpr double kPaperL = 1.224744871391589;  // sqrt(1.5)

  /// The 3x3 matrix R of eq. 11, states ordered C, BD, AE.
  [[nodiscard]] static Matrix r_matrix(unsigned n, double l);

  /// Expected absorption time from C by the closed form of eq. 13:
  /// (2 Phi(l) + 1/2 + Phi((sqrt(n) + 3 l)/sqrt(8))) / Phi(l).
  [[nodiscard]] static double expected_absorption_closed_form(unsigned n,
                                                              double l);

  /// The same quantity computed through the fundamental matrix
  /// N = (I - Q)^{-1} (row sum of C's row) — cross-checks eq. 13.
  [[nodiscard]] static double expected_absorption_via_fundamental(unsigned n,
                                                                  double l);

  /// The paper's headline number: the bound for l^2 = 1.5 in the large-n
  /// limit, (2 Phi(l) + 1/2) / Phi(l)  (< 7).
  [[nodiscard]] static double asymptotic_bound(double l);
};

}  // namespace rcp::analysis
