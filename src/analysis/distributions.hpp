// Exact discrete distributions for the Markov-chain analysis: binomial and
// hypergeometric pmfs/tails computed in log space.
//
// Section 4.1 models one phase as every process drawing a uniform sample of
// n-k of the n per-phase messages (hypergeometric composition of views) and
// the population of next-phase values as n independent coin flips with the
// per-process flip probability w_i (binomial).
#pragma once

#include <cstdint>

namespace rcp::analysis {

/// P[Binomial(n, p) = j]; exact in log space, 0 outside [0, n].
[[nodiscard]] double binomial_pmf(unsigned n, double p, unsigned j) noexcept;

/// P[Binomial(n, p) >= j].
[[nodiscard]] double binomial_tail_geq(unsigned n, double p,
                                       unsigned j) noexcept;

/// P[X = x] for X ~ Hypergeometric(population, special, sample): x special
/// items in a uniform sample of `sample` items from `population` items of
/// which `special` are special.
[[nodiscard]] double hypergeometric_pmf(unsigned population, unsigned special,
                                        unsigned sample, unsigned x) noexcept;

/// P[X > x] for the same X (strict inequality, as in the paper's w_i).
[[nodiscard]] double hypergeometric_tail_greater(unsigned population,
                                                 unsigned special,
                                                 unsigned sample,
                                                 unsigned x) noexcept;

/// Mean of the hypergeometric: sample * special / population (paper eq. 4).
[[nodiscard]] double hypergeometric_mean(unsigned population, unsigned special,
                                         unsigned sample) noexcept;

/// Variance of the hypergeometric (paper eq. 5).
[[nodiscard]] double hypergeometric_variance(unsigned population,
                                             unsigned special,
                                             unsigned sample) noexcept;

}  // namespace rcp::analysis
