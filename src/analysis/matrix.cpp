#include "analysis/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rcp::analysis {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  RCP_EXPECT(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::identity(std::size_t size) {
  Matrix m(size, size, 0.0);
  for (std::size_t i = 0; i < size; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  RCP_EXPECT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  RCP_EXPECT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  RCP_EXPECT(cols_ == rhs.rows_, "matrix shape mismatch in multiply");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) {
        continue;
      }
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.at(i, j) += a * rhs.at(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(j, i) = at(i, j);
    }
  }
  return out;
}

double Matrix::row_sum(std::size_t r) const {
  RCP_EXPECT(r < rows_, "row index out of range");
  double sum = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    sum += at(r, j);
  }
  return sum;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  RCP_EXPECT(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shape mismatch in max_abs_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  RCP_EXPECT(a.cols() == n, "solve needs a square matrix");
  RCP_EXPECT(b.size() == n, "rhs size mismatch");

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::fabs(a.at(perm[col], col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::fabs(a.at(perm[r], col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      throw Error("singular matrix in solve()");
    }
    std::swap(perm[col], perm[pivot]);

    const double diag = a.at(perm[col], col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(perm[r], col) / diag;
      if (factor == 0.0) {
        continue;
      }
      a.at(perm[r], col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) {
        a.at(perm[r], c) -= factor * a.at(perm[col], c);
      }
      b[perm[r]] -= factor * b[perm[col]];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[perm[i]];
    for (std::size_t c = i + 1; c < n; ++c) {
      acc -= a.at(perm[i], c) * x[c];
    }
    x[i] = acc / a.at(perm[i], i);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  const std::size_t n = a.rows();
  RCP_EXPECT(a.cols() == n, "inverse needs a square matrix");
  Matrix out(n, n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    std::vector<double> e(n, 0.0);
    e[col] = 1.0;
    const std::vector<double> x = solve(a, std::move(e));
    for (std::size_t r = 0; r < n; ++r) {
      out.at(r, col) = x[r];
    }
  }
  return out;
}

}  // namespace rcp::analysis
