#include "analysis/collapsed_chain.hpp"

#include <cmath>

#include "analysis/markov.hpp"
#include "analysis/special.hpp"
#include "common/error.hpp"

namespace rcp::analysis {

namespace {
/// Phi((sqrt(n) + 3 l)/sqrt(8)) — the B -> C transition bound of eq. 9.
double phi_g(unsigned n, double l) {
  return normal_upper_tail((std::sqrt(static_cast<double>(n)) + 3.0 * l) /
                           std::sqrt(8.0));
}
}  // namespace

Matrix CollapsedChain::r_matrix(unsigned n, double l) {
  RCP_EXPECT(l > 0.0, "l must be positive");
  const double phi_l = normal_upper_tail(l);
  const double g = phi_g(n, l);
  RCP_EXPECT(1.0 - 2.0 * phi_l >= 0.0, "l too small: C row not stochastic");
  RCP_EXPECT(0.5 - g >= 0.0, "n too small: BD row not stochastic");
  Matrix r(3, 3, 0.0);
  // State order: 0 = C, 1 = BD, 2 = AE (eq. 11).
  r.at(0, 0) = 1.0 - 2.0 * phi_l;
  r.at(0, 1) = 2.0 * phi_l;
  r.at(0, 2) = 0.0;
  r.at(1, 0) = g;
  r.at(1, 1) = 0.5 - g;
  r.at(1, 2) = 0.5;
  r.at(2, 0) = 0.0;
  r.at(2, 1) = 0.0;
  r.at(2, 2) = 1.0;
  return r;
}

double CollapsedChain::expected_absorption_closed_form(unsigned n, double l) {
  const double phi_l = normal_upper_tail(l);
  return (2.0 * phi_l + 0.5 + phi_g(n, l)) / phi_l;
}

double CollapsedChain::expected_absorption_via_fundamental(unsigned n,
                                                           double l) {
  const MarkovChain chain(r_matrix(n, l), {false, false, true});
  const Matrix fundamental = chain.fundamental_matrix();
  // Expected absorption from C = sum of C's row of N ([Isaa76]).
  return fundamental.at(0, 0) + fundamental.at(0, 1);
}

double CollapsedChain::asymptotic_bound(double l) {
  const double phi_l = normal_upper_tail(l);
  return (2.0 * phi_l + 0.5) / phi_l;
}

}  // namespace rcp::analysis
