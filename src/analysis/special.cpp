#include "analysis/special.hpp"

#include <cmath>
#include <limits>

namespace rcp::analysis {

double log_binomial(unsigned n, unsigned k) noexcept {
  if (k > n) {
    return -std::numeric_limits<double>::infinity();
  }
  // lgamma is exact enough here: n stays in the thousands and the pmfs are
  // normalised sums of a few hundred terms.
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double normal_upper_tail(double x) noexcept {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace rcp::analysis
