// The Section 4.2 Markov chain: the malicious-case protocol under the
// balancing attack, restricted (as in the paper) to k <= n/5 with
// k = l * sqrt(n) / 2.
//
// State s = number of *correct* processes with value 1 (0 <= s <= n-k).
// Each phase, every process's state is accepted by everyone (the k
// malicious processes participate fully — their worst move is to vote, not
// to stay silent), and the malicious votes are chosen to balance: all k
// vote 1 when s is below the balanced point (n-k)/2, all k vote 0 when s is
// above, and they split evenly at balance. A correct process accepts a
// uniform sample of n-k of the n per-phase states and adopts the sample
// majority, so
//
//     w(s) = P[ X > (n-k)/2 ],  X ~ Hypergeometric(n, ones(s), n-k),
//     next state ~ Binomial(n-k, w(s)).
//
// This makes the paper's shift construction (its eq. 1 of Section 4.2)
// mechanistic: within k of the balanced state the malicious votes pin the
// visible population at n/2 (the chain behaves like the balanced fail-stop
// row), and beyond k they saturate, shifting the effective state by k.
//
// Absorbing regions (paper): [0, (n-3k)/2 - 1] and [(n+k)/2 + 1, n-k].
// The paper's headline: the probability of leaving the balanced state for
// an absorbing state is ~ 2 Phi(l), so the expected number of phases is
// bounded by 1 / (2 Phi(l)) — constant for k = o(sqrt(n)).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/markov.hpp"

namespace rcp::analysis {

class MaliciousChain {
 public:
  /// Requires n - k even (integral balanced state), k < n/3, n - 3k >= 2.
  MaliciousChain(unsigned n, unsigned k);

  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned correct() const noexcept { return n_ - k_; }

  /// Number of value-1 messages visible per phase in state s (correct ones
  /// plus the malicious balancing votes).
  [[nodiscard]] unsigned visible_ones(unsigned s) const;

  /// Per-correct-process flip probability in state s.
  [[nodiscard]] double w(unsigned s) const;

  [[nodiscard]] bool is_absorbing_state(unsigned s) const noexcept;

  [[nodiscard]] const MarkovChain& chain() const noexcept { return *chain_; }

  [[nodiscard]] double expected_phases_from(unsigned s) const;
  [[nodiscard]] double expected_phases_from_balanced() const;

  /// The paper's bound 1 / (2 Phi(l)) for k = l sqrt(n) / 2.
  [[nodiscard]] static double paper_bound(double l);

  /// The l for which k = l sqrt(n) / 2.
  [[nodiscard]] double effective_l() const;

 private:
  unsigned n_;
  unsigned k_;
  std::vector<double> w_;
  std::unique_ptr<MarkovChain> chain_;
  std::vector<double> hitting_times_;
};

}  // namespace rcp::analysis
