#include "analysis/failstop_chain.hpp"

#include "analysis/distributions.hpp"
#include "common/error.hpp"

namespace rcp::analysis {

FailStopChain::FailStopChain(unsigned n) : n_(n) {
  RCP_EXPECT(n >= 6 && n % 6 == 0,
             "FailStopChain needs n divisible by 6 (n/3, 2n/3, n/2 integral)");
  const unsigned sample = 2 * n / 3;  // n - k with k = n/3
  w_.resize(n + 1);
  for (unsigned i = 0; i <= n; ++i) {
    w_[i] = hypergeometric_tail_greater(n, i, sample, n / 3);
  }

  Matrix p(n + 1, n + 1, 0.0);
  std::vector<bool> absorbing(n + 1, false);
  for (unsigned i = 0; i <= n; ++i) {
    for (unsigned j = 0; j <= n; ++j) {
      p.at(i, j) = binomial_pmf(n, w_[i], j);
    }
    absorbing[i] = is_absorbing_state(i);
  }
  chain_ = std::make_unique<MarkovChain>(std::move(p), std::move(absorbing));
  hitting_times_ = chain_->expected_hitting_times();
  std::vector<bool> high(n + 1, false);
  for (unsigned i = 2 * n / 3 + 1; i <= n; ++i) {
    high[i] = true;
  }
  decide_one_probs_ = chain_->absorption_probabilities(high);
}

double FailStopChain::w(unsigned i) const {
  RCP_EXPECT(i <= n_, "state out of range");
  return w_[i];
}

bool FailStopChain::is_absorbing_state(unsigned i) const noexcept {
  return i < n_ / 3 || i > 2 * n_ / 3;
}

double FailStopChain::expected_phases_from(unsigned ones) const {
  RCP_EXPECT(ones <= n_, "state out of range");
  return hitting_times_[ones];
}

double FailStopChain::expected_phases_from_balanced() const {
  return hitting_times_[n_ / 2];
}

double FailStopChain::probability_decide_one_from(unsigned ones) const {
  RCP_EXPECT(ones <= n_, "state out of range");
  return decide_one_probs_[ones];
}

}  // namespace rcp::analysis
