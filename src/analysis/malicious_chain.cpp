#include "analysis/malicious_chain.hpp"

#include <cmath>

#include "analysis/distributions.hpp"
#include "analysis/special.hpp"
#include "common/error.hpp"

namespace rcp::analysis {

MaliciousChain::MaliciousChain(unsigned n, unsigned k) : n_(n), k_(k) {
  RCP_EXPECT(n >= 4, "chain needs n >= 4");
  RCP_EXPECT((n - k) % 2 == 0, "n - k must be even (integral balanced state)");
  RCP_EXPECT(3 * k < n, "k must respect the malicious resilience bound");
  RCP_EXPECT(n >= 3 * k + 2, "absorbing regions must be non-empty");

  const unsigned m = n - k;
  w_.resize(m + 1);
  Matrix p(m + 1, m + 1, 0.0);
  std::vector<bool> absorbing(m + 1, false);
  for (unsigned s = 0; s <= m; ++s) {
    w_[s] = hypergeometric_tail_greater(n, visible_ones(s), m, m / 2);
    for (unsigned j = 0; j <= m; ++j) {
      p.at(s, j) = binomial_pmf(m, w_[s], j);
    }
    absorbing[s] = is_absorbing_state(s);
  }
  chain_ = std::make_unique<MarkovChain>(std::move(p), std::move(absorbing));
  hitting_times_ = chain_->expected_hitting_times();
}

unsigned MaliciousChain::visible_ones(unsigned s) const {
  RCP_EXPECT(s <= n_ - k_, "state out of range");
  const unsigned m = n_ - k_;
  if (2 * s < m) {
    return s + k_;  // all malicious vote 1, pushing back toward balance
  }
  if (2 * s > m) {
    return s;  // all malicious vote 0
  }
  return s + k_ / 2;  // balanced: split the malicious votes
}

double MaliciousChain::w(unsigned s) const {
  RCP_EXPECT(s <= n_ - k_, "state out of range");
  return w_[s];
}

bool MaliciousChain::is_absorbing_state(unsigned s) const noexcept {
  // Paper: absorbing states are [0, (n-3k)/2 - 1] and [(n+k)/2 + 1, n-k].
  // Using exact integer comparisons: s < (n-3k)/2  <=>  2s < n - 3k.
  return 2 * s < n_ - 3 * k_ || 2 * s > n_ + k_;
}

double MaliciousChain::expected_phases_from(unsigned s) const {
  RCP_EXPECT(s <= n_ - k_, "state out of range");
  return hitting_times_[s];
}

double MaliciousChain::expected_phases_from_balanced() const {
  return hitting_times_[(n_ - k_) / 2];
}

double MaliciousChain::paper_bound(double l) {
  return 1.0 / (2.0 * normal_upper_tail(l));
}

double MaliciousChain::effective_l() const {
  return 2.0 * static_cast<double>(k_) / std::sqrt(static_cast<double>(n_));
}

}  // namespace rcp::analysis
