// Special functions used by the Section 4 performance analysis.
#pragma once

namespace rcp::analysis {

/// log of the binomial coefficient C(n, k); -inf for k outside [0, n].
[[nodiscard]] double log_binomial(unsigned n, unsigned k) noexcept;

/// The paper's Phi: the *upper* tail of the standard normal,
/// Phi(x) = (1/sqrt(2 pi)) * integral_x^inf exp(-t^2/2) dt.
[[nodiscard]] double normal_upper_tail(double x) noexcept;

/// Standard normal CDF, P[Z <= x].
[[nodiscard]] double normal_cdf(double x) noexcept;

}  // namespace rcp::analysis
