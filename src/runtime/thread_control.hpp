// Shared control handle for a parallel trial run: cooperative
// cancellation, progress accounting, and trial-count bookkeeping.
//
// One ThreadControl may be observed from any number of threads. Workers
// report with note_completed() (a relaxed fetch_add, so the hot loop never
// serialises on progress accounting); observers poll completed()/total()
// and drive progress UIs (see runtime/progress.hpp). Cancellation is
// cooperative: request_cancel() raises a flag that the runtime checks
// between trials, so a cancelled run stops at the next trial boundary and
// its aggregates reflect exactly the trials that completed.
#pragma once

#include <atomic>
#include <cstdint>

namespace rcp::runtime {

class ThreadControl {
 public:
  /// Arms the handle for a new run of `total` trials: resets the completed
  /// counter and clears any previous cancellation.
  void begin(std::uint64_t total) noexcept;

  /// Asks the run to stop at the next trial boundary.
  void request_cancel() noexcept {
    cancel_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Called by workers after finishing trials; safe from any thread.
  void note_completed(std::uint64_t n = 1) noexcept {
    completed_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Fraction of trials completed, in [0, 1]; 0 when no run is armed.
  [[nodiscard]] double fraction_complete() const noexcept;

 private:
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<bool> cancel_{false};
};

}  // namespace rcp::runtime
