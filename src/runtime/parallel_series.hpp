// ParallelSeries: the deterministic parallel trial driver.
//
// A series of `trials` independent experiments is partitioned into fixed
// shards of `shard_size` consecutive trial indices. Each shard owns a
// private Accumulator; workers claim whole shards from a TrialPool and
// fill them; at the end the shard accumulators are merged *in shard-index
// order*. Because the shard layout and the merge order depend only on
// (trials, shard_size) — never on the thread count or the schedule — the
// aggregate is bit-identical for 1, 2, or N threads. Trial r always draws
// seed trial_seed(base_seed, r) (see runtime/seeding.hpp), so individual
// trials are reproducible in isolation too.
//
// The Accumulator concept: default-constructible, plus
//   void add-style mutation inside the trial functor, and
//   void merge(const Accumulator&)   (e.g. RunningStats::merge).
// The trial functor fn(acc, trial_index, seed) is invoked concurrently on
// distinct accumulators and must not touch shared mutable state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/seeding.hpp"
#include "runtime/thread_control.hpp"
#include "runtime/trial_pool.hpp"

namespace rcp::runtime {

/// Worker count used when a SeriesConfig leaves `threads` at 0: the
/// RCP_THREADS environment variable if set and positive, otherwise
/// std::thread::hardware_concurrency() (minimum 1).
[[nodiscard]] std::uint32_t default_threads() noexcept;

struct SeriesConfig {
  /// Worker threads; 0 selects default_threads(), 1 runs inline on the
  /// calling thread (no pool). The aggregate is identical either way.
  std::uint32_t threads = 0;
  /// Trials per deterministic merge shard. Part of the aggregation
  /// contract: results are bit-identical across thread counts only for
  /// equal shard sizes.
  std::uint32_t shard_size = 32;
};

template <typename Accumulator>
class ParallelSeries {
 public:
  explicit ParallelSeries(SeriesConfig config = {}) : config_(config) {}

  /// Runs fn(shard_accumulator, trial_index, seed) for every trial in
  /// [0, trials) and returns the in-order merge of all shards. `control`
  /// (optional) receives begin/progress and is polled for cancellation at
  /// trial boundaries; a cancelled run returns the aggregate of the
  /// trials that completed.
  template <typename TrialFn>
  Accumulator run(std::uint64_t trials, std::uint64_t base_seed, TrialFn&& fn,
                  ThreadControl* control = nullptr) const {
    const std::uint32_t shard_size = std::max<std::uint32_t>(1, config_.shard_size);
    const std::uint64_t shards = (trials + shard_size - 1) / shard_size;
    std::vector<Accumulator> parts(static_cast<std::size_t>(shards));
    if (control != nullptr) {
      control->begin(trials);
    }
    const auto run_shard = [&](std::uint64_t shard_index, std::uint32_t) {
      Accumulator& acc = parts[static_cast<std::size_t>(shard_index)];
      const std::uint64_t lo = shard_index * shard_size;
      const std::uint64_t hi = std::min(trials, lo + shard_size);
      for (std::uint64_t t = lo; t < hi; ++t) {
        if (control != nullptr && control->cancelled()) {
          return;
        }
        fn(acc, t, trial_seed(base_seed, t));
        if (control != nullptr) {
          control->note_completed();
        }
      }
    };
    std::uint32_t threads =
        config_.threads == 0 ? default_threads() : config_.threads;
    threads = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(threads, std::max<std::uint64_t>(1, shards)));
    if (threads <= 1) {
      for (std::uint64_t s = 0; s < shards; ++s) {
        if (control != nullptr && control->cancelled()) {
          break;
        }
        run_shard(s, 0);
      }
    } else {
      TrialPool pool(threads);
      pool.for_each(shards, run_shard, control);
    }
    Accumulator out{};
    for (Accumulator& part : parts) {
      out.merge(part);
    }
    return out;
  }

 private:
  SeriesConfig config_;
};

/// One-shot convenience wrapper over ParallelSeries.
template <typename Accumulator, typename TrialFn>
Accumulator run_trials(std::uint64_t trials, std::uint64_t base_seed,
                       TrialFn&& fn, SeriesConfig config = {},
                       ThreadControl* control = nullptr) {
  return ParallelSeries<Accumulator>(config).run(
      trials, base_seed, std::forward<TrialFn>(fn), control);
}

}  // namespace rcp::runtime
