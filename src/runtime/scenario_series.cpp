#include "runtime/scenario_series.hpp"

#include <chrono>
#include <optional>

#include "sim/simulation.hpp"

namespace rcp::runtime {

void SeriesResult::merge(const SeriesResult& other) {
  phases.merge(other.phases);
  steps.merge(other.steps);
  messages.merge(other.messages);
  runs += other.runs;
  decided += other.decided;
  agreed += other.agreed;
  decided_one += other.decided_one;
  wall_seconds += other.wall_seconds;
}

double SeriesResult::trials_per_sec() const noexcept {
  return wall_seconds > 0.0 ? static_cast<double>(runs) / wall_seconds : 0.0;
}

SeriesResult run_scenario_series(const adversary::Scenario& scenario,
                                 std::uint32_t runs, std::uint64_t base_seed,
                                 const DeliveryFactory& delivery_factory,
                                 const SeriesConfig& config,
                                 ThreadControl* control) {
  const auto start = std::chrono::steady_clock::now();
  SeriesResult out = run_trials<SeriesResult>(
      runs, base_seed,
      [&](SeriesResult& acc, std::uint64_t, std::uint64_t seed) {
        adversary::Scenario trial = scenario;
        trial.seed = seed;
        auto simulation = adversary::build(
            trial, delivery_factory ? delivery_factory() : nullptr);
        const sim::RunResult result = simulation->run();
        ++acc.runs;
        if (result.status == sim::RunStatus::all_decided) {
          ++acc.decided;
          acc.phases.add(static_cast<double>(simulation->metrics().max_phase));
          acc.steps.add(static_cast<double>(result.steps));
          acc.messages.add(
              static_cast<double>(simulation->metrics().messages_sent));
        }
        if (simulation->agreement_holds()) {
          ++acc.agreed;
        }
        // agreed_value() is engaged only when agreement holds and at least
        // one correct process decided; both are required before a trial
        // may count towards decided_one.
        const std::optional<Value> agreed = simulation->agreed_value();
        if (agreed.has_value() && *agreed == Value::one) {
          ++acc.decided_one;
        }
      },
      config, control);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace rcp::runtime
