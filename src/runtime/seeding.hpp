// Deterministic per-trial seed derivation for the parallel experiment
// runtime.
//
// Every trial of a series must see a seed that is (a) a pure function of
// (base_seed, trial_index), so results are independent of thread count and
// scheduling, and (b) decorrelated across both trials and series. Deriving
// seeds as `base_seed + trial_index` fails (b): two series rooted at
// adjacent base seeds (1, 2, 3, ... as the harnesses use) would share all
// but one of their trial seeds. We instead take the trial_index-th output
// of the SplitMix64 stream rooted at base_seed, which maps any two nearby
// (base, index) pairs to statistically unrelated 64-bit values.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace rcp::runtime {

/// Golden-ratio increment of the SplitMix64 stream (Steele et al.).
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ULL;

/// Seed for trial `trial_index` of a series rooted at `base_seed`.
[[nodiscard]] constexpr std::uint64_t trial_seed(
    std::uint64_t base_seed, std::uint64_t trial_index) noexcept {
  std::uint64_t state = base_seed + trial_index * kSplitMix64Gamma;
  return splitmix64(state);
}

}  // namespace rcp::runtime
