#include "runtime/progress.hpp"

#include <cstdio>
#include <ostream>

namespace rcp::runtime {

ProgressReporter::ProgressReporter(const ThreadControl& control,
                                   std::ostream& out,
                                   std::chrono::milliseconds interval)
    : control_(control),
      out_(out),
      interval_(interval),
      start_(std::chrono::steady_clock::now()),
      thread_([this](const std::stop_token& stop) { loop(stop); }) {}

ProgressReporter::~ProgressReporter() {
  thread_.request_stop();
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  // The reporter thread is gone, but the lock discipline stays uniform:
  // the final line and the printed_ read follow the same protocol as the
  // periodic ones.
  MutexLock lock(mutex_);
  print_line();
  if (printed_) {
    out_ << "\n";
    out_.flush();
  }
}

void ProgressReporter::loop(const std::stop_token& stop) {
  MutexLock lock(mutex_);
  while (!stop.stop_requested()) {
    // Throttle: one wake-up per interval, released early only on stop.
    cv_.wait_for(lock, stop, interval_, [] { return false; });
    if (stop.stop_requested()) {
      return;
    }
    print_line();
  }
}

void ProgressReporter::print_line() {
  const std::uint64_t total = control_.total();
  if (total == 0) {
    return;
  }
  const std::uint64_t done = control_.completed();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double eta =
      rate > 0.0 && done < total
          ? static_cast<double>(total - done) / rate
          : 0.0;
  char line[128];
  std::snprintf(line, sizeof(line),
                "\rprogress: %llu/%llu (%5.1f%%)  %.0f trials/sec  eta %.1fs   ",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total),
                100.0 * control_.fraction_complete(), rate, eta);
  out_ << line;
  out_.flush();
  printed_ = true;
}

}  // namespace rcp::runtime
