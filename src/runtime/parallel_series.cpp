#include "runtime/parallel_series.hpp"

#include <cstdlib>
#include <thread>

namespace rcp::runtime {

std::uint32_t default_threads() noexcept {
  if (const char* env = std::getenv("RCP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::uint32_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace rcp::runtime
