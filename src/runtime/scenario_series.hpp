// Scenario-level series driver: the bridge between the adversary::Scenario
// vocabulary and the parallel trial runtime. This is what the experiment
// harnesses (bench/bench_util.hpp) and the scenario_runner example sit on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "adversary/scenario.hpp"
#include "common/stats.hpp"
#include "runtime/parallel_series.hpp"
#include "runtime/thread_control.hpp"

namespace rcp::runtime {

/// Aggregates over one series of independent simulation trials.
///
/// Conditioning: `phases`, `steps` and `messages` accumulate only over
/// trials that reached RunStatus::all_decided (every correct process
/// decided); timed-out or quiescent trials contribute to `runs` alone.
/// `decided_one` counts trials where agreement held, at least one correct
/// process decided, and the common decision was one — it is never
/// incremented on an undecided or disagreeing trial.
struct SeriesResult {
  RunningStats phases;    ///< max phase among correct at completion
  RunningStats steps;     ///< atomic steps to completion
  RunningStats messages;  ///< messages sent
  std::uint32_t runs = 0;
  std::uint32_t decided = 0;  ///< trials where every correct process decided
  std::uint32_t agreed = 0;   ///< trials where agreement held
  std::uint32_t decided_one = 0;  ///< trials whose common decision was one
  /// Wall-clock seconds of the series that produced this result. Timing,
  /// not statistics: excluded from the determinism contract; merge() adds.
  double wall_seconds = 0.0;

  void merge(const SeriesResult& other);
  [[nodiscard]] double trials_per_sec() const noexcept;
};

/// Fresh delivery policy per trial; an empty function selects the paper's
/// uniform delivery. Invoked concurrently from worker threads, so it must
/// not mutate shared state (returning a newly built policy is fine).
using DeliveryFactory = std::function<std::unique_ptr<sim::DeliveryPolicy>()>;

/// Runs `runs` independent trials of `scenario`, sharded across threads by
/// ParallelSeries. Trial r overrides scenario.seed with
/// trial_seed(base_seed, r); the aggregate is bit-identical for every
/// thread count (statistical fields; wall_seconds necessarily varies).
[[nodiscard]] SeriesResult run_scenario_series(
    const adversary::Scenario& scenario, std::uint32_t runs,
    std::uint64_t base_seed, const DeliveryFactory& delivery_factory = {},
    const SeriesConfig& config = {}, ThreadControl* control = nullptr);

}  // namespace rcp::runtime
