// Throttled progress reporting for long series, driven by a ThreadControl.
//
// A dedicated reporter thread wakes on a fixed interval (default 250 ms),
// reads the ThreadControl counters, and rewrites one status line
// (completed/total, percent, rate, ETA). Workers never block on the
// reporter — they only perform relaxed atomic increments — so progress
// output costs nothing on the trial hot loop regardless of trial rate.
#pragma once

#include <chrono>
#include <condition_variable>
#include <iosfwd>
#include <thread>

#include "common/annotations.hpp"
#include "runtime/sync.hpp"
#include "runtime/thread_control.hpp"

namespace rcp::runtime {

class ProgressReporter {
 public:
  /// Starts reporting on `out` until destruction. `control` must outlive
  /// the reporter and should already be (or soon be) armed via begin().
  explicit ProgressReporter(
      const ThreadControl& control, std::ostream& out,
      std::chrono::milliseconds interval = std::chrono::milliseconds(250));

  /// Stops the reporter thread and finishes the status line.
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

 private:
  void loop(const std::stop_token& stop) RCP_EXCLUDES(mutex_);
  void print_line() RCP_REQUIRES(mutex_);

  const ThreadControl& control_;
  std::ostream& out_;
  std::chrono::milliseconds interval_;
  std::chrono::steady_clock::time_point start_;
  Mutex mutex_;
  std::condition_variable_any cv_;
  // mutex_ serializes the reporter thread's periodic line against the
  // destructor's final one (out_ and printed_ are the shared state).
  bool printed_ RCP_GUARDED_BY(mutex_) = false;
  std::jthread thread_;
};

}  // namespace rcp::runtime
