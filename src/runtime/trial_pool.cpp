#include "runtime/trial_pool.hpp"

#include "common/error.hpp"
#include "runtime/parallel_series.hpp"

namespace rcp::runtime {

TrialPool::TrialPool(std::uint32_t threads) {
  const std::uint32_t count = threads == 0 ? default_threads() : threads;
  workers_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    workers_.emplace_back(
        [this, i](const std::stop_token& stop) { worker(stop, i); });
  }
}

TrialPool::~TrialPool() {
  for (std::jthread& w : workers_) {
    w.request_stop();
  }
  work_cv_.notify_all();
  // jthread destructors join.
}

void TrialPool::for_each(std::uint64_t jobs, const Job& fn,
                         ThreadControl* control) {
  MutexLock lock(mutex_);
  RCP_EXPECT(active_ == 0, "TrialPool::for_each is not reentrant");
  job_ = &fn;
  job_count_ = jobs;
  control_ = control;
  next_.store(0, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  active_ = thread_count();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return batch_done(); });
  job_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TrialPool::worker(const std::stop_token& stop, std::uint32_t index) {
  std::uint64_t seen = 0;
  MutexLock lock(mutex_);
  for (;;) {
    const bool woke = work_cv_.wait(
        lock, stop, [this, seen] { return generation_advanced(seen); });
    if (!woke) {
      return;  // stop requested with no new batch
    }
    seen = generation_;
    const Job* job = job_;
    const std::uint64_t count = job_count_;
    ThreadControl* control = control_;
    lock.unlock();
    while (!abort_.load(std::memory_order_relaxed) &&
           (control == nullptr || !control->cancelled())) {
      const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        break;
      }
      try {
        (*job)(i, index);
      } catch (...) {
        abort_.store(true, std::memory_order_relaxed);
        lock.lock();
        if (error_ == nullptr) {
          error_ = std::current_exception();
        }
        lock.unlock();
      }
    }
    lock.lock();
    if (--active_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace rcp::runtime
