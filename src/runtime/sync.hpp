// Annotated mutex wrappers. libstdc++'s std::mutex carries no capability
// attributes, so clang's -Wthread-safety cannot see it; Mutex/MutexLock
// are the thinnest possible shims that make locking visible to the
// analyzers (common/annotations.hpp) while keeping std::mutex semantics —
// including compatibility with std::condition_variable_any, which only
// needs lock()/unlock() on the lock object it is handed.
//
// Layering: this header lives in src/runtime (with the other OS-thread
// machinery) so the sans-io layers — common, core, protocols, service —
// cannot grow a dependency on OS locking without tripping the layer rule.
#pragma once

#include <mutex>

#include "common/annotations.hpp"

namespace rcp::runtime {

/// std::mutex with capability attributes.
class RCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RCP_ACQUIRE() { raw_.lock(); }
  void unlock() RCP_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool try_lock() RCP_TRY_ACQUIRE(true) {
    return raw_.try_lock();
  }

 private:
  std::mutex raw_;
};

/// Scoped lock over Mutex, relockable like std::unique_lock so it can sit
/// under a condition_variable_any wait and bracket an unlocked region.
class RCP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RCP_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() RCP_RELEASE() {
    if (held_) {
      mu_.unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() RCP_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() RCP_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

 private:
  Mutex& mu_;
  bool held_;
};

}  // namespace rcp::runtime
