// Fixed pool of std::jthread workers executing batches of independent
// jobs.
//
// The pool is work-stealing-friendly in the sense that jobs are claimed
// dynamically from a shared atomic cursor: a worker that finishes a cheap
// job immediately claims the next unclaimed one, so uneven job costs (a
// slow-converging simulation next to a fast one) balance automatically
// without any static partitioning.
//
// One batch runs at a time (for_each blocks the caller); the worker
// threads persist across batches, so a driver that runs many series — the
// bench harnesses sweep dozens — pays thread start-up once. Exceptions
// thrown by a job cancel the rest of the batch and are rethrown from
// for_each on the calling thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "runtime/sync.hpp"
#include "runtime/thread_control.hpp"

namespace rcp::runtime {

class TrialPool {
 public:
  /// fn(job_index, worker_index); worker_index < thread_count().
  using Job = std::function<void(std::uint64_t, std::uint32_t)>;

  /// `threads` == 0 selects default_threads() (see parallel_series.hpp).
  explicit TrialPool(std::uint32_t threads = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  [[nodiscard]] std::uint32_t thread_count() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Runs fn for every job index in [0, jobs), dynamically load-balanced
  /// across the pool. Blocks until every claimed job finished. If
  /// `control` is non-null, its cancellation flag is honoured between
  /// jobs (already-started jobs run to completion). Not reentrant.
  void for_each(std::uint64_t jobs, const Job& fn,
                ThreadControl* control = nullptr) RCP_EXCLUDES(mutex_);

 private:
  void worker(const std::stop_token& stop, std::uint32_t index)
      RCP_EXCLUDES(mutex_);

  // Condition-variable wait predicates run under the wait's own mutex
  // contract (the cv re-acquires before evaluating them), which neither
  // analyzer can see through the lambda — so the guarded reads live in
  // these two exempt helpers instead of inline lambdas.
  [[nodiscard]] bool batch_done() const RCP_NO_THREAD_SAFETY_ANALYSIS {
    return active_ == 0;
  }
  [[nodiscard]] bool generation_advanced(std::uint64_t seen) const
      RCP_NO_THREAD_SAFETY_ANALYSIS {
    return generation_ != seen;
  }

  Mutex mutex_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  // Batch state (next_ is claimed lock-free).
  std::uint64_t generation_ RCP_GUARDED_BY(mutex_) = 0;
  const Job* job_ RCP_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t job_count_ RCP_GUARDED_BY(mutex_) = 0;
  ThreadControl* control_ RCP_GUARDED_BY(mutex_) = nullptr;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> abort_{false};
  std::uint32_t active_ RCP_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ RCP_GUARDED_BY(mutex_);
  std::vector<std::jthread> workers_;
};

}  // namespace rcp::runtime
