#include "runtime/thread_control.hpp"

namespace rcp::runtime {

void ThreadControl::begin(std::uint64_t total) noexcept {
  total_.store(total, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  cancel_.store(false, std::memory_order_relaxed);
}

double ThreadControl::fraction_complete() const noexcept {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  if (total == 0) {
    return 0.0;
  }
  const std::uint64_t done = completed_.load(std::memory_order_relaxed);
  return done >= total ? 1.0
                       : static_cast<double>(done) / static_cast<double>(total);
}

}  // namespace rcp::runtime
