// net::Node — one protocol participant running over real sockets.
//
// A Node hosts exactly one sim::Process (Figure 1, Figure 2, Ben-Or,
// Bracha-87, a Byzantine strategy, ...) unchanged: the process sees the
// same sim::Context interface the simulator provides, but send/broadcast
// go out as framed TCP messages and on_message fires when a frame arrives
// from an authenticated peer. The mapping of the paper's model onto TCP:
//
//   * "fully connected" — a full mesh: node i dials every peer j < i and
//     accepts from every peer j > i (one connection per pair, no dial
//     races), with capped exponential backoff reconnect, so the mesh
//     self-heals through process restarts and injected disconnects;
//   * "the message system must provide a way ... to verify the identity
//     of the sender" — an identity handshake opens every connection, and
//     Envelope::sender is stamped from the handshake, never from payload
//     bytes: a Byzantine peer can lie inside the payload but cannot forge
//     its id, exactly the simulator's guarantee;
//   * "reliable, but ... arbitrary long transmission delay" — per-link
//     sequence numbers, cumulative acks and go-back-N retransmission make
//     delivery reliable across reconnects and injected drops; delivery
//     order across peers is whatever the sockets produce, which is the
//     asynchrony the protocols are designed for;
//   * atomic steps — the loop delivers one message at a time to the
//     process; sends performed during the callback are queued and flushed
//     after it returns, mirroring the simulator's step semantics.
//
// Self-sends (the paper's requeue device) loop through a local inbox that
// delivers at most one pass per loop iteration, so a process requeuing a
// future-phase message to itself waits for network progress instead of
// spinning.
//
// Threading: a Node is driven by exactly one net::EventLoop thread —
// either its own (run() wraps a private single-node loop) or a shared one
// (net::EventLoop::add + run, the n=100 configuration). All loop_*
// callbacks, and everything they reach, are loop-thread-only.
// decision()/phase()/crashed()/finished() are safe from other threads
// while running; stats()/error() are valid after the loop finishes the
// node (joining the loop thread synchronizes).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/process.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/peer.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/stats.hpp"

namespace rcp::net {

class EventLoop;

struct NodeLimits {
  /// Per-peer outbound queue bound; at the bound the newest message is
  /// dropped (to the sender the peer then behaves like a faulty process
  /// that lost the message — the queued stream stays intact).
  std::size_t max_queued_frames = 4096;
  /// Crossing this pauses reads from that peer (backpressure).
  std::size_t backpressure_high_water = 2048;
  /// Go-back-N rewind after this long with no ack progress. With
  /// adaptive_rto this is only the initial timeout, used until the first
  /// RTT sample; without it, the fixed timeout for every rewind.
  std::uint32_t retransmit_timeout_ms = 100;
  /// RFC 6298-style retransmit timeout: SRTT/RTTVAR estimated from the
  /// per-frame enqueue → ack samples, rto = srtt + max(1ms, 4·rttvar)
  /// clamped to [rto_min_ms, rto_max_ms], doubled after each timeout
  /// (see PeerLink::note_rtt and docs/NET.md).
  bool adaptive_rto = true;
  std::uint32_t rto_min_ms = 20;
  std::uint32_t rto_max_ms = 2000;
  /// Dial retry backoff: initial, doubling to the cap.
  std::uint32_t reconnect_initial_ms = 5;
  std::uint32_t reconnect_max_ms = 250;
  /// A connection must complete its handshake within this long.
  std::uint32_t handshake_timeout_ms = 2000;
  /// Idle poll cap — the loop always wakes at least this often.
  std::uint32_t poll_cap_ms = 50;
  /// When non-zero, the loop invokes the process's on_null() at least every
  /// this many milliseconds. Consensus protocols are purely message-driven
  /// and leave this off; long-running services (the KV replica) use the
  /// tick to pull queued client ops even when no frame is in flight.
  std::uint32_t idle_tick_ms = 0;
  /// Test hooks: when non-zero, applied to every link socket (SO_RCVBUF /
  /// SO_SNDBUF). Tiny values force short vectored writes, exercising the
  /// partial-frame spill path under realistic kernel behaviour.
  int so_rcvbuf = 0;
  int so_sndbuf = 0;
};

struct NodeConfig {
  ProcessId id = 0;
  std::uint32_t n = 0;
  std::string listen_host = "127.0.0.1";
  /// 0 binds an ephemeral port; listen() returns the real one.
  std::uint16_t listen_port = 0;
  /// Address of every node, indexed by id (entry [id] is ignored). May be
  /// filled in after construction via set_peer().
  std::vector<PeerAddress> peers;
  std::uint64_t seed = 1;
  FaultPlan faults;
  NodeLimits limits;
  /// Fail-stop injection: the node dies (closes everything, exits run())
  /// as soon as its process's phase() reaches this value.
  std::optional<Phase> crash_at_phase;
  /// Readiness backend when the node runs on its own loop (run()); a
  /// shared EventLoop brings its own backend and ignores this.
  Reactor::Backend backend = Reactor::Backend::automatic;
};

class Node {
 public:
  /// Takes ownership of the process. Throws on invalid config.
  Node(NodeConfig cfg, std::unique_ptr<sim::Process> process);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Binds the listener now and returns the bound port (the config port,
  /// or the ephemeral port when the config said 0). Idempotent; run()
  /// calls it if the caller did not.
  std::uint16_t listen();

  /// Fills in a peer's address (the in-process cluster binds every
  /// listener first, then distributes the ephemeral ports).
  void set_peer(ProcessId p, PeerAddress addr);

  /// Runs a private single-node EventLoop on the calling thread until
  /// request_stop(), a scheduled crash, or a fatal error (recorded in
  /// error()). For shared-loop operation use net::EventLoop directly.
  void run();

  /// Thread-safe: asks the loop to finish this node; with a private loop
  /// run() returns soon after, with a shared loop the node detaches while
  /// its siblings keep running.
  void request_stop();

  // ---- Thread-safe observers (valid while running) -------------------

  [[nodiscard]] ProcessId id() const noexcept { return cfg_.id; }
  [[nodiscard]] std::optional<Value> decision() const noexcept;
  [[nodiscard]] Phase phase() const noexcept {
    return phase_published_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool crashed() const noexcept {
    return crashed_.load(std::memory_order_acquire);
  }
  /// True once the driving loop has torn this node down: its sockets are
  /// closed and it will never decide. (The shared-loop analogue of "the
  /// node thread returned".)
  [[nodiscard]] bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }

  // ---- Post-run observers (valid after run() returns) ----------------

  // Exempt from lock analysis: the caller joined (or observed finished()
  // on) the driving loop thread, which synchronizes; there is no lock to
  // name for a happens-before edge established by thread teardown.
  [[nodiscard]] const NodeStats& stats() const noexcept
      RCP_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  /// Non-empty if the loop died on an exception.
  [[nodiscard]] const std::string& error() const noexcept
      RCP_NO_THREAD_SAFETY_ANALYSIS {
    return error_;
  }
  [[nodiscard]] sim::Process& process() noexcept { return *process_; }

 private:
  class LoopContext;
  friend class LoopContext;
  friend class EventLoop;

  /// States that the calling thread is the one driving this node — the
  /// EventLoop asserts it before every batch of loop_* calls, and the
  /// setup-phase entry points (constructor, listen, set_peer) assert it
  /// themselves: before the loop exists, the constructing thread is
  /// trivially the only driver.
  void assert_driving() const RCP_ASSERT_CAPABILITY(loop_affinity_) {}

  // ---- EventLoop interface (loop-thread-only) ------------------------

  void loop_start(EventLoop& loop, std::uint32_t index,
                  Clock::time_point now) RCP_REQUIRES(loop_affinity_);
  void loop_event(std::uint32_t sub, unsigned mask)
      RCP_REQUIRES(loop_affinity_);
  void loop_service(Clock::time_point now) RCP_REQUIRES(loop_affinity_);
  [[nodiscard]] int loop_timeout_ms(Clock::time_point now) const
      RCP_REQUIRES(loop_affinity_);
  [[nodiscard]] bool loop_has_ready_work() const noexcept
      RCP_REQUIRES(loop_affinity_);
  void loop_refresh_masks(Clock::time_point now) RCP_REQUIRES(loop_affinity_);
  [[nodiscard]] bool loop_finished() const noexcept
      RCP_REQUIRES(loop_affinity_);
  void loop_abort(const char* what) RCP_REQUIRES(loop_affinity_);
  void loop_finish() RCP_REQUIRES(loop_affinity_);

  void start_due_dials(Clock::time_point now) RCP_REQUIRES(loop_affinity_);
  void apply_due_disconnects(Clock::time_point now)
      RCP_REQUIRES(loop_affinity_);
  void accept_new_connections(Clock::time_point now)
      RCP_REQUIRES(loop_affinity_);
  void service_pending(Clock::time_point now) RCP_REQUIRES(loop_affinity_);
  void service_links(Clock::time_point now) RCP_REQUIRES(loop_affinity_);
  void check_timers(Clock::time_point now) RCP_REQUIRES(loop_affinity_);
  void process_link_input(PeerLink& link) RCP_REQUIRES(loop_affinity_);
  [[nodiscard]] bool read_socket(PeerLink& link)
      RCP_REQUIRES(loop_affinity_);
  void attach_pending(std::size_t index, ProcessId peer)
      RCP_REQUIRES(loop_affinity_);
  void establish_link(PeerLink& link) RCP_REQUIRES(loop_affinity_);
  void reset_link(PeerLink& link, Clock::time_point now)
      RCP_REQUIRES(loop_affinity_);
  void flush_link(PeerLink& link, Clock::time_point now)
      RCP_REQUIRES(loop_affinity_);
  void deliver_data(PeerLink& link, Frame&& frame)
      RCP_REQUIRES(loop_affinity_);
  void deliver_local_once() RCP_REQUIRES(loop_affinity_);
  void send_from_process(ProcessId to, Bytes payload)
      RCP_REQUIRES(loop_affinity_);
  void record_decision(Value v) RCP_REQUIRES(loop_affinity_);
  void after_event() RCP_REQUIRES(loop_affinity_);
  void close_all() RCP_REQUIRES(loop_affinity_);
  void watch_fd(int fd, std::uint32_t sub, unsigned mask)
      RCP_REQUIRES(loop_affinity_);

  /// A connection that said nothing yet: accepted, awaiting its hello.
  struct PendingConn {
    Fd fd;
    FrameDecoder decoder;
    Clock::time_point deadline;
    std::uint32_t token = 0;  ///< kSubPendingBit | serial
    bool readable = false;    ///< sticky readiness flag
  };

  /// The capability "I am the thread driving this node". Costless claim,
  /// not a lock: EventLoop::run asserts it per node, the setup phase
  /// asserts it on entry, and everything below marked RCP_GUARDED_BY is
  /// thereby statically confined to the driving thread.
  ThreadAffinity loop_affinity_;

  NodeConfig cfg_;  ///< immutable once the loop starts (observers read id)
  std::unique_ptr<sim::Process> process_;
  ListenSocket listener_ RCP_GUARDED_BY(loop_affinity_);
  bool listening_ RCP_GUARDED_BY(loop_affinity_) = false;
  /// Indexed by peer id; [self] unused.
  std::vector<PeerLink> links_ RCP_GUARDED_BY(loop_affinity_);
  std::vector<PendingConn> pending_ RCP_GUARDED_BY(loop_affinity_);
  Rng process_rng_ RCP_GUARDED_BY(loop_affinity_);
  FaultInjector faults_ RCP_GUARDED_BY(loop_affinity_);
  NodeStats stats_ RCP_GUARDED_BY(loop_affinity_);
  std::string error_ RCP_GUARDED_BY(loop_affinity_);
  /// Reusable vectored-send scratch (no allocations).
  WritevPlan plan_ RCP_GUARDED_BY(loop_affinity_);

  /// Set by loop_start, for registrations.
  EventLoop* loop_ RCP_GUARDED_BY(loop_affinity_) = nullptr;
  std::uint32_t loop_index_ RCP_GUARDED_BY(loop_affinity_) = 0;
  bool listener_readable_ RCP_GUARDED_BY(loop_affinity_) = false;
  bool wake_watched_ RCP_GUARDED_BY(loop_affinity_) = false;
  bool listener_watched_ RCP_GUARDED_BY(loop_affinity_) = false;
  std::uint32_t pending_token_seq_ RCP_GUARDED_BY(loop_affinity_) = 0;

  /// Self-send inbox (the paper's requeue device).
  std::vector<sim::Envelope> local_inbox_ RCP_GUARDED_BY(loop_affinity_);
  std::uint64_t local_seq_ RCP_GUARDED_BY(loop_affinity_) = 0;

  /// Loop-thread view, for the one-shot invariant.
  std::optional<Value> decision_ RCP_GUARDED_BY(loop_affinity_);
  bool crash_pending_ RCP_GUARDED_BY(loop_affinity_) = false;
  /// Armed when idle_tick_ms != 0.
  Clock::time_point next_idle_tick_ RCP_GUARDED_BY(loop_affinity_){};

  // Deliberately unguarded: set in the constructor, closed in the
  // destructor, and in between only read — the loop drains wake_rd_,
  // request_stop() (any thread) writes one byte to wake_wr_.
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<int> decision_published_{-1};
  std::atomic<std::uint64_t> phase_published_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> finished_{false};
};

}  // namespace rcp::net
