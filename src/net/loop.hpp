// net::EventLoop — one reactor thread driving one or more Nodes.
//
// Thread-per-node burns a kernel thread and a poll set per participant;
// at n=100 that is 100 threads spinning over ~10k descriptors. The
// EventLoop multiplexes instead: every descriptor of every attached node
// registers with one Reactor under a token that packs (node index, per-
// node subject), and a single thread dispatches readiness to the owning
// node's state machine. Nodes attached to the same loop never touch each
// other's state — the loop is just a scheduler — so protocol semantics
// are identical to thread-per-node.
//
// Ownership rules (see docs/NET.md):
//   * add() all nodes before run(); the set is fixed while running.
//   * run() occupies the calling thread until every attached node
//     finished (stopped, crashed by schedule, or errored).
//   * watch()/change()/unwatch() are loop-thread-only — Nodes call them
//     from inside their loop_* callbacks, never from other threads.
//   * The only cross-thread entry points are Node::request_stop() and
//     the read-only published atomics (decision/phase/crashed/finished).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/reactor.hpp"

namespace rcp::net {

class Node;

/// Token layout: high 32 bits = node index within the loop, low 32 bits =
/// the node's subject. Peer links use their peer id; the reserved values
/// below cover the node's other descriptors. Pending (pre-handshake)
/// connections get kSubPendingBit | serial so each accepted fd is
/// individually addressable before it has a peer identity.
inline constexpr std::uint32_t kSubWake = 0xFFFFFFFFu;
inline constexpr std::uint32_t kSubListener = 0xFFFFFFFEu;
inline constexpr std::uint32_t kSubPendingBit = 0x80000000u;

class EventLoop {
 public:
  explicit EventLoop(Reactor::Backend backend)
      : reactor_(Reactor::make(backend)) {}

  /// Registers a node with this loop. Call before run(); the node must
  /// outlive the loop's run().
  void add(Node& node) { nodes_.push_back(&node); }

  /// Drives all attached nodes until each has finished. Exceptions from
  /// one node's machinery abort that node only (recorded in its error()).
  void run();

  // ---- Registration facade (loop-thread-only, used by Node) ----------

  void watch(int fd, std::uint64_t token, unsigned mask) {
    reactor_->add(fd, mask, token);
  }
  void change(int fd, std::uint64_t token, unsigned mask) {
    reactor_->modify(fd, mask, token);
  }
  void unwatch(int fd) { reactor_->remove(fd); }

  [[nodiscard]] bool edge_triggered() const noexcept {
    return reactor_->edge_triggered();
  }
  [[nodiscard]] std::string_view backend_name() const noexcept {
    return reactor_->name();
  }

 private:
  std::unique_ptr<Reactor> reactor_;
  std::vector<Node*> nodes_;
};

}  // namespace rcp::net
