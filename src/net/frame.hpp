// Length-prefixed frame codec for the real-network transport.
//
// TCP is a byte stream; the paper's message system delivers discrete
// messages. Frames restore the message boundary: every frame is a 4-byte
// little-endian body length followed by the body, whose first byte is the
// frame type. Three types exist:
//
//   hello  — identity handshake: magic, codec version, cluster size n and
//            the sender's node id. Exchanged once per connection before any
//            data; the id it carries is what the receiving node stamps as
//            Envelope::sender, giving the authenticated-identity guarantee
//            the paper's malicious model requires.
//   data   — one protocol payload (the same bytes a sim::Process hands to
//            Context::send), tagged with a per-link sequence number for the
//            reliable-delivery machinery (dedupe after reconnect,
//            go-back-N retransmission after injected drops).
//   ack    — cumulative acknowledgement of a link's data stream; the
//            sender retains frames until they are acked.
//
// Decoding is defensive end to end: an oversized length, an unknown type, a
// bad magic or a truncated body all throw DecodeError (the connection is
// then closed — transport-level garbage never reaches a protocol).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace rcp::net {

enum class FrameType : std::uint8_t {
  hello = 1,
  data = 2,
  ack = 3,
};

/// "RCPN" — rejects cross-talk from anything that is not this codec.
inline constexpr std::uint32_t kHelloMagic = 0x5243504e;
inline constexpr std::uint8_t kWireVersion = 1;

/// Upper bound on a frame body. Protocol messages are tens of bytes; the
/// bound exists so a malicious or corrupted length prefix cannot make a
/// receiver buffer gigabytes. Chosen comfortably above the largest
/// multivalued proposal the repo ever encodes.
inline constexpr std::uint32_t kMaxFrameBody = 1u << 20;

/// One decoded frame. `node_id`/`n` are meaningful for hello frames,
/// `seq` for data (sequence number) and ack (cumulative acked sequence),
/// `payload` for data.
struct Frame {
  FrameType type = FrameType::data;
  std::uint32_t node_id = 0;
  std::uint32_t n = 0;
  std::uint64_t seq = 0;
  Bytes payload;
};

// ---- Encoders: append one complete frame to a stream buffer -----------

void append_hello(std::vector<std::byte>& out, std::uint32_t node_id,
                  std::uint32_t n);
void append_data(std::vector<std::byte>& out, std::uint64_t seq,
                 const Bytes& payload);
void append_ack(std::vector<std::byte>& out, std::uint64_t acked_seq);

/// Everything in a data frame that precedes the payload bytes: length
/// prefix (4), type (1), sequence number (8). Precomputed per queued
/// frame so the send path can gather header + payload with writev and
/// never re-encode or copy the payload.
inline constexpr std::size_t kDataFrameHeader = 4 + 1 + 8;

/// Encodes the data-frame header for a payload of `payload_size` bytes.
/// Throws if the payload exceeds kMaxFrameBody.
void encode_data_header(std::span<std::byte, kDataFrameHeader> out,
                        std::uint64_t seq, std::size_t payload_size);

/// Incremental frame parser. feed() appends raw bytes from the socket (in
/// any fragmentation — frames may arrive split across arbitrarily many
/// reads or many per read); next() yields complete frames in order.
/// Throws DecodeError on an oversized length, unknown type, bad
/// magic/version or a body that does not match its type's layout. After a
/// throw the stream is unusable and the connection must be dropped.
class FrameDecoder {
 public:
  void feed(std::span<const std::byte> data);

  /// The next complete frame, or nullopt if more bytes are needed.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace rcp::net
