#include "net/reactor.hpp"

#ifdef __linux__
#include <sys/epoll.h>  // the only TU allowed to (lint rule os-exclusive)
#endif
#include <unistd.h>

#include <cerrno>
#include <vector>

#include "common/error.hpp"
#include "net/poller.hpp"

namespace rcp::net {

namespace {

/// Registration table indexed by fd. Both backends need the (mask, token)
/// pair per descriptor: poll to rebuild its interest set, epoll to
/// translate epoll_data back and to make modify()/remove() checkable.
struct FdTable {
  struct Entry {
    bool active = false;
    unsigned mask = 0;
    std::uint64_t token = 0;
  };

  Entry& at(int fd) {
    RCP_EXPECT(fd >= 0, "reactor: negative fd");
    const auto i = static_cast<std::size_t>(fd);
    if (i >= entries.size()) {
      entries.resize(i + 1);
    }
    return entries[i];
  }

  std::vector<Entry> entries;
  std::size_t active_count = 0;
};

class PollReactor final : public Reactor {
 public:
  void add(int fd, unsigned mask, std::uint64_t token) override {
    FdTable::Entry& e = table_.at(fd);
    RCP_EXPECT(!e.active, "PollReactor::add: fd already registered");
    e = {true, mask, token};
    ++table_.active_count;
  }

  void modify(int fd, unsigned mask, std::uint64_t token) override {
    FdTable::Entry& e = table_.at(fd);
    RCP_EXPECT(e.active, "PollReactor::modify: fd not registered");
    e.mask = mask;
    e.token = token;
  }

  void remove(int fd) override {
    FdTable::Entry& e = table_.at(fd);
    RCP_EXPECT(e.active, "PollReactor::remove: fd not registered");
    e = {};
    --table_.active_count;
  }

  int wait(int timeout_ms) override {
    poller_.clear();
    for (std::size_t i = 0; i < table_.entries.size(); ++i) {
      const FdTable::Entry& e = table_.entries[i];
      if (e.active) {
        short events = 0;
        if ((e.mask & kRead) != 0) {
          events |= Poller::kRead;
        }
        if ((e.mask & kWrite) != 0) {
          events |= Poller::kWrite;
        }
        poller_.want(static_cast<int>(i), events);
      }
    }
    events_.clear();
    const int rc = poller_.wait(timeout_ms);
    if (rc <= 0) {
      return rc;
    }
    for (std::size_t i = 0; i < table_.entries.size(); ++i) {
      const FdTable::Entry& e = table_.entries[i];
      if (!e.active) {
        continue;
      }
      const short revents = poller_.ready(static_cast<int>(i));
      if (revents == 0) {
        continue;
      }
      unsigned mask = 0;
      if ((revents & POLLIN) != 0) {
        mask |= kRead;
      }
      if ((revents & POLLOUT) != 0) {
        mask |= kWrite;
      }
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        mask |= kError;
      }
      events_.push_back(ReactorEvent{static_cast<int>(i), mask, e.token});
    }
    return static_cast<int>(events_.size());
  }

  [[nodiscard]] std::span<const ReactorEvent> events()
      const noexcept override {
    return events_;
  }

  [[nodiscard]] bool edge_triggered() const noexcept override {
    return false;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "poll";
  }

 private:
  FdTable table_;
  Poller poller_;
  std::vector<ReactorEvent> events_;
};

#ifdef __linux__

class EpollReactor final : public Reactor {
 public:
  EpollReactor() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    RCP_EXPECT(epfd_ >= 0, "epoll_create1() failed");
  }
  ~EpollReactor() override { ::close(epfd_); }
  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  void add(int fd, unsigned mask, std::uint64_t token) override {
    FdTable::Entry& e = table_.at(fd);
    RCP_EXPECT(!e.active, "EpollReactor::add: fd already registered");
    // Edge-triggered, both directions, forever: re-arming via epoll_ctl
    // per state change would put a syscall on every flush/pause; the
    // loop's sticky readable/writable flags filter instead. `mask` is
    // recorded only so modify() round-trips.
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = token;
    RCP_EXPECT(::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0,
               "epoll_ctl(ADD) failed");
    e = {true, mask, token};
    ++table_.active_count;
    if (events_.capacity() < table_.active_count) {
      events_.reserve(table_.active_count);
    }
  }

  void modify(int fd, unsigned mask, std::uint64_t token) override {
    FdTable::Entry& e = table_.at(fd);
    RCP_EXPECT(e.active, "EpollReactor::modify: fd not registered");
    if (e.token != token) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
      ev.data.u64 = token;
      RCP_EXPECT(::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                 "epoll_ctl(MOD) failed");
    }
    e.mask = mask;
    e.token = token;
  }

  void remove(int fd) override {
    FdTable::Entry& e = table_.at(fd);
    RCP_EXPECT(e.active, "EpollReactor::remove: fd not registered");
    // The fd is still open here (callers remove before close), so DEL
    // cannot fail with EBADF; failure means table/kernel state diverged.
    RCP_EXPECT(::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0,
               "epoll_ctl(DEL) failed");
    e = {};
    --table_.active_count;
  }

  int wait(int timeout_ms) override {
    events_.clear();
    if (kernel_events_.size() < table_.active_count + 1) {
      kernel_events_.resize(table_.active_count + 1);
    }
    const int rc =
        ::epoll_wait(epfd_, kernel_events_.data(),
                     static_cast<int>(kernel_events_.size()), timeout_ms);
    if (rc < 0) {
      return errno == EINTR ? 0 : rc;
    }
    for (int i = 0; i < rc; ++i) {
      const epoll_event& ev = kernel_events_[static_cast<std::size_t>(i)];
      unsigned mask = 0;
      if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        mask |= kRead;
      }
      if ((ev.events & EPOLLOUT) != 0) {
        mask |= kWrite;
      }
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        mask |= kError;
      }
      events_.push_back(ReactorEvent{-1, mask, ev.data.u64});
    }
    return rc;
  }

  [[nodiscard]] std::span<const ReactorEvent> events()
      const noexcept override {
    return events_;
  }

  [[nodiscard]] bool edge_triggered() const noexcept override {
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "epoll";
  }

 private:
  int epfd_ = -1;
  FdTable table_;
  std::vector<epoll_event> kernel_events_;
  std::vector<ReactorEvent> events_;
};

#endif  // __linux__

}  // namespace

std::unique_ptr<Reactor> Reactor::make(Backend backend) {
#ifdef __linux__
  if (backend == Backend::automatic || backend == Backend::epoll) {
    return std::make_unique<EpollReactor>();
  }
#else
  RCP_EXPECT(backend != Backend::epoll,
             "epoll backend requested on a platform without epoll");
#endif
  return std::make_unique<PollReactor>();
}

bool Reactor::epoll_available() noexcept {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

}  // namespace rcp::net
