#include "net/loop.hpp"

#include <algorithm>
#include <exception>

#include "net/node.hpp"

namespace rcp::net {

void EventLoop::run() {
  auto now = Clock::now();
  // This thread is now the driver of every attached node; each batch of
  // loop_* calls below re-asserts the affinity capability for the
  // analyzers (see Node::assert_driving).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    node.assert_driving();
    try {
      node.loop_start(*this, static_cast<std::uint32_t>(i), now);
    } catch (const std::exception& e) {
      node.assert_driving();  // catch blocks re-enter the analysis fresh
      node.loop_abort(e.what());
    }
  }

  while (true) {
    now = Clock::now();
    std::size_t active = 0;
    for (Node* node : nodes_) {
      if (node->finished()) {
        continue;
      }
      node->assert_driving();
      if (!node->loop_finished()) {
        try {
          node->loop_service(now);
        } catch (const std::exception& e) {
          node->assert_driving();
          node->loop_abort(e.what());
        }
      }
      if (node->loop_finished()) {
        node->loop_finish();
      } else {
        ++active;
      }
    }
    if (active == 0) {
      return;
    }

    now = Clock::now();
    int timeout_ms = 0x7fffffff;
    bool ready_now = false;
    for (Node* node : nodes_) {
      if (node->finished()) {
        continue;
      }
      node->assert_driving();
      timeout_ms = std::min(timeout_ms, node->loop_timeout_ms(now));
      ready_now = ready_now || node->loop_has_ready_work();
      if (!reactor_->edge_triggered()) {
        node->loop_refresh_masks(now);
      }
    }
    reactor_->wait(ready_now ? 0 : timeout_ms);
    for (const ReactorEvent& ev : reactor_->events()) {
      const auto idx = static_cast<std::size_t>(ev.token >> 32);
      if (idx < nodes_.size() && !nodes_[idx]->finished()) {
        Node& node = *nodes_[idx];
        node.assert_driving();
        node.loop_event(static_cast<std::uint32_t>(ev.token), ev.mask);
      }
    }
  }
}

}  // namespace rcp::net
