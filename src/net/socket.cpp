#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace rcp::net {

namespace {

// Every socket this module creates carries SOCK_NONBLOCK | SOCK_CLOEXEC
// from birth — set atomically in socket(2)/accept4(2) rather than via a
// follow-up fcntl, so there is no window where a concurrent fork() (the
// crash-isolation runner forks workers) inherits the descriptor or a
// blocking call sneaks in before the flags land.
constexpr int kSockFlags = SOCK_NONBLOCK | SOCK_CLOEXEC;

void set_nodelay(int fd) {
  // Consensus messages are tiny and latency-bound; Nagle batching would
  // serialize the phase exchanges.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[nodiscard]] sockaddr_in parse_addr(const std::string& host,
                                     std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  RCP_EXPECT(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "unparseable IPv4 address: " + host);
  return addr;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket listen_on(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | kSockFlags, 0));
  RCP_EXPECT(fd.valid(), "socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = parse_addr(host, port);
  RCP_EXPECT(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0,
             "bind() failed on " + host + ":" + std::to_string(port) + ": " +
                 std::strerror(errno));
  RCP_EXPECT(::listen(fd.get(), SOMAXCONN) == 0, "listen() failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  RCP_EXPECT(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                           &len) == 0,
             "getsockname() failed");
  ListenSocket out;
  out.fd = std::move(fd);
  out.port = ntohs(bound.sin_port);
  return out;
}

Fd accept_on(const Fd& listener) {
  const int fd = ::accept4(listener.get(), nullptr, nullptr, kSockFlags);
  if (fd < 0) {
    return Fd{};
  }
  Fd out(fd);
  set_nodelay(fd);
  return out;
}

Fd dial_start(const PeerAddress& peer) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | kSockFlags, 0));
  RCP_EXPECT(fd.valid(), "socket() failed");
  set_nodelay(fd.get());
  sockaddr_in addr = parse_addr(peer.host, peer.port);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0 || errno == EINPROGRESS) {
    return fd;
  }
  // Immediate refusal (no listener yet): surface an invalid fd so the
  // caller schedules a backoff retry instead of throwing — peers racing
  // through startup is the normal case, not an error.
  return Fd{};
}

int dial_result(const Fd& fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno != 0 ? errno : EBADF;
  }
  return err;
}

void set_rcvbuf(const Fd& fd, int bytes) {
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

void set_sndbuf(const Fd& fd, int bytes) {
  ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

std::size_t raise_fd_limit(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    return 0;
  }
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = lim.rlim_max == RLIM_INFINITY
                          ? static_cast<rlim_t>(want)
                          : std::min(static_cast<rlim_t>(want), lim.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
      lim = raised;
    }
  }
  return lim.rlim_cur == RLIM_INFINITY ? want
                                       : static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace rcp::net
