#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace rcp::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  RCP_EXPECT(flags >= 0, "fcntl(F_GETFL) failed");
  RCP_EXPECT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(F_SETFL, O_NONBLOCK) failed");
}

void set_nodelay(int fd) {
  // Consensus messages are tiny and latency-bound; Nagle batching would
  // serialize the phase exchanges.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[nodiscard]] sockaddr_in parse_addr(const std::string& host,
                                     std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  RCP_EXPECT(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "unparseable IPv4 address: " + host);
  return addr;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket listen_on(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  RCP_EXPECT(fd.valid(), "socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = parse_addr(host, port);
  RCP_EXPECT(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0,
             "bind() failed on " + host + ":" + std::to_string(port) + ": " +
                 std::strerror(errno));
  RCP_EXPECT(::listen(fd.get(), SOMAXCONN) == 0, "listen() failed");
  set_nonblocking(fd.get());

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  RCP_EXPECT(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                           &len) == 0,
             "getsockname() failed");
  ListenSocket out;
  out.fd = std::move(fd);
  out.port = ntohs(bound.sin_port);
  return out;
}

Fd accept_on(const Fd& listener) {
  const int fd = ::accept(listener.get(), nullptr, nullptr);
  if (fd < 0) {
    return Fd{};
  }
  Fd out(fd);
  set_nonblocking(fd);
  set_nodelay(fd);
  return out;
}

Fd dial_start(const PeerAddress& peer) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  RCP_EXPECT(fd.valid(), "socket() failed");
  set_nonblocking(fd.get());
  set_nodelay(fd.get());
  sockaddr_in addr = parse_addr(peer.host, peer.port);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0 || errno == EINPROGRESS) {
    return fd;
  }
  // Immediate refusal (no listener yet): surface an invalid fd so the
  // caller schedules a backoff retry instead of throwing — peers racing
  // through startup is the normal case, not an error.
  return Fd{};
}

int dial_result(const Fd& fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno != 0 ? errno : EBADF;
  }
  return err;
}

}  // namespace rcp::net
