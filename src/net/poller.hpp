// poll(2)-based readiness multiplexer — the portable half of the Reactor
// abstraction (net/reactor.hpp).
//
// The interest set is rebuilt each iteration from the caller's current
// state, which keeps the connection state machine authoritative and the
// poller stateless. Readiness lookups are O(1): wait() scatters revents
// into an fd-indexed table, so a loop serving hundreds of descriptors
// does not rescan the interest vector per query (the old linear ready()
// made large-n fallback loops quadratic per iteration).
#pragma once

#include <poll.h>

#include <cstdint>
#include <vector>

namespace rcp::net {

class Poller {
 public:
  static constexpr short kRead = POLLIN;
  static constexpr short kWrite = POLLOUT;

  /// Clears the interest set (start of a loop iteration).
  void clear() noexcept { fds_.clear(); }

  /// Adds a descriptor with the given interest mask.
  void want(int fd, short events) {
    fds_.push_back(pollfd{fd, events, 0});
  }

  /// Blocks up to timeout_ms (0 = return immediately, negative = forever).
  /// Returns the number of ready descriptors; EINTR counts as zero ready.
  int wait(int timeout_ms);

  /// Ready events for `fd` from the last wait() (0 if absent/not ready).
  /// POLLERR/POLLHUP are always reported by the kernel regardless of the
  /// interest mask; callers treat them as readable so the subsequent
  /// read() observes the error/EOF.
  [[nodiscard]] short ready(int fd) const noexcept {
    const auto i = static_cast<std::size_t>(fd);
    return fd >= 0 && i < ready_.size() ? ready_[i] : short{0};
  }

  [[nodiscard]] std::size_t watched() const noexcept { return fds_.size(); }

 private:
  std::vector<pollfd> fds_;
  /// fd-indexed revents from the last wait(); sized to the max watched fd.
  std::vector<short> ready_;
};

}  // namespace rcp::net
