// poll(2)-based readiness multiplexer for the Node event loop.
//
// One Node watches a handful of descriptors (listener, one socket per
// peer, a wakeup pipe), so poll() is the right tool: the interest set is
// rebuilt each iteration from the loop's current state, which keeps the
// connection state machine authoritative and the poller stateless.
#pragma once

#include <poll.h>

#include <cstdint>
#include <vector>

namespace rcp::net {

class Poller {
 public:
  static constexpr short kRead = POLLIN;
  static constexpr short kWrite = POLLOUT;

  /// Clears the interest set (start of a loop iteration).
  void clear() noexcept { fds_.clear(); }

  /// Adds a descriptor with the given interest mask.
  void want(int fd, short events) {
    fds_.push_back(pollfd{fd, events, 0});
  }

  /// Blocks up to timeout_ms (0 = return immediately, negative = forever).
  /// Returns the number of ready descriptors; EINTR counts as zero ready.
  int wait(int timeout_ms);

  /// Ready events for `fd` from the last wait() (0 if absent/not ready).
  /// POLLERR/POLLHUP are always reported by the kernel regardless of the
  /// interest mask; callers treat them as readable so the subsequent
  /// read() observes the error/EOF.
  [[nodiscard]] short ready(int fd) const noexcept;

 private:
  std::vector<pollfd> fds_;
};

}  // namespace rcp::net
