// JSON export for cluster runs (schema "rcp-net-v1"), written with the
// repo's one JSON emitter (bench/bench_json.hpp) so the artifacts sit next
// to the simulator's rcp-bench-v1 reports and are consumed the same way
// (python -c "json.load(...)" one-liners; see docs/PERF.md).
//
// Layout:
//   { schema, protocol, n, seed, loop_threads, backend,
//     all_correct_decided, agreement, timed_out, value,
//     elapsed_seconds,
//     totals: { delivered, sent, bytes_out, reconnects, retransmits,
//               spurious_retransmits, msgs_per_sec, decisions_per_sec,
//               latency: { count, mean_ms, p50_ms, p99_ms, p999_ms } },
//     nodes: [ { id, correct, decision, phase, crashed, error,
//                events, msgs_sent, msgs_delivered, read_pauses,
//                latency: { count, mean_ms, p50_ms, p99_ms, p999_ms },
//                peers: [ { bytes_out, bytes_in, msgs_out, msgs_in,
//                           reconnects, retransmits, spurious_retransmits,
//                           drops_injected, delays_injected, dup_frames,
//                           gap_frames, overflow_drops,
//                           queue_peak } ] } ] }
//
// Latency is per-frame enqueue → cumulative-ack release at the sender:
// it covers queueing, the vectored send, the peer's delivery and its ack
// coming back — the transport's full round trip, not the process logic.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/json.hpp"
#include "common/types.hpp"
#include "net/cluster.hpp"
#include "net/stats.hpp"

namespace rcp::net {

inline void write_latency(bench::JsonWriter& j,
                          const LatencyHistogram& h) {
  j.key("latency");
  j.begin_object();
  j.field("count", h.count());
  j.field("mean_ms", h.mean_ms());
  j.field("p50_ms", h.quantile_ms(0.50));
  j.field("p99_ms", h.quantile_ms(0.99));
  j.field("p999_ms", h.quantile_ms(0.999));
  j.end_object();
}

inline void write_peer_counters(bench::JsonWriter& j,
                                const PeerCounters& pc) {
  j.begin_object();
  j.field("bytes_out", pc.bytes_out);
  j.field("bytes_in", pc.bytes_in);
  j.field("msgs_out", pc.msgs_out);
  j.field("msgs_in", pc.msgs_in);
  j.field("reconnects", pc.reconnects);
  j.field("retransmits", pc.retransmits);
  j.field("spurious_retransmits", pc.spurious_retransmits);
  j.field("drops_injected", pc.drops_injected);
  j.field("delays_injected", pc.delays_injected);
  j.field("dup_frames", pc.dup_frames);
  j.field("gap_frames", pc.gap_frames);
  j.field("overflow_drops", pc.overflow_drops);
  j.field("queue_peak", static_cast<std::uint64_t>(pc.queue_peak));
  j.end_object();
}

inline void write_node_outcome(bench::JsonWriter& j,
                               const NodeOutcome& node) {
  j.begin_object();
  j.field("id", static_cast<std::uint64_t>(node.id));
  j.field("correct", node.correct);
  j.key("decision");
  if (node.decision.has_value()) {
    j.value(static_cast<std::uint64_t>(value_index(*node.decision)));
  } else {
    j.value("none");
  }
  j.field("phase", static_cast<std::uint64_t>(node.phase));
  j.field("crashed", node.crashed);
  j.field("error", node.error);
  j.field("events", node.stats.events);
  j.field("msgs_sent", node.stats.msgs_sent);
  j.field("msgs_delivered", node.stats.msgs_delivered);
  j.field("read_pauses", node.stats.read_pauses);
  write_latency(j, node.stats.latency);
  j.key("peers");
  j.begin_array();
  for (const PeerCounters& pc : node.stats.peers) {
    write_peer_counters(j, pc);
  }
  j.end_array();
  j.end_object();
}

/// Writes one complete rcp-net-v1 report object for a finished run.
inline void write_cluster_report(bench::JsonWriter& j,
                                 std::string_view protocol,
                                 const ClusterConfig& cfg,
                                 const ClusterResult& result) {
  j.begin_object();
  j.field("schema", "rcp-net-v1");
  j.field("protocol", protocol);
  j.field("n", cfg.n);
  j.field("seed", cfg.seed);
  j.field("loop_threads", cfg.loop_threads);
  j.field("backend", [&]() -> std::string_view {
    switch (cfg.backend) {
      case Reactor::Backend::poll:
        return "poll";
      case Reactor::Backend::epoll:
        return "epoll";
      case Reactor::Backend::automatic:
        break;
    }
    return Reactor::epoll_available() ? "epoll" : "poll";
  }());
  j.field("all_correct_decided", result.all_correct_decided);
  j.field("agreement", result.agreement);
  j.field("timed_out", result.timed_out);
  j.key("value");
  if (result.value.has_value()) {
    j.value(static_cast<std::uint64_t>(value_index(*result.value)));
  } else {
    j.value("none");
  }
  j.field("elapsed_seconds", result.elapsed_seconds);

  std::uint64_t decided = 0;
  for (const NodeOutcome& node : result.nodes) {
    if (node.decision.has_value()) {
      ++decided;
    }
  }
  const double elapsed =
      result.elapsed_seconds > 0.0 ? result.elapsed_seconds : 1e-9;
  j.key("totals");
  j.begin_object();
  j.field("delivered", result.total_delivered);
  j.field("sent", result.total_sent);
  j.field("bytes_out", result.total_bytes_out);
  j.field("reconnects", result.total_reconnects);
  j.field("retransmits", result.total_retransmits);
  j.field("spurious_retransmits", result.total_spurious_retransmits);
  j.field("msgs_per_sec",
          static_cast<double>(result.total_delivered) / elapsed);
  j.field("decisions_per_sec", static_cast<double>(decided) / elapsed);
  LatencyHistogram merged;
  for (const NodeOutcome& node : result.nodes) {
    merged.merge(node.stats.latency);
  }
  write_latency(j, merged);
  j.end_object();

  j.key("nodes");
  j.begin_array();
  for (const NodeOutcome& node : result.nodes) {
    write_node_outcome(j, node);
  }
  j.end_array();
  j.end_object();
}

}  // namespace rcp::net
