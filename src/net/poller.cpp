#include "net/poller.hpp"

#include <algorithm>
#include <cerrno>

namespace rcp::net {

int Poller::wait(int timeout_ms) {
  // Drop stale readiness before blocking so ready() can never report an
  // event from a previous iteration against a recycled fd.
  std::fill(ready_.begin(), ready_.end(), short{0});
  const int rc = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (rc < 0) {
    return errno == EINTR ? 0 : rc;
  }
  if (rc > 0) {
    for (const pollfd& p : fds_) {
      if (p.revents == 0 || p.fd < 0) {
        continue;
      }
      const auto i = static_cast<std::size_t>(p.fd);
      if (i >= ready_.size()) {
        ready_.resize(i + 1, 0);
      }
      ready_[i] = p.revents;
    }
  }
  return rc;
}

}  // namespace rcp::net
