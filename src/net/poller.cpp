#include "net/poller.hpp"

#include <cerrno>

namespace rcp::net {

int Poller::wait(int timeout_ms) {
  const int rc = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) {
      for (pollfd& p : fds_) {
        p.revents = 0;
      }
      return 0;
    }
    return rc;
  }
  return rc;
}

short Poller::ready(int fd) const noexcept {
  for (const pollfd& p : fds_) {
    if (p.fd == fd) {
      return p.revents;
    }
  }
  return 0;
}

}  // namespace rcp::net
