#include "net/fault.hpp"

#include "common/error.hpp"

namespace rcp::net {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed), fired_(plan_.disconnects.size()) {
  RCP_EXPECT(plan_.link.delay_min_ms <= plan_.link.delay_max_ms,
             "delay_min_ms must not exceed delay_max_ms");
  RCP_EXPECT(plan_.link.drop_probability >= 0.0 &&
                 plan_.link.drop_probability < 1.0,
             "drop_probability must be in [0, 1)");
}

bool FaultInjector::should_drop() {
  return plan_.link.drop_probability > 0.0 &&
         rng_.bernoulli(plan_.link.drop_probability);
}

std::uint32_t FaultInjector::delay_ms() {
  if (plan_.link.delay_max_ms == 0) {
    return 0;
  }
  return static_cast<std::uint32_t>(
      rng_.range(plan_.link.delay_min_ms, plan_.link.delay_max_ms));
}

std::vector<ProcessId> FaultInjector::due_disconnects(
    std::uint64_t delivered) {
  std::vector<ProcessId> due;
  for (std::size_t i = 0; i < plan_.disconnects.size(); ++i) {
    if (!fired_[i] && delivered >= plan_.disconnects[i].after_delivered) {
      fired_[i] = true;
      due.push_back(plan_.disconnects[i].peer);
    }
  }
  return due;
}

}  // namespace rcp::net
