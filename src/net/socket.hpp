// Thin RAII layer over POSIX TCP sockets (IPv4, non-blocking).
//
// Everything the transport needs from the OS lives here: an owning file
// descriptor, loopback/TCP listeners with ephemeral-port discovery, and
// non-blocking dial. No I/O policy — reading, writing and state machines
// belong to the Node event loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace rcp::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() noexcept = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// A network endpoint. Only IPv4 dotted-quad hosts are supported (the
/// transport targets loopback clusters and LAN meshes).
struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// A bound, listening, non-blocking TCP socket and the port it actually
/// got (meaningful when asked for port 0 — the ephemeral-port pattern the
/// in-process cluster uses so parallel test runs never collide).
struct ListenSocket {
  Fd fd;
  std::uint16_t port = 0;
};

/// Binds and listens on `host:port` (port 0 picks an ephemeral port).
/// Throws rcp::Error on any failure.
[[nodiscard]] ListenSocket listen_on(const std::string& host,
                                     std::uint16_t port);

/// Accepts one pending connection; invalid Fd if none is pending.
/// The returned socket is non-blocking with TCP_NODELAY set.
[[nodiscard]] Fd accept_on(const Fd& listener);

/// Starts a non-blocking connect. The returned fd is usually mid-connect
/// (EINPROGRESS): poll it for writability and check dial_result().
/// Throws rcp::Error if the address is unparseable or socket() fails.
[[nodiscard]] Fd dial_start(const PeerAddress& addr);

/// After a dialing fd polls writable: 0 on success, else the errno that
/// killed the connect.
[[nodiscard]] int dial_result(const Fd& fd);

/// Shrinks the socket's kernel receive buffer (SO_RCVBUF) to roughly
/// `bytes`. Test hook: a tiny receive window forces short writev()
/// returns on the sender so partial-write handling gets exercised.
void set_rcvbuf(const Fd& fd, int bytes);

/// Shrinks the socket's kernel send buffer (SO_SNDBUF) to roughly
/// `bytes`. Test hook: a tiny send window forces short vectored writes,
/// exercising the partial-frame spill path.
void set_sndbuf(const Fd& fd, int bytes);

/// Best-effort bump of RLIMIT_NOFILE so a full-mesh loopback cluster
/// (n nodes ≈ n² sockets) does not die on EMFILE. Returns the resulting
/// soft limit; never throws — callers with modest n work under defaults.
std::size_t raise_fd_limit(std::size_t want);

}  // namespace rcp::net
