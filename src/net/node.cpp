#include "net/node.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "runtime/seeding.hpp"

namespace rcp::net {

namespace {

using std::chrono::milliseconds;

constexpr std::size_t kReadChunk = 16 * 1024;
/// Encode stage stops growing a link's write buffer past this; the rest
/// of the queue waits for the kernel to drain it.
constexpr std::size_t kWriteBufCap = 256 * 1024;

[[nodiscard]] bool is_unarmed(Clock::time_point tp) noexcept {
  return tp == Clock::time_point{};
}

}  // namespace

// Context implementation bound to this node for the duration of one
// delivered message (or on_start). Sends enqueue onto the peer links /
// local inbox; the loop flushes after the callback returns, mirroring the
// simulator's atomic-step semantics.
class Node::LoopContext final : public sim::Context {
 public:
  explicit LoopContext(Node& node) noexcept : node_(node) {}

  [[nodiscard]] ProcessId self() const noexcept override {
    return node_.cfg_.id;
  }
  [[nodiscard]] std::uint32_t n() const noexcept override {
    return node_.cfg_.n;
  }
  [[nodiscard]] std::uint64_t step() const noexcept override {
    return node_.stats_.events;
  }

  void send(ProcessId to, Bytes payload) override {
    RCP_EXPECT(to < node_.cfg_.n, "send to unknown process");
    node_.send_from_process(to, std::move(payload));
  }

  void broadcast(const Bytes& payload) override {
    for (ProcessId q = 0; q < node_.cfg_.n; ++q) {
      node_.send_from_process(q, payload);
    }
  }

  void decide(Value v) override { node_.record_decision(v); }

  [[nodiscard]] Rng& rng() noexcept override { return node_.process_rng_; }

 private:
  Node& node_;
};

Node::Node(NodeConfig cfg, std::unique_ptr<sim::Process> process)
    : cfg_(std::move(cfg)),
      process_(std::move(process)),
      process_rng_(runtime::trial_seed(cfg_.seed, cfg_.id)),
      faults_(cfg_.faults,
              runtime::trial_seed(cfg_.seed ^ runtime::kSplitMix64Gamma,
                                  cfg_.id)) {
  RCP_EXPECT(cfg_.n >= 1, "node needs a cluster size of at least 1");
  RCP_EXPECT(cfg_.id < cfg_.n, "node id outside [0, n)");
  RCP_EXPECT(process_ != nullptr, "null process");
  RCP_EXPECT(cfg_.peers.empty() || cfg_.peers.size() == cfg_.n,
             "peer table must have one entry per node");
  cfg_.peers.resize(cfg_.n);
  links_.resize(cfg_.n);
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    // Dial direction: higher id dials lower, so every pair has exactly
    // one connection and dial races are impossible.
    links_[p].init(p, cfg_.peers[p], /*dialer=*/p < cfg_.id);
  }
  stats_.peers.resize(cfg_.n);

  int fds[2] = {-1, -1};
  RCP_EXPECT(::pipe(fds) == 0, "pipe() failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  for (const int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

Node::~Node() {
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
  }
  if (wake_wr_ >= 0) {
    ::close(wake_wr_);
  }
}

std::uint16_t Node::listen() {
  if (!listening_) {
    listener_ = listen_on(cfg_.listen_host, cfg_.listen_port);
    listening_ = true;
  }
  return listener_.port;
}

void Node::set_peer(ProcessId p, PeerAddress addr) {
  RCP_EXPECT(p < cfg_.n, "unknown peer id");
  cfg_.peers[p] = addr;
  links_[p].init(p, std::move(addr), links_[p].dialer());
}

void Node::request_stop() {
  stop_.store(true, std::memory_order_release);
  const char byte = 'w';
  [[maybe_unused]] const auto rc = ::write(wake_wr_, &byte, 1);
}

std::optional<Value> Node::decision() const noexcept {
  const int d = decision_published_.load(std::memory_order_acquire);
  if (d < 0) {
    return std::nullopt;
  }
  return d == 0 ? Value::zero : Value::one;
}

void Node::run() {
  try {
    run_loop();
  } catch (const std::exception& e) {
    error_ = e.what();
  }
  close_all();
  if (crash_pending_) {
    crashed_.store(true, std::memory_order_release);
  }
}

void Node::run_loop() {
  listen();
  LoopContext ctx(*this);
  process_->on_start(ctx);
  after_event();
  if (cfg_.limits.idle_tick_ms != 0) {
    next_idle_tick_ = Clock::now() + milliseconds(cfg_.limits.idle_tick_ms);
  }

  while (!stop_.load(std::memory_order_acquire) && !crash_pending_) {
    auto now = Clock::now();
    apply_due_disconnects(now);
    start_due_dials(now);
    build_interest_set(now);
    poller_.wait(poll_timeout_ms(now));

    if ((poller_.ready(wake_rd_) & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
      }
    }

    now = Clock::now();
    accept_new_connections(now);
    service_pending(now);
    service_links(now);
    if (crash_pending_) {
      break;
    }
    deliver_local_once();
    check_timers(now);
    if (cfg_.limits.idle_tick_ms != 0 && now >= next_idle_tick_) {
      // Service tick: give the process a null step (the paper's phi) so it
      // can originate work that arrived outside the message stream.
      process_->on_null(ctx);
      after_event();
      next_idle_tick_ = now + milliseconds(cfg_.limits.idle_tick_ms);
    }

    // Flush sends generated by local deliveries / retransmit rewinds, and
    // recompute backpressure from the resulting queue depths.
    for (PeerLink& link : links_) {
      if (link.fd.valid()) {
        flush_link(link, now);
      }
      const bool pause =
          link.queue_depth() >= cfg_.limits.backpressure_high_water;
      if (pause && !link.read_paused) {
        ++stats_.read_pauses;
      }
      link.read_paused = pause;
    }
  }
}

void Node::build_interest_set(Clock::time_point now) {
  poller_.clear();
  poller_.want(wake_rd_, Poller::kRead);
  if (listener_.fd.valid()) {
    poller_.want(listener_.fd.get(), Poller::kRead);
  }
  for (const PendingConn& pc : pending_) {
    poller_.want(pc.fd.get(), Poller::kRead);
  }
  for (PeerLink& link : links_) {
    if (!link.fd.valid()) {
      continue;
    }
    short events = 0;
    switch (link.state) {
      case PeerLink::State::connecting:
        events = Poller::kWrite;
        break;
      case PeerLink::State::hello_sent:
        events = Poller::kRead;
        if (link.write_off < link.write_buf.size()) {
          events |= Poller::kWrite;
        }
        break;
      case PeerLink::State::established:
        if (!link.read_paused) {
          events |= Poller::kRead;
        }
        if (link.write_off < link.write_buf.size() ||
            link.transmittable(now) || link.ack_pending) {
          events |= Poller::kWrite;
        }
        break;
      case PeerLink::State::idle:
        break;
    }
    poller_.want(link.fd.get(), events);
  }
}

int Node::poll_timeout_ms(Clock::time_point now) const {
  auto best = now + milliseconds(cfg_.limits.poll_cap_ms);
  const auto consider = [&](Clock::time_point tp) {
    if (!is_unarmed(tp) && tp < best) {
      best = tp;
    }
  };
  for (const PeerLink& link : links_) {
    if (link.dialer() && link.state == PeerLink::State::idle) {
      consider(link.next_dial_at);
    }
    consider(link.handshake_deadline);
    if (link.in_flight()) {
      consider(link.retransmit_deadline);
    }
    if (link.state == PeerLink::State::established) {
      const auto eligible = link.next_eligible_at();
      if (eligible != Clock::time_point::max()) {
        consider(eligible);
      }
    }
  }
  for (const PendingConn& pc : pending_) {
    consider(pc.deadline);
  }
  if (!local_inbox_.empty()) {
    // Self-requeued messages retry on a short tick instead of spinning.
    consider(now + milliseconds(1));
  }
  if (cfg_.limits.idle_tick_ms != 0) {
    consider(next_idle_tick_);
  }
  const auto delta = best - now;
  if (delta <= Clock::duration::zero()) {
    return 0;
  }
  const auto ms =
      std::chrono::duration_cast<milliseconds>(delta).count() + 1;
  return static_cast<int>(
      std::min<long long>(ms, cfg_.limits.poll_cap_ms));
}

void Node::apply_due_disconnects(Clock::time_point now) {
  for (const ProcessId p : faults_.due_disconnects(stats_.msgs_delivered)) {
    if (p < cfg_.n && p != cfg_.id && links_[p].fd.valid()) {
      reset_link(links_[p], now);
    }
  }
}

void Node::start_due_dials(Clock::time_point now) {
  for (PeerLink& link : links_) {
    if (!link.dialer() || link.state != PeerLink::State::idle ||
        link.fd.valid() || link.next_dial_at > now) {
      continue;
    }
    Fd fd = dial_start(link.addr());
    if (!fd.valid()) {
      // Immediate refusal — peer not up yet; back off and retry.
      link.backoff_ms = link.backoff_ms == 0
                            ? cfg_.limits.reconnect_initial_ms
                            : std::min(link.backoff_ms * 2,
                                       cfg_.limits.reconnect_max_ms);
      link.next_dial_at = now + milliseconds(link.backoff_ms);
      continue;
    }
    link.fd = std::move(fd);
    link.state = PeerLink::State::connecting;
    link.handshake_deadline =
        now + milliseconds(cfg_.limits.handshake_timeout_ms);
  }
}

void Node::accept_new_connections(Clock::time_point now) {
  if (!listener_.fd.valid() ||
      (poller_.ready(listener_.fd.get()) & POLLIN) == 0) {
    return;
  }
  while (true) {
    Fd conn = accept_on(listener_.fd);
    if (!conn.valid()) {
      break;
    }
    PendingConn pc;
    pc.fd = std::move(conn);
    pc.deadline = now + milliseconds(cfg_.limits.handshake_timeout_ms);
    pending_.push_back(std::move(pc));
  }
}

void Node::service_pending(Clock::time_point now) {
  for (std::size_t i = 0; i < pending_.size();) {
    PendingConn& pc = pending_[i];
    const short revents = poller_.ready(pc.fd.get());
    if ((revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
      ++i;
      continue;
    }
    bool drop = false;
    std::byte buf[kReadChunk];
    while (true) {
      const ssize_t got = ::read(pc.fd.get(), buf, sizeof(buf));
      if (got > 0) {
        pc.decoder.feed({buf, static_cast<std::size_t>(got)});
        if (got == static_cast<ssize_t>(sizeof(buf))) {
          continue;
        }
        break;
      }
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (got < 0 && errno == EINTR) {
        continue;
      }
      drop = true;  // EOF or hard error before the handshake finished
      break;
    }
    if (!drop) {
      try {
        if (const auto frame = pc.decoder.next()) {
          if (frame->type == FrameType::hello && frame->n == cfg_.n &&
              frame->node_id < cfg_.n && frame->node_id > cfg_.id) {
            attach_pending(i, frame->node_id);
            continue;  // pending_[i] replaced by erase; do not ++i
          }
          drop = true;  // wrong identity or direction
        }
      } catch (const DecodeError&) {
        drop = true;
      }
    }
    if (drop) {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  // Handshake timeouts.
  std::erase_if(pending_, [&](const PendingConn& pc) {
    return pc.deadline <= now;
  });
}

void Node::attach_pending(std::size_t index, ProcessId peer) {
  const auto now = Clock::now();
  PeerLink& link = links_[peer];
  if (link.fd.valid()) {
    // The peer abandoned its previous connection (one-sided close) and
    // dialed again; the new connection supersedes the stale one.
    reset_link(link, now);
  }
  link.fd = std::move(pending_[index].fd);
  link.decoder = std::move(pending_[index].decoder);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
  link.write_buf.clear();
  link.write_off = 0;
  append_hello(link.write_buf, cfg_.id, cfg_.n);  // handshake reply
  establish_link(link);
  // Frames that arrived right behind the hello are already buffered in
  // the decoder; process them now.
  process_link_input(link);
  flush_link(link, now);
}

void Node::establish_link(PeerLink& link) {
  link.state = PeerLink::State::established;
  link.handshake_deadline = {};
  link.retransmit_deadline = {};
  if (link.ever_connected) {
    ++link.counters.reconnects;
  }
  link.ever_connected = true;
  link.backoff_ms = 0;
  link.stale_acks = 0;
  // Retransmit everything unacked: bytes in flight on the old connection
  // may be lost; the receiver's dedupe discards what did arrive.
  link.rewind_unsent();
  if (link.delivered_seq() > 0) {
    // Tell the peer where our inbound stream stands so it can release
    // acked frames immediately after the reconnect.
    link.ack_pending = true;
  }
}

void Node::reset_link(PeerLink& link, Clock::time_point now) {
  link.fd.reset();
  link.decoder = FrameDecoder{};
  link.write_buf.clear();
  link.write_off = 0;
  link.ack_pending = false;
  link.read_paused = false;
  link.stale_acks = 0;
  link.handshake_deadline = {};
  link.retransmit_deadline = {};
  link.state = PeerLink::State::idle;
  if (link.dialer()) {
    link.backoff_ms = link.backoff_ms == 0
                          ? cfg_.limits.reconnect_initial_ms
                          : std::min(link.backoff_ms * 2,
                                     cfg_.limits.reconnect_max_ms);
    link.next_dial_at = now + milliseconds(link.backoff_ms);
  }
}

void Node::service_links(Clock::time_point now) {
  for (PeerLink& link : links_) {
    if (!link.fd.valid()) {
      continue;
    }
    const short revents = poller_.ready(link.fd.get());

    if (link.state == PeerLink::State::connecting) {
      if ((revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        if (dial_result(link.fd) != 0) {
          reset_link(link, now);
          continue;
        }
        append_hello(link.write_buf, cfg_.id, cfg_.n);
        link.state = PeerLink::State::hello_sent;
        flush_link(link, now);
      }
      continue;
    }

    const bool may_read =
        link.state == PeerLink::State::hello_sent || !link.read_paused;
    if (may_read && (revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      if (!read_socket(link)) {
        reset_link(link, now);
        continue;
      }
      try {
        process_link_input(link);
      } catch (const DecodeError&) {
        reset_link(link, now);
        continue;
      }
      if (crash_pending_) {
        return;
      }
    }
    if (link.fd.valid()) {
      flush_link(link, now);
    }
  }
}

bool Node::read_socket(PeerLink& link) {
  std::byte buf[kReadChunk];
  while (true) {
    const ssize_t got = ::read(link.fd.get(), buf, sizeof(buf));
    if (got > 0) {
      link.counters.bytes_in += static_cast<std::uint64_t>(got);
      link.decoder.feed({buf, static_cast<std::size_t>(got)});
      if (got == static_cast<ssize_t>(sizeof(buf))) {
        continue;
      }
      return true;
    }
    if (got == 0) {
      return false;  // orderly EOF
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;
  }
}

void Node::process_link_input(PeerLink& link) {
  const auto now = Clock::now();
  while (link.fd.valid()) {
    const auto frame = link.decoder.next();
    if (!frame.has_value()) {
      return;
    }
    switch (link.state) {
      case PeerLink::State::hello_sent: {
        if (frame->type != FrameType::hello ||
            frame->node_id != link.peer() || frame->n != cfg_.n) {
          reset_link(link, now);
          return;
        }
        establish_link(link);
        break;
      }
      case PeerLink::State::established: {
        switch (frame->type) {
          case FrameType::data:
            deliver_data(link, Frame(*frame));
            break;
          case FrameType::ack: {
            const std::size_t before = link.queue_depth();
            link.on_ack(frame->seq);
            if (link.queue_depth() != before) {
              // Ack progress restarts (or disarms) the retransmit clock.
              link.stale_acks = 0;
              link.retransmit_deadline =
                  link.in_flight()
                      ? now + milliseconds(cfg_.limits.retransmit_timeout_ms)
                      : Clock::time_point{};
            } else if (link.in_flight() && ++link.stale_acks >= 2) {
              // Fast retransmit: the peer acks every arrival, so repeated
              // acks with no progress mean it is discarding ahead-of-stream
              // frames behind a loss. Rewind now instead of stalling for
              // the full retransmit timeout.
              link.stale_acks = 0;
              link.rewind_unsent();
              link.retransmit_deadline =
                  now + milliseconds(cfg_.limits.retransmit_timeout_ms);
            }
            break;
          }
          case FrameType::hello:
            reset_link(link, now);  // handshake frames after establishment
            return;
        }
        break;
      }
      case PeerLink::State::idle:
      case PeerLink::State::connecting:
        reset_link(link, now);
        return;
    }
    if (crash_pending_ || stop_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

void Node::deliver_data(PeerLink& link, Frame&& frame) {
  link.ack_pending = true;  // dup, gap and delivery all re-ack the stream
  if (link.classify_and_advance(frame.seq) != 0) {
    return;
  }
  ++stats_.msgs_delivered;
  sim::Envelope env;
  env.sender = link.peer();  // handshake-authenticated, never payload bytes
  env.receiver = cfg_.id;
  env.payload = std::move(frame.payload);
  env.sent_at_step = 0;
  env.seq = frame.seq;
  LoopContext ctx(*this);
  try {
    process_->on_message(ctx, env);
  } catch (const DecodeError&) {
    // Byzantine payload garbage is dropped, never fatal (same contract as
    // the protocols' own decode guards).
  }
  after_event();
  // Disconnect events are keyed on the delivered-message count, so they
  // must be applied between deliveries — a reset of the link currently
  // being drained discards the rest of its decoder buffer, exactly the
  // bytes that die with a real connection.
  apply_due_disconnects(Clock::now());
}

void Node::deliver_local_once() {
  if (local_inbox_.empty() || crash_pending_) {
    return;
  }
  // One pass over the messages present now; requeues generated during the
  // pass wait for the next loop iteration (the paper's requeue device
  // must not spin faster than network progress).
  std::vector<sim::Envelope> batch;
  batch.swap(local_inbox_);
  for (sim::Envelope& env : batch) {
    ++stats_.msgs_delivered;
    LoopContext ctx(*this);
    try {
      process_->on_message(ctx, env);
    } catch (const DecodeError&) {
    }
    after_event();
    apply_due_disconnects(Clock::now());
    if (crash_pending_ || stop_.load(std::memory_order_acquire)) {
      return;  // a crashed process loses its remaining buffered messages
    }
  }
}

void Node::send_from_process(ProcessId to, Bytes payload) {
  ++stats_.msgs_sent;
  if (to == cfg_.id) {
    sim::Envelope env;
    env.sender = cfg_.id;
    env.receiver = cfg_.id;
    env.payload = std::move(payload);
    env.sent_at_step = 0;
    env.seq = ++local_seq_;
    local_inbox_.push_back(std::move(env));
    return;
  }
  PeerLink& link = links_[to];
  const auto now = Clock::now();
  const std::uint32_t delay = faults_.delay_ms();
  if (delay > 0) {
    ++link.counters.delays_injected;
  }
  // At the queue bound the newest message is dropped (counted by the
  // link): the peer has been unable to drain for longer than the bound
  // covers, and to this sender it now behaves like a faulty process that
  // lost the message — which the protocols tolerate. The queued stream is
  // never cut, so delivery resumes seamlessly if the peer recovers.
  (void)link.enqueue(std::move(payload), now + milliseconds(delay),
                     cfg_.limits.max_queued_frames);
}

void Node::record_decision(Value v) {
  if (decision_.has_value()) {
    RCP_INVARIANT(*decision_ == v,
                  "process attempted to change its one-shot decision");
    return;
  }
  decision_ = v;
  decision_published_.store(static_cast<int>(value_index(v)),
                            std::memory_order_release);
}

void Node::after_event() {
  ++stats_.events;
  const Phase phase = process_->phase();
  phase_published_.store(phase, std::memory_order_release);
  if (cfg_.crash_at_phase.has_value() && phase >= *cfg_.crash_at_phase) {
    crash_pending_ = true;  // fail-stop: death without warning messages
  }
}

void Node::check_timers(Clock::time_point now) {
  for (PeerLink& link : links_) {
    if (!link.fd.valid()) {
      continue;
    }
    if ((link.state == PeerLink::State::connecting ||
         link.state == PeerLink::State::hello_sent) &&
        !is_unarmed(link.handshake_deadline) &&
        link.handshake_deadline <= now) {
      reset_link(link, now);
      continue;
    }
    if (link.state == PeerLink::State::established && link.in_flight() &&
        !is_unarmed(link.retransmit_deadline) &&
        link.retransmit_deadline <= now) {
      // No ack progress: assume loss (injected or real) and go back to
      // the first unacked frame.
      link.rewind_unsent();
      link.retransmit_deadline =
          now + milliseconds(cfg_.limits.retransmit_timeout_ms);
    }
  }
}

void Node::flush_link(PeerLink& link, Clock::time_point now) {
  if (link.state == PeerLink::State::established) {
    if (link.ack_pending) {
      append_ack(link.write_buf, link.delivered_seq());
      link.ack_pending = false;
    }
    while (link.transmittable(now) &&
           link.write_buf.size() - link.write_off < kWriteBufCap) {
      const Outbound& out = link.next_unsent();
      if (faults_.should_drop()) {
        ++link.counters.drops_injected;  // retransmit timer recovers it
      } else {
        append_data(link.write_buf, out.seq, out.payload);
      }
      link.advance_unsent();
      if (is_unarmed(link.retransmit_deadline)) {
        link.retransmit_deadline =
            now + milliseconds(cfg_.limits.retransmit_timeout_ms);
      }
    }
  }
  while (link.write_off < link.write_buf.size()) {
    const ssize_t wrote =
        ::send(link.fd.get(), link.write_buf.data() + link.write_off,
               link.write_buf.size() - link.write_off, MSG_NOSIGNAL);
    if (wrote > 0) {
      link.counters.bytes_out += static_cast<std::uint64_t>(wrote);
      link.write_off += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (wrote < 0 && errno == EINTR) {
      continue;
    }
    reset_link(link, now);
    return;
  }
  if (link.write_off == link.write_buf.size()) {
    link.write_buf.clear();
    link.write_off = 0;
  }
}

void Node::close_all() {
  const auto now = Clock::now();
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    PeerLink& link = links_[p];
    if (link.fd.valid()) {
      reset_link(link, now);
    }
    stats_.peers[p] = link.counters;
  }
  pending_.clear();
  listener_.fd.reset();
}

}  // namespace rcp::net
