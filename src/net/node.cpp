#include "net/node.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "net/loop.hpp"
#include "runtime/seeding.hpp"

namespace rcp::net {

namespace {

using std::chrono::milliseconds;

constexpr std::size_t kReadChunk = 16 * 1024;
/// Per-service read cap (chunks): a firehose peer yields the loop to its
/// siblings; the sticky readable flag keeps the remainder scheduled.
constexpr int kMaxReadRounds = 64;

[[nodiscard]] bool is_unarmed(Clock::time_point tp) noexcept {
  return tp == Clock::time_point{};
}

}  // namespace

// Context implementation bound to this node for the duration of one
// delivered message (or on_start). Sends enqueue onto the peer links /
// local inbox; the loop flushes after the callback returns, mirroring the
// simulator's atomic-step semantics.
class Node::LoopContext final : public sim::Context {
 public:
  explicit LoopContext(Node& node) noexcept : node_(node) {}

  [[nodiscard]] ProcessId self() const noexcept override {
    return node_.cfg_.id;
  }
  [[nodiscard]] std::uint32_t n() const noexcept override {
    return node_.cfg_.n;
  }
  // A LoopContext only ever exists inside a loop_* callback, so each
  // entry point re-states the affinity the virtual dispatch erased.
  [[nodiscard]] std::uint64_t step() const noexcept override {
    node_.assert_driving();
    return node_.stats_.events;
  }

  void send(ProcessId to, Bytes payload) override {
    node_.assert_driving();
    RCP_EXPECT(to < node_.cfg_.n, "send to unknown process");
    node_.send_from_process(to, std::move(payload));
  }

  void broadcast(const Bytes& payload) override {
    node_.assert_driving();
    for (ProcessId q = 0; q < node_.cfg_.n; ++q) {
      node_.send_from_process(q, payload);
    }
  }

  void decide(Value v) override {
    node_.assert_driving();
    node_.record_decision(v);
  }

  [[nodiscard]] Rng& rng() noexcept override {
    node_.assert_driving();
    return node_.process_rng_;
  }

 private:
  Node& node_;
};

Node::Node(NodeConfig cfg, std::unique_ptr<sim::Process> process)
    : cfg_(std::move(cfg)),
      process_(std::move(process)),
      process_rng_(runtime::trial_seed(cfg_.seed, cfg_.id)),
      faults_(cfg_.faults,
              runtime::trial_seed(cfg_.seed ^ runtime::kSplitMix64Gamma,
                                  cfg_.id)) {
  assert_driving();  // no loop yet: the constructing thread is the driver
  RCP_EXPECT(cfg_.n >= 1, "node needs a cluster size of at least 1");
  RCP_EXPECT(cfg_.id < cfg_.n, "node id outside [0, n)");
  RCP_EXPECT(process_ != nullptr, "null process");
  RCP_EXPECT(cfg_.peers.empty() || cfg_.peers.size() == cfg_.n,
             "peer table must have one entry per node");
  cfg_.peers.resize(cfg_.n);
  links_.resize(cfg_.n);
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    // Dial direction: higher id dials lower, so every pair has exactly
    // one connection and dial races are impossible.
    links_[p].init(p, cfg_.peers[p], /*dialer=*/p < cfg_.id);
    links_[p].configure_rto(cfg_.limits.adaptive_rto,
                            cfg_.limits.retransmit_timeout_ms,
                            cfg_.limits.rto_min_ms, cfg_.limits.rto_max_ms);
  }
  stats_.peers.resize(cfg_.n);

  int fds[2] = {-1, -1};
  RCP_EXPECT(::pipe(fds) == 0, "pipe() failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  for (const int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

Node::~Node() {
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
  }
  if (wake_wr_ >= 0) {
    ::close(wake_wr_);
  }
}

std::uint16_t Node::listen() {
  assert_driving();  // setup phase, or loop_start on the loop thread
  if (!listening_) {
    listener_ = listen_on(cfg_.listen_host, cfg_.listen_port);
    listening_ = true;
  }
  return listener_.port;
}

void Node::set_peer(ProcessId p, PeerAddress addr) {
  assert_driving();  // setup phase: the loop is not running yet
  RCP_EXPECT(p < cfg_.n, "unknown peer id");
  cfg_.peers[p] = addr;
  links_[p].init(p, std::move(addr), links_[p].dialer());
}

void Node::request_stop() {
  stop_.store(true, std::memory_order_release);
  const char byte = 'w';
  [[maybe_unused]] const auto rc = ::write(wake_wr_, &byte, 1);
}

std::optional<Value> Node::decision() const noexcept {
  const int d = decision_published_.load(std::memory_order_acquire);
  if (d < 0) {
    return std::nullopt;
  }
  return d == 0 ? Value::zero : Value::one;
}

void Node::run() {
  EventLoop loop(cfg_.backend);
  loop.add(*this);
  loop.run();
}

// ---- EventLoop interface ----------------------------------------------

void Node::watch_fd(int fd, std::uint32_t sub, unsigned mask) {
  loop_->watch(
      fd, (static_cast<std::uint64_t>(loop_index_) << 32) | sub, mask);
}

void Node::loop_start(EventLoop& loop, std::uint32_t index,
                      Clock::time_point now) {
  loop_ = &loop;
  loop_index_ = index;
  listen();
  watch_fd(wake_rd_, kSubWake, Reactor::kRead);
  wake_watched_ = true;
  watch_fd(listener_.fd.get(), kSubListener, Reactor::kRead);
  listener_watched_ = true;
  LoopContext ctx(*this);
  process_->on_start(ctx);
  after_event();
  if (cfg_.limits.idle_tick_ms != 0) {
    next_idle_tick_ = now + milliseconds(cfg_.limits.idle_tick_ms);
  }
}

void Node::loop_event(std::uint32_t sub, unsigned mask) {
  if (sub == kSubWake) {
    char drain[64];
    while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
    }
    return;
  }
  if (sub == kSubListener) {
    listener_readable_ = true;
    return;
  }
  if ((sub & kSubPendingBit) != 0) {
    for (PendingConn& pc : pending_) {
      if (pc.token == sub) {
        pc.readable = true;
        break;
      }
    }
    return;
  }
  if (sub >= links_.size()) {
    return;
  }
  PeerLink& link = links_[sub];
  if (!link.fd.valid()) {
    return;
  }
  // kError folds into readable: the next read() observes the error/EOF
  // and the link resets through the normal path.
  if ((mask & (Reactor::kRead | Reactor::kError)) != 0) {
    link.ev_readable = true;
  }
  if ((mask & Reactor::kWrite) != 0) {
    link.ev_writable = true;
  }
}

void Node::loop_service(Clock::time_point now) {
  apply_due_disconnects(now);
  start_due_dials(now);
  if (listener_readable_) {
    accept_new_connections(now);
  }
  service_pending(now);
  service_links(now);
  if (crash_pending_) {
    return;
  }
  deliver_local_once();
  if (crash_pending_) {
    return;
  }
  check_timers(now);
  if (cfg_.limits.idle_tick_ms != 0 && now >= next_idle_tick_) {
    // Service tick: give the process a null step (the paper's phi) so it
    // can originate work that arrived outside the message stream.
    LoopContext ctx(*this);
    process_->on_null(ctx);
    after_event();
    next_idle_tick_ = now + milliseconds(cfg_.limits.idle_tick_ms);
    if (crash_pending_) {
      return;
    }
  }

  // Flush sends generated by deliveries / retransmit rewinds, and
  // recompute backpressure from the resulting queue depths.
  for (PeerLink& link : links_) {
    if (link.fd.valid()) {
      flush_link(link, now);
    }
    const bool pause =
        link.queue_depth() >= cfg_.limits.backpressure_high_water;
    if (pause && !link.read_paused) {
      ++stats_.read_pauses;
    }
    link.read_paused = pause;
  }
}

int Node::loop_timeout_ms(Clock::time_point now) const {
  auto best = now + milliseconds(cfg_.limits.poll_cap_ms);
  const auto consider = [&](Clock::time_point tp) {
    if (!is_unarmed(tp) && tp < best) {
      best = tp;
    }
  };
  for (const PeerLink& link : links_) {
    if (link.dialer() && link.state == PeerLink::State::idle) {
      consider(link.next_dial_at);
    }
    consider(link.handshake_deadline);
    if (link.in_flight()) {
      consider(link.retransmit_deadline);
    }
    if (link.state == PeerLink::State::established) {
      const auto eligible = link.next_eligible_at();
      if (eligible != Clock::time_point::max()) {
        consider(eligible);
      }
    }
  }
  for (const PendingConn& pc : pending_) {
    consider(pc.deadline);
  }
  if (!local_inbox_.empty()) {
    // Self-requeued messages retry on a short tick instead of spinning.
    consider(now + milliseconds(1));
  }
  if (cfg_.limits.idle_tick_ms != 0) {
    consider(next_idle_tick_);
  }
  const auto delta = best - now;
  if (delta <= Clock::duration::zero()) {
    return 0;
  }
  const auto ms =
      std::chrono::duration_cast<milliseconds>(delta).count() + 1;
  return static_cast<int>(
      std::min<long long>(ms, cfg_.limits.poll_cap_ms));
}

bool Node::loop_has_ready_work() const noexcept {
  if (listener_readable_) {
    return true;
  }
  for (const PendingConn& pc : pending_) {
    if (pc.readable) {
      return true;
    }
  }
  for (const PeerLink& link : links_) {
    if (!link.fd.valid() || !link.ev_readable) {
      continue;
    }
    if (link.state == PeerLink::State::hello_sent ||
        link.state == PeerLink::State::connecting ||
        (link.state == PeerLink::State::established && !link.read_paused)) {
      return true;
    }
  }
  return false;
}

void Node::loop_refresh_masks(Clock::time_point now) {
  // Level-triggered fallback only: recompute each link's interest from
  // its state (the poll path's analogue of the old build_interest_set).
  // Write interest is wanted only after EAGAIN — while ev_writable holds,
  // the service pass flushes opportunistically without kernel help.
  for (PeerLink& link : links_) {
    if (!link.fd.valid()) {
      continue;
    }
    unsigned mask = 0;
    switch (link.state) {
      case PeerLink::State::connecting:
        mask = Reactor::kWrite;
        break;
      case PeerLink::State::hello_sent:
        mask = Reactor::kRead;
        if (!link.ev_writable && link.write_off < link.write_buf.size()) {
          mask |= Reactor::kWrite;
        }
        break;
      case PeerLink::State::established:
        if (!link.read_paused) {
          mask |= Reactor::kRead;
        }
        if (!link.ev_writable &&
            (link.write_off < link.write_buf.size() ||
             link.transmittable(now) || link.ack_pending)) {
          mask |= Reactor::kWrite;
        }
        break;
      case PeerLink::State::idle:
        break;
    }
    loop_->change(
        link.fd.get(),
        (static_cast<std::uint64_t>(loop_index_) << 32) | link.peer(),
        mask);
  }
}

bool Node::loop_finished() const noexcept {
  return stop_.load(std::memory_order_acquire) || crash_pending_;
}

void Node::loop_abort(const char* what) {
  error_ = what;
  stop_.store(true, std::memory_order_release);
}

void Node::loop_finish() {
  close_all();
  if (crash_pending_) {
    crashed_.store(true, std::memory_order_release);
  }
  finished_.store(true, std::memory_order_release);
}

// ---- Connection management --------------------------------------------

void Node::apply_due_disconnects(Clock::time_point now) {
  for (const ProcessId p : faults_.due_disconnects(stats_.msgs_delivered)) {
    if (p < cfg_.n && p != cfg_.id && links_[p].fd.valid()) {
      reset_link(links_[p], now);
    }
  }
}

void Node::start_due_dials(Clock::time_point now) {
  for (PeerLink& link : links_) {
    if (!link.dialer() || link.state != PeerLink::State::idle ||
        link.fd.valid() || link.next_dial_at > now) {
      continue;
    }
    Fd fd = dial_start(link.addr());
    if (!fd.valid()) {
      // Immediate refusal — peer not up yet; back off and retry.
      link.backoff_ms = link.backoff_ms == 0
                            ? cfg_.limits.reconnect_initial_ms
                            : std::min(link.backoff_ms * 2,
                                       cfg_.limits.reconnect_max_ms);
      link.next_dial_at = now + milliseconds(link.backoff_ms);
      continue;
    }
    if (cfg_.limits.so_rcvbuf != 0) {
      set_rcvbuf(fd, cfg_.limits.so_rcvbuf);
    }
    if (cfg_.limits.so_sndbuf != 0) {
      set_sndbuf(fd, cfg_.limits.so_sndbuf);
    }
    link.fd = std::move(fd);
    link.state = PeerLink::State::connecting;
    link.handshake_deadline =
        now + milliseconds(cfg_.limits.handshake_timeout_ms);
    watch_fd(link.fd.get(), link.peer(),
             Reactor::kRead | Reactor::kWrite);
  }
}

void Node::accept_new_connections(Clock::time_point now) {
  listener_readable_ = false;
  while (true) {
    Fd conn = accept_on(listener_.fd);
    if (!conn.valid()) {
      break;
    }
    if (cfg_.limits.so_rcvbuf != 0) {
      set_rcvbuf(conn, cfg_.limits.so_rcvbuf);
    }
    if (cfg_.limits.so_sndbuf != 0) {
      set_sndbuf(conn, cfg_.limits.so_sndbuf);
    }
    PendingConn pc;
    pc.fd = std::move(conn);
    pc.deadline = now + milliseconds(cfg_.limits.handshake_timeout_ms);
    pc.token = kSubPendingBit | (pending_token_seq_++ & 0x7FFFFFFFu);
    // The hello may already sit in the kernel buffer from before the
    // registration; start readable so the first service pass reads.
    pc.readable = true;
    watch_fd(pc.fd.get(), pc.token, Reactor::kRead);
    pending_.push_back(std::move(pc));
  }
}

void Node::service_pending(Clock::time_point now) {
  for (std::size_t i = 0; i < pending_.size();) {
    PendingConn& pc = pending_[i];
    bool drop = false;
    if (pc.readable) {
      std::byte buf[kReadChunk];
      while (true) {
        const ssize_t got = ::read(pc.fd.get(), buf, sizeof(buf));
        if (got > 0) {
          pc.decoder.feed({buf, static_cast<std::size_t>(got)});
          continue;
        }
        if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          pc.readable = false;
          break;
        }
        if (got < 0 && errno == EINTR) {
          continue;
        }
        drop = true;  // EOF or hard error before the handshake finished
        break;
      }
      if (!drop) {
        try {
          if (const auto frame = pc.decoder.next()) {
            if (frame->type == FrameType::hello && frame->n == cfg_.n &&
                frame->node_id < cfg_.n && frame->node_id > cfg_.id) {
              attach_pending(i, frame->node_id);
              continue;  // pending_[i] replaced by erase; do not ++i
            }
            drop = true;  // wrong identity or direction
          }
        } catch (const DecodeError&) {
          drop = true;
        }
      }
    }
    if (!drop && pc.deadline <= now) {
      drop = true;  // handshake timeout
    }
    if (drop) {
      loop_->unwatch(pc.fd.get());
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Node::attach_pending(std::size_t index, ProcessId peer) {
  const auto now = Clock::now();
  PeerLink& link = links_[peer];
  if (link.fd.valid()) {
    // The peer abandoned its previous connection (one-sided close) and
    // dialed again; the new connection supersedes the stale one.
    reset_link(link, now);
  }
  link.fd = std::move(pending_[index].fd);
  link.decoder = std::move(pending_[index].decoder);
  const bool had_bytes_buffered = pending_[index].readable;
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
  // Re-address the registration from the pending token to the peer id.
  loop_->change(link.fd.get(),
                (static_cast<std::uint64_t>(loop_index_) << 32) |
                    link.peer(),
                Reactor::kRead | Reactor::kWrite);
  link.ev_readable = had_bytes_buffered;
  link.ev_writable = true;  // fresh socket: optimistically writable
  link.write_buf.clear();
  link.write_off = 0;
  append_hello(link.write_buf, cfg_.id, cfg_.n);  // handshake reply
  establish_link(link);
  // Frames that arrived right behind the hello are already buffered in
  // the decoder; process them now.
  process_link_input(link);
  if (link.fd.valid()) {
    flush_link(link, now);
  }
}

void Node::establish_link(PeerLink& link) {
  link.state = PeerLink::State::established;
  link.handshake_deadline = {};
  link.retransmit_deadline = {};
  if (link.ever_connected) {
    ++link.counters.reconnects;
  }
  link.ever_connected = true;
  link.backoff_ms = 0;
  link.stale_acks = 0;
  // Retransmit everything unacked: bytes in flight on the old connection
  // may be lost; the receiver's dedupe discards what did arrive. The
  // mirror image holds inbound: the peer rewinds too, so duplicates of
  // already-delivered seqs are expected, not spurious retransmits.
  link.rewind_unsent();
  link.expect_rewind_dups();
  if (link.delivered_seq() > 0) {
    // Tell the peer where our inbound stream stands so it can release
    // acked frames immediately after the reconnect.
    link.ack_pending = true;
  }
}

void Node::reset_link(PeerLink& link, Clock::time_point now) {
  if (link.fd.valid() && loop_ != nullptr) {
    loop_->unwatch(link.fd.get());
  }
  link.fd.reset();
  link.decoder = FrameDecoder{};
  link.write_buf.clear();
  link.write_off = 0;
  link.ack_pending = false;
  link.read_paused = false;
  link.stale_acks = 0;
  link.ev_readable = false;
  link.ev_writable = false;
  link.handshake_deadline = {};
  link.retransmit_deadline = {};
  link.state = PeerLink::State::idle;
  if (link.dialer()) {
    link.backoff_ms = link.backoff_ms == 0
                          ? cfg_.limits.reconnect_initial_ms
                          : std::min(link.backoff_ms * 2,
                                     cfg_.limits.reconnect_max_ms);
    link.next_dial_at = now + milliseconds(link.backoff_ms);
  }
}

void Node::service_links(Clock::time_point now) {
  for (PeerLink& link : links_) {
    if (!link.fd.valid()) {
      continue;
    }
    if (link.state == PeerLink::State::connecting) {
      if (link.ev_writable || link.ev_readable) {
        link.ev_readable = false;
        if (dial_result(link.fd) != 0) {
          reset_link(link, now);
          continue;
        }
        append_hello(link.write_buf, cfg_.id, cfg_.n);
        link.state = PeerLink::State::hello_sent;
        flush_link(link, now);
      }
      continue;
    }

    const bool may_read =
        link.state == PeerLink::State::hello_sent || !link.read_paused;
    if (may_read && link.ev_readable) {
      if (!read_socket(link)) {
        reset_link(link, now);
        continue;
      }
      try {
        process_link_input(link);
      } catch (const DecodeError&) {
        reset_link(link, now);
        continue;
      }
      if (crash_pending_) {
        return;
      }
    }
    if (link.fd.valid()) {
      flush_link(link, now);
    }
  }
}

bool Node::read_socket(PeerLink& link) {
  // Drain to EAGAIN: edge-triggered backends report only transitions, so
  // stopping at a short read could strand buffered bytes forever. The
  // round cap bounds one link's share of the loop; the sticky flag keeps
  // an over-cap link scheduled for the next pass.
  std::byte buf[kReadChunk];
  for (int round = 0; round < kMaxReadRounds; ++round) {
    const ssize_t got = ::read(link.fd.get(), buf, sizeof(buf));
    if (got > 0) {
      link.counters.bytes_in += static_cast<std::uint64_t>(got);
      link.decoder.feed({buf, static_cast<std::size_t>(got)});
      continue;
    }
    if (got == 0) {
      return false;  // orderly EOF
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      link.ev_readable = false;
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;  // cap hit; ev_readable stays set
}

void Node::process_link_input(PeerLink& link) {
  const auto now = Clock::now();
  while (link.fd.valid()) {
    const auto frame = link.decoder.next();
    if (!frame.has_value()) {
      return;
    }
    switch (link.state) {
      case PeerLink::State::hello_sent: {
        if (frame->type != FrameType::hello ||
            frame->node_id != link.peer() || frame->n != cfg_.n) {
          reset_link(link, now);
          return;
        }
        establish_link(link);
        break;
      }
      case PeerLink::State::established: {
        switch (frame->type) {
          case FrameType::data:
            deliver_data(link, Frame(*frame));
            break;
          case FrameType::ack: {
            const std::size_t before = link.queue_depth();
            link.on_ack(frame->seq, now, &stats_.latency);
            if (link.queue_depth() != before) {
              // Ack progress restarts (or disarms) the retransmit clock.
              link.stale_acks = 0;
              link.retransmit_deadline =
                  link.in_flight() ? now + milliseconds(link.rto_ms())
                                   : Clock::time_point{};
            } else if (link.in_flight() && ++link.stale_acks >= 2) {
              // Fast retransmit: the peer acks every arrival, so repeated
              // acks with no progress mean it is discarding ahead-of-stream
              // frames behind a loss. Rewind now instead of stalling for
              // the full retransmit timeout.
              link.stale_acks = 0;
              link.rewind_unsent();
              link.retransmit_deadline = now + milliseconds(link.rto_ms());
            }
            break;
          }
          case FrameType::hello:
            reset_link(link, now);  // handshake frames after establishment
            return;
        }
        break;
      }
      case PeerLink::State::idle:
      case PeerLink::State::connecting:
        reset_link(link, now);
        return;
    }
    if (crash_pending_ || stop_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

void Node::deliver_data(PeerLink& link, Frame&& frame) {
  link.ack_pending = true;  // dup, gap and delivery all re-ack the stream
  if (link.classify_and_advance(frame.seq) != 0) {
    return;
  }
  ++stats_.msgs_delivered;
  sim::Envelope env;
  env.sender = link.peer();  // handshake-authenticated, never payload bytes
  env.receiver = cfg_.id;
  env.payload = std::move(frame.payload);
  env.sent_at_step = 0;
  env.seq = frame.seq;
  LoopContext ctx(*this);
  try {
    process_->on_message(ctx, env);
  } catch (const DecodeError&) {
    // Byzantine payload garbage is dropped, never fatal (same contract as
    // the protocols' own decode guards).
  }
  after_event();
  // Disconnect events are keyed on the delivered-message count, so they
  // must be applied between deliveries — a reset of the link currently
  // being drained discards the rest of its decoder buffer, exactly the
  // bytes that die with a real connection.
  apply_due_disconnects(Clock::now());
}

void Node::deliver_local_once() {
  if (local_inbox_.empty() || crash_pending_) {
    return;
  }
  // One pass over the messages present now; requeues generated during the
  // pass wait for the next loop iteration (the paper's requeue device
  // must not spin faster than network progress).
  std::vector<sim::Envelope> batch;
  batch.swap(local_inbox_);
  for (sim::Envelope& env : batch) {
    ++stats_.msgs_delivered;
    LoopContext ctx(*this);
    try {
      process_->on_message(ctx, env);
    } catch (const DecodeError&) {
    }
    after_event();
    apply_due_disconnects(Clock::now());
    if (crash_pending_ || stop_.load(std::memory_order_acquire)) {
      return;  // a crashed process loses its remaining buffered messages
    }
  }
}

void Node::send_from_process(ProcessId to, Bytes payload) {
  ++stats_.msgs_sent;
  if (to == cfg_.id) {
    sim::Envelope env;
    env.sender = cfg_.id;
    env.receiver = cfg_.id;
    env.payload = std::move(payload);
    env.sent_at_step = 0;
    env.seq = ++local_seq_;
    local_inbox_.push_back(std::move(env));
    return;
  }
  PeerLink& link = links_[to];
  const auto now = Clock::now();
  const std::uint32_t delay = faults_.delay_ms();
  if (delay > 0) {
    ++link.counters.delays_injected;
  }
  // At the queue bound the newest message is dropped (counted by the
  // link): the peer has been unable to drain for longer than the bound
  // covers, and to this sender it now behaves like a faulty process that
  // lost the message — which the protocols tolerate. The queued stream is
  // never cut, so delivery resumes seamlessly if the peer recovers.
  (void)link.enqueue(std::move(payload), now + milliseconds(delay),
                     cfg_.limits.max_queued_frames, now);
}

void Node::record_decision(Value v) {
  if (decision_.has_value()) {
    RCP_INVARIANT(*decision_ == v,
                  "process attempted to change its one-shot decision");
    return;
  }
  decision_ = v;
  decision_published_.store(static_cast<int>(value_index(v)),
                            std::memory_order_release);
}

void Node::after_event() {
  ++stats_.events;
  const Phase phase = process_->phase();
  phase_published_.store(phase, std::memory_order_release);
  if (cfg_.crash_at_phase.has_value() && phase >= *cfg_.crash_at_phase) {
    crash_pending_ = true;  // fail-stop: death without warning messages
  }
}

void Node::check_timers(Clock::time_point now) {
  for (PeerLink& link : links_) {
    if (!link.fd.valid()) {
      continue;
    }
    if ((link.state == PeerLink::State::connecting ||
         link.state == PeerLink::State::hello_sent) &&
        !is_unarmed(link.handshake_deadline) &&
        link.handshake_deadline <= now) {
      reset_link(link, now);
      continue;
    }
    if (link.state == PeerLink::State::established && link.in_flight() &&
        !is_unarmed(link.retransmit_deadline) &&
        link.retransmit_deadline <= now) {
      // No ack progress: assume loss (injected or real) and go back to
      // the first unacked frame. The RTO doubles each time this fires so
      // an unlucky estimate cannot melt the link into a rewind storm.
      link.rewind_unsent();
      link.backoff_rto();
      link.retransmit_deadline = now + milliseconds(link.rto_ms());
    }
  }
}

void Node::flush_link(PeerLink& link, Clock::time_point now) {
  if (link.state == PeerLink::State::established && link.ack_pending) {
    append_ack(link.write_buf, link.delivered_seq());
    link.ack_pending = false;
  }
  if (!link.ev_writable) {
    return;  // known-blocked; wait for the kernel's writability edge
  }
  const bool frames = link.state == PeerLink::State::established;
  const auto arm_retransmit = [&](const WritevPlan::CommitResult& res) {
    if (res.advanced && is_unarmed(link.retransmit_deadline)) {
      link.retransmit_deadline = now + milliseconds(link.rto_ms());
    }
  };
  while (true) {
    plan_.build(link, now, frames, [this] {
      assert_driving();  // lambda body escapes the enclosing REQUIRES
      return faults_.should_drop();
    });
    if (plan_.empty()) {
      return;
    }
    if (plan_.iov_count() == 0) {
      // Every candidate was drop-injected: nothing to write, but the
      // cursor still advances (the retransmit timer recovers them).
      arm_retransmit(plan_.commit(link, 0));
      continue;
    }
    msghdr mh{};
    mh.msg_iov = plan_.iov();
    mh.msg_iovlen = plan_.iov_count();
    const ssize_t wrote = ::sendmsg(link.fd.get(), &mh, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Leading drop-injected frames still advance; real bytes stay.
        arm_retransmit(plan_.commit(link, 0));
        link.ev_writable = false;
        return;
      }
      reset_link(link, now);
      return;
    }
    arm_retransmit(plan_.commit(link, static_cast<std::size_t>(wrote)));
    if (static_cast<std::size_t>(wrote) < plan_.total_bytes()) {
      // Short write: the kernel buffer filled mid-batch; the remainder of
      // the partial frame now sits in write_buf awaiting the next edge.
      link.ev_writable = false;
      return;
    }
  }
}

void Node::close_all() {
  const auto now = Clock::now();
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    PeerLink& link = links_[p];
    if (link.fd.valid()) {
      reset_link(link, now);
    }
    stats_.peers[p] = link.counters;
  }
  for (PendingConn& pc : pending_) {
    if (pc.fd.valid() && loop_ != nullptr) {
      loop_->unwatch(pc.fd.get());
    }
  }
  pending_.clear();
  if (listener_watched_) {
    loop_->unwatch(listener_.fd.get());
    listener_watched_ = false;
  }
  listener_.fd.reset();
  listening_ = false;
  if (wake_watched_) {
    loop_->unwatch(wake_rd_);
    wake_watched_ = false;
  }
}

}  // namespace rcp::net
