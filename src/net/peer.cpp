#include "net/peer.hpp"

#include <algorithm>

namespace rcp::net {

bool PeerLink::enqueue(Bytes payload, Clock::time_point eligible_at,
                       std::size_t max_queued) {
  if (queue_.size() >= max_queued) {
    ++counters.overflow_drops;
    return false;
  }
  Outbound out;
  out.seq = assign_seq();
  out.payload = std::move(payload);
  out.eligible_at = eligible_at;
  queue_.push_back(std::move(out));
  ++counters.msgs_out;
  counters.queue_depth = queue_.size();
  counters.queue_peak = std::max(counters.queue_peak, queue_.size());
  return true;
}

void PeerLink::on_ack(std::uint64_t acked) noexcept {
  while (!queue_.empty() && queue_.front().seq <= acked) {
    queue_.pop_front();
    if (unsent_ > 0) {
      --unsent_;
    }
  }
  counters.queue_depth = queue_.size();
}

void PeerLink::rewind_unsent() noexcept {
  counters.retransmits += unsent_;
  unsent_ = 0;
}

Clock::time_point PeerLink::next_eligible_at() const noexcept {
  if (unsent_ >= queue_.size()) {
    return Clock::time_point::max();
  }
  return queue_[unsent_].eligible_at;
}

void PeerLink::clear_queue() noexcept {
  queue_.clear();
  unsent_ = 0;
  counters.queue_depth = 0;
}

int PeerLink::classify_and_advance(std::uint64_t seq) noexcept {
  if (seq < next_expected_) {
    ++counters.dup_frames;
    return -1;
  }
  if (seq > next_expected_) {
    ++counters.gap_frames;
    return 1;
  }
  ++next_expected_;
  ++counters.msgs_in;
  return 0;
}

}  // namespace rcp::net
