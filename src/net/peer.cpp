#include "net/peer.hpp"

#include <algorithm>
#include <cmath>

namespace rcp::net {

void OutboundRing::grow() {
  const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  std::vector<Outbound> next(cap);
  for (std::size_t i = 0; i < size_; ++i) {
    next[i] = std::move((*this)[i]);
  }
  slots_ = std::move(next);
  head_ = 0;
  mask_ = cap - 1;
}

bool PeerLink::enqueue(Bytes payload, Clock::time_point eligible_at,
                       std::size_t max_queued,
                       Clock::time_point enqueued_at) {
  if (queue_.size() >= max_queued) {
    ++counters.overflow_drops;
    return false;
  }
  Outbound out;
  out.seq = assign_seq();
  encode_data_header(out.header, out.seq, payload.size());
  out.payload = std::move(payload);
  out.eligible_at = eligible_at;
  out.enqueued_at =
      enqueued_at == Clock::time_point{} ? eligible_at : enqueued_at;
  queue_.push_back(std::move(out));
  ++counters.msgs_out;
  counters.queue_depth = queue_.size();
  counters.queue_peak = std::max(counters.queue_peak, queue_.size());
  return true;
}

void PeerLink::on_ack(std::uint64_t acked, Clock::time_point now,
                      LatencyHistogram* latency) noexcept {
  if (!queue_.empty() && queue_[0].seq <= acked) {
    // Ack progress: the link is alive, so any timeout backoff can relax
    // back to the estimator-derived RTO.
    rto_current_ms_ = rto_has_sample_ ? rto_derived_ms_ : rto_current_ms_;
  }
  while (!queue_.empty() && queue_[0].seq <= acked) {
    if (now != Clock::time_point{}) {
      const auto waited = now - queue_[0].enqueued_at;
      const std::uint64_t ns =
          waited > Clock::duration::zero()
              ? static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        waited)
                        .count())
              : 0;
      if (latency != nullptr) {
        latency->record(ns);
      }
      if (!queue_[0].retransmitted) {  // Karn: ambiguous samples excluded
        note_rtt(static_cast<double>(ns) / 1e6);
      }
    }
    queue_.pop_front();
    if (unsent_ > 0) {
      --unsent_;
    }
  }
  counters.queue_depth = queue_.size();
}

void PeerLink::note_rtt(double sample_ms) noexcept {
  if (!rto_adaptive_) {
    return;
  }
  if (!rto_has_sample_) {
    // RFC 6298 §2.2: first measurement seeds both estimators.
    srtt_ms_ = sample_ms;
    rttvar_ms_ = sample_ms / 2.0;
    rto_has_sample_ = true;
  } else {
    // RFC 6298 §2.3: rttvar before srtt, beta = 1/4, alpha = 1/8.
    rttvar_ms_ =
        0.75 * rttvar_ms_ + 0.25 * std::abs(srtt_ms_ - sample_ms);
    srtt_ms_ = 0.875 * srtt_ms_ + 0.125 * sample_ms;
  }
  const double rto = srtt_ms_ + std::max(1.0, 4.0 * rttvar_ms_);
  rto_derived_ms_ = static_cast<std::uint32_t>(
      std::clamp(rto, static_cast<double>(rto_min_ms_),
                 static_cast<double>(rto_max_ms_)));
  rto_current_ms_ = rto_derived_ms_;
}

void PeerLink::backoff_rto() noexcept {
  if (rto_adaptive_ && rto_has_sample_) {
    rto_current_ms_ = std::min(rto_current_ms_ * 2, rto_max_ms_);
  }
}

void PeerLink::rewind_unsent() noexcept {
  counters.retransmits += unsent_;
  for (std::size_t i = 0; i < unsent_; ++i) {
    queue_[i].retransmitted = true;
  }
  unsent_ = 0;
}

Clock::time_point PeerLink::next_eligible_at() const noexcept {
  if (unsent_ >= queue_.size()) {
    return Clock::time_point::max();
  }
  return queue_[unsent_].eligible_at;
}

void PeerLink::clear_queue() noexcept {
  queue_.clear();
  unsent_ = 0;
  counters.queue_depth = 0;
}

int PeerLink::classify_and_advance(std::uint64_t seq) noexcept {
  if (seq < next_expected_) {
    ++counters.dup_frames;
    if (!gap_since_delivery_ && !rewind_dups_expected_) {
      // No loss episode and no reconnect explains this duplicate: the
      // sender's retransmit fired while our ack was still in flight.
      ++counters.spurious_retransmits;
    }
    return -1;
  }
  if (seq > next_expected_) {
    ++counters.gap_frames;
    gap_since_delivery_ = true;  // a rewind is now genuinely needed
    return 1;
  }
  ++next_expected_;
  ++counters.msgs_in;
  gap_since_delivery_ = false;
  rewind_dups_expected_ = false;
  return 0;
}

WritevPlan::CommitResult WritevPlan::commit(PeerLink& link,
                                            std::size_t written) const {
  CommitResult res;
  link.counters.bytes_out += written;
  std::size_t left = written;

  const std::size_t buf_take = std::min(left, buf_bytes_);
  link.write_off += buf_take;
  left -= buf_take;
  if (link.write_off == link.write_buf.size()) {
    link.write_buf.clear();
    link.write_off = 0;
  }

  for (std::size_t i = 0; i < frame_count_; ++i) {
    const FrameSlot& fs = frames_[i];
    if (fs.dropped) {
      // A drop-injected frame "transmits" zero bytes; its fate does not
      // depend on the kernel, only on every earlier frame having been
      // consumed — which this in-order walk guarantees.
      ++link.counters.drops_injected;
      link.advance_unsent();
      ++res.frames_dropped;
      res.advanced = true;
      continue;
    }
    if (left == 0) {
      break;
    }
    if (left >= fs.bytes) {
      left -= fs.bytes;
      link.advance_unsent();
      ++res.frames_sent;
      res.advanced = true;
      continue;
    }
    // Partial frame: the kernel took a prefix. Spill the remainder into
    // write_buf (the only copy on the egress path, and only under
    // backpressure) so the stream stays byte-exact, then stop — later
    // frames were not reached.
    const Outbound& f = link.frame_at(link.unsent_index());
    const std::size_t consumed = left;
    if (consumed < f.header.size()) {
      link.write_buf.insert(link.write_buf.end(),
                            f.header.begin() +
                                static_cast<std::ptrdiff_t>(consumed),
                            f.header.end());
      const auto span = f.payload.span();
      link.write_buf.insert(link.write_buf.end(), span.begin(), span.end());
    } else {
      const auto span = f.payload.span();
      link.write_buf.insert(
          link.write_buf.end(),
          span.begin() +
              static_cast<std::ptrdiff_t>(consumed - f.header.size()),
          span.end());
    }
    link.advance_unsent();
    ++res.frames_sent;
    res.advanced = true;
    break;
  }
  return res;
}

}  // namespace rcp::net
