// Per-peer and per-node transport counters.
//
// The counters answer the operational questions the simulator's Metrics
// cannot: how many bytes crossed each link, how often links flapped, how
// deep the send queues ran, and how much work the fault injector did.
// examples/net_cluster exports them through the bench_json.hpp writer
// (schema rcp-net-v1) next to the simulator's rcp-bench-v1 reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rcp::net {

struct PeerCounters {
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t msgs_out = 0;       ///< data frames enqueued to this peer
  std::uint64_t msgs_in = 0;        ///< data frames delivered from this peer
  std::uint64_t reconnects = 0;     ///< successful re-establishments
  std::uint64_t retransmits = 0;    ///< frames re-sent by go-back-N
  std::uint64_t drops_injected = 0; ///< transmissions skipped by fault plan
  std::uint64_t delays_injected = 0;///< frames given a non-zero hold
  std::uint64_t dup_frames = 0;     ///< already-delivered seqs discarded
  std::uint64_t gap_frames = 0;     ///< ahead-of-stream seqs discarded
  std::uint64_t overflow_drops = 0; ///< messages dropped at the queue bound
  std::size_t queue_depth = 0;      ///< current outbound queue length
  std::size_t queue_peak = 0;       ///< high-water outbound queue length
};

struct NodeStats {
  std::uint64_t events = 0;           ///< on_start + delivered messages
  std::uint64_t msgs_sent = 0;        ///< protocol sends (incl. self-sends)
  std::uint64_t msgs_delivered = 0;   ///< messages handed to the process
  std::uint64_t read_pauses = 0;      ///< backpressure read-side pauses
  std::vector<PeerCounters> peers;    ///< indexed by peer id; self unused
};

}  // namespace rcp::net
