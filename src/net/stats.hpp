// Per-peer and per-node transport counters.
//
// The counters answer the operational questions the simulator's Metrics
// cannot: how many bytes crossed each link, how often links flapped, how
// deep the send queues ran, and how much work the fault injector did.
// examples/net_cluster exports them through the bench_json.hpp writer
// (schema rcp-net-v1) next to the simulator's rcp-bench-v1 reports.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rcp::net {

/// Allocation-free log₂-bucketed latency histogram.
///
/// Bucket b holds samples with floor(log2(ns)) == b, so 64 fixed buckets
/// cover the full uint64 nanosecond range at ~2× resolution — coarse, but
/// recording is two instructions on the hot send/ack path and merging
/// across nodes is elementwise addition. Quantiles interpolate linearly
/// inside the winning bucket.
class LatencyHistogram {
 public:
  void record(std::uint64_t ns) noexcept {
    buckets_[bucket_of(ns)] += 1;
    count_ += 1;
    sum_ns_ += ns;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  [[nodiscard]] double mean_ms() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_) / 1e6;
  }

  /// Latency at quantile q in [0, 1], in milliseconds.
  [[nodiscard]] double quantile_ms(double q) const noexcept {
    if (count_ == 0) {
      return 0.0;
    }
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b] == 0) {
        continue;
      }
      const double before = static_cast<double>(seen);
      seen += buckets_[b];
      if (static_cast<double>(seen) >= target) {
        const double lo = static_cast<double>(bucket_floor(b));
        const double hi = static_cast<double>(bucket_floor(b + 1));
        const double frac =
            (target - before) / static_cast<double>(buckets_[b]);
        return (lo + (hi - lo) * frac) / 1e6;
      }
    }
    return static_cast<double>(bucket_floor(buckets_.size())) / 1e6;
  }

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) noexcept {
    return ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns) - 1);
  }
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t b) noexcept {
    return b >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << b;
  }

  std::array<std::uint64_t, 64> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
};

struct PeerCounters {
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t msgs_out = 0;       ///< data frames enqueued to this peer
  std::uint64_t msgs_in = 0;        ///< data frames delivered from this peer
  std::uint64_t reconnects = 0;     ///< successful re-establishments
  std::uint64_t retransmits = 0;    ///< frames re-sent by go-back-N
  std::uint64_t drops_injected = 0; ///< transmissions skipped by fault plan
  std::uint64_t delays_injected = 0;///< frames given a non-zero hold
  std::uint64_t dup_frames = 0;     ///< already-delivered seqs discarded
  std::uint64_t gap_frames = 0;     ///< ahead-of-stream seqs discarded
  /// Duplicates not explained by loss recovery or a reconnect: the peer's
  /// retransmit timer fired while our ack was still in flight. The
  /// adaptive RTO exists to keep this near zero.
  std::uint64_t spurious_retransmits = 0;
  std::uint64_t overflow_drops = 0; ///< messages dropped at the queue bound
  std::size_t queue_depth = 0;      ///< current outbound queue length
  std::size_t queue_peak = 0;       ///< high-water outbound queue length
};

struct NodeStats {
  std::uint64_t events = 0;           ///< on_start + delivered messages
  std::uint64_t msgs_sent = 0;        ///< protocol sends (incl. self-sends)
  std::uint64_t msgs_delivered = 0;   ///< messages handed to the process
  std::uint64_t read_pauses = 0;      ///< backpressure read-side pauses
  std::vector<PeerCounters> peers;    ///< indexed by peer id; self unused
  LatencyHistogram latency;           ///< enqueue → ack-release, per frame
};

}  // namespace rcp::net
