// Reactor — the readiness-notification engine behind the net event loop.
//
// Two interchangeable backends implement one interface:
//
//   EpollReactor  edge-triggered epoll(7) (Linux). Descriptors register
//                 once with EPOLLIN|EPOLLOUT|EPOLLET and never re-arm; the
//                 kernel reports *transitions*, and the loop keeps sticky
//                 per-link readable/writable flags that it clears only on
//                 EAGAIN. wait() is O(ready), so one loop thread can drive
//                 the full-mesh fan-in of many nodes (n=100 ≈ 10k sockets)
//                 without rescanning idle descriptors.
//   PollReactor   level-triggered poll(2) on top of net/poller.hpp — the
//                 portable fallback. Interest masks are recomputed from
//                 the registration table every wait(), and wait() is
//                 O(watched). Semantics match the simulator-era loop.
//
// The loop asks edge_triggered() once and adapts its flag discipline; the
// frame/link/backpressure machinery is backend-agnostic. reactor.cpp is
// the only translation unit allowed to include <sys/epoll.h> — enforced
// by tools/rcp-lint (os-header exclusivity, see tools/lint_rules.toml).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace rcp::net {

/// One readiness report. `mask` is a Reactor::k* bitmask; `token` is the
/// opaque value supplied at add()/modify() time (the loop packs a node
/// index and a per-node subject into it).
struct ReactorEvent {
  int fd = -1;
  unsigned mask = 0;
  std::uint64_t token = 0;
};

class Reactor {
 public:
  static constexpr unsigned kRead = 1u << 0;
  static constexpr unsigned kWrite = 1u << 1;
  /// Error/hangup. Reported regardless of the interest mask; the loop
  /// treats it as readable so the next read() observes the error/EOF.
  static constexpr unsigned kError = 1u << 2;

  enum class Backend : std::uint8_t {
    automatic,  ///< epoll where available, poll otherwise
    poll,
    epoll,
  };

  /// Builds the requested backend. Throws rcp::Error when `epoll` is
  /// requested on a platform without it.
  [[nodiscard]] static std::unique_ptr<Reactor> make(Backend backend);

  /// True iff `epoll` can be constructed on this platform.
  [[nodiscard]] static bool epoll_available() noexcept;

  virtual ~Reactor() = default;

  /// Registers a descriptor. Edge-triggered backends ignore `mask` and
  /// always watch both directions (the loop's sticky flags do the
  /// filtering); level-triggered backends honour it.
  virtual void add(int fd, unsigned mask, std::uint64_t token) = 0;

  /// Updates the mask and/or token of a registered descriptor.
  virtual void modify(int fd, unsigned mask, std::uint64_t token) = 0;

  /// Deregisters a descriptor. Must be called before close(): with a
  /// registration table indexed by fd, a recycled descriptor number would
  /// otherwise inherit a stale token.
  virtual void remove(int fd) = 0;

  /// Blocks up to timeout_ms (0 = immediate, negative = forever) and
  /// fills events(). Returns the event count; EINTR counts as zero.
  virtual int wait(int timeout_ms) = 0;

  /// Events produced by the last wait(); valid until the next wait().
  [[nodiscard]] virtual std::span<const ReactorEvent> events()
      const noexcept = 0;

  [[nodiscard]] virtual bool edge_triggered() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace rcp::net
