// Per-peer link state: one reliable, ordered, framed stream to one peer.
//
// The paper's message system is "reliable but arbitrarily delayed". A raw
// TCP connection is reliable only while it lives — bytes in flight when a
// connection dies (or frames skipped by drop injection) are gone. The link
// therefore runs its own thin reliability layer on top of the framed
// stream:
//
//   * every data frame carries a per-link sequence number, assigned at
//     enqueue and retained until cumulatively acked by the receiver;
//   * on (re)connect, transmission rewinds to the first unacked frame;
//   * on retransmit timeout with no ack progress, likewise (go-back-N);
//   * the receive side tracks next_expected and discards duplicates
//     (possible after reconnect) and ahead-of-stream gaps (possible after
//     an injected drop) — the sender's rewind fills the gap in order.
//
// The outbound queue is bounded (NodeLimits::max_queued_frames). When a
// peer cannot drain the queue — crashed and past reconnect, or flooding us
// into amplification — messages past the bound are dropped at enqueue: to
// this sender the peer then behaves like a faulty process that lost them,
// which is exactly what the protocols tolerate. The queued stream itself
// is never cut (clearing it would wedge the receiver's in-order dedupe
// forever), so delivery resumes seamlessly if the peer recovers. Before
// the bound, crossing the high-water mark pauses reads from that peer
// (backpressure on the only traffic source that can grow this queue).
//
// Egress is zero-copy: each queued frame keeps its Payload (SBO/COW —
// sharing the sender's buffer, not copying it) plus a 13-byte wire header
// precomputed at enqueue. WritevPlan gathers header/payload pairs straight
// from the ring into one vectored send per readiness event; only the
// remainder of a partially-written frame is ever copied (into write_buf).
//
// PeerLink owns no sockets and does no I/O; the net event loop moves
// bytes and drives the state transitions.
#pragma once

#include <sys/uio.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/stats.hpp"

namespace rcp::net {

using Clock = std::chrono::steady_clock;

/// One queued-but-not-yet-acked outbound payload, with its wire header
/// precomputed so transmission is pure buffer gathering.
struct Outbound {
  std::uint64_t seq = 0;
  Bytes payload;
  std::array<std::byte, kDataFrameHeader> header{};
  /// Not transmitted before this instant (delay injection).
  Clock::time_point eligible_at{};
  /// When the sender queued it — the start of the latency measurement.
  Clock::time_point enqueued_at{};
  /// Set when a rewind schedules this frame for re-transmission. Karn's
  /// algorithm: an ack for a retransmitted frame is ambiguous (it may
  /// answer either transmission), so it yields no RTT sample.
  bool retransmitted = false;
};

/// Bounded-growth ring of Outbound frames. A deque would allocate a block
/// every few hundred frames forever; the ring reaches the queue's working
/// capacity once and then recycles slots, keeping the steady-state send
/// path allocation-free (payload Bytes are released on pop so refcounted
/// buffers return to their owners promptly).
class OutboundRing {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] Outbound& operator[](std::size_t i) noexcept {
    return slots_[(head_ + i) & mask_];
  }
  [[nodiscard]] const Outbound& operator[](std::size_t i) const noexcept {
    return slots_[(head_ + i) & mask_];
  }

  void push_back(Outbound&& out) {
    if (size_ == slots_.size()) {
      grow();
    }
    slots_[(head_ + size_) & mask_] = std::move(out);
    ++size_;
  }

  void pop_front() noexcept {
    slots_[head_].payload = Bytes{};
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() noexcept {
    while (size_ > 0) {
      pop_front();
    }
  }

 private:
  void grow();

  std::vector<Outbound> slots_;  ///< power-of-two capacity (or empty)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

class PeerLink {
 public:
  enum class State : std::uint8_t {
    idle,        ///< no connection; dialers schedule a dial, acceptors wait
    connecting,  ///< non-blocking connect in progress (dialer only)
    hello_sent,  ///< dialer sent hello, awaiting the peer's reply
    established, ///< handshake complete; data/ack frames flow
  };

  void init(ProcessId peer, PeerAddress addr, bool dialer) {
    peer_ = peer;
    addr_ = addr;
    dialer_ = dialer;
  }

  [[nodiscard]] ProcessId peer() const noexcept { return peer_; }
  [[nodiscard]] const PeerAddress& addr() const noexcept { return addr_; }
  [[nodiscard]] bool dialer() const noexcept { return dialer_; }

  // ---- Outbound reliable stream -------------------------------------

  /// Queues a payload; returns false (and counts an overflow drop) if the
  /// bound was reached — the message is then lost to this peer. The wire
  /// header is encoded here, once; transmission only gathers pointers.
  /// `enqueued_at` anchors the latency measurement (defaults to
  /// eligible_at for callers that do not measure).
  [[nodiscard]] bool enqueue(Bytes payload, Clock::time_point eligible_at,
                             std::size_t max_queued,
                             Clock::time_point enqueued_at = {});

  /// Is there a frame ready to transmit at `now`?
  [[nodiscard]] bool transmittable(Clock::time_point now) const noexcept {
    return unsent_ < queue_.size() && queue_[unsent_].eligible_at <= now;
  }

  /// The next frame to transmit. Precondition: transmittable(now).
  [[nodiscard]] const Outbound& next_unsent() const noexcept {
    return queue_[unsent_];
  }

  /// Marks next_unsent() as transmitted (bytes written or drop-injected).
  void advance_unsent() noexcept { ++unsent_; }

  /// Random access for WritevPlan: index of the next frame to transmit
  /// and the frame at queue position `i` (0 = oldest unacked).
  [[nodiscard]] std::size_t unsent_index() const noexcept { return unsent_; }
  [[nodiscard]] const Outbound& frame_at(std::size_t i) const noexcept {
    return queue_[i];
  }

  /// Processes a cumulative ack: releases frames with seq <= acked. When
  /// `latency` is given, each released frame records enqueue → now.
  void on_ack(std::uint64_t acked, Clock::time_point now = {},
              LatencyHistogram* latency = nullptr) noexcept;

  /// Rewinds transmission to the first unacked frame (reconnect or
  /// retransmit timeout); counts skipped-over frames as retransmits.
  void rewind_unsent() noexcept;

  /// Earliest instant a queued-but-ineligible frame becomes transmittable
  /// (delay injection), or time_point::max() if none.
  [[nodiscard]] Clock::time_point next_eligible_at() const noexcept;

  /// Frames transmitted but not yet acked.
  [[nodiscard]] bool in_flight() const noexcept { return unsent_ > 0; }

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }

  /// Drops all queued frames (node shutdown). The stream positions are
  /// kept so the seq space stays consistent.
  void clear_queue() noexcept;

  [[nodiscard]] std::uint64_t assign_seq() noexcept { return ++last_seq_; }

  // ---- Adaptive retransmit timeout (RFC 6298 shape) ------------------
  //
  // The fixed timeout either stalls recovery (too long for a fast link)
  // or rewinds spuriously (too short under queueing). Instead the link
  // estimates SRTT/RTTVAR from the enqueue → cumulative-ack samples the
  // latency histogram already measures, and arms the retransmit clock at
  //   rto = clamp(srtt + max(granularity, 4·rttvar), rto_min, rto_max).
  // Retransmitted frames contribute no samples (Karn), and the RTO
  // doubles after each timeout-triggered rewind until fresh acks re-seed
  // the estimator.

  /// Installs the estimator configuration (copied from NodeLimits at node
  /// setup; this header cannot depend on node.hpp). `initial_ms` is the
  /// timeout used before the first sample — and always, when `adaptive`
  /// is off.
  void configure_rto(bool adaptive, std::uint32_t initial_ms,
                     std::uint32_t min_ms, std::uint32_t max_ms) noexcept {
    rto_adaptive_ = adaptive;
    rto_initial_ms_ = initial_ms;
    rto_min_ms_ = min_ms;
    rto_max_ms_ = max_ms;
  }

  /// Current value for arming the retransmit clock, in milliseconds.
  [[nodiscard]] std::uint32_t rto_ms() const noexcept {
    return rto_adaptive_ && rto_has_sample_ ? rto_current_ms_
                                            : rto_initial_ms_;
  }

  /// Exponential backoff after a timeout-triggered rewind; the next
  /// accepted sample re-derives the RTO from srtt/rttvar.
  void backoff_rto() noexcept;

  [[nodiscard]] bool has_rtt_sample() const noexcept {
    return rto_has_sample_;
  }
  [[nodiscard]] double srtt_ms() const noexcept { return srtt_ms_; }
  [[nodiscard]] double rttvar_ms() const noexcept { return rttvar_ms_; }

  /// Receive side: a (re)connect makes the sender rewind to its first
  /// unacked frame, so duplicates of already-delivered seqs are expected
  /// and must not count as spurious retransmits.
  void expect_rewind_dups() noexcept { rewind_dups_expected_ = true; }

  // ---- Inbound ordered stream ---------------------------------------

  /// Classifies an arriving data seq: 0 = deliver (and advances the
  /// stream), -1 = duplicate, +1 = gap (discard, sender will rewind).
  [[nodiscard]] int classify_and_advance(std::uint64_t seq) noexcept;

  /// Highest contiguously delivered seq (the cumulative ack we send).
  [[nodiscard]] std::uint64_t delivered_seq() const noexcept {
    return next_expected_ - 1;
  }

  // ---- Connection bookkeeping (owned by the net event loop) ----------

  State state = State::idle;
  Fd fd;
  FrameDecoder decoder;
  /// Control/spill buffer: hello and ack frames, plus the remainder of a
  /// partially-written data frame. Data frames otherwise go straight from
  /// the ring via WritevPlan and never live here.
  std::vector<std::byte> write_buf;
  std::size_t write_off = 0;
  /// Dialer backoff: next dial attempt not before this instant.
  Clock::time_point next_dial_at{};
  std::uint32_t backoff_ms = 0;
  /// Handshake must complete by this instant or the attempt is abandoned.
  Clock::time_point handshake_deadline{};
  /// Retransmit: rewind if no ack progress by this instant.
  Clock::time_point retransmit_deadline{};
  bool ack_pending = false;   ///< we owe the peer a cumulative ack
  /// No-progress acks received while frames are in flight. The receiver
  /// acks every arrival, so a no-progress ack means it is discarding
  /// ahead-of-stream frames behind a loss — rewind without waiting for
  /// the retransmit timeout (fast retransmit).
  std::uint32_t stale_acks = 0;
  bool read_paused = false;   ///< backpressure: stop reading this peer
  bool ever_connected = false;
  /// Sticky readiness flags (edge-triggered discipline): set by reactor
  /// events, cleared only when the corresponding syscall returns EAGAIN.
  bool ev_readable = false;
  bool ev_writable = false;
  PeerCounters counters;

 private:
  /// Folds one non-retransmitted enqueue → ack sample into srtt/rttvar
  /// and re-derives the RTO.
  void note_rtt(double sample_ms) noexcept;

  ProcessId peer_ = 0;
  PeerAddress addr_;
  bool dialer_ = false;

  OutboundRing queue_;
  std::size_t unsent_ = 0;        ///< index of next frame to transmit
  std::uint64_t last_seq_ = 0;    ///< last assigned outbound seq
  std::uint64_t next_expected_ = 1;  ///< next inbound seq to deliver

  // RTO estimator (configure_rto installs the NodeLimits values).
  bool rto_adaptive_ = true;
  std::uint32_t rto_initial_ms_ = 100;
  std::uint32_t rto_min_ms_ = 20;
  std::uint32_t rto_max_ms_ = 2000;
  bool rto_has_sample_ = false;
  double srtt_ms_ = 0.0;
  double rttvar_ms_ = 0.0;
  /// Estimator-derived value (no backoff applied).
  std::uint32_t rto_derived_ms_ = 0;
  /// Active value: derived, doubled by backoff_rto() after timeouts.
  /// Ack progress collapses it back to derived — Karn keeps retransmitted
  /// frames out of the estimator, so without this a burst of losses would
  /// pin the RTO at the cap for the rest of the recovery.
  std::uint32_t rto_current_ms_ = 0;

  // Spurious-retransmit detection (receive side). A duplicate seq means
  // the sender rewound; it was necessary only if this receiver saw a gap
  // since its last in-order delivery (loss recovery) or a reconnect made
  // rewinding mandatory. Any other duplicate is a retransmit the sender
  // did not need — its RTO fired while the ack was still in flight.
  bool gap_since_delivery_ = false;
  bool rewind_dups_expected_ = false;
};

/// One vectored send assembled from a link's pending bytes: the tail of
/// write_buf first (acks, hello, spilled remainders), then a
/// (header, payload) iovec pair per transmittable frame, gathered in
/// place from the ring — no copies. Fixed-capacity, reusable; building a
/// plan allocates nothing.
///
/// build() reads the link without mutating it (the drop callback is the
/// one side effect: fault draws are consumed per candidate). commit()
/// applies the kernel's answer: it consumes write_buf, advances the
/// unsent cursor over fully-sent and drop-injected frames in order, and
/// spills the first partial frame's remainder into write_buf. Frames the
/// kernel did not reach stay queued; an EAGAIN round re-draws their drop
/// fate next time, which only reshuffles the injector's random stream.
class WritevPlan {
 public:
  static constexpr std::size_t kMaxFrames = 31;
  static constexpr std::size_t kMaxIovecs = 1 + 2 * kMaxFrames;
  static constexpr std::size_t kMaxBytes = 256 * 1024;

  template <typename DropFn>
  void build(const PeerLink& link, Clock::time_point now,
             bool include_frames, DropFn&& should_drop) {
    iov_count_ = 0;
    frame_count_ = 0;
    total_bytes_ = 0;
    buf_bytes_ = 0;
    if (link.write_off < link.write_buf.size()) {
      buf_bytes_ = link.write_buf.size() - link.write_off;
      push_iov(link.write_buf.data() + link.write_off, buf_bytes_);
      total_bytes_ += buf_bytes_;
    }
    if (!include_frames) {
      return;
    }
    std::size_t pos = link.unsent_index();
    while (frame_count_ < kMaxFrames && total_bytes_ < kMaxBytes &&
           pos < link.queue_depth()) {
      const Outbound& f = link.frame_at(pos);
      if (f.eligible_at > now) {
        break;  // in-order stream: an ineligible frame blocks the rest
      }
      if (should_drop()) {
        frames_[frame_count_++] = FrameSlot{0, true};
      } else {
        const std::size_t bytes = f.header.size() + f.payload.size();
        push_iov(f.header.data(), f.header.size());
        push_iov(f.payload.data(), f.payload.size());
        frames_[frame_count_++] = FrameSlot{bytes, false};
        total_bytes_ += bytes;
      }
      ++pos;
    }
  }

  [[nodiscard]] bool empty() const noexcept {
    return iov_count_ == 0 && frame_count_ == 0;
  }
  [[nodiscard]] iovec* iov() noexcept { return iov_.data(); }
  [[nodiscard]] std::size_t iov_count() const noexcept { return iov_count_; }
  [[nodiscard]] std::size_t frame_count() const noexcept {
    return frame_count_;
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return total_bytes_;
  }

  struct CommitResult {
    std::size_t frames_sent = 0;
    std::size_t frames_dropped = 0;
    /// True if the unsent cursor moved (arms the retransmit clock).
    bool advanced = false;
  };

  /// Applies `written` bytes (the sendmsg return; 0 is valid and still
  /// commits leading drop-injected frames) to the link.
  CommitResult commit(PeerLink& link, std::size_t written) const;

 private:
  struct FrameSlot {
    std::size_t bytes = 0;
    bool dropped = false;
  };

  void push_iov(const std::byte* data, std::size_t len) noexcept {
    // sendmsg never writes through the iovec; the const_cast only
    // satisfies the POSIX struct.
    iov_[iov_count_++] =
        iovec{const_cast<std::byte*>(data), len};  // NOLINT
  }

  std::array<iovec, kMaxIovecs> iov_{};
  std::array<FrameSlot, kMaxFrames> frames_{};
  std::size_t iov_count_ = 0;
  std::size_t frame_count_ = 0;
  std::size_t total_bytes_ = 0;
  std::size_t buf_bytes_ = 0;
};

}  // namespace rcp::net
