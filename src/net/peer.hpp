// Per-peer link state: one reliable, ordered, framed stream to one peer.
//
// The paper's message system is "reliable but arbitrarily delayed". A raw
// TCP connection is reliable only while it lives — bytes in flight when a
// connection dies (or frames skipped by drop injection) are gone. The link
// therefore runs its own thin reliability layer on top of the framed
// stream:
//
//   * every data frame carries a per-link sequence number, assigned at
//     enqueue and retained until cumulatively acked by the receiver;
//   * on (re)connect, transmission rewinds to the first unacked frame;
//   * on retransmit timeout with no ack progress, likewise (go-back-N);
//   * the receive side tracks next_expected and discards duplicates
//     (possible after reconnect) and ahead-of-stream gaps (possible after
//     an injected drop) — the sender's rewind fills the gap in order.
//
// The outbound queue is bounded (NodeLimits::max_queued_frames). When a
// peer cannot drain the queue — crashed and past reconnect, or flooding us
// into amplification — messages past the bound are dropped at enqueue: to
// this sender the peer then behaves like a faulty process that lost them,
// which is exactly what the protocols tolerate. The queued stream itself
// is never cut (clearing it would wedge the receiver's in-order dedupe
// forever), so delivery resumes seamlessly if the peer recovers. Before
// the bound, crossing the high-water mark pauses reads from that peer
// (backpressure on the only traffic source that can grow this queue).
//
// PeerLink owns no sockets and does no I/O; the Node event loop moves
// bytes and drives the state transitions.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/stats.hpp"

namespace rcp::net {

using Clock = std::chrono::steady_clock;

/// One queued-but-not-yet-acked outbound payload.
struct Outbound {
  std::uint64_t seq = 0;
  Bytes payload;
  /// Not transmitted before this instant (delay injection).
  Clock::time_point eligible_at{};
};

class PeerLink {
 public:
  enum class State : std::uint8_t {
    idle,        ///< no connection; dialers schedule a dial, acceptors wait
    connecting,  ///< non-blocking connect in progress (dialer only)
    hello_sent,  ///< dialer sent hello, awaiting the peer's reply
    established, ///< handshake complete; data/ack frames flow
  };

  void init(ProcessId peer, PeerAddress addr, bool dialer) {
    peer_ = peer;
    addr_ = addr;
    dialer_ = dialer;
  }

  [[nodiscard]] ProcessId peer() const noexcept { return peer_; }
  [[nodiscard]] const PeerAddress& addr() const noexcept { return addr_; }
  [[nodiscard]] bool dialer() const noexcept { return dialer_; }

  // ---- Outbound reliable stream -------------------------------------

  /// Queues a payload; returns false (and counts an overflow drop) if the
  /// bound was reached — the message is then lost to this peer.
  [[nodiscard]] bool enqueue(Bytes payload, Clock::time_point eligible_at,
                             std::size_t max_queued);

  /// Is there a frame ready to transmit at `now`?
  [[nodiscard]] bool transmittable(Clock::time_point now) const noexcept {
    return unsent_ < queue_.size() && queue_[unsent_].eligible_at <= now;
  }

  /// The next frame to transmit. Precondition: transmittable(now).
  [[nodiscard]] const Outbound& next_unsent() const noexcept {
    return queue_[unsent_];
  }

  /// Marks next_unsent() as transmitted (bytes written or drop-injected).
  void advance_unsent() noexcept { ++unsent_; }

  /// Processes a cumulative ack: releases frames with seq <= acked.
  void on_ack(std::uint64_t acked) noexcept;

  /// Rewinds transmission to the first unacked frame (reconnect or
  /// retransmit timeout); counts skipped-over frames as retransmits.
  void rewind_unsent() noexcept;

  /// Earliest instant a queued-but-ineligible frame becomes transmittable
  /// (delay injection), or time_point::max() if none.
  [[nodiscard]] Clock::time_point next_eligible_at() const noexcept;

  /// Frames transmitted but not yet acked.
  [[nodiscard]] bool in_flight() const noexcept { return unsent_ > 0; }

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }

  /// Drops all queued frames (node shutdown). The stream positions are
  /// kept so the seq space stays consistent.
  void clear_queue() noexcept;

  [[nodiscard]] std::uint64_t assign_seq() noexcept { return ++last_seq_; }

  // ---- Inbound ordered stream ---------------------------------------

  /// Classifies an arriving data seq: 0 = deliver (and advances the
  /// stream), -1 = duplicate, +1 = gap (discard, sender will rewind).
  [[nodiscard]] int classify_and_advance(std::uint64_t seq) noexcept;

  /// Highest contiguously delivered seq (the cumulative ack we send).
  [[nodiscard]] std::uint64_t delivered_seq() const noexcept {
    return next_expected_ - 1;
  }

  // ---- Connection bookkeeping (owned by the Node loop) ---------------

  State state = State::idle;
  Fd fd;
  FrameDecoder decoder;
  /// Socket write buffer: encoded frames not yet accepted by the kernel.
  std::vector<std::byte> write_buf;
  std::size_t write_off = 0;
  /// Dialer backoff: next dial attempt not before this instant.
  Clock::time_point next_dial_at{};
  std::uint32_t backoff_ms = 0;
  /// Handshake must complete by this instant or the attempt is abandoned.
  Clock::time_point handshake_deadline{};
  /// Retransmit: rewind if no ack progress by this instant.
  Clock::time_point retransmit_deadline{};
  bool ack_pending = false;   ///< we owe the peer a cumulative ack
  /// No-progress acks received while frames are in flight. The receiver
  /// acks every arrival, so a no-progress ack means it is discarding
  /// ahead-of-stream frames behind a loss — rewind without waiting for
  /// the retransmit timeout (fast retransmit).
  std::uint32_t stale_acks = 0;
  bool read_paused = false;   ///< backpressure: stop reading this peer
  bool ever_connected = false;
  PeerCounters counters;

 private:
  ProcessId peer_ = 0;
  PeerAddress addr_;
  bool dialer_ = false;

  std::deque<Outbound> queue_;
  std::size_t unsent_ = 0;        ///< index of next frame to transmit
  std::uint64_t last_seq_ = 0;    ///< last assigned outbound seq
  std::uint64_t next_expected_ = 1;  ///< next inbound seq to deliver
};

}  // namespace rcp::net
