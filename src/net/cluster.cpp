#include "net/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "net/loop.hpp"

namespace rcp::net {

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

}  // namespace

Cluster::Cluster(ClusterConfig cfg, const ProcessFactory& factory)
    : cfg_(std::move(cfg)) {
  RCP_EXPECT(cfg_.n >= 1, "cluster needs at least one node");
  RCP_EXPECT(static_cast<bool>(factory), "null process factory");

  correct_.assign(cfg_.n, true);
  for (const ProcessId p : cfg_.arbitrary_faulty) {
    RCP_EXPECT(p < cfg_.n, "arbitrary_faulty id outside [0, n)");
    correct_[p] = false;
  }
  for (const auto& [p, phase] : cfg_.crashes) {
    RCP_EXPECT(p < cfg_.n, "crash schedule id outside [0, n)");
    (void)phase;
    correct_[p] = false;
  }

  nodes_.reserve(cfg_.n);
  for (ProcessId id = 0; id < cfg_.n; ++id) {
    NodeConfig nc;
    nc.id = id;
    nc.n = cfg_.n;
    nc.listen_host = cfg_.host;
    nc.listen_port =
        cfg_.base_port == 0
            ? std::uint16_t{0}
            : static_cast<std::uint16_t>(cfg_.base_port + id);
    nc.seed = cfg_.seed;
    nc.limits = cfg_.limits;
    nc.backend = cfg_.backend;
    nc.faults.link = cfg_.link_faults;
    for (const auto& [node, event] : cfg_.disconnects) {
      if (node == id) {
        nc.faults.disconnects.push_back(event);
      }
    }
    for (const auto& [node, phase] : cfg_.crashes) {
      if (node == id) {
        nc.crash_at_phase = phase;
      }
    }
    nodes_.push_back(std::make_unique<Node>(nc, factory(id)));
  }

  // A full mesh is ~n^2 sockets plus listeners and wake pipes; make sure
  // the fd limit accommodates it before any bind can hit EMFILE.
  (void)raise_fd_limit(static_cast<std::size_t>(cfg_.n) * cfg_.n +
                       static_cast<std::size_t>(cfg_.n) * 4 + 64);

  // Bind everything first, then distribute the real ports: with ephemeral
  // ports nobody knows an address until every listener exists.
  std::vector<std::uint16_t> ports(cfg_.n, 0);
  for (ProcessId id = 0; id < cfg_.n; ++id) {
    ports[id] = nodes_[id]->listen();
  }
  for (ProcessId id = 0; id < cfg_.n; ++id) {
    for (ProcessId p = 0; p < cfg_.n; ++p) {
      if (p != id) {
        nodes_[id]->set_peer(p, PeerAddress{cfg_.host, ports[p]});
      }
    }
  }
}

ClusterResult Cluster::run() {
  const std::uint32_t loop_count =
      cfg_.loop_threads == 0 ? 0 : std::min(cfg_.loop_threads, cfg_.n);

  std::vector<std::unique_ptr<EventLoop>> loops;
  loops.reserve(loop_count);
  for (std::uint32_t t = 0; t < loop_count; ++t) {
    loops.push_back(std::make_unique<EventLoop>(cfg_.backend));
  }
  for (ProcessId id = 0; id < cfg_.n && loop_count > 0; ++id) {
    loops[id % loop_count]->add(*nodes_[id]);
  }

  const auto started = steady_clock::now();
  std::vector<std::thread> threads;
  if (loop_count > 0) {
    threads.reserve(loop_count);
    for (std::uint32_t t = 0; t < loop_count; ++t) {
      threads.emplace_back([loop = loops[t].get()] { loop->run(); });
    }
  } else {
    threads.reserve(cfg_.n);
    for (ProcessId id = 0; id < cfg_.n; ++id) {
      threads.emplace_back([this, id] { nodes_[id]->run(); });
    }
  }

  const auto deadline = started + milliseconds(cfg_.timeout_ms);
  ClusterResult result;
  while (true) {
    bool all_decided = true;
    bool correct_node_died = false;
    for (ProcessId id = 0; id < cfg_.n; ++id) {
      if (!correct_[id]) {
        continue;
      }
      if (!nodes_[id]->decision().has_value()) {
        all_decided = false;
        // A correct node whose loop already tore it down will never decide;
        // waiting for the timeout would only hide the failure.
        if (nodes_[id]->finished()) {
          correct_node_died = true;
        }
      }
    }
    if (all_decided || correct_node_died) {
      break;
    }
    if (steady_clock::now() >= deadline) {
      result.timed_out = true;
      break;
    }
    std::this_thread::sleep_for(milliseconds(2));
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(steady_clock::now() - started).count();

  for (const auto& node : nodes_) {
    node->request_stop();
  }
  for (std::thread& t : threads) {
    t.join();
  }

  result.nodes.reserve(cfg_.n);
  bool any_correct_undecided = false;
  bool disagreement = false;
  std::optional<Value> agreed;
  for (ProcessId id = 0; id < cfg_.n; ++id) {
    NodeOutcome out;
    out.id = id;
    out.correct = correct_[id];
    out.decision = nodes_[id]->decision();
    out.phase = nodes_[id]->phase();
    out.crashed = nodes_[id]->crashed();
    out.error = nodes_[id]->error();
    out.stats = nodes_[id]->stats();

    result.total_delivered += out.stats.msgs_delivered;
    result.total_sent += out.stats.msgs_sent;
    for (const PeerCounters& pc : out.stats.peers) {
      result.total_bytes_out += pc.bytes_out;
      result.total_reconnects += pc.reconnects;
      result.total_retransmits += pc.retransmits;
      result.total_spurious_retransmits += pc.spurious_retransmits;
    }

    if (correct_[id]) {
      if (!out.decision.has_value()) {
        any_correct_undecided = true;
      } else if (!agreed.has_value()) {
        agreed = out.decision;
      } else if (*agreed != *out.decision) {
        disagreement = true;
      }
    }
    result.nodes.push_back(std::move(out));
  }

  result.all_correct_decided = !any_correct_undecided;
  result.agreement = !disagreement;
  if (result.agreement && agreed.has_value()) {
    result.value = agreed;
  }
  return result;
}

}  // namespace rcp::net
