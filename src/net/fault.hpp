// Transport-level fault injection, mirroring the semantics of the
// simulator's adversaries (src/adversary/) at the socket layer:
//
//   drop   — a data frame's transmission is skipped with probability p
//            (like a lossy link; the ack/retransmit machinery recovers, so
//            end-to-end delivery stays reliable — the paper's model);
//   delay  — each outbound frame becomes eligible for transmission only
//            after a uniform-random hold (the paper's "arbitrarily long
//            transmission delay", bounded so runs terminate);
//   disconnect — the link to a chosen peer is force-closed once this node
//            has delivered a given number of messages; the connector's
//            backoff/reconnect path then restores it (the TCP analogue of
//            the simulator's partition-then-heal schedules).
//
// All randomness flows from the node's deterministic Rng, so a fault
// pattern is reproducible per (seed, node id) even though socket timing
// is not.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rcp::net {

/// Link-level loss/latency knobs, applied to every peer of the node.
struct LinkFaults {
  /// Probability a data-frame transmission is skipped (recovered by
  /// retransmission). 0 disables.
  double drop_probability = 0.0;
  /// Uniform per-frame eligibility delay in [min, max] milliseconds.
  std::uint32_t delay_min_ms = 0;
  std::uint32_t delay_max_ms = 0;
};

/// Force-close the link to `peer` when the node's delivered-message count
/// reaches `after_delivered`. Fires once.
struct DisconnectEvent {
  ProcessId peer = 0;
  std::uint64_t after_delivered = 0;
};

struct FaultPlan {
  LinkFaults link;
  std::vector<DisconnectEvent> disconnects;

  [[nodiscard]] bool any_link_faults() const noexcept {
    return link.drop_probability > 0.0 || link.delay_max_ms > 0;
  }
};

/// Stateful executor of one node's FaultPlan.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Should the next data-frame transmission be dropped?
  [[nodiscard]] bool should_drop();

  /// Eligibility delay for a frame enqueued now, in milliseconds.
  [[nodiscard]] std::uint32_t delay_ms();

  /// Peers whose disconnect events have matured at `delivered` messages.
  /// Each event fires at most once.
  [[nodiscard]] std::vector<ProcessId> due_disconnects(
      std::uint64_t delivered);

 private:
  FaultPlan plan_;
  Rng rng_;
  std::vector<bool> fired_;
};

}  // namespace rcp::net
