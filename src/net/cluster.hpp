// In-process loopback cluster: N net::Nodes on real sockets.
//
// The cluster is the net-mode analogue of sim::Simulation::run(): build a
// process per node from a factory, wire the full mesh, run until every
// correct node decides (or a wall-clock timeout), then stop everything and
// report per-node outcomes plus the paper's two checkable properties —
// all correct processes decide, and they decide the same value.
//
// Threading: loop_threads = 0 (default) runs one thread per node, each on
// its own private event loop — the faithful "n independent machines"
// configuration. loop_threads = T > 0 multiplexes all n nodes onto
// min(T, n) shared EventLoop threads (round-robin assignment), which is
// how n=100 full-mesh (~10k sockets) runs on single-digit threads.
// Protocol semantics are identical; only the scheduler changes.
//
// Ports: by default every node binds an ephemeral port (bind 0, read the
// real port back) and the cluster distributes the port table before any
// thread starts, so parallel test runs never collide. A non-zero
// base_port pins node i to base_port + i instead (the multi-process
// deployment pattern; see examples/net_cluster --fork).
//
// Faultiness: a node is *faulty* if it hosts a Byzantine process
// (arbitrary_faulty) or is scheduled to fail-stop (crashes). Decision and
// agreement are required of correct nodes only — exactly the paper's
// claim, which says nothing about what faulty processes decide.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "net/node.hpp"

namespace rcp::net {

struct ClusterConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  std::string host = "127.0.0.1";
  /// 0 = ephemeral port per node; otherwise node i listens on
  /// base_port + i.
  std::uint16_t base_port = 0;
  NodeLimits limits;
  /// Drop/delay injection applied at every node.
  LinkFaults link_faults;
  /// (node, event): force-close that node's link per the event.
  std::vector<std::pair<ProcessId, DisconnectEvent>> disconnects;
  /// (node, phase): fail-stop that node when its phase reaches the value.
  std::vector<std::pair<ProcessId, Phase>> crashes;
  /// Nodes hosting Byzantine processes (exempt from decision/agreement).
  std::vector<ProcessId> arbitrary_faulty;
  /// Give up if the correct nodes have not all decided by then.
  std::uint32_t timeout_ms = 30000;
  /// 0 = one thread per node; T > 0 = min(T, n) shared loop threads.
  std::uint32_t loop_threads = 0;
  /// Readiness backend for every loop (automatic = epoll on Linux).
  Reactor::Backend backend = Reactor::Backend::automatic;
};

struct NodeOutcome {
  ProcessId id = 0;
  bool correct = true;
  std::optional<Value> decision;
  Phase phase = 0;
  bool crashed = false;
  std::string error;  ///< non-empty if the node loop died on an exception
  NodeStats stats;
};

struct ClusterResult {
  bool all_correct_decided = false;
  /// All correct nodes that decided decided the same value.
  bool agreement = false;
  bool timed_out = false;
  std::optional<Value> value;  ///< the agreed value, when agreement holds
  double elapsed_seconds = 0.0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_sent = 0;
  std::uint64_t total_bytes_out = 0;
  std::uint64_t total_reconnects = 0;
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_spurious_retransmits = 0;
  std::vector<NodeOutcome> nodes;

  /// Decision + agreement both hold and no node loop errored.
  [[nodiscard]] bool success() const noexcept {
    if (!all_correct_decided || !agreement) {
      return false;
    }
    for (const NodeOutcome& node : nodes) {
      if (!node.error.empty()) {
        return false;
      }
    }
    return true;
  }
};

class Cluster {
 public:
  using ProcessFactory =
      std::function<std::unique_ptr<sim::Process>(ProcessId)>;

  /// Builds every node, binds every listener and distributes the port
  /// table. Throws on invalid config or if a bind fails.
  Cluster(ClusterConfig cfg, const ProcessFactory& factory);

  /// Runs all nodes to completion (every correct node decided, a correct
  /// node died early, or timeout), stops and joins them, and returns the
  /// collected outcomes. One shot: call once per Cluster.
  [[nodiscard]] ClusterResult run();

  [[nodiscard]] Node& node(ProcessId p) { return *nodes_.at(p); }
  [[nodiscard]] std::uint32_t n() const noexcept { return cfg_.n; }

 private:
  ClusterConfig cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> correct_;
};

}  // namespace rcp::net
