#include "net/frame.hpp"

#include <cstring>

#include "common/error.hpp"

namespace rcp::net {

namespace {

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

[[nodiscard]] std::uint32_t read_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t read_u64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// hello body: type(1) magic(4) version(1) n(4) node_id(4)
constexpr std::size_t kHelloBody = 1 + 4 + 1 + 4 + 4;
/// ack body: type(1) seq(8)
constexpr std::size_t kAckBody = 1 + 8;
/// data body: type(1) seq(8) payload(>= 0)
constexpr std::size_t kDataHeader = 1 + 8;

}  // namespace

void append_hello(std::vector<std::byte>& out, std::uint32_t node_id,
                  std::uint32_t n) {
  put_u32(out, static_cast<std::uint32_t>(kHelloBody));
  put_u8(out, static_cast<std::uint8_t>(FrameType::hello));
  put_u32(out, kHelloMagic);
  put_u8(out, kWireVersion);
  put_u32(out, n);
  put_u32(out, node_id);
}

void append_data(std::vector<std::byte>& out, std::uint64_t seq,
                 const Bytes& payload) {
  RCP_EXPECT(payload.size() <= kMaxFrameBody - kDataHeader,
             "payload exceeds frame body limit");
  put_u32(out, static_cast<std::uint32_t>(kDataHeader + payload.size()));
  put_u8(out, static_cast<std::uint8_t>(FrameType::data));
  put_u64(out, seq);
  out.insert(out.end(), payload.begin(), payload.end());
}

void append_ack(std::vector<std::byte>& out, std::uint64_t acked_seq) {
  put_u32(out, static_cast<std::uint32_t>(kAckBody));
  put_u8(out, static_cast<std::uint8_t>(FrameType::ack));
  put_u64(out, acked_seq);
}

void encode_data_header(std::span<std::byte, kDataFrameHeader> out,
                        std::uint64_t seq, std::size_t payload_size) {
  RCP_EXPECT(payload_size <= kMaxFrameBody - kDataHeader,
             "payload exceeds frame body limit");
  const auto body_len =
      static_cast<std::uint32_t>(kDataHeader + payload_size);
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((body_len >> (8 * i)) & 0xff);
  }
  out[4] = static_cast<std::byte>(FrameType::data);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(5 + i)] =
        static_cast<std::byte>((seq >> (8 * i)) & 0xff);
  }
}

void FrameDecoder::feed(std::span<const std::byte> data) {
  // Reclaim consumed prefix before growing; keeps the buffer near the size
  // of one partial frame in steady state.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) {
    return std::nullopt;
  }
  const std::uint32_t body_len = read_u32(buf_.data() + pos_);
  if (body_len > kMaxFrameBody) {
    throw DecodeError("frame body length exceeds limit");
  }
  if (body_len < 1) {
    throw DecodeError("frame body missing type byte");
  }
  if (avail < 4 + static_cast<std::size_t>(body_len)) {
    return std::nullopt;
  }
  const std::byte* body = buf_.data() + pos_ + 4;
  Frame frame;
  switch (static_cast<FrameType>(body[0])) {
    case FrameType::hello: {
      if (body_len != kHelloBody) {
        throw DecodeError("hello frame has wrong length");
      }
      frame.type = FrameType::hello;
      const std::uint32_t magic = read_u32(body + 1);
      if (magic != kHelloMagic) {
        throw DecodeError("hello frame magic mismatch");
      }
      const auto version = static_cast<std::uint8_t>(body[5]);
      if (version != kWireVersion) {
        throw DecodeError("hello frame version mismatch");
      }
      frame.n = read_u32(body + 6);
      frame.node_id = read_u32(body + 10);
      break;
    }
    case FrameType::data: {
      if (body_len < kDataHeader) {
        throw DecodeError("data frame truncated");
      }
      frame.type = FrameType::data;
      frame.seq = read_u64(body + 1);
      frame.payload =
          Bytes(std::span<const std::byte>(body + kDataHeader,
                                           body_len - kDataHeader));
      break;
    }
    case FrameType::ack: {
      if (body_len != kAckBody) {
        throw DecodeError("ack frame has wrong length");
      }
      frame.type = FrameType::ack;
      frame.seq = read_u64(body + 1);
      break;
    }
    default:
      throw DecodeError("unknown frame type");
  }
  pos_ += 4 + static_cast<std::size_t>(body_len);
  return frame;
}

}  // namespace rcp::net
