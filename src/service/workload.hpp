// Deterministic client workload generation shared by the sim driver, the
// net-mode load generator and the tests.
//
// Partitioning is the sharding contract (docs/SERVICE.md): a key hashes to
// exactly one (owner replica, shard) pair, the owner is the only origin
// that ever writes the key, and therefore the per-stream seq order — which
// Bracha delivery plus the replica's FIFO barrier replicate everywhere —
// fully determines the state. Byzantine replicas are assigned no keys.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "service/kv_store.hpp"

namespace rcp::service {

struct Workload {
  std::uint32_t n = 0;
  std::uint32_t shards = 1;
  std::uint32_t correct = 0;  ///< origins 0..correct-1 own keys
  std::uint64_t total_ops = 0;
  /// scripts[origin][shard] = that stream's ops, in origination order.
  std::vector<std::vector<std::vector<KvOp>>> scripts;
  /// Ops each origin will originate (the replica's termination target).
  std::vector<std::uint64_t> expected_per_origin;
};

/// Builds `total_ops` writes over a key space sized to produce both fresh
/// keys and overwrites, routed by key hash to the `n - byzantine` correct
/// owners (ids 0..n-byzantine-1) and their shards. Pure function of the
/// arguments.
[[nodiscard]] Workload build_workload(core::ConsensusParams params,
                                      std::uint32_t byzantine,
                                      std::uint32_t shards,
                                      std::uint64_t total_ops,
                                      std::uint64_t seed);

}  // namespace rcp::service
