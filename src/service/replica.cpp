#include "service/replica.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::service {

namespace {
/// Pending ops a Byzantine origin can park ahead of its own FIFO cursor
/// before the replica starts shedding them. Correct origins never exceed
/// their window, so the bound only disciplines attackers.
constexpr std::size_t kPendingSlack = 4;
}  // namespace

KvReplica::KvReplica(ReplicaConfig cfg, std::shared_ptr<OpSource> source)
    : cfg_(cfg),
      source_(std::move(source)),
      batcher_(cfg.params.n, cfg.batching),
      kv_(cfg.params.n * cfg.shards, cfg.keep_log),
      next_seq_(cfg.shards, 0),
      inflight_(cfg.shards, 0),
      next_apply_(static_cast<std::size_t>(cfg.params.n) * cfg.shards, 0),
      pending_(static_cast<std::size_t>(cfg.params.n) * cfg.shards),
      applied_from_(cfg.params.n, 0) {
  RCP_EXPECT(cfg_.shards >= 1 && cfg_.shards < (1u << kShardBits),
             "KvReplica: shard count out of tag range");
  RCP_EXPECT(source_ != nullptr, "KvReplica: null op source");
  const std::uint32_t hint = cfg_.engine_capacity != 0
                                 ? cfg_.engine_capacity
                                 : cfg_.params.n * cfg_.window;
  engines_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    engines_.emplace_back(cfg_.params, hint, ext::kRbValueAny);
  }
  if (!cfg_.expected_per_origin.empty()) {
    for (const std::uint64_t expected : cfg_.expected_per_origin) {
      if (expected > 0) {
        ++origins_remaining_;
      }
    }
  }
  scratch_.reserve(ext::RbxBatch::kMaxMessages);
}

ext::RbEngineStats KvReplica::engine_stats() const {
  ext::RbEngineStats total;
  for (const ext::RbEngine& e : engines_) {
    const ext::RbEngineStats& s = e.stats();
    total.handled += s.handled;
    total.dropped_origin_range += s.dropped_origin_range;
    total.dropped_value_range += s.dropped_value_range;
    total.dropped_retired += s.dropped_retired;
    total.dropped_slot_overflow += s.dropped_slot_overflow;
    total.grows += s.grows;
  }
  return total;
}

std::size_t KvReplica::live_instances() const {
  std::size_t total = 0;
  for (const ext::RbEngine& e : engines_) {
    total += e.instance_count();
  }
  return total;
}

void KvReplica::pull(Context& ctx, std::uint32_t shard) {
  while (inflight_[shard] < cfg_.window) {
    const std::optional<KvOp> op = source_->next(shard);
    if (!op.has_value()) {
      return;
    }
    const std::uint64_t tag = make_tag(shard, next_seq_[shard]++);
    ++inflight_[shard];
    ++counters_.ops_submitted;
    batcher_.queue_broadcast(
        ctx, engines_[shard].start(self_, tag, pack_op(*op)));
  }
}

void KvReplica::pull_all(Context& ctx) {
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    pull(ctx, s);
  }
}

void KvReplica::on_start(Context& ctx) {
  self_ = ctx.self();
  pull_all(ctx);
  batcher_.flush(ctx);
}

void KvReplica::on_null(Context& ctx) {
  pull_all(ctx);
  batcher_.flush(ctx);
}

void KvReplica::on_message(Context& ctx, const Envelope& env) {
  try {
    if (ext::RbxBatch::is_batch(env.payload)) {
      scratch_.clear();
      ext::RbxBatch::decode_into(env.payload, scratch_, ext::kRbValueAny);
      ++counters_.batches_decoded;
      for (const ext::RbxMsg& msg : scratch_) {
        feed(ctx, env.sender, msg);
      }
    } else {
      feed(ctx, env.sender,
           ext::RbxMsg::decode(env.payload, ext::kRbValueAny));
    }
  } catch (const DecodeError&) {
    // Byzantine bytes: drop the payload, count it, stay alive.
    ++counters_.decode_errors;
  }
  pull_all(ctx);
  batcher_.flush(ctx);
}

void KvReplica::feed(Context& ctx, ProcessId sender, const ext::RbxMsg& msg) {
  const std::uint32_t shard = shard_of(msg.tag);
  if (shard >= cfg_.shards) {
    ++counters_.dropped_bad_shard;
    return;
  }
  ++counters_.msgs_decoded;
  const ext::RbEngine::Outcome out = engines_[shard].handle(sender, msg);
  for (const ext::RbxMsg& reply : out.to_broadcast) {
    batcher_.queue_broadcast(ctx, reply);
  }
  if (out.delivered.has_value()) {
    ++counters_.deliveries;
    on_delivered(ctx, shard, *out.delivered);
  }
}

void KvReplica::on_delivered(Context& ctx, std::uint32_t shard,
                             const ext::RbEngine::Delivery& d) {
  const std::uint32_t stream = stream_of(d.origin, shard);
  const std::uint64_t seq = seq_of(d.tag);
  if (seq < next_apply_[stream]) {
    ++counters_.stale_deliveries;
    return;
  }
  auto& pending = pending_[stream];
  if (pending.size() >=
      static_cast<std::size_t>(cfg_.window) * kPendingSlack + 16) {
    ++counters_.pending_overflow;
    return;
  }
  pending.emplace(seq, d.value);
  // FIFO barrier: apply the contiguous run starting at the cursor.
  auto it = pending.begin();
  while (it != pending.end() && it->first == next_apply_[stream]) {
    const std::uint64_t apply_seq = it->first;
    const KvOp op = unpack_op(it->second);
    it = pending.erase(it);
    ++next_apply_[stream];
    kv_.apply(stream, apply_seq, op);
    ++counters_.ops_applied;
    engines_[shard].retire_through(d.origin, make_tag(shard, apply_seq));
    if (d.origin == self_) {
      ++counters_.own_ops_applied;
      if (inflight_[shard] > 0) {
        --inflight_[shard];
      }
      if (apply_hook_) {
        apply_hook_(shard, apply_seq, op);
      }
    }
    if (!cfg_.expected_per_origin.empty() &&
        d.origin < cfg_.expected_per_origin.size()) {
      if (++applied_from_[d.origin] ==
              cfg_.expected_per_origin[d.origin] &&
          cfg_.expected_per_origin[d.origin] > 0) {
        if (--origins_remaining_ == 0) {
          ctx.decide(Value::one);
        }
      }
    }
  }
}

}  // namespace rcp::service
