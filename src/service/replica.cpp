#include "service/replica.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::service {

KvReplica::KvReplica(ReplicaConfig cfg, std::shared_ptr<OpSource> source)
    : cfg_(cfg),
      source_(std::move(source)),
      batcher_(cfg.params.n, cfg.batching),
      kv_(cfg.params.n * cfg.shards, cfg.keep_log),
      next_seq_(cfg.shards, 0),
      inflight_(cfg.shards, 0),
      next_apply_(static_cast<std::size_t>(cfg.params.n) * cfg.shards, 0),
      applied_from_(cfg.params.n, 0) {
  step_affinity_.assert_held();  // constructing thread is the first driver
  RCP_EXPECT(cfg_.shards >= 1 && cfg_.shards < (1u << kShardBits),
             "KvReplica: shard count out of tag range");
  RCP_EXPECT(source_ != nullptr, "KvReplica: null op source");
  const std::uint32_t hint = cfg_.engine_capacity != 0
                                 ? cfg_.engine_capacity
                                 : cfg_.params.n * cfg_.window;
  // Anchor-aware phantom-flood backstop, sized far above the origination
  // window: legitimate traffic must never hit it, because a dropped vote
  // is never retransmitted and Bracha's ready threshold has zero slack
  // under the full fault budget. "Far above" must account for *receiver
  // lag*, not just the window — the origin's window advances on a 2k+1
  // quorum, so the k slowest correct replicas can trail the frontier by an
  // unbounded backlog of live (unretired) instances; a cap near the window
  // wedges fault-free runs under load. The default is therefore an OOM
  // backstop (~tens of MB per origin at worst), not flow control.
  const std::uint32_t origin_cap =
      cfg_.origin_cap != 0 ? cfg_.origin_cap
                           : std::max(65536u, cfg_.window * 1024u);
  RCP_EXPECT(origin_cap > cfg_.window,
             "KvReplica: per-origin instance cap must exceed the window");
  engines_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    engines_.emplace_back(cfg_.params, hint, ext::kRbValueAny, origin_cap);
  }
  if (!cfg_.expected_per_origin.empty()) {
    for (const std::uint64_t expected : cfg_.expected_per_origin) {
      if (expected > 0) {
        ++origins_remaining_;
      }
    }
  }
  scratch_.reserve(ext::RbxBatch::kMaxMessages);
}

ext::RbEngineStats KvReplica::engine_stats() const {
  step_affinity_.assert_held();  // driver-thread observer (see header)
  ext::RbEngineStats total;
  for (const ext::RbEngine& e : engines_) {
    const ext::RbEngineStats& s = e.stats();
    total.handled += s.handled;
    total.dropped_origin_range += s.dropped_origin_range;
    total.dropped_value_range += s.dropped_value_range;
    total.dropped_retired += s.dropped_retired;
    total.dropped_sender_dup += s.dropped_sender_dup;
    total.dropped_slot_overflow += s.dropped_slot_overflow;
    total.dropped_origin_flood += s.dropped_origin_flood;
    total.evicted_unanchored += s.evicted_unanchored;
    total.grows += s.grows;
  }
  return total;
}

std::size_t KvReplica::live_instances() const {
  step_affinity_.assert_held();  // driver-thread observer (see header)
  std::size_t total = 0;
  for (const ext::RbEngine& e : engines_) {
    total += e.instance_count();
  }
  return total;
}

void KvReplica::pull(Context& ctx, std::uint32_t shard) {
  while (inflight_[shard] < cfg_.window) {
    const std::optional<KvOp> op = source_->next(shard);
    if (!op.has_value()) {
      return;
    }
    const std::uint64_t tag = make_tag(shard, next_seq_[shard]++);
    ++inflight_[shard];
    ++counters_.ops_submitted;
    batcher_.queue_broadcast(
        ctx, engines_[shard].start(self_, tag, pack_op(*op)));
  }
}

void KvReplica::pull_all(Context& ctx) {
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    pull(ctx, s);
  }
}

// The Process entry points are where the stepping thread enters: each one
// re-states the affinity the virtual dispatch erased.
void KvReplica::on_start(Context& ctx) {
  step_affinity_.assert_held();
  self_ = ctx.self();
  pull_all(ctx);
  batcher_.flush(ctx);
}

void KvReplica::on_null(Context& ctx) {
  step_affinity_.assert_held();
  pull_all(ctx);
  batcher_.flush(ctx);
}

void KvReplica::on_message(Context& ctx, const Envelope& env) {
  step_affinity_.assert_held();
  try {
    if (ext::RbxBatch::is_batch(env.payload)) {
      scratch_.clear();
      ext::RbxBatch::decode_into(env.payload, scratch_, ext::kRbValueAny);
      ++counters_.batches_decoded;
      for (const ext::RbxMsg& msg : scratch_) {
        feed(ctx, env.sender, msg);
      }
    } else {
      feed(ctx, env.sender,
           ext::RbxMsg::decode(env.payload, ext::kRbValueAny));
    }
  } catch (const DecodeError&) {
    // Byzantine bytes: drop the payload, count it, stay alive.
    ++counters_.decode_errors;
  }
  pull_all(ctx);
  batcher_.flush(ctx);
}

void KvReplica::feed(Context& ctx, ProcessId sender, const ext::RbxMsg& msg) {
  const std::uint32_t shard = shard_of(msg.tag);
  if (shard >= cfg_.shards) {
    ++counters_.dropped_bad_shard;
    return;
  }
  if (msg.origin >= cfg_.params.n) {
    ++counters_.dropped_bad_origin;
    return;
  }
  // No seq-space shedding here: a vote dropped on receipt is gone forever
  // (nothing retransmits), and under asynchrony a correct stream can race
  // arbitrarily far past this replica's cursor, so any fixed horizon
  // eventually sheds real votes and wedges the stream. Phantom-flood
  // bounding lives in the engine's anchor-aware per-origin caps instead.
  ++counters_.msgs_decoded;
  const ext::RbEngine::Outcome out = engines_[shard].handle(sender, msg);
  for (const ext::RbxMsg& reply : out.to_broadcast) {
    batcher_.queue_broadcast(ctx, reply);
  }
  if (out.delivered.has_value()) {
    ++counters_.deliveries;
    on_delivered(ctx, shard, *out.delivered);
  }
}

void KvReplica::on_delivered(Context& ctx, std::uint32_t shard,
                             const ext::RbEngine::Delivery& d) {
  const std::uint32_t stream = stream_of(d.origin, shard);
  if (seq_of(d.tag) != next_apply_[stream]) {
    // Delivered ahead of the cursor (behind is impossible — applied tags
    // are retired). The instance stays live in the engine with its value
    // queryable, so nothing is buffered replica-side and nothing can be
    // shed: whether an op applies depends only on the cursor, never on
    // local arrival order, which is what keeps correct replicas on
    // identical per-stream prefixes.
    ++counters_.deferred_deliveries;
    return;
  }
  // FIFO barrier: apply the contiguous run starting at the cursor by
  // re-querying the engine — the delivery callback is one-shot, the
  // delivered() lookup is not.
  ext::RbEngine& engine = engines_[shard];
  for (;;) {
    const std::uint64_t seq = next_apply_[stream];
    const std::optional<ext::RbValue> word =
        engine.delivered(d.origin, make_tag(shard, seq));
    if (!word.has_value()) {
      return;
    }
    const KvOp op = unpack_op(*word);
    ++next_apply_[stream];
    kv_.apply(stream, seq, op);
    ++counters_.ops_applied;
    engine.retire_through(d.origin, make_tag(shard, seq));
    if (d.origin == self_) {
      ++counters_.own_ops_applied;
      if (inflight_[shard] > 0) {
        --inflight_[shard];
      }
      if (apply_hook_) {
        apply_hook_(shard, seq, op);
      }
    }
    if (!cfg_.expected_per_origin.empty() &&
        d.origin < cfg_.expected_per_origin.size()) {
      if (++applied_from_[d.origin] ==
              cfg_.expected_per_origin[d.origin] &&
          cfg_.expected_per_origin[d.origin] > 0) {
        if (--origins_remaining_ == 0) {
          ctx.decide(Value::one);
        }
      }
    }
  }
}

}  // namespace rcp::service
