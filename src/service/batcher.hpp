// Cross-instance frame coalescing for the multiplexed broadcast.
//
// During one atomic step a replica can emit dozens of RbxMsgs — echoes and
// readies of many concurrent instances across all shards, plus its own new
// initials. Sent individually, each costs one transport frame per peer; the
// batcher instead queues them per destination and flushes once per step,
// packing every lane into a single RbxBatch payload — one frame per peer
// per flush, which is where the measured frames-per-op drop comes from
// (docs/SERVICE.md "Batching").
//
// Sans-io: the owner passes the Context; the batcher never holds it.
// Disabled, it degenerates to immediate single-message sends — the
// unbatched comparison mode the load generator reports alongside.
#pragma once

#include <cstdint>
#include <vector>

#include "common/process.hpp"
#include "extensions/rb_engine.hpp"

namespace rcp::service {

class RbxBatcher {
 public:
  struct Stats {
    std::uint64_t batches = 0;        ///< RbxBatch payloads emitted
    std::uint64_t batched_msgs = 0;   ///< messages carried inside batches
    std::uint64_t unbatched_msgs = 0; ///< messages sent as plain RbxMsg
  };

  explicit RbxBatcher(std::uint32_t n, bool enabled = true,
                      std::size_t max_batch = ext::RbxBatch::kMaxMessages);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Queues `m` for every process (including self). Disabled: broadcasts
  /// immediately.
  void queue_broadcast(Context& ctx, const ext::RbxMsg& m);

  /// Queues `m` for one peer. Disabled: sends immediately.
  void queue_send(Context& ctx, ProcessId to, const ext::RbxMsg& m);

  /// Emits every non-empty lane as one payload (an RbxBatch, or a plain
  /// RbxMsg when a lane holds a single message) and clears the lanes.
  void flush(Context& ctx);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void emit_lane(Context& ctx, std::vector<ext::RbxMsg>& lane, bool broadcast,
                 ProcessId to);

  bool enabled_;
  std::size_t max_batch_;
  std::vector<ext::RbxMsg> broadcast_lane_;
  std::vector<std::vector<ext::RbxMsg>> peer_lanes_;  ///< indexed by peer id
  Stats stats_;
};

}  // namespace rcp::service
