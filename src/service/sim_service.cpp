#include "service/sim_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "service/adversary.hpp"

namespace rcp::service {

namespace {
using detail::mix64;
using Clock = std::chrono::steady_clock;

/// Wraps a script source, stamping each pulled op so the apply hook can
/// report submit->apply wall latency. Pulls and own-op applies both run in
/// per-shard seq order, so plain FIFOs line the stamps up.
class StampingOpSource final : public OpSource {
 public:
  StampingOpSource(std::vector<std::vector<KvOp>> scripts,
                   std::uint32_t shards)
      : inner_(std::move(scripts)), stamps_(shards) {}

  [[nodiscard]] std::optional<KvOp> next(std::uint32_t shard) override {
    auto op = inner_.next(shard);
    if (op.has_value()) {
      stamps_[shard].push_back(Clock::now());
    }
    return op;
  }

  [[nodiscard]] double take_latency_ms(std::uint32_t shard) {
    const Clock::time_point t0 = stamps_[shard].front();
    stamps_[shard].pop_front();
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  }

 private:
  VectorOpSource inner_;
  std::vector<std::deque<Clock::time_point>> stamps_;
};
}  // namespace

std::uint64_t correct_stream_digest(const KvReplica& replica,
                                    std::uint32_t correct,
                                    std::uint32_t shards) {
  const KvStore& kv = replica.store();
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint32_t origin = 0; origin < correct; ++origin) {
    for (std::uint32_t shard = 0; shard < shards; ++shard) {
      const std::uint32_t stream = origin * shards + shard;
      h = mix64(h ^ mix64(kv.stream_chain(stream) + stream));
      h = mix64(h ^ kv.stream_applied(stream));
    }
  }
  return h;
}

SimServiceResult run_sim_service(const SimServiceConfig& cfg) {
  RCP_EXPECT(cfg.byzantine <= cfg.params.k,
             "sim service: more Byzantine seats than the resilience target");
  const Workload workload =
      build_workload(cfg.params, cfg.byzantine, cfg.shards, cfg.total_ops,
                     cfg.seed);

  std::vector<std::unique_ptr<Process>> processes;
  processes.reserve(cfg.params.n);
  std::vector<KvReplica*> replicas;
  std::vector<StampingOpSource*> sources;
  for (ProcessId p = 0; p < workload.correct; ++p) {
    ReplicaConfig rc;
    rc.params = cfg.params;
    rc.shards = cfg.shards;
    rc.batching = cfg.batching;
    rc.window = cfg.window;
    rc.keep_log = cfg.keep_log;
    rc.expected_per_origin = workload.expected_per_origin;
    std::shared_ptr<OpSource> source;
    StampingOpSource* stamping = nullptr;
    if (cfg.collect_latencies) {
      auto s = std::make_shared<StampingOpSource>(workload.scripts[p],
                                                  cfg.shards);
      stamping = s.get();
      source = std::move(s);
    } else {
      source = std::make_shared<VectorOpSource>(workload.scripts[p]);
    }
    auto replica = std::make_unique<KvReplica>(rc, std::move(source));
    replicas.push_back(replica.get());
    sources.push_back(stamping);
    processes.push_back(std::move(replica));
  }
  for (ProcessId p = workload.correct; p < cfg.params.n; ++p) {
    KvAdversaryConfig ac;
    ac.params = cfg.params;
    ac.shards = cfg.shards;
    switch (cfg.adversary) {
      case KvAdversaryKind::equivocator:
        processes.push_back(std::make_unique<KvEquivocator>(ac));
        break;
      case KvAdversaryKind::babbler:
        processes.push_back(std::make_unique<KvBabbler>(ac));
        break;
      case KvAdversaryKind::lane_jammer:
        // Poison every victim stream's whole first window of seqs.
        ac.victims = workload.correct;
        ac.ops_per_shard = std::max(cfg.window, 4u);
        processes.push_back(std::make_unique<KvLaneJammer>(ac));
        break;
      case KvAdversaryKind::none:
        // A Byzantine seat with no strategy behaves as silent (crash-like);
        // an empty replica with nothing to originate models that.
        {
          ReplicaConfig silent;
          silent.params = cfg.params;
          silent.shards = cfg.shards;
          processes.push_back(std::make_unique<KvReplica>(
              silent, std::make_shared<VectorOpSource>(
                          std::vector<std::vector<KvOp>>(cfg.shards))));
        }
        break;
    }
  }

  sim::SimConfig sc;
  sc.n = cfg.params.n;
  sc.seed = cfg.seed;
  sc.max_steps = cfg.max_steps != 0
                     ? cfg.max_steps
                     : 200000 + cfg.total_ops * cfg.params.n * cfg.params.n * 8;
  sim::Simulation simulation(sc, std::move(processes));

  SimServiceResult result;
  if (cfg.collect_latencies) {
    for (ProcessId p = 0; p < workload.correct; ++p) {
      StampingOpSource* src = sources[p];
      replicas[p]->set_apply_hook(
          [&result, src](std::uint32_t shard, std::uint64_t /*seq*/,
                         KvOp /*op*/) {
            result.latencies_ms.push_back(src->take_latency_ms(shard));
          });
    }
  }
  for (ProcessId p = workload.correct; p < cfg.params.n; ++p) {
    simulation.mark_faulty(p);
  }

  const sim::RunResult run = simulation.run();
  result.status = run.status;
  result.steps = run.steps;
  result.messages_sent = simulation.metrics().messages_sent;
  result.messages_delivered = simulation.metrics().messages_delivered;
  result.ops = workload.total_ops;
  result.ops_applied_min = ~std::uint64_t{0};
  for (ProcessId p = 0; p < workload.correct; ++p) {
    const KvReplica& r = *replicas[p];
    result.correct_ids.push_back(p);
    result.digests.push_back(r.digest());
    result.correct_digests.push_back(
        correct_stream_digest(r, workload.correct, cfg.shards));
    result.ops_applied_min =
        std::min(result.ops_applied_min, r.counters().ops_applied);
    result.batches += r.batcher_stats().batches;
    result.batched_msgs += r.batcher_stats().batched_msgs;
    result.unbatched_msgs += r.batcher_stats().unbatched_msgs;
    result.decode_errors += r.counters().decode_errors;
    const ext::RbEngineStats es = r.engine_stats();
    result.engine_drops += es.dropped_origin_range + es.dropped_value_range +
                           es.dropped_retired + es.dropped_sender_dup +
                           es.dropped_slot_overflow + es.dropped_origin_flood;
    result.admission_drops +=
        r.counters().dropped_bad_shard + r.counters().dropped_bad_origin;
  }
#ifdef RCP_SVC_DEBUG_DROPS
  {
    ext::RbEngineStats t;
    std::uint64_t bad_origin = 0, deferred = 0;
    std::size_t live = 0;
    for (ProcessId p = 0; p < workload.correct; ++p) {
      const ext::RbEngineStats es = replicas[p]->engine_stats();
      t.dropped_retired += es.dropped_retired;
      t.dropped_sender_dup += es.dropped_sender_dup;
      t.dropped_slot_overflow += es.dropped_slot_overflow;
      t.dropped_origin_flood += es.dropped_origin_flood;
      t.evicted_unanchored += es.evicted_unanchored;
      bad_origin += replicas[p]->counters().dropped_bad_origin;
      deferred += replicas[p]->counters().deferred_deliveries;
      live += replicas[p]->live_instances();
    }
    std::fprintf(stderr,
                 "[svc-debug] retired=%llu dup=%llu overflow=%llu flood=%llu "
                 "evicted=%llu bad_origin=%llu deferred=%llu live=%zu\n",
                 (unsigned long long)t.dropped_retired,
                 (unsigned long long)t.dropped_sender_dup,
                 (unsigned long long)t.dropped_slot_overflow,
                 (unsigned long long)t.dropped_origin_flood,
                 (unsigned long long)t.evicted_unanchored,
                 (unsigned long long)bad_origin, (unsigned long long)deferred,
                 live);
  }
#endif
  result.correct_streams_equal = true;
  for (const std::uint64_t d : result.correct_digests) {
    if (d != result.correct_digests.front()) {
      result.correct_streams_equal = false;
    }
  }
  return result;
}

}  // namespace rcp::service
