// Byzantine replicas for the KV service's adversary zoo.
//
// Both run as full mesh participants (they hold a real RbEngine so they do
// not slow correct instances down by silence) while attacking on top:
//
//  - KvEquivocator originates ops whose initial shows a different
//    (key, value) to each half of the mesh, and echoes its own instances
//    two-faced. Bracha consistency is the property under test: either one
//    of the conflicting values delivers at *every* correct replica or none
//    does — the state-digest equivalence test fails on any split.
//  - KvBabbler sprays malformed payloads — truncated messages, corrupted
//    batches, out-of-range kinds/values/origins/shards — plus well-formed
//    echoes and readies for instances that do not exist. The hardened
//    decoders, the replicas' admission horizon, and the engine's
//    range/retire drops are the property under test: correct replicas
//    must absorb all of it without state change.
//  - KvLaneJammer pre-sends echoes and readies carrying garbage values
//    for *correct* origins' upcoming instances, trying to exhaust the
//    engine's first-come value lanes before the real value arrives. The
//    per-sender vote gate is the property under test: each jammer burns
//    at most one echo lane and one ready lane per instance, so the
//    victims' real values always tally and every stream still completes.
//
// Determinism: all randomness flows from Context::rng().
#pragma once

#include <cstdint>
#include <vector>

#include "common/process.hpp"
#include "core/params.hpp"
#include "extensions/rb_engine.hpp"
#include "service/kv_store.hpp"

namespace rcp::service {

struct KvAdversaryConfig {
  core::ConsensusParams params;
  std::uint32_t shards = 1;
  /// Ops the adversary originates per shard (equivocator), or seqs it
  /// jams per victim stream (lane jammer).
  std::uint32_t ops_per_shard = 4;
  /// Correct origins the lane jammer poisons (ids 0..victims-1).
  std::uint32_t victims = 0;
  /// Hard cap on attack sends, so the adversary cannot livelock the run.
  std::uint64_t send_budget = 20000;
};

class KvEquivocator final : public Process {
 public:
  explicit KvEquivocator(KvAdversaryConfig cfg);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Envelope& env) override;

 private:
  void equivocate_initial(Context& ctx, std::uint32_t shard,
                          std::uint64_t seq);

  KvAdversaryConfig cfg_;
  ext::RbEngine engine_;
  std::uint64_t sends_left_;
};

class KvBabbler final : public Process {
 public:
  explicit KvBabbler(KvAdversaryConfig cfg);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Envelope& env) override;

 private:
  void babble(Context& ctx);

  KvAdversaryConfig cfg_;
  ext::RbEngine engine_;
  std::uint64_t sends_left_;
};

class KvLaneJammer final : public Process {
 public:
  explicit KvLaneJammer(KvAdversaryConfig cfg);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Envelope& env) override;

 private:
  KvAdversaryConfig cfg_;
  ext::RbEngine engine_;
  std::uint64_t sends_left_;
};

}  // namespace rcp::service
