#include "service/loadgen.hpp"

#include <chrono>
#include <vector>

#include "common/stats.hpp"
#include "runtime/seeding.hpp"
#include "runtime/trial_pool.hpp"

namespace rcp::service {

SimLoadgenResult run_sim_loadgen(const SimLoadgenConfig& cfg) {
  std::vector<SimServiceResult> group_results(cfg.groups);
  runtime::TrialPool pool(cfg.threads);
  const auto t0 = std::chrono::steady_clock::now();
  pool.for_each(cfg.groups, [&](std::uint64_t group, std::uint32_t /*worker*/) {
    SimServiceConfig gc = cfg.group;
    gc.seed = runtime::trial_seed(cfg.group.seed, group);
    gc.collect_latencies = true;
    group_results[group] = run_sim_service(gc);
  });
  const auto t1 = std::chrono::steady_clock::now();

  SimLoadgenResult out;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.all_ok = true;
  std::vector<double> latencies;
  for (const SimServiceResult& g : group_results) {
    out.total_ops += g.ops;
    out.messages_delivered += g.messages_delivered;
    out.batches += g.batches;
    out.batched_msgs += g.batched_msgs;
    out.unbatched_msgs += g.unbatched_msgs;
    if (g.status != sim::RunStatus::all_decided || !g.correct_streams_equal) {
      out.all_ok = false;
    }
    latencies.insert(latencies.end(), g.latencies_ms.begin(),
                     g.latencies_ms.end());
  }
  if (out.wall_seconds > 0) {
    out.ops_per_sec = static_cast<double>(out.total_ops) / out.wall_seconds;
  }
  if (out.total_ops > 0) {
    out.frames_per_op = static_cast<double>(out.messages_delivered) /
                        static_cast<double>(out.total_ops);
  }
  if (!latencies.empty()) {
    out.p50_ms = quantile(latencies, 0.50);
    out.p99_ms = quantile(latencies, 0.99);
    out.p999_ms = quantile(latencies, 0.999);
  }
  return out;
}

}  // namespace rcp::service
