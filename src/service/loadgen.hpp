// Sim-mode load generation: G independent service groups (the
// TrialPool-style worker shards of docs/SERVICE.md) run in parallel, each
// a deterministic simulation of its own replica set and key partition;
// the aggregate is ops/sec, latency percentiles, and frames-per-op.
#pragma once

#include <cstdint>

#include "service/sim_service.hpp"

namespace rcp::service {

struct SimLoadgenConfig {
  /// Per-group template; `group.total_ops` is the op count *per group* and
  /// `group.seed` the base seed each group derives from.
  SimServiceConfig group;
  std::uint32_t groups = 4;
  /// TrialPool size; 0 = default_threads().
  std::uint32_t threads = 0;
};

struct SimLoadgenResult {
  std::uint64_t total_ops = 0;
  double wall_seconds = 0;
  double ops_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  std::uint64_t messages_delivered = 0;
  /// Sim has no transport frames; delivered messages per op is the
  /// equivalent coalescing metric (batching shrinks it the same way).
  double frames_per_op = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_msgs = 0;
  std::uint64_t unbatched_msgs = 0;
  /// Every group decided and its correct digests matched.
  bool all_ok = false;
};

[[nodiscard]] SimLoadgenResult run_sim_loadgen(const SimLoadgenConfig& cfg);

}  // namespace rcp::service
