#include "service/kv_store.hpp"

#include <bit>

#include "common/error.hpp"

namespace rcp::service {

namespace {
constexpr std::size_t kMinTable = 64;
using detail::mix64;

constexpr std::uint64_t fold_entry(std::uint64_t key,
                                   std::uint32_t value) noexcept {
  return mix64(key ^ (static_cast<std::uint64_t>(value) * 0x9e3779b97f4a7c15ULL));
}
}  // namespace

KvStore::KvStore(std::uint32_t streams, bool keep_log)
    : table_(kMinTable),
      chains_(streams, 0),
      stream_applied_(streams, 0),
      keep_log_(keep_log) {
  if (keep_log_) {
    logs_.resize(streams);
  }
}

std::size_t KvStore::probe(std::uint64_t key) const noexcept {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix64(key) & mask;
  while (table_[i].used && table_[i].key != key) {
    i = (i + 1) & mask;
  }
  return i;
}

void KvStore::grow() {
  std::vector<Slot> old = std::move(table_);
  table_ = std::vector<Slot>(old.size() * 2);
  for (const Slot& s : old) {
    if (s.used) {
      table_[probe(s.key)] = s;
    }
  }
}

void KvStore::apply(std::uint32_t stream, std::uint64_t seq, KvOp op) {
  RCP_EXPECT(stream < chains_.size(), "KvStore: stream out of range");
  const std::uint64_t composite =
      (static_cast<std::uint64_t>(stream) << 32) | op.key;
  std::size_t i = probe(composite);
  if (table_[i].used) {
    state_fold_ -= fold_entry(composite, table_[i].value);
    table_[i].value = op.value;
  } else {
    // Grow at 70% load so probe runs stay short.
    if ((used_ + 1) * 10 >= table_.size() * 7) {
      grow();
      i = probe(composite);
    }
    table_[i] = Slot{composite, op.value, true};
    ++used_;
  }
  state_fold_ += fold_entry(composite, op.value);
  chains_[stream] =
      mix64(chains_[stream] ^ mix64(seq + 1) ^ mix64(pack_op(op)));
  ++stream_applied_[stream];
  ++applied_;
  if (keep_log_) {
    logs_[stream].emplace_back(seq, pack_op(op));
  }
}

std::optional<std::uint32_t> KvStore::get(std::uint32_t stream,
                                          std::uint32_t key) const {
  const std::uint64_t composite =
      (static_cast<std::uint64_t>(stream) << 32) | key;
  const std::size_t i = probe(composite);
  if (!table_[i].used) {
    return std::nullopt;
  }
  return table_[i].value;
}

std::uint64_t KvStore::digest() const noexcept {
  std::uint64_t h = mix64(applied_ ^ (state_fold_ * 0x9e3779b97f4a7c15ULL));
  for (std::size_t s = 0; s < chains_.size(); ++s) {
    h = mix64(h ^ mix64(chains_[s] + s));
  }
  return h;
}

}  // namespace rcp::service
