// Sim-mode service driver: one deterministic asynchronous simulation of a
// full KV-service group — n replicas (minus any Byzantine seats), a
// preloaded workload, and the adversary zoo — returning the per-replica
// state digests the equivalence tests compare and the throughput counters
// the load generator aggregates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "service/replica.hpp"
#include "service/workload.hpp"
#include "sim/simulation.hpp"

namespace rcp::service {

enum class KvAdversaryKind : std::uint8_t {
  none,
  equivocator,
  babbler,
  lane_jammer,
};

struct SimServiceConfig {
  core::ConsensusParams params{4, 1};
  std::uint32_t shards = 1;
  std::uint64_t total_ops = 1000;
  std::uint32_t window = 32;
  bool batching = true;
  std::uint64_t seed = 1;
  /// 0 derives a bound from the workload size.
  std::uint64_t max_steps = 0;
  /// Byzantine seats (highest ids), running `adversary`.
  std::uint32_t byzantine = 0;
  KvAdversaryKind adversary = KvAdversaryKind::none;
  /// Retain per-stream op logs in every replica (prefix checks in tests).
  bool keep_log = false;
  /// Record own-op submit->apply wall latencies (ms) across replicas.
  bool collect_latencies = false;
};

struct SimServiceResult {
  sim::RunStatus status{};
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t ops = 0;  ///< correct ops expected (= workload total)
  std::uint64_t ops_applied_min = 0;  ///< min over correct replicas
  /// Correct replica ids, then one entry per correct replica in that order:
  std::vector<ProcessId> correct_ids;
  std::vector<std::uint64_t> digests;          ///< full KvStore digest
  std::vector<std::uint64_t> correct_digests;  ///< fold over correct streams
  bool correct_streams_equal = false;
  /// Batching totals over correct replicas.
  std::uint64_t batches = 0;
  std::uint64_t batched_msgs = 0;
  std::uint64_t unbatched_msgs = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t engine_drops = 0;  ///< origin/value/retired/dup/overflow/flood
  /// Replica-level pre-engine drops: bad shard, bad origin.
  std::uint64_t admission_drops = 0;
  std::vector<double> latencies_ms;  ///< when collect_latencies
};

/// Digest over the streams owned by correct origins only — immune to the
/// partially-applied tail of a Byzantine stream at the stop instant (Bracha
/// totality is eventual; the run stops when the *expected* ops are in).
[[nodiscard]] std::uint64_t correct_stream_digest(const KvReplica& replica,
                                                  std::uint32_t correct,
                                                  std::uint32_t shards);

[[nodiscard]] SimServiceResult run_sim_service(const SimServiceConfig& cfg);

}  // namespace rcp::service
