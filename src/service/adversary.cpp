#include "service/adversary.hpp"

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "service/replica.hpp"  // tag layout (make_tag)

namespace rcp::service {

KvEquivocator::KvEquivocator(KvAdversaryConfig cfg)
    : cfg_(cfg),
      engine_(cfg.params, /*capacity_hint=*/0, ext::kRbValueAny),
      sends_left_(cfg.send_budget) {}

void KvEquivocator::equivocate_initial(Context& ctx, std::uint32_t shard,
                                       std::uint64_t seq) {
  const std::uint64_t tag = make_tag(shard, seq);
  const std::uint64_t word_a =
      pack_op(KvOp{static_cast<std::uint32_t>(seq * 2), 0xAAAA0000u + shard});
  const std::uint64_t word_b =
      pack_op(KvOp{static_cast<std::uint32_t>(seq * 2 + 1), 0xBBBB0000u + shard});
  for (ProcessId q = 0; q < ctx.n(); ++q) {
    if (q == ctx.self() || sends_left_ == 0) {
      continue;
    }
    const std::uint64_t word = (q % 2 == 0) ? word_a : word_b;
    --sends_left_;
    ctx.send(q, ext::RbxMsg{.kind = ext::RbxMsg::Kind::initial,
                            .origin = ctx.self(),
                            .tag = tag,
                            .value = word}
                    .encode());
    // Two-faced echo reinforcing whichever story this peer was told.
    if (sends_left_ > 0) {
      --sends_left_;
      ctx.send(q, ext::RbxMsg{.kind = ext::RbxMsg::Kind::echo,
                              .origin = ctx.self(),
                              .tag = tag,
                              .value = word}
                      .encode());
    }
  }
}

void KvEquivocator::on_start(Context& ctx) {
  for (std::uint32_t shard = 0; shard < cfg_.shards; ++shard) {
    for (std::uint64_t seq = 0; seq < cfg_.ops_per_shard; ++seq) {
      equivocate_initial(ctx, shard, seq);
    }
  }
}

void KvEquivocator::on_message(Context& ctx, const Envelope& env) {
  // Participate honestly in everyone else's instances so the attack is
  // pure equivocation, not a liveness stall.
  ext::RbxMsg msg;
  try {
    msg = ext::RbxMsg::decode(env.payload, ext::kRbValueAny);
  } catch (const DecodeError&) {
    return;  // batches and garbage: an equivocator need not reply
  }
  if (msg.origin == ctx.self()) {
    return;  // never help (or fix) our own split instances
  }
  const ext::RbEngine::Outcome out = engine_.handle(env.sender, msg);
  for (const ext::RbxMsg& reply : out.to_broadcast) {
    if (sends_left_ < ctx.n()) {
      return;
    }
    sends_left_ -= ctx.n();
    ctx.broadcast(reply.encode());
  }
}

KvBabbler::KvBabbler(KvAdversaryConfig cfg)
    : cfg_(cfg),
      engine_(cfg.params, /*capacity_hint=*/0, ext::kRbValueAny),
      sends_left_(cfg.send_budget) {}

void KvBabbler::babble(Context& ctx) {
  if (sends_left_ < ctx.n()) {
    return;
  }
  sends_left_ -= ctx.n();
  Rng& rng = ctx.rng();
  switch (rng.below(5)) {
    case 0: {  // raw noise, arbitrary length
      ByteWriter w(16);
      const std::uint32_t len = static_cast<std::uint32_t>(rng.below(33));
      for (std::uint32_t i = 0; i < len; ++i) {
        w.u8(static_cast<std::uint8_t>(rng.below(256)));
      }
      ctx.broadcast(std::move(w).take());
      return;
    }
    case 1: {  // batch header whose count disagrees with the body
      ByteWriter w(8);
      w.u8(ext::RbxBatch::kTagByte)
          .u32(static_cast<std::uint32_t>(1 + rng.below(64)))
          .u8(0);
      ctx.broadcast(std::move(w).take());
      return;
    }
    case 2: {  // well-formed message, out-of-range kind byte
      ByteWriter w(ext::RbxMsg::kWireSize);
      w.u8(static_cast<std::uint8_t>(43 + rng.below(200)))
          .u32(static_cast<std::uint32_t>(rng.below(ctx.n())))
          .u64(rng.next())
          .u64(rng.next());
      ctx.broadcast(std::move(w).take());
      return;
    }
    case 3: {  // echo/ready for a phantom instance, maybe phantom origin
      const ProcessId origin =
          static_cast<ProcessId>(rng.below(2ULL * ctx.n()));
      const std::uint64_t tag =
          make_tag(static_cast<std::uint32_t>(rng.below(4 * cfg_.shards)),
                   rng.below(1u << 20));
      ctx.broadcast(ext::RbxMsg{.kind = rng.bernoulli(0.5)
                                            ? ext::RbxMsg::Kind::echo
                                            : ext::RbxMsg::Kind::ready,
                                .origin = origin,
                                .tag = tag,
                                .value = rng.next()}
                        .encode());
      return;
    }
    default: {  // truncated single message
      ByteWriter w(8);
      w.u8(40 + static_cast<std::uint8_t>(rng.below(3)))
          .u32(static_cast<std::uint32_t>(rng.below(ctx.n())));
      ctx.broadcast(std::move(w).take());
      return;
    }
  }
}

void KvBabbler::on_start(Context& ctx) {
  babble(ctx);
  babble(ctx);
}

KvLaneJammer::KvLaneJammer(KvAdversaryConfig cfg)
    : cfg_(cfg),
      engine_(cfg.params, /*capacity_hint=*/0, ext::kRbValueAny),
      sends_left_(cfg.send_budget) {}

void KvLaneJammer::on_start(Context& ctx) {
  // Poison the victims' upcoming instances before any real traffic: one
  // garbage echo and one garbage ready per (victim, shard, seq), with
  // values keyed off our own id so multiple jammers burn *distinct*
  // lanes. Pre-gate engines would have let this fill every value lane of
  // a correct origin's instance; the per-sender vote gate caps the damage
  // at one echo lane and one ready lane per jammer.
  for (std::uint32_t shard = 0; shard < cfg_.shards; ++shard) {
    for (std::uint64_t seq = 0; seq < cfg_.ops_per_shard; ++seq) {
      for (ProcessId victim = 0; victim < cfg_.victims; ++victim) {
        if (sends_left_ < 2ULL * ctx.n()) {
          return;
        }
        sends_left_ -= 2ULL * ctx.n();
        const std::uint64_t tag = make_tag(shard, seq);
        const ext::RbValue garbage =
            0xDEAD0000'00000000ULL | (static_cast<std::uint64_t>(ctx.self())
                                      << 32) |
            (seq << 8) | victim;
        ctx.broadcast(ext::RbxMsg{.kind = ext::RbxMsg::Kind::echo,
                                  .origin = victim,
                                  .tag = tag,
                                  .value = garbage}
                          .encode());
        ctx.broadcast(ext::RbxMsg{.kind = ext::RbxMsg::Kind::ready,
                                  .origin = victim,
                                  .tag = tag,
                                  .value = garbage + 1}
                          .encode());
      }
    }
  }
}

void KvLaneJammer::on_message(Context& ctx, const Envelope& env) {
  // Participate honestly in everything else so the attack is pure lane
  // jamming, not a liveness stall. For jammed instances the receivers
  // have already charged our one echo/ready vote to the garbage value, so
  // these honest replies are dropped there as sender duplicates — which
  // is the point.
  ext::RbxMsg msg;
  try {
    msg = ext::RbxMsg::decode(env.payload, ext::kRbValueAny);
  } catch (const DecodeError&) {
    return;
  }
  const ext::RbEngine::Outcome out = engine_.handle(env.sender, msg);
  for (const ext::RbxMsg& reply : out.to_broadcast) {
    if (sends_left_ < ctx.n()) {
      return;
    }
    sends_left_ -= ctx.n();
    ctx.broadcast(reply.encode());
  }
}

void KvBabbler::on_message(Context& ctx, const Envelope& env) {
  // Stay a useful mesh citizen (echo/ready for real instances) so the run
  // terminates, then spray garbage at a bounded rate.
  try {
    if (!ext::RbxBatch::is_batch(env.payload)) {
      const ext::RbxMsg msg =
          ext::RbxMsg::decode(env.payload, ext::kRbValueAny);
      const ext::RbEngine::Outcome out = engine_.handle(env.sender, msg);
      for (const ext::RbxMsg& reply : out.to_broadcast) {
        if (sends_left_ >= ctx.n()) {
          sends_left_ -= ctx.n();
          ctx.broadcast(reply.encode());
        }
      }
    }
  } catch (const DecodeError&) {
    // fellow babblers
  }
  if (ctx.rng().bernoulli(0.25)) {
    babble(ctx);
  }
}

}  // namespace rcp::service
