#include "service/batcher.hpp"

#include <span>

namespace rcp::service {

RbxBatcher::RbxBatcher(std::uint32_t n, bool enabled, std::size_t max_batch)
    : enabled_(enabled), max_batch_(max_batch), peer_lanes_(n) {}

void RbxBatcher::queue_broadcast(Context& ctx, const ext::RbxMsg& m) {
  if (!enabled_) {
    ++stats_.unbatched_msgs;
    ctx.broadcast(m.encode());
    return;
  }
  broadcast_lane_.push_back(m);
  if (broadcast_lane_.size() >= max_batch_) {
    emit_lane(ctx, broadcast_lane_, /*broadcast=*/true, 0);
  }
}

void RbxBatcher::queue_send(Context& ctx, ProcessId to, const ext::RbxMsg& m) {
  if (!enabled_) {
    ++stats_.unbatched_msgs;
    ctx.send(to, m.encode());
    return;
  }
  auto& lane = peer_lanes_[to];
  lane.push_back(m);
  if (lane.size() >= max_batch_) {
    emit_lane(ctx, lane, /*broadcast=*/false, to);
  }
}

void RbxBatcher::emit_lane(Context& ctx, std::vector<ext::RbxMsg>& lane,
                           bool broadcast, ProcessId to) {
  if (lane.empty()) {
    return;
  }
  Bytes payload;
  if (lane.size() == 1) {
    // A one-message batch would only add framing overhead.
    ++stats_.unbatched_msgs;
    payload = lane[0].encode();
  } else {
    ++stats_.batches;
    stats_.batched_msgs += lane.size();
    payload = ext::RbxBatch::encode(std::span<const ext::RbxMsg>(lane));
  }
  if (broadcast) {
    ctx.broadcast(payload);
  } else {
    ctx.send(to, std::move(payload));
  }
  lane.clear();
}

void RbxBatcher::flush(Context& ctx) {
  if (!enabled_) {
    return;
  }
  emit_lane(ctx, broadcast_lane_, /*broadcast=*/true, 0);
  for (ProcessId p = 0; p < peer_lanes_.size(); ++p) {
    emit_lane(ctx, peer_lanes_[p], /*broadcast=*/false, p);
  }
}

}  // namespace rcp::service
