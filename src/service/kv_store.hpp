// The replicated KV state machine: per-stream op logs folded into a flat
// key-value table, with an order-sensitive digest for equivalence proofs.
//
// The service routes every client write to exactly one *origin stream*
// (one (owner replica, shard) pair — see docs/SERVICE.md): the owner is
// the only process that originates ops for its keys, so the per-stream
// apply order (the origin's sequence order, enforced by KvReplica's FIFO
// barrier) fully determines the state. Keys are namespaced per stream for
// the same reason — a Byzantine origin can only ever corrupt its own
// namespace, never race a correct owner on a contested key.
//
// digest() is the whole safety story in one number: it hashes every
// stream's (seq, op) chain plus the final table, so two replicas agree on
// the digest iff they applied identical op sequences stream by stream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rcp::service {

namespace detail {
/// SplitMix64 finalizer: the service layer's one hash/digest mixer (probe
/// hash, stream chains, workload routing all share it).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace detail

/// One client write: set `key` to `value` (within the origin stream's
/// namespace).
struct KvOp {
  std::uint32_t key = 0;
  std::uint32_t value = 0;
};

/// Packs an op into the 64-bit broadcast word and back.
[[nodiscard]] constexpr std::uint64_t pack_op(KvOp op) noexcept {
  return static_cast<std::uint64_t>(op.key) |
         (static_cast<std::uint64_t>(op.value) << 32);
}

[[nodiscard]] constexpr KvOp unpack_op(std::uint64_t word) noexcept {
  return KvOp{static_cast<std::uint32_t>(word & 0xffffffffu),
              static_cast<std::uint32_t>(word >> 32)};
}

class KvStore {
 public:
  /// `streams` = number of origin streams (replicas x shards).
  /// `keep_log` retains every applied (seq, op) per stream — the
  /// equivalence tests use the logs for prefix checks on Byzantine
  /// streams; load generation leaves it off.
  explicit KvStore(std::uint32_t streams, bool keep_log = false);

  /// Applies op number `seq` of `stream` (the caller guarantees seqs of a
  /// stream arrive in order, each exactly once).
  void apply(std::uint32_t stream, std::uint64_t seq, KvOp op);

  [[nodiscard]] std::optional<std::uint32_t> get(std::uint32_t stream,
                                                 std::uint32_t key) const;

  /// Number of distinct live keys across all streams.
  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  /// Total ops applied.
  [[nodiscard]] std::uint64_t applied() const noexcept { return applied_; }
  /// Ops applied on one stream.
  [[nodiscard]] std::uint64_t stream_applied(std::uint32_t stream) const {
    return stream_applied_[stream];
  }
  [[nodiscard]] std::uint32_t streams() const noexcept {
    return static_cast<std::uint32_t>(chains_.size());
  }

  /// Order-sensitive chain over one stream's applied (seq, op) sequence.
  [[nodiscard]] std::uint64_t stream_chain(std::uint32_t stream) const {
    return chains_[stream];
  }

  /// Digest over everything: all stream chains plus the final table.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// The retained (seq, packed-op) log of one stream; empty unless
  /// constructed with keep_log.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
  stream_log(std::uint32_t stream) const {
    return logs_[stream];
  }

 private:
  struct Slot {
    std::uint64_t key = 0;  ///< stream << 32 | client key
    std::uint32_t value = 0;
    bool used = false;
  };

  [[nodiscard]] std::size_t probe(std::uint64_t key) const noexcept;
  void grow();

  std::vector<Slot> table_;
  std::size_t used_ = 0;
  std::uint64_t applied_ = 0;
  /// Incremental order-insensitive fold of the live table contents.
  std::uint64_t state_fold_ = 0;
  std::vector<std::uint64_t> chains_;
  std::vector<std::uint64_t> stream_applied_;
  bool keep_log_ = false;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> logs_;
};

}  // namespace rcp::service
