#include "service/workload.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rcp::service {

namespace {
using detail::mix64;
}  // namespace

Workload build_workload(core::ConsensusParams params, std::uint32_t byzantine,
                        std::uint32_t shards, std::uint64_t total_ops,
                        std::uint64_t seed) {
  RCP_EXPECT(byzantine < params.n, "workload: no correct replica left");
  Workload w;
  w.n = params.n;
  w.shards = shards;
  w.correct = params.n - byzantine;
  w.total_ops = total_ops;
  w.scripts.resize(params.n);
  for (auto& per_shard : w.scripts) {
    per_shard.resize(shards);
  }
  w.expected_per_origin.assign(params.n, 0);

  Rng rng(seed ^ 0x5e7'1ce'0ff'ee0ULL);
  // Key space: ~1 op in 4 overwrites an existing key once warmed up.
  const std::uint64_t key_space = std::max<std::uint64_t>(64, total_ops / 4);
  for (std::uint64_t i = 0; i < total_ops; ++i) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng.below(key_space));
    const std::uint64_t h = mix64(key);
    const std::uint32_t origin = static_cast<std::uint32_t>(h % w.correct);
    const std::uint32_t shard =
        static_cast<std::uint32_t>((h / w.correct) % shards);
    const std::uint32_t value = static_cast<std::uint32_t>(rng.next());
    w.scripts[origin][shard].push_back(KvOp{key, value});
    ++w.expected_per_origin[origin];
  }
  return w;
}

}  // namespace rcp::service
