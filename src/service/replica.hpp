// KvReplica — one replica of the consensus-backed KV service.
//
// Every client write is one Bracha-broadcast instance in a multiplexed
// ext::RbEngine: the owner replica originates initial(tag, packed-op), the
// mesh echoes and readies, and each replica applies the op to its KvStore
// when the instance delivers *and* every earlier op of the same origin
// stream has been applied (the per-stream FIFO barrier — delivery order
// across instances is asynchronous, apply order is not). Out-of-order
// deliveries wait inside the engine (delivered() is re-queried as the
// cursor advances); applied instances are retired, and the engine's
// anchor-aware per-origin instance caps bound what Byzantine phantom
// spray can occupy without ever dropping real protocol votes — lost
// votes are never retransmitted, so receipt-time shedding of legitimate
// traffic is the one thing this layer must not do.
//
// Sharding: the 64-bit instance tag is (shard << 48) | seq; each shard has
// its own engine, its own seq space and its own origination window, so
// independent keys make progress in parallel and a slow shard cannot
// head-of-line-block the others. Batching: all outgoing engine traffic of
// one atomic step is flushed through an RbxBatcher as one frame per peer.
//
// The replica is a sans-io rcp::Process: the sim transport and the real
// TCP mesh (net::Node with NodeLimits::idle_tick_ms armed) drive the same
// object; client ops arrive through the pull-based OpSource.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/annotations.hpp"
#include "common/process.hpp"
#include "core/params.hpp"
#include "extensions/rb_engine.hpp"
#include "service/batcher.hpp"
#include "service/kv_store.hpp"

namespace rcp::service {

/// Tag layout: high 16 bits shard, low 48 bits per-(origin, shard) seq.
inline constexpr std::uint32_t kShardBits = 16;
inline constexpr std::uint64_t kSeqMask =
    (std::uint64_t{1} << (64 - kShardBits)) - 1;

[[nodiscard]] constexpr std::uint64_t make_tag(std::uint32_t shard,
                                               std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(shard) << (64 - kShardBits)) |
         (seq & kSeqMask);
}
[[nodiscard]] constexpr std::uint32_t shard_of(std::uint64_t tag) noexcept {
  return static_cast<std::uint32_t>(tag >> (64 - kShardBits));
}
[[nodiscard]] constexpr std::uint64_t seq_of(std::uint64_t tag) noexcept {
  return tag & kSeqMask;
}

/// Pull interface for client ops, one queue per shard. Implementations:
/// a preloaded deterministic script (sim tests, VectorOpSource below) or a
/// locked queue fed by client threads (net mode; lives with the caller —
/// the service layer itself stays free of OS concurrency).
class OpSource {
 public:
  virtual ~OpSource() = default;
  /// Next op for `shard`, or nullopt when none is queued right now.
  [[nodiscard]] virtual std::optional<KvOp> next(std::uint32_t shard) = 0;
};

/// Preloaded per-shard op scripts.
class VectorOpSource : public OpSource {
 public:
  explicit VectorOpSource(std::vector<std::vector<KvOp>> scripts)
      : scripts_(std::move(scripts)), pos_(scripts_.size(), 0) {}

  [[nodiscard]] std::optional<KvOp> next(std::uint32_t shard) override {
    if (shard >= scripts_.size() || pos_[shard] >= scripts_[shard].size()) {
      return std::nullopt;
    }
    return scripts_[shard][pos_[shard]++];
  }

 private:
  std::vector<std::vector<KvOp>> scripts_;
  std::vector<std::size_t> pos_;
};

struct ReplicaConfig {
  core::ConsensusParams params;
  std::uint32_t shards = 1;
  bool batching = true;
  /// Max own ops in flight (originated, not yet applied) per shard.
  std::uint32_t window = 64;
  /// RbEngine pool hint per shard; 0 derives n * window.
  std::uint32_t engine_capacity = 0;
  /// Per-origin live-instance cap handed to each shard engine (0 derives
  /// max(65536, window * 1024)). A DoS backstop against Byzantine phantom
  /// (origin, seq) spray, enforced anchor-aware inside the engine so real
  /// protocol traffic is never shed — see rb_engine.hpp. Must vastly
  /// exceed the origination window: a lagging replica legitimately holds
  /// one live instance per unapplied seq between its apply cursor and the
  /// origin's frontier, and that backlog is quorum-paced, not window-paced.
  std::uint32_t origin_cap = 0;
  /// Retain per-stream op logs in the KvStore (test prefix checks).
  bool keep_log = false;
  /// Expected op count per origin (index = origin id; missing/0 = none
  /// expected). When set, the replica decides Value::one once every
  /// origin's expected ops are applied — the natural termination signal
  /// both sim::Simulation and net::Cluster already wait on.
  std::vector<std::uint64_t> expected_per_origin;
};

struct ReplicaCounters {
  std::uint64_t ops_submitted = 0;     ///< own ops originated
  std::uint64_t ops_applied = 0;       ///< ops applied (all origins)
  std::uint64_t own_ops_applied = 0;
  std::uint64_t deliveries = 0;        ///< engine deliveries observed
  std::uint64_t deferred_deliveries = 0; ///< delivered ahead of the cursor
  std::uint64_t batches_decoded = 0;
  std::uint64_t msgs_decoded = 0;      ///< RbxMsgs fed to engines
  std::uint64_t decode_errors = 0;     ///< malformed payloads dropped
  std::uint64_t dropped_bad_shard = 0; ///< tag shard out of range
  std::uint64_t dropped_bad_origin = 0;///< origin outside the process space
};

class KvReplica final : public Process {
 public:
  /// Called (own ops only, in per-shard seq order) as ops are applied —
  /// the load generator's latency probe.
  using ApplyHook = std::function<void(std::uint32_t shard, std::uint64_t seq,
                                       KvOp op)>;

  KvReplica(ReplicaConfig cfg, std::shared_ptr<OpSource> source);

  void set_apply_hook(ApplyHook hook) {
    step_affinity_.assert_held();  // setup phase, before any step runs
    apply_hook_ = std::move(hook);
  }

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Envelope& env) override;
  void on_null(Context& ctx) override;
  /// Applied-op count, so phase-triggered fault injection can target
  /// "after N ops". Relaxed read of step state from the phase observer —
  /// net::Node republishes it through its own atomic.
  [[nodiscard]] Phase phase() const noexcept override
      RCP_NO_THREAD_SAFETY_ANALYSIS {
    return static_cast<Phase>(counters_.ops_applied);
  }

  // ---- Observers (driver thread, post-run / white-box tests) -----------
  // The reading thread is the step driver (sim mode) or has joined it
  // (net mode): it holds the affinity, and says so.

  [[nodiscard]] const KvStore& store() const noexcept {
    step_affinity_.assert_held();
    return kv_;
  }
  [[nodiscard]] std::uint64_t digest() const noexcept {
    step_affinity_.assert_held();
    return kv_.digest();
  }
  [[nodiscard]] const ReplicaCounters& counters() const noexcept {
    step_affinity_.assert_held();
    return counters_;
  }
  [[nodiscard]] const RbxBatcher::Stats& batcher_stats() const noexcept {
    step_affinity_.assert_held();
    return batcher_.stats();
  }
  /// Aggregated over the per-shard engines.
  [[nodiscard]] ext::RbEngineStats engine_stats() const;
  [[nodiscard]] std::size_t live_instances() const;

 private:
  void pull(Context& ctx, std::uint32_t shard) RCP_REQUIRES(step_affinity_);
  void pull_all(Context& ctx) RCP_REQUIRES(step_affinity_);
  void feed(Context& ctx, ProcessId sender, const ext::RbxMsg& msg)
      RCP_REQUIRES(step_affinity_);
  void on_delivered(Context& ctx, std::uint32_t shard,
                    const ext::RbEngine::Delivery& d)
      RCP_REQUIRES(step_affinity_);
  [[nodiscard]] std::uint32_t stream_of(ProcessId origin,
                                        std::uint32_t shard) const noexcept {
    return origin * cfg_.shards + shard;
  }

  /// "I am the single thread stepping this replica" — sim::Simulation's
  /// run loop or the owning net::Node's event loop. The Process entry
  /// points assert it; everything below it is confined to that thread.
  ThreadAffinity step_affinity_;

  ReplicaConfig cfg_;
  std::shared_ptr<OpSource> source_;
  ProcessId self_ RCP_GUARDED_BY(step_affinity_) = 0;
  /// One engine per shard.
  std::vector<ext::RbEngine> engines_ RCP_GUARDED_BY(step_affinity_);
  RbxBatcher batcher_ RCP_GUARDED_BY(step_affinity_);
  KvStore kv_ RCP_GUARDED_BY(step_affinity_);
  /// next_seq_[shard]: next seq this replica originates on that shard.
  std::vector<std::uint64_t> next_seq_ RCP_GUARDED_BY(step_affinity_);
  /// inflight_[shard]: own ops originated but not yet applied.
  std::vector<std::uint32_t> inflight_ RCP_GUARDED_BY(step_affinity_);
  /// next_apply_[stream]: the FIFO barrier cursor per origin stream.
  /// Out-of-order deliveries stay live (and queryable) in the engine until
  /// the cursor reaches them — there is no replica-side pending buffer.
  std::vector<std::uint64_t> next_apply_ RCP_GUARDED_BY(step_affinity_);
  /// Termination accounting against cfg_.expected_per_origin.
  std::vector<std::uint64_t> applied_from_ RCP_GUARDED_BY(step_affinity_);
  std::uint32_t origins_remaining_ RCP_GUARDED_BY(step_affinity_) = 0;
  /// Batch decode buffer.
  std::vector<ext::RbxMsg> scratch_ RCP_GUARDED_BY(step_affinity_);
  ReplicaCounters counters_ RCP_GUARDED_BY(step_affinity_);
  ApplyHook apply_hook_ RCP_GUARDED_BY(step_affinity_);
};

}  // namespace rcp::service
