// Adversarial delivery policies: legal schedules the paper's asynchrony
// permits, chosen to hurt the protocols as much as possible.
//
// Asynchrony allows the message system to delay any message arbitrarily
// long. These policies exploit that freedom: partitioning the system into
// groups that only hear themselves (the schedule used by the Theorem 1 / 3
// impossibility arguments), or starving a chosen set of senders.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/delivery.hpp"

namespace rcp::adversary {

/// Messages crossing group boundaries are withheld until `heal_at_step`
/// (never, by default). Within a group, delivery is uniform. When only
/// cross-group messages are buffered, receive() returns phi — the paper's
/// "arbitrarily long transmission delay".
class PartitionDelivery final : public sim::DeliveryPolicy {
 public:
  /// group_of[p] is process p's group id. heal_at_step == UINT64_MAX keeps
  /// the partition forever.
  PartitionDelivery(std::vector<std::uint32_t> group_of,
                    std::uint64_t heal_at_step = UINT64_MAX);

  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const sim::Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;

  /// Splits [0, n) into two halves: ids < boundary are group 0.
  [[nodiscard]] static std::unique_ptr<PartitionDelivery> split_at(
      std::uint32_t n, std::uint32_t boundary,
      std::uint64_t heal_at_step = UINT64_MAX);

 private:
  std::vector<std::uint32_t> group_of_;
  std::uint64_t heal_at_step_;
};

/// Messages from `slow_senders` are deprioritised: with probability
/// 1 - slow_probability a non-slow message is delivered if any is buffered.
/// slow_probability = 0 (the default) starves them completely while other
/// traffic exists; note that protocols which keep their own mailbox
/// non-empty (the paper's self-requeue device) can then livelock whenever
/// the quorum n-k forces them to hear a starved sender — set a positive
/// slow_probability to make the policy epsilon-fair in the paper's sense.
class StarveSendersDelivery final : public sim::DeliveryPolicy {
 public:
  StarveSendersDelivery(std::uint32_t n, std::vector<ProcessId> slow_senders,
                        double slow_probability = 0.0);

  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const sim::Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;

 private:
  std::vector<bool> is_slow_;
  double slow_probability_;
};

/// Delivers the buffered message whose value field would most hurt
/// convergence is out of scope for a delivery policy (payloads are opaque
/// bytes); OldestLastDelivery instead maximises phase skew by always
/// delivering the *newest* message from the *most advanced* sender mix:
/// concretely, uniform over the newest half of the buffer.
class NewestHalfDelivery final : public sim::DeliveryPolicy {
 public:
  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const sim::Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;
};

}  // namespace rcp::adversary
