#include "adversary/crash_plan.hpp"

#include "common/error.hpp"

namespace rcp::adversary {

void CrashPlan::add_step_crash(ProcessId victim, std::uint64_t step) {
  events_.push_back(
      CrashEvent{.victim = victim, .by_phase = false, .at_step = step});
}

void CrashPlan::add_phase_crash(ProcessId victim, Phase phase) {
  events_.push_back(
      CrashEvent{.victim = victim, .by_phase = true, .at_phase = phase});
}

void CrashPlan::apply(sim::Simulation& sim) const {
  for (const CrashEvent& e : events_) {
    if (e.by_phase) {
      sim.schedule_crash_at_phase(e.victim, e.at_phase);
    } else {
      sim.schedule_crash_at_step(e.victim, e.at_step);
    }
  }
}

CrashPlan CrashPlan::random(std::uint32_t n, std::uint32_t count,
                            std::uint64_t max_step, Rng& rng) {
  RCP_EXPECT(count <= n, "cannot crash more processes than exist");
  CrashPlan plan;
  for (const std::uint32_t victim : rng.sample_without_replacement(n, count)) {
    plan.add_step_crash(victim, rng.below(max_step + 1));
  }
  return plan;
}

CrashPlan CrashPlan::random_phase_boundaries(std::uint32_t n,
                                             std::uint32_t count,
                                             Phase max_phase, Rng& rng) {
  RCP_EXPECT(count <= n, "cannot crash more processes than exist");
  CrashPlan plan;
  for (const std::uint32_t victim : rng.sample_without_replacement(n, count)) {
    plan.add_phase_crash(victim, rng.below(max_phase + 1));
  }
  return plan;
}

CrashPlan CrashPlan::initially_dead(std::uint32_t n, std::uint32_t count,
                                    Rng& rng) {
  RCP_EXPECT(count <= n, "cannot crash more processes than exist");
  CrashPlan plan;
  for (const std::uint32_t victim : rng.sample_without_replacement(n, count)) {
    plan.add_step_crash(victim, 0);
  }
  return plan;
}

CrashPlan CrashPlan::staggered(std::uint32_t count) {
  CrashPlan plan;
  for (std::uint32_t i = 0; i < count; ++i) {
    plan.add_phase_crash(i, i + 1);
  }
  return plan;
}

}  // namespace rcp::adversary
